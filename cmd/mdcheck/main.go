// Command mdcheck is the crash-state model checker: it records the 1 KB
// create/remove workload under each requested ordering scheme, enumerates
// the crash images the recorded write timeline could have left on the
// media (every crash instant, every legally-reorderable completed subset,
// every partial-sector prefix), and runs fsck over each distinct image on
// a parallel worker pool.
//
//	mdcheck                             # the paper's five schemes
//	mdcheck -schemes softupdates,noorder -files 200
//	mdcheck -workers 8 -budget 100000 -json
//	mdcheck -schemes softupdates -seed-bug -shrink   # catch a planted bug
//	mdcheck -full -pass-workers 4       # no incremental reuse, parallel passes
//	mdcheck -dist -schemes conventional # sharded dmeta cluster, per-node sweeps
//
// Exit status is 1 when any scheme's verdict is unexpected: a violation
// under an ordering scheme, or a fully clean sweep under noorder.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"metaupdate/fsim"
	"metaupdate/internal/crashmc"
	"metaupdate/internal/harness"
)

func parseScheme(s string) (fsim.Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "conventional":
		return fsim.Conventional, nil
	case "flag":
		return fsim.SchedulerFlag, nil
	case "chains":
		return fsim.SchedulerChains, nil
	case "softupdates", "soft":
		return fsim.SoftUpdates, nil
	case "noorder":
		return fsim.NoOrder, nil
	case "nvram":
		return fsim.NVRAM, nil
	case "journaling", "journal":
		return fsim.Journaling, nil
	case "async", "asyncdurability":
		return fsim.AsyncDurability, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (conventional|flag|chains|softupdates|noorder|nvram|journaling|async)", s)
}

func main() {
	schemes := flag.String("schemes", "conventional,flag,chains,softupdates,noorder,journaling,async",
		"comma-separated ordering schemes to check")
	files := flag.Int("files", 150, "files created and removed (1 KB each)")
	workers := flag.Int("workers", 0, "fsck worker goroutines (0: GOMAXPROCS)")
	budget := flag.Int("budget", 20000, "max crash states generated per scheme")
	perInstant := flag.Int("per-instant", 1024, "max crash states per crash instant")
	shrink := flag.Bool("shrink", false, "shrink the first violation to a minimal repro")
	seedBug := flag.Bool("seed-bug", false,
		"plant an ordering bug (soft updates drops its directory-entry dependency)")
	full := flag.Bool("full", false,
		"disable incremental checking: full fsck per candidate image")
	passWorkers := flag.Int("pass-workers", 0,
		"fsck pass-level parallelism per image (0: serial passes)")
	dist := flag.Bool("dist", false,
		"check a power-failed sharded dmeta cluster instead of one file system")
	distNodes := flag.Int("dist-nodes", 4, "cluster shard count for -dist")
	engineWorkers := flag.Int("engine-workers", 0, "with -dist: parallel event-engine workers building the crashed cluster (0/1: serial; images are byte-identical at any count)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	flag.Parse()

	var list []fsim.Scheme
	for _, name := range strings.Split(*schemes, ",") {
		s, err := parseScheme(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdcheck:", err)
			os.Exit(2)
		}
		list = append(list, s)
	}

	mc := crashmc.Config{
		Workers:     *workers,
		Budget:      *budget,
		PerInstant:  *perInstant,
		Shrink:      *shrink,
		FullCheck:   *full,
		PassWorkers: *passWorkers,
	}

	if *dist {
		os.Exit(runDist(list, mc, *distNodes, *engineWorkers, *jsonOut))
	}

	opt := harness.CrashCheckOptions{
		Files:   *files,
		SeedBug: *seedBug,
		MC:      mc,
	}

	var out *os.File
	if !*jsonOut {
		out = os.Stdout
	}
	rows := harness.CrashCheckMatrix(list, opt, out)

	bad := false
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %s: %v\n", r.Scheme, r.Err)
			bad = true
			continue
		}
		expectClean := r.ExpectClean() && !*seedBug
		if r.Result.Clean() != expectClean {
			bad = true
		}
		if *jsonOut {
			continue
		}
		for i, v := range r.Result.Violations {
			if i >= 3 {
				fmt.Printf("  ... %d more retained violations\n", len(r.Result.Violations)-i)
				break
			}
			fmt.Printf("  [%s] violation seq=%d instant=%d completed=%d applied=%d partial=%v\n",
				r.Scheme, v.Seq, v.Instant, v.Completed, len(v.Applied), v.Partial != nil)
			for _, f := range v.Findings {
				fmt.Printf("      %s\n", f)
			}
		}
		if r.Result.Repro != nil {
			fmt.Printf("  [%s] %s\n", r.Scheme, r.Result.Repro)
		}
	}
	if *jsonOut {
		type row struct {
			Scheme string          `json:"scheme"`
			Error  string          `json:"error,omitempty"`
			Result *crashmc.Result `json:"result,omitempty"`
		}
		var doc []row
		for _, r := range rows {
			jr := row{Scheme: r.Scheme.String(), Result: r.Result}
			if r.Err != nil {
				jr.Error = r.Err.Error()
			}
			doc = append(doc, jr)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "mdcheck:", err)
			os.Exit(2)
		}
	}
	if bad {
		os.Exit(1)
	}
}

// runDist checks a power-failed dmeta cluster per scheme: every shard's
// recorded timeline is explored with fsck plus the naming-discipline
// oracle, and the crash-cut images get a cross-node reference scan. The
// verdict rule matches the single-machine matrix — ordering schemes must
// come up clean, noorder must not.
func runDist(list []fsim.Scheme, mc crashmc.Config, nodes, engineWorkers int, jsonOut bool) int {
	type row struct {
		Scheme string                        `json:"scheme"`
		Error  string                        `json:"error,omitempty"`
		Result *harness.DistCrashCheckResult `json:"result,omitempty"`
	}
	var doc []row
	bad := false
	for _, s := range list {
		res, err := harness.DistCrashCheck(harness.DistCrashCheckOptions{
			Scheme:        s,
			Nodes:         nodes,
			MC:            mc,
			EngineWorkers: engineWorkers,
		})
		jr := row{Scheme: s.String(), Result: res}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcheck: %s: %v\n", s, err)
			jr.Error = err.Error()
			bad = true
		} else {
			expectClean := s != fsim.NoOrder
			if res.Clean() != expectClean {
				bad = true
			}
			if !jsonOut {
				fmt.Printf("== %s cluster (%d nodes) ==\n", s, nodes)
				res.Fprint(os.Stdout)
			}
		}
		doc = append(doc, jr)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "mdcheck:", err)
			return 2
		}
	}
	if bad {
		return 1
	}
	return 0
}
