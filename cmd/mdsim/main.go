// Command mdsim regenerates the paper's tables and figures.
//
// Usage:
//
//	mdsim -list
//	mdsim -exp table1
//	mdsim -exp fig5 -scale 0.25
//	mdsim -exp all -j 8
//	mdsim -exp all -scale 0.1 -json results.json
//
// Each experiment declares its simulation cells (one self-contained
// deterministic system + workload per cell); a shared runner executes them
// on a -j-wide worker pool and memoizes results by fingerprint, so cells
// common to several exhibits simulate once per process. Tables go to
// stdout and are byte-identical for any -j and for cold or warm memos;
// timing and cache diagnostics go to stderr. -scale shrinks workload sizes
// for quicker runs; shapes are stable well below 1.0. -json additionally
// writes the machine-readable report (rows, per-cell wall-clock,
// memoization counters).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"metaupdate/fsim"
	"metaupdate/internal/harness"
	"metaupdate/internal/trace"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list), or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-sized)")
	jobs := flag.Int("j", 0, "max simulation cells in flight (0: GOMAXPROCS)")
	jsonPath := flag.String("json", "", "also write a machine-readable report to this file")
	list := flag.Bool("list", false, "list available experiments")
	faults := flag.Bool("faults", false, "run the fault-injection recovery sweep (per-scheme crash recovery on a faulty disk)")
	opstats := flag.Bool("opstats", false, "run the per-scheme operation profile (virtual-time latency/stage breakdown per op type)")
	dist := flag.Bool("dist", false, "run the sharded metadata service sweep (per-scheme clusters at 1/4/16 nodes with dynamic splitting)")
	engineWorkers := flag.Int("engine-workers", 0, "with -dist/-scenario: run each cluster cell on this many parallel event-engine workers (0/1: serial; output is byte-identical at any count)")
	load := flag.Bool("load", false, "run the open-loop saturation study (per-scheme latency-vs-offered-load curves on the mail scenario)")
	scenarioName := flag.String("scenario", "", "run one open-loop scenario across schemes at -rate (mail|build|webcache)")
	rate := flag.Int("rate", 200, "with -scenario: offered load in ops per virtual second")
	scenarioNodes := flag.Int("scenario-nodes", 0, "with -scenario: also run the scenario against a metadata cluster of this many nodes (> 1)")
	opTrace := flag.String("optrace", "", "run the 4-user copy under -optrace-scheme and write a Chrome trace-event JSON of the operation spans to this file")
	opTraceScheme := flag.String("optrace-scheme", "softupdates", "scheme for -optrace (conventional|flag|chains|softupdates|noorder|nvram|journaling|async)")
	traceScheme := flag.String("trace", "", "run the 4-user copy under this scheme and print the I/O trace analysis (conventional|flag|chains|softupdates|noorder|nvram|journaling|async)")
	csvPath := flag.String("csv", "", "with -trace: also write the raw per-request trace as CSV to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "[wrote CPU profile to %s]\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
				return
			}
			defer f.Close()
			// The allocs profile carries cumulative allocation counts —
			// the numerator of the allocs/op figures in BENCH_2.json.
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "[wrote allocation profile to %s]\n", path)
		}()
	}

	if *faults {
		// The fault sweep is an opt-in diagnostic, not one of the paper's
		// exhibits, so it lives outside -exp/-list. Cells run on the same
		// memoizing runner; stdout is byte-identical for any -j.
		runner := harness.NewRunner(*jobs)
		cfg := harness.DefaultConfig(os.Stdout)
		cfg.Runner = runner
		for _, t := range harness.FaultRecoveryExhibit.Tables(cfg) {
			t.Fprint(os.Stdout)
		}
		st := runner.Stats()
		fmt.Fprintf(os.Stderr, "[faults: %d cells simulated, %d memo hits, %d workers]\n",
			st.Executed, st.Hits, st.Workers)
		return
	}

	if *opstats {
		// Like -faults: an opt-in diagnostic outside -exp/-list, so the
		// golden transcript pinning `-exp all` is untouched. All numbers
		// are virtual-time, so stdout is byte-identical for any -j.
		runner := harness.NewRunner(*jobs)
		cfg := harness.DefaultConfig(os.Stdout)
		cfg.Scale = harness.Scale(*scale)
		cfg.Runner = runner
		for _, t := range harness.OpStatsExhibit.Tables(cfg) {
			t.Fprint(os.Stdout)
		}
		st := runner.Stats()
		fmt.Fprintf(os.Stderr, "[opstats: %d cells simulated, %d memo hits, %d workers]\n",
			st.Executed, st.Hits, st.Workers)
		return
	}

	if *dist {
		// Like -faults and -opstats: an opt-in extension outside
		// -exp/-list, so the golden transcript pinning `-exp all` is
		// untouched. All numbers are virtual-time, so stdout is
		// byte-identical for any -j.
		runner := harness.NewRunner(*jobs)
		cfg := harness.DefaultConfig(os.Stdout)
		cfg.Scale = harness.Scale(*scale)
		cfg.Runner = runner
		cfg.EngineWorkers = *engineWorkers
		for _, t := range harness.DistExhibit.Tables(cfg) {
			t.Fprint(os.Stdout)
		}
		st := runner.Stats()
		fmt.Fprintf(os.Stderr, "[dist: %d cells simulated, %d memo hits, %d workers]\n",
			st.Executed, st.Hits, st.Workers)
		return
	}

	if *load || *scenarioName != "" {
		// Like -faults/-opstats/-dist: opt-in studies outside -exp/-list,
		// so the golden transcript pinning `-exp all` is untouched. All
		// numbers are virtual-time, so stdout is byte-identical for any -j
		// and cold or warm memos; -json captures the same tables.
		runner := harness.NewRunner(*jobs)
		cfg := harness.DefaultConfig(os.Stdout)
		cfg.Scale = harness.Scale(*scale)
		cfg.Runner = runner
		cfg.EngineWorkers = *engineWorkers
		var exhibits []*harness.Exhibit
		if *load {
			exhibits = append(exhibits, harness.LoadCurveExhibit)
		}
		if *scenarioName != "" {
			exhibits = append(exhibits, harness.ScenarioExhibit(*scenarioName, *rate, *scenarioNodes))
		}
		report := harness.Report{Scale: *scale, Jobs: runner.Workers(), CPUs: runtime.NumCPU()}
		total := time.Now()
		for _, ex := range exhibits {
			start := time.Now()
			tables := ex.Tables(cfg)
			for _, t := range tables {
				t.Fprint(os.Stdout)
			}
			report.Exhibits = append(report.Exhibits, harness.ExhibitReport{
				Name: ex.Name, WallSec: time.Since(start).Seconds(), Tables: tables,
			})
		}
		report.WallSec = time.Since(total).Seconds()
		report.Runner = runner.Stats()
		report.Cells = runner.CellTimings()
		st := report.Runner
		fmt.Fprintf(os.Stderr, "[load: %d cells simulated, %d memo hits, %d workers]\n",
			st.Executed, st.Hits, st.Workers)
		if *jsonPath != "" {
			if err := writeReport(report, *jsonPath); err != nil {
				fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *opTrace != "" {
		if err := runOpTrace(*opTraceScheme, harness.Scale(*scale), *opTrace); err != nil {
			fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *traceScheme != "" {
		if err := runTrace(*traceScheme, harness.Scale(*scale), *csvPath); err != nil {
			fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, name := range harness.ExperimentNames {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("  all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	runner := harness.NewRunner(*jobs)
	cfg := harness.DefaultConfig(os.Stdout)
	cfg.Scale = harness.Scale(*scale)
	cfg.Runner = runner

	names := []string{*exp}
	if *exp == "all" {
		names = harness.ExperimentNames
	}
	report := harness.Report{
		Scale: *scale,
		Jobs:  runner.Workers(),
		CPUs:  runtime.NumCPU(),
	}
	total := time.Now()
	for _, name := range names {
		ex := harness.ExhibitByName[name]
		if ex == nil {
			fmt.Fprintf(os.Stderr, "mdsim: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		tables := ex.Tables(cfg)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		wall := time.Since(start)
		// Diagnostics go to stderr so stdout stays byte-identical across
		// -j values and cache states.
		fmt.Fprintf(os.Stderr, "[%s completed in %.1fs of real time]\n", name, wall.Seconds())
		report.Exhibits = append(report.Exhibits, harness.ExhibitReport{
			Name: name, WallSec: wall.Seconds(), Tables: tables,
		})
	}
	report.WallSec = time.Since(total).Seconds()
	report.Runner = runner.Stats()
	report.Cells = runner.CellTimings()
	st := report.Runner
	fmt.Fprintf(os.Stderr,
		"[runner: %d cells simulated, %d memo hits, %d workers, %.1fs cell time in %.1fs wall]\n",
		st.Executed, st.Hits, st.Workers, st.CellWall, report.WallSec)

	if *jsonPath != "" {
		if err := writeReport(report, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeReport writes the machine-readable report and logs the path.
func writeReport(report harness.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[wrote JSON report to %s]\n", path)
	return nil
}

// parseScheme maps a CLI scheme name to the fsim constant.
func parseScheme(name string) (fsim.Scheme, error) {
	switch strings.ToLower(name) {
	case "conventional":
		return fsim.Conventional, nil
	case "flag":
		return fsim.SchedulerFlag, nil
	case "chains":
		return fsim.SchedulerChains, nil
	case "softupdates", "soft":
		return fsim.SoftUpdates, nil
	case "noorder":
		return fsim.NoOrder, nil
	case "nvram":
		return fsim.NVRAM, nil
	case "journaling", "journal":
		return fsim.Journaling, nil
	case "async", "asyncdurability":
		return fsim.AsyncDurability, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}

// runOpTrace runs the 4-user copy with the operation-span recorder
// attached and writes the spans as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto). The file is byte-deterministic: all
// timestamps are virtual.
func runOpTrace(schemeName string, scale harness.Scale, path string) error {
	scheme, err := parseScheme(schemeName)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	spans, elapsed, err := harness.OpTraceCopy(fsim.Options{Scheme: scheme}, 4, scale, f)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("4-user copy under %s: mean per-user elapsed %.1fs\n", scheme, elapsed.Seconds())
	fmt.Printf("wrote %d operation spans to %s\n", spans, path)
	return nil
}

// runTrace reproduces the paper's measurement methodology on demand: run
// the 4-user copy benchmark under one scheme with the driver instrumented,
// then analyze the per-request queue and service delays.
func runTrace(schemeName string, scale harness.Scale, csvPath string) error {
	scheme, err := parseScheme(schemeName)
	if err != nil {
		return err
	}
	stats, elapsed := harness.TraceCopy(fsim.Options{Scheme: scheme}, 4, scale)
	fmt.Printf("4-user copy under %s: mean per-user elapsed %.1fs\n\n", scheme, elapsed.Seconds())
	trace.Analyze(stats).Fprint(os.Stdout)
	fmt.Println()
	trace.ServiceHistogram(stats).Fprint(os.Stdout, "disk access time")
	fmt.Println()
	trace.ResponseHistogram(stats).Fprint(os.Stdout, "driver response time")
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, stats); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d rows to %s\n", len(stats), csvPath)
	}
	return nil
}
