// Command mdsim regenerates the paper's tables and figures.
//
// Usage:
//
//	mdsim -list
//	mdsim -exp table1
//	mdsim -exp fig5 -scale 0.25
//	mdsim -exp all
//
// Each experiment builds fresh simulated systems (CPU, disk, driver, cache,
// file system) for every configuration it compares, runs the paper's
// workload in deterministic virtual time, and prints the corresponding
// table. -scale shrinks workload sizes for quicker runs; shapes are stable
// well below 1.0.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"metaupdate/fsim"
	"metaupdate/internal/harness"
	"metaupdate/internal/trace"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list), or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-sized)")
	list := flag.Bool("list", false, "list available experiments")
	traceScheme := flag.String("trace", "", "run the 4-user copy under this scheme and print the I/O trace analysis (conventional|flag|chains|softupdates|noorder|nvram)")
	csvPath := flag.String("csv", "", "with -trace: also write the raw per-request trace as CSV to this file")
	flag.Parse()

	if *traceScheme != "" {
		if err := runTrace(*traceScheme, harness.Scale(*scale), *csvPath); err != nil {
			fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, name := range harness.ExperimentNames {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("  all")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := harness.DefaultConfig(os.Stdout)
	cfg.Scale = harness.Scale(*scale)

	names := []string{*exp}
	if *exp == "all" {
		names = harness.ExperimentNames
	}
	for _, name := range names {
		run, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mdsim: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		for _, t := range run(cfg) {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("\n[%s completed in %.1fs of real time]\n", name, time.Since(start).Seconds())
	}
}

// runTrace reproduces the paper's measurement methodology on demand: run
// the 4-user copy benchmark under one scheme with the driver instrumented,
// then analyze the per-request queue and service delays.
func runTrace(schemeName string, scale harness.Scale, csvPath string) error {
	var scheme fsim.Scheme
	switch strings.ToLower(schemeName) {
	case "conventional":
		scheme = fsim.Conventional
	case "flag":
		scheme = fsim.SchedulerFlag
	case "chains":
		scheme = fsim.SchedulerChains
	case "softupdates", "soft":
		scheme = fsim.SoftUpdates
	case "noorder":
		scheme = fsim.NoOrder
	case "nvram":
		scheme = fsim.NVRAM
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	stats, elapsed := harness.TraceCopy(fsim.Options{Scheme: scheme}, 4, scale)
	fmt.Printf("4-user copy under %s: mean per-user elapsed %.1fs\n\n", scheme, elapsed.Seconds())
	trace.Analyze(stats).Fprint(os.Stdout)
	fmt.Println()
	trace.ServiceHistogram(stats).Fprint(os.Stdout, "disk access time")
	fmt.Println()
	trace.ResponseHistogram(stats).Fprint(os.Stdout, "driver response time")
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, stats); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d rows to %s\n", len(stats), csvPath)
	}
	return nil
}
