// Command mdcrash runs a metadata-heavy workload under a chosen ordering
// scheme, pulls the (virtual) plug at a chosen instant, and reports what
// fsck finds — before and, optionally, after repair. It is the paper's
// integrity argument as an interactive tool.
//
//	mdcrash -scheme softupdates -at 40s
//	mdcrash -scheme noorder -at 40s -repair
//	mdcrash -scheme nvram -at 40s          # replays the NVRAM journal first
//	mdcrash -scheme journaling -at 40s     # replays the on-disk journal first
//	mdcrash -scheme softupdates -sweep 10  # ten instants across the run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"metaupdate/fsim"
	"metaupdate/internal/fsck"
)

func parseScheme(s string) (fsim.Scheme, error) {
	switch strings.ToLower(s) {
	case "conventional":
		return fsim.Conventional, nil
	case "flag":
		return fsim.SchedulerFlag, nil
	case "chains":
		return fsim.SchedulerChains, nil
	case "softupdates", "soft":
		return fsim.SoftUpdates, nil
	case "noorder":
		return fsim.NoOrder, nil
	case "nvram":
		return fsim.NVRAM, nil
	case "journaling", "journal":
		return fsim.Journaling, nil
	case "async", "asyncdurability":
		return fsim.AsyncDurability, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

// churn is the deterministic workload: continuous create/write/remove/
// rename traffic in one directory.
func churn(sys *fsim.System) {
	sys.Eng.Spawn("churn", func(p *fsim.Proc) {
		fs := sys.FS
		dir, err := fs.Mkdir(p, fsim.RootIno, "work")
		if err != nil {
			return
		}
		for i := 0; ; i++ {
			name := fmt.Sprintf("f%d", i%60)
			if ino, err := fs.Create(p, dir, name); err == nil {
				fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 2048+(i%5)*1500))
			}
			if i%3 == 2 {
				fs.Unlink(p, dir, fmt.Sprintf("f%d", (i-2)%60))
			}
			if i%11 == 10 {
				fs.Rename(p, dir, name, dir, fmt.Sprintf("r%d", i%60))
			}
		}
	})
}

func crashOnce(scheme fsim.Scheme, at fsim.Time, repair bool) (violations, repairables int) {
	sys, err := fsim.New(fsim.Options{Scheme: scheme})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcrash: %v\n", err)
		os.Exit(1)
	}
	churn(sys)
	img := sys.Crash(at)
	if sys.NV != nil {
		n := sys.NV.Log().Replay(img)
		fmt.Printf("  replayed %d NVRAM records\n", n)
	}
	if scheme == fsim.Journaling {
		n := fsck.ReplayJournal(img)
		fmt.Printf("  replayed %d journal transactions\n", n)
	}
	rep := fsck.Check(img)
	v, r := rep.Violations(), rep.Repairables()
	fmt.Printf("  fsck: %d integrity violations, %d repairable findings "+
		"(%d inodes, %d fragments in use)\n", len(v), len(r),
		rep.AllocatedInodes, rep.ReferencedFrags)
	for i, f := range v {
		if i == 8 {
			fmt.Printf("    ... and %d more violations\n", len(v)-8)
			break
		}
		fmt.Printf("    VIOLATION %v\n", f)
	}
	if repair {
		actions := fsck.Repair(img)
		after := fsck.Check(img)
		fmt.Printf("  repair: %d actions; fsck now reports %d findings\n",
			len(actions), len(after.Findings))
		for i, a := range actions {
			if i == 6 {
				fmt.Printf("    ... and %d more actions\n", len(actions)-6)
				break
			}
			fmt.Printf("    %s\n", a)
		}
	}
	return len(v), len(r)
}

func main() {
	schemeName := flag.String("scheme", "softupdates", "ordering scheme (conventional|flag|chains|softupdates|noorder|nvram|journaling|async)")
	at := flag.Duration("at", 40*time.Second, "virtual crash instant")
	sweep := flag.Int("sweep", 0, "crash at N instants spread over [at/2, at] instead of once")
	repair := flag.Bool("repair", false, "run fsck repair on the crashed image")
	flag.Parse()

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdcrash:", err)
		os.Exit(2)
	}
	vat := fsim.Time(at.Nanoseconds())
	if *sweep <= 1 {
		fmt.Printf("%s, crash at %v:\n", scheme, vat)
		crashOnce(scheme, vat, *repair)
		return
	}
	totalV := 0
	for i := 1; i <= *sweep; i++ {
		t := vat/2 + vat/2*fsim.Time(i)/fsim.Time(*sweep)
		fmt.Printf("%s, crash at %v:\n", scheme, t)
		v, _ := crashOnce(scheme, t, *repair)
		totalV += v
	}
	fmt.Printf("\nsweep total: %d integrity violations across %d crash points\n", totalV, *sweep)
}
