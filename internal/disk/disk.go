// Package disk models an HP C2447-class 3.5-inch 1 GB SCSI disk drive — the
// drive used in the paper's experiments — at the level of detail the
// benchmarks are sensitive to: seek distance, rotational position, media
// transfer rate, controller overhead, and an on-board read-ahead cache that
// makes sequential reads cheap.
//
// The model is passive: the device driver (package dev) asks for the service
// time of an access, schedules the completion in virtual time, and moves the
// data when the completion fires. Writes are sector-atomic, which is the
// paper's stated assumption ("each disk sector is protected by error
// correcting codes...") and is what the crash-injection machinery relies on:
// a write interrupted mid-transfer has committed an exact prefix of its
// sectors.
package disk

import (
	"fmt"
	"math"

	"metaupdate/internal/fault"
	"metaupdate/internal/sim"
)

// SectorSize is the fixed sector size in bytes.
const SectorSize = 512

// Params describes the mechanical and cache characteristics of the drive.
type Params struct {
	Cylinders       int     // seek distance domain
	Heads           int     // tracks per cylinder
	SectorsPerTrack int     // sectors per track (non-zoned simplification)
	RPM             float64 // spindle speed

	// Seek time model: 0 for distance 0, otherwise
	// SeekBase + SeekFactor*sqrt(distance) milliseconds, capped at SeekMax.
	SeekBaseMS   float64
	SeekFactorMS float64
	SeekMaxMS    float64

	CmdOverhead sim.Duration // per-command controller/SCSI overhead
	BusPerByte  sim.Duration // SCSI bus transfer time per byte

	// Read-ahead cache: after each media read the drive keeps reading
	// sequentially into a segment of this many sectors.
	PrefetchSectors int
}

// HPC2447 returns parameters approximating the paper's HP C2447 drive
// (1 GB, 3.5-inch, 5400 RPM SCSI-2; see the HP C2244/45/46/47 technical
// reference the paper cites). Exact numbers are unavailable offline, so
// these are drawn from the published class of the drive: ~10 ms average
// seek, 5400 RPM, ~2.3 MB/s media rate, 10 MB/s bus, 256 KB cache.
func HPC2447() Params {
	return Params{
		Cylinders:       3240,
		Heads:           9,
		SectorsPerTrack: 72,
		RPM:             5400,
		SeekBaseMS:      2.0,
		SeekFactorMS:    0.24,
		SeekMaxMS:       18.0,
		CmdOverhead:     700 * sim.Microsecond,
		BusPerByte:      sim.Duration(float64(sim.Second) / 10e6),
		PrefetchSectors: 512, // 256 KB
	}
}

// Capacity returns the drive capacity in bytes.
func (p Params) Capacity() int64 {
	return int64(p.Cylinders) * int64(p.Heads) * int64(p.SectorsPerTrack) * SectorSize
}

// RevTime returns the time for one spindle revolution.
func (p Params) RevTime() sim.Duration {
	return sim.Duration(60.0 / p.RPM * float64(sim.Second))
}

// Op distinguishes reads from writes.
type Op int

// Access operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Access describes the timing decomposition of one serviced request, so the
// driver can schedule the completion and, for crash injection, work out how
// many sectors a half-finished write had committed.
type Access struct {
	Service     sim.Duration // total: overhead + positioning + transfer
	Positioning sim.Duration // overhead + seek + rotational latency
	PerSector   sim.Duration // media (or bus, for cache hits) time per sector
	CacheHit    bool         // read fully satisfied from the read-ahead segment

	// Fault is the injected outcome of this access (fault.None on a
	// fault-free disk). The driver inspects it when the completion fires:
	// anything but None/Latency means the command failed and Service already
	// reflects where the transfer stopped.
	Fault fault.Outcome
}

// chunkBytes is the granularity of lazy media materialization. The harness
// creates hundreds of Systems per sweep, each with a media limit in the
// hundreds of megabytes but a working set of a few megabytes; allocating
// (and zeroing) the full limit up front dominated whole-suite CPU time, so
// media chunks come into existence only when first written.
const chunkBytes = 1 << 20

// Disk is the drive model plus its media contents.
type Disk struct {
	P    Params
	size int64 // materialized media bytes (whole sectors)
	// chunks holds the media in chunkBytes pieces; a nil chunk reads as
	// zeros and is allocated on first write. After Image() flattens the
	// media, every chunk aliases a window of the flat slice, so chunk
	// writes and the returned image stay coherent.
	chunks [][]byte
	flat   []byte // non-nil once Image has flattened the media

	headCyl int // current cylinder

	// Read-ahead segment: sectors [preStart, preEnd) were (or are being)
	// read into the on-board cache starting at preTime, one PerSector each.
	preStart, preEnd int64
	preTime          sim.Time
	mediaPerSector   sim.Duration

	// Fault injection: faults is consulted on every media access; remapped
	// holds the per-disk bad-sector remap table (sectors rewritten to the
	// spare pool after a write hit a permanent bad sector), bounded by
	// spares. Remapped sectors keep their logical address — the media image
	// stays indexed by LBN — but accesses touching them pay remapPenalty
	// for the head excursion to the spare area.
	faults       fault.Judge
	remapped     map[int64]struct{}
	spares       int
	remapPenalty sim.Duration

	// Stats for the experiment harness.
	Reads, Writes  int64
	SectorsRead    int64
	SectorsWritten int64
	BusyTime       sim.Duration
	SeekTimeTotal  sim.Duration
	Remaps         int64 // sectors remapped to spares
	FaultsSeen     int64 // accesses judged to fault (any kind)
}

// New returns a disk with the given parameters and zeroed media. Only
// `sizeLimit` bytes of media are addressable (the file systems in this
// repository use far less than the full 1 GB); accesses past the limit
// panic, which always indicates an addressing bug. Media is materialized
// lazily in chunkBytes pieces, so an untouched region costs nothing.
func New(p Params, sizeLimit int64) *Disk {
	if sizeLimit <= 0 || sizeLimit > p.Capacity() {
		sizeLimit = p.Capacity()
	}
	// Round up to a whole sector.
	sizeLimit = (sizeLimit + SectorSize - 1) / SectorSize * SectorSize
	return &Disk{
		P:              p,
		size:           sizeLimit,
		chunks:         make([][]byte, (sizeLimit+chunkBytes-1)/chunkBytes),
		mediaPerSector: sim.Duration(int64(p.RevTime()) / int64(p.SectorsPerTrack)),
		preStart:       -1,
		preEnd:         -1,
	}
}

// Sectors returns the number of addressable sectors.
func (d *Disk) Sectors() int64 { return d.size / SectorSize }

// SetFaults installs a fault judge (nil removes it) and sizes the spare
// pool for bad-sector remapping. spares <= 0 selects DefaultSpareSectors.
func (d *Disk) SetFaults(j fault.Judge, spares int) {
	if spares <= 0 {
		spares = DefaultSpareSectors
	}
	d.faults = j
	d.spares = spares
	d.remapped = make(map[int64]struct{})
	d.remapPenalty = d.P.RevTime() // one extra revolution reaching the spare area
}

// DefaultSpareSectors is the default bad-sector spare pool size.
const DefaultSpareSectors = 64

// IsRemapped reports whether sector lbn has been remapped to a spare.
func (d *Disk) IsRemapped(lbn int64) bool {
	_, ok := d.remapped[lbn]
	return ok
}

// Remap moves sector lbn to the spare pool, reporting false when the pool
// is exhausted. The driver calls it after a write hit a permanent bad
// sector; from then on the sector reads and writes normally (at its logical
// address — the media image is unchanged) with a per-access penalty.
func (d *Disk) Remap(lbn int64) bool {
	if d.remapped == nil || len(d.remapped) >= d.spares {
		return false
	}
	d.remapped[lbn] = struct{}{}
	d.Remaps++
	return true
}

// chunkLen returns the byte length of chunk i (the last chunk may be short).
func (d *Disk) chunkLen(i int64) int {
	if n := d.size - i*chunkBytes; n < chunkBytes {
		return int(n)
	}
	return chunkBytes
}

// writeAt copies p onto the media at byte offset off, materializing chunks
// as needed.
func (d *Disk) writeAt(off int64, p []byte) {
	if off < 0 || off+int64(len(p)) > d.size {
		panic(fmt.Sprintf("disk: write [%d,%d) outside media [0,%d)", off, off+int64(len(p)), d.size))
	}
	for len(p) > 0 {
		ci, co := off/chunkBytes, off%chunkBytes
		c := d.chunks[ci]
		if c == nil {
			c = make([]byte, d.chunkLen(ci))
			d.chunks[ci] = c
		}
		n := copy(c[co:], p)
		p = p[n:]
		off += int64(n)
	}
}

// readAt fills buf from media byte offset off; unmaterialized chunks read
// as zeros.
func (d *Disk) readAt(off int64, buf []byte) {
	if off < 0 || off+int64(len(buf)) > d.size {
		panic(fmt.Sprintf("disk: read [%d,%d) outside media [0,%d)", off, off+int64(len(buf)), d.size))
	}
	for len(buf) > 0 {
		ci, co := off/chunkBytes, off%chunkBytes
		var n int
		if c := d.chunks[ci]; c == nil {
			n = d.chunkLen(ci) - int(co)
			if n > len(buf) {
				n = len(buf)
			}
			clear(buf[:n])
		} else {
			n = copy(buf, c[co:])
		}
		buf = buf[n:]
		off += int64(n)
	}
}

// WriteAt copies buf onto the media at byte offset off, outside simulated
// time and with no sector-alignment requirement. It exists for mkfs-style
// initializers (ffs.Format) that would otherwise flatten the lazy media
// through Image just to poke a few kilobytes.
func (d *Disk) WriteAt(off int64, buf []byte) { d.writeAt(off, buf) }

func (d *Disk) cylOf(lbn int64) int {
	return int(lbn / int64(d.P.SectorsPerTrack*d.P.Heads))
}

func (d *Disk) seekTime(from, to int) sim.Duration {
	dist := to - from
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	ms := d.P.SeekBaseMS + d.P.SeekFactorMS*math.Sqrt(float64(dist))
	if ms > d.P.SeekMaxMS {
		ms = d.P.SeekMaxMS
	}
	return sim.Duration(ms * float64(sim.Millisecond))
}

// rotationalLatency returns the wait from t until the head is over the start
// of sector lbn, assuming continuous rotation with all tracks aligned.
func (d *Disk) rotationalLatency(t sim.Time, lbn int64) sim.Duration {
	rev := int64(d.P.RevTime())
	sector := lbn % int64(d.P.SectorsPerTrack)
	target := sector * int64(d.mediaPerSector) % rev
	pos := int64(t) % rev
	wait := target - pos
	if wait < 0 {
		wait += rev
	}
	return sim.Duration(wait)
}

// Plan computes the service timing of an access beginning at virtual time
// `now`, updating head and cache state. The caller is responsible for
// scheduling the completion and then calling Commit (writes) or ReadAt
// (reads) when it fires.
func (d *Disk) Plan(now sim.Time, op Op, lbn int64, count int) Access {
	if count <= 0 {
		panic("disk: access with non-positive sector count")
	}
	if lbn < 0 || lbn+int64(count) > d.Sectors() {
		panic(fmt.Sprintf("disk: access [%d,%d) outside materialized media [0,%d)", lbn, lbn+int64(count), d.Sectors()))
	}

	if op == Read {
		d.Reads++
		d.SectorsRead += int64(count)
	} else {
		d.Writes++
		d.SectorsWritten += int64(count)
	}

	// Read fully inside the read-ahead segment: no mechanical motion, just
	// controller overhead, a possible wait for the read-ahead to catch up,
	// and the bus transfer.
	if op == Read && d.preStart >= 0 && lbn >= d.preStart && lbn+int64(count) <= d.preEnd {
		avail := d.preTime + sim.Duration(lbn+int64(count)-d.preStart)*d.mediaPerSector
		wait := avail - now
		if wait < 0 {
			wait = 0
		}
		bus := sim.Duration(count*SectorSize) * d.P.BusPerByte
		acc := Access{
			Service:     d.P.CmdOverhead + wait + bus,
			Positioning: d.P.CmdOverhead + wait,
			PerSector:   sim.Duration(SectorSize) * d.P.BusPerByte,
			CacheHit:    true,
		}
		d.BusyTime += acc.Service
		return acc
	}

	cyl := d.cylOf(lbn)
	seek := d.seekTime(d.headCyl, cyl)
	d.headCyl = cyl
	d.SeekTimeTotal += seek
	rot := d.rotationalLatency(now+d.P.CmdOverhead+seek, lbn)
	transfer := sim.Duration(count) * d.mediaPerSector
	acc := Access{
		Service:     d.P.CmdOverhead + seek + rot + transfer,
		Positioning: d.P.CmdOverhead + seek + rot,
		PerSector:   d.mediaPerSector,
	}
	d.applyFaults(&acc, op, lbn, count)
	d.BusyTime += acc.Service

	failed := acc.Fault.Kind == fault.Transient || acc.Fault.Kind == fault.BadSector
	if op == Read {
		if failed {
			// A failed read leaves no trustworthy read-ahead segment.
			d.preStart, d.preEnd = -1, -1
		} else {
			// The drive keeps reading ahead into its segment after the
			// request's last sector.
			d.preStart = lbn
			d.preEnd = lbn + int64(count) + int64(d.P.PrefetchSectors)
			if d.preEnd > d.Sectors() {
				d.preEnd = d.Sectors()
			}
			d.preTime = now + acc.Positioning
		}
	} else {
		// Writes invalidate any overlapping cached read-ahead data.
		if d.preStart >= 0 && lbn < d.preEnd && lbn+int64(count) > d.preStart {
			d.preStart, d.preEnd = -1, -1
		}
	}
	return acc
}

// applyFaults judges the access against the installed fault plan and folds
// the outcome into the timing: a latency spike extends the transfer; a
// transient error aborts the command during positioning (nothing reaches
// the media); a torn write or a bad sector stops the transfer at the
// offending point, so Service covers exactly the sectors that made it. The
// read-ahead hit path never gets here — cache hits do not touch the media.
//
// Accesses that touch remapped sectors pay one extra revolution per such
// sector for the excursion to the spare area — the graceful-degradation
// cost of remapping.
func (d *Disk) applyFaults(acc *Access, op Op, lbn int64, count int) {
	if d.faults == nil {
		return
	}
	if len(d.remapped) > 0 {
		for s := lbn; s < lbn+int64(count); s++ {
			if _, ok := d.remapped[s]; ok {
				acc.Service += d.remapPenalty
				acc.Positioning += d.remapPenalty
			}
		}
	}
	out := d.faults.Judge(op == Write, lbn, count, d.IsRemapped)
	if out.Kind == fault.None {
		return
	}
	d.FaultsSeen++
	switch out.Kind {
	case fault.Latency:
		acc.Service += out.Extra
	case fault.Transient:
		// Command aborted before the transfer started.
		acc.Service = acc.Positioning
	case fault.Torn, fault.BadSector:
		done := out.TornSectors
		if done > count {
			done = count
		}
		acc.Service = acc.Positioning + acc.PerSector*sim.Duration(done)
	}
	acc.Fault = out
}

// Commit copies data for a completed write onto the media. len(data) must be
// a whole number of sectors.
func (d *Disk) Commit(lbn int64, data []byte) {
	if len(data)%SectorSize != 0 {
		panic("disk: write not sector-aligned")
	}
	d.writeAt(lbn*SectorSize, data)
}

// CommitPrefix applies only the first n sectors of a write — the crash case.
func (d *Disk) CommitPrefix(lbn int64, data []byte, n int) {
	if n < 0 {
		n = 0
	}
	if max := len(data) / SectorSize; n > max {
		n = max
	}
	d.writeAt(lbn*SectorSize, data[:n*SectorSize])
}

// ReadAt copies count sectors starting at lbn into buf.
func (d *Disk) ReadAt(lbn int64, buf []byte) {
	d.readAt(lbn*SectorSize, buf)
}

// Image returns the raw media contents, NOT a copy: the returned slice
// aliases the live media, so any later simulated write — including the
// sector-prefix commits of Driver.Crash — mutates it in place. It exists
// for read-only inspection of a halted simulation. Anything that captures
// a crash image for later analysis while the system may still move
// (fsim.System.Crash, the crash tests, the crashmc base snapshot) must use
// CloneImage instead.
//
// The first call flattens the lazily-chunked media into one contiguous
// slice and re-points every chunk into it, so the aliasing guarantee holds
// across later writes; the flattening cost (size-of-media allocation) is
// paid only by callers that need the raw image.
func (d *Disk) Image() []byte {
	if d.flat == nil {
		flat := make([]byte, d.size)
		for i, c := range d.chunks {
			if c != nil {
				copy(flat[int64(i)*chunkBytes:], c)
			}
		}
		for i := range d.chunks {
			lo := int64(i) * chunkBytes
			hi := lo + int64(d.chunkLen(int64(i)))
			d.chunks[i] = flat[lo:hi:hi]
		}
		d.flat = flat
	}
	return d.flat
}

// CloneImage returns an independent copy of the media — the required form
// for crash images and before/after comparisons (see Image for the
// aliasing hazard it avoids).
func (d *Disk) CloneImage() []byte {
	c := make([]byte, d.size)
	for i, ch := range d.chunks {
		if ch != nil {
			copy(c[int64(i)*chunkBytes:], ch)
		}
	}
	return c
}
