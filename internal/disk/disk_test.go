package disk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"metaupdate/internal/sim"
)

func testDisk() *Disk { return New(HPC2447(), 64<<20) }

func TestCapacityAndSectors(t *testing.T) {
	p := HPC2447()
	if got := p.Capacity(); got < 1<<30 {
		t.Errorf("capacity = %d, want >= 1 GB", got)
	}
	d := New(p, 64<<20)
	if d.Sectors() != (64<<20)/SectorSize {
		t.Errorf("Sectors() = %d", d.Sectors())
	}
}

func TestRevTime(t *testing.T) {
	p := HPC2447()
	rev := p.RevTime()
	secs := 60.0 / p.RPM // ~11.11 ms
	want := sim.Duration(secs * float64(sim.Second))
	if rev != want {
		t.Errorf("RevTime = %v, want %v", rev, want)
	}
}

func TestSeekCurve(t *testing.T) {
	d := testDisk()
	if s := d.seekTime(100, 100); s != 0 {
		t.Errorf("zero-distance seek = %v, want 0", s)
	}
	short := d.seekTime(0, 1)
	long := d.seekTime(0, 3000)
	if short <= 0 || long <= short {
		t.Errorf("seek curve not monotonic: short=%v long=%v", short, long)
	}
	if long > sim.Duration(d.P.SeekMaxMS*float64(sim.Millisecond)) {
		t.Errorf("seek %v exceeds cap", long)
	}
	if short < 2*sim.Millisecond || short > 3*sim.Millisecond {
		t.Errorf("track-to-track seek = %v, want ~2.2ms", short)
	}
}

func TestRandomVsSequentialReads(t *testing.T) {
	// Sequential 8 KB reads must be far cheaper on average than random ones,
	// thanks to the read-ahead segment.
	const blk = 16 // sectors
	seq := testDisk()
	var now sim.Time
	var seqTotal sim.Duration
	for i := 0; i < 100; i++ {
		a := seq.Plan(now, Read, int64(i*blk), blk)
		seqTotal += a.Service
		now += a.Service
	}

	rnd := testDisk()
	rng := rand.New(rand.NewSource(1))
	now = 0
	var rndTotal sim.Duration
	for i := 0; i < 100; i++ {
		lbn := rng.Int63n(rnd.Sectors() - blk)
		a := rnd.Plan(now, Read, lbn, blk)
		rndTotal += a.Service
		now += a.Service
	}
	if seqTotal*3 > rndTotal {
		t.Errorf("sequential reads (%v) not much cheaper than random (%v)", seqTotal, rndTotal)
	}
}

func TestPrefetchHit(t *testing.T) {
	d := testDisk()
	a1 := d.Plan(0, Read, 0, 16)
	if a1.CacheHit {
		t.Fatal("first read cannot be a cache hit")
	}
	a2 := d.Plan(a1.Service, Read, 16, 16)
	if !a2.CacheHit {
		t.Fatal("immediately following sequential read should hit read-ahead")
	}
	if a2.Service >= a1.Service {
		t.Errorf("cache hit (%v) not faster than miss (%v)", a2.Service, a1.Service)
	}
}

func TestWriteInvalidatesPrefetch(t *testing.T) {
	d := testDisk()
	a := d.Plan(0, Read, 0, 16)
	d.Plan(a.Service, Write, 20, 4) // overlaps the read-ahead window
	a3 := d.Plan(a.Service*2, Read, 16, 4)
	if a3.CacheHit {
		t.Error("read after overlapping write still hit stale cache")
	}
}

func TestPrefetchHitWaitsForCatchup(t *testing.T) {
	d := testDisk()
	a1 := d.Plan(0, Read, 0, 16)
	// Ask immediately for a sector far into the read-ahead window: the
	// drive hasn't read it yet, so service includes catch-up time.
	near := d.Plan(a1.Service, Read, 16, 1)
	d2 := testDisk()
	b1 := d2.Plan(0, Read, 0, 16)
	far := d2.Plan(b1.Service, Read, 400, 1)
	if !near.CacheHit || !far.CacheHit {
		t.Fatal("expected both reads to be cache hits")
	}
	if far.Service <= near.Service {
		t.Errorf("far-ahead hit (%v) should wait longer than near hit (%v)", far.Service, near.Service)
	}
}

func TestCommitAndReadBack(t *testing.T) {
	d := testDisk()
	src := make([]byte, 3*SectorSize)
	for i := range src {
		src[i] = byte(i)
	}
	d.Commit(10, src)
	got := make([]byte, len(src))
	d.ReadAt(10, got)
	if !bytes.Equal(got, src) {
		t.Fatal("read-back mismatch")
	}
}

func TestCommitPrefix(t *testing.T) {
	d := testDisk()
	src := bytes.Repeat([]byte{0xAA}, 4*SectorSize)
	d.CommitPrefix(0, src, 2)
	got := make([]byte, 4*SectorSize)
	d.ReadAt(0, got)
	if !bytes.Equal(got[:2*SectorSize], src[:2*SectorSize]) {
		t.Error("prefix sectors not committed")
	}
	for _, b := range got[2*SectorSize:] {
		if b != 0 {
			t.Fatal("sectors beyond prefix were committed")
		}
	}
	// Out-of-range prefix counts are clamped.
	d.CommitPrefix(0, src, 99)
	d.ReadAt(0, got)
	if !bytes.Equal(got, src) {
		t.Error("clamped full commit failed")
	}
	d.CommitPrefix(8, src, -3) // no-op
}

func TestStatsAccumulate(t *testing.T) {
	d := testDisk()
	d.Plan(0, Read, 0, 16)
	d.Plan(0, Write, 1000, 2)
	if d.Reads != 1 || d.Writes != 1 {
		t.Errorf("counts: %d reads %d writes", d.Reads, d.Writes)
	}
	if d.SectorsRead != 16 || d.SectorsWritten != 2 {
		t.Errorf("sector counts: %d read %d written", d.SectorsRead, d.SectorsWritten)
	}
	if d.BusyTime <= 0 {
		t.Error("busy time not accumulated")
	}
}

func TestAccessOutOfRangePanics(t *testing.T) {
	d := testDisk()
	for _, tc := range []struct{ lbn, count int64 }{
		{-1, 1}, {d.Sectors(), 1}, {d.Sectors() - 1, 2}, {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Plan(%d,%d) did not panic", tc.lbn, tc.count)
				}
			}()
			d.Plan(0, Read, tc.lbn, int(tc.count))
		}()
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Op strings wrong")
	}
}

// Property: every planned access has positive service time bounded by
// overhead + max seek + one revolution + transfer, and Positioning <= Service.
func TestServiceTimeBoundsQuick(t *testing.T) {
	d := testDisk()
	rev := d.P.RevTime()
	maxSeek := sim.Duration(d.P.SeekMaxMS * float64(sim.Millisecond))
	var now sim.Time // monotonic, as in real use
	f := func(rawLBN int64, rawCount uint8, isWrite bool, rawGap int64) bool {
		count := int(rawCount%64) + 1
		lbn := rawLBN % (d.Sectors() - int64(count))
		if lbn < 0 {
			lbn = -lbn
		}
		gap := rawGap % int64(100*sim.Millisecond)
		if gap < 0 {
			gap = -gap
		}
		now += sim.Duration(gap)
		op := Read
		if isWrite {
			op = Write
		}
		a := d.Plan(now, op, lbn, count)
		now += a.Service
		transfer := sim.Duration(count) * a.PerSector
		// Cache hits may wait for the read-ahead to cover the whole
		// prefetch window, which can span several revolutions.
		catchup := sim.Duration(d.P.PrefetchSectors+count) * d.mediaPerSector
		upper := d.P.CmdOverhead + maxSeek + rev + transfer + catchup
		return a.Service > 0 && a.Positioning <= a.Service && a.Service <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Commit then ReadAt round-trips arbitrary sector-aligned data.
func TestCommitRoundTripQuick(t *testing.T) {
	d := testDisk()
	f := func(seed int64, rawLBN int64, rawCount uint8) bool {
		count := int(rawCount%8) + 1
		lbn := rawLBN % (d.Sectors() - int64(count))
		if lbn < 0 {
			lbn = -lbn
		}
		src := make([]byte, count*SectorSize)
		rand.New(rand.NewSource(seed)).Read(src)
		d.Commit(lbn, src)
		got := make([]byte, len(src))
		d.ReadAt(lbn, got)
		return bytes.Equal(src, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
