package trace

import (
	"strings"
	"testing"

	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/sim"
)

func mkStat(op disk.Op, qMS, sMS float64) dev.Stat {
	return dev.Stat{
		Op:       op,
		Sectors:  16,
		Queue:    sim.Duration(qMS * float64(sim.Millisecond)),
		Service:  sim.Duration(sMS * float64(sim.Millisecond)),
		Response: sim.Duration((qMS + sMS) * float64(sim.Millisecond)),
	}
}

func TestAnalyzeCounts(t *testing.T) {
	stats := []dev.Stat{
		mkStat(disk.Read, 1, 10),
		mkStat(disk.Write, 2, 20),
		mkStat(disk.Write, 3, 30),
	}
	s := Analyze(stats)
	if s.Requests != 3 || s.Reads != 1 || s.Writes != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Service.MeanMS != 20 {
		t.Errorf("mean service %.2f, want 20", s.Service.MeanMS)
	}
	if s.Service.MaxMS != 30 || s.Response.MaxMS != 33 {
		t.Errorf("max service %.2f / response %.2f", s.Service.MaxMS, s.Response.MaxMS)
	}
	if s.Service.P50MS != 20 {
		t.Errorf("p50 %.2f, want 20", s.Service.P50MS)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(nil)
	if s.Requests != 0 || s.Service.MeanMS != 0 {
		t.Fatalf("empty trace: %+v", s)
	}
	var sb strings.Builder
	s.Fprint(&sb) // must not panic
}

func TestPercentilesOrdered(t *testing.T) {
	var stats []dev.Stat
	for i := 1; i <= 100; i++ {
		stats = append(stats, mkStat(disk.Write, 0, float64(i)))
	}
	s := Analyze(stats)
	if s.Service.P50MS != 50 || s.Service.P90MS != 90 || s.Service.P99MS != 99 {
		t.Fatalf("percentiles: %+v", s.Service)
	}
	if !(s.Service.P50MS <= s.Service.P90MS && s.Service.P90MS <= s.Service.P99MS &&
		s.Service.P99MS <= s.Service.MaxMS) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(100 * sim.Microsecond) // <= 0.5ms
	h.Add(3 * sim.Millisecond)   // <= 5ms
	h.Add(15 * sim.Millisecond)  // <= 20ms
	h.Add(60 * sim.Second)       // > 10s, last bucket
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[3] != 1 || h.Counts[5] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Counts)
	}
	var sb strings.Builder
	h.Fprint(&sb, "latency")
	out := sb.String()
	if !strings.Contains(out, "latency (4 samples)") || !strings.Contains(out, "#") {
		t.Fatalf("render: %s", out)
	}
}

func TestHistogramsFromStats(t *testing.T) {
	stats := []dev.Stat{mkStat(disk.Read, 5, 8), mkStat(disk.Write, 500, 12)}
	if ServiceHistogram(stats).Total() != 2 {
		t.Fatal("service histogram count")
	}
	rh := ResponseHistogram(stats)
	if rh.Total() != 2 {
		t.Fatal("response histogram count")
	}
}

func TestWriteCSV(t *testing.T) {
	stats := []dev.Stat{mkStat(disk.Read, 1.5, 10), mkStat(disk.Write, 0, 5)}
	var sb strings.Builder
	if err := WriteCSV(&sb, stats); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "id,op,sectors,queue_ms,service_ms,response_ms,cache_hit" {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,read,16,1.500,10.000,11.500,") {
		t.Fatalf("row: %s", lines[1])
	}
}
