package trace

import (
	"strings"
	"testing"

	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/sim"
)

func mkStat(op disk.Op, qMS, sMS float64) dev.Stat {
	return dev.Stat{
		Op:       op,
		Sectors:  16,
		Queue:    sim.Duration(qMS * float64(sim.Millisecond)),
		Service:  sim.Duration(sMS * float64(sim.Millisecond)),
		Response: sim.Duration((qMS + sMS) * float64(sim.Millisecond)),
	}
}

func TestAnalyzeCounts(t *testing.T) {
	stats := []dev.Stat{
		mkStat(disk.Read, 1, 10),
		mkStat(disk.Write, 2, 20),
		mkStat(disk.Write, 3, 30),
	}
	s := Analyze(stats)
	if s.Requests != 3 || s.Reads != 1 || s.Writes != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Service.MeanMS != 20 {
		t.Errorf("mean service %.2f, want 20", s.Service.MeanMS)
	}
	if s.Service.MaxMS != 30 || s.Response.MaxMS != 33 {
		t.Errorf("max service %.2f / response %.2f", s.Service.MaxMS, s.Response.MaxMS)
	}
	if s.Service.P50MS != 20 {
		t.Errorf("p50 %.2f, want 20", s.Service.P50MS)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(nil)
	if s.Requests != 0 || s.Service.MeanMS != 0 {
		t.Fatalf("empty trace: %+v", s)
	}
	var sb strings.Builder
	s.Fprint(&sb) // must not panic
}

func TestPercentilesOrdered(t *testing.T) {
	var stats []dev.Stat
	for i := 1; i <= 100; i++ {
		stats = append(stats, mkStat(disk.Write, 0, float64(i)))
	}
	s := Analyze(stats)
	if s.Service.P50MS != 50 || s.Service.P90MS != 90 || s.Service.P99MS != 99 {
		t.Fatalf("percentiles: %+v", s.Service)
	}
	if !(s.Service.P50MS <= s.Service.P90MS && s.Service.P90MS <= s.Service.P99MS &&
		s.Service.P99MS <= s.Service.MaxMS) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(100 * sim.Microsecond) // <= 0.5ms
	h.Add(3 * sim.Millisecond)   // <= 5ms
	h.Add(15 * sim.Millisecond)  // <= 20ms
	h.Add(60 * sim.Second)       // > 10s, last bucket
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[3] != 1 || h.Counts[5] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Counts)
	}
	var sb strings.Builder
	h.Fprint(&sb, "latency")
	out := sb.String()
	if !strings.Contains(out, "latency (4 samples)") || !strings.Contains(out, "#") {
		t.Fatalf("render: %s", out)
	}
}

func TestHistogramsFromStats(t *testing.T) {
	stats := []dev.Stat{mkStat(disk.Read, 5, 8), mkStat(disk.Write, 500, 12)}
	if ServiceHistogram(stats).Total() != 2 {
		t.Fatal("service histogram count")
	}
	rh := ResponseHistogram(stats)
	if rh.Total() != 2 {
		t.Fatal("response histogram count")
	}
}

// TestDistOfEdges pins the nearest-rank percentile definition on its edge
// cases: the p-th percentile of n sorted samples is the value at rank
// ceil(p*n) (1-based) — the smallest sample with at least p·n samples at
// or below it. In particular a single sample is every percentile, the p50
// of two samples is the lower one, and runs of ties collapse onto the
// tied value.
func TestDistOfEdges(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want Dist
	}{
		{"empty", nil, Dist{}},
		{"single", []float64{7}, Dist{MeanMS: 7, P50MS: 7, P90MS: 7, P99MS: 7, P999MS: 7, MaxMS: 7}},
		{"two samples takes lower p50", []float64{10, 20},
			Dist{MeanMS: 15, P50MS: 10, P90MS: 20, P99MS: 20, P999MS: 20, MaxMS: 20}},
		{"unsorted input", []float64{30, 10, 20},
			Dist{MeanMS: 20, P50MS: 20, P90MS: 30, P99MS: 30, P999MS: 30, MaxMS: 30}},
		// n=4: p50 rank ceil(2)=2 → the tied 1; p90 rank ceil(3.6)=4 → 9.
		{"ties at the boundary", []float64{1, 1, 1, 9},
			Dist{MeanMS: 3, P50MS: 1, P90MS: 9, P99MS: 9, P999MS: 9, MaxMS: 9}},
		// n=10 of 10..100: p50 rank 5 → 50, p90 rank 9 → 90, p99 rank 10.
		{"deciles", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
			Dist{MeanMS: 55, P50MS: 50, P90MS: 90, P99MS: 100, P999MS: 100, MaxMS: 100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := distOf(append([]float64(nil), tc.vals...)); got != tc.want {
				t.Errorf("distOf(%v) = %+v, want %+v", tc.vals, got, tc.want)
			}
		})
	}
}

// TestDistOfPercentileRankExact sweeps n=1..100 over the identity sample
// set 1..n and checks the nearest-rank formula directly, so any
// off-by-one in the index arithmetic fails loudly.
func TestDistOfPercentileRankExact(t *testing.T) {
	rank := func(p float64, n int) float64 {
		r := int(float64(n)*p + 0.9999999) // ceil for the exact products used here
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		return float64(r)
	}
	for n := 1; n <= 100; n++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i + 1)
		}
		d := distOf(vals)
		if want := rank(0.50, n); d.P50MS != want {
			t.Fatalf("n=%d: p50 = %v, want %v", n, d.P50MS, want)
		}
		if want := rank(0.90, n); d.P90MS != want {
			t.Fatalf("n=%d: p90 = %v, want %v", n, d.P90MS, want)
		}
		if want := rank(0.99, n); d.P99MS != want {
			t.Fatalf("n=%d: p99 = %v, want %v", n, d.P99MS, want)
		}
		if d.MaxMS != float64(n) {
			t.Fatalf("n=%d: max = %v", n, d.MaxMS)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Total() != 0 {
		t.Fatalf("fresh histogram Total = %d", h.Total())
	}
	var sb strings.Builder
	h.Fprint(&sb, "empty") // must not panic or divide by zero
	// Boundary values land in the bucket whose upper bound they equal
	// (bounds are inclusive).
	h.Add(500 * sim.Microsecond) // == 0.5ms bound → bucket 0
	h.Add(1 * sim.Millisecond)   // == 1ms bound → bucket 1
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("inclusive bounds: %v", h.Counts)
	}
	h.Add(0) // below every bound → first bucket
	if h.Counts[0] != 2 {
		t.Fatalf("zero sample: %v", h.Counts)
	}
	// One bucket past the last bound: everything enormous falls through.
	h.Add(10*sim.Second + 1)
	h.Add(sim.Duration(1) << 50)
	last := len(h.Counts) - 1
	if h.Counts[last] != 2 {
		t.Fatalf("overflow bucket: %v", h.Counts)
	}
	if len(h.Counts) != len(h.UpperMS)+1 {
		t.Fatalf("%d counts for %d bounds", len(h.Counts), len(h.UpperMS))
	}
}

func TestDigestAccumulate(t *testing.T) {
	var d Digest
	if d.Count() != 0 {
		t.Fatalf("fresh digest Count = %d", d.Count())
	}
	if got := d.Dist(); got != (Dist{}) {
		t.Fatalf("fresh digest Dist = %+v", got)
	}
	for _, v := range []float64{3, 1, 2} {
		d.Add(v)
	}
	if d.Count() != 3 {
		t.Fatalf("Count = %d, want 3", d.Count())
	}
	first := d.Dist()
	if first.P50MS != 2 || first.MaxMS != 3 || first.MeanMS != 2 {
		t.Fatalf("Dist = %+v", first)
	}
	// Dist must not mutate the digest: repeated calls agree, and the
	// digest keeps accumulating afterwards.
	if again := d.Dist(); again != first {
		t.Fatalf("second Dist = %+v, first = %+v", again, first)
	}
	d.Add(10)
	if got := d.Dist(); got.MaxMS != 10 || got.MeanMS != 4 {
		t.Fatalf("Dist after further Add = %+v", got)
	}
}

func TestDigestMergeIsConcatenation(t *testing.T) {
	var a, b, all Digest
	for _, v := range []float64{5, 1, 9} {
		a.Add(v)
		all.Add(v)
	}
	for _, v := range []float64{2, 8} {
		b.Add(v)
		all.Add(v)
	}
	bBefore := b.Dist()
	a.Merge(&b)
	if a.Count() != 5 {
		t.Fatalf("merged Count = %d, want 5", a.Count())
	}
	if got, want := a.Dist(), all.Dist(); got != want {
		t.Fatalf("merged Dist = %+v, concatenated = %+v", got, want)
	}
	if b.Dist() != bBefore || b.Count() != 2 {
		t.Fatal("Merge mutated its argument")
	}
	// Merging an empty digest is a no-op in both directions.
	var empty Digest
	a.Merge(&empty)
	if a.Count() != 5 {
		t.Fatal("merging an empty digest changed the count")
	}
	empty.Merge(&a)
	if empty.Count() != 5 {
		t.Fatal("merging into an empty digest lost samples")
	}
}

func TestWriteCSV(t *testing.T) {
	stats := []dev.Stat{mkStat(disk.Read, 1.5, 10), mkStat(disk.Write, 0, 5)}
	var sb strings.Builder
	if err := WriteCSV(&sb, stats); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "id,op,sectors,queue_ms,service_ms,response_ms,cache_hit" {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,read,16,1.500,10.000,11.500,") {
		t.Fatalf("row: %s", lines[1])
	}
}

// TestDigestCapExactBelowCap pins the satellite contract: a capped digest
// that never overflows is byte-identical to an uncapped one — same
// retained samples, same nearest-rank percentiles.
func TestDigestCapExactBelowCap(t *testing.T) {
	var exact, capped Digest
	capped.SetCap(1000)
	for i := 0; i < 999; i++ {
		v := float64((i*2654435761)%1000) / 7
		exact.Add(v)
		capped.Add(v)
	}
	if capped.Count() != exact.Count() || capped.Retained() != exact.Retained() {
		t.Fatalf("below cap: count %d/%d retained %d/%d",
			capped.Count(), exact.Count(), capped.Retained(), exact.Retained())
	}
	if got, want := capped.Dist(), exact.Dist(); got != want {
		t.Fatalf("below cap Dist diverged: %+v vs %+v", got, want)
	}
}

func TestDigestCapBoundedAndDeterministic(t *testing.T) {
	const cap = 256
	run := func() *Digest {
		var d Digest
		d.SetCap(cap)
		for i := 0; i < 100_000; i++ {
			d.Add(float64((i * 2654435761) % 9973))
		}
		return &d
	}
	a, b := run(), run()
	if a.Retained() >= cap {
		t.Fatalf("reservoir not bounded: retained %d, cap %d", a.Retained(), cap)
	}
	if a.Count() != 100_000 {
		t.Fatalf("Count = %d, want observed total", a.Count())
	}
	if a.Dist() != b.Dist() || a.Retained() != b.Retained() {
		t.Fatal("capped digest is not deterministic across identical runs")
	}
	// The decimated reservoir must still approximate the distribution:
	// samples are ~uniform on [0, 9973), so p50 sits near the middle.
	d := a.Dist()
	if d.P50MS < 3500 || d.P50MS > 6500 {
		t.Fatalf("decimated p50 implausible for uniform data: %+v", d)
	}
}

// TestDigestCapStrideGrid checks the decimation invariant directly: the
// retained set is exactly the observed samples whose index is a multiple
// of the final stride. Encoding the observed index as the sample value
// makes the grid visible.
func TestDigestCapStrideGrid(t *testing.T) {
	var d Digest
	d.SetCap(64)
	const n = 10_000
	for i := 0; i < n; i++ {
		d.Add(float64(i))
	}
	if d.Retained() == 0 {
		t.Fatal("empty reservoir")
	}
	stride := int(d.vals[1] - d.vals[0])
	for i, v := range d.vals {
		if int(v) != i*stride {
			t.Fatalf("vals[%d] = %v, want index grid of stride %d", i, v, stride)
		}
	}
	// Stride is a power of two (doubling decimation) and the reservoir
	// covers the whole observed range at that stride.
	if stride&(stride-1) != 0 {
		t.Fatalf("stride %d not a power of two", stride)
	}
	if want := (n - 1) / stride * stride; int(d.vals[len(d.vals)-1]) != want {
		t.Fatalf("reservoir tail %v, want %d", d.vals[len(d.vals)-1], want)
	}
}

func TestDigestMergeCapped(t *testing.T) {
	var a Digest
	a.SetCap(32)
	var b Digest
	for i := 0; i < 1000; i++ {
		b.Add(float64(i % 101))
	}
	a.Merge(&b)
	if a.Count() != 1000 {
		t.Fatalf("merged observed count = %d, want 1000", a.Count())
	}
	if a.Retained() >= 32 {
		t.Fatalf("merge overflowed the cap: retained %d", a.Retained())
	}
}
