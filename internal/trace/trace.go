// Package trace analyzes the per-request I/O traces the instrumented
// device driver collects — the reproduction of the paper's measurement
// methodology ("we have instrumented the device driver to collect I/O
// traces, including per-request queue and service delays"). It computes
// the distributions behind the paper's reported averages and exports raw
// traces as CSV for external plotting.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"

	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/sim"
)

// Summary condenses one trace window.
type Summary struct {
	Requests int
	Reads    int
	Writes   int
	CacheHit int

	Service  Dist
	Queue    Dist
	Response Dist
}

// Dist holds distribution statistics in milliseconds.
type Dist struct {
	MeanMS float64
	P50MS  float64
	P90MS  float64
	P99MS  float64
	// P999MS is the 99.9th percentile — the open-loop load curves compare
	// schemes by how early this tail diverges as offered load approaches
	// capacity.
	P999MS float64
	MaxMS  float64
}

func distOf(vals []float64) Dist {
	if len(vals) == 0 {
		return Dist{}
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		return vals[idx]
	}
	return Dist{
		MeanMS: sum / float64(len(vals)),
		P50MS:  pct(0.50),
		P90MS:  pct(0.90),
		P99MS:  pct(0.99),
		P999MS: pct(0.999),
		MaxMS:  vals[len(vals)-1],
	}
}

// Digest accumulates latency samples (milliseconds) for percentile
// reporting. By default it keeps the raw samples, so digests merge
// exactly — the merged distribution equals the distribution of the
// concatenated sample sets — unlike sketch-based digests. Sample counts
// in the single-machine cells are bounded by the operation counts of one
// experiment cell, so exactness is cheap there.
//
// For open-ended runs (million-op distributed sweeps), SetCap bounds the
// retained-sample memory: once the reservoir reaches the cap it is
// decimated deterministically — every other retained sample is dropped
// and the keep stride doubles, so the reservoir always holds exactly the
// observed samples whose index is a multiple of the current stride. The
// retained set is a pure function of the Add sequence (no randomness, no
// clock), so capped digests stay byte-deterministic across runs, -j
// values, and memo replay. Below the cap the digest is exact: stride
// stays 1 and Dist returns precisely what an uncapped digest would.
type Digest struct {
	vals   []float64
	cap    int // retained-sample bound; 0 = unbounded (exact)
	stride int // keep observed samples with index % stride == 0; 0 means 1
	skip   int // observed samples to discard before the next keep
	seen   int // total observed samples (kept or not)
}

// SetCap bounds the retained samples to n (n <= 1 restores unbounded
// exact mode). Call before Add; capping an already-full digest decimates
// on the next overflow only.
func (d *Digest) SetCap(n int) {
	if n <= 1 {
		n = 0
	}
	d.cap = n
}

// Add records one sample.
func (d *Digest) Add(ms float64) {
	d.seen++
	if d.cap <= 0 {
		d.vals = append(d.vals, ms)
		return
	}
	if d.skip > 0 {
		d.skip--
		return
	}
	if d.stride == 0 {
		d.stride = 1
	}
	d.skip = d.stride - 1
	d.vals = append(d.vals, ms)
	if len(d.vals) >= d.cap {
		d.decimate()
	}
}

// decimate halves the reservoir in place, keeping every other retained
// sample (observed indices that are multiples of the doubled stride), and
// realigns the skip countdown to that grid.
func (d *Digest) decimate() {
	w := 0
	for i := 0; i < len(d.vals); i += 2 {
		d.vals[w] = d.vals[i]
		w++
	}
	d.vals = d.vals[:w]
	d.stride *= 2
	d.skip = (d.stride - d.seen%d.stride) % d.stride
}

// Merge folds o's samples into d. o is unchanged. Merging exact digests
// is exact; when d is capped, o's retained samples are appended and the
// usual decimation applies, so the merged distribution is the same
// bounded approximation Add would have produced for d's own samples.
func (d *Digest) Merge(o *Digest) {
	if d.cap <= 0 {
		d.vals = append(d.vals, o.vals...)
		d.seen += o.seen
		return
	}
	for _, v := range o.vals {
		d.Add(v)
	}
	// Count the samples o observed but did not retain.
	d.seen += o.seen - len(o.vals)
}

// Count returns the number of observed samples (including any the
// reservoir has decimated away).
func (d *Digest) Count() int { return d.seen }

// Retained returns the number of samples currently held; equal to
// Count() for unbounded digests, at most the cap otherwise.
func (d *Digest) Retained() int { return len(d.vals) }

// Dist computes the distribution of the retained samples. The digest is
// unchanged (distOf sorts its argument, so Dist works on a copy) and may
// keep accumulating.
func (d *Digest) Dist() Dist {
	return distOf(append([]float64(nil), d.vals...))
}

// Analyze summarizes a request trace.
func Analyze(stats []dev.Stat) Summary {
	s := Summary{Requests: len(stats)}
	service := make([]float64, 0, len(stats))
	queue := make([]float64, 0, len(stats))
	response := make([]float64, 0, len(stats))
	for _, st := range stats {
		if st.Op == disk.Read {
			s.Reads++
		} else {
			s.Writes++
		}
		if st.CacheHit {
			s.CacheHit++
		}
		service = append(service, st.Service.Milliseconds())
		queue = append(queue, st.Queue.Milliseconds())
		response = append(response, st.Response.Milliseconds())
	}
	s.Service = distOf(service)
	s.Queue = distOf(queue)
	s.Response = distOf(response)
	return s
}

// Fprint renders the summary as text.
func (s Summary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "requests: %d (%d reads, %d writes, %d drive-cache hits)\n",
		s.Requests, s.Reads, s.Writes, s.CacheHit)
	row := func(name string, d Dist) {
		fmt.Fprintf(w, "  %-9s mean %8.2fms  p50 %8.2fms  p90 %8.2fms  p99 %8.2fms  max %8.2fms\n",
			name, d.MeanMS, d.P50MS, d.P90MS, d.P99MS, d.MaxMS)
	}
	row("service", s.Service)
	row("queue", s.Queue)
	row("response", s.Response)
}

// Histogram is a log-scaled latency histogram.
type Histogram struct {
	// UpperMS[i] is the inclusive upper bound of bucket i; the final
	// bucket is unbounded.
	UpperMS []float64
	Counts  []int
}

// NewLatencyHistogram returns the standard 0.5ms..10s log-ish buckets.
func NewLatencyHistogram() *Histogram {
	return &Histogram{
		UpperMS: []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000},
		Counts:  make([]int, 15),
	}
}

// Add records one latency.
func (h *Histogram) Add(d sim.Duration) {
	ms := d.Milliseconds()
	for i, ub := range h.UpperMS {
		if ms <= ub {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Fprint renders the histogram with proportional bars.
func (h *Histogram) Fprint(w io.Writer, title string) {
	fmt.Fprintf(w, "%s (%d samples)\n", title, h.Total())
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return
	}
	label := func(i int) string {
		if i == 0 {
			return fmt.Sprintf("<= %.1fms", h.UpperMS[0])
		}
		if i == len(h.Counts)-1 {
			return fmt.Sprintf(" > %.0fms", h.UpperMS[len(h.UpperMS)-1])
		}
		return fmt.Sprintf("<= %.0fms", h.UpperMS[i])
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := c * 40 / max
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  %10s %7d %s\n", label(i), c, bars(bar))
	}
}

func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// ServiceHistogram builds the service-time histogram of a trace.
func ServiceHistogram(stats []dev.Stat) *Histogram {
	h := NewLatencyHistogram()
	for _, st := range stats {
		h.Add(st.Service)
	}
	return h
}

// ResponseHistogram builds the driver-response histogram of a trace.
func ResponseHistogram(stats []dev.Stat) *Histogram {
	h := NewLatencyHistogram()
	for _, st := range stats {
		h.Add(st.Response)
	}
	return h
}

// WriteCSV exports the raw trace, one request per row.
func WriteCSV(w io.Writer, stats []dev.Stat) error {
	if _, err := fmt.Fprintln(w, "id,op,sectors,queue_ms,service_ms,response_ms,cache_hit"); err != nil {
		return err
	}
	for _, st := range stats {
		hit := 0
		if st.CacheHit {
			hit = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%.3f,%.3f,%.3f,%d\n",
			st.ID, st.Op, st.Sectors, st.Queue.Milliseconds(), st.Service.Milliseconds(),
			st.Response.Milliseconds(), hit); err != nil {
			return err
		}
	}
	return nil
}
