package dmeta

import (
	"fmt"

	"metaupdate/internal/sim"
)

// LoadSpec is the deterministic metadata workload the distributed
// exhibit drives: Clients concurrent client processes, each issuing Ops
// operations drawn from a per-client splitmix64 stream (keyed off Seed,
// disjoint from the node streams).
type LoadSpec struct {
	Clients int
	Ops     int
	Seed    int64
}

// LoadResult summarizes one load run in virtual time.
type LoadResult struct {
	Wall sim.Duration
	Ops  int64
	Errs int64
}

// Load runs the workload to completion on the cluster's exec (clients
// are LP 0 procs). Each
// client makes its own directory under the root (spreading dentry
// traffic off the root partition) and then mixes creates, lookups,
// cross-directory renames, links, and unlinks over its own files;
// renames target other clients' directories, so cross-partition
// two-phase traffic appears as soon as there is more than one partition.
func (c *Cluster) Load(spec LoadSpec) LoadResult {
	if spec.Clients < 1 {
		spec.Clients = 1
	}
	start := c.exec.Now()
	ops0, errs0 := c.Ops, c.Errs
	remaining := spec.Clients
	for u := 0; u < spec.Clients; u++ {
		u := u
		c.exec.Spawn(fmt.Sprintf("client%d", u), func(p *sim.Proc) {
			c.clientLoad(p, u, spec)
			remaining--
		})
	}
	c.exec.RunWhile(func() bool { return remaining > 0 })
	return LoadResult{Wall: c.exec.Now() - start, Ops: c.Ops - ops0, Errs: c.Errs - errs0}
}

// fileRef tracks one name a client owns.
type fileRef struct {
	parent uint64
	name   string
	ino    uint64
}

func (c *Cluster) clientLoad(p *sim.Proc, u int, spec LoadSpec) {
	// Client streams are keyed past the node-id space so they never
	// collide with router/node decision streams.
	rng := rngFor(spec.Seed, 1_000_000+u)
	var files []fileRef
	seq := 0

	dir, err := c.Mkdir(p, RootIno, fmt.Sprintf("d%d", u))
	if err != nil {
		panic(fmt.Sprintf("dmeta: client %d: mkdir home: %v", u, err))
	}

	create := func() {
		name := fmt.Sprintf("c%d.f%d", u, seq)
		seq++
		ino, err := c.Create(p, dir, name)
		if err != nil {
			panic(fmt.Sprintf("dmeta: client %d: create %s: %v", u, name, err))
		}
		files = append(files, fileRef{parent: dir, name: name, ino: ino})
	}

	for i := 1; i < spec.Ops; i++ {
		r := splitmix64(&rng)
		x := r % 100
		pick := func() int { return int((r >> 32) % uint64(len(files))) }
		switch {
		case x < 40 || len(files) == 0:
			create()
		case x < 55:
			f := files[pick()]
			if _, err := c.Lookup(p, f.parent, f.name); err != nil {
				panic(fmt.Sprintf("dmeta: client %d: lookup %s: %v", u, f.name, err))
			}
		case x < 70:
			// Move one of our files, usually into another client's
			// directory — the cross-partition two-phase path.
			fi := pick()
			f := files[fi]
			v := int((r >> 16) % uint64(spec.Clients))
			dst := dir
			if d, err := c.Lookup(p, RootIno, fmt.Sprintf("d%d", v)); err == nil {
				dst = d
			} // not created yet: stay home (deterministic fallback)
			name := fmt.Sprintf("c%d.r%d", u, seq)
			seq++
			if err := c.Rename(p, f.parent, f.name, dst, name); err != nil {
				panic(fmt.Sprintf("dmeta: client %d: rename %s: %v", u, f.name, err))
			}
			files[fi] = fileRef{parent: dst, name: name, ino: f.ino}
		case x < 80:
			f := files[pick()]
			name := fmt.Sprintf("c%d.l%d", u, seq)
			seq++
			if err := c.Link(p, f.ino, dir, name); err != nil {
				panic(fmt.Sprintf("dmeta: client %d: link %s: %v", u, f.name, err))
			}
			files = append(files, fileRef{parent: dir, name: name, ino: f.ino})
		default:
			fi := pick()
			f := files[fi]
			if err := c.Unlink(p, f.parent, f.name); err != nil {
				panic(fmt.Sprintf("dmeta: client %d: unlink %s: %v", u, f.name, err))
			}
			files[fi] = files[len(files)-1]
			files = files[:len(files)-1]
		}
	}
}
