// Tests here build clusters through fsim (external test package — fsim
// imports dmeta, so the reverse import is only legal from _test), drive
// the router, and check the cross-partition invariants against the
// per-node durable images with fsck.
package dmeta_test

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/dmeta"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
)

func distOpt(scheme fsim.Scheme, nodes int, seed int64) fsim.DistOptions {
	return fsim.DistOptions{
		Base:  fsim.Options{Scheme: scheme},
		Nodes: nodes,
		Seed:  seed,
	}
}

func mustDist(t *testing.T, opt fsim.DistOptions) *fsim.DistSystem {
	t.Helper()
	s, err := fsim.NewDist(opt)
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	return s
}

// union is the logical state recovered from every node's durable image:
// which node holds each inode id (with its recovered link count), and
// every dentry triple.
type union struct {
	inoOwner map[uint64][]int // logical ino -> node ids holding its backing file
	inoLinks map[uint64]int   // logical ino -> 1 + extra-link files
	dentries []dentry
}

type dentry struct {
	parent, target uint64
	name           string
	node           int
}

// parseImages recovers the logical metadata state from per-node images
// via fsck.Tree — the same oracle the single-machine crash tests use.
func parseImages(t *testing.T, imgs [][]byte) *union {
	t.Helper()
	u := &union{inoOwner: make(map[uint64][]int), inoLinks: make(map[uint64]int)}
	for i, img := range imgs {
		node := i + 1
		tree, err := fsck.Tree(fsck.Bytes(img))
		if err != nil {
			t.Fatalf("node %d: fsck.Tree: %v", node, err)
		}
		for path, ent := range tree {
			if ent.Dir {
				continue
			}
			switch {
			case strings.HasPrefix(path, "/i/x"):
				rest := strings.TrimPrefix(path, "/i/x")
				if base, _, isLink := strings.Cut(rest, ".l"); isLink {
					ino := mustHex(t, path, base)
					u.inoLinks[ino]++
					continue
				}
				ino := mustHex(t, path, rest)
				u.inoOwner[ino] = append(u.inoOwner[ino], node)
				u.inoLinks[ino]++
			case strings.HasPrefix(path, "/d/p"):
				rest := strings.TrimPrefix(path, "/d/p")
				slash := strings.IndexByte(rest, '/')
				if slash < 0 {
					t.Fatalf("node %d: malformed dentry path %q", node, path)
				}
				parent := mustHex(t, path, rest[:slash])
				name, tgt, ok := strings.Cut(rest[slash+1:], "=")
				if !ok {
					t.Fatalf("node %d: dentry file without target: %q", node, path)
				}
				u.dentries = append(u.dentries, dentry{
					parent: parent, target: mustHex(t, path, tgt), name: name, node: node,
				})
			default:
				t.Fatalf("node %d: unexpected file %q in a metadata image", node, path)
			}
		}
	}
	sort.Slice(u.dentries, func(i, j int) bool {
		a, b := u.dentries[i], u.dentries[j]
		if a.parent != b.parent {
			return a.parent < b.parent
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return a.node < b.node
	})
	return u
}

func mustHex(t *testing.T, path, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		t.Fatalf("path %q: bad hex %q", path, s)
	}
	return v
}

// checkUnion asserts the cross-partition invariants on a quiescent
// cluster's union state: every inode singly owned by its range's owner,
// no orphaned dentries, partition ranges disjoint and covering.
func checkUnion(t *testing.T, s *fsim.DistSystem, u *union) {
	t.Helper()
	parts := s.Cluster.Parts()
	for i, pt := range parts {
		if pt.Start >= pt.End {
			t.Errorf("partition %d empty: %+v", i, pt)
		}
		if i > 0 && parts[i-1].End != pt.Start {
			t.Errorf("partition map has a gap/overlap at %d: %+v then %+v", i, parts[i-1], pt)
		}
	}
	owner := func(key uint64) int {
		for _, pt := range parts {
			if key >= pt.Start && key < pt.End {
				return pt.Node
			}
		}
		t.Fatalf("key %d outside partition map", key)
		return 0
	}
	for ino, nodes := range u.inoOwner {
		if len(nodes) != 1 {
			t.Errorf("inode %d owned by %d nodes %v — double-owned range", ino, len(nodes), nodes)
			continue
		}
		if want := owner(ino); nodes[0] != want {
			t.Errorf("inode %d durable on node %d, partition map says %d", ino, nodes[0], want)
		}
	}
	refs := make(map[uint64]int)
	for _, d := range u.dentries {
		if len(u.inoOwner[d.target]) == 0 {
			t.Errorf("orphaned dentry: parent %d name %q -> missing inode %d", d.parent, d.name, d.target)
		}
		if len(u.inoOwner[d.parent]) == 0 {
			t.Errorf("dentry under missing parent %d (name %q)", d.parent, d.name)
		}
		if want := owner(d.parent); d.node != want {
			t.Errorf("dentry (%d, %q) durable on node %d, owner is %d", d.parent, d.name, d.node, want)
		}
		refs[d.target]++
	}
	// Recovered link counts match the dentry references (root has none).
	for ino, links := range u.inoLinks {
		want := refs[ino]
		if ino == dmeta.RootIno {
			want = 1
		}
		if links != want {
			t.Errorf("inode %d: %d durable links, %d dentry references", ino, links, want)
		}
	}
}

func TestRouterBasicOps(t *testing.T) {
	s := mustDist(t, distOpt(fsim.SoftUpdates, 2, 7))
	defer s.Shutdown()
	c := s.Cluster
	s.Run(func(p *fsim.Proc) {
		d1, err := c.Mkdir(p, dmeta.RootIno, "a")
		if err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		f, err := c.Create(p, d1, "f")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if got, err := c.Lookup(p, d1, "f"); err != nil || got != f {
			t.Fatalf("lookup = %d, %v; want %d", got, err, f)
		}
		if _, err := c.Create(p, d1, "f"); err != fsim.ErrExist {
			t.Fatalf("duplicate create = %v, want ErrExist", err)
		}
		if err := c.Link(p, f, dmeta.RootIno, "hard"); err != nil {
			t.Fatalf("link: %v", err)
		}
		d2, err := c.Mkdir(p, dmeta.RootIno, "b")
		if err != nil {
			t.Fatalf("mkdir b: %v", err)
		}
		if err := c.Rename(p, d1, "f", d2, "g"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if _, err := c.Lookup(p, d1, "f"); err != fsim.ErrNotExist {
			t.Fatalf("stale source lookup = %v", err)
		}
		if got, _ := c.Lookup(p, d2, "g"); got != f {
			t.Fatalf("dest lookup = %d, want %d", got, f)
		}
		if err := c.Unlink(p, d2, "g"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		// The hard link keeps the inode alive.
		if got, _ := c.Lookup(p, dmeta.RootIno, "hard"); got != f {
			t.Fatalf("hard-link lookup = %d, want %d", got, f)
		}
		if err := c.Unlink(p, dmeta.RootIno, "hard"); err != nil {
			t.Fatalf("final unlink: %v", err)
		}
		if err := c.Unlink(p, dmeta.RootIno, "a"); err != fsim.ErrIsDir {
			t.Fatalf("unlink dir = %v, want ErrIsDir", err)
		}
	})
	s.SyncAll()
	u := parseImages(t, s.Cluster.Images())
	checkUnion(t, s, u)
	if c.Ops == 0 || c.Errs == 0 {
		t.Fatalf("counters: ops %d errs %d", c.Ops, c.Errs)
	}
}

// TestCrossPartitionConsistency is the satellite check: a multi-node run
// with dynamic splits, then fsck over the union of per-node images.
func TestCrossPartitionConsistency(t *testing.T) {
	for _, scheme := range []fsim.Scheme{fsim.Conventional, fsim.SoftUpdates} {
		scheme := scheme
		t.Run(fmt.Sprint(scheme), func(t *testing.T) {
			opt := distOpt(scheme, 3, 11)
			opt.SplitEntries = 24
			s := mustDist(t, opt)
			defer s.Shutdown()
			res := s.Cluster.Load(dmeta.LoadSpec{Clients: 4, Ops: 40, Seed: 11})
			if res.Ops == 0 || res.Wall <= 0 {
				t.Fatalf("load did not run: %+v", res)
			}
			s.SyncAll()
			u := parseImages(t, s.Cluster.Images())
			checkUnion(t, s, u)
			if s.Cluster.Splits == 0 {
				t.Fatalf("expected at least one dynamic split (entries threshold %d)", opt.SplitEntries)
			}
			if s.Cluster.ActiveNodes() <= opt.Nodes {
				t.Fatalf("split did not activate a spare: %d nodes", s.Cluster.ActiveNodes())
			}
		})
	}
}

// TestCrashMidRenameConventional is the differential crash case: power
// fails after a cross-partition rename's prepare phase is durable but
// before any commit is sent. Conventional delays the final dentry write
// of each sequence (the paper's "last write is asynchronous"), so the
// prepare is made durable with an explicit sync while the renamer is
// parked between phases. The surviving union must equal the completed
// rename's union plus exactly the two prepare leftovers: the
// still-present source dentry and the transient link-count file.
func TestCrashMidRenameConventional(t *testing.T) {
	setup := func(hook bool) (*fsim.DistSystem, []string, uint64) {
		opt := distOpt(fsim.Conventional, 2, 3)
		s := mustDist(t, opt)
		c := s.Cluster
		var f, dst uint64
		s.Run(func(p *fsim.Proc) {
			var err error
			// The root (and thus the source dentry) lives on node 1; put
			// the destination directory on node 2 so the rename is
			// genuinely cross-partition.
			parts := c.Parts()
			for i := 0; ; i++ {
				dst, err = c.Mkdir(p, dmeta.RootIno, fmt.Sprintf("d%d", i))
				if err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if dst >= parts[1].Start {
					break
				}
			}
			if f, err = c.Create(p, dmeta.RootIno, "f"); err != nil {
				t.Fatalf("create: %v", err)
			}
		})
		var imgs [][]byte
		if hook {
			prepared := false
			park := sim.NewCompletion()
			c.TestHookPrepared = func(p *fsim.Proc) {
				prepared = true
				park.Wait(p) // never fires: commit messages never go out
			}
			s.Eng.Spawn("renamer", func(p *fsim.Proc) {
				c.Rename(p, dmeta.RootIno, "f", dst, "g")
			})
			s.Eng.RunWhile(func() bool { return !prepared })
			s.SyncAll() // prepare durable; the parked renamer sends no commit
			imgs = s.Crash(s.Eng.Now())
		} else {
			s.Run(func(p *fsim.Proc) {
				if err := c.Rename(p, dmeta.RootIno, "f", dst, "g"); err != nil {
					t.Fatalf("rename: %v", err)
				}
			})
			s.SyncAll()
			imgs = s.Cluster.Images()
		}
		var paths []string
		for i, img := range imgs {
			tree, err := fsck.Tree(fsck.Bytes(img))
			if err != nil {
				t.Fatalf("node %d: fsck: %v", i+1, err)
			}
			for p, ent := range tree {
				if !ent.Dir {
					paths = append(paths, fmt.Sprintf("node%d:%s", i+1, p))
				}
			}
		}
		sort.Strings(paths)
		return s, paths, f
	}

	committed, donePaths, _ := setup(false)
	defer committed.Shutdown()
	crashed, crashPaths, f := setup(true)
	_ = crashed // crashed mid-run: engine frozen, nothing to shut down

	extra := diffPaths(crashPaths, donePaths)
	missing := diffPaths(donePaths, crashPaths)
	if len(missing) != 0 {
		t.Fatalf("crash image lost committed state: %v", missing)
	}
	want := []string{
		fmt.Sprintf("node1:/d/p1/f=%x", f), // source dentry: commit never ran
		fmt.Sprintf("node1:/i/x%x.l2", f),  // transient count bump: prepare durable
	}
	sort.Strings(want)
	if !equalStrings(extra, want) {
		t.Fatalf("crash leftovers = %v, want exactly %v", extra, want)
	}
}

func diffPaths(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueueDepthSplit exercises the second split trigger: a deep inbox
// on an otherwise small node.
func TestQueueDepthSplit(t *testing.T) {
	opt := distOpt(fsim.NoOrder, 1, 5)
	opt.SplitQueue = 2
	s := mustDist(t, opt)
	defer s.Shutdown()
	s.Cluster.Load(dmeta.LoadSpec{Clients: 6, Ops: 20, Seed: 5})
	s.SyncAll()
	if s.Cluster.Splits == 0 {
		t.Fatal("queue-depth trigger never split")
	}
	checkUnion(t, s, parseImages(t, s.Cluster.Images()))
}

// TestLoadDeterminism: identical options produce identical virtual
// timelines, counters, and durable unions — the property the memoized
// cells and the CI -dist diff rely on.
func TestLoadDeterminism(t *testing.T) {
	run := func() (dmeta.LoadResult, string, sim.Time, int64) {
		opt := distOpt(fsim.SchedulerChains, 2, 9)
		opt.SplitEntries = 40
		s := mustDist(t, opt)
		defer s.Shutdown()
		res := s.Cluster.Load(dmeta.LoadSpec{Clients: 3, Ops: 25, Seed: 9})
		s.SyncAll()
		u := parseImages(t, s.Cluster.Images())
		var sb strings.Builder
		for _, d := range u.dentries {
			fmt.Fprintf(&sb, "%d/%s=%d@%d\n", d.parent, d.name, d.target, d.node)
		}
		fmt.Fprintf(&sb, "splits%d fwd%d cross%d mig%d\n",
			s.Cluster.Splits, s.Cluster.Forwards(), s.Cluster.CrossOps, s.Cluster.Migrated)
		return res, sb.String(), s.Eng.Now(), s.Net.Totals().Sent
	}
	r1, u1, t1, m1 := run()
	r2, u2, t2, m2 := run()
	if r1 != r2 || u1 != u2 || t1 != t2 || m1 != m2 {
		t.Fatalf("nondeterministic dist run:\n%+v vs %+v\nclock %v vs %v, msgs %d vs %d\nunion A:\n%s\nunion B:\n%s",
			r1, r2, t1, t2, m1, m2, u1, u2)
	}
}
