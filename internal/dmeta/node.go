package dmeta

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
	"metaupdate/internal/simnet"
)

// kind is the wire-protocol operation code.
type kind uint8

const (
	kLookup kind = iota
	kCreate
	kAddDentry
	kRemoveDentry
	kIncLink
	kDecLink
	kMigrate

	// Cluster-control requests. kClaimSpare and kSplitDone go node →
	// router (endpoint 0); kSync and kShutdown go host → node. None is
	// routed by partition key.
	kClaimSpare
	kSplitDone
	kSync
	kShutdown
)

// req is one node request. Routing key: Parent for dentry-tree ops, Ino
// for inode-tree ops; everything else is addressed explicitly and never
// forwarded. Field reuse for control requests: kMigrate carries the
// migrated range as [Ino, Target) and marks its last batch Final;
// kSplitDone carries the split key in Ino, the new owner in Target and
// the migrated entry count in Moved.
type req struct {
	Kind     kind
	Ino      uint64
	Parent   uint64
	Name     string
	Target   uint64
	Dir      bool
	Replace  bool
	MustFile bool
	Final    bool
	Moved    int
	Ents     []migEnt
}

// routingKey returns the partition key a request must be owned under.
func (r req) routingKey() (uint64, bool) {
	switch r.Kind {
	case kLookup, kAddDentry, kRemoveDentry:
		return r.Parent, true
	case kCreate, kIncLink, kDecLink:
		return r.Ino, true
	}
	return 0, false
}

// resp is one node reply.
type resp struct {
	Code   errCode
	Target uint64
	Old    uint64
}

// errCode carries logical errors over the wire; unexpected local file
// system failures panic at the node (a metadata node's local stack is
// sized so it cannot legitimately run out of space mid-experiment).
type errCode uint8

const (
	errOK errCode = iota
	errExist
	errNotExist
	errIsDir
)

func (e errCode) err() error {
	switch e {
	case errOK:
		return nil
	case errExist:
		return ffs.ErrExist
	case errNotExist:
		return ffs.ErrNotExist
	case errIsDir:
		return ffs.ErrIsDir
	}
	return fmt.Errorf("dmeta: error code %d", e)
}

// reqSize models the request's on-wire size.
func reqSize(r req) int {
	n := 72 + len(r.Name)
	for _, e := range r.Ents {
		n += 32
		for _, d := range e.Dentries {
			n += 24 + len(d.Name)
		}
	}
	return n
}

const respSize = 40

// migEnt is one migrated key: the inode (if the key has one) plus every
// dentry whose parent is the key.
type migEnt struct {
	Key      uint64
	HasInode bool
	Nlink    int
	Dir      bool
	Dentries []migDent
}

type migDent struct {
	Name   string
	Target uint64
}

// inodeMeta is one logical inode's in-memory record.
type inodeMeta struct {
	nlink int
	dir   bool
}

// fwdRange is one forwarding-table entry: keys in [start, end) were
// handed to dst by a past split of this node.
type fwdRange struct {
	start, end uint64
	dst        int
}

// Node is one metadata server: a local storage stack, the owned slices
// of the inode and dentry trees, and the mapping of logical objects to
// local backing files. All Node state is owned by the node's LP — a
// node never reads router state; its view of the partition map is its
// own range [start, end) plus the forwarding table of ranges it gave
// away, kept accurate by the split protocol itself.
type Node struct {
	c  *Cluster
	id int
	St *Stack
	ep *simnet.Endpoint

	// rng is this node's decision stream, keyed (Seed, id).
	rng uint64

	// start/end is the owned key range; fwd records where previously
	// owned ranges went (requests chase moved keys through chains of
	// such tables until they reach the current owner).
	start, end uint64
	fwd        []fwdRange
	forwards   int64

	inodeTree  map[uint64]*inodeMeta
	dentryTree map[uint64]map[string]uint64
	nden       int

	// localIno maps a logical inode id to its backing file; localDir maps
	// a logical parent id to the local directory holding its dentry files.
	localIno map[uint64]ffs.Ino
	localDir map[uint64]ffs.Ino
	iDir     ffs.Ino
	dDir     ffs.Ino

	splitting bool
	receiving bool // mid-migration destination: owned range still filling
	noSpares  bool // the router reported spare exhaustion; stop asking
	Processed int64
}

func inoName(ino uint64) string { return "x" + strconv.FormatUint(ino, 16) }

func linkName(ino uint64, nlink int) string {
	return inoName(ino) + ".l" + strconv.Itoa(nlink)
}

func dentName(name string, target uint64) string {
	return name + "=" + strconv.FormatUint(target, 16)
}

func parentDirName(parent uint64) string { return "p" + strconv.FormatUint(parent, 16) }

func newNode(c *Cluster, id int, st *Stack, ep *simnet.Endpoint, p *sim.Proc, start, end uint64) (*Node, error) {
	n := &Node{
		c: c, id: id, St: st,
		ep:         ep,
		rng:        rngFor(c.cfg.Seed, id),
		start:      start,
		end:        end,
		inodeTree:  make(map[uint64]*inodeMeta),
		dentryTree: make(map[uint64]map[string]uint64),
		localIno:   make(map[uint64]ffs.Ino),
		localDir:   make(map[uint64]ffs.Ino),
	}
	var err error
	if n.iDir, err = st.FS.Mkdir(p, ffs.RootIno, "i"); err != nil {
		return nil, err
	}
	if n.dDir, err = st.FS.Mkdir(p, ffs.RootIno, "d"); err != nil {
		return nil, err
	}
	return n, nil
}

// installRoot seeds the namespace root on its owner.
func (n *Node) installRoot(p *sim.Proc) error {
	lino, err := n.St.FS.Create(p, n.iDir, inoName(RootIno))
	if err != nil {
		return err
	}
	n.inodeTree[RootIno] = &inodeMeta{nlink: 1, dir: true}
	n.localIno[RootIno] = lino
	return nil
}

// entries is the split-policy size signal.
func (n *Node) entries() int { return len(n.inodeTree) + n.nden }

func (n *Node) owns(key uint64) bool { return key >= n.start && key < n.end }

// serve is the node's server loop: drain the inbox in delivery order,
// checking the split policy after every request.
func (n *Node) serve(p *sim.Proc) {
	for {
		m, ok := n.ep.Recv(p)
		if !ok {
			return
		}
		n.handle(p, m)
		n.maybeSplit(p)
	}
}

func (n *Node) handle(p *sim.Proc, m simnet.Message) {
	r := m.Payload.(req)
	if key, routed := r.routingKey(); routed && !n.owns(key) {
		// The partition moved while this request was in flight (or
		// queued behind a split): pass it to where the key went; the
		// reply goes straight back to the client. The key may have moved
		// again since — the forwarding tables chain.
		n.forward(m, key)
		return
	}
	switch r.Kind {
	case kSync:
		n.St.FS.Sync(p)
		n.ep.Reply(m, respSize, resp{})
		return
	case kShutdown:
		n.St.Cache.StopSyncer()
		n.ep.Reply(m, respSize, resp{})
		n.ep.Close()
		return
	}
	n.Processed++
	n.ep.Reply(m, respSize, n.apply(p, r))
}

// forward relays a request for a key this node gave away in a split.
func (n *Node) forward(m simnet.Message, key uint64) {
	n.forwards++
	for _, f := range n.fwd {
		if key >= f.start && key < f.end {
			n.ep.Forward(m, f.dst)
			return
		}
	}
	panic(fmt.Sprintf("dmeta: node %d got request for key %d outside its range [%d,%d) and forwarding table", n.id, key, n.start, n.end))
}

// apply executes one owned request against the trees and the local
// backing files (whose write ordering is the node's scheme's business).
func (n *Node) apply(p *sim.Proc, r req) resp {
	fs := n.St.FS
	switch r.Kind {
	case kLookup:
		// Pure in-memory tree walk.
		n.St.CPU.Use(p, 30*sim.Microsecond)
		t, ok := n.dentryTree[r.Parent][r.Name]
		if !ok {
			return resp{Code: errNotExist}
		}
		return resp{Target: t}

	case kCreate:
		if _, dup := n.inodeTree[r.Ino]; dup {
			return resp{Code: errExist}
		}
		lino, err := fs.Create(p, n.iDir, inoName(r.Ino))
		n.check(err, "create inode")
		n.inodeTree[r.Ino] = &inodeMeta{nlink: 1, dir: r.Dir}
		n.localIno[r.Ino] = lino
		return resp{}

	case kAddDentry:
		dm := n.dentryTree[r.Parent]
		old, exists := dm[r.Name]
		if exists && !r.Replace {
			return resp{Code: errExist}
		}
		if exists && old == r.Target {
			return resp{Old: old}
		}
		pd := n.localParent(p, r.Parent)
		// Replace adds the new entry file before unlinking the old one,
		// so no instant on disk has the name pointing nowhere.
		_, err := fs.Create(p, pd, dentName(r.Name, r.Target))
		n.check(err, "add dentry")
		if exists {
			n.check(fs.Unlink(p, pd, dentName(r.Name, old)), "replace dentry")
		} else {
			n.nden++
		}
		if dm == nil {
			dm = make(map[string]uint64)
			n.dentryTree[r.Parent] = dm
		}
		dm[r.Name] = r.Target
		return resp{Old: old}

	case kRemoveDentry:
		dm := n.dentryTree[r.Parent]
		t, ok := dm[r.Name]
		if !ok {
			return resp{Code: errNotExist}
		}
		pd := n.localParent(p, r.Parent)
		n.check(fs.Unlink(p, pd, dentName(r.Name, t)), "remove dentry")
		delete(dm, r.Name)
		n.nden--
		return resp{Target: t}

	case kIncLink:
		im := n.inodeTree[r.Ino]
		if im == nil {
			return resp{Code: errNotExist}
		}
		if r.MustFile && im.dir {
			return resp{Code: errIsDir}
		}
		im.nlink++
		n.check(fs.Link(p, n.localIno[r.Ino], n.iDir, linkName(r.Ino, im.nlink)), "bump link")
		return resp{}

	case kDecLink:
		im := n.inodeTree[r.Ino]
		if im == nil {
			return resp{Code: errNotExist}
		}
		if r.MustFile && im.dir {
			return resp{Code: errIsDir}
		}
		if im.nlink > 1 {
			n.check(fs.Unlink(p, n.iDir, linkName(r.Ino, im.nlink)), "drop link")
			im.nlink--
			return resp{}
		}
		// Last reference: the dentry removals already committed, so the
		// backing file may be reclaimed (reset-before-reuse preserved by
		// the local scheme's remove ordering).
		n.check(fs.Unlink(p, n.iDir, inoName(r.Ino)), "free inode")
		delete(n.inodeTree, r.Ino)
		delete(n.localIno, r.Ino)
		return resp{}

	case kMigrate:
		// First batch of an incoming split: adopt the migrated range
		// (spares own the empty range until here). Splitting is deferred
		// until the final batch has landed, so the range never narrows
		// while it is still filling.
		if n.start == n.end {
			n.start, n.end = r.Ino, r.Target
		}
		n.receiving = !r.Final
		for _, e := range r.Ents {
			n.install(p, e)
		}
		return resp{}
	}
	panic(fmt.Sprintf("dmeta: node %d: unknown request kind %d", n.id, r.Kind))
}

// check panics on unexpected local-stack failures (logical errors are
// filtered before the local operation is attempted).
func (n *Node) check(err error, what string) {
	if err != nil {
		panic(fmt.Sprintf("dmeta: node %d: %s: %v", n.id, what, err))
	}
}

// localParent returns (creating on demand) the local directory backing
// parent's dentries.
func (n *Node) localParent(p *sim.Proc, parent uint64) ffs.Ino {
	if d, ok := n.localDir[parent]; ok {
		return d
	}
	d, err := n.St.FS.Mkdir(p, n.dDir, parentDirName(parent))
	if errors.Is(err, ffs.ErrExist) {
		// Left over from before this key range migrated away and back is
		// impossible; but a crash-recovered image may resurrect one.
		d, err = n.St.FS.Lookup(p, n.dDir, parentDirName(parent))
	}
	n.check(err, "local parent dir")
	n.localDir[parent] = d
	return d
}

// install replays one migrated entry on the destination (durably: the
// local writes go through this node's scheme like any other update).
func (n *Node) install(p *sim.Proc, e migEnt) {
	fs := n.St.FS
	if e.HasInode {
		lino, err := fs.Create(p, n.iDir, inoName(e.Key))
		n.check(err, "migrate inode")
		for k := 2; k <= e.Nlink; k++ {
			n.check(fs.Link(p, lino, n.iDir, linkName(e.Key, k)), "migrate link")
		}
		n.inodeTree[e.Key] = &inodeMeta{nlink: e.Nlink, dir: e.Dir}
		n.localIno[e.Key] = lino
	}
	if len(e.Dentries) > 0 {
		pd := n.localParent(p, e.Key)
		dm := n.dentryTree[e.Key]
		if dm == nil {
			dm = make(map[string]uint64)
			n.dentryTree[e.Key] = dm
		}
		for _, d := range e.Dentries {
			_, err := fs.Create(p, pd, dentName(d.Name, d.Target))
			n.check(err, "migrate dentry")
			dm[d.Name] = d.Target
			n.nden++
		}
	}
}

// maybeSplit runs the split policy: when the tree size or inbox depth
// crosses its threshold, claim a spare from the router and migrate the
// upper part of the owned key range to it. The whole migration runs on
// the server proc — incoming requests queue behind it and any that
// targeted moved keys get forwarded once the local range narrows.
func (n *Node) maybeSplit(p *sim.Proc) {
	c := n.c
	if n.splitting || n.receiving || n.noSpares {
		return
	}
	sizeTrip := c.cfg.SplitEntries > 0 && n.entries() > c.cfg.SplitEntries
	queueTrip := c.cfg.SplitQueue > 0 && n.ep.Queued() > c.cfg.SplitQueue
	if !sizeTrip && !queueTrip {
		return
	}

	// Collect the owned keys in order (map iteration never escapes
	// unsorted — determinism).
	keySet := make(map[uint64]struct{}, len(n.inodeTree)+len(n.dentryTree))
	for k := range n.inodeTree {
		keySet[k] = struct{}{}
	}
	for k, dm := range n.dentryTree {
		if len(dm) > 0 {
			keySet[k] = struct{}{}
		}
	}
	keys := make([]uint64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	if len(keys) < 2 {
		return
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Claim a spare. The server proc blocks on the round trip, so the
	// trees cannot change under the collected key set.
	n.splitting = true
	defer func() { n.splitting = false }()
	rc := n.ep.Call(p, 0, reqSize(req{Kind: kClaimSpare}), req{Kind: kClaimSpare})
	dst := int(rc.Payload.(resp).Target)
	if dst == 0 {
		n.noSpares = true
		return
	}

	// Split point: the median key, nudged within the middle third by this
	// node's decision stream (keyed seed+nodeID, so the choice is a pure
	// function of the options).
	mid := len(keys) / 2
	if span := len(keys) / 6; span > 0 {
		mid += int(splitmix64(&n.rng)%uint64(2*span+1)) - span
	}
	if mid < 1 {
		mid = 1
	}
	if mid > len(keys)-1 {
		mid = len(keys) - 1
	}
	m := keys[mid]
	oldEnd := n.end

	// Copy phase: stream [m, end) to the spare in seeded batches.
	ents := make([]migEnt, 0, len(keys)-mid)
	for _, k := range keys[mid:] {
		e := migEnt{Key: k}
		if im := n.inodeTree[k]; im != nil {
			e.HasInode, e.Nlink, e.Dir = true, im.nlink, im.dir
		}
		if dm := n.dentryTree[k]; len(dm) > 0 {
			names := make([]string, 0, len(dm))
			for name := range dm {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				e.Dentries = append(e.Dentries, migDent{Name: name, Target: dm[name]})
			}
		}
		ents = append(ents, e)
	}
	for i := 0; i < len(ents); {
		bs := 16 + int(splitmix64(&n.rng)%16)
		if i+bs > len(ents) {
			bs = len(ents) - i
		}
		batch := ents[i : i+bs]
		r := req{Kind: kMigrate, Ino: m, Target: oldEnd, Final: i+bs == len(ents), Ents: batch}
		n.ep.Call(p, dst, reqSize(r), r)
		i += bs
	}

	// Delete phase — only after the copy is durable on the wire protocol
	// level (the destination replied): dentry files first, then extra
	// links, then the inode files themselves.
	fs := n.St.FS
	for _, e := range ents {
		if len(e.Dentries) > 0 {
			pd := n.localParent(p, e.Key)
			for _, d := range e.Dentries {
				n.check(fs.Unlink(p, pd, dentName(d.Name, d.Target)), "evacuate dentry")
			}
			delete(n.dentryTree, e.Key)
			delete(n.localDir, e.Key)
			n.nden -= len(e.Dentries)
		}
		if e.HasInode {
			for k := e.Nlink; k >= 2; k-- {
				n.check(fs.Unlink(p, n.iDir, linkName(e.Key, k)), "evacuate link")
			}
			n.check(fs.Unlink(p, n.iDir, inoName(e.Key)), "evacuate inode")
			delete(n.inodeTree, e.Key)
			delete(n.localIno, e.Key)
		}
	}

	// Narrow the owned range — forwarding starts now — and announce the
	// split to the router, which republishes the partition map.
	n.end = m
	n.fwd = append(n.fwd, fwdRange{start: m, end: oldEnd, dst: dst})
	done := req{Kind: kSplitDone, Ino: m, Target: uint64(dst), Moved: len(ents)}
	n.ep.Send(0, reqSize(done), done)
}
