// Package dmeta is the sharded distributed metadata service: N simulated
// metadata nodes, each a full single-machine stack (disk/driver/cache/ffs
// under a configurable ordering scheme) owning an inode-id-range
// partition with its own in-memory inode and dentry trees, connected by
// internal/simnet and driven through a client-side router that maps each
// operation to the owning node.
//
// The design transplants the paper's question into the sharded regime.
// Each logical metadata object is backed by local durable state on its
// owner's file system — an inode id as /i/x<hex> (extra logical links as
// /i/x<hex>.l<n>), a dentry (parent, name → target) as
// /d/p<hex>/<name>=<hex> — so every logical mutation becomes local
// metadata writes whose durability ordering is governed by the node's
// scheme (Conventional's synchronous writes, SchedulerFlag/Chains
// barriers, SoftUpdates rollback, NoOrder delayed writes). Cross-
// partition operations (rename and link spanning owners) run as
// client-coordinated two-phase updates: the prepare writes (link-count
// bump, new dentry) complete on their owners before the commit writes
// (old dentry removal, count release) are issued — the distributed
// analogue of the paper's create/delete ordering rules, with the
// reset-before-reuse rule preserved because an inode's backing file is
// removed only after its last dentry removal has completed.
//
// Partitions split dynamically, CubeFS-metanode style: when a node's
// tree size or inbox depth crosses the configured threshold, it claims a
// spare node from the router (a kClaimSpare RPC), streams the upper half
// of its key range over the simulated network, deletes the moved state
// locally (copy-before-delete — the migration itself obeys the
// no-dangling-pointer rule), narrows its own owned range, and announces
// the split to the router (kSplitDone), which republishes the partition
// map. Requests caught in flight against the old map chase the keys
// through per-node forwarding tables. Every routing and split decision
// draws from a splitmix64 stream keyed by (seed, nodeID) — the
// internal/fault idiom — so the whole message timeline is a pure
// function of the options and the cells memoize byte-identically.
//
// Execution model: the cluster runs on a sim.Exec — either one serial
// Engine or a sim.LPGroup with one LP per node plus LP 0 for the
// client/router. All router state (partition map, allocation cursors,
// spare pool, split/op counters) lives on LP 0 and is touched only by
// client procs and the router proc; all node state is touched only by
// that node's LP. Every cross-LP interaction is a simnet message, so the
// same protocol runs serially or in parallel with a byte-identical
// message timeline.
package dmeta

import (
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
	"metaupdate/internal/simnet"
	"metaupdate/internal/trace"
)

// RootIno is the logical inode id of the namespace root.
const RootIno uint64 = 1

// inoSpace bounds the logical inode-id space; initial partitions stripe
// it evenly across the starting nodes.
const inoSpace uint64 = 1 << 30

// latCap bounds the retained latency samples per digest (trace.Digest
// reservoir), keeping million-op runs in constant memory.
const latCap = 1 << 14

// Stack is one node's single-machine storage stack, assembled by the
// caller (fsim owns the recipe) so dmeta stays independent of option
// plumbing.
type Stack struct {
	CPU    *sim.CPU
	Disk   *disk.Disk
	Driver *dev.Driver
	Cache  *cache.Cache
	FS     *ffs.FS
}

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the initial active node count; MaxNodes caps growth by
	// dynamic splitting (spare stacks MaxNodes-Nodes are built up front
	// and sit idle until claimed).
	Nodes, MaxNodes int
	// Seed keys every splitmix64 decision stream.
	Seed int64
	// SplitEntries triggers a partition split when a node's tree size
	// (inodes + dentries) exceeds it; 0 disables the size trigger.
	SplitEntries int
	// SplitQueue triggers a split when a node's inbox depth exceeds it;
	// 0 disables the queue trigger.
	SplitQueue int
	// Build assembles node id's storage stack. It is called once per
	// node, spares included, from a proc on the node's own LP — with a
	// parallel exec the Build calls run concurrently, so the closure
	// must not touch shared mutable state.
	Build func(p *sim.Proc, id int) (*Stack, error)
	// Obs, when non-nil, records spans for router-level operations and
	// the nodes' local file system operations. A recorder is
	// single-engine state: it must be nil when the cluster runs on a
	// parallel exec (fsim enforces this).
	Obs *obs.Recorder
}

func (cfg Config) String() string {
	return fmt.Sprintf("n%d,mx%d,se%d,spe%d,spq%d", cfg.Nodes, cfg.MaxNodes, cfg.Seed, cfg.SplitEntries, cfg.SplitQueue)
}

// part is one partition map entry: node owns keys in [start, end), and
// allocates fresh inode ids from next. A split exhausts the lower half's
// allocation headroom (CubeFS-style: old partitions go read-mostly, new
// ids land on the new node).
type part struct {
	start, end uint64
	node       int
	next       uint64
}

// PartInfo is the exported view of one partition map entry.
type PartInfo struct {
	Start, End uint64
	Node       int
}

// Cluster is the distributed metadata service: the node set, the
// client-side router state (partition map + allocation cursors), and the
// cross-partition statistics the experiments report. All Cluster fields
// are LP 0 state.
type Cluster struct {
	exec     sim.Exec
	net      *simnet.Network
	cfg      Config
	obs      *obs.Recorder
	clientEp *simnet.Endpoint
	nodes    []*Node // index i holds node id i+1
	active   int
	parts    []part
	rng      uint64 // router decision stream, keyed (Seed, node 0)

	// Counters and latency digests for the exhibit tables.
	Ops, Errs, CrossOps, Splits, Migrated int64
	OpLat, CrossLat                       trace.Digest

	crashed bool // set by Crash: the cluster is dead, Shutdown is a no-op

	// TestHookPrepared, when set, runs on the coordinating client proc
	// after a rename's prepare phase is durable on the owners and before
	// any commit message is sent — the crash-consistency tests park here.
	TestHookPrepared func(p *sim.Proc)
}

// splitmix64 advances x and returns the next value of the stream (the
// internal/fault idiom: fixed draws per decision, so the stream position
// is a pure function of the decision count).
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// rngFor returns the initial stream state for (seed, id).
func rngFor(seed int64, id int) uint64 {
	return (uint64(seed)^(uint64(id)*0x9E3779B97F4A7C15))*0x9E3779B97F4A7C15 + 0x1234567
}

// New assembles a cluster on exec — net's host, either a serial Engine
// or an LPGroup with endpoint i's LP hosting node i. Each node's stack
// is built and initialized by a proc on its own LP (concurrently under
// a parallel exec), the group clocks are aligned to a common epoch, and
// the server and router loops are spawned before New returns.
func New(exec sim.Exec, net *simnet.Network, cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("dmeta: need at least one node")
	}
	if cfg.MaxNodes < cfg.Nodes {
		cfg.MaxNodes = cfg.Nodes
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("dmeta: Config.Build is required")
	}
	c := &Cluster{
		exec:     exec,
		net:      net,
		cfg:      cfg,
		obs:      cfg.Obs,
		clientEp: net.Endpoint(0),
		active:   cfg.Nodes,
		rng:      rngFor(cfg.Seed, 0),
	}
	c.OpLat.SetCap(latCap)
	c.CrossLat.SetCap(latCap)

	// Stripe the id space over the initial nodes; node 1's partition
	// holds the root and starts allocating above it. Spares own the
	// empty range until a split hands them one.
	stride := (inoSpace - 1) / uint64(cfg.Nodes)
	ranges := make([][2]uint64, cfg.MaxNodes)
	for i := 0; i < cfg.Nodes; i++ {
		start := 1 + uint64(i)*stride
		end := start + stride
		if i == cfg.Nodes-1 {
			end = inoSpace
		}
		next := start
		if i == 0 {
			next = RootIno + 1
		}
		ranges[i] = [2]uint64{start, end}
		c.parts = append(c.parts, part{start: start, end: end, node: i + 1, next: next})
	}

	// Build and initialize every node on its own LP. The endpoint table
	// is populated here, single-threaded, before any proc runs; the init
	// procs touch only their node's state (plus their own slot of nodes/
	// errs — disjoint elements), so the windows may run concurrently.
	c.nodes = make([]*Node, cfg.MaxNodes)
	errs := make([]error, cfg.MaxNodes)
	for id := 1; id <= cfg.MaxNodes; id++ {
		id := id
		ep := net.Endpoint(id)
		ep.Host().Spawn(fmt.Sprintf("init%d", id), func(p *sim.Proc) {
			st, err := cfg.Build(p, id)
			if err != nil {
				errs[id-1] = fmt.Errorf("dmeta: build node %d: %w", id, err)
				return
			}
			n, err := newNode(c, id, st, ep, p, ranges[id-1][0], ranges[id-1][1])
			if err != nil {
				errs[id-1] = fmt.Errorf("dmeta: init node %d: %w", id, err)
				return
			}
			if id == 1 {
				if err := n.installRoot(p); err != nil {
					errs[id-1] = fmt.Errorf("dmeta: install root: %w", err)
					return
				}
			}
			c.nodes[id-1] = n
		})
	}
	exec.Run()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Bring every LP to the same epoch, so server start times (and
	// everything after) match the serial engine's single clock.
	if g, ok := exec.(*sim.LPGroup); ok {
		g.Align()
	}

	for _, n := range c.nodes {
		n := n
		n.ep.Host().Spawn(fmt.Sprintf("mds%d", n.id), n.serve)
	}
	exec.Spawn("router", c.router)
	return c, nil
}

// router serves the cluster-control requests nodes address to endpoint 0
// (replies to client Calls never surface here — they are demultiplexed
// by request id). It owns the spare pool and the partition map, so
// claim and publish decisions are serialized in message-delivery order
// no matter which LPs the nodes run on.
func (c *Cluster) router(p *sim.Proc) {
	for {
		m, ok := c.clientEp.Recv(p)
		if !ok {
			return
		}
		r := m.Payload.(req)
		switch r.Kind {
		case kClaimSpare:
			c.clientEp.Reply(m, respSize, resp{Target: uint64(c.activateSpare())})
		case kSplitDone:
			c.finishSplit(m.From, int(r.Target), r.Ino, r.Moved)
		default:
			panic(fmt.Sprintf("dmeta: router got request kind %d from node %d", r.Kind, m.From))
		}
	}
}

// Exec returns the execution host the cluster runs on.
func (c *Cluster) Exec() sim.Exec { return c.exec }

// Net returns the cluster's network.
func (c *Cluster) Net() *simnet.Network { return c.net }

// ActiveNodes returns the number of nodes currently owning a partition.
func (c *Cluster) ActiveNodes() int { return c.active }

// Node returns node id's handle (1-based, spares included).
func (c *Cluster) Node(id int) *Node { return c.nodes[id-1] }

// Forwards sums the nodes' forwarded-request counters. The counters are
// per-node LP state: read only when the exec is idle (after SyncAll or
// Shutdown).
func (c *Cluster) Forwards() int64 {
	var n int64
	for _, nd := range c.nodes {
		n += nd.forwards
	}
	return n
}

// Parts returns a copy of the partition map in key order.
func (c *Cluster) Parts() []PartInfo {
	out := make([]PartInfo, len(c.parts))
	for i, pt := range c.parts {
		out[i] = PartInfo{Start: pt.start, End: pt.end, Node: pt.node}
	}
	return out
}

// ownerOf returns the node id owning key under the router's (possibly
// momentarily stale) map. The map is tiny (≤ MaxNodes entries) so a
// linear scan is fine and trivially deterministic.
func (c *Cluster) ownerOf(key uint64) int {
	for i := range c.parts {
		if key >= c.parts[i].start && key < c.parts[i].end {
			return c.parts[i].node
		}
	}
	panic(fmt.Sprintf("dmeta: key %d outside the partition map", key))
}

// allocIno draws a fresh logical inode id: the router stream picks among
// partitions with allocation headroom, then takes that partition's next
// sequential id.
func (c *Cluster) allocIno() uint64 {
	r := splitmix64(&c.rng)
	elig := make([]int, 0, len(c.parts))
	for i := range c.parts {
		if c.parts[i].next < c.parts[i].end {
			elig = append(elig, i)
		}
	}
	if len(elig) == 0 {
		panic("dmeta: inode-id space exhausted")
	}
	pi := elig[int(r%uint64(len(elig)))]
	ino := c.parts[pi].next
	c.parts[pi].next++
	return ino
}

// activateSpare claims the next spare node id, or 0 when the cluster is
// at MaxNodes.
func (c *Cluster) activateSpare() int {
	if c.active >= c.cfg.MaxNodes {
		return 0
	}
	c.active++
	return c.active
}

// finishSplit publishes a completed split: src's partition [start, end)
// becomes [start, m) and dst owns [m, end). Allocation headroom above m
// moves with the range.
func (c *Cluster) finishSplit(src, dst int, m uint64, moved int) {
	for i := range c.parts {
		pt := &c.parts[i]
		if pt.node != src || m < pt.start || m >= pt.end {
			continue
		}
		next := pt.next
		if next < m {
			next = m
		}
		np := part{start: m, end: pt.end, node: dst, next: next}
		pt.end = m
		if pt.next > m {
			pt.next = m
		}
		c.parts = append(c.parts, part{})
		copy(c.parts[i+2:], c.parts[i+1:])
		c.parts[i+1] = np
		c.Splits++
		c.Migrated += int64(moved)
		return
	}
	panic(fmt.Sprintf("dmeta: finishSplit: no partition of node %d contains %d", src, m))
}

// call issues one RPC to the owner of key and decodes the reply.
func (c *Cluster) call(p *sim.Proc, key uint64, r req) resp {
	m := c.clientEp.Call(p, c.ownerOf(key), reqSize(r), r)
	return m.Payload.(resp)
}

// record finishes one client-visible operation's accounting.
func (c *Cluster) record(p *sim.Proc, t0 sim.Time, cross bool, err error) {
	c.Ops++
	if err != nil {
		c.Errs++
	}
	lat := (p.Now() - t0).Milliseconds()
	c.OpLat.Add(lat)
	if cross {
		c.CrossOps++
		c.CrossLat.Add(lat)
	}
}

// Lookup resolves (parent, name) to a logical inode id.
func (c *Cluster) Lookup(p *sim.Proc, parent uint64, name string) (uint64, error) {
	sp := c.obs.Begin(p, obs.OpLookup)
	defer c.obs.End(p, sp)
	t0 := p.Now()
	rp := c.call(p, parent, req{Kind: kLookup, Parent: parent, Name: name})
	err := rp.Code.err()
	c.record(p, t0, false, err)
	return rp.Target, err
}

// Create allocates a logical inode and links it under (parent, name).
// When the inode's owner differs from the parent's, the inode write is
// the prepare and the dentry add the commit (rule 1: never point at an
// uninitialized resource).
func (c *Cluster) Create(p *sim.Proc, parent uint64, name string) (uint64, error) {
	return c.create(p, parent, name, false)
}

// Mkdir creates a logical directory; its future dentries ride on the new
// inode id's owner.
func (c *Cluster) Mkdir(p *sim.Proc, parent uint64, name string) (uint64, error) {
	return c.create(p, parent, name, true)
}

func (c *Cluster) create(p *sim.Proc, parent uint64, name string, dir bool) (uint64, error) {
	op := obs.OpCreate
	if dir {
		op = obs.OpMkdir
	}
	sp := c.obs.Begin(p, op)
	defer c.obs.End(p, sp)
	t0 := p.Now()
	ino := c.allocIno()
	cross := c.ownerOf(ino) != c.ownerOf(parent)
	if rp := c.call(p, ino, req{Kind: kCreate, Ino: ino, Dir: dir}); rp.Code != errOK {
		err := rp.Code.err()
		c.record(p, t0, cross, err)
		return 0, err
	}
	rp := c.call(p, parent, req{Kind: kAddDentry, Parent: parent, Name: name, Target: ino})
	if rp.Code != errOK {
		// Abort: unlink the prepared inode (it has no referent yet).
		c.call(p, ino, req{Kind: kDecLink, Ino: ino})
		err := rp.Code.err()
		c.record(p, t0, cross, err)
		return 0, err
	}
	c.record(p, t0, cross, nil)
	return ino, nil
}

// Link adds (parent, name) as another reference to target. The
// link-count bump on target's owner is the prepare, the dentry add the
// commit.
func (c *Cluster) Link(p *sim.Proc, target, parent uint64, name string) error {
	sp := c.obs.Begin(p, obs.OpLink)
	defer c.obs.End(p, sp)
	t0 := p.Now()
	cross := c.ownerOf(target) != c.ownerOf(parent)
	if rp := c.call(p, target, req{Kind: kIncLink, Ino: target, MustFile: true}); rp.Code != errOK {
		err := rp.Code.err()
		c.record(p, t0, cross, err)
		return err
	}
	rp := c.call(p, parent, req{Kind: kAddDentry, Parent: parent, Name: name, Target: target})
	if rp.Code != errOK {
		c.call(p, target, req{Kind: kDecLink, Ino: target})
		err := rp.Code.err()
		c.record(p, t0, cross, err)
		return err
	}
	c.record(p, t0, cross, nil)
	return nil
}

// Unlink removes (parent, name); the target inode is freed when this was
// its last reference. Dentry removal precedes the count release (rule 2:
// never reset a pointer before nullifying its references — here the
// inode's backing file outlives every dentry to it). Directories are
// refused.
func (c *Cluster) Unlink(p *sim.Proc, parent uint64, name string) error {
	sp := c.obs.Begin(p, obs.OpUnlink)
	defer c.obs.End(p, sp)
	t0 := p.Now()
	rd := c.call(p, parent, req{Kind: kRemoveDentry, Parent: parent, Name: name})
	if rd.Code != errOK {
		err := rd.Code.err()
		c.record(p, t0, false, err)
		return err
	}
	cross := c.ownerOf(rd.Target) != c.ownerOf(parent)
	rp := c.call(p, rd.Target, req{Kind: kDecLink, Ino: rd.Target, MustFile: true})
	if rp.Code != errOK {
		// Directory (or vanished target): compensate by restoring the
		// dentry so the namespace stays consistent.
		c.call(p, parent, req{Kind: kAddDentry, Parent: parent, Name: name, Target: rd.Target})
		err := rp.Code.err()
		c.record(p, t0, cross, err)
		return err
	}
	c.record(p, t0, cross, nil)
	return nil
}

// Rename moves (sparent, sname) to (dparent, dname), replacing an
// existing destination. It is the canonical two-phase cross-partition
// operation: prepares — a link-count bump covering the transient second
// name, then the destination dentry add — complete before the commits —
// source dentry removal, count release, and (on replace) the old
// target's count release — are sent.
func (c *Cluster) Rename(p *sim.Proc, sparent uint64, sname string, dparent uint64, dname string) error {
	sp := c.obs.Begin(p, obs.OpRename)
	defer c.obs.End(p, sp)
	t0 := p.Now()
	rl := c.call(p, sparent, req{Kind: kLookup, Parent: sparent, Name: sname})
	if rl.Code != errOK {
		err := rl.Code.err()
		c.record(p, t0, false, err)
		return err
	}
	ino := rl.Target
	iOwner := c.ownerOf(ino)
	cross := iOwner != c.ownerOf(sparent) || iOwner != c.ownerOf(dparent) ||
		c.ownerOf(sparent) != c.ownerOf(dparent)
	// Prepare: the count bump keeps the inode live while two names point
	// at it; the destination add happens before the source removal.
	if rp := c.call(p, ino, req{Kind: kIncLink, Ino: ino, MustFile: true}); rp.Code != errOK {
		err := rp.Code.err()
		c.record(p, t0, cross, err)
		return err
	}
	ra := c.call(p, dparent, req{Kind: kAddDentry, Parent: dparent, Name: dname, Target: ino, Replace: true})
	if ra.Code != errOK {
		c.call(p, ino, req{Kind: kDecLink, Ino: ino})
		err := ra.Code.err()
		c.record(p, t0, cross, err)
		return err
	}
	if hook := c.TestHookPrepared; hook != nil {
		hook(p)
	}
	// Commit: drop the source name, release the transient count, and
	// release a replaced target's reference.
	c.call(p, sparent, req{Kind: kRemoveDentry, Parent: sparent, Name: sname})
	c.call(p, ino, req{Kind: kDecLink, Ino: ino})
	if ra.Old != 0 && ra.Old != ino {
		c.call(p, ra.Old, req{Kind: kDecLink, Ino: ra.Old})
	}
	c.record(p, t0, cross, nil)
	return nil
}

// SyncAll flushes every node's file system (delayed writes included) and
// returns when the cluster is quiescent. The flushes run as one kSync
// RPC per node, issued concurrently — on a parallel exec the nodes
// flush their disks simultaneously.
func (c *Cluster) SyncAll() {
	remaining := len(c.nodes)
	for _, n := range c.nodes {
		id := n.id
		c.exec.Spawn(fmt.Sprintf("sync%d", id), func(p *sim.Proc) {
			c.clientEp.Call(p, id, reqSize(req{Kind: kSync}), req{Kind: kSync})
			remaining--
		})
	}
	c.exec.RunWhile(func() bool { return remaining > 0 })
}

// Shutdown stops every node (syncer halted, endpoint closed) via
// kShutdown RPCs, closes the client endpoint so the router exits, and
// drains the exec. After Crash the machines are dead and the clocks are
// frozen, so there is nothing left to wind down.
func (c *Cluster) Shutdown() {
	if c.crashed {
		return
	}
	remaining := len(c.nodes)
	for _, n := range c.nodes {
		id := n.id
		c.exec.Spawn(fmt.Sprintf("stop%d", id), func(p *sim.Proc) {
			c.clientEp.Call(p, id, reqSize(req{Kind: kShutdown}), req{Kind: kShutdown})
			remaining--
		})
	}
	c.exec.RunWhile(func() bool { return remaining > 0 })
	c.clientEp.Close()
	c.exec.Run()
}

// Crash snapshots every node's media as of a simultaneous power failure
// at time t (the exec must already have run up to t, and — parallel —
// no LP clock may be past it: fsim checks NowMax): in-flight disk state
// is resolved by each node's driver crash model, and the returned images
// are independent copies.
func (c *Cluster) Crash(t sim.Time) [][]byte {
	c.crashed = true
	imgs := make([][]byte, len(c.nodes))
	for i, n := range c.nodes {
		n.St.Driver.Crash(t)
		imgs[i] = n.St.Disk.CloneImage()
	}
	return imgs
}

// Images returns an independent media snapshot per node (quiescent
// cluster assumed; use Crash for failure snapshots).
func (c *Cluster) Images() [][]byte {
	imgs := make([][]byte, len(c.nodes))
	for i, n := range c.nodes {
		imgs[i] = n.St.Disk.CloneImage()
	}
	return imgs
}
