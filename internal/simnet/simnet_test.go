package simnet

import (
	"testing"

	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// TestLinkCostModel pins the timeline arithmetic: a message's delivery
// time is xmitStart + size/bandwidth + latency, and back-to-back sends
// on one link serialize on the transmission pipe.
func TestLinkCostModel(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Params{Latency: 1 * sim.Millisecond, BytesPerSec: 1_000_000})
	src := net.Endpoint(1)
	_ = net.Endpoint(2)

	// 1000 bytes at 1 MB/s = 1ms transmission.
	src.Send(2, 1000, "a")
	src.Send(2, 1000, "b")
	eng.Spawn("rcv", func(p *sim.Proc) {
		m1, _ := net.Endpoint(2).Recv(p)
		if m1.Payload != "a" {
			t.Errorf("first delivery = %v, want a (FIFO)", m1.Payload)
		}
		if m1.At != 2*sim.Millisecond {
			t.Errorf("first At = %v, want 2ms", m1.At)
		}
		if m1.Queued != 0 || m1.Wire != 2*sim.Millisecond {
			t.Errorf("first timing queued=%v wire=%v", m1.Queued, m1.Wire)
		}
		m2, _ := net.Endpoint(2).Recv(p)
		// Second send queued behind the first transmission: starts at
		// 1ms, delivers at 1+1+1 = 3ms.
		if m2.At != 3*sim.Millisecond || m2.Queued != 1*sim.Millisecond {
			t.Errorf("second At=%v queued=%v, want 3ms/1ms", m2.At, m2.Queued)
		}
		if m2.SentAt != 0 || m2.At-m2.SentAt != m2.Queued+m2.Wire {
			t.Errorf("timeline does not partition: %+v", m2)
		}
	})
	eng.Run()
}

// TestDistinctLinksDoNotContend checks the pipe is per directed link.
func TestDistinctLinksDoNotContend(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Params{Latency: 1 * sim.Millisecond, BytesPerSec: 1_000_000})
	net.Endpoint(1).Send(2, 1000, nil)
	net.Endpoint(3).Send(2, 1000, nil)
	eng.Spawn("rcv", func(p *sim.Proc) {
		a, _ := net.Endpoint(2).Recv(p)
		b, _ := net.Endpoint(2).Recv(p)
		if a.At != 2*sim.Millisecond || b.At != 2*sim.Millisecond {
			t.Errorf("independent links contended: %v, %v", a.At, b.At)
		}
		// Same delivery instant: (at, pri) orders by (source, source seq).
		if a.From != 1 || b.From != 3 {
			t.Errorf("same-instant delivery order not send order: %d then %d", a.From, b.From)
		}
	})
	eng.Run()
}

func TestCallReplyRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultParams())
	server := net.Endpoint(2)
	eng.Spawn("server", func(p *sim.Proc) {
		for {
			m, ok := server.Recv(p)
			if !ok {
				return
			}
			server.Reply(m, 64, m.Payload.(int)*2)
		}
	})
	var got int
	eng.Spawn("client", func(p *sim.Proc) {
		r := net.Endpoint(1).Call(p, 2, 128, 21)
		got = r.Payload.(int)
		server.Close()
	})
	eng.Run()
	if got != 42 {
		t.Fatalf("reply payload = %d, want 42", got)
	}
}

// TestForwardRepliesToOrigin: a forwarded request's reply must reach the
// original caller, not the forwarder.
func TestForwardRepliesToOrigin(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, DefaultParams())
	mid, far := net.Endpoint(2), net.Endpoint(3)
	eng.Spawn("mid", func(p *sim.Proc) {
		m, ok := mid.Recv(p)
		if ok {
			mid.Forward(m, 3)
		}
	})
	eng.Spawn("far", func(p *sim.Proc) {
		m, ok := far.Recv(p)
		if ok {
			if m.ReplyTo != 1 {
				t.Errorf("forwarded ReplyTo = %d, want 1", m.ReplyTo)
			}
			far.Reply(m, 16, "pong")
		}
	})
	var got any
	eng.Spawn("client", func(p *sim.Proc) {
		got = net.Endpoint(1).Call(p, 2, 16, "ping").Payload
	})
	eng.Run()
	if got != "pong" {
		t.Fatalf("forwarded call reply = %v", got)
	}
}

// TestCallSpanPartition: the netqueue/wire instrumentation must keep the
// span partition exact, with the wire segment equal to the measured
// request+reply wire time.
func TestCallSpanPartition(t *testing.T) {
	eng := sim.NewEngine()
	rec := obs.New(eng)
	net := New(eng, Params{Latency: 1 * sim.Millisecond, BytesPerSec: 1_000_000})
	server := net.Endpoint(2)
	eng.Spawn("server", func(p *sim.Proc) {
		m, ok := server.Recv(p)
		if ok {
			p.Sleep(5 * sim.Millisecond) // remote service time
			server.Reply(m, 1000, nil)
		}
	})
	eng.Spawn("client", func(p *sim.Proc) {
		sp := rec.Begin(p, obs.OpLookup)
		net.Endpoint(1).Call(p, 2, 1000, nil)
		rec.End(p, sp)
	})
	eng.Run()
	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	s := spans[0]
	var sum sim.Duration
	for _, v := range s.Seg {
		if v < 0 {
			t.Fatalf("negative segment: %+v", s.Seg)
		}
		sum += v
	}
	if sum != s.End-s.Start {
		t.Fatalf("partition broken: sum %v, span %v", sum, s.End-s.Start)
	}
	// Request: 1ms xmit + 1ms latency; reply the same → 4ms on the wire.
	if s.Seg[obs.StageWire] != 4*sim.Millisecond {
		t.Fatalf("wire = %v, want 4ms", s.Seg[obs.StageWire])
	}
	// Remote service (5ms) stays in netqueue.
	if s.Seg[obs.StageNetQueue] != 5*sim.Millisecond {
		t.Fatalf("netqueue = %v, want 5ms", s.Seg[obs.StageNetQueue])
	}
}

// TestDeterministicTimeline: two identical runs produce identical
// message sequences and traffic counters.
func TestDeterministicTimeline(t *testing.T) {
	run := func() (int64, int64, sim.Time) {
		eng := sim.NewEngine()
		net := New(eng, DefaultParams())
		server := net.Endpoint(9)
		eng.Spawn("server", func(p *sim.Proc) {
			for {
				m, ok := server.Recv(p)
				if !ok {
					return
				}
				server.Reply(m, 32, nil)
			}
		})
		done := 0
		for i := 0; i < 4; i++ {
			i := i
			eng.Spawn("client", func(p *sim.Proc) {
				ep := net.Endpoint(i + 1)
				for j := 0; j < 25; j++ {
					ep.Call(p, 9, 100+i*10+j, nil)
				}
				done++
				if done == 4 {
					server.Close()
				}
			})
		}
		eng.Run()
		tot := net.Totals()
		return tot.Sent, tot.Bytes, eng.Now()
	}
	s1, b1, t1 := run()
	s2, b2, t2 := run()
	if s1 != s2 || b1 != b2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d,%v) vs (%d,%d,%v)", s1, b1, t1, s2, b2, t2)
	}
	if s1 != 200 { // 100 calls, request + reply each
		t.Fatalf("sent %d messages, want 200", s1)
	}
}
