// Package simnet is a simulated message network between processes on one
// sim.Engine — the fabric the sharded metadata service (internal/dmeta)
// runs over. It models each directed endpoint pair as an independent
// link with a serial transmission pipe (bandwidth) followed by a
// propagation delay (latency):
//
//	xmitStart = max(now, link.busyUntil)   // earlier messages hold the pipe
//	deliverAt = xmitStart + size/bandwidth + latency
//	busyUntil = xmitStart + size/bandwidth
//
// Because busyUntil is monotone per link, per-link delivery is FIFO by
// construction, and because deliveries are ordinary engine events, the
// global message timeline is totally ordered by the engine's (at, seq)
// rule — two messages delivered at the same virtual instant fire in send
// order. All state is engine-local (no package globals, no wall clock,
// no map-order iteration), so a run is a pure function of the send
// sequence: the property the memoized distributed cells depend on.
//
// Instrumentation: Call brackets its blocking wait in StageNetQueue and,
// on reply, retroactively moves the measured wire time (request + reply
// transmission and propagation) into StageWire via Span.PopNet — the
// span partition invariant sum(Seg) == End-Start holds exactly for
// distributed operations too.
package simnet

import (
	"fmt"

	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// Params is the link cost model, shared by every link in the network.
type Params struct {
	// Latency is the per-message propagation delay (default 200µs).
	Latency sim.Duration
	// BytesPerSec is the link bandwidth (default 125 MB/s ≈ 1 Gbit/s).
	BytesPerSec int64
}

// DefaultParams returns the standard datacenter-ish cost model.
func DefaultParams() Params {
	return Params{Latency: 200 * sim.Microsecond, BytesPerSec: 125_000_000}
}

func (p Params) String() string {
	return fmt.Sprintf("lat%d,bw%d", p.Latency, p.BytesPerSec)
}

// Message is one delivered datagram. The payload crosses by reference
// (this is a simulation, not a serializer); Size drives the cost model.
type Message struct {
	From, To int
	Size     int
	Payload  any

	// RPC bookkeeping: ReqID matches a reply to its Call, ReplyTo is the
	// endpoint the reply must reach (preserved across Forward so replies
	// skip intermediaries).
	ReqID   uint64
	ReplyTo int
	IsReply bool

	// Seq is the network-wide send sequence number (determinism audit).
	Seq uint64
	// SentAt is when the sender issued the message; At when it arrived.
	SentAt, At sim.Time
	// Queued is time spent waiting for the link pipe; Wire is
	// transmission + propagation. Queued + Wire == At - SentAt.
	Queued, Wire sim.Duration
}

type linkKey struct{ from, to int }

// Network connects a set of integer-addressed endpoints over directed
// links sharing one cost model.
type Network struct {
	eng   *sim.Engine
	p     Params
	eps   map[int]*Endpoint
	busy  map[linkKey]sim.Time // per-link pipe occupancy
	seq   uint64
	reqID uint64

	// Sent / Delivered / Bytes are cumulative traffic counters.
	Sent, Delivered, Bytes int64
}

// New returns an empty network on eng. Zero-valued Params fields take
// defaults.
func New(eng *sim.Engine, p Params) *Network {
	d := DefaultParams()
	if p.Latency <= 0 {
		p.Latency = d.Latency
	}
	if p.BytesPerSec <= 0 {
		p.BytesPerSec = d.BytesPerSec
	}
	return &Network{
		eng:  eng,
		p:    p,
		eps:  make(map[int]*Endpoint),
		busy: make(map[linkKey]sim.Time),
	}
}

// Params returns the network's cost model.
func (n *Network) Params() Params { return n.p }

// Endpoint returns (creating on first use) the endpoint with the given
// address. Addresses are small ints chosen by the caller.
func (n *Network) Endpoint(id int) *Endpoint {
	if ep, ok := n.eps[id]; ok {
		return ep
	}
	ep := &Endpoint{n: n, id: id, calls: make(map[uint64]*call)}
	n.eps[id] = ep
	return ep
}

// send computes the message's timeline under the link cost model and
// schedules its delivery. Returns the message as timed.
func (n *Network) send(m Message) Message {
	now := n.eng.Now()
	k := linkKey{m.From, m.To}
	start := n.busy[k]
	if start < now {
		start = now
	}
	xmit := sim.Duration(int64(m.Size) * int64(sim.Second) / n.p.BytesPerSec)
	n.busy[k] = start + xmit

	n.seq++
	m.Seq = n.seq
	m.SentAt = now
	m.At = start + xmit + n.p.Latency
	m.Queued = start - now
	m.Wire = xmit + n.p.Latency

	n.Sent++
	n.Bytes += int64(m.Size)
	dst := n.Endpoint(m.To)
	n.eng.At(m.At, func() {
		n.Delivered++
		dst.deliver(m)
	})
	return m
}

type call struct {
	done  *sim.Completion
	reply Message
}

// Endpoint is one addressable participant: an inbox of requests plus a
// table of in-flight outbound calls. One process may serve the inbox
// (Recv) while others issue Calls through the same endpoint — replies
// are demultiplexed by ReqID and never enter the inbox.
type Endpoint struct {
	n      *Network
	id     int
	inbox  []Message
	head   int
	wake   *sim.Completion // armed when a receiver is parked
	calls  map[uint64]*call
	closed bool
}

// ID returns the endpoint's network address.
func (ep *Endpoint) ID() int { return ep.id }

// Queued returns the inbox depth — the load signal the dmeta split
// policy watches.
func (ep *Endpoint) Queued() int { return len(ep.inbox) - ep.head }

func (ep *Endpoint) deliver(m Message) {
	if m.IsReply {
		c, ok := ep.calls[m.ReqID]
		if !ok {
			panic(fmt.Sprintf("simnet: endpoint %d got reply for unknown call %d", ep.id, m.ReqID))
		}
		delete(ep.calls, m.ReqID)
		c.reply = m
		c.done.Fire(ep.n.eng)
		return
	}
	ep.inbox = append(ep.inbox, m)
	if ep.wake != nil {
		w := ep.wake
		ep.wake = nil
		w.Fire(ep.n.eng)
	}
}

// Send transmits a one-way message (no reply expected).
func (ep *Endpoint) Send(to, size int, payload any) {
	ep.n.send(Message{From: ep.id, To: to, Size: size, Payload: payload, ReplyTo: ep.id})
}

// Call sends a request and blocks p until the matching reply arrives.
// The wait is recorded as StageNetQueue on p's span, with the measured
// wire time of both directions split out into StageWire.
func (ep *Endpoint) Call(p *sim.Proc, to, size int, payload any) Message {
	t0 := p.Now()
	sp := obs.SpanOf(p)
	sp.Push(p, obs.StageNetQueue)
	ep.n.reqID++
	id := ep.n.reqID
	c := &call{done: sim.NewCompletion()}
	ep.calls[id] = c
	req := ep.n.send(Message{
		From: ep.id, To: to, Size: size, Payload: payload,
		ReqID: id, ReplyTo: ep.id,
	})
	c.done.Wait(p)
	sp.PopNet(p, t0, req.Wire+c.reply.Wire)
	return c.reply
}

// Reply answers a request previously received via Recv (possibly after
// forwarding); the reply travels to the original caller's endpoint.
func (ep *Endpoint) Reply(req Message, size int, payload any) {
	ep.n.send(Message{
		From: ep.id, To: req.ReplyTo, Size: size, Payload: payload,
		ReqID: req.ReqID, IsReply: true, ReplyTo: ep.id,
	})
}

// Forward re-transmits a received request to another endpoint, keeping
// the original caller's ReqID/ReplyTo so the eventual Reply goes
// straight back to them.
func (ep *Endpoint) Forward(m Message, to int) {
	ep.n.send(Message{
		From: ep.id, To: to, Size: m.Size, Payload: m.Payload,
		ReqID: m.ReqID, ReplyTo: m.ReplyTo,
	})
}

// Recv blocks p until a request is available (replies never surface
// here) and returns it; ok is false once the endpoint is closed and
// drained, the server's signal to exit.
func (ep *Endpoint) Recv(p *sim.Proc) (Message, bool) {
	for ep.head >= len(ep.inbox) {
		if ep.closed {
			return Message{}, false
		}
		if ep.wake == nil {
			ep.wake = sim.NewCompletion()
		}
		ep.wake.Wait(p)
	}
	m := ep.inbox[ep.head]
	ep.inbox[ep.head] = Message{} // drop payload reference
	ep.head++
	if ep.head == len(ep.inbox) {
		ep.inbox = ep.inbox[:0]
		ep.head = 0
	}
	return m, true
}

// Close marks the endpoint closed and wakes any parked receiver so its
// server loop can exit. In-flight deliveries still land (and are
// discarded unread if nobody Recvs them).
func (ep *Endpoint) Close() {
	ep.closed = true
	if ep.wake != nil {
		w := ep.wake
		ep.wake = nil
		w.Fire(ep.n.eng)
	}
}
