// Package simnet is a simulated message network between processes — the
// fabric the sharded metadata service (internal/dmeta) runs over. It
// models each directed endpoint pair as an independent link with a serial
// transmission pipe (bandwidth) followed by a propagation delay (latency):
//
//	xmitStart = max(now, link.busyUntil)   // earlier messages hold the pipe
//	deliverAt = xmitStart + size/bandwidth + latency
//	busyUntil = xmitStart + size/bandwidth
//
// Because busyUntil is monotone per link, per-link delivery is FIFO by
// construction. Deliveries are engine events with a cross-engine priority
// key — (source endpoint, per-source sequence) packed into one word — so
// the global message timeline is totally ordered by (at, pri, seq): two
// messages delivered at the same virtual instant fire in (source, source
// order) order, a rule every engine evaluates identically. That is what
// lets the same network run serially on one engine or partitioned across
// a sim.LPGroup (one engine per endpoint set) with byte-identical
// observable behavior: all state is endpoint-local (send sequences, link
// pipes, call tables, traffic counters — no shared counters, no package
// globals, no wall clock, no map-order iteration), sends from an endpoint
// hosted on another LP are buffered in that LP's outbox and merged at the
// window barrier, and delivery order never depends on which engine hosted
// the sender.
//
// The send path is allocation-free in steady state: delivery payloads are
// value messages carried by pooled carriers that migrate sender → receiver
// (each endpoint pops carriers from its own free list and delivery pushes
// onto the destination's, so each list is touched only by its owner LP).
//
// Instrumentation: Call brackets its blocking wait in StageNetQueue and,
// on reply, retroactively moves the measured wire time (request + reply
// transmission and propagation) into StageWire via Span.PopNet — the
// span partition invariant sum(Seg) == End-Start holds exactly for
// distributed operations too.
package simnet

import (
	"fmt"

	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// ZeroLatency is the Params.Latency sentinel for a genuinely free link
// (zero propagation delay). A literal 0 means "default": the zero Params
// value must keep meaning the standard cost model everywhere. Zero-latency
// links are legal on a serial engine but reject parallel partitioning —
// conservative sync needs positive lookahead (sim.NewLPGroup).
const ZeroLatency sim.Duration = -1

// Params is the link cost model, shared by every link in the network.
type Params struct {
	// Latency is the per-message propagation delay (default 200µs;
	// ZeroLatency for a zero-delay link).
	Latency sim.Duration
	// BytesPerSec is the link bandwidth (default 125 MB/s ≈ 1 Gbit/s).
	BytesPerSec int64
}

// DefaultParams returns the standard datacenter-ish cost model.
func DefaultParams() Params {
	return Params{Latency: 200 * sim.Microsecond, BytesPerSec: 125_000_000}
}

// Normalized resolves defaults and sentinels to the effective cost model:
// zero fields take defaults, ZeroLatency becomes a literal 0.
func (p Params) Normalized() Params {
	d := DefaultParams()
	if p.Latency == 0 {
		p.Latency = d.Latency
	} else if p.Latency < 0 {
		p.Latency = 0
	}
	if p.BytesPerSec <= 0 {
		p.BytesPerSec = d.BytesPerSec
	}
	return p
}

func (p Params) String() string {
	return fmt.Sprintf("lat%d,bw%d", p.Latency, p.BytesPerSec)
}

// Message is one delivered datagram. The payload crosses by reference
// (this is a simulation, not a serializer); Size drives the cost model.
type Message struct {
	From, To int
	Size     int
	Payload  any

	// RPC bookkeeping: ReqID matches a reply to its Call (scoped to the
	// calling endpoint), ReplyTo is the endpoint the reply must reach
	// (preserved across Forward so replies skip intermediaries).
	ReqID   uint64
	ReplyTo int
	IsReply bool

	// Seq is the sender's per-endpoint send sequence number; (From, Seq)
	// identifies a message globally and orders same-instant deliveries.
	Seq uint64
	// SentAt is when the sender issued the message; At when it arrived.
	SentAt, At sim.Time
	// Queued is time spent waiting for the link pipe; Wire is
	// transmission + propagation. Queued + Wire == At - SentAt.
	Queued, Wire sim.Duration
}

// Totals is the summed traffic of every endpoint. With a parallel group
// the per-endpoint counters live on their host LPs, so read Totals only
// when the group is idle (between runs, or after the final drain).
type Totals struct {
	Sent, Delivered, Bytes int64
}

// Network connects a set of integer-addressed endpoints over directed
// links sharing one cost model. With a serial engine every endpoint runs
// on it; with a parallel group, endpoint id i is hosted by LP i (the
// dmeta convention: endpoint 0 is the client/router LP, endpoint i node
// i's LP).
type Network struct {
	p   Params
	eng *sim.Engine  // serial host (nil when grp is set)
	grp *sim.LPGroup // parallel host (nil when eng is set)
	eps map[int]*Endpoint
}

// New returns an empty serial network on eng. Zero-valued Params fields
// take defaults (ZeroLatency means a genuine zero-delay link).
func New(eng *sim.Engine, p Params) *Network {
	return &Network{eng: eng, p: p.Normalized(), eps: make(map[int]*Endpoint)}
}

// NewParallel returns an empty network partitioned over g: endpoint id i
// is hosted by g.LP(i), and sends between endpoints on different LPs go
// through the group's outboxes. The group's lookahead must not exceed
// MinDelay — sim.NewLPGroup enforces positivity; the caller wires
// MinDelay in as the lookahead.
func NewParallel(g *sim.LPGroup, p Params) *Network {
	return &Network{grp: g, p: p.Normalized(), eps: make(map[int]*Endpoint)}
}

// Params returns the network's effective cost model.
func (n *Network) Params() Params { return n.p }

// MinDelay is the minimum virtual time any message spends in flight — the
// conservative-sync lookahead a parallel partitioning of this network may
// safely use (transmission time only adds to it).
func (n *Network) MinDelay() sim.Duration { return n.p.Latency }

// Totals sums the per-endpoint traffic counters (see Totals on safety).
func (n *Network) Totals() Totals {
	var t Totals
	for _, ep := range n.eps {
		t.Sent += ep.sent
		t.Delivered += ep.delivered
		t.Bytes += ep.bytes
	}
	return t
}

// Endpoint returns (creating on first use) the endpoint with the given
// address. Addresses are small ints chosen by the caller; on a parallel
// network the address doubles as the host LP index. Create endpoints
// during single-threaded setup — the address table is read-only once the
// simulation runs.
func (n *Network) Endpoint(id int) *Endpoint {
	if ep, ok := n.eps[id]; ok {
		return ep
	}
	ep := &Endpoint{
		n:    n,
		id:   id,
		eng:  n.eng,
		busy: make(map[int]sim.Time),
	}
	if n.grp != nil {
		ep.eng = n.grp.LP(id)
		ep.lp = id
		ep.outbox = n.grp.Outbox(id)
	}
	n.eps[id] = ep
	return ep
}

// carrier is the pooled Delivery that walks a Message into its
// destination's engine. Carriers migrate with the traffic: a sender pops
// from its own free list, and Deliver pushes onto the destination's —
// each list is touched only by the LP that owns it, and steady-state
// RPC traffic (request out, reply back) recycles carriers with zero
// allocation.
type carrier struct {
	dst *Endpoint
	m   Message
}

// Deliver hands the message to the destination endpoint and returns the
// carrier to the destination's free list. It runs on the destination's
// engine, exactly like an At callback.
func (cr *carrier) Deliver() {
	dst := cr.dst
	m := cr.m
	cr.dst = nil
	cr.m = Message{} // drop the payload reference
	dst.pool = append(dst.pool, cr)
	dst.delivered++
	dst.deliver(m)
}

type call struct {
	done  *sim.Completion
	reply Message
}

// Endpoint is one addressable participant: an inbox of requests, a table
// of in-flight outbound calls, and the sender-side halves of its outgoing
// links (pipe occupancy, send sequence, traffic counters). One process
// may serve the inbox (Recv) while others issue Calls through the same
// endpoint — replies are demultiplexed by ReqID and never enter the
// inbox. All of an endpoint's state is touched only by its host LP.
type Endpoint struct {
	n      *Network
	id     int
	eng    *sim.Engine
	lp     int         // host LP index (0 on a serial network)
	outbox *sim.Outbox // cross-LP send buffer (nil on a serial network)

	sendSeq uint64           // per-source sequence: Message.Seq and the pri key
	reqID   uint64           // per-endpoint Call id source
	busy    map[int]sim.Time // per-destination pipe occupancy

	sent, delivered, bytes int64

	inbox    []Message
	head     int
	wake     *sim.Completion // armed when a receiver is parked
	wakeBuf  *sim.Completion // the (single, reused) completion behind wake
	calls    map[uint64]*call
	callPool []*call
	pool     []*carrier
	closed   bool
}

// ID returns the endpoint's network address.
func (ep *Endpoint) ID() int { return ep.id }

// Host returns the engine the endpoint lives on — the place to spawn
// the processes that serve it.
func (ep *Endpoint) Host() *sim.Engine { return ep.eng }

// Queued returns the inbox depth — the load signal the dmeta split
// policy watches.
func (ep *Endpoint) Queued() int { return len(ep.inbox) - ep.head }

// Sent reports the messages this endpoint has sent.
func (ep *Endpoint) Sent() int64 { return ep.sent }

// priBits is the width of the per-source sequence inside the pri key.
const priBits = 40

// send computes the message's timeline under the link cost model and
// schedules its delivery with pri = (source, source sequence): every
// engine orders a same-instant delivery set identically, whether the
// senders were local or remote.
func (ep *Endpoint) send(m Message) Message {
	now := ep.eng.Now()
	start := ep.busy[m.To]
	if start < now {
		start = now
	}
	xmit := sim.Duration(int64(m.Size) * int64(sim.Second) / ep.n.p.BytesPerSec)
	ep.busy[m.To] = start + xmit

	ep.sendSeq++
	m.Seq = ep.sendSeq
	m.SentAt = now
	m.At = start + xmit + ep.n.p.Latency
	m.Queued = start - now
	m.Wire = xmit + ep.n.p.Latency

	ep.sent++
	ep.bytes += int64(m.Size)

	dst := ep.n.Endpoint(m.To)
	var cr *carrier
	if k := len(ep.pool); k > 0 {
		cr = ep.pool[k-1]
		ep.pool[k-1] = nil
		ep.pool = ep.pool[:k-1]
	} else {
		cr = &carrier{}
	}
	cr.dst = dst
	cr.m = m
	pri := uint64(ep.id+1)<<priBits | (ep.sendSeq & (1<<priBits - 1))
	if ep.outbox != nil && dst.lp != ep.lp {
		ep.outbox.Send(dst.lp, m.At, pri, cr)
	} else {
		ep.eng.AtPri(m.At, pri, cr)
	}
	return m
}

func (ep *Endpoint) deliver(m Message) {
	if m.IsReply {
		c, ok := ep.calls[m.ReqID]
		if !ok {
			panic(fmt.Sprintf("simnet: endpoint %d got reply for unknown call %d", ep.id, m.ReqID))
		}
		delete(ep.calls, m.ReqID)
		c.reply = m
		c.done.Fire(ep.eng)
		return
	}
	ep.inbox = append(ep.inbox, m)
	if ep.wake != nil {
		w := ep.wake
		ep.wake = nil
		w.Fire(ep.eng)
	}
}

// Send transmits a one-way message (no reply expected).
func (ep *Endpoint) Send(to, size int, payload any) {
	ep.send(Message{From: ep.id, To: to, Size: size, Payload: payload, ReplyTo: ep.id})
}

// Call sends a request and blocks p until the matching reply arrives.
// The wait is recorded as StageNetQueue on p's span, with the measured
// wire time of both directions split out into StageWire.
func (ep *Endpoint) Call(p *sim.Proc, to, size int, payload any) Message {
	t0 := p.Now()
	sp := obs.SpanOf(p)
	sp.Push(p, obs.StageNetQueue)
	ep.reqID++
	id := ep.reqID
	var c *call
	if k := len(ep.callPool); k > 0 {
		c = ep.callPool[k-1]
		ep.callPool[k-1] = nil
		ep.callPool = ep.callPool[:k-1]
	} else {
		c = &call{done: sim.NewCompletion()}
	}
	if ep.calls == nil {
		ep.calls = make(map[uint64]*call)
	}
	ep.calls[id] = c
	req := ep.send(Message{
		From: ep.id, To: to, Size: size, Payload: payload,
		ReqID: id, ReplyTo: ep.id,
	})
	c.done.Wait(p)
	sp.PopNet(p, t0, req.Wire+c.reply.Wire)
	reply := c.reply
	c.reply = Message{} // drop the payload reference
	c.done.Reset()
	ep.callPool = append(ep.callPool, c)
	return reply
}

// Reply answers a request previously received via Recv (possibly after
// forwarding); the reply travels to the original caller's endpoint.
func (ep *Endpoint) Reply(req Message, size int, payload any) {
	ep.send(Message{
		From: ep.id, To: req.ReplyTo, Size: size, Payload: payload,
		ReqID: req.ReqID, IsReply: true, ReplyTo: ep.id,
	})
}

// Forward re-transmits a received request to another endpoint, keeping
// the original caller's ReqID/ReplyTo so the eventual Reply goes
// straight back to them.
func (ep *Endpoint) Forward(m Message, to int) {
	ep.send(Message{
		From: ep.id, To: to, Size: m.Size, Payload: m.Payload,
		ReqID: m.ReqID, ReplyTo: m.ReplyTo,
	})
}

// Recv blocks p until a request is available (replies never surface
// here) and returns it; ok is false once the endpoint is closed and
// drained, the server's signal to exit.
func (ep *Endpoint) Recv(p *sim.Proc) (Message, bool) {
	for ep.head >= len(ep.inbox) {
		if ep.closed {
			return Message{}, false
		}
		if ep.wake == nil {
			// Re-arm the pooled completion: parking is on the per-request
			// serve path, and Reset reuses the waiter slices, so a steady
			// request stream parks allocation-free.
			if ep.wakeBuf == nil {
				ep.wakeBuf = sim.NewCompletion()
			} else {
				ep.wakeBuf.Reset()
			}
			ep.wake = ep.wakeBuf
		}
		ep.wake.Wait(p)
	}
	m := ep.inbox[ep.head]
	ep.inbox[ep.head] = Message{} // drop payload reference
	ep.head++
	if ep.head == len(ep.inbox) {
		ep.inbox = ep.inbox[:0]
		ep.head = 0
	}
	return m, true
}

// Close marks the endpoint closed and wakes any parked receiver so its
// server loop can exit. In-flight deliveries still land (and are
// discarded unread if nobody Recvs them). Close on a parallel network
// must run on the endpoint's host LP (or between rounds).
func (ep *Endpoint) Close() {
	ep.closed = true
	if ep.wake != nil {
		w := ep.wake
		ep.wake = nil
		w.Fire(ep.eng)
	}
}
