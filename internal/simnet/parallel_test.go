package simnet

import (
	"testing"

	"metaupdate/internal/sim"
)

// lpGroup builds n+1 engines (endpoint id == LP index; LP 0 is the
// coordinator) wired into a parallel network.
func lpGroup(t *testing.T, n, workers int, p Params) (*sim.LPGroup, *Network) {
	t.Helper()
	lps := make([]*sim.Engine, n+1)
	for i := range lps {
		lps[i] = sim.NewEngine()
	}
	g, err := sim.NewLPGroup(lps, p.Normalized().Latency, workers)
	if err != nil {
		t.Fatalf("NewLPGroup: %v", err)
	}
	t.Cleanup(g.Close)
	return g, NewParallel(g, p)
}

// TestParallelMatchesSerial runs the same 4-client RPC storm on the serial
// engine and on LP groups at several worker counts, and requires identical
// traffic counters and an identical virtual close instant. This is the
// network-layer half of the byte-identity claim: message timelines are a
// pure function of the workload, not of how many engines host it.
func TestParallelMatchesSerial(t *testing.T) {
	type outcome struct {
		sent, bytes int64
		perClient   [4]int64
		closedAt    sim.Time
	}
	// build wires the workload against any network: 4 clients (endpoints
	// 1..4) each make 25 calls to a server on endpoint 9, which closes
	// after the 100th reply. Each proc is spawned on its endpoint's host
	// engine, so the same code runs serial and parallel.
	run := func(net *Network, exec sim.Exec) outcome {
		server := net.Endpoint(9)
		var closedAt sim.Time
		server.Host().Spawn("server", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				m, ok := server.Recv(p)
				if !ok {
					return
				}
				server.Reply(m, 32, nil)
			}
			closedAt = server.Host().Now()
			server.Close()
		})
		for i := 0; i < 4; i++ {
			ep := net.Endpoint(i + 1)
			i := i
			ep.Host().Spawn("client", func(p *sim.Proc) {
				for j := 0; j < 25; j++ {
					ep.Call(p, 9, 100+i*10+j, nil)
				}
			})
		}
		exec.Run()
		tot := net.Totals()
		out := outcome{sent: tot.Sent, bytes: tot.Bytes, closedAt: closedAt}
		for i := 0; i < 4; i++ {
			out.perClient[i] = net.Endpoint(i + 1).Sent()
		}
		return out
	}

	eng := sim.NewEngine()
	want := run(New(eng, DefaultParams()), eng)
	if want.sent != 200 {
		t.Fatalf("serial run sent %d messages, want 200", want.sent)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		g, net := lpGroup(t, 9, workers, DefaultParams())
		if got := run(net, g); got != want {
			t.Errorf("workers=%d: %+v, serial %+v", workers, got, want)
		}
	}
}

// TestParallelCrossLPLinkCost pins that the link-cost arithmetic is
// unchanged when sender and receiver live on different LPs: delivery at
// xmitStart + size/bandwidth + latency, FIFO per link.
func TestParallelCrossLPLinkCost(t *testing.T) {
	g, net := lpGroup(t, 2, 2, Params{Latency: 1 * sim.Millisecond, BytesPerSec: 1_000_000})
	src, dst := net.Endpoint(1), net.Endpoint(2)
	src.Host().Spawn("send", func(p *sim.Proc) {
		src.Send(2, 1000, "a")
		src.Send(2, 1000, "b")
	})
	dst.Host().Spawn("rcv", func(p *sim.Proc) {
		m1, _ := dst.Recv(p)
		if m1.Payload != "a" || m1.At != 2*sim.Millisecond {
			t.Errorf("first delivery %v at %v, want a at 2ms", m1.Payload, m1.At)
		}
		m2, _ := dst.Recv(p)
		if m2.Payload != "b" || m2.At != 3*sim.Millisecond || m2.Queued != 1*sim.Millisecond {
			t.Errorf("second delivery %v at %v queued %v, want b at 3ms/1ms", m2.Payload, m2.At, m2.Queued)
		}
	})
	g.Run()
	if got := net.Totals().Sent; got != 2 {
		t.Fatalf("sent %d, want 2", got)
	}
}

// TestAllocFreeParallelRPC: the steady-state cross-LP RPC path — pooled
// call frames, pooled message carriers crossing outboxes, inbox reuse,
// busy-map bookkeeping — allocates nothing once warm. Two disjoint
// client/server pairs keep two LPs active per window so the measurement
// covers the worker-pool path, and the whole cycle runs under
// AllocsPerRun's single-P regime exactly like the engine-level guards.
func TestAllocFreeParallelRPC(t *testing.T) {
	g, net := lpGroup(t, 4, 2, DefaultParams())
	for pair := 0; pair < 2; pair++ {
		server := net.Endpoint(1 + pair)
		client := net.Endpoint(3 + pair)
		server.Host().Spawn("server", func(p *sim.Proc) {
			for {
				m, ok := server.Recv(p)
				if !ok {
					return
				}
				server.Reply(m, 0, nil)
			}
		})
		sid := 1 + pair
		client.Host().Spawn("client", func(p *sim.Proc) {
			for {
				client.Call(p, sid, 0, nil)
			}
		})
	}
	window := 50 * sim.Time(net.Params().Latency)
	cycle := func() { g.RunUntil(g.NowMax() + window) }
	cycle() // warm: pools, inboxes, outboxes, heap slices
	cycle()
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("steady-state cross-LP RPC allocates %.1f objects per window batch, want 0", n)
	}
}
