// Package sim provides a deterministic discrete-event simulation engine.
//
// The whole reproduction runs in virtual time: simulated processes ("users",
// the syncer daemon) are goroutines driven in lock-step by an Engine, so at
// any instant at most one goroutine — the engine or exactly one process — is
// running. This makes every experiment bit-for-bit reproducible and immune
// to Go scheduler and GC noise, which is essential for the paper's
// buffer-cache-sensitive benchmarks.
//
// Time is an int64 count of virtual nanoseconds. Events scheduled for the
// same instant fire in schedule order (a strictly increasing sequence number
// breaks ties), so simulations are deterministic by construction provided
// callers do not let Go map iteration order influence scheduling decisions.
package sim

import (
	"container/heap"
	"fmt"
	"runtime/debug"
)

// Time is a virtual-time instant in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Milliseconds reports t as a floating-point millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the simulation executive: an event queue plus the lock-step
// machinery that hands control between the engine goroutine and process
// goroutines.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan yieldMsg
	live    int  // live (spawned, not finished) processes
	halted  bool // set once Run/RunUntil stops delivering events
	procIDs int  // per-engine Proc.ID source; engines must not share state
}

// Live reports the number of spawned processes that have not finished.
func (e *Engine) Live() int { return e.live }

type yieldMsg struct {
	done   bool        // process function returned
	panicV interface{} // non-nil: the process panicked; re-panic in Run
	stack  []byte
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan yieldMsg)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run in engine context at time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run in engine context d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Proc is a simulated process: a goroutine that runs only when the engine
// resumes it and always parks itself back before the engine continues.
type Proc struct {
	eng    *Engine
	Name   string
	ID     int
	resume chan struct{}
}

// Spawn starts a new simulated process executing fn. The process begins
// running at the current virtual time (as a scheduled event), so Spawn can
// be called before Run or from inside another process or callback.
//
// Proc IDs are allocated per engine, not per process-wide counter: many
// independent engines run concurrently under the harness experiment
// runner, and any package-level mutable state here would be both a data
// race and a determinism leak between simulations.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	e.procIDs++
	p := &Proc{eng: e, Name: name, ID: e.procIDs, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // wait for the engine to run our start event
		defer func() {
			if r := recover(); r != nil {
				// Forward the panic to the engine goroutine; swallowing it
				// here would deadlock Run on the yield channel.
				e.yield <- yieldMsg{done: true, panicV: r, stack: debug.Stack()}
				return
			}
			e.yield <- yieldMsg{done: true}
		}()
		fn(p)
	}()
	e.At(e.now, func() { e.runProc(p) })
	return p
}

// runProc resumes p and blocks until p parks again (or finishes).
func (e *Engine) runProc(p *Proc) {
	p.resume <- struct{}{}
	m := <-e.yield
	if m.done {
		e.live--
	}
	if m.panicV != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v\n%s", p.Name, m.panicV, m.stack))
	}
}

// Run executes events until the event queue is empty.
func (e *Engine) Run() { e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= limit, then stops, leaving the
// remaining queue intact. Processes that are parked simply never resume;
// their goroutines are garbage once the Engine is dropped (each is blocked
// on a private channel). This is how crash-injection tests freeze a system
// mid-flight.
func (e *Engine) RunUntil(limit Time) {
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.at > limit {
			e.halted = true
			return
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fn()
	}
}

// RunWhile executes events for as long as cond() holds and events remain.
// It lets callers run a workload to completion while daemon processes (the
// syncer) keep scheduling events forever.
func (e *Engine) RunWhile(cond func() bool) {
	for len(e.events) > 0 && cond() {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
}

// Pending reports the number of queued events (useful in tests).
func (e *Engine) Pending() int { return len(e.events) }

// block parks the calling process goroutine and hands control back to the
// engine. The caller must already have arranged for something to resume it.
func (p *Proc) block() {
	p.eng.yield <- yieldMsg{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	e := p.eng
	e.At(e.now+d, func() { e.runProc(p) })
	p.block()
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Completion is a one-shot event that processes can wait on and that either
// processes or engine-context callbacks can fire. Waiting after the
// completion has fired returns immediately. All waiters wake in FIFO order
// at the instant Fire is called.
type Completion struct {
	fired     bool
	FiredAt   Time
	waiters   []*Proc
	callbacks []func()
}

// OnFire registers fn to run (in the firing context, before waiters wake)
// when the completion fires; if it already fired, fn runs immediately.
func (c *Completion) OnFire(fn func()) {
	if c.fired {
		fn()
		return
	}
	c.callbacks = append(c.callbacks, fn)
}

// NewCompletion returns an unfired completion.
func NewCompletion() *Completion { return &Completion{} }

// Fired reports whether Fire has been called.
func (c *Completion) Fired() bool { return c.fired }

// Fire marks the completion done and wakes all waiters at the current time.
// Firing twice panics — it always indicates a bookkeeping bug upstream.
func (c *Completion) Fire(e *Engine) {
	if c.fired {
		panic("sim: Completion fired twice")
	}
	c.fired = true
	c.FiredAt = e.Now()
	for _, fn := range c.callbacks {
		fn()
	}
	c.callbacks = nil
	for _, p := range c.waiters {
		pp := p
		e.At(e.Now(), func() { e.runProc(pp) })
	}
	c.waiters = nil
}

// Wait blocks p until the completion fires (returns at once if it already
// has).
func (c *Completion) Wait(p *Proc) {
	if c.fired {
		return
	}
	c.waiters = append(c.waiters, p)
	p.block()
}

// Mutex is a virtual-time mutual-exclusion lock with FIFO handoff.
type Mutex struct {
	held    bool
	waiters []*Proc
}

// Lock acquires m, blocking p in virtual time if necessary.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	m.waiters = append(m.waiters, p)
	p.block()
	// Ownership was transferred to us by Unlock.
}

// TryLock acquires m if free and reports whether it did.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases m, handing ownership to the oldest waiter if any. It may
// be called from engine context (completion callbacks) as well as from
// processes, so it takes the engine rather than a proc.
func (m *Mutex) Unlock(e *Engine) {
	if !m.held {
		panic("sim: unlock of unlocked Mutex")
	}
	if len(m.waiters) == 0 {
		m.held = false
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	// Lock stays held; next now owns it.
	e.At(e.Now(), func() { e.runProc(next) })
}

// CPU models a single time-shared processor. Use charges virtual CPU time
// in round-robin quanta so concurrent processes interleave the way a 1994
// uniprocessor UNIX box would, instead of one long burst serializing
// everyone behind it.
type CPU struct {
	Quantum Duration // scheduling quantum; 0 means DefaultQuantum
	busy    bool
	waiters []*Proc
	// Used accumulates total CPU time consumed, for the paper's
	// "CPU time" columns.
	Used Duration
}

// DefaultQuantum approximates a 1994 UNIX scheduler time slice.
const DefaultQuantum = 10 * Millisecond

func (c *CPU) quantum() Duration {
	if c.Quantum > 0 {
		return c.Quantum
	}
	return DefaultQuantum
}

// Use consumes d of CPU time, competing with other processes.
func (c *CPU) Use(p *Proc, d Duration) {
	if d <= 0 {
		return
	}
	c.Used += d
	q := c.quantum()
	for d > 0 {
		c.acquire(p)
		slice := q
		if d < slice {
			slice = d
		}
		p.Sleep(slice)
		d -= slice
		c.release(p.eng)
	}
}

func (c *CPU) acquire(p *Proc) {
	if !c.busy {
		c.busy = true
		return
	}
	c.waiters = append(c.waiters, p)
	p.block()
}

func (c *CPU) release(e *Engine) {
	if len(c.waiters) == 0 {
		c.busy = false
		return
	}
	next := c.waiters[0]
	c.waiters = c.waiters[1:]
	e.At(e.Now(), func() { e.runProc(next) })
}

// WaitGroup lets one process wait for N completions (used to join the
// per-user benchmark processes).
type WaitGroup struct {
	n      int
	waiter *Proc
	eng    *Engine
}

// Add increments the outstanding count.
func (w *WaitGroup) Add(n int) { w.n += n }

// Done decrements the count, waking the waiter when it reaches zero.
func (w *WaitGroup) Done(e *Engine) {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if w.n == 0 && w.waiter != nil {
		p := w.waiter
		w.waiter = nil
		e.At(e.Now(), func() { e.runProc(p) })
	}
}

// Wait blocks p until the count reaches zero. Only one waiter is supported.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	if w.waiter != nil {
		panic("sim: WaitGroup supports a single waiter")
	}
	w.waiter = p
	p.block()
}
