// Package sim provides a deterministic discrete-event simulation engine.
//
// The whole reproduction runs in virtual time: simulated processes ("users",
// the syncer daemon) are goroutines driven in lock-step by an Engine, so at
// any instant at most one goroutine — the engine or exactly one process — is
// running. This makes every experiment bit-for-bit reproducible and immune
// to Go scheduler and GC noise, which is essential for the paper's
// buffer-cache-sensitive benchmarks.
//
// Time is an int64 count of virtual nanoseconds. Events scheduled for the
// same instant fire in schedule order (a strictly increasing sequence number
// breaks ties), so simulations are deterministic by construction provided
// callers do not let Go map iteration order influence scheduling decisions.
//
// The event queue is built for the hot path (DESIGN.md §9): events are small
// values in a flat 4-ary min-heap (no per-event allocation, no interface
// boxing), process wake-ups carry the *Proc directly instead of a closure,
// and events scheduled for the current instant — every wake-up — go through
// a FIFO fast queue that bypasses the heap entirely. Ordering is identical
// to a single global queue: the dispatcher always fires the queued event
// with the smallest (time, sequence) pair.
package sim

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
)

// Time is a virtual-time instant in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// maxTime is the largest schedulable instant; Run uses it as its limit.
const maxTime = Time(1<<62 - 1)

// Milliseconds reports t as a floating-point millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Delivery is a value-carrying event payload: the parallel-simulation
// message path schedules deliveries without allocating a closure per
// message (the payload object is pooled by its owner and carries its own
// context). Deliver runs in engine context, exactly like an At callback.
type Delivery interface {
	Deliver()
}

// event is a queued occurrence. Exactly one of proc, fn and del is set:
// proc wake-ups are the dominant case and carrying the pointer here is
// what lets every wake site schedule without allocating a closure.
type event struct {
	at  Time
	seq uint64
	// pri is the cross-engine priority class. Ordinary events have pri 0;
	// cross-LP message deliveries carry pri = (source LP, source sequence)
	// packed into one word, so two engines that receive the same message
	// set order them identically no matter which engine hosted the sender
	// — the deterministic per-LP seq-tiebreak the PDES scheduler relies
	// on. Within one instant all pri-0 events fire (in schedule order)
	// before any delivery, and deliveries fire in pri order.
	pri  uint64
	proc *Proc    // if non-nil: resume this process
	fn   func()   // else if non-nil: run this callback in engine context
	del  Delivery // otherwise: deliver this message payload
}

// less orders events by (at, pri, seq): virtual time first, delivery
// priority class second, schedule order as the final deterministic
// tie-break.
func (ev *event) less(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	if ev.pri != o.pri {
		return ev.pri < o.pri
	}
	return ev.seq < o.seq
}

// Engine is the simulation executive: an event queue plus the lock-step
// machinery that hands control between the engine goroutine and process
// goroutines.
type Engine struct {
	now Time
	seq uint64
	// heap is a flat 4-ary min-heap of value events ordered by (at, seq).
	// 4-ary beats binary here: sift paths are ~half as long and the four
	// children share a cache line's worth of adjacent slots.
	heap []event
	// fast is the same-instant FIFO: every queued entry has at == now, and
	// seq increases with index, so the head is always the queue's minimum.
	// Wake-ups (the dominant event kind) are pushed and popped here without
	// ever touching the heap.
	fast     []event
	fastHead int
	yield    chan yieldMsg
	live     int  // live (spawned, not finished) processes
	halted   bool // RunUntil hit its limit; scheduling now panics until the next run
	procIDs  int  // per-engine Proc.ID source; engines must not share state
	executed uint64

	// heapLow / fastLow are the shrink-hysteresis counters: consecutive
	// pops (drains) during which the backing array stayed under a quarter
	// full. A burst grows the arrays; without this they would retain the
	// peak capacity for the rest of a long run (DESIGN.md §14).
	heapLow int
	fastLow int

	// Label, when set before Spawn, is attached to every process
	// goroutine as the pprof label "lp" — CPU profiles of a parallel
	// cluster run then attribute samples to their logical process.
	Label string
}

// Executed reports the number of events dispatched since the engine was
// created (the events-per-second numerator in BENCH_4.json).
func (e *Engine) Executed() uint64 { return e.executed }

// Live reports the number of spawned processes that have not finished.
func (e *Engine) Live() int { return e.live }

// Halted reports whether the last RunUntil stopped at its limit (leaving
// events queued) rather than draining the queue. A halted engine rejects new
// events until Run/RunUntil/RunWhile is called again.
func (e *Engine) Halted() bool { return e.halted }

type yieldMsg struct {
	done   bool        // process function returned
	panicV interface{} // non-nil: the process panicked; re-panic in Run
	stack  []byte
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan yieldMsg)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// checkSchedulable panics on the two scheduling errors that would otherwise
// corrupt causality silently: scheduling in the past, and scheduling into a
// halted engine (after RunUntil froze the simulation, e.g. for a crash
// snapshot, nothing should be appending events).
func (e *Engine) checkSchedulable(t Time) {
	if e.halted {
		panic(fmt.Sprintf("sim: scheduling event at %v after engine halted", t))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
}

// push queues ev, routing same-instant events to the fast FIFO. The fast
// queue preserves global (at, pri, seq) order because all its entries share
// at == now and pri == 0 and are appended in seq order; pop compares its
// head against the heap top before firing. Prioritized deliveries always
// take the heap: a later-scheduled pri-0 wake at the same instant must
// still fire before them.
func (e *Engine) push(ev event) {
	if ev.at == e.now && ev.pri == 0 {
		e.fast = append(e.fast, ev)
		return
	}
	e.heapPush(ev)
}

// At schedules fn to run in engine context at time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	e.checkSchedulable(t)
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// AtPri schedules d's Deliver to run in engine context at time t, ordered
// after every ordinary (pri-0) event at that instant and against other
// deliveries by pri. This is the cross-LP message path: pri packs the
// sending LP and its per-sender sequence number, so delivery order at an
// instant is a pure function of the message set — identical whether the
// messages crossed between engines or looped back on one.
func (e *Engine) AtPri(t Time, pri uint64, d Delivery) {
	if pri == 0 {
		panic("sim: AtPri with zero priority (use At)")
	}
	e.checkSchedulable(t)
	e.seq++
	e.push(event{at: t, pri: pri, seq: e.seq, del: d})
}

// After schedules fn to run in engine context d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// scheduleProc schedules p to resume at time t. This is the allocation-free
// wake path: the event carries the proc pointer, no closure is created.
func (e *Engine) scheduleProc(t Time, p *Proc) {
	e.checkSchedulable(t)
	e.seq++
	e.push(event{at: t, seq: e.seq, proc: p})
}

// wake schedules p to resume at the current instant.
func (e *Engine) wake(p *Proc) { e.scheduleProc(e.now, p) }

// heapPush inserts ev into the 4-ary heap.
func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h[i].less(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// heapPop removes and returns the heap minimum.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop fn/proc references
	h = h[:n]
	e.heap = h
	i := 0
	for {
		min := i
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if h[c].less(&h[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.maybeShrinkHeap()
	return top
}

// shrinkMinCap is the smallest backing capacity the shrink hysteresis
// considers releasing; below it the retained memory is noise.
const shrinkMinCap = 128

// maybeShrinkHeap releases heap capacity after a burst: when the heap has
// stayed at or under a quarter of its backing capacity for cap(heap)
// consecutive pops, the backing array is reallocated at half capacity.
// The hysteresis window scales with the capacity being held, so a
// workload that oscillates around the threshold never thrashes, while a
// long steady-state run after a one-off burst returns the peak array to
// the allocator instead of retaining it forever.
func (e *Engine) maybeShrinkHeap() {
	c := cap(e.heap)
	if c < shrinkMinCap || len(e.heap)*4 > c {
		e.heapLow = 0
		return
	}
	e.heapLow++
	if e.heapLow < c {
		return
	}
	e.heapLow = 0
	ns := make([]event, len(e.heap), c/2)
	copy(ns, e.heap)
	e.heap = ns
}

// peek returns the (at, seq) of the next event to fire, if any.
func (e *Engine) peek() (Time, bool) {
	hasFast := e.fastHead < len(e.fast)
	hasHeap := len(e.heap) > 0
	switch {
	case hasFast && hasHeap:
		f, h := &e.fast[e.fastHead], &e.heap[0]
		if h.less(f) {
			return h.at, true
		}
		return f.at, true
	case hasFast:
		return e.fast[e.fastHead].at, true
	case hasHeap:
		return e.heap[0].at, true
	}
	return 0, false
}

// pop removes and returns the globally next event: the fast-queue head wins
// unless the heap top has the same timestamp and a smaller sequence number
// (an earlier-scheduled event at the same instant that went through the heap
// before the instant became "now").
func (e *Engine) pop() event {
	if e.fastHead < len(e.fast) {
		f := &e.fast[e.fastHead]
		if len(e.heap) == 0 || !e.heap[0].less(f) {
			ev := *f
			*f = event{} // drop fn/proc references
			e.fastHead++
			if e.fastHead == len(e.fast) {
				e.resetFast()
			}
			return ev
		}
	}
	return e.heapPop()
}

// resetFast rewinds a drained fast queue, applying the same shrink
// hysteresis as the heap: the drain length is the cycle's peak occupancy,
// so sustained quarter-full drains release the burst capacity.
func (e *Engine) resetFast() {
	c := cap(e.fast)
	if c >= shrinkMinCap && len(e.fast)*4 <= c {
		e.fastLow++
		if e.fastLow >= c {
			e.fastLow = 0
			e.fast = make([]event, 0, c/2)
			e.fastHead = 0
			return
		}
	} else {
		e.fastLow = 0
	}
	e.fast = e.fast[:0]
	e.fastHead = 0
}

// NextAt reports the timestamp of the next queued event, if any — the
// PDES coordinator's window-planning probe.
func (e *Engine) NextAt() (Time, bool) { return e.peek() }

// AdvanceTo moves an idle engine's clock forward to t without executing
// anything. The PDES scheduler uses it once, after per-LP setup, to align
// every logical process on a common epoch (the serial engine gets the
// same alignment for free: one clock). Advancing over a pending event or
// backwards panics — it would reorder causality.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before now %v", t, e.now))
	}
	if at, ok := e.peek(); ok && at < t {
		panic(fmt.Sprintf("sim: AdvanceTo %v over pending event at %v", t, at))
	}
	e.now = t
}

// Proc is a simulated process: a goroutine that runs only when the engine
// resumes it and always parks itself back before the engine continues.
type Proc struct {
	eng    *Engine
	Name   string
	ID     int
	resume chan struct{}

	// Obs anchors per-process observability state: the operation span the
	// process is currently executing, owned by internal/obs. The engine
	// never reads it — it exists on Proc so that every layer that already
	// has the *Proc in hand (file system, cache, driver waits) can find the
	// active span without a side table, and so that daemon processes (the
	// syncer) naturally carry none. It is nil whenever tracing is disabled
	// or no operation is in flight, and observers must never let it
	// influence scheduling: spans record virtual time, they do not spend it.
	Obs any
}

// Spawn starts a new simulated process executing fn. The process begins
// running at the current virtual time (as a scheduled event), so Spawn can
// be called before Run or from inside another process or callback.
//
// Proc IDs are allocated per engine, not per process-wide counter: many
// independent engines run concurrently under the harness experiment
// runner, and any package-level mutable state here would be both a data
// race and a determinism leak between simulations.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	e.procIDs++
	p := &Proc{eng: e, Name: name, ID: e.procIDs, resume: make(chan struct{})}
	e.live++
	label := e.Label
	go func() {
		if label != "" {
			// Label the goroutine for CPU profiles: samples of a parallel
			// cluster run attribute to their logical process.
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("lp", label)))
		}
		<-p.resume // wait for the engine to run our start event
		defer func() {
			if r := recover(); r != nil {
				// Forward the panic to the engine goroutine; swallowing it
				// here would deadlock Run on the yield channel.
				e.yield <- yieldMsg{done: true, panicV: r, stack: debug.Stack()}
				return
			}
			e.yield <- yieldMsg{done: true}
		}()
		fn(p)
	}()
	e.wake(p)
	return p
}

// runProc resumes p and blocks until p parks again (or finishes).
func (e *Engine) runProc(p *Proc) {
	p.resume <- struct{}{}
	m := <-e.yield
	if m.done {
		e.live--
	}
	if m.panicV != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v\n%s", p.Name, m.panicV, m.stack))
	}
}

// Run executes events until the event queue is empty.
func (e *Engine) Run() { e.RunUntil(maxTime) }

// RunUntil executes events with timestamps <= limit, then stops, leaving the
// remaining queue intact. Processes that are parked simply never resume;
// their goroutines are garbage once the Engine is dropped (each is blocked
// on a private channel). This is how crash-injection tests freeze a system
// mid-flight. Stopping at the limit marks the engine halted (see Halted);
// calling Run/RunUntil/RunWhile again clears the mark and resumes delivery.
func (e *Engine) RunUntil(limit Time) { e.run(limit, nil) }

// RunWhile executes events for as long as cond() holds and events remain.
// It lets callers run a workload to completion while daemon processes (the
// syncer) keep scheduling events forever.
func (e *Engine) RunWhile(cond func() bool) { e.run(maxTime, cond) }

// run is the single dispatch loop behind Run, RunUntil and RunWhile.
func (e *Engine) run(limit Time, cond func() bool) {
	e.halted = false
	for cond == nil || cond() {
		at, ok := e.peek()
		if !ok {
			return // queue drained
		}
		if at > limit {
			e.halted = true
			return
		}
		e.dispatch(e.pop())
	}
}

// dispatch fires one popped event.
func (e *Engine) dispatch(ev event) {
	e.now = ev.at
	e.executed++
	switch {
	case ev.proc != nil:
		e.runProc(ev.proc)
	case ev.fn != nil:
		ev.fn()
	default:
		ev.del.Deliver()
	}
}

// runWindow executes events with timestamps strictly below horizon — one
// bounded PDES window — and returns whether cond (which, when non-nil, is
// checked before every event, exactly like RunWhile) stopped it early.
// Unlike RunUntil it never marks the engine halted: between windows the
// coordinator injects cross-LP deliveries and host code spawns processes,
// both of which a halted engine would reject.
func (e *Engine) runWindow(horizon Time, cond func() bool) bool {
	for {
		if cond != nil && !cond() {
			return true
		}
		at, ok := e.peek()
		if !ok || at >= horizon {
			return false
		}
		e.dispatch(e.pop())
	}
}

// Pending reports the number of queued events (useful in tests).
func (e *Engine) Pending() int { return len(e.heap) + len(e.fast) - e.fastHead }

// Exec is the executive surface shared by the serial Engine and the
// parallel LPGroup: hosts that only spawn processes and run the
// simulation to a condition can accept either. LPGroup's Spawn targets
// its coordinator LP (LP 0), and its RunWhile condition may read only
// state owned by that LP — see lp.go.
type Exec interface {
	Spawn(name string, fn func(p *Proc)) *Proc
	Run()
	RunUntil(limit Time)
	RunWhile(cond func() bool)
	Now() Time
}

var (
	_ Exec = (*Engine)(nil)
	_ Exec = (*LPGroup)(nil)
)

// block parks the calling process goroutine and hands control back to the
// engine. The caller must already have arranged for something to resume it.
func (p *Proc) block() {
	p.eng.yield <- yieldMsg{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	e := p.eng
	e.scheduleProc(e.now+d, p)
	p.block()
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Completion is a one-shot event that processes can wait on and that either
// processes or engine-context callbacks can fire. Waiting after the
// completion has fired returns immediately. All waiters wake in FIFO order
// at the instant Fire is called.
type Completion struct {
	fired     bool
	FiredAt   Time
	waiters   []*Proc
	callbacks []func()
}

// OnFire registers fn to run (in the firing context, before waiters wake)
// when the completion fires; if it already fired, fn runs immediately.
func (c *Completion) OnFire(fn func()) {
	if c.fired {
		fn()
		return
	}
	c.callbacks = append(c.callbacks, fn)
}

// NewCompletion returns an unfired completion.
func NewCompletion() *Completion { return &Completion{} }

// Fired reports whether Fire has been called.
func (c *Completion) Fired() bool { return c.fired }

// Fire marks the completion done and wakes all waiters at the current time.
// Firing twice panics — it always indicates a bookkeeping bug upstream.
// The waiter and callback slices keep their capacity (entries are nilled
// out) so a Reset completion reuses them allocation-free.
func (c *Completion) Fire(e *Engine) {
	if c.fired {
		panic("sim: Completion fired twice")
	}
	c.fired = true
	c.FiredAt = e.Now()
	for i, fn := range c.callbacks {
		c.callbacks[i] = nil
		fn()
	}
	c.callbacks = c.callbacks[:0]
	for i, p := range c.waiters {
		c.waiters[i] = nil
		e.wake(p)
	}
	c.waiters = c.waiters[:0]
}

// Reset returns a fired completion to the unfired state so its owner can
// reuse it (the device driver's request pool does). Resetting an unfired
// completion panics: parked waiters or registered callbacks would be
// silently dropped.
func (c *Completion) Reset() {
	if !c.fired {
		panic("sim: Reset of unfired Completion")
	}
	c.fired = false
	c.FiredAt = 0
}

// Wait blocks p until the completion fires (returns at once if it already
// has).
func (c *Completion) Wait(p *Proc) {
	if c.fired {
		return
	}
	c.waiters = append(c.waiters, p)
	p.block()
}

// dequeue removes and returns the head of a FIFO waiter list, keeping the
// slice's capacity (the lists are tiny — a handful of simulated users — so
// the copy is cheaper than letting append reallocate forever).
func dequeue(waiters *[]*Proc) *Proc {
	w := *waiters
	head := w[0]
	n := copy(w, w[1:])
	w[n] = nil
	*waiters = w[:n]
	return head
}

// Mutex is a virtual-time mutual-exclusion lock with FIFO handoff.
type Mutex struct {
	held    bool
	waiters []*Proc
}

// Lock acquires m, blocking p in virtual time if necessary.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	m.waiters = append(m.waiters, p)
	p.block()
	// Ownership was transferred to us by Unlock.
}

// TryLock acquires m if free and reports whether it did.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases m, handing ownership to the oldest waiter if any. It may
// be called from engine context (completion callbacks) as well as from
// processes, so it takes the engine rather than a proc.
func (m *Mutex) Unlock(e *Engine) {
	if !m.held {
		panic("sim: unlock of unlocked Mutex")
	}
	if len(m.waiters) == 0 {
		m.held = false
		return
	}
	// Lock stays held; the dequeued waiter now owns it.
	e.wake(dequeue(&m.waiters))
}

// CPU models a single time-shared processor. Use charges virtual CPU time
// in round-robin quanta so concurrent processes interleave the way a 1994
// uniprocessor UNIX box would, instead of one long burst serializing
// everyone behind it.
type CPU struct {
	Quantum Duration // scheduling quantum; 0 means DefaultQuantum
	busy    bool
	waiters []*Proc
	// Used accumulates total CPU time consumed, for the paper's
	// "CPU time" columns.
	Used Duration
}

// DefaultQuantum approximates a 1994 UNIX scheduler time slice.
const DefaultQuantum = 10 * Millisecond

func (c *CPU) quantum() Duration {
	if c.Quantum > 0 {
		return c.Quantum
	}
	return DefaultQuantum
}

// Use consumes d of CPU time, competing with other processes.
func (c *CPU) Use(p *Proc, d Duration) {
	if d <= 0 {
		return
	}
	c.Used += d
	q := c.quantum()
	for d > 0 {
		c.acquire(p)
		slice := q
		if d < slice {
			slice = d
		}
		p.Sleep(slice)
		d -= slice
		c.release(p.eng)
	}
}

func (c *CPU) acquire(p *Proc) {
	if !c.busy {
		c.busy = true
		return
	}
	c.waiters = append(c.waiters, p)
	p.block()
}

func (c *CPU) release(e *Engine) {
	if len(c.waiters) == 0 {
		c.busy = false
		return
	}
	e.wake(dequeue(&c.waiters))
}

// WaitGroup lets one process wait for N completions (used to join the
// per-user benchmark processes).
type WaitGroup struct {
	n      int
	waiter *Proc
	eng    *Engine
}

// Add increments the outstanding count.
func (w *WaitGroup) Add(n int) { w.n += n }

// Done decrements the count, waking the waiter when it reaches zero.
func (w *WaitGroup) Done(e *Engine) {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if w.n == 0 && w.waiter != nil {
		p := w.waiter
		w.waiter = nil
		e.wake(p)
	}
}

// Wait blocks p until the count reaches zero. Only one waiter is supported.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	if w.waiter != nil {
		panic("sim: WaitGroup supports a single waiter")
	}
	w.waiter = p
	p.block()
}
