package sim

import "testing"

// TestHeapCapacityShrinksAfterBurst pins the event-heap shrink hysteresis:
// a one-off scheduling burst must not pin its peak backing array forever.
// After the burst drains, a steady one-event trickle walks the capacity
// down — first below half the peak, eventually to the shrinkMinCap floor —
// and once at the floor the trickle is allocation-free.
func TestHeapCapacityShrinksAfterBurst(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	const burst = 16 * shrinkMinCap
	for i := 1; i <= burst; i++ {
		e.At(Time(i), nop)
	}
	peak := cap(e.heap)
	if peak < burst {
		t.Fatalf("burst of %d events left heap capacity %d", burst, peak)
	}
	e.Run()
	trickle := func() { e.At(e.Now()+1, nop); e.Run() }
	for i := 0; cap(e.heap) > peak/2 && i < 4*peak; i++ {
		trickle()
	}
	if c := cap(e.heap); c > peak/2 {
		t.Fatalf("heap capacity %d retained after burst peak %d; hysteresis shrink never fired", c, peak)
	}
	for i := 0; cap(e.heap) >= shrinkMinCap && i < 16*peak; i++ {
		trickle()
	}
	if c := cap(e.heap); c >= shrinkMinCap {
		t.Fatalf("heap capacity %d never reached the %d floor", c, shrinkMinCap)
	}
	if n := testing.AllocsPerRun(200, trickle); n != 0 {
		t.Fatalf("steady-state trickle allocates %.1f objects per event, want 0", n)
	}
}

// TestFastQueueCapacityShrinksAfterBurst is the same property for the
// same-instant FIFO: resetFast applies the shrink hysteresis on drain.
func TestFastQueueCapacityShrinksAfterBurst(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	const burst = 16 * shrinkMinCap
	for i := 0; i < burst; i++ {
		e.At(0, nop) // at == now, pri 0: fast-queue path
	}
	peak := cap(e.fast)
	if peak < burst {
		t.Fatalf("burst of %d events left fast capacity %d", burst, peak)
	}
	e.Run()
	trickle := func() { e.At(e.Now(), nop); e.Run() }
	for i := 0; cap(e.fast) > peak/2 && i < 4*peak; i++ {
		trickle()
	}
	if c := cap(e.fast); c > peak/2 {
		t.Fatalf("fast-queue capacity %d retained after burst peak %d; hysteresis shrink never fired", c, peak)
	}
	for i := 0; cap(e.fast) >= shrinkMinCap && i < 16*peak; i++ {
		trickle()
	}
	if c := cap(e.fast); c >= shrinkMinCap {
		t.Fatalf("fast-queue capacity %d never reached the %d floor", c, shrinkMinCap)
	}
	if n := testing.AllocsPerRun(200, trickle); n != 0 {
		t.Fatalf("steady-state trickle allocates %.1f objects per event, want 0", n)
	}
}

// TestHeapShrinkHysteresisHolds: a workload oscillating around the
// quarter-full threshold must not thrash — any dip shorter than the
// hysteresis window keeps the capacity.
func TestHeapShrinkHysteresisHolds(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	const burst = 4 * shrinkMinCap
	for i := 1; i <= burst; i++ {
		e.At(Time(i), nop)
	}
	peak := cap(e.heap)
	e.Run()
	// Alternate short quarter-full dips with refills: each refill resets
	// the low-water counter, so capacity must hold at the peak.
	for cycle := 0; cycle < 50; cycle++ {
		for i := 1; i <= peak/2; i++ {
			e.At(e.Now()+Time(i), nop)
		}
		e.Run()
	}
	if c := cap(e.heap); c < peak {
		t.Fatalf("heap capacity shrank %d -> %d under an oscillating load; hysteresis should hold it", peak, c)
	}
}
