package sim

import (
	"testing"
)

// TestSameInstantGlobalOrderProperty is the fast-queue ordering property
// test: no matter how events are interleaved between the heap (scheduled
// for a future instant) and the same-instant fast queue (scheduled at now,
// possibly from inside other events), the observed firing order is exactly
// ascending (at, seq) — i.e. indistinguishable from a single global queue.
func TestSameInstantGlobalOrderProperty(t *testing.T) {
	e := NewEngine()
	type stamp struct {
		at  Time
		seq int // order of scheduling, assigned by the test
	}
	var fired []stamp
	scheduled := 0

	// A deterministic LCG drives the interleaving decisions so the test is
	// reproducible without seeding from wall clock.
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}

	// Each fired event may schedule more events: some at the current
	// instant (fast queue), some at the instant the heap top occupies, some
	// strictly later. Depth-bound the recursion via a budget.
	budget := 2000
	var schedule func(at Time)
	schedule = func(at Time) {
		if budget <= 0 {
			return
		}
		budget--
		scheduled++
		s := stamp{at: at, seq: scheduled}
		e.At(at, func() {
			fired = append(fired, s)
			for k := next(3); k > 0; k-- {
				schedule(e.Now() + Time(next(4))) // offset 0 → fast queue
			}
		})
	}
	for i := 0; i < 20; i++ {
		schedule(Time(next(10)))
	}
	e.Run()

	if len(fired) < 100 {
		t.Fatalf("property test fired only %d events", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("event %d (at=%v seq=%d) fired before event %d (at=%v seq=%d)",
				i-1, a.at, a.seq, i, b.at, b.seq)
		}
	}
}

// TestHaltedEngineRejectsScheduling: after RunUntil stops at its limit the
// engine is halted and At/Spawn panic instead of silently queueing events
// into a frozen simulation; a subsequent run clears the halt.
func TestHaltedEngineRejectsScheduling(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.At(30, func() {})
	e.RunUntil(20)
	if !e.Halted() {
		t.Fatal("engine not halted after RunUntil stopped at limit")
	}

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on halted engine did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("At", func() { e.At(e.Now()+1, func() {}) })
	mustPanic("Spawn", func() { e.Spawn("late", func(p *Proc) {}) })

	e.Run() // clears the halt and drains the queue
	if e.Halted() {
		t.Fatal("engine still halted after Run drained the queue")
	}
	e.At(e.Now()+1, func() {}) // must not panic now
	e.Run()
}

// TestRunToCompletionNotHalted: draining the queue (rather than hitting the
// limit) leaves the engine schedulable.
func TestRunToCompletionNotHalted(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.RunUntil(100)
	if e.Halted() {
		t.Fatal("engine halted even though the queue drained before the limit")
	}
}

// TestCompletionOnFireAfterFire: a callback registered after Fire runs
// immediately, in registration context.
func TestCompletionOnFireAfterFire(t *testing.T) {
	e := NewEngine()
	c := NewCompletion()
	e.At(5, func() { c.Fire(e) })
	e.Run()
	ran := false
	c.OnFire(func() { ran = true })
	if !ran {
		t.Fatal("OnFire after Fire did not run immediately")
	}
}

// TestCompletionReset: Reset returns a fired completion to service, reusing
// it end to end; resetting an unfired completion panics.
func TestCompletionReset(t *testing.T) {
	e := NewEngine()
	c := NewCompletion()
	woke := 0
	e.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		woke++
		c.Reset()
		if c.Fired() {
			t.Error("completion still fired after Reset")
		}
		c.Wait(p)
		woke++
	})
	e.At(10, func() { c.Fire(e) })
	e.At(20, func() { c.Fire(e) })
	e.Run()
	if woke != 2 {
		t.Fatalf("waiter woke %d times across Reset, want 2", woke)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Reset of unfired completion did not panic")
		}
	}()
	NewCompletion().Reset()
}

// TestMutexTryLockVsQueuedWaiters: when Unlock hands the mutex to a queued
// waiter, ownership transfers at the instant of Unlock — a TryLock between
// the handoff and the waiter actually resuming must fail.
func TestMutexTryLockVsQueuedWaiters(t *testing.T) {
	e := NewEngine()
	var m Mutex
	var got []string
	e.Spawn("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(10)
		m.Unlock(e)
		// The mutex is now owned by "waiter" even though it has not
		// resumed yet (its wake event is queued behind us).
		if m.TryLock() {
			t.Error("TryLock succeeded while ownership was queued for a waiter")
		}
		got = append(got, "holder-unlocked")
	})
	e.Spawn("waiter", func(p *Proc) {
		m.Lock(p)
		got = append(got, "waiter-locked")
		m.Unlock(e)
	})
	e.Run()
	if len(got) != 2 || got[0] != "holder-unlocked" || got[1] != "waiter-locked" {
		t.Fatalf("order = %v", got)
	}
	if !m.TryLock() {
		t.Fatal("TryLock failed on a free mutex")
	}
	m.Unlock(e)
}

// TestWaitGroupDoubleWaiterPanics: the single-waiter contract is enforced.
func TestWaitGroupDoubleWaiterPanics(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	wg.Add(1)
	e.Spawn("first", func(p *Proc) { wg.Wait(p) })
	e.Spawn("second", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("second Wait did not panic")
			}
			wg.Done(e) // release the first waiter so the engine drains
		}()
		wg.Wait(p)
	})
	e.Run()
}
