package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatalf("unit constants wrong: %d %d %d", Second, Millisecond, Microsecond)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (2500 * Microsecond).Milliseconds(); got != 2.5 {
		t.Errorf("Milliseconds() = %v, want 2.5", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("final time = %v, want 30", e.Now())
	}
}

func TestEventTieBreakBySchedule(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 42*Millisecond {
		t.Errorf("woke at %v, want 42ms", wake)
	}
	if e.Live() != 0 {
		t.Errorf("Live() = %d after Run, want 0", e.Live())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(10 * Millisecond)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("nondeterministic length")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("nondeterministic interleaving: %v vs %v", got, first)
				}
			}
		}
	}
	// Same wake times resolve in spawn order.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i, w := range want {
		if first[i] != w {
			t.Fatalf("interleaving %v, want %v", first, want)
		}
	}
}

func TestRunUntilStopsAndPreservesQueue(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("continuing after RunUntil fired %v", fired)
	}
}

func TestCompletion(t *testing.T) {
	e := NewEngine()
	c := NewCompletion()
	var woke [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("waiter", func(p *Proc) {
			c.Wait(p)
			woke[i] = p.Now()
		})
	}
	e.At(5*Millisecond, func() { c.Fire(e) })
	e.Run()
	for i, w := range woke {
		if w != 5*Millisecond {
			t.Errorf("waiter %d woke at %v, want 5ms", i, w)
		}
	}
	if c.FiredAt != 5*Millisecond {
		t.Errorf("FiredAt = %v", c.FiredAt)
	}
}

func TestCompletionWaitAfterFire(t *testing.T) {
	e := NewEngine()
	c := NewCompletion()
	c.Fire(e)
	done := false
	e.Spawn("late", func(p *Proc) {
		c.Wait(p) // must not block
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("Wait after Fire blocked forever")
	}
}

func TestCompletionDoubleFirePanics(t *testing.T) {
	e := NewEngine()
	c := NewCompletion()
	c.Fire(e)
	defer func() {
		if recover() == nil {
			t.Error("second Fire did not panic")
		}
	}()
	c.Fire(e)
}

func TestMutexFIFO(t *testing.T) {
	e := NewEngine()
	var m Mutex
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("locker", func(p *Proc) {
			p.Sleep(Time(i) * Millisecond) // stagger arrival: 0, 1, 2
			m.Lock(p)
			order = append(order, i)
			p.Sleep(10 * Millisecond)
			m.Unlock(e)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("mutex handoff not FIFO: %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Errorf("critical sections overlapped: end time %v, want 30ms", e.Now())
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEngine()
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock(e)
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
}

func TestUnlockUnheldPanics(t *testing.T) {
	e := NewEngine()
	var m Mutex
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unheld mutex did not panic")
		}
	}()
	m.Unlock(e)
}

func TestCPUSharing(t *testing.T) {
	// Two processes each needing 100ms of CPU on one processor must take
	// 200ms of virtual time in total, finishing near each other
	// (round-robin), not back to back.
	e := NewEngine()
	cpu := &CPU{Quantum: 10 * Millisecond}
	var fin [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("worker", func(p *Proc) {
			cpu.Use(p, 100*Millisecond)
			fin[i] = p.Now()
		})
	}
	e.Run()
	if e.Now() != 200*Millisecond {
		t.Fatalf("two 100ms jobs on one CPU ended at %v, want 200ms", e.Now())
	}
	gap := fin[1] - fin[0]
	if gap < 0 {
		gap = -gap
	}
	if gap > 20*Millisecond {
		t.Errorf("round-robin finish gap %v too large (fin=%v)", gap, fin)
	}
	if cpu.Used != 200*Millisecond {
		t.Errorf("CPU.Used = %v, want 200ms", cpu.Used)
	}
}

func TestCPUZeroUse(t *testing.T) {
	e := NewEngine()
	cpu := &CPU{}
	e.Spawn("w", func(p *Proc) { cpu.Use(p, 0) })
	e.Run()
	if e.Now() != 0 || cpu.Used != 0 {
		t.Errorf("zero-duration Use advanced time to %v", e.Now())
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(Time(i) * Millisecond)
			wg.Done(e)
		})
	}
	var joined Time
	e.Spawn("join", func(p *Proc) {
		wg.Wait(p)
		joined = p.Now()
	})
	e.Run()
	if joined != 3*Millisecond {
		t.Errorf("joined at %v, want 3ms", joined)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	ok := false
	e.Spawn("join", func(p *Proc) {
		wg.Wait(p)
		ok = true
	})
	e.Run()
	if !ok {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

// Property: for any batch of sleep durations, each process wakes exactly at
// its requested instant, and total simulated time equals the max duration.
func TestSleepPropertyQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%8) + 1
		e := NewEngine()
		durs := make([]Time, count)
		wakes := make([]Time, count)
		for i := 0; i < count; i++ {
			durs[i] = Time(rng.Int63n(int64(Second)))
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Sleep(durs[i])
				wakes[i] = p.Now()
			})
		}
		e.Run()
		var max Time
		for i := 0; i < count; i++ {
			if wakes[i] != durs[i] {
				return false
			}
			if durs[i] > max {
				max = durs[i]
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CPU.Used always equals the sum of requested bursts, and elapsed
// virtual time equals that sum when a single CPU serves all processes.
func TestCPUConservationQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%6) + 1
		e := NewEngine()
		cpu := &CPU{Quantum: Millisecond}
		var want Time
		for i := 0; i < count; i++ {
			d := Time(rng.Int63n(int64(50 * Millisecond)))
			want += d
			e.Spawn("p", func(p *Proc) { cpu.Use(p, d) })
		}
		e.Run()
		return cpu.Used == want && e.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childDone Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Millisecond)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(Millisecond)
			childDone = c.Now()
		})
		p.Sleep(5 * Millisecond)
	})
	e.Run()
	if childDone != 2*Millisecond {
		t.Errorf("child finished at %v, want 2ms", childDone)
	}
}

func TestCallbackSpawnsAndFires(t *testing.T) {
	// Engine-context callbacks must be able to fire completions that wake
	// processes (this is the disk-completion path).
	e := NewEngine()
	c := NewCompletion()
	var woke Time
	e.Spawn("io", func(p *Proc) {
		c.Wait(p)
		woke = p.Now()
	})
	e.At(7*Millisecond, func() { c.Fire(e) })
	e.Run()
	if woke != 7*Millisecond {
		t.Errorf("woke at %v, want 7ms", woke)
	}
}

func TestRunWhileStopsOnCondition(t *testing.T) {
	e := NewEngine()
	count := 0
	// A self-rescheduling event (like the syncer daemon) would run forever
	// under Run; RunWhile must stop when the condition goes false.
	var tick func()
	tick = func() {
		count++
		e.After(Millisecond, tick)
	}
	e.After(Millisecond, tick)
	e.RunWhile(func() bool { return count < 10 })
	if count != 10 {
		t.Fatalf("ran %d ticks, want 10", count)
	}
	if e.Pending() == 0 {
		t.Fatal("pending event chain was dropped")
	}
}

func TestOnFireBeforeWaiters(t *testing.T) {
	e := NewEngine()
	c := NewCompletion()
	var order []string
	c.OnFire(func() { order = append(order, "callback") })
	e.Spawn("w", func(p *Proc) {
		c.Wait(p)
		order = append(order, "waiter")
	})
	e.At(Millisecond, func() { c.Fire(e) })
	e.Run()
	if len(order) != 2 || order[0] != "callback" || order[1] != "waiter" {
		t.Fatalf("order %v, want callback before waiter", order)
	}
}

func TestOnFireAfterFiredRunsImmediately(t *testing.T) {
	e := NewEngine()
	c := NewCompletion()
	c.Fire(e)
	ran := false
	c.OnFire(func() { ran = true })
	if !ran {
		t.Fatal("OnFire on fired completion did not run immediately")
	}
}

func TestProcPanicPropagatesWithContext(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomber", func(p *Proc) {
		p.Sleep(Millisecond)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "bomber") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic lacks context: %v", r)
		}
	}()
	e.Run()
}
