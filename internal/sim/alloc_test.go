package sim

import "testing"

// Alloc-regression guards for the engine hot path: the steady-state
// schedule/fire/wake cycle must allocate nothing. Each guard warms its rig
// up first so one-time slice growth (heap, fast queue, waiter lists) is
// excluded, then asserts that testing.AllocsPerRun observes zero mallocs.
// CI runs these under both the standard and race jobs.

// TestAllocFreeAtRunCycle: At with a pre-built callback plus the dispatch
// loop allocates nothing once the queues reach capacity.
func TestAllocFreeAtRunCycle(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	cycle := func() {
		e.At(e.Now()+1, fn)
		e.RunUntil(e.Now() + 1)
	}
	cycle() // warm-up: grow the heap slice
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("At/Run cycle allocates %.1f objects per event, want 0", n)
	}
}

// TestAllocFreeSleepWake: a daemon that sleeps in a loop exercises the
// closure-free proc wake path (heap push with proc pointer, pop, two
// lock-step channel handoffs). Steady state must be allocation-free.
func TestAllocFreeSleepWake(t *testing.T) {
	e := NewEngine()
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(1)
		}
	})
	advance := func() { e.RunUntil(e.Now() + 1) }
	advance() // warm-up: start event, first sleep
	if n := testing.AllocsPerRun(200, advance); n != 0 {
		t.Fatalf("Sleep/wake round-trip allocates %.1f objects, want 0", n)
	}
}

// TestAllocFreeContendedWake: two processes ping-ponging over a contended
// CPU cover acquire/release, the waiter dequeue, and the same-instant fast
// queue. Steady state must be allocation-free.
func TestAllocFreeContendedWake(t *testing.T) {
	e := NewEngine()
	var cpu CPU
	for i := 0; i < 2; i++ {
		e.Spawn("worker", func(p *Proc) {
			for {
				cpu.Use(p, DefaultQuantum)
			}
		})
	}
	advance := func() { e.RunUntil(e.Now() + DefaultQuantum) }
	advance() // warm-up: start events, waiter list growth
	if n := testing.AllocsPerRun(100, advance); n != 0 {
		t.Fatalf("contended CPU wake cycle allocates %.1f objects, want 0", n)
	}
}

// TestAllocFreeCompletionFire: firing a Reset-reused completion with one
// parked waiter allocates nothing (waiter slice capacity is retained across
// Fire/Reset).
func TestAllocFreeCompletionFire(t *testing.T) {
	e := NewEngine()
	c := NewCompletion()
	e.Spawn("waiter", func(p *Proc) {
		for {
			c.Wait(p)
			c.Reset()
		}
	})
	fireFn := func() { c.Fire(e) }
	cycle := func() {
		e.At(e.Now()+1, fireFn)
		e.RunUntil(e.Now() + 1)
	}
	cycle() // warm-up with the reused callback
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("Completion Fire/Reset cycle allocates %.1f objects, want 0", n)
	}
}
