package sim

import (
	"sync"
	"testing"
)

// hop is a reusable cross-LP Delivery that logs its execution and chains
// the next hop through the group's outboxes — the minimal stand-in for
// the network layer's pooled message carriers. A ring token keeps at most
// one LP active per round, so these tests exercise the inline
// (coordinator-goroutine) window path and appending to the shared log
// needs no lock.
type hop struct {
	g     *LPGroup
	lp    int // LP this delivery executes on
	delay Duration
	left  int
	pri   uint64
	log   *[]hopLog
}

type hopLog struct {
	at Time
	lp int
}

func (h *hop) Deliver() {
	e := h.g.LP(h.lp)
	*h.log = append(*h.log, hopLog{at: e.Now(), lp: h.lp})
	if h.left == 0 {
		return
	}
	// Reuse the hop object, pooled-carrier style: mutate and forward.
	src := h.lp
	h.lp = (h.lp + 1) % len(h.g.lps)
	h.left--
	h.pri++
	h.g.Outbox(src).Send(h.lp, e.Now()+Time(h.delay), h.pri, h)
}

func newRing(t *testing.T, n, workers int, lookahead Duration) *LPGroup {
	t.Helper()
	lps := make([]*Engine, n)
	for i := range lps {
		lps[i] = NewEngine()
	}
	g, err := NewLPGroup(lps, lookahead, workers)
	if err != nil {
		t.Fatalf("NewLPGroup: %v", err)
	}
	t.Cleanup(g.Close)
	return g
}

// TestLPGroupZeroLookaheadRejected pins the classic conservative-sync
// deadlock guard: a group with zero (or negative) lookahead must be
// refused with an explanation, not hang.
func TestLPGroupZeroLookaheadRejected(t *testing.T) {
	lps := []*Engine{NewEngine(), NewEngine()}
	for _, la := range []Duration{0, -5} {
		g, err := NewLPGroup(lps, la, 2)
		if err == nil {
			g.Close()
			t.Fatalf("lookahead %d accepted, want error", la)
		}
	}
	if _, err := NewLPGroup(nil, Millisecond, 2); err == nil {
		t.Fatal("empty LP set accepted, want error")
	}
}

// TestLPGroupRingTimeline drives one token around a 4-LP ring and checks
// the executed timeline is exactly the analytic one at every worker count.
func TestLPGroupRingTimeline(t *testing.T) {
	const n, hops = 4, 21
	const L = Millisecond
	for _, workers := range []int{1, 2, 4, 8} {
		g := newRing(t, n, workers, L)
		var log []hopLog
		first := &hop{g: g, lp: 0, delay: L, left: hops - 1, pri: 1, log: &log}
		g.LP(0).AtPri(Time(L), first.pri, first)
		g.Run()
		if len(log) != hops {
			t.Fatalf("workers=%d: %d hops executed, want %d", workers, len(log), hops)
		}
		for i, e := range log {
			wantAt := Time(i+1) * Time(L)
			if e.at != wantAt || e.lp != i%n {
				t.Fatalf("workers=%d: hop %d executed (at=%v, lp=%d), want (%v, %d)",
					workers, i, e.at, e.lp, wantAt, i%n)
			}
		}
		if got := g.Executed(); got != hops {
			t.Errorf("workers=%d: Executed() = %d, want %d", workers, got, hops)
		}
		if want := Time(hops) * Time(L); g.NowMax() != want {
			t.Errorf("workers=%d: NowMax = %v, want %v", workers, g.NowMax(), want)
		}
	}
}

// meshHop is a randomized token for the window property test: each
// delivery hops to a seeded pseudo-random LP with a seeded extra delay.
// Tokens run concurrently on pool workers, so each carries its own rng
// and pri range, and the shared log is mutex-guarded.
type meshHop struct {
	g     *LPGroup
	lp    int
	left  int
	delay Duration
	rng   uint64
	pri   uint64
	mu    *sync.Mutex
	log   *[]hopLog
	t     *testing.T
}

func (m *meshHop) Deliver() {
	e := m.g.LP(m.lp)
	m.mu.Lock()
	*m.log = append(*m.log, hopLog{at: e.Now(), lp: m.lp})
	m.mu.Unlock()
	if m.left == 0 {
		return
	}
	m.rng += 0x9E3779B97F4A7C15
	z := m.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z ^= z >> 27
	dst := int(z % uint64(len(m.g.lps)))
	extra := Duration(z>>32) % (3 * m.delay)
	at := e.Now() + Time(m.delay) + Time(extra)
	src := m.lp
	m.lp, m.left, m.pri = dst, m.left-1, m.pri+1
	if dst == src {
		e.AtPri(at, m.pri, m)
		return
	}
	// Positive form of the invariant flush enforces with a panic: a
	// cross-LP send from inside a window always clears the horizon.
	// (g.horizon is safe to read here: the coordinator wrote it before
	// dispatching this window, and the pool handoff orders the accesses.)
	if at < m.g.horizon {
		m.t.Errorf("cross-LP send at %v below round horizon %v", at, m.g.horizon)
	}
	m.g.Outbox(src).Send(dst, at, m.pri, m)
}

// TestLPWindowProperty is the conservative-sync safety property test:
// over a randomized multi-token mesh, (a) every event executes inside the
// round window [base, horizon) announced by TraceWindow, (b) every
// cross-LP message is timestamped at or after the horizon of the round
// that sent it, and (c) round bases never move backwards. (a)+(b)
// together are the safety claim — no event executes before a
// lower-timestamp cross-LP message could still reach its LP: such a
// message would have to be timestamped below its sending round's horizon,
// which (b) excludes (and flush would panic on).
func TestLPWindowProperty(t *testing.T) {
	const n = 5
	const L = 200 * Microsecond
	g := newRing(t, n, 4, L)

	type window struct{ base, horizon Time }
	var rounds []window
	g.TraceWindow = func(base, horizon Time) {
		if horizon != base+Time(L) {
			// Plain Run never caps the horizon below base+lookahead.
			t.Errorf("round horizon %v is not base %v + lookahead", horizon, base)
		}
		if len(rounds) > 0 && base < rounds[len(rounds)-1].base {
			t.Errorf("round base moved backwards: %v after %v", base, rounds[len(rounds)-1].base)
		}
		rounds = append(rounds, window{base, horizon})
	}

	var mu sync.Mutex
	var execLog []hopLog
	const tokens, hops = 6, 40
	for tok := 0; tok < tokens; tok++ {
		m := &meshHop{
			g: g, lp: tok % n, left: hops, delay: L,
			rng: uint64(tok+1) * 0x9E3779B97F4A7C15,
			pri: uint64(tok+1) << 32,
			mu:  &mu, log: &execLog, t: t,
		}
		g.LP(m.lp).AtPri(Time(L)+Time(tok)*7, m.pri, m)
	}
	g.Run()

	if want := tokens * (hops + 1); len(execLog) != want {
		t.Fatalf("executed %d events, want %d", len(execLog), want)
	}
	if len(rounds) == 0 {
		t.Fatal("TraceWindow never fired")
	}
	// (a): every execution lies in its round's window. Barrier rounds are
	// sequential, so the log is round-ordered even though entries within
	// one round interleave across LPs.
	r := 0
	for _, e := range execLog {
		for r < len(rounds) && e.at >= rounds[r].horizon {
			r++
		}
		if r >= len(rounds) || e.at < rounds[r].base {
			t.Fatalf("execution at %v (lp %d) outside every remaining window (round %d of %d)",
				e.at, e.lp, r, len(rounds))
		}
	}
}

// TestLPGroupRunWhileStopsOnLP0Boundary: when the condition flips, LP 0
// stops at exactly the serial engine's event boundary, and no other LP
// runs past one window — the overshoot bound crash cuts rely on:
// NowMax < Now + lookahead.
func TestLPGroupRunWhileStopsOnLP0Boundary(t *testing.T) {
	const n, hops = 3, 30
	const L = Millisecond
	g := newRing(t, n, n, L)
	var log []hopLog
	first := &hop{g: g, lp: 0, delay: L, left: hops - 1, pri: 1, log: &log}
	g.LP(0).AtPri(Time(L), first.pri, first)

	// Stop once LP 0 has executed 4 hops. The single ring token keeps
	// every window inline on the coordinator goroutine, so the condition
	// may read the shared log (it plays the role of LP 0 state here).
	lp0Seen := 0
	g.RunWhile(func() bool {
		lp0Seen = 0
		for _, e := range log {
			if e.lp == 0 {
				lp0Seen++
			}
		}
		return lp0Seen < 4
	})
	if lp0Seen != 4 {
		t.Fatalf("LP0 executed %d hops at stop, want exactly 4", lp0Seen)
	}
	// LP 0 hosts hops 1, 4, 7, 10 (1-indexed); the 4th lands at 10L.
	if want := 10 * Time(L); g.Now() != want {
		t.Errorf("LP0 stopped at %v, want %v", g.Now(), want)
	}
	if g.NowMax() >= g.Now()+Time(g.Lookahead()) {
		t.Errorf("overshoot bound violated: NowMax %v, LP0 %v + lookahead %v",
			g.NowMax(), g.Now(), g.Lookahead())
	}
	// Resuming picks the token back up and drains.
	g.Run()
	if len(log) != hops {
		t.Fatalf("after resume: %d hops, want %d", len(log), hops)
	}
}

// TestLPGroupRunUntilInclusive: RunUntil executes events at exactly the
// limit (serial RunUntil semantics), halts every LP, and Align brings the
// idle clocks together.
func TestLPGroupRunUntilInclusive(t *testing.T) {
	const L = Millisecond
	g := newRing(t, 2, 2, L)
	var log []hopLog
	first := &hop{g: g, lp: 0, delay: L, left: 9, pri: 1, log: &log}
	g.LP(0).AtPri(Time(L), first.pri, first)
	g.RunUntil(3 * Time(L))
	if len(log) != 3 {
		t.Fatalf("RunUntil(3L) executed %d hops, want 3 (inclusive of the limit)", len(log))
	}
	for i := 0; i < 2; i++ {
		if !g.LP(i).Halted() {
			t.Errorf("LP %d not halted after RunUntil", i)
		}
	}
	g.Run()
	if len(log) != 10 {
		t.Fatalf("after resume: %d hops, want 10", len(log))
	}
	at := g.Align()
	for i := 0; i < 2; i++ {
		if g.LP(i).Now() != at {
			t.Errorf("Align left LP %d at %v, want %v", i, g.LP(i).Now(), at)
		}
	}
}

// TestLPGroupWorkersClamped: worker counts outside [1, len(lps)] are
// clamped, not rejected.
func TestLPGroupWorkersClamped(t *testing.T) {
	if g := newRing(t, 2, 64, Millisecond); g.Workers() != 2 {
		t.Errorf("workers = %d, want clamped to 2", g.Workers())
	}
	if g := newRing(t, 2, 0, Millisecond); g.Workers() != 1 {
		t.Errorf("workers = %d, want clamped to 1", g.Workers())
	}
}

// pingPong is the steady-state alloc rig: a token bouncing between two
// LPs forever, reusing two preallocated deliveries (sender forwards its
// peer object, pooled-carrier style).
type pingPong struct {
	g     *LPGroup
	lp    int
	peer  *pingPong
	delay Duration
	pri   uint64
}

func (pp *pingPong) Deliver() {
	e := pp.g.LP(pp.lp)
	pp.g.Outbox(pp.lp).Send(pp.peer.lp, e.Now()+Time(pp.delay), pp.peer.pri, pp.peer)
}

// TestAllocFreeCrossLPSend: the steady-state cross-LP send path — window
// planning, pool handoff, outbox append, barrier flush, AtPri heap
// insert, delivery — allocates nothing. Two counter-rotating tokens keep
// both LPs active every round, so the parallel (worker-pool) path is what
// is measured, not the single-active inline shortcut.
func TestAllocFreeCrossLPSend(t *testing.T) {
	const L = Millisecond
	g := newRing(t, 2, 2, L)
	a := &pingPong{g: g, lp: 0, delay: L, pri: 1}
	b := &pingPong{g: g, lp: 1, delay: L, pri: 2}
	a.peer, b.peer = b, a
	c := &pingPong{g: g, lp: 1, delay: L, pri: 3}
	d := &pingPong{g: g, lp: 0, delay: L, pri: 4}
	c.peer, d.peer = d, c
	g.LP(0).AtPri(Time(L), a.pri, a)
	g.LP(1).AtPri(Time(L), c.pri, c)
	cycle := func() { g.RunUntil(g.NowMax() + 4*Time(L)) }
	cycle() // warm-up: outbox buffers, heap slices, pool scheduling paths
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Fatalf("cross-LP send cycle allocates %.1f objects per 4-window batch, want 0", n)
	}
}
