package sim_test

import (
	"testing"

	"metaupdate/internal/sim"
)

// BenchmarkEngineEvent measures the engine's event round trips — the cost
// every simulated disk access, CPU slice, and lock handoff pays.
func BenchmarkEngineEvent(b *testing.B) {
	// timer: schedule a future fn event, pop it, fire it.
	b.Run("timer", func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine()
		n := 0
		var fn func()
		fn = func() {
			n++
			if n < b.N {
				e.At(e.Now()+1, fn)
			}
		}
		b.ResetTimer()
		e.At(1, fn)
		e.Run()
	})
	// sleep: park a proc, schedule its wake, and hand control back —
	// the closure-free proc-wake path.
	b.Run("sleep", func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine()
		b.ResetTimer()
		e.Spawn("sleeper", func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				p.Sleep(1)
			}
		})
		e.Run()
	})
	// wake: a contended mutex ping-pong between two procs — same-instant
	// FIFO queue traffic plus waiter handoff.
	b.Run("wake", func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine()
		var mu sim.Mutex
		b.ResetTimer()
		for w := 0; w < 2; w++ {
			e.Spawn("worker", func(p *sim.Proc) {
				for i := 0; i < b.N/2; i++ {
					mu.Lock(p)
					p.Sleep(1)
					mu.Unlock(e)
				}
			})
		}
		e.Run()
	})
}
