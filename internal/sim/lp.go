// Conservative parallel discrete-event simulation (PDES) on top of Engine.
//
// An LPGroup partitions one simulation into logical processes (LPs), each a
// plain *Engine with its own event heap running on its own goroutine, and
// advances them in bounded time windows (a null-message-free YAWNS-style
// barrier scheme, DESIGN.md §14):
//
//	round:
//	  base    = min over LPs of next-event time
//	  horizon = base + lookahead
//	  every LP with work below the horizon executes [its clock, horizon)
//	            in parallel
//	  barrier; cross-LP messages buffered in per-sender outboxes are merged
//	            into destination heaps, ordered by (at, pri, seq)
//
// The scheme is safe — no LP ever executes an event before a message that
// should precede it can still arrive — because every cross-LP interaction
// goes through the simulated network, whose minimum link latency is the
// lookahead L: an event executed in a window based at T fires at t >= T, so
// any message it sends arrives at t+L >= T+L = horizon, which no LP has
// reached. flush enforces this invariant with a hard panic rather than
// trusting callers.
//
// Determinism does not depend on worker count or goroutine interleaving:
// within a window LPs touch disjoint state, and merged deliveries carry a
// pri key — (source endpoint, per-source sequence) packed into one word —
// so every destination heap orders the same message set identically whether
// the simulation ran on one engine or sixteen. The serial engine uses the
// same (at, pri, seq) key, which is why `mdsim -dist` stdout is
// byte-identical at every -engine-workers count.
package sim

import (
	"fmt"
	"sync"
)

// Outbox buffers cross-LP sends made while its owning LP executes a window.
// Exactly one worker goroutine (the one running that LP's window) appends to
// it, and only the single-threaded barrier drains it, so it needs no lock.
// Entries are values; in steady state the backing array is reused and a send
// costs zero allocations.
type Outbox struct {
	buf []outboxEntry
}

type outboxEntry struct {
	at  Time
	pri uint64
	dst int32
	d   Delivery
}

// Send buffers a delivery for LP dst at time at with cross-engine priority
// pri (see Engine.AtPri). It must only be called from the owning LP's
// executing window.
func (o *Outbox) Send(dst int, at Time, pri uint64, d Delivery) {
	o.buf = append(o.buf, outboxEntry{at: at, pri: pri, dst: int32(dst), d: d})
}

// lpTask is one window-execution assignment handed to a pool worker.
type lpTask struct {
	eng     *Engine
	horizon Time
	cond    func() bool // non-nil only for LP 0
}

// LPGroup runs a set of engines as one simulation under conservative
// window synchronization. It implements Exec, so hosts written against the
// serial Engine drive a parallel cluster unchanged.
//
// LP 0 is the coordinator LP: Spawn targets it, and RunWhile conditions may
// read only state owned by it (the other LPs legitimately run ahead of the
// condition flip, up to the window horizon — their state is only coherent to
// an outside observer after Run drains the group).
type LPGroup struct {
	lps       []*Engine
	outboxes  []Outbox
	lookahead Duration
	workers   int

	work   chan lpTask
	wg     sync.WaitGroup
	closed bool

	horizon  Time // horizon of the round in flight, for flush's invariant check
	condStop bool // LP 0's window stopped on its condition this round

	// TraceWindow, when non-nil, is called at the start of every round with
	// the round's base time and horizon. The LP-window property test uses it
	// (together with flush's always-on invariant) to assert that no event
	// executes before a lower-timestamp cross-LP message could reach it.
	TraceWindow func(base, horizon Time)
}

// NewLPGroup assembles engines into a conservatively synchronized group.
// lookahead must be strictly positive — it is the minimum virtual-time
// distance of any cross-LP interaction (the minimum simulated link latency),
// and with zero lookahead the window [base, base) is empty: conservative
// sync cannot make progress (the classic zero-lookahead deadlock). workers
// is the number of pool goroutines that execute LP windows; it is clamped
// to [1, len(lps)].
func NewLPGroup(lps []*Engine, lookahead Duration, workers int) (*LPGroup, error) {
	if len(lps) == 0 {
		return nil, fmt.Errorf("sim: LPGroup needs at least one engine")
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: conservative parallel sync needs positive lookahead, got %v (a zero-latency link would deadlock the window scheduler)", lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(lps) {
		workers = len(lps)
	}
	g := &LPGroup{
		lps:       lps,
		outboxes:  make([]Outbox, len(lps)),
		lookahead: lookahead,
		workers:   workers,
		work:      make(chan lpTask, len(lps)),
	}
	for i := 0; i < workers; i++ {
		go g.worker()
	}
	return g, nil
}

// Close shuts down the worker pool. The group must be idle (no round in
// flight); it is safe to call twice.
func (g *LPGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	close(g.work)
}

// Lookahead reports the group's synchronization lookahead.
func (g *LPGroup) Lookahead() Duration { return g.lookahead }

// Workers reports the pool size actually in use.
func (g *LPGroup) Workers() int { return g.workers }

// LP returns the i'th engine.
func (g *LPGroup) LP(i int) *Engine { return g.lps[i] }

// Outbox returns LP i's cross-LP send buffer. The network layer binds each
// endpoint's sends to its host LP's outbox.
func (g *LPGroup) Outbox(i int) *Outbox { return &g.outboxes[i] }

// Spawn starts a process on the coordinator LP (LP 0).
func (g *LPGroup) Spawn(name string, fn func(p *Proc)) *Proc {
	return g.lps[0].Spawn(name, fn)
}

// Now returns the coordinator LP's clock. Between rounds the other LPs may
// legitimately be ahead (see NowMax); host code that interleaves with the
// simulation — stat reads, follow-up spawns — observes LP 0 time, exactly
// as it would the single clock of a serial engine.
func (g *LPGroup) Now() Time { return g.lps[0].Now() }

// NowMax returns the maximum LP clock: the earliest instant no LP has
// executed past. Crash cuts in parallel mode must be taken at or after it.
func (g *LPGroup) NowMax() Time {
	max := g.lps[0].Now()
	for _, e := range g.lps[1:] {
		if t := e.Now(); t > max {
			max = t
		}
	}
	return max
}

// Executed sums dispatched-event counts across LPs (the events-per-second
// numerator in BENCH_4.json).
func (g *LPGroup) Executed() uint64 {
	var n uint64
	for _, e := range g.lps {
		n += e.Executed()
	}
	return n
}

// Pending sums queued events across LPs.
func (g *LPGroup) Pending() int {
	n := 0
	for _, e := range g.lps {
		n += e.Pending()
	}
	return n
}

// Align advances every idle LP clock to the maximum LP clock and returns
// it. NewDist calls it once after per-node setup so all LPs share an epoch;
// AdvanceTo panics if any LP still has pending events.
func (g *LPGroup) Align() Time {
	t := g.NowMax()
	for _, e := range g.lps {
		e.AdvanceTo(t)
	}
	return t
}

// Run executes rounds until every LP's queue is drained.
func (g *LPGroup) Run() { g.runLoop(maxTime, nil) }

// RunUntil executes rounds for events with timestamps <= limit, then stops,
// marking every LP halted exactly like the serial Engine's RunUntil (crash
// snapshots rely on the halted guard catching stray scheduling).
func (g *LPGroup) RunUntil(limit Time) { g.runLoop(limit, nil) }

// RunWhile executes rounds for as long as cond() holds. cond is evaluated
// on the coordinator between rounds and by LP 0's window before each of its
// events — it must depend only on LP 0 state. When it flips, LP 0 stops at
// exactly the same event boundary the serial engine would; other LPs finish
// their current window (bounded overshoot, invisible to LP 0 observables).
func (g *LPGroup) RunWhile(cond func() bool) { g.runLoop(maxTime, cond) }

// runLoop is the coordinator: plan a window, execute it in parallel,
// barrier, merge cross-LP messages, repeat.
func (g *LPGroup) runLoop(limit Time, cond func() bool) {
	for _, e := range g.lps {
		e.halted = false
	}
	g.condStop = false
	for {
		if cond != nil && !cond() {
			return
		}
		base, ok := g.minNextAt()
		if !ok {
			return // fully drained; outboxes are empty between rounds
		}
		if base > limit {
			for _, e := range g.lps {
				e.halted = true
			}
			return
		}
		horizon := base + g.lookahead
		// RunUntil semantics are inclusive of limit: cap the window at
		// limit+1 so events at exactly limit still execute (runWindow's
		// bound is strict).
		if m := limit + 1; horizon > m {
			horizon = m
		}
		g.horizon = horizon
		if g.TraceWindow != nil {
			g.TraceWindow(base, horizon)
		}
		g.executeWindows(horizon, cond)
		g.flush()
		if g.condStop {
			return
		}
	}
}

// executeWindows runs every LP that has work below horizon. Single-active-LP
// rounds (and workers == 1) run inline on the coordinator goroutine — no
// channel handoff — which keeps low-concurrency phases (setup, drain tails)
// from paying the pool's latency.
func (g *LPGroup) executeWindows(horizon Time, cond func() bool) {
	active := 0
	for _, e := range g.lps {
		if at, ok := e.NextAt(); ok && at < horizon {
			active++
		}
	}
	inline := g.workers == 1 || active <= 1
	for i, e := range g.lps {
		at, ok := e.NextAt()
		if !ok || at >= horizon {
			continue
		}
		c := cond
		if i != 0 {
			c = nil
		}
		if inline {
			if e.runWindow(horizon, c) {
				g.condStop = true
			}
			continue
		}
		g.wg.Add(1)
		g.work <- lpTask{eng: e, horizon: horizon, cond: c}
	}
	if !inline {
		g.wg.Wait()
	}
}

// worker executes window assignments. Only LP 0's task carries a condition,
// so condStop has a single writer per round; the WaitGroup barrier orders
// that write before the coordinator's read.
func (g *LPGroup) worker() {
	for t := range g.work {
		if t.eng.runWindow(t.horizon, t.cond) {
			g.condStop = true
		}
		g.wg.Done()
	}
}

// flush merges every buffered cross-LP message into its destination heap.
// It runs single-threaded at the barrier, in deterministic (sender LP,
// send order) sequence — though order cannot matter: each delivery's pri is
// unique, so heap order is a pure function of the message set. The horizon
// check is the conservative-sync safety invariant, kept as a hard assert:
// a delivery below the horizon could name an instant some LP already
// executed past.
func (g *LPGroup) flush() {
	for i := range g.outboxes {
		o := &g.outboxes[i]
		for j := range o.buf {
			en := &o.buf[j]
			if en.at < g.horizon {
				panic(fmt.Sprintf("sim: cross-LP delivery at %v violates window horizon %v (lookahead %v understates a link latency)", en.at, g.horizon, g.lookahead))
			}
			g.lps[en.dst].AtPri(en.at, en.pri, en.d)
			*en = outboxEntry{} // drop the Delivery reference
		}
		o.buf = o.buf[:0]
	}
}

// minNextAt reports the earliest queued event across all LPs.
func (g *LPGroup) minNextAt() (Time, bool) {
	var min Time
	ok := false
	for _, e := range g.lps {
		if at, has := e.NextAt(); has && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}
