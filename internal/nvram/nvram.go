// Package nvram implements the paper's first "future work" comparison
// point (section 7): protecting metadata integrity with battery-backed
// non-volatile RAM instead of update ordering.
//
// The scheme runs all file system updates as delayed writes (like No
// Order), but at every point where the ordering rules would have demanded
// a sequenced disk write, it instead appends the affected buffer's current
// image to an NVRAM log. The log record is retired when the buffer's
// delayed write eventually reaches the disk. After a crash, Replay applies
// the surviving log records over the media image, reconstructing exactly
// the states the ordering rules care about — so integrity matches the
// ordered schemes while the performance matches the delayed-write
// baseline, minus the cost of copying into NVRAM and the backpressure of a
// finite log ("...can greatly increase data persistence and provide slight
// performance improvements as compared to soft updates... but is very
// expensive").
package nvram

import (
	"sort"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/ffs"
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// Record is one logged buffer image.
type Record struct {
	Seq  uint64
	Frag int64
	Data []byte
}

// Log models the NVRAM device: bounded capacity, instantaneous persistence
// (battery-backed RAM), byte-copy cost charged to the CPU.
type Log struct {
	Cap int // bytes of NVRAM available for record payloads

	used    int
	nextSeq uint64
	// records per fragment: only the newest record per buffer matters for
	// replay, but retirement needs issue-time snapshots, so all live
	// records are kept until their buffer reaches the disk.
	records map[int64][]*Record

	// CopyPerKB is the CPU cost of copying one KB into NVRAM.
	CopyPerKB sim.Duration

	waiters *sim.Completion

	// Stats.
	Appends, Retired int64
	PeakUsed         int
}

// DefaultCap is 1 MB of NVRAM — a realistically priced 1994 part.
const DefaultCap = 1 << 20

// NewLog returns an empty NVRAM log.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Log{
		Cap:       capacity,
		records:   make(map[int64][]*Record),
		CopyPerKB: 40 * sim.Microsecond, // uncached writes across the bus
	}
}

// Used reports bytes currently held by live records.
func (l *Log) Used() int { return l.used }

// append logs the buffer's current image, blocking p while the log is full
// (NVRAM backpressure: somebody must flush buffers to retire records).
func (l *Log) append(p *sim.Proc, c *cache.Cache, cpu *sim.CPU, b *cache.Buf) {
	for l.used+len(b.Data) > l.Cap {
		// Force the oldest logged buffers out to disk to make room.
		l.flushOldest(p, c)
	}
	if cpu != nil && p != nil {
		sp := obs.SpanOf(p)
		sp.Push(p, obs.StageCPU)
		cpu.Use(p, l.CopyPerKB*sim.Duration((len(b.Data)+1023)/1024))
		sp.Pop(p)
	}
	l.nextSeq++
	rec := &Record{Seq: l.nextSeq, Frag: b.Frag, Data: append([]byte(nil), b.Data...)}
	l.records[b.Frag] = append(l.records[b.Frag], rec)
	l.used += len(rec.Data)
	l.Appends++
	if l.used > l.PeakUsed {
		l.PeakUsed = l.used
	}
}

// flushOldest writes the buffer with the oldest live record synchronously,
// retiring its records.
func (l *Log) flushOldest(p *sim.Proc, c *cache.Cache) {
	var oldest *Record
	for _, recs := range l.records {
		if len(recs) > 0 && (oldest == nil || recs[0].Seq < oldest.Seq) {
			oldest = recs[0]
		}
	}
	if oldest == nil {
		return
	}
	b := c.Lookup(oldest.Frag)
	if b == nil {
		// Buffer already gone (freed); the on-disk state is whatever the
		// ordering no longer cares about — retire the records.
		l.retire(oldest.Frag)
		return
	}
	c.Bdwrite(b)
	c.Bwrite(p, b)
	// WriteDone hook retires the records.
}

// retire drops all records for frag.
func (l *Log) retire(frag int64) {
	for _, r := range l.records[frag] {
		l.used -= len(r.Data)
		l.Retired++
	}
	delete(l.records, frag)
	if l.waiters != nil {
		// No engine handy here; waiters are woken via hook paths instead.
		l.waiters = nil
	}
}

// Replay applies the surviving records, oldest first, onto a crashed media
// image — the recovery step that runs from NVRAM before fsck.
func (l *Log) Replay(img []byte) int {
	var all []*Record
	for _, recs := range l.records {
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	for _, r := range all {
		copy(img[r.Frag*ffs.FragSize:], r.Data)
	}
	return len(all)
}

// Scheme is the NVRAM-backed ordering implementation (ffs.Ordering).
type Scheme struct {
	fs  *ffs.FS
	log *Log
}

// New returns an NVRAM scheme over the given log (nil for a DefaultCap log).
func New(log *Log) *Scheme {
	if log == nil {
		log = NewLog(0)
	}
	return &Scheme{log: log}
}

// Log exposes the underlying NVRAM log (for crash replay and stats).
func (s *Scheme) Log() *Log { return s.log }

// Name implements ffs.Ordering.
func (s *Scheme) Name() string { return "NVRAM" }

// Start implements ffs.Ordering.
func (s *Scheme) Start(fs *ffs.FS) { s.fs = fs }

// Hooks implements ffs.Ordering.
func (s *Scheme) Hooks() cache.Hooks { return nvHooks{s} }

type nvHooks struct{ s *Scheme }

func (nvHooks) OnAccess(*cache.Buf)                   {}
func (nvHooks) BeforeWrite(*cache.Buf, []byte) []byte { return nil }
func (nvHooks) WriteIssued(*cache.Buf, *dev.Request)  {}
func (h nvHooks) WriteDone(b *cache.Buf, r *dev.Request) {
	// The buffer's (at least as new) state is on disk; its log records
	// are no longer needed.
	h.s.log.retire(b.Frag)
}

// stable logs the buffer to NVRAM and leaves the disk write delayed.
func (s *Scheme) stable(p *sim.Proc, b *cache.Buf) {
	s.fs.Cache().Bdwrite(b)
	s.log.append(p, s.fs.Cache(), s.fs.CPU(), b)
}

// AllocInit implements ffs.Ordering.
func (s *Scheme) AllocInit(p *sim.Proc, rec *ffs.AllocRec) {
	if rec.IsDir || rec.IsIndir || rec.FS.Config().AllocInit {
		s.stable(p, rec.NewBuf)
	} else {
		rec.FS.Cache().Bdwrite(rec.NewBuf)
	}
}

// AllocPtr implements ffs.Ordering.
func (s *Scheme) AllocPtr(p *sim.Proc, rec *ffs.AllocRec) {
	s.stable(p, rec.OwnerBuf)
	if rec.MovedFrom != nil {
		rec.FS.ApplyFree(p, &ffs.FreeRec{FS: rec.FS, Frags: []ffs.FragRun{*rec.MovedFrom}})
	}
}

// AddInode implements ffs.Ordering.
func (s *Scheme) AddInode(p *sim.Proc, rec *ffs.LinkRec) { s.stable(p, rec.InoBuf) }

// AddEntry implements ffs.Ordering.
func (s *Scheme) AddEntry(p *sim.Proc, rec *ffs.LinkRec) { s.stable(p, rec.DirBuf) }

// RemoveEntry implements ffs.Ordering.
func (s *Scheme) RemoveEntry(p *sim.Proc, rec *ffs.RemRec) {
	s.stable(p, rec.DirBuf)
	rec.FS.FinishRemove(p, rec)
}

// FreeBlocks implements ffs.Ordering.
func (s *Scheme) FreeBlocks(p *sim.Proc, rec *ffs.FreeRec) {
	s.stable(p, rec.OwnerBuf)
	rec.FS.ApplyFree(p, rec)
}

// MetaUpdate implements ffs.Ordering.
func (s *Scheme) MetaUpdate(p *sim.Proc, b *cache.Buf) { s.fs.Cache().Bdwrite(b) }

// DataWrite implements ffs.Ordering.
func (s *Scheme) DataWrite(p *sim.Proc, b *cache.Buf) { s.fs.Cache().Bdwrite(b) }
