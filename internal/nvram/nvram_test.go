package nvram_test

import (
	"fmt"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
)

func newSys(t *testing.T, nvBytes int) *fsim.System {
	t.Helper()
	sys, err := fsim.New(fsim.Options{Scheme: fsim.NVRAM, DiskBytes: 64 << 20, NVRAMBytes: nvBytes})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBasicOperations(t *testing.T) {
	sys := newSys(t, 0)
	sys.Run(func(p *fsim.Proc) {
		dir, err := sys.FS.Mkdir(p, fsim.RootIno, "d")
		if err != nil {
			t.Fatal(err)
		}
		ino, err := sys.FS.Create(p, dir, "f")
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.FS.WriteAt(p, ino, 0, make([]byte, 20<<10)); err != nil {
			t.Fatal(err)
		}
		sys.FS.Sync(p)
	})
	if sys.NV == nil {
		t.Fatal("NV handle missing")
	}
	if sys.NV.Log().Appends == 0 {
		t.Fatal("nothing was journaled")
	}
}

func TestOperationsDoNotBlockOnDisk(t *testing.T) {
	// Like No Order, the NVRAM scheme must run metadata updates at memory
	// speed: no disk writes in the create path.
	sys := newSys(t, 0)
	sys.Run(func(p *fsim.Proc) {
		base := sys.Cache.WritesIssued
		start := p.Now()
		for i := 0; i < 50; i++ {
			if _, err := sys.FS.Create(p, fsim.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if got := sys.Cache.WritesIssued - base; got != 0 {
			t.Fatalf("creates issued %d disk writes", got)
		}
		if elapsed := p.Now() - start; elapsed > 200*sim.Millisecond {
			t.Fatalf("creates took %v; NVRAM journaling should be memory-speed", elapsed)
		}
	})
}

func TestLogRetiresAfterFlush(t *testing.T) {
	sys := newSys(t, 0)
	sys.Run(func(p *fsim.Proc) {
		for i := 0; i < 20; i++ {
			sys.FS.Create(p, fsim.RootIno, fmt.Sprintf("f%d", i))
		}
		if sys.NV.Log().Used() == 0 {
			t.Fatal("log empty after creates")
		}
		sys.FS.Sync(p)
	})
	if used := sys.NV.Log().Used(); used != 0 {
		t.Fatalf("log holds %d bytes after full sync", used)
	}
}

func TestLogBackpressure(t *testing.T) {
	// A tiny log forces flushes instead of growing without bound.
	sys := newSys(t, 64<<10)
	sys.Run(func(p *fsim.Proc) {
		for i := 0; i < 300; i++ {
			if _, err := sys.FS.Create(p, fsim.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	})
	l := sys.NV.Log()
	if l.PeakUsed > l.Cap {
		t.Fatalf("log exceeded capacity: %d > %d", l.PeakUsed, l.Cap)
	}
	if sys.Cache.WritesIssued == 0 {
		t.Fatal("backpressure never forced a flush")
	}
}

// The integrity claim: crash at any instant, replay NVRAM over the image,
// and fsck finds no violations.
func TestCrashReplayPreservesIntegrity(t *testing.T) {
	churn := func(sys *fsim.System) {
		sys.Eng.Spawn("churn", func(p *fsim.Proc) {
			dir, err := sys.FS.Mkdir(p, fsim.RootIno, "work")
			if err != nil {
				return
			}
			for i := 0; ; i++ {
				name := fmt.Sprintf("f%d", i%40)
				if ino, err := sys.FS.Create(p, dir, name); err == nil {
					sys.FS.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 3000))
				}
				if i%3 == 2 {
					sys.FS.Unlink(p, dir, fmt.Sprintf("f%d", (i-2)%40))
				}
			}
		})
	}
	// Determine total... churn is infinite; sweep fixed crash times.
	for _, at := range []fsim.Time{5 * fsim.Second, 33 * fsim.Second, 61 * fsim.Second} {
		sys := newSys(t, 0)
		churn(sys)
		img := sys.Crash(at)
		if sys.NV.Log().Replay(img) == 0 && at > 10*fsim.Second {
			t.Errorf("no records to replay at %v", at)
		}
		rep := fsck.Check(img)
		if v := rep.Violations(); len(v) != 0 {
			t.Fatalf("crash at %v: %d violations after replay, first: %v", at, len(v), v[0])
		}
	}
}

// Without the replay, the same crash images must show violations at some
// instant — the journal is load-bearing, not decorative.
func TestWithoutReplayIntegrityIsLost(t *testing.T) {
	churn := func(sys *fsim.System) {
		sys.Eng.Spawn("churn", func(p *fsim.Proc) {
			dir, err := sys.FS.Mkdir(p, fsim.RootIno, "work")
			if err != nil {
				return
			}
			for i := 0; ; i++ {
				name := fmt.Sprintf("f%d", i%40)
				if ino, err := sys.FS.Create(p, dir, name); err == nil {
					sys.FS.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 3000))
				}
				if i%3 == 2 {
					sys.FS.Unlink(p, dir, fmt.Sprintf("f%d", (i-2)%40))
				}
			}
		})
	}
	violations := 0
	for _, at := range []fsim.Time{33 * fsim.Second, 47 * fsim.Second, 61 * fsim.Second, 75 * fsim.Second} {
		sys := newSys(t, 0)
		churn(sys)
		img := sys.Crash(at)
		violations += len(fsck.Check(img).Violations())
	}
	if violations == 0 {
		t.Skip("no violation surfaced without replay in this sweep (timing-dependent)")
	}
}
