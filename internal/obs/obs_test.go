package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"metaupdate/internal/sim"
)

// runSpan drives one spawned process through fn with a recorder attached
// and returns the single recorded span.
func runSpan(t *testing.T, op Op, fn func(p *sim.Proc, sp *Span)) SpanRecord {
	t.Helper()
	eng := sim.NewEngine()
	r := New(eng)
	eng.Spawn("u", func(p *sim.Proc) {
		sp := r.Begin(p, op)
		fn(p, sp)
		r.End(p, sp)
	})
	eng.Run()
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	return spans[0]
}

// segSum is the partition invariant's left-hand side.
func segSum(rec SpanRecord) sim.Duration {
	var sum sim.Duration
	for _, v := range rec.Seg {
		sum += v
	}
	return sum
}

func TestSpanStageAttribution(t *testing.T) {
	rec := runSpan(t, OpCreate, func(p *sim.Proc, sp *Span) {
		p.Sleep(3) // root stage (other)
		sp.Push(p, StageCPU)
		p.Sleep(5)
		sp.Pop(p)
		p.Sleep(2) // other again
		sp.Push(p, StageLock)
		p.Sleep(7)
		sp.Push(p, StageCacheRead) // nested inside the lock wait
		p.Sleep(11)
		sp.Pop(p)
		p.Sleep(1) // back in lock
		sp.Pop(p)
	})
	want := [NumStages]sim.Duration{}
	want[StageOther] = 3 + 2
	want[StageCPU] = 5
	want[StageLock] = 7 + 1
	want[StageCacheRead] = 11
	if rec.Seg != want {
		t.Errorf("Seg = %v, want %v", rec.Seg, want)
	}
	if rec.Op != OpCreate {
		t.Errorf("Op = %v, want %v", rec.Op, OpCreate)
	}
	if got, total := segSum(rec), rec.End-rec.Start; got != total {
		t.Errorf("sum(Seg) = %d, End-Start = %d", got, total)
	}
}

func TestPopWaitThreeWaySplit(t *testing.T) {
	// Wait 10 ns in StageQueue; the request became ready (predecessors on
	// disk) 2 ns in and dispatched to the media 7 ns in. The wait must
	// split barrier=2, queue=5, media=3.
	rec := runSpan(t, OpWrite, func(p *sim.Proc, sp *Span) {
		t0 := p.Now()
		sp.Push(p, StageQueue)
		p.Sleep(10)
		sp.PopWait(p, t0, t0+2, t0+7)
	})
	if rec.Seg[StageBarrier] != 2 || rec.Seg[StageQueue] != 5 || rec.Seg[StageMedia] != 3 {
		t.Errorf("split barrier=%d queue=%d media=%d, want 2/5/3",
			rec.Seg[StageBarrier], rec.Seg[StageQueue], rec.Seg[StageMedia])
	}
	if got, total := segSum(rec), rec.End-rec.Start; got != total {
		t.Errorf("sum(Seg) = %d, End-Start = %d", got, total)
	}
}

func TestPopWaitClamping(t *testing.T) {
	cases := []struct {
		name                  string
		ready, dispatch       sim.Duration // offsets from t0; may exceed the wait
		barrier, queue, media sim.Duration
	}{
		{"ready before wait", -5, 4, 0, 4, 6},    // ready clamps to t0
		{"dispatch after wake", 2, 15, 2, 8, 0},  // dispatch clamps to now
		{"both outside", -3, 12, 0, 10, 0},       // degenerates to pure queue
		{"dispatch before ready", 6, 1, 6, 0, 4}, // dispatch clamps up to ready
		{"instant ready", 0, 0, 0, 0, 10},        // all media
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := runSpan(t, OpWrite, func(p *sim.Proc, sp *Span) {
				t0 := p.Now()
				sp.Push(p, StageQueue)
				p.Sleep(10)
				sp.PopWait(p, t0, t0+sim.Time(tc.ready), t0+sim.Time(tc.dispatch))
			})
			if rec.Seg[StageBarrier] != tc.barrier || rec.Seg[StageQueue] != tc.queue || rec.Seg[StageMedia] != tc.media {
				t.Errorf("split barrier=%d queue=%d media=%d, want %d/%d/%d",
					rec.Seg[StageBarrier], rec.Seg[StageQueue], rec.Seg[StageMedia],
					tc.barrier, tc.queue, tc.media)
			}
			if got, total := segSum(rec), rec.End-rec.Start; got != total {
				t.Errorf("sum(Seg) = %d, End-Start = %d", got, total)
			}
		})
	}
}

func TestPopWaitZeroLengthWait(t *testing.T) {
	// A wait that returns immediately (request already done) must not
	// produce negative segments regardless of the recorded timeline.
	rec := runSpan(t, OpWrite, func(p *sim.Proc, sp *Span) {
		t0 := p.Now()
		sp.Push(p, StageQueue)
		sp.PopWait(p, t0, t0-3, t0+5)
	})
	for st, v := range rec.Seg {
		if v != 0 {
			t.Errorf("Seg[%v] = %d, want 0", Stage(st), v)
		}
	}
}

func TestBeginNestedReturnsNil(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng)
	eng.Spawn("u", func(p *sim.Proc) {
		outer := r.Begin(p, OpUnlink)
		if outer == nil {
			t.Error("outer Begin returned nil")
		}
		inner := r.Begin(p, OpSync) // nested entry point folds into outer
		if inner != nil {
			t.Error("nested Begin returned a span, want nil")
		}
		r.End(p, inner) // no-op
		p.Sleep(4)
		r.End(p, outer)
		if p.Obs != nil {
			t.Error("p.Obs not detached after End")
		}
	})
	eng.Run()
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Op != OpUnlink {
		t.Fatalf("spans = %+v, want one unlink span", spans)
	}
}

func TestEndUnbalancedPanics(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng)
	eng.Spawn("u", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("End with an open stage did not panic")
			}
		}()
		sp := r.Begin(p, OpRead)
		sp.Push(p, StageCPU) // never popped
		r.End(p, sp)
	})
	eng.Run()
}

func TestRecorderPoolsSpans(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng)
	var first, second *Span
	eng.Spawn("u", func(p *sim.Proc) {
		first = r.Begin(p, OpRead)
		p.Sleep(1)
		r.End(p, first)
		second = r.Begin(p, OpWrite)
		r.End(p, second)
	})
	eng.Run()
	if first != second {
		t.Error("second Begin did not reuse the pooled span")
	}
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Op != OpRead || spans[1].Op != OpWrite {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[1].Seg != ([NumStages]sim.Duration{}) {
		t.Errorf("reused span carried stale segments: %v", spans[1].Seg)
	}
}

func TestProfileAggregation(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng)
	eng.Spawn("u", func(p *sim.Proc) {
		for _, d := range []sim.Duration{2 * sim.Millisecond, 4 * sim.Millisecond} {
			sp := r.Begin(p, OpCreate)
			sp.Push(p, StageCPU)
			p.Sleep(d)
			sp.Pop(p)
			r.End(p, sp)
		}
		sp := r.Begin(p, OpUnlink)
		p.Sleep(1 * sim.Millisecond)
		r.End(p, sp)
	})
	eng.Run()
	prof := r.Profile()
	if len(prof) != 2 {
		t.Fatalf("profile has %d op digests, want 2", len(prof))
	}
	cr, un := prof[0], prof[1]
	if cr.Op != OpCreate || un.Op != OpUnlink {
		t.Fatalf("profile order = %v, %v; want create, unlink", cr.Op, un.Op)
	}
	if cr.Count != 2 || cr.Total != 6*sim.Millisecond || cr.Seg[StageCPU] != 6*sim.Millisecond {
		t.Errorf("create digest = %+v", cr)
	}
	if cr.Lat.P50MS != 2 || cr.Lat.MaxMS != 4 || cr.Lat.MeanMS != 3 {
		t.Errorf("create latency dist = %+v, want p50=2 max=4 mean=3", cr.Lat)
	}
	if un.Count != 1 || un.Seg[StageOther] != 1*sim.Millisecond {
		t.Errorf("unlink digest = %+v", un)
	}
}

func TestResetStartsNewWindow(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng)
	eng.Spawn("u", func(p *sim.Proc) {
		r.End(p, r.Begin(p, OpRead))
		r.Reset()
		r.End(p, r.Begin(p, OpWrite))
	})
	eng.Run()
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Op != OpWrite {
		t.Fatalf("spans after Reset = %+v, want one write span", spans)
	}
}

func TestStageAndOpNamesComplete(t *testing.T) {
	for st := Stage(0); st < NumStages; st++ {
		if s := st.String(); s == "" || s == "stage?" {
			t.Errorf("Stage(%d) has no name", st)
		}
	}
	if Stage(NumStages).String() != "stage?" {
		t.Error("out-of-range stage did not map to placeholder")
	}
	for op := Op(0); op < NumOps; op++ {
		if s := op.String(); s == "" || s == "op?" {
			t.Errorf("Op(%d) has no name", op)
		}
	}
	if Op(NumOps).String() != "op?" {
		t.Error("out-of-range op did not map to placeholder")
	}
}

// chromeRun records a small fixed set of spans for the trace-format tests.
func chromeRun(t *testing.T) *Recorder {
	t.Helper()
	eng := sim.NewEngine()
	r := New(eng)
	for i := 0; i < 2; i++ {
		eng.Spawn("u", func(p *sim.Proc) {
			sp := r.Begin(p, OpCreate)
			sp.Push(p, StageCPU)
			p.Sleep(1500) // 1.5 µs: exercises the fractional-µs formatting
			sp.Pop(p)
			r.End(p, sp)
		})
	}
	eng.Run()
	return r
}

func TestChromeTraceShape(t *testing.T) {
	r := chromeRun(t)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur != 1.5 {
				t.Errorf("event dur = %v µs, want 1.5", ev.Dur)
			}
			if ev.Args["cpu_us"] != 1.5 {
				t.Errorf("cpu_us arg = %v, want 1.5", ev.Args["cpu_us"])
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 2 {
		t.Errorf("got %d metadata + %d complete events, want 2 + 2", meta, complete)
	}
	if strings.Count(buf.String(), "thread_name") != meta {
		t.Errorf("thread_name metadata count mismatch")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := chromeRun(t).WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := chromeRun(t).WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical runs produced different Chrome traces")
	}
}

// TestCountersOnlyTallies: the bounded-memory mode aggregates per-op
// counts, total/max latency, and stage segments without retaining span
// records.
func TestCountersOnlyTallies(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng)
	r.SetCountersOnly(true)
	eng.Spawn("u", func(p *sim.Proc) {
		for i, d := range []sim.Duration{5, 9, 2} {
			sp := r.Begin(p, OpCreate)
			if i == 1 {
				sp.Push(p, StageCPU)
				p.Sleep(d)
				sp.Pop(p)
			} else {
				p.Sleep(d)
			}
			r.End(p, sp)
		}
		sp := r.Begin(p, OpUnlink)
		p.Sleep(4)
		r.End(p, sp)
	})
	eng.Run()
	if n := len(r.Spans()); n != 0 {
		t.Fatalf("counters-only mode retained %d spans, want 0", n)
	}
	tl := r.Tallies()
	cr := tl[OpCreate]
	if cr.Count != 3 || cr.Total != 16 || cr.Max != 9 {
		t.Errorf("create tally = %+v, want count 3, total 16, max 9", cr)
	}
	if cr.Seg[StageCPU] != 9 || cr.Seg[StageOther] != 7 {
		t.Errorf("create stage split = cpu %v other %v, want 9/7", cr.Seg[StageCPU], cr.Seg[StageOther])
	}
	var segs sim.Duration
	for _, v := range cr.Seg {
		segs += v
	}
	if segs != cr.Total {
		t.Errorf("partition invariant broken in tally: sum(Seg) %v != Total %v", segs, cr.Total)
	}
	if ul := tl[OpUnlink]; ul.Count != 1 || ul.Total != 4 {
		t.Errorf("unlink tally = %+v, want count 1, total 4", ul)
	}
	r.Reset()
	if tl := r.Tallies(); tl[OpCreate].Count != 0 {
		t.Errorf("Reset left tallies behind: %+v", tl[OpCreate])
	}
}

// TestCountersOnlySteadyStateAllocFree: with the span pool warm, the
// counters-only record path allocates nothing per operation — required
// for open-ended load runs.
func TestCountersOnlySteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng)
	r.SetCountersOnly(true)
	done := false
	eng.Spawn("u", func(p *sim.Proc) {
		// Warm the pool and the free list.
		sp := r.Begin(p, OpLookup)
		p.Sleep(1)
		r.End(p, sp)
		if n := testing.AllocsPerRun(200, func() {
			sp := r.Begin(p, OpLookup)
			r.End(p, sp)
		}); n != 0 {
			t.Errorf("counters-only span record allocates %.1f/op, want 0", n)
		}
		done = true
	})
	eng.RunWhile(func() bool { return !done })
}
