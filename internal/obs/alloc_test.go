package obs

import (
	"testing"

	"metaupdate/internal/sim"
)

// TestAllocFreeDisabledPath pins design constraint 2 from the package doc:
// with no recorder attached, every observability hook the hot paths call
// (SpanOf, Push/Pop/PopWait on the resulting nil span, Begin/End on a nil
// recorder) is allocation-free, so enabling the instrumentation sites
// cannot regress the engine's zero-allocation steady state. The name
// matches the CI alloc-regression job's -run 'TestAllocFree' filter, which
// also runs it under -race.
func TestAllocFreeDisabledPath(t *testing.T) {
	eng := sim.NewEngine()
	var nilRec *Recorder
	eng.Spawn("u", func(p *sim.Proc) {
		if p.Obs != nil {
			t.Error("fresh proc carries an Obs value")
		}
		checks := []struct {
			name string
			fn   func()
		}{
			{"SpanOf", func() {
				if SpanOf(p) != nil {
					t.Fatal("SpanOf returned a span with tracing disabled")
				}
			}},
			{"Push/Pop", func() {
				sp := SpanOf(p)
				sp.Push(p, StageCPU)
				sp.Pop(p)
			}},
			{"PopWait", func() {
				sp := SpanOf(p)
				sp.Push(p, StageQueue)
				sp.PopWait(p, p.Now(), p.Now(), p.Now())
			}},
			{"Begin/End", func() {
				sp := nilRec.Begin(p, OpCreate)
				if sp != nil {
					t.Fatal("nil recorder returned a span")
				}
				nilRec.End(p, sp)
			}},
			{"Reset/Spans/Profile", func() {
				nilRec.Reset()
				if nilRec.Spans() != nil || nilRec.Profile() != nil {
					t.Fatal("nil recorder returned data")
				}
			}},
		}
		for _, c := range checks {
			if allocs := testing.AllocsPerRun(200, c.fn); allocs != 0 {
				t.Errorf("%s: %v allocs/run with tracing disabled, want 0", c.name, allocs)
			}
		}
	})
	eng.Run()
}

// TestAllocFreeSpanOfNil covers the daemon-context case (no process at
// all), which several cache paths hit.
func TestAllocFreeSpanOfNil(t *testing.T) {
	if allocs := testing.AllocsPerRun(200, func() {
		sp := SpanOf(nil)
		sp.Push(nil, StageCPU)
		sp.Pop(nil)
	}); allocs != 0 {
		t.Errorf("SpanOf(nil) path: %v allocs/run, want 0", allocs)
	}
}
