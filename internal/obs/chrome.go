package obs

import (
	"bufio"
	"fmt"
	"io"

	"metaupdate/internal/sim"
)

// WriteChromeTrace renders the recorded spans as Chrome trace-event JSON
// (load in chrome://tracing or Perfetto). Each span becomes one complete
// ("X") event on a track per simulated process, with the per-stage
// breakdown in args; timestamps are virtual microseconds since simulation
// start. The output is hand-rolled rather than marshaled so it is
// byte-deterministic: field order, number formatting, and event order
// (span completion order) are all fixed.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
		}
		first = false
	}
	// One thread-name metadata event per distinct process, in order of
	// first appearance (deterministic: spans complete in engine order).
	named := make(map[int]bool)
	for i := range r.spans {
		s := &r.spans[i]
		if named[s.Proc] {
			continue
		}
		named[s.Proc] = true
		sep()
		fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%q}}",
			s.Proc, s.Name)
	}
	for i := range r.spans {
		s := &r.spans[i]
		sep()
		fmt.Fprintf(bw, "{\"name\":%q,\"cat\":\"fsop\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{",
			s.Op.String(), s.Proc, usec(s.Start), usec(s.End-s.Start))
		for st := Stage(0); st < NumStages; st++ {
			if st > 0 {
				bw.WriteString(",")
			}
			fmt.Fprintf(bw, "\"%s_us\":%s", st, usec(s.Seg[st]))
		}
		bw.WriteString("}}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec formats a virtual-nanosecond quantity as decimal microseconds with
// exactly three fractional digits — integer math only, so the rendering is
// platform- and locale-independent.
func usec(t sim.Time) string {
	return fmt.Sprintf("%d.%03d", t/1000, t%1000)
}
