// Package obs is the operation-level observability layer: a virtual-time
// span recorder that attributes every nanosecond of a file system
// operation's client-visible latency to one of a small set of stages
// (CPU, cache-miss read fill, lock wait, dependency-barrier wait, driver
// queue, media service, syncer/write-behind backpressure).
//
// The paper's core claims are about where time goes per scheme; the
// driver-level trace (internal/trace) only sees individual disk requests.
// A span opens when an operation enters the file system, rides along on
// sim.Proc.Obs through every layer the operation touches, and closes when
// the operation returns — so the recorded stage segments partition the
// end-to-end latency exactly, by construction (see the Span invariant
// below).
//
// Design constraints, in priority order:
//
//  1. Observer only. The recorder never charges CPU, sleeps, or touches
//     the event queue, so enabling it cannot perturb virtual time: traced
//     and untraced runs of the same workload produce identical simulation
//     results, and the golden transcript is unaffected.
//  2. Zero overhead when disabled. With no recorder attached, every hook
//     degenerates to a nil check on a nil *Span (or nil *Recorder)
//     receiver — no allocation, no branch into recording code. This
//     preserves the engine's zero-allocation hot path and is guarded by
//     testing.AllocsPerRun tests.
//  3. Deterministic output. All state is engine-local (no package
//     globals); spans are recorded in completion order, which is fixed by
//     the engine's (time, sequence) event ordering — so reports and
//     Chrome traces are byte-identical at any -j and across memo reuse.
package obs

import (
	"metaupdate/internal/sim"
	"metaupdate/internal/trace"
)

// Stage classifies where a slice of an operation's latency was spent.
type Stage uint8

// The stage taxonomy (DESIGN.md §11). StageOther is the residual: span
// time not covered by a more specific stage — path traversal bookkeeping
// between charges, hook execution, and any wait a future instrumentation
// pass has not yet classified.
const (
	// StageCPU: simulated CPU charged by the file system or the cache's
	// write-copy path (quantum contention included — CPU time here is
	// "holding or waiting for the CPU to run this operation's code").
	StageCPU Stage = iota
	// StageCacheRead: blocked filling a buffer-cache miss (or waiting for
	// another process's in-flight fill of the same block).
	StageCacheRead
	// StageLock: blocked on a file system mutex (per-inode lock,
	// allocation lock).
	StageLock
	// StageBarrier: a synchronous write waiting in the driver for ordering
	// predecessors — the part of the queue delay caused purely by the
	// scheme's sequencing rules.
	StageBarrier
	// StageQueue: a synchronous write dispatchable but waiting its turn in
	// the driver queue (seek-order scheduling, busy media).
	StageQueue
	// StageMedia: a synchronous write being serviced by the disk.
	StageMedia
	// StageSyncer: blocked behind write-behind machinery — an in-flight
	// delayed/async write of the buffer (issued by the syncer daemon or
	// another process), copy-buffer backpressure, or eviction waits.
	StageSyncer
	// StageNetQueue: blocked on a distributed RPC for reasons other than
	// bytes in flight — link contention at the sender, queueing at the
	// remote node, and the remote node's service time (which the remote
	// side accounts in its own spans).
	StageNetQueue
	// StageWire: request and reply bytes of a distributed RPC in flight on
	// the simulated network (transmission + propagation), split out of
	// StageNetQueue retroactively by PopNet.
	StageWire
	// StageOther: residual span time (see above).
	StageOther

	// NumStages sizes per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"cpu", "cacheread", "lock", "barrier", "queue", "media", "syncer",
	"netqueue", "wire", "other",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// Op identifies the file system operation a span measures.
type Op uint8

// One value per client-visible FS entry point.
const (
	OpLookup Op = iota
	OpCreate
	OpMkdir
	OpLink
	OpUnlink
	OpRmdir
	OpRename
	OpRead
	OpWrite
	OpReadDir
	OpStat
	OpFsync
	OpSync

	// NumOps sizes per-op arrays.
	NumOps
)

var opNames = [NumOps]string{
	"lookup", "create", "mkdir", "link", "unlink", "rmdir", "rename",
	"read", "write", "readdir", "stat", "fsync", "sync",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Span accumulates one operation's stage segments. At every instant a span
// is open, exactly one stage is "current" (a small explicit stack, so
// nested regions like a cache-miss fill inside a lock hold nest cleanly);
// all virtual time between Begin and End is credited to whichever stage
// was current as it passed. That construction is the partition invariant:
//
//	sum(Seg) == End - Start, exactly, in virtual nanoseconds
//
// with no gaps (time always lands in the current stage) and no overlaps
// (segments only ever transfer between stages, never duplicate).
//
// All methods are nil-receiver safe; a nil *Span is the disabled path.
type Span struct {
	op    Op
	proc  int
	name  string
	start sim.Time

	// curSince is when the current stage (stack[depth]) became current.
	curSince sim.Time
	depth    int
	stack    [8]Stage
	seg      [NumStages]sim.Duration
}

// SpanOf returns the span riding on p, or nil when tracing is disabled or
// p is a daemon/engine context with no operation in flight.
func SpanOf(p *sim.Proc) *Span {
	if p == nil {
		return nil
	}
	sp, _ := p.Obs.(*Span)
	return sp
}

// Push makes st the current stage. Every Push must be balanced by exactly
// one Pop (or PopWait) before the operation returns; instrumentation sites
// therefore bracket a single blocking call or charge with no early return
// in between.
func (sp *Span) Push(p *sim.Proc, st Stage) {
	if sp == nil {
		return
	}
	now := p.Now()
	sp.seg[sp.stack[sp.depth]] += now - sp.curSince
	sp.curSince = now
	sp.depth++
	sp.stack[sp.depth] = st
}

// Pop credits the time since the matching Push to the pushed stage and
// restores the enclosing stage.
func (sp *Span) Pop(p *sim.Proc) {
	if sp == nil {
		return
	}
	now := p.Now()
	sp.seg[sp.stack[sp.depth]] += now - sp.curSince
	sp.curSince = now
	sp.depth--
}

// PopWait closes a StageQueue region that covered a blocking wait on one
// disk request, retroactively splitting the wait three ways using the
// request's recorded timeline: [t0, ready) was the dependency barrier
// (predecessors not yet on disk), [dispatch, now) was media service, and
// the remainder stays in the queue stage. The split is a pure transfer
// between stages, so the partition invariant is preserved; clamping keeps
// it exact even when ready precedes the wait (request was dispatchable
// immediately) or dispatch raced ahead of the waiter.
func (sp *Span) PopWait(p *sim.Proc, t0, ready, dispatch sim.Time) {
	if sp == nil {
		return
	}
	now := p.Now()
	sp.Pop(p)
	if now <= t0 {
		return
	}
	if ready < t0 {
		ready = t0
	}
	if ready > now {
		ready = now
	}
	if dispatch < ready {
		dispatch = ready
	}
	if dispatch > now {
		dispatch = now
	}
	barrier := ready - t0
	media := now - dispatch
	sp.seg[StageQueue] -= barrier + media
	sp.seg[StageBarrier] += barrier
	sp.seg[StageMedia] += media
}

// PopNet closes a StageNetQueue region that covered one blocking RPC on
// the simulated network, retroactively transferring the measured wire
// time (request + reply transmission and propagation) into StageWire;
// link contention, remote queueing, and remote service stay in
// StageNetQueue. t0 is when the region was pushed. The move is a pure
// transfer between stages, so the partition invariant is preserved;
// clamping wire to the region's elapsed time keeps every segment
// non-negative even if a caller overstates it.
func (sp *Span) PopNet(p *sim.Proc, t0 sim.Time, wire sim.Duration) {
	if sp == nil {
		return
	}
	now := p.Now()
	sp.Pop(p)
	if avail := now - t0; wire > avail {
		wire = avail
	}
	if wire < 0 {
		wire = 0
	}
	sp.seg[StageNetQueue] -= wire
	sp.seg[StageWire] += wire
}

// SpanRecord is one completed span.
type SpanRecord struct {
	Op    Op
	Proc  int    // sim.Proc.ID
	Name  string // sim.Proc.Name
	Start sim.Time
	End   sim.Time
	Seg   [NumStages]sim.Duration
}

// Recorder collects completed spans for one engine. It is engine-local
// (simulated time is single-threaded, so no locking) and owns a small
// free list so the enabled steady state allocates only for the record
// log's amortized growth.
type Recorder struct {
	eng   *sim.Engine
	spans []SpanRecord
	free  []*Span

	// countersOnly folds completed spans into the per-op tallies instead
	// of retaining SpanRecords — bounded memory for open-ended runs (the
	// open-loop scenario driver can push hundreds of thousands of
	// operations through one recorder).
	countersOnly bool
	tally        [NumOps]OpTally
}

// OpTally is the bounded-memory per-op-type aggregate the counters-only
// mode maintains: operation count, summed end-to-end latency, worst case,
// and the summed per-stage breakdown (the partition invariant survives
// aggregation: sum(Seg) == Total).
type OpTally struct {
	Count int64
	Total sim.Duration
	Max   sim.Duration
	Seg   [NumStages]sim.Duration
}

// New returns an empty recorder for eng.
func New(eng *sim.Engine) *Recorder {
	return &Recorder{eng: eng}
}

// Begin opens a span for op on p and attaches it as p's active span. It
// returns nil — and records nothing — when the recorder is disabled (nil),
// p is an engine context, or p already carries a span: a nested entry
// point (Sync driving FinishRemove work, for example) folds into the
// operation that caused it, keeping the outer span's partition exact.
func (r *Recorder) Begin(p *sim.Proc, op Op) *Span {
	if r == nil || p == nil || p.Obs != nil {
		return nil
	}
	var sp *Span
	if n := len(r.free); n > 0 {
		sp = r.free[n-1]
		r.free = r.free[:n-1]
		*sp = Span{}
	} else {
		sp = &Span{}
	}
	now := r.eng.Now()
	sp.op = op
	sp.proc = p.ID
	sp.name = p.Name
	sp.start = now
	sp.curSince = now
	sp.stack[0] = StageOther
	p.Obs = sp
	return sp
}

// End closes sp, credits the tail to the current (root) stage, appends the
// record, and detaches the span from p. A nil sp is the disabled path.
func (r *Recorder) End(p *sim.Proc, sp *Span) {
	if sp == nil {
		return
	}
	now := r.eng.Now()
	sp.seg[sp.stack[sp.depth]] += now - sp.curSince
	if sp.depth != 0 {
		panic("obs: span ended with unbalanced stage stack")
	}
	if r.countersOnly {
		tl := &r.tally[sp.op]
		tl.Count++
		lat := now - sp.start
		tl.Total += lat
		if lat > tl.Max {
			tl.Max = lat
		}
		for st, v := range sp.seg {
			tl.Seg[st] += v
		}
	} else {
		r.spans = append(r.spans, SpanRecord{
			Op: sp.op, Proc: sp.proc, Name: sp.name,
			Start: sp.start, End: now, Seg: sp.seg,
		})
	}
	p.Obs = nil
	r.free = append(r.free, sp)
}

// SetCountersOnly switches the recorder between span retention (the
// default; Spans/Profile/Chrome export all work) and the bounded-memory
// tally mode (only Tallies carries data). Switch at a measurement-window
// boundary; spans already retained stay retained.
func (r *Recorder) SetCountersOnly(on bool) {
	if r == nil {
		return
	}
	r.countersOnly = on
}

// Tallies returns the per-op aggregates accumulated in counters-only mode
// since the last Reset.
func (r *Recorder) Tallies() [NumOps]OpTally {
	if r == nil {
		return [NumOps]OpTally{}
	}
	return r.tally
}

// Reset discards recorded spans and tallies (the start of a measurement
// window).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	r.tally = [NumOps]OpTally{}
}

// Spans returns the completed spans in completion order. The slice aliases
// the recorder's log; callers must not retain it across Reset.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	return r.spans
}

// OpDigest aggregates every recorded span of one operation type.
type OpDigest struct {
	Op    Op
	Count int
	// Total is the summed end-to-end latency; Seg the summed per-stage
	// time. sum(Seg) == Total by the partition invariant.
	Total sim.Duration
	Seg   [NumStages]sim.Duration
	// Lat is the per-operation latency distribution in milliseconds.
	Lat trace.Dist
}

// Profile aggregates the recorded spans into per-op-type digests, ordered
// by Op. Ops with no spans are omitted.
func (r *Recorder) Profile() []OpDigest {
	if r == nil {
		return nil
	}
	var agg [NumOps]OpDigest
	var lat [NumOps]trace.Digest
	for i := range r.spans {
		s := &r.spans[i]
		d := &agg[s.Op]
		d.Count++
		d.Total += s.End - s.Start
		for st, v := range s.Seg {
			d.Seg[st] += v
		}
		lat[s.Op].Add((s.End - s.Start).Milliseconds())
	}
	out := make([]OpDigest, 0, NumOps)
	for op := Op(0); op < NumOps; op++ {
		if agg[op].Count == 0 {
			continue
		}
		agg[op].Op = op
		agg[op].Lat = lat[op].Dist()
		out = append(out, agg[op])
	}
	return out
}
