package fsck_test

import (
	"testing"

	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
)

// After Repair, a crashed image must pass Check with zero findings — for
// every scheme, safe or not, at any crash point. This is the paper's
// recovery story: fsck assistance restores a usable file system; the
// difference between the schemes is only whether *integrity* (and data)
// survived until fsck ran.
func TestRepairProducesCleanImage(t *testing.T) {
	for _, scheme := range []string{"conventional", "flag", "chains", "softupdates", "noorder"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			total := totalRuntime(t, scheme, true)
			for pct := 10; pct <= 90; pct += 20 {
				at := total * sim.Time(pct) / 100
				img := crashAt(t, scheme, true, at)
				fsck.Repair(img)
				rep := fsck.Check(img)
				if len(rep.Findings) != 0 {
					t.Fatalf("%s at %d%%: repaired image still has findings: %v",
						scheme, pct, rep.Findings[0])
				}
			}
		})
	}
}

func TestRepairReportsActions(t *testing.T) {
	// A crashed No Order image mid-churn needs actual repairs.
	total := totalRuntime(t, "noorder", false)
	img := crashAt(t, "noorder", false, total/2)
	before := fsck.Check(img)
	actions := fsck.Repair(img)
	if len(before.Findings) > 0 && len(actions) == 0 {
		t.Fatalf("fsck found %d problems but Repair did nothing", len(before.Findings))
	}
}

func TestRepairClampsLinkCounts(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	// Inflate some link count.
	var victim ffs.Ino
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile {
			victim = ino
			ip.Nlink = 9
			ffs.EncodeInode(&ip, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	if victim == 0 {
		t.Skip("no file inode")
	}
	fsck.Repair(img)
	frag, off := sb.InodeFrag(victim)
	ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
	if ip.Nlink == 9 {
		t.Fatal("link count not clamped")
	}
	if v := fsck.Check(img).Violations(); len(v) != 0 {
		t.Fatalf("still violating after repair: %v", v)
	}
}

func TestRepairClearsDanglingEntries(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	// Clear a referenced inode to manufacture a dangling entry.
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile {
			cleared := ffs.Inode{}
			ffs.EncodeInode(&cleared, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	if len(fsck.Check(img).Violations()) == 0 {
		t.Skip("no dangling entry was produced")
	}
	fsck.Repair(img)
	if v := fsck.Check(img).Violations(); len(v) != 0 {
		t.Fatalf("dangling entry survived repair: %v", v)
	}
}

func TestRepairTruncatesBadPointers(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile && ip.Size > ffs.BlockSize {
			ip.Direct[1] = sb.TotalFrags + 100 // out of range
			ffs.EncodeInode(&ip, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	fsck.Repair(img)
	if v := fsck.Check(img).Violations(); len(v) != 0 {
		t.Fatalf("bad pointer survived repair: %v", v)
	}
}
