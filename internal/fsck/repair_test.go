package fsck_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
)

// After Repair, a crashed image must pass Check with zero findings — for
// every scheme, safe or not, at any crash point. This is the paper's
// recovery story: fsck assistance restores a usable file system; the
// difference between the schemes is only whether *integrity* (and data)
// survived until fsck ran.
func TestRepairProducesCleanImage(t *testing.T) {
	for _, scheme := range []string{"conventional", "flag", "chains", "softupdates", "noorder"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			total := totalRuntime(t, scheme, true)
			for pct := 10; pct <= 90; pct += 20 {
				at := total * sim.Time(pct) / 100
				img := crashAt(t, scheme, true, at)
				fsck.Repair(img)
				rep := fsck.Check(img)
				if len(rep.Findings) != 0 {
					t.Fatalf("%s at %d%%: repaired image still has findings: %v",
						scheme, pct, rep.Findings[0])
				}
			}
		})
	}
}

func TestRepairReportsActions(t *testing.T) {
	// A crashed No Order image mid-churn needs actual repairs.
	total := totalRuntime(t, "noorder", false)
	img := crashAt(t, "noorder", false, total/2)
	before := fsck.Check(img)
	actions := fsck.Repair(img)
	if len(before.Findings) > 0 && len(actions) == 0 {
		t.Fatalf("fsck found %d problems but Repair did nothing", len(before.Findings))
	}
}

func TestRepairClampsLinkCounts(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	// Inflate some link count.
	var victim ffs.Ino
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile {
			victim = ino
			ip.Nlink = 9
			ffs.EncodeInode(&ip, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	if victim == 0 {
		t.Skip("no file inode")
	}
	fsck.Repair(img)
	frag, off := sb.InodeFrag(victim)
	ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
	if ip.Nlink == 9 {
		t.Fatal("link count not clamped")
	}
	if v := fsck.Check(img).Violations(); len(v) != 0 {
		t.Fatalf("still violating after repair: %v", v)
	}
}

func TestRepairClearsDanglingEntries(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	// Clear a referenced inode to manufacture a dangling entry.
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile {
			cleared := ffs.Inode{}
			ffs.EncodeInode(&cleared, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	if len(fsck.Check(img).Violations()) == 0 {
		t.Skip("no dangling entry was produced")
	}
	fsck.Repair(img)
	if v := fsck.Check(img).Violations(); len(v) != 0 {
		t.Fatalf("dangling entry survived repair: %v", v)
	}
}

// TestRepairFreesOrphanInodes manufactures an allocated inode no directory
// references — the shape a crash leaves when the inode write beat the
// directory entry to disk and the entry never made it.
func TestRepairFreesOrphanInodes(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	var orphan ffs.Ino
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		if ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):]); !ip.Allocated() {
			orphan = ino
			ip = ffs.Inode{Mode: ffs.ModeFile, Nlink: 1}
			ffs.EncodeInode(&ip, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	if orphan == 0 {
		t.Skip("no free inode to orphan")
	}
	actions := fsck.Repair(img)
	frag, off := sb.InodeFrag(orphan)
	if ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):]); ip.Allocated() {
		t.Fatalf("orphan inode %d still allocated after repair", orphan)
	}
	if !strings.Contains(strings.Join(actions, "\n"), "orphan") {
		t.Errorf("repair log doesn't mention the orphan: %v", actions)
	}
	if rep := fsck.Check(img); len(rep.Findings) != 0 {
		t.Fatalf("image not clean after repair: %v", rep.Findings[0])
	}
}

// TestRepairReclaimsLeaks marks a free fragment and a free inode as
// allocated in the bitmaps — leaked space, the benign inconsistency every
// scheme in the paper tolerates — and wants both bits reclaimed by the
// bitmap rebuild.
func TestRepairReclaimsLeaks(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	fbm := img[int64(sb.FBmapStart)*ffs.FragSize:]
	var leakedFrag int32 = -1
	for f := sb.TotalFrags - 1; f >= sb.DataStart; f-- {
		if fbm[f/8]&(1<<(uint(f)%8)) == 0 {
			fbm[f/8] |= 1 << (uint(f) % 8)
			leakedFrag = f
			break
		}
	}
	ibm := img[int64(sb.IBmapStart)*ffs.FragSize:]
	var leakedIno ffs.Ino
	for ino := ffs.Ino(sb.NInodes - 1); ino > ffs.RootIno; ino-- {
		if ibm[ino/8]&(1<<(uint(ino)%8)) == 0 {
			ibm[ino/8] |= 1 << (uint(ino) % 8)
			leakedIno = ino
			break
		}
	}
	if leakedFrag < 0 || leakedIno == 0 {
		t.Skip("nothing free to leak")
	}
	fsck.Repair(img)
	if fbm[leakedFrag/8]&(1<<(uint(leakedFrag)%8)) != 0 {
		t.Errorf("leaked fragment %d not reclaimed", leakedFrag)
	}
	if ibm[leakedIno/8]&(1<<(uint(leakedIno)%8)) != 0 {
		t.Errorf("leaked inode %d not reclaimed", leakedIno)
	}
	if rep := fsck.Check(img); len(rep.Findings) != 0 {
		t.Fatalf("image not clean after repair: %v", rep.Findings[0])
	}
}

// TestRepairReformatsGarbageDirChunk scribbles over a directory's first
// chunk — what a torn multi-sector directory write leaves behind — and
// wants the chunk reformatted with "." and ".." reseeded.
func TestRepairReformatsGarbageDirChunk(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	var dir ffs.Ino
	var head []byte
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.IsDir() && ip.Direct[0] >= sb.DataStart && ip.Direct[0] < sb.TotalFrags {
			dir = ino
			head = img[int64(ip.Direct[0])*ffs.FragSize:]
			break
		}
	}
	if dir == 0 {
		t.Skip("no non-root directory")
	}
	for i := 0; i < ffs.DirChunk; i++ {
		head[i] = 0xAB // invalid reclen everywhere
	}
	fsck.Repair(img)
	le := binary.LittleEndian
	if got := ffs.Ino(le.Uint32(head[0:])); got != dir {
		t.Errorf("reformatted chunk's '.' names inode %d, want %d", got, dir)
	}
	if name := string(head[8 : 8+head[6]]); name != "." {
		t.Errorf("first reseeded entry is %q, want %q", name, ".")
	}
	if rep := fsck.Check(img); len(rep.Findings) != 0 {
		t.Fatalf("image not clean after repair: %v", rep.Findings[0])
	}
}

// TestRepairIdempotent: repairing a repaired image must be a no-op — the
// clean re-check above is only trustworthy if Repair converges.
func TestRepairIdempotent(t *testing.T) {
	total := totalRuntime(t, "noorder", false)
	img := crashAt(t, "noorder", false, total/2)
	fsck.Repair(img)
	if again := fsck.Repair(img); len(again) != 0 {
		t.Fatalf("second repair still acted: %v", again)
	}
	if rep := fsck.Check(img); len(rep.Findings) != 0 {
		t.Fatalf("image not clean after repair: %v", rep.Findings[0])
	}
}

func TestRepairTruncatesBadPointers(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile && ip.Size > ffs.BlockSize {
			ip.Direct[1] = sb.TotalFrags + 100 // out of range
			ffs.EncodeInode(&ip, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	fsck.Repair(img)
	if v := fsck.Check(img).Violations(); len(v) != 0 {
		t.Fatalf("bad pointer survived repair: %v", v)
	}
}
