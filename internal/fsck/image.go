package fsck

// Image is a read-only view of a raw file-system image. It lets callers
// hand the checker virtual images — crashmc's copy-on-write overlays
// (committed base + per-sector write deltas) — without materializing a
// full media-sized byte slice per candidate.
//
// Range returns a view of bytes [off, off+n). Implementations may serve
// dirty regions from reused scratch buffers, so a view is only guaranteed
// valid until the caller's fourth subsequent Range call; the checker holds
// at most two views at once. Callers must treat views as immutable.
type Image interface {
	Len() int64
	Range(off, n int64) []byte
}

// Bytes adapts a materialized image to Image. Views alias the slice
// directly and remain valid indefinitely.
type Bytes []byte

// Len implements Image.
func (b Bytes) Len() int64 { return int64(len(b)) }

// Range implements Image.
func (b Bytes) Range(off, n int64) []byte { return b[off : off+n] }
