package fsck

import "metaupdate/internal/ffs"

// Image is a read-only view of a raw file-system image. It lets callers
// hand the checker virtual images — crashmc's copy-on-write overlays
// (committed base + per-sector write deltas) — without materializing a
// full media-sized byte slice per candidate.
//
// Range returns a view of bytes [off, off+n). Implementations may serve
// dirty regions from reused scratch buffers, so a view is only guaranteed
// valid until the caller's fourth subsequent Range call; the checker holds
// at most two views at once. Callers must treat views as immutable.
type Image interface {
	Len() int64
	Range(off, n int64) []byte
}

// sectorSize is the granularity of DeltaImage dirty tracking. It equals
// disk.SectorSize; fsck keeps its own copy so the package depends only on
// the ffs layout (ffs.DirChunk — one directory chunk per sector — pins the
// same value).
const sectorSize = ffs.DirChunk

// DeltaImage is an Image assembled from an immutable base plus a sparse
// set of dirtied sectors — crashmc's copy-on-write crash-candidate
// overlays. The incremental checker (see Baseline) uses the dirty-sector
// set to re-derive only state whose backing sectors changed, splicing
// cached results for the untouched remainder.
type DeltaImage interface {
	Image
	// Base returns the underlying unmodified image. It must be identical
	// (same bytes) to the image the Baseline was built from.
	Base() Image
	// DirtySectors returns the sectors (units of sectorSize bytes, offset
	// sector*sectorSize) at which the delta may differ from the base, in
	// any order, without duplicates. Sectors not listed must read exactly
	// as the base. The slice is valid until the image is modified.
	DirtySectors() []int64
}

// Forkable is implemented by images whose Range serves views from
// per-instance scratch (and is therefore not concurrently callable).
// Fork returns an independently usable view of the same bytes; the
// pipelined checker forks once per goroutine.
type Forkable interface {
	Image
	Fork() Image
}

// Bytes adapts a materialized image to Image. Views alias the slice
// directly and remain valid indefinitely; Range is safe for concurrent
// use.
type Bytes []byte

// Len implements Image.
func (b Bytes) Len() int64 { return int64(len(b)) }

// Range implements Image.
func (b Bytes) Range(off, n int64) []byte { return b[off : off+n] }

// Materialize copies img into a fresh mutable byte slice. DeltaImages are
// materialized delta-aware: one copy of the base plus the dirty sectors,
// instead of a Range walk over the whole media.
func Materialize(img Image) []byte {
	n := img.Len()
	out := make([]byte, n)
	if d, ok := img.(DeltaImage); ok {
		base := d.Base()
		copyImage(out, base)
		for _, s := range d.DirtySectors() {
			off := s * sectorSize
			copy(out[off:off+sectorSize], d.Range(off, sectorSize))
		}
		return out
	}
	copyImage(out, img)
	return out
}

func copyImage(dst []byte, img Image) {
	const chunk = 1 << 20
	n := img.Len()
	for off := int64(0); off < n; off += chunk {
		m := n - off
		if m > chunk {
			m = chunk
		}
		copy(dst[off:], img.Range(off, m))
	}
}

// RepairImage materializes img (delta-aware) and repairs it in place,
// returning the repaired bytes and the actions taken — Repair for callers
// holding virtual images.
func RepairImage(img Image) ([]byte, []string) {
	out := Materialize(img)
	return out, Repair(out)
}
