package fsck

// The incremental merge. incremental.go re-derives only the records whose
// dependency sectors a delta touches; this file re-merges only the inodes
// whose *merge output* the delta can reach, splicing every other inode's
// findings straight out of the baseline's recorded segments. The work per
// check becomes proportional to the delta's blast radius instead of
// O(NInodes + TotalFrags):
//
//   - pass 1: the changed inodes' old and new fragment claims define a
//     patch set over the baseline ownership table; a changed claimant can
//     also demote an unchanged baseline owner (the unchanged inode then
//     replays too, producing its new CrossLink finding). Claim-success
//     deltas adjust ReferencedFrags against the baseline's per-inode
//     success counts.
//   - pass 2: a directory replays if its parse changed or if an entry of
//     its names a changed inode whose merge-visible signature (validity or
//     mode) changed — found through the baseline's reverse index. Refs is
//     maintained as baseline values plus an undo log, never rebuilt.
//   - pass 3: an inode replays if its record changed or its reference
//     count moved.
//   - pass 4: an inode replays if its record changed or its bitmap bit
//     differs between delta and base; the fragment aggregates adjust by
//     the contribution deltas of patched (ownership-changed) and
//     bit-flipped fragments only.
//
// Soundness rests on the same purity argument as record caching: each
// pass's per-inode output is a function of that inode's record plus the
// specific cross-inode state tracked here (ownership, target signatures,
// reference counts, bitmap bits). Anything outside this file's reach —
// a baseline with cross-links (ownership is then not a single-claimant
// table), an invalid root (the full merge returns early), or an oversized
// delta — falls back to the full epoch merge in incremental.go. The
// differential oracles (fsck and crashmc incremental tests) pin both
// paths to CheckImage bit for bit.

import (
	"encoding/binary"
	"slices"

	"metaupdate/internal/ffs"
)

// incScratch is the incremental merge's reusable per-checker state. The
// mark slices are stamped with the checker's epoch, so nothing is cleared
// between checks.
type incScratch struct {
	fragMark []uint64  // frag idx patched this check
	patchOwn []ffs.Ino // patched owner (valid when fragMark matches)
	patchIdx []int32   // patched frag indices (frag - DataStart)

	inoMark []uint64 // pass-1 replay membership
	r1      []ffs.Ino
	dirMark []uint64 // pass-2 replay membership
	d2      []ffs.Ino
	p3Mark  []uint64
	p3      []ffs.Ino
	p4Mark  []uint64
	p4      []ffs.Ino

	// refUndo restores rep.Refs to the baseline's values at the start of
	// the next incremental merge (duplicates are harmless: every entry
	// restores the same baseline value). refsSynced says rep.Refs
	// currently holds baseline+undo state; a slow-path merge clears it.
	refUndo    []refUndo
	refsSynced bool
}

type refUndo struct {
	ino ffs.Ino
	n   int // baseline count; 0 = absent
}

func (s *incScratch) sized(nino, nfrag int) {
	if len(s.inoMark) != nino {
		s.inoMark = make([]uint64, nino)
		s.dirMark = make([]uint64, nino)
		s.p3Mark = make([]uint64, nino)
		s.p4Mark = make([]uint64, nino)
	}
	if len(s.fragMark) != nfrag {
		s.fragMark = make([]uint64, nfrag)
		s.patchOwn = make([]ffs.Ino, nfrag)
	}
	s.refsSynced = false
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// tryIncMerge attempts the spliced merge of img into dc.rep. It returns
// false — leaving dc.rep untouched beyond Refs bookkeeping — when the
// baseline or delta is outside the fast path's reach; the caller then
// runs the full epoch merge.
func (dc *DeltaChecker) tryIncMerge(img DeltaImage, dirty []int64) bool {
	art := &dc.bl.art
	sb := &dc.bl.sb
	if !art.conflictFree || !art.rootOK {
		return false
	}
	if len(dc.dirtyInos)*8 > int(sb.NInodes) {
		return false // blast radius too wide; the full merge is cheaper
	}
	root := dc.inodeRec(ffs.RootIno)
	if !root.alloc || !root.ok || !root.ip.IsDir() {
		return false // full merge early-returns; splicing doesn't apply
	}
	inc := &dc.inc
	epoch := dc.epoch

	slices.Sort(dc.dirtyInos)
	slices.Sort(dc.dirtyDirs)

	// ---- Pass 1: ownership patches ----
	// Mark every fragment referenced by a changed inode's old or new
	// claims; seed each with its surviving baseline owner.
	inc.patchIdx = inc.patchIdx[:0]
	mark := func(r *inodeRec) {
		for i := range r.steps {
			st := &r.steps[i]
			if st.kind != claimStepKind {
				continue
			}
			for f := st.start; f < st.start+st.n; f++ {
				idx := f - sb.DataStart
				if inc.fragMark[idx] == epoch {
					continue
				}
				inc.fragMark[idx] = epoch
				inc.patchIdx = append(inc.patchIdx, idx)
				if u := art.ownBase[idx]; u != 0 && dc.inoStamp[u] != epoch {
					inc.patchOwn[idx] = u // unchanged claimant keeps its claim
				} else {
					inc.patchOwn[idx] = 0
				}
			}
		}
	}
	for _, c := range dc.dirtyInos {
		if old := &dc.bl.st.inodes[c]; old.alloc {
			mark(old)
		}
		if fresh := &dc.freshIno[c]; fresh.alloc {
			mark(fresh)
		}
	}
	// First (lowest-inode) claimant wins, exactly like ascending merge
	// order: dirtyInos is sorted, so the min-update settles each patched
	// fragment's winner.
	for _, c := range dc.dirtyInos {
		fresh := &dc.freshIno[c]
		if !fresh.alloc {
			continue
		}
		for i := range fresh.steps {
			st := &fresh.steps[i]
			if st.kind != claimStepKind {
				continue
			}
			for f := st.start; f < st.start+st.n; f++ {
				idx := f - sb.DataStart
				if po := inc.patchOwn[idx]; po == 0 || c < po {
					inc.patchOwn[idx] = c
				}
			}
		}
	}
	// Replay set: the changed inodes plus any unchanged owner a patch
	// demoted (its claims now cross-link against the new winner).
	inc.r1 = inc.r1[:0]
	for _, c := range dc.dirtyInos {
		inc.inoMark[c] = epoch
		inc.r1 = append(inc.r1, c)
	}
	for _, idx := range inc.patchIdx {
		u := art.ownBase[idx]
		if u != 0 && dc.inoStamp[u] != epoch && inc.patchOwn[idx] != u && inc.inoMark[u] != epoch {
			inc.inoMark[u] = epoch
			inc.r1 = append(inc.r1, u)
		}
	}
	slices.Sort(inc.r1)

	// ---- Refs: restore baseline values, then apply this delta ----
	rep := &dc.rep
	rep.Findings = rep.Findings[:0]
	if inc.refsSynced {
		for _, u := range inc.refUndo {
			if u.n == 0 {
				delete(rep.Refs, u.ino)
			} else {
				rep.Refs[u.ino] = u.n
			}
		}
	} else {
		if rep.Refs == nil {
			rep.Refs = make(map[ffs.Ino]int, len(art.rep.Refs))
		} else {
			clear(rep.Refs)
		}
		for k, v := range art.rep.Refs {
			rep.Refs[k] = v
		}
		inc.refsSynced = true
	}
	inc.refUndo = inc.refUndo[:0]

	// ---- Pass 1 emission and counters ----
	alloc := art.rep.AllocatedInodes
	frags := art.rep.ReferencedFrags
	for _, c := range dc.dirtyInos {
		alloc += b2i(dc.freshIno[c].alloc) - b2i(dc.bl.st.inodes[c].alloc)
	}
	segs := art.segs[0]
	si := 0
	for _, ino := range inc.r1 {
		for si < len(segs) && segs[si].ino < ino {
			rep.Findings = append(rep.Findings, art.rep.Findings[segs[si].start:segs[si].end]...)
			si++
		}
		if si < len(segs) && segs[si].ino == ino {
			si++ // superseded by the replay below
		}
		r := dc.inodeRec(ino)
		if !r.alloc {
			frags -= int(art.success[ino])
			continue
		}
		success := 0
		for i := range r.steps {
			st := &r.steps[i]
			if st.kind != claimStepKind {
				rep.Findings = append(rep.Findings, Finding{Kind: st.kind, Ino: ino, Detail: st.detail})
				continue
			}
			for f := st.start; f < st.start+st.n; f++ {
				idx := f - sb.DataStart
				owner := art.ownBase[idx]
				if inc.fragMark[idx] == epoch {
					owner = inc.patchOwn[idx]
				}
				if owner != ino {
					rep.add(CrossLink, ino, "fragment %d also owned by inode %d", f, owner)
					continue
				}
				success++
			}
		}
		frags += success - int(art.success[ino])
	}
	for ; si < len(segs); si++ {
		rep.Findings = append(rep.Findings, art.rep.Findings[segs[si].start:segs[si].end]...)
	}
	rep.AllocatedInodes = alloc
	rep.ReferencedFrags = frags

	// ---- Pass 2: affected directories ----
	inc.d2 = inc.d2[:0]
	addD2 := func(d ffs.Ino) {
		if inc.dirMark[d] != epoch {
			inc.dirMark[d] = epoch
			inc.d2 = append(inc.d2, d)
		}
	}
	for _, d := range dc.dirtyDirs {
		addD2(d)
	}
	for _, c := range dc.dirtyInos {
		old, fresh := &dc.bl.st.inodes[c], &dc.freshIno[c]
		oldV, newV := old.alloc && old.ok, fresh.alloc && fresh.ok
		if oldV != newV || old.ip.Mode != fresh.ip.Mode {
			// The inode looks different to directory entries naming it.
			for _, d := range art.refDirs[c] {
				addD2(d)
			}
		}
		if (oldV && old.ip.IsDir()) || (newV && fresh.ip.IsDir()) {
			addD2(c)
		}
	}
	slices.Sort(inc.d2)

	// Withdraw the affected directories' baseline Refs contributions (the
	// replay below re-adds the current ones) and note every touched
	// target for the pass-3 sweep and the next check's undo.
	inc.p3 = inc.p3[:0]
	noteRef := func(t ffs.Ino) {
		inc.refUndo = append(inc.refUndo, refUndo{t, art.rep.Refs[t]})
		if uint32(t) >= 2 && uint32(t) < sb.NInodes && inc.p3Mark[t] != epoch {
			inc.p3Mark[t] = epoch
			inc.p3 = append(inc.p3, t)
		}
	}
	for _, d := range inc.d2 {
		if old := &dc.bl.st.inodes[d]; old.alloc && old.ok && old.ip.IsDir() {
			dr := &dc.bl.st.dirs[d]
			for i := range dr.steps {
				if st := &dr.steps[i]; !st.bad {
					noteRef(st.ino)
					if n := rep.Refs[st.ino] - 1; n == 0 {
						delete(rep.Refs, st.ino)
					} else {
						rep.Refs[st.ino] = n
					}
				}
			}
		}
		if r := dc.inodeRec(d); r.alloc && r.ok && r.ip.IsDir() {
			dr := dc.dirRec(d)
			for i := range dr.steps {
				if st := &dr.steps[i]; !st.bad {
					noteRef(st.ino)
				}
			}
		}
	}
	segs = art.segs[1]
	si = 0
	for _, d := range inc.d2 {
		for si < len(segs) && segs[si].ino < d {
			rep.Findings = append(rep.Findings, art.rep.Findings[segs[si].start:segs[si].end]...)
			si++
		}
		if si < len(segs) && segs[si].ino == d {
			si++
		}
		if r := dc.inodeRec(d); r.alloc && r.ok && r.ip.IsDir() {
			mergeDir(sb, dc, d, dc.dirRec(d), rep)
		}
	}
	for ; si < len(segs); si++ {
		rep.Findings = append(rep.Findings, art.rep.Findings[segs[si].start:segs[si].end]...)
	}

	// ---- Pass 3: changed records or moved reference counts ----
	for _, c := range dc.dirtyInos {
		if inc.p3Mark[c] != epoch {
			inc.p3Mark[c] = epoch
			inc.p3 = append(inc.p3, c)
		}
	}
	// Keep only inos whose count actually moved or record changed.
	keep := inc.p3[:0]
	for _, t := range inc.p3 {
		if dc.inoStamp[t] == epoch || rep.Refs[t] != art.rep.Refs[t] {
			keep = append(keep, t)
		}
	}
	inc.p3 = keep
	slices.Sort(inc.p3)
	segs = art.segs[2]
	si = 0
	for _, ino := range inc.p3 {
		for si < len(segs) && segs[si].ino < ino {
			rep.Findings = append(rep.Findings, art.rep.Findings[segs[si].start:segs[si].end]...)
			si++
		}
		if si < len(segs) && segs[si].ino == ino {
			si++
		}
		if r := dc.inodeRec(ino); r.alloc && r.ok {
			mergeLink(&r.ip, ino, rep.Refs[ino], rep)
		}
	}
	for ; si < len(segs); si++ {
		rep.Findings = append(rep.Findings, art.rep.Findings[segs[si].start:segs[si].end]...)
	}

	// ---- Pass 4: inode bitmap ----
	ibmOff := int64(sb.IBmapStart) * ffs.FragSize
	ibmLen := (int64(sb.NInodes) + 7) / 8
	inc.p4 = inc.p4[:0]
	for _, c := range dc.dirtyInos {
		inc.p4Mark[c] = epoch
		inc.p4 = append(inc.p4, c)
	}
	base := dc.bl.base
	for _, s := range dirty {
		lo, hi := s*sectorSize, (s+1)*sectorSize
		if lo < ibmOff {
			lo = ibmOff
		}
		if hi > ibmOff+ibmLen {
			hi = ibmOff + ibmLen
		}
		if lo >= hi {
			continue
		}
		nb, db := base.Range(lo, hi-lo), img.Range(lo, hi-lo)
		for i := 0; i < len(nb); {
			// The delta usually flips a handful of bits in a 512-byte
			// sector; skip equal stretches a word at a time.
			if len(nb)-i >= 8 && binary.LittleEndian.Uint64(nb[i:]) == binary.LittleEndian.Uint64(db[i:]) {
				i += 8
				continue
			}
			x := nb[i] ^ db[i]
			for x != 0 {
				bit := x&(x-1) ^ x
				ino := ffs.Ino(((lo - ibmOff) + int64(i)) * 8)
				for b := bit; b > 1; b >>= 1 {
					ino++
				}
				if uint32(ino) >= 2 && uint32(ino) < sb.NInodes && inc.p4Mark[ino] != epoch {
					inc.p4Mark[ino] = epoch
					inc.p4 = append(inc.p4, ino)
				}
				x &^= bit
			}
			i++
		}
	}
	slices.Sort(inc.p4)
	ibm := img.Range(ibmOff, ibmLen)
	segs = art.segs[3]
	si = 0
	for _, ino := range inc.p4 {
		for si < len(segs) && segs[si].ino < ino {
			rep.Findings = append(rep.Findings, art.rep.Findings[segs[si].start:segs[si].end]...)
			si++
		}
		if si < len(segs) && segs[si].ino == ino {
			si++
		}
		r := dc.inodeRec(ino)
		mergeIbm(r.alloc && r.ok, ibm[ino/8]&(1<<(uint(ino)%8)) != 0, ino, rep)
	}
	for ; si < len(segs); si++ {
		rep.Findings = append(rep.Findings, art.rep.Findings[segs[si].start:segs[si].end]...)
	}

	// ---- Pass 4: fragment aggregates by contribution delta ----
	fbmOff := int64(sb.FBmapStart) * ffs.FragSize
	fbmLen := (int64(sb.TotalFrags) + 7) / 8
	baseFbm := base.Range(fbmOff, fbmLen)
	deltaFbm := img.Range(fbmOff, fbmLen)
	fbit := func(bm []byte, f int32) bool { return bm[f/8]&(1<<(uint(f)%8)) != 0 }
	stale, leaks := art.aggStale, art.aggLeaks
	for _, idx := range inc.patchIdx {
		f := idx + sb.DataStart
		oldOwned, newOwned := art.ownBase[idx] != 0, inc.patchOwn[idx] != 0
		oldSet, newSet := fbit(baseFbm, f), fbit(deltaFbm, f)
		stale += b2i(newOwned && !newSet) - b2i(oldOwned && !oldSet)
		leaks += b2i(!newOwned && newSet) - b2i(!oldOwned && oldSet)
	}
	for _, s := range dirty {
		lo, hi := s*sectorSize, (s+1)*sectorSize
		if lo < fbmOff {
			lo = fbmOff
		}
		if hi > fbmOff+fbmLen {
			hi = fbmOff + fbmLen
		}
		for off := lo; off < hi; {
			i := off - fbmOff
			if hi-off >= 8 && binary.LittleEndian.Uint64(baseFbm[i:]) == binary.LittleEndian.Uint64(deltaFbm[i:]) {
				off += 8
				continue
			}
			x := baseFbm[i] ^ deltaFbm[i]
			for x != 0 {
				bit := x&(x-1) ^ x
				f := int32(i * 8)
				for b := bit; b > 1; b >>= 1 {
					f++
				}
				if f >= sb.DataStart && f < sb.TotalFrags && inc.fragMark[f-sb.DataStart] != epoch {
					owned := art.ownBase[f-sb.DataStart] != 0
					newSet := fbit(deltaFbm, f)
					stale += b2i(owned && !newSet) - b2i(owned && newSet)
					leaks += b2i(!owned && newSet) - b2i(!owned && !newSet)
				}
				x &^= bit
			}
			off++
		}
	}
	mergeFragAgg(stale, leaks, rep)
	return true
}
