package fsck

// Pass-pipelined parallel checking, after pFSCK: the inode scan fans out
// across goroutines, and every directory it discovers flows through a
// bounded channel to concurrent dirent-walk workers while the scan is
// still running — pass-level parallelism within one image, for when
// images are large but crash instants are few. The merge (link counts,
// bitmap reconciliation, and all finding emission) stays single-threaded
// and ascending-inode-ordered, so the report is byte-identical to
// CheckImage's no matter the worker count.

import (
	"sync"
	"sync/atomic"

	"metaupdate/internal/ffs"
)

// CheckImagePipelined is CheckImage with pass-level parallelism. workers
// <= 1 degenerates to the serial checker. img must support concurrent
// Range (Bytes does) or implement Forkable; each goroutine derives through
// its own fork.
func CheckImagePipelined(img Image, workers int) *Report {
	if workers <= 1 {
		return CheckImage(img)
	}
	rep := &Report{Refs: make(map[ffs.Ino]int)}
	var sb ffs.Superblock
	if err := decodeSB(img, &sb); err != nil {
		rep.add(BadSuperblock, 0, "%v", err)
		return rep
	}
	st := newCheckState(sb)
	deriveAllParallel(img, st, workers)
	st.merge(img, rep)
	return rep
}

func forkOf(img Image) Image {
	if f, ok := img.(Forkable); ok {
		return f.Fork()
	}
	return img
}

// deriveAllParallel fills st's records using workers goroutines per stage:
// scan workers claim 64-inode chunks off an atomic cursor and derive inode
// records; each discovered valid directory is handed through a bounded
// channel to dirent workers that derive its parse concurrently. Records
// land in disjoint slice slots, and the channel send orders each inode
// record before its directory parse, so the fill is race-free; the caller
// merges only after both stages drain.
func deriveAllParallel(img Image, st *checkState, workers int) {
	nino := st.sb.NInodes
	dirCh := make(chan ffs.Ino, 256)
	var cursor atomic.Uint32
	const chunk = 64

	var scanWG, dirWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			d := deriver{img: forkOf(img), sb: &st.sb}
			for {
				lo := cursor.Add(chunk) - chunk
				if lo >= nino {
					return
				}
				hi := lo + chunk
				if hi > nino {
					hi = nino
				}
				if lo < 2 {
					lo = 2
				}
				for ino := ffs.Ino(lo); uint32(ino) < hi; ino++ {
					r := &st.inodes[ino]
					d.deriveInode(ino, r)
					if r.alloc && r.ok && r.ip.IsDir() {
						dirCh <- ino
					}
				}
			}
		}()
		dirWG.Add(1)
		go func() {
			defer dirWG.Done()
			d := deriver{img: forkOf(img), sb: &st.sb}
			for ino := range dirCh {
				r := &st.inodes[ino]
				d.deriveDir(ino, &r.ip, &st.dirs[ino])
			}
		}()
	}
	scanWG.Wait()
	close(dirCh)
	dirWG.Wait()
}
