package fsck_test

import (
	"fmt"
	"testing"

	"metaupdate/internal/cache"
	"metaupdate/internal/core"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
	"metaupdate/internal/ordering"
	"metaupdate/internal/sim"
)

// buildScheme constructs the ordering scheme and matching driver config.
func buildScheme(name string) (ffs.Ordering, dev.Config) {
	switch name {
	case "noorder":
		return ordering.NewNoOrder(), dev.Config{Mode: dev.ModeIgnore}
	case "conventional":
		return ordering.NewConventional(), dev.Config{Mode: dev.ModeIgnore}
	case "flag":
		return ordering.NewFlag(), dev.Config{Mode: dev.ModeFlag, Sem: dev.SemPart, NR: true}
	case "chains":
		return ordering.NewChains(), dev.Config{Mode: dev.ModeChains}
	case "softupdates":
		return core.New(), dev.Config{Mode: dev.ModeIgnore}
	}
	panic("unknown scheme " + name)
}

type crashRig struct {
	eng *sim.Engine
	dsk *disk.Disk
	drv *dev.Driver
	c   *cache.Cache
	fs  *ffs.FS
}

// buildCrashRig assembles a complete system running `workload` as a user
// process with the syncer daemon active.
func buildCrashRig(t testing.TB, scheme string, allocInit bool, workload func(p *sim.Proc, fs *ffs.FS)) *crashRig {
	t.Helper()
	ord, dcfg := buildScheme(scheme)
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 48<<20)
	if _, err := ffs.Format(dsk, ffs.FormatParams{TotalBytes: 48 << 20, NInodes: 2048}); err != nil {
		t.Fatal(err)
	}
	drv := dev.New(eng, dsk, dcfg)
	cpu := &sim.CPU{}
	ccfg := cache.Config{MaxBytes: 4 << 20, SyncerFraction: 8}
	if scheme == "flag" || scheme == "chains" {
		ccfg.CB = true
	}
	c := cache.New(eng, drv, cpu, ccfg)
	r := &crashRig{eng: eng, dsk: dsk, drv: drv, c: c}
	eng.Spawn("boot", func(p *sim.Proc) {
		var err error
		r.fs, err = ffs.Mount(eng, cpu, c, ord, ffs.Config{AllocInit: allocInit}, p)
		if err != nil {
			t.Error(err)
			return
		}
		c.StartSyncer()
		eng.Spawn("user", func(p *sim.Proc) {
			workload(p, r.fs)
			c.StopSyncer()
		})
	})
	return r
}

// metadataChurn is the crash-test workload: stamped-file creates, appends,
// removes, renames, directory growth — every structural change type.
func metadataChurn(p *sim.Proc, fs *ffs.FS) {
	dir, err := fs.Mkdir(p, ffs.RootIno, "work")
	if err != nil {
		return
	}
	sub, _ := fs.Mkdir(p, dir, "sub")
	for round := 0; round < 3; round++ {
		for i := 0; i < 12; i++ {
			name := fmt.Sprintf("f%d-%d", round, i)
			ino, err := fs.Create(p, dir, name)
			if err != nil {
				continue
			}
			fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 1024+i*1500))
			if i%3 == 0 {
				// Append to force fragment extension.
				fs.WriteAt(p, ino, uint64(1024+i*1500), fsck.MakeStampedData(ino, 2048))
			}
		}
		for i := 0; i < 12; i += 2 {
			fs.Unlink(p, dir, fmt.Sprintf("f%d-%d", round, i))
		}
		fs.Rename(p, dir, fmt.Sprintf("f%d-1", round), sub, fmt.Sprintf("r%d", round))
		if round > 0 {
			fs.Link(p, sub, dir, "ignored") // fails: sub is a dir; exercise error path
			if ino, err := fs.Lookup(p, sub, fmt.Sprintf("r%d", round-1)); err == nil {
				fs.Link(p, ino, dir, fmt.Sprintf("hard%d", round))
			}
		}
		// Partial truncation (rule 2 for the shed fragments).
		if ino, err := fs.Lookup(p, dir, fmt.Sprintf("f%d-3", round)); err == nil {
			fs.Truncate(p, ino, 900)
		}
		// Directory moves (".." retargeting and link-count migration).
		if d, err := fs.Mkdir(p, dir, fmt.Sprintf("mv%d", round)); err == nil {
			_ = d
			fs.RenameDir(p, dir, fmt.Sprintf("mv%d", round), sub, fmt.Sprintf("mv%d", round))
		}
		// One large file per round: appends through the single-indirect
		// zone exercise allocindirect rollback vs. the inode size.
		if ino, err := fs.Create(p, dir, fmt.Sprintf("big%d", round)); err == nil {
			fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, (ffs.NDirect+3)*ffs.BlockSize))
		}
	}
	fs.Sync(p)
}

// crashAt replays the deterministic workload and freezes the system at t.
// The returned image is a CloneImage copy: Crash's prefix commits have
// landed, and nothing can mutate it behind the caller's back.
func crashAt(t testing.TB, scheme string, allocInit bool, at sim.Time) []byte {
	r := buildCrashRig(t, scheme, allocInit, metadataChurn)
	r.eng.RunUntil(at)
	r.drv.Crash(at)
	return r.dsk.CloneImage()
}

// totalRuntime measures the full (uncrashed) duration of the workload.
func totalRuntime(t testing.TB, scheme string, allocInit bool) sim.Time {
	r := buildCrashRig(t, scheme, allocInit, metadataChurn)
	r.eng.Run()
	return r.eng.Now()
}

func TestCleanImagePassesFsck(t *testing.T) {
	for _, scheme := range []string{"noorder", "conventional", "flag", "chains", "softupdates"} {
		t.Run(scheme, func(t *testing.T) {
			r := buildCrashRig(t, scheme, true, metadataChurn)
			r.eng.Run()
			rep := fsck.Check(r.dsk.Image())
			if v := rep.Violations(); len(v) != 0 {
				t.Fatalf("clean %s image has violations: %v", scheme, v)
			}
			if len(rep.Repairables()) != 0 {
				t.Errorf("clean %s image has repairables: %v", scheme, rep.Repairables())
			}
			if rep.AllocatedInodes < 10 {
				t.Errorf("workload left only %d inodes", rep.AllocatedInodes)
			}
		})
	}
}

// The headline correctness result: every ordered scheme preserves
// structural integrity at any crash instant; only fsck-repairable damage
// (leaks, overcounts, stale bitmaps) is allowed.
func TestOrderedSchemesSurviveCrashes(t *testing.T) {
	for _, scheme := range []string{"conventional", "flag", "chains", "softupdates"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			total := totalRuntime(t, scheme, true)
			if total <= 0 {
				t.Fatal("workload ran in zero time")
			}
			for pct := 2; pct <= 98; pct += 6 {
				at := total * sim.Time(pct) / 100
				img := crashAt(t, scheme, true, at)
				rep := fsck.Check(img)
				if v := rep.Violations(); len(v) != 0 {
					t.Fatalf("%s crash at %d%% (%v): %d violations, first: %v",
						scheme, pct, at, len(v), v[0])
				}
			}
		})
	}
}

// No Order must actually be unsafe: across the crash sweep at least one
// instant shows an integrity violation (otherwise the checker or the
// schemes are vacuous).
func TestNoOrderIsActuallyUnsafe(t *testing.T) {
	total := totalRuntime(t, "noorder", false)
	violations := 0
	for pct := 2; pct <= 98; pct += 2 {
		at := total * sim.Time(pct) / 100
		img := crashAt(t, "noorder", false, at)
		rep := fsck.Check(img)
		violations += len(rep.Violations())
	}
	if violations == 0 {
		t.Fatal("No Order survived every crash point; the fsck oracle is vacuous")
	}
}

// Allocation initialization: with it enforced, no crash instant may expose
// another file's data; without it, the reuse workload must exhibit the
// security hole at some instant.
func reuseChurn(p *sim.Proc, fs *ffs.FS) {
	// Fill a good part of the FS, sync, delete, and re-create so new files
	// land on fragments holding old (stamped, durable) contents.
	var old []ffs.Ino
	for i := 0; i < 120; i++ {
		ino, err := fs.Create(p, ffs.RootIno, fmt.Sprintf("old%d", i))
		if err != nil {
			break
		}
		old = append(old, ino)
		fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 8192))
	}
	fs.Sync(p)
	for i := range old {
		fs.Unlink(p, ffs.RootIno, fmt.Sprintf("old%d", i))
	}
	fs.Sync(p)
	for i := 0; i < 120; i++ {
		ino, err := fs.Create(p, ffs.RootIno, fmt.Sprintf("new%d", i))
		if err != nil {
			break
		}
		fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 8192))
	}
	fs.Sync(p)
}

func TestAllocationInitializationSecurity(t *testing.T) {
	run := func(scheme string, allocInit bool) int {
		r := buildCrashRig(t, scheme, allocInit, reuseChurn)
		r.eng.Run()
		total := r.eng.Now()
		found := 0
		for pct := 50; pct <= 98; pct += 4 {
			at := total * sim.Time(pct) / 100
			r := buildCrashRig(t, scheme, allocInit, reuseChurn)
			r.eng.RunUntil(at)
			r.drv.Crash(at)
			found += len(fsck.ContentViolations(r.dsk.Image()))
		}
		return found
	}
	if got := run("softupdates", true); got != 0 {
		t.Errorf("soft updates with allocation initialization leaked data: %d findings", got)
	}
	if got := run("conventional", true); got != 0 {
		t.Errorf("conventional with allocation initialization leaked data: %d findings", got)
	}
	if got := run("conventional", false); got == 0 {
		t.Log("conventional without allocation initialization showed no leak in this sweep " +
			"(hazard window not hit); acceptable but weaker")
	} else {
		t.Logf("conventional without allocation initialization leaked at %d crash points (expected)", got)
	}
}

func TestCorruptionDetection(t *testing.T) {
	// Build a clean image, then introduce deliberate corruption and check
	// the right finding appears.
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	if v := fsck.Check(img).Violations(); len(v) != 0 {
		t.Fatalf("baseline not clean: %v", v)
	}

	// Find an allocated file inode and corrupt its first pointer.
	rep := fsck.Check(img)
	_ = rep
	sb := superblockOf(t, img)
	var victim ffs.Ino
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile && ip.Size > 0 {
			victim = ino
			// Point it at the superblock region.
			ip.Direct[0] = 1
			ffs.EncodeInode(&ip, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	if victim == 0 {
		t.Fatal("no victim inode found")
	}
	found := false
	for _, f := range fsck.Check(img).Violations() {
		if f.Kind == fsck.BadPointer && f.Ino == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("corrupted pointer not detected")
	}
}

func TestCrossLinkDetection(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	// Make two file inodes share a block.
	var first int32
	count := 0
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes && count < 2; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile && ip.Size >= ffs.BlockSize {
			if count == 0 {
				first = ip.Direct[0]
			} else {
				ip.Direct[0] = first
				ffs.EncodeInode(&ip, img[int64(frag)*ffs.FragSize+int64(off):])
			}
			count++
		}
	}
	if count < 2 {
		t.Skip("not enough large files for cross-link test")
	}
	hasCross := false
	for _, f := range fsck.Check(img).Violations() {
		if f.Kind == fsck.CrossLink {
			hasCross = true
		}
	}
	if !hasCross {
		t.Fatal("cross-link not detected")
	}
}

func TestDanglingEntryDetection(t *testing.T) {
	r := buildCrashRig(t, "noorder", false, metadataChurn)
	r.eng.Run()
	img := r.dsk.CloneImage()
	sb := superblockOf(t, img)
	// Clear some referenced inode behind the directory's back.
	var victim ffs.Ino
	for ino := ffs.Ino(3); uint32(ino) < sb.NInodes; ino++ {
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if ip.Mode == ffs.ModeFile {
			victim = ino
			cleared := ffs.Inode{}
			ffs.EncodeInode(&cleared, img[int64(frag)*ffs.FragSize+int64(off):])
			break
		}
	}
	if victim == 0 {
		t.Fatal("no file inode found")
	}
	found := false
	for _, f := range fsck.Check(img).Violations() {
		if f.Kind == fsck.DanglingEntry {
			found = true
		}
	}
	if !found {
		t.Fatal("dangling entry not detected")
	}
}

func superblockOf(t testing.TB, img []byte) ffs.Superblock {
	t.Helper()
	d := disk.New(disk.HPC2447(), int64(len(img)))
	copy(d.Image(), img)
	// Reuse the ffs decoder via a scratch mount-free path: decode directly.
	var sb ffs.Superblock
	if err := sbDecode(img, &sb); err != nil {
		t.Fatal(err)
	}
	return sb
}

func sbDecode(img []byte, sb *ffs.Superblock) error {
	rep := fsck.Check(img)
	if len(rep.Findings) > 0 {
		for _, f := range rep.Findings {
			if f.Kind == fsck.BadSuperblock {
				return fmt.Errorf("bad superblock: %s", f.Detail)
			}
		}
	}
	// fsck validated it; decode the public fields by hand.
	le := leUint32
	sb.Magic = le(img, 0)
	sb.TotalFrags = int32(le(img, 4))
	sb.NInodes = le(img, 8)
	sb.InodeStart = int32(le(img, 12))
	sb.IBmapStart = int32(le(img, 16))
	sb.FBmapStart = int32(le(img, 20))
	sb.DataStart = int32(le(img, 24))
	return nil
}

func leUint32(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}
