package fsck_test

import (
	"testing"

	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
)

// sliceDelta is a test DeltaImage: a pristine base plus a materialized
// modified copy and the list of sectors where they (may) differ. Range
// reads the modified copy directly, so a full check of the same object is
// trivially a check of the materialized delta.
type sliceDelta struct {
	base, cur []byte
	dirty     []int64
}

func (d *sliceDelta) Len() int64                { return int64(len(d.cur)) }
func (d *sliceDelta) Range(off, n int64) []byte { return d.cur[off : off+n] }
func (d *sliceDelta) Base() fsck.Image          { return fsck.Bytes(d.base) }
func (d *sliceDelta) DirtySectors() []int64     { return d.dirty }
func (d *sliceDelta) Fork() fsck.Image          { return d }

// reset restores the modified copy to the base and clears the dirty set.
func (d *sliceDelta) reset() {
	for _, s := range d.dirty {
		copy(d.cur[s*disk.SectorSize:(s+1)*disk.SectorSize], d.base[s*disk.SectorSize:(s+1)*disk.SectorSize])
	}
	d.dirty = d.dirty[:0]
}

func newSliceDelta(base []byte) *sliceDelta {
	return &sliceDelta{base: base, cur: append([]byte(nil), base...)}
}

func splitmix(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z ^= z >> 30
	z *= 0xBF58476D1CE4B9FD
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func reportsEqual(t *testing.T, label string, got, want *fsck.Report) {
	t.Helper()
	// got may reuse a zero-length (non-nil) Findings slice; compare content.
	if len(got.Findings) != len(want.Findings) {
		t.Fatalf("%s: findings differ\ngot:  %v\nwant: %v", label, got.Findings, want.Findings)
	}
	for i := range got.Findings {
		if got.Findings[i] != want.Findings[i] {
			t.Fatalf("%s: finding %d differs\ngot:  %+v\nwant: %+v", label, i, got.Findings[i], want.Findings[i])
		}
	}
	if len(got.Refs) != len(want.Refs) {
		t.Fatalf("%s: refs differ\ngot:  %v\nwant: %v", label, got.Refs, want.Refs)
	}
	for ino, n := range want.Refs {
		if got.Refs[ino] != n {
			t.Fatalf("%s: refs[%d] = %d, want %d", label, ino, got.Refs[ino], n)
		}
	}
	if got.AllocatedInodes != want.AllocatedInodes || got.ReferencedFrags != want.ReferencedFrags {
		t.Fatalf("%s: counters differ: alloc %d/%d, frags %d/%d", label,
			got.AllocatedInodes, want.AllocatedInodes, got.ReferencedFrags, want.ReferencedFrags)
	}
}

// TestDeltaCheckerMatchesFull throws randomized sector corruptions —
// including the inode table, directory data, the bitmaps, and occasionally
// the superblock itself (the full-fallback path) — at a DeltaChecker and
// requires its spliced report to equal a from-scratch CheckImage of the
// materialized bytes every time.
func TestDeltaCheckerMatchesFull(t *testing.T) {
	for _, src := range []struct {
		name string
		at   int // percent of the workload runtime
	}{
		{"clean", 100},
		{"midcrash", 50},
	} {
		t.Run(src.name, func(t *testing.T) {
			total := totalRuntime(t, "noorder", false)
			base := crashAt(t, "noorder", false, total*sim.Time(src.at)/100)
			d := newSliceDelta(base)
			bl := fsck.NewBaseline(fsck.Bytes(base), 1)
			dc := fsck.NewDeltaChecker(bl)
			nsec := int64(len(base)) / disk.SectorSize

			rng := uint64(0xfcc1 + src.at)
			for trial := 0; trial < 80; trial++ {
				d.reset()
				for k := int(splitmix(&rng)%8) + 1; k > 0; k-- {
					var s int64
					if splitmix(&rng)%16 == 0 {
						s = 0 // superblock: must fall back, and still agree
					} else {
						s = int64(splitmix(&rng) % uint64(nsec))
					}
					sec := d.cur[s*disk.SectorSize : (s+1)*disk.SectorSize]
					sec[splitmix(&rng)%disk.SectorSize] = byte(splitmix(&rng))
					d.dirty = append(d.dirty, s)
				}
				inc := dc.Check(d)
				full := fsck.CheckImage(fsck.Bytes(d.cur))
				reportsEqual(t, src.name, inc, full)
			}
			if dc.Stats.Checks != 80 {
				t.Fatalf("checks = %d, want 80", dc.Stats.Checks)
			}
			if dc.Stats.FullFallbacks == 0 {
				t.Error("no superblock-dirty trial exercised the full fallback")
			}
			if dc.Stats.FullFallbacks == dc.Stats.Checks {
				t.Error("every trial fell back; nothing ran incrementally")
			}
		})
	}
}

// TestPipelineDeterminism checks that pass-level parallelism never changes
// the report: CheckImagePipelined at any worker count is byte-identical to
// the serial CheckImage, across repeated runs (goroutine scheduling must
// not leak into merge order). CI runs this under -race to catch unsynced
// record fills.
func TestPipelineDeterminism(t *testing.T) {
	total := totalRuntime(t, "noorder", false)
	img := crashAt(t, "noorder", false, total/2)
	want := fsck.CheckImage(fsck.Bytes(img))
	if len(want.Findings) == 0 {
		t.Fatal("mid-crash noorder image unexpectedly clean; test needs findings to order")
	}
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			got := fsck.CheckImagePipelined(fsck.Bytes(img), workers)
			reportsEqual(t, "pipelined", got, want)
		}
	}
}

// TestAllocFreeDeltaCheck pins the steady-state incremental check path at
// zero heap allocations: re-deriving a dirty inode-table sector against a
// warm DeltaChecker must reuse every piece of scratch (epoch-stamped
// tables, record slices, the report and its Refs map).
func TestAllocFreeDeltaCheck(t *testing.T) {
	total := totalRuntime(t, "conventional", false)
	base := crashAt(t, "conventional", false, total)
	sb := superblockOf(t, base)

	// Dirty the inode-table sector holding inode 3 (content unchanged:
	// DirtySectors is an over-approximation, exactly like a crash overlay
	// rewriting identical bytes). The checker still re-derives everything
	// reachable from that sector.
	frag, off := sb.InodeFrag(3)
	s := (int64(frag)*ffs.FragSize + int64(off)) / disk.SectorSize
	d := newSliceDelta(base)
	d.dirty = append(d.dirty, s)

	bl := fsck.NewBaseline(fsck.Bytes(base), 1)
	dc := fsck.NewDeltaChecker(bl)
	dc.Check(d) // warm the scratch: report capacity, Refs keys, dep slices
	dc.Check(d)

	if avg := testing.AllocsPerRun(50, func() { dc.Check(d) }); avg != 0 {
		t.Errorf("steady-state incremental check allocates %.1f times per run, want 0", avg)
	}
	if dc.Stats.FullFallbacks != 0 {
		t.Fatalf("alloc test fell back to full checks: %+v", dc.Stats)
	}
	if dc.Stats.SplicedMerges == 0 {
		t.Fatalf("alloc test never took the spliced merge: %+v", dc.Stats)
	}
}
