package fsck

import (
	"encoding/binary"

	"metaupdate/internal/ffs"
)

// WalkEntry is one live directory entry visited by WalkTree ("." and ".."
// are skipped).
type WalkEntry struct {
	Parent ffs.Ino // directory holding the entry
	Depth  int     // 0 for entries of the root directory
	Name   string
	Ftype  uint8
	Ino    ffs.Ino   // the entry's target
	Inode  ffs.Inode // target's decoded inode (zero value when Ino is out of range)
}

// WalkTree walks the image's directory tree from the root in breadth-first
// order, calling fn for every live entry; fn returning false stops the
// walk. Parents are always visited before their children's entries, so fn
// can classify a directory when its entry appears and consult that
// classification for the entries inside it.
//
// The walk is corruption-tolerant — it is meant for oracles over crash
// images, where structural damage is fsck's business, not the walker's: a
// bad superblock walks nothing, out-of-range pointers and malformed entry
// chains end the affected directory, revisited directories (cycles,
// cross-linked entries) are skipped, and entries naming out-of-range
// inodes are reported with a zero Inode and never descended into.
func WalkTree(img Image, fn func(e WalkEntry) bool) {
	var sb ffs.Superblock
	if err := decodeSB(img, &sb); err != nil {
		return
	}
	c := &checker{img: img, sb: sb}
	type dirAt struct {
		ino   ffs.Ino
		depth int
	}
	visited := make([]bool, sb.NInodes)
	if uint32(ffs.RootIno) >= sb.NInodes {
		return
	}
	visited[ffs.RootIno] = true
	queue := []dirAt{{ffs.RootIno, 0}}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		ip := c.readInode(d.ino)
		if !ip.IsDir() {
			continue
		}
		data := c.dirData(d.ino, ip)
		for chunk := 0; chunk+ffs.DirChunk <= len(data); chunk += ffs.DirChunk {
			off := chunk
			for off+8 <= chunk+ffs.DirChunk {
				le := binary.LittleEndian
				entIno := ffs.Ino(le.Uint32(data[off:]))
				reclen := int(le.Uint16(data[off+4:]))
				namelen := int(data[off+6])
				if reclen < 8 || off+reclen > chunk+ffs.DirChunk || off+8+namelen > off+reclen {
					break // malformed chain; fsck reports it
				}
				if entIno != 0 {
					name := string(data[off+8 : off+8+namelen])
					if name != "." && name != ".." {
						e := WalkEntry{Parent: d.ino, Depth: d.depth,
							Name: name, Ftype: data[off+7], Ino: entIno}
						inRange := entIno >= 2 && uint32(entIno) < sb.NInodes
						if inRange {
							e.Inode = c.readInode(entIno)
						}
						if !fn(e) {
							return
						}
						if inRange && e.Inode.IsDir() && !visited[entIno] {
							visited[entIno] = true
							queue = append(queue, dirAt{entIno, d.depth + 1})
						}
					}
				}
				off += reclen
			}
		}
	}
}
