package fsck

// The checker is structured as pure per-object derivations feeding a
// deterministic global merge — the decomposition behind both the
// incremental checker (incremental.go) and the pass-pipelined parallel
// checker (pipeline.go):
//
//   - deriveInode produces, for one inode, an ordered script of steps: the
//     findings its block-map walk emits plus the fragment runs it claims.
//     The script depends only on bytes the walk itself reads (the inode
//     slot, its indirect blocks), which deriveInode records as sector
//     ranges in the record's deps.
//
//   - deriveDir produces, for one directory, the parsed entry list (with
//     pre-rendered bad-format findings) and the "."/".." summary. It
//     depends only on the inode's direct data blocks, also recorded.
//
//   - mergeReport replays the scripts in ascending-inode order against a
//     shared fragment-ownership table, emitting cross-links, reference
//     counts, link-count results, and bitmap reconciliation exactly as the
//     historical single-pass checker did. Merge order is fixed, so the
//     report is byte-deterministic regardless of how (or when, or on which
//     goroutine) the records were derived.
//
// Derivations are pure functions of the image bytes they read, which is
// what makes records cacheable across delta images (see incremental.go)
// and derivable concurrently (see pipeline.go).

import (
	"encoding/binary"
	"fmt"

	"metaupdate/internal/ffs"
)

// claimStepKind marks an istep as a fragment-run claim rather than a
// pre-rendered finding.
const claimStepKind Kind = -1

// istep is one step of an inode's replayable walk script.
type istep struct {
	kind   Kind // claimStepKind, or the Finding kind
	start  int32
	n      int32
	detail string
}

// secRange is a half-open sector range [lo, hi).
type secRange struct{ lo, hi int64 }

// inodeRec is the cached derivation for one inode slot.
type inodeRec struct {
	alloc bool // inode is allocated
	ok    bool // allocated with a valid mode (member of the inode view)
	ip    ffs.Inode
	steps []istep
	// deps are the sectors the derivation read: the inode's own table
	// sector plus any indirect blocks. (Not the claimed data fragments —
	// the walk never reads those.)
	deps []secRange
}

func (r *inodeRec) addf(k Kind, format string, args ...interface{}) {
	r.steps = append(r.steps, istep{kind: k, detail: fmt.Sprintf(format, args...)})
}

func (r *inodeRec) dep(off, n int64) {
	r.deps = append(r.deps, secRange{off / sectorSize, (off + n + sectorSize - 1) / sectorSize})
}

// dstep is one parsed directory entry (or a pre-rendered bad-format
// finding terminating a chunk). Entry names live in the owning dirRec's
// names arena — a string field here would cost one heap allocation per
// entry per re-parse, which the incremental checker's steady state can't
// afford.
type dstep struct {
	bad              bool
	detail           string
	ino              ffs.Ino
	nameOff, nameLen int32
	ftype            byte
}

// dirRec is the cached parse for one directory's data.
type dirRec struct {
	empty             bool // Size == 0: nothing to check
	sawDot, sawDotdot bool
	steps             []dstep
	names             []byte // arena backing the steps' entry names
	deps              []secRange
}

func (r *dirRec) name(st *dstep) []byte {
	return r.names[st.nameOff : st.nameOff+st.nameLen]
}

func (r *dirRec) dep(off, n int64) {
	r.deps = append(r.deps, secRange{off / sectorSize, (off + n + sectorSize - 1) / sectorSize})
}

// deriver derives records from one image. Not safe for concurrent use
// (dirBuf scratch, and Image implementations may rotate scratch); the
// pipeline gives each goroutine its own deriver over a forked image.
type deriver struct {
	img    Image
	sb     *ffs.Superblock
	dirBuf []byte
}

// deriveInode computes ino's walk script into r, resetting it first.
func (d *deriver) deriveInode(ino ffs.Ino, r *inodeRec) {
	r.steps = r.steps[:0]
	r.deps = r.deps[:0]
	frag, off := d.sb.InodeFrag(ino)
	ioff := int64(frag)*ffs.FragSize + int64(off)
	r.dep(ioff, ffs.InodeSize)
	ffs.DecodeInodeInto(&r.ip, d.img.Range(ioff, ffs.InodeSize))
	r.alloc = r.ip.Allocated()
	r.ok = false
	if !r.alloc {
		return
	}
	if r.ip.Mode != ffs.ModeFile && r.ip.Mode != ffs.ModeDir {
		r.addf(TypeMismatch, "bad mode %#x", r.ip.Mode)
		return
	}
	r.ok = true
	d.walkFile(r)
}

// claim appends a claim step for [start, start+n), or a BadPointer finding
// if the run leaves the data region — mirroring checker.claim except that
// cross-link detection happens at merge time (it needs global state).
func (d *deriver) claim(r *inodeRec, start int32, n int) bool {
	if start < d.sb.DataStart || start+int32(n) > d.sb.TotalFrags {
		r.addf(BadPointer, "fragment run [%d,%d) outside data region", start, start+int32(n))
		return false
	}
	r.steps = append(r.steps, istep{kind: claimStepKind, start: start, n: int32(n)})
	return true
}

// walkFile mirrors checker.claimFile step for step.
func (d *deriver) walkFile(r *inodeRec) {
	ip := &r.ip
	nblocks := (int(ip.Size) + ffs.BlockSize - 1) / ffs.BlockSize
	runLen := func(bi int) int {
		if bi == nblocks-1 {
			rem := int(ip.Size) % ffs.BlockSize
			if rem == 0 {
				return ffs.BlockFrags
			}
			return (rem + ffs.FragSize - 1) / ffs.FragSize
		}
		return ffs.BlockFrags
	}
	bi := 0
	for ; bi < nblocks && bi < ffs.NDirect; bi++ {
		if ip.Direct[bi] == 0 {
			r.addf(ShortFile, "size implies direct block %d but it is unset", bi)
			continue
		}
		d.claim(r, ip.Direct[bi], runLen(bi))
	}
	if bi < nblocks && ip.Indir == 0 {
		r.addf(ShortFile, "size %d implies an indirect block but none is set", ip.Size)
		return
	}
	if ip.Indir != 0 {
		if d.claim(r, ip.Indir, ffs.BlockFrags) {
			r.dep(int64(ip.Indir)*ffs.FragSize, ffs.BlockSize)
			data := d.img.Range(int64(ip.Indir)*ffs.FragSize, ffs.BlockSize)
			for i := 0; i < ffs.PtrsPerBlock && bi < nblocks; i, bi = i+1, bi+1 {
				ptr := int32(binary.LittleEndian.Uint32(data[i*4:]))
				if ptr == 0 {
					r.addf(ShortFile, "hole at indirect slot %d", i)
					continue
				}
				d.claim(r, ptr, runLen(bi))
			}
		} else {
			bi += ffs.PtrsPerBlock
		}
	}
	if ip.Dindir != 0 {
		if d.claim(r, ip.Dindir, ffs.BlockFrags) {
			r.dep(int64(ip.Dindir)*ffs.FragSize, ffs.BlockSize)
			var l1ptrs [ffs.PtrsPerBlock]int32
			ddata := d.img.Range(int64(ip.Dindir)*ffs.FragSize, ffs.BlockSize)
			for l1 := range l1ptrs {
				l1ptrs[l1] = int32(binary.LittleEndian.Uint32(ddata[l1*4:]))
			}
			for l1 := 0; l1 < ffs.PtrsPerBlock && bi < nblocks; l1++ {
				l1ptr := l1ptrs[l1]
				if l1ptr == 0 {
					r.addf(ShortFile, "hole at dindirect slot %d", l1)
					bi += ffs.PtrsPerBlock
					continue
				}
				if !d.claim(r, l1ptr, ffs.BlockFrags) {
					bi += ffs.PtrsPerBlock
					continue
				}
				r.dep(int64(l1ptr)*ffs.FragSize, ffs.BlockSize)
				ldata := d.img.Range(int64(l1ptr)*ffs.FragSize, ffs.BlockSize)
				for l2 := 0; l2 < ffs.PtrsPerBlock && bi < nblocks; l2, bi = l2+1, bi+1 {
					ptr := int32(binary.LittleEndian.Uint32(ldata[l2*4:]))
					if ptr == 0 {
						r.addf(ShortFile, "hole under dindirect")
						continue
					}
					d.claim(r, ptr, runLen(bi))
				}
			}
		}
	}
}

// deriveDir parses ino's directory data (per ip) into r, resetting it
// first. It mirrors the parse half of the historical checkDir; the
// target-dependent checks (dangling entries, type mismatches) happen at
// merge time because they consult other inodes' state.
func (d *deriver) deriveDir(ino ffs.Ino, ip *ffs.Inode, r *dirRec) {
	r.steps = r.steps[:0]
	r.names = r.names[:0]
	r.deps = r.deps[:0]
	r.sawDot, r.sawDotdot = false, false
	r.empty = ip.Size == 0
	if r.empty {
		// A directory whose first block has not reached the disk yet (a
		// rolled-back or not-yet-written mkdir). Structurally harmless.
		return
	}
	data := d.dirData(ip, r)
	for chunk := 0; chunk+ffs.DirChunk <= len(data); chunk += ffs.DirChunk {
		off := chunk
		for off < chunk+ffs.DirChunk {
			if off+8 > len(data) {
				break
			}
			le := binary.LittleEndian
			entIno := ffs.Ino(le.Uint32(data[off:]))
			reclen := int(le.Uint16(data[off+4:]))
			namelen := int(data[off+6])
			ftype := data[off+7]
			if reclen < 8 || off+reclen > chunk+ffs.DirChunk || (entIno != 0 && off+8+namelen > off+reclen) {
				r.steps = append(r.steps, dstep{bad: true,
					detail: fmt.Sprintf("bad entry at offset %d (reclen %d)", off, reclen)})
				break
			}
			if entIno != 0 {
				name := data[off+8 : off+8+namelen]
				r.steps = append(r.steps, dstep{ino: entIno, ftype: ftype,
					nameOff: int32(len(r.names)), nameLen: int32(namelen)})
				r.names = append(r.names, name...)
				if namelen == 1 && name[0] == '.' {
					r.sawDot = true
				} else if namelen == 2 && name[0] == '.' && name[1] == '.' {
					r.sawDotdot = true
				}
			}
			off += reclen
		}
	}
}

// dirData materializes directory contents into the deriver's reused
// scratch, recording the sectors read. Mirrors checker.dirData.
func (d *deriver) dirData(ip *ffs.Inode, r *dirRec) []byte {
	out := d.dirBuf[:0]
	nblocks := (int(ip.Size) + ffs.BlockSize - 1) / ffs.BlockSize
	for bi := 0; bi < nblocks && bi < ffs.NDirect; bi++ {
		ptr := ip.Direct[bi]
		if ptr == 0 || ptr < d.sb.DataStart || ptr >= d.sb.TotalFrags {
			break // already reported by the inode walk
		}
		n := ffs.BlockSize
		if rem := int(ip.Size) - bi*ffs.BlockSize; rem < n {
			n = (rem + ffs.FragSize - 1) / ffs.FragSize * ffs.FragSize
		}
		r.dep(int64(ptr)*ffs.FragSize, int64(n))
		// Sector-at-a-time: against a delta image, whole-block Range
		// assembles dirty blocks in scratch before append copies them
		// again, while per-sector reads alias either the base or the
		// writer's view and copy once.
		for boff := int64(0); boff < int64(n); boff += sectorSize {
			out = append(out, d.img.Range(int64(ptr)*ffs.FragSize+boff, sectorSize)...)
		}
	}
	if int(ip.Size) < len(out) {
		out = out[:ip.Size]
	}
	d.dirBuf = out
	return out
}

// recProvider supplies the records the merge replays. The full checker
// serves freshly derived slices; the incremental checker splices baseline
// records with re-derived ones.
type recProvider interface {
	inodeRec(ino ffs.Ino) *inodeRec
	dirRec(ino ffs.Ino) *dirRec
}

// inoSeg locates one inode's contiguous run of findings inside a pass.
type inoSeg struct {
	ino        ffs.Ino
	start, end int32
}

// mergeArtifacts is everything a Baseline's full merge learned, in the
// shape the incremental merge (incmerge.go) needs to splice per-inode
// results: per-pass finding segments in ascending-inode order, the final
// fragment-ownership table, per-inode successful-claim counts, a reverse
// index from inodes to the directories whose entries name them, and the
// pass-4 aggregate counters.
type mergeArtifacts struct {
	rep  Report
	segs [4][]inoSeg // per pass, ascending ino; only inos with findings

	ownBase []ffs.Ino // frag - DataStart -> sole claimant (0 = unclaimed)
	success []int32   // per ino: successful claims in pass 1

	refDirs map[ffs.Ino][]ffs.Ino // target ino -> dirs with an entry naming it

	aggStale, aggLeaks int

	// conflictFree: no CrossLink findings, so ownBase's single-claimant
	// entries describe the complete claim relation. rootOK: the merge ran
	// all four passes (no early return). The incremental merge requires
	// both.
	conflictFree bool
	rootOK       bool
}

// seg records ino's findings slice [start, len(rep.Findings)) for pass p.
func (a *mergeArtifacts) seg(p int, ino ffs.Ino, start int) {
	if a != nil && len(a.rep.Findings) > start {
		a.segs[p] = append(a.segs[p], inoSeg{ino, int32(start), int32(len(a.rep.Findings))})
	}
}

// mergeReport replays the records in ascending-inode order, reproducing
// the historical four passes. own is the fragment-ownership table (one
// entry per data fragment), epoch-tagged so callers can reuse it across
// checks without clearing: entry (epoch<<32 | ino) is live only when its
// epoch matches. epoch must be >= 1. A non-nil art (whose rep must be the
// same object as rep) additionally records the merge's artifacts for
// incremental re-merging.
func mergeReport(sb *ffs.Superblock, img Image, pr recProvider, rep *Report, own []uint64, epoch uint64, art *mergeArtifacts) {
	tag := epoch << 32
	if art != nil {
		art.conflictFree = true
	}

	// Pass 1: replay every allocated inode's walk script, claiming
	// fragments (first claimant wins; later claimants cross-link).
	for ino := ffs.Ino(2); uint32(ino) < sb.NInodes; ino++ {
		r := pr.inodeRec(ino)
		if !r.alloc {
			continue
		}
		rep.AllocatedInodes++
		mark := len(rep.Findings)
		success := int32(0)
		for i := range r.steps {
			st := &r.steps[i]
			if st.kind != claimStepKind {
				rep.Findings = append(rep.Findings, Finding{Kind: st.kind, Ino: ino, Detail: st.detail})
				continue
			}
			for f := st.start; f < st.start+st.n; f++ {
				idx := f - sb.DataStart
				if e := own[idx]; e>>32 == epoch && ffs.Ino(uint32(e)) != ino {
					rep.add(CrossLink, ino, "fragment %d also owned by inode %d", f, ffs.Ino(uint32(e)))
					if art != nil {
						art.conflictFree = false
					}
					continue
				}
				own[idx] = tag | uint64(uint32(ino))
				rep.ReferencedFrags++
				success++
			}
		}
		if art != nil {
			art.success[ino] = success
			art.seg(0, ino, mark)
		}
	}

	// Pass 2: directory tree from the root, counting references and
	// validating entries, in ascending-inode order.
	root := pr.inodeRec(ffs.RootIno)
	if !root.alloc || !root.ok || !root.ip.IsDir() {
		rep.add(BadSuperblock, ffs.RootIno, "root inode missing or not a directory")
		return
	}
	if art != nil {
		art.rootOK = true
	}
	for ino := ffs.Ino(2); uint32(ino) < sb.NInodes; ino++ {
		r := pr.inodeRec(ino)
		if r.alloc && r.ok && r.ip.IsDir() {
			mark := len(rep.Findings)
			mergeDir(sb, pr, ino, pr.dirRec(ino), rep)
			art.seg(1, ino, mark)
		}
	}

	// Pass 3: link counts, ascending-inode order.
	for ino := ffs.Ino(2); uint32(ino) < sb.NInodes; ino++ {
		r := pr.inodeRec(ino)
		if !r.alloc || !r.ok {
			continue
		}
		mark := len(rep.Findings)
		mergeLink(&r.ip, ino, rep.Refs[ino], rep)
		art.seg(2, ino, mark)
	}

	// Pass 4: bitmap reconciliation, reading the (possibly delta) image
	// live — the delta itself is the bitmap shadow.
	ibm := img.Range(int64(sb.IBmapStart)*ffs.FragSize, (int64(sb.NInodes)+7)/8)
	for ino := ffs.Ino(2); uint32(ino) < sb.NInodes; ino++ {
		set := ibm[ino/8]&(1<<(uint(ino)%8)) != 0
		r := pr.inodeRec(ino)
		mark := len(rep.Findings)
		mergeIbm(r.alloc && r.ok, set, ino, rep)
		art.seg(3, ino, mark)
	}
	fbm := img.Range(int64(sb.FBmapStart)*ffs.FragSize, (int64(sb.TotalFrags)+7)/8)
	leaks, stale := 0, 0
	for f := sb.DataStart; f < sb.TotalFrags; f++ {
		set := fbm[f/8]&(1<<(uint(f)%8)) != 0
		owned := own[f-sb.DataStart]>>32 == epoch
		if owned && !set {
			stale++
		} else if !owned && set {
			leaks++
		}
	}
	if art != nil {
		art.aggStale, art.aggLeaks = stale, leaks
		for f := sb.DataStart; f < sb.TotalFrags; f++ {
			if e := own[f-sb.DataStart]; e>>32 == epoch {
				art.ownBase[f-sb.DataStart] = ffs.Ino(uint32(e))
			}
		}
	}
	mergeFragAgg(stale, leaks, rep)
}

// mergeLink emits ino's pass-3 link-count finding, if any.
func mergeLink(ip *ffs.Inode, ino ffs.Ino, refs int, rep *Report) {
	if int(ip.Nlink) < refs {
		rep.add(LinkUndercount, ino, "nlink %d < %d references", ip.Nlink, refs)
	} else if int(ip.Nlink) > refs {
		rep.add(LinkOvercount, ino, "nlink %d > %d references", ip.Nlink, refs)
	}
}

// mergeIbm emits ino's pass-4 inode-bitmap finding, if any.
func mergeIbm(used, set bool, ino ffs.Ino, rep *Report) {
	if used && !set {
		rep.add(BitmapStale, ino, "allocated inode marked free")
	} else if !used && set && ino > ffs.RootIno {
		rep.add(LeakedInode, ino, "free inode marked allocated")
	}
}

// mergeFragAgg emits the trailing pass-4 aggregate findings.
func mergeFragAgg(stale, leaks int, rep *Report) {
	if stale > 0 {
		rep.add(BitmapStale, 0, "%d referenced fragments marked free", stale)
	}
	if leaks > 0 {
		rep.add(LeakedBlock, 0, "%d fragments leaked (allocated but unreferenced)", leaks)
	}
}

// mergeDir replays one directory's parse against the current inode view.
func mergeDir(sb *ffs.Superblock, pr recProvider, ino ffs.Ino, dr *dirRec, rep *Report) {
	if dr.empty {
		return
	}
	for i := range dr.steps {
		st := &dr.steps[i]
		if st.bad {
			rep.Findings = append(rep.Findings, Finding{Kind: BadDirFormat, Ino: ino, Detail: st.detail})
			continue
		}
		rep.Refs[st.ino]++
		var target *ffs.Inode
		if uint32(st.ino) >= 2 && uint32(st.ino) < sb.NInodes {
			if tr := pr.inodeRec(st.ino); tr.alloc && tr.ok {
				target = &tr.ip
			}
		}
		name := dr.name(st)
		switch {
		case target == nil:
			rep.add(DanglingEntry, ino, "entry %q names unallocated inode %d", name, st.ino)
		case st.ftype == ffs.FtypeDir && !target.IsDir(),
			st.ftype == ffs.FtypeFile && target.IsDir():
			rep.add(TypeMismatch, ino, "entry %q type %d vs mode %#x", name, st.ftype, target.Mode)
		}
		if st.nameLen == 1 && name[0] == '.' && st.ino != ino {
			rep.add(TypeMismatch, ino, "'.' names %d", st.ino)
		}
	}
	if !dr.sawDot || !dr.sawDotdot {
		rep.add(BadDirFormat, ino, "missing '.' or '..'")
	}
}

// checkState is a full set of freshly derived records for one image; it is
// the trivial recProvider behind CheckImage and CheckImagePipelined, and
// the construction state of a Baseline.
type checkState struct {
	sb     ffs.Superblock
	inodes []inodeRec
	dirs   []dirRec
}

func newCheckState(sb ffs.Superblock) *checkState {
	return &checkState{
		sb:     sb,
		inodes: make([]inodeRec, sb.NInodes),
		dirs:   make([]dirRec, sb.NInodes),
	}
}

func (st *checkState) inodeRec(ino ffs.Ino) *inodeRec { return &st.inodes[ino] }
func (st *checkState) dirRec(ino ffs.Ino) *dirRec     { return &st.dirs[ino] }

// deriveAll derives every inode record and every valid directory's parse,
// serially.
func (st *checkState) deriveAll(img Image) {
	d := deriver{img: img, sb: &st.sb}
	for ino := ffs.Ino(2); uint32(ino) < st.sb.NInodes; ino++ {
		d.deriveInode(ino, &st.inodes[ino])
	}
	for ino := ffs.Ino(2); uint32(ino) < st.sb.NInodes; ino++ {
		r := &st.inodes[ino]
		if r.alloc && r.ok && r.ip.IsDir() {
			d.deriveDir(ino, &r.ip, &st.dirs[ino])
		}
	}
}

// merge replays st's records into rep with a fresh ownership table.
func (st *checkState) merge(img Image, rep *Report) {
	own := make([]uint64, st.sb.TotalFrags-st.sb.DataStart)
	mergeReport(&st.sb, img, st, rep, own, 1, nil)
}
