// Package fsck verifies the structural integrity of a raw file system
// image — the role the fsck utility plays for the paper's schemes, all of
// which "prevent the loss of structural integrity" but "require assistance
// when recovering from system failure".
//
// The checker distinguishes two classes of findings:
//
//   - Violations: states fsck cannot repair without losing integrity —
//     cross-linked blocks, pointers outside the data region, directory
//     entries naming unallocated inodes, type mismatches, and link counts
//     lower than the number of on-disk references (premature free). The
//     paper's ordering rules exist precisely to prevent these.
//
//   - Repairables: resource leaks — blocks or inodes marked allocated but
//     unreferenced, link counts higher than the reference count, free-map
//     entries out of date. All schemes (even Conventional) may leak across
//     a crash; fsck reclaims them mechanically.
//
// It also supports the allocation-initialization security check: with a
// workload that stamps every data fragment with its owner's inode number,
// ContentViolations detects file blocks that leaked another (deleted)
// file's contents — the security hole of running without allocation
// initialization.
package fsck

import (
	"encoding/binary"
	"fmt"

	"metaupdate/internal/ffs"
	"metaupdate/internal/jlog"
)

// Kind classifies a finding.
type Kind int

// Finding kinds. Violations first, repairables after KindRepairable.
const (
	BadSuperblock Kind = iota
	CrossLink
	BadPointer
	DanglingEntry
	TypeMismatch
	LinkUndercount
	BadDirFormat
	UninitializedData

	kindRepairableBoundary

	LinkOvercount
	LeakedBlock
	LeakedInode
	BitmapStale
	// ShortFile: a file's size implies blocks its pointers do not provide
	// (a size update outran a rolled-back allocation); fsck truncates.
	ShortFile
)

func (k Kind) String() string {
	switch k {
	case BadSuperblock:
		return "BadSuperblock"
	case CrossLink:
		return "CrossLink"
	case BadPointer:
		return "BadPointer"
	case DanglingEntry:
		return "DanglingEntry"
	case TypeMismatch:
		return "TypeMismatch"
	case LinkUndercount:
		return "LinkUndercount"
	case BadDirFormat:
		return "BadDirFormat"
	case UninitializedData:
		return "UninitializedData"
	case LinkOvercount:
		return "LinkOvercount"
	case LeakedBlock:
		return "LeakedBlock"
	case LeakedInode:
		return "LeakedInode"
	case BitmapStale:
		return "BitmapStale"
	case ShortFile:
		return "ShortFile"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Violation reports whether the kind is an unrepairable integrity loss.
func (k Kind) Violation() bool { return k < kindRepairableBoundary }

// Finding is one fsck observation.
type Finding struct {
	Kind   Kind
	Ino    ffs.Ino
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s(ino %d): %s", f.Kind, f.Ino, f.Detail)
}

// Report is the outcome of a Check.
type Report struct {
	Findings []Finding
	// Refs[ino] is the number of directory entries naming ino.
	Refs map[ffs.Ino]int
	// AllocatedInodes and ReferencedFrags summarize the walk.
	AllocatedInodes int
	ReferencedFrags int
	// noDetail suppresses Detail formatting in merge-time findings (Kind
	// and Ino are always set). Only DeltaChecker.SkipDetails sets it, for
	// callers that triage by Kind and re-check the few reports they keep.
	noDetail bool
}

// Violations returns only the unrepairable findings.
func (r *Report) Violations() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind.Violation() {
			out = append(out, f)
		}
	}
	return out
}

// Repairables returns only the fsck-repairable findings.
func (r *Report) Repairables() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Kind.Violation() {
			out = append(out, f)
		}
	}
	return out
}

func (r *Report) add(k Kind, ino ffs.Ino, format string, args ...interface{}) {
	f := Finding{Kind: k, Ino: ino}
	if !r.noDetail {
		f.Detail = fmt.Sprintf(format, args...)
	}
	r.Findings = append(r.Findings, f)
}

type checker struct {
	img Image
	// raw is the writable backing slice — set only by Repair, whose
	// in-place fixes need mutable views; Check paths read through img.
	raw []byte
	sb  ffs.Superblock
	rep *Report

	// fragOwner[frag - DataStart] = inode that references it (0 = none).
	fragOwner []ffs.Ino
}

func (c *checker) frag(f int32) []byte {
	return c.img.Range(int64(f)*ffs.FragSize, ffs.FragSize)
}

// Check walks a materialized image and returns the integrity report.
func Check(img []byte) *Report { return CheckImage(Bytes(img)) }

// CheckImage walks the image — materialized or virtual — and returns the
// integrity report. The walk derives per-inode and per-directory records
// and replays them through the deterministic merge (passes.go): pass 1
// claims every allocated inode's fragments, pass 2 walks the directory
// tree counting references and validating entries, pass 3 reconciles link
// counts (lower than the reference count risks premature free — an
// integrity violation; higher is a repairable leak; Refs counts the parent
// entry and ".", plus one ".." per child directory, matching the FFS
// convention), pass 4 reconciles both bitmaps (repairable either way, but
// referenced-but-free is the precursor to cross-links). All passes iterate
// in ascending-inode order, so the report is deterministic.
func CheckImage(img Image) *Report {
	rep := &Report{Refs: make(map[ffs.Ino]int)}
	var sb ffs.Superblock
	if err := decodeSB(img, &sb); err != nil {
		rep.add(BadSuperblock, 0, "%v", err)
		return rep
	}
	st := newCheckState(sb)
	st.deriveAll(img)
	st.merge(img, rep)
	return rep
}

func decodeSB(img Image, sb *ffs.Superblock) error {
	le := binary.LittleEndian
	b := img.Range(0, 36)
	if le.Uint32(b[0:]) != ffs.Magic {
		return fmt.Errorf("bad magic %#x", le.Uint32(b[0:]))
	}
	sb.Magic = le.Uint32(b[0:])
	sb.TotalFrags = int32(le.Uint32(b[4:]))
	sb.NInodes = le.Uint32(b[8:])
	sb.InodeStart = int32(le.Uint32(b[12:]))
	sb.IBmapStart = int32(le.Uint32(b[16:]))
	sb.FBmapStart = int32(le.Uint32(b[20:]))
	sb.DataStart = int32(le.Uint32(b[24:]))
	sb.JournalStart = int32(le.Uint32(b[28:]))
	sb.JournalFrags = int32(le.Uint32(b[32:]))
	return nil
}

// ReplayJournal is the Journaling scheme's recovery step: it reads the
// journal region named by the image's own superblock and applies every
// committed transaction to its home location, in sequence order. Run it
// on the crashed image before Check/Repair. Images without a journal
// (every other scheme, and pre-journal images) are untouched. Returns the
// number of transactions applied; replay is idempotent — re-running it on
// a recovered image rewrites the same bytes.
func ReplayJournal(img []byte) int {
	var sb ffs.Superblock
	if err := decodeSB(Bytes(img), &sb); err != nil {
		return 0
	}
	return jlog.Replay(img, sb.JournalStart, sb.JournalFrags)
}

func (c *checker) readInode(ino ffs.Ino) ffs.Inode {
	frag, off := c.sb.InodeFrag(ino)
	return ffs.DecodeInode(c.img.Range(int64(frag)*ffs.FragSize+int64(off), ffs.InodeSize))
}

// claim records ino's ownership of frags [start, start+n), reporting range
// errors and cross-links.
func (c *checker) claim(ino ffs.Ino, start int32, n int) bool {
	if start < c.sb.DataStart || start+int32(n) > c.sb.TotalFrags {
		c.rep.add(BadPointer, ino, "fragment run [%d,%d) outside data region", start, start+int32(n))
		return false
	}
	for i := int32(0); i < int32(n); i++ {
		idx := start + i - c.sb.DataStart
		if owner := c.fragOwner[idx]; owner != 0 && owner != ino {
			c.rep.add(CrossLink, ino, "fragment %d also owned by inode %d", start+i, owner)
			continue
		}
		c.fragOwner[idx] = ino
		c.rep.ReferencedFrags++
	}
	return true
}

// claimFile walks ip's block map.
func (c *checker) claimFile(ino ffs.Ino, ip *ffs.Inode) {
	nblocks := (int(ip.Size) + ffs.BlockSize - 1) / ffs.BlockSize
	runLen := func(bi int) int {
		if bi == nblocks-1 {
			rem := int(ip.Size) % ffs.BlockSize
			if rem == 0 {
				return ffs.BlockFrags
			}
			return (rem + ffs.FragSize - 1) / ffs.FragSize
		}
		return ffs.BlockFrags
	}
	bi := 0
	for ; bi < nblocks && bi < ffs.NDirect; bi++ {
		if ip.Direct[bi] == 0 {
			c.rep.add(ShortFile, ino, "size implies direct block %d but it is unset", bi)
			continue
		}
		c.claim(ino, ip.Direct[bi], runLen(bi))
	}
	if bi < nblocks && ip.Indir == 0 {
		c.rep.add(ShortFile, ino, "size %d implies an indirect block but none is set", ip.Size)
		return
	}
	if ip.Indir != 0 {
		if c.claim(ino, ip.Indir, ffs.BlockFrags) {
			// An indirect block spans BlockFrags fragments.
			data := c.img.Range(int64(ip.Indir)*ffs.FragSize, ffs.BlockSize)
			for i := 0; i < ffs.PtrsPerBlock && bi < nblocks; i, bi = i+1, bi+1 {
				ptr := int32(binary.LittleEndian.Uint32(data[i*4:]))
				if ptr == 0 {
					c.rep.add(ShortFile, ino, "hole at indirect slot %d", i)
					continue
				}
				c.claim(ino, ptr, runLen(bi))
			}
		} else {
			bi += ffs.PtrsPerBlock
		}
	}
	if ip.Dindir != 0 {
		if c.claim(ino, ip.Dindir, ffs.BlockFrags) {
			// Decode the level-1 pointers before walking them: the walk
			// issues a Range per pointer, and Image views from scratch-
			// backed implementations do not survive that many later calls.
			var l1ptrs [ffs.PtrsPerBlock]int32
			ddata := c.img.Range(int64(ip.Dindir)*ffs.FragSize, ffs.BlockSize)
			for l1 := range l1ptrs {
				l1ptrs[l1] = int32(binary.LittleEndian.Uint32(ddata[l1*4:]))
			}
			for l1 := 0; l1 < ffs.PtrsPerBlock && bi < nblocks; l1++ {
				l1ptr := l1ptrs[l1]
				if l1ptr == 0 {
					c.rep.add(ShortFile, ino, "hole at dindirect slot %d", l1)
					bi += ffs.PtrsPerBlock
					continue
				}
				if !c.claim(ino, l1ptr, ffs.BlockFrags) {
					bi += ffs.PtrsPerBlock
					continue
				}
				ldata := c.img.Range(int64(l1ptr)*ffs.FragSize, ffs.BlockSize)
				for l2 := 0; l2 < ffs.PtrsPerBlock && bi < nblocks; l2, bi = l2+1, bi+1 {
					ptr := int32(binary.LittleEndian.Uint32(ldata[l2*4:]))
					if ptr == 0 {
						c.rep.add(ShortFile, ino, "hole under dindirect")
						continue
					}
					c.claim(ino, ptr, runLen(bi))
				}
			}
		}
	}
}

// dirData materializes a directory's contents from the image.
func (c *checker) dirData(ino ffs.Ino, ip ffs.Inode) []byte {
	out := make([]byte, 0, ip.Size)
	nblocks := (int(ip.Size) + ffs.BlockSize - 1) / ffs.BlockSize
	for bi := 0; bi < nblocks && bi < ffs.NDirect; bi++ {
		ptr := ip.Direct[bi]
		if ptr == 0 || ptr < c.sb.DataStart || ptr >= c.sb.TotalFrags {
			return out // already reported
		}
		n := ffs.BlockSize
		if rem := int(ip.Size) - bi*ffs.BlockSize; rem < n {
			n = (rem + ffs.FragSize - 1) / ffs.FragSize * ffs.FragSize
		}
		out = append(out, c.img.Range(int64(ptr)*ffs.FragSize, int64(n))...)
	}
	if int(ip.Size) < len(out) {
		out = out[:ip.Size]
	}
	return out
}

// DataMarkerMagic stamps crash-test file fragments (see ContentViolations).
const DataMarkerMagic uint32 = 0xFEEDFACE

// StampFragment writes the content marker into a 1 KB-aligned buffer slice
// so ContentViolations can attribute on-disk data to its owner.
func StampFragment(frag []byte, ino ffs.Ino) {
	binary.LittleEndian.PutUint32(frag[0:], DataMarkerMagic)
	binary.LittleEndian.PutUint32(frag[4:], uint32(ino))
}

// MakeStampedData builds n bytes of file content with every fragment
// stamped for ino (the crash workloads write files with this).
func MakeStampedData(ino ffs.Ino, n int) []byte {
	b := make([]byte, n)
	for off := 0; off < n; off += ffs.FragSize {
		end := off + 8
		if end > n {
			break
		}
		StampFragment(b[off:], ino)
	}
	return b
}

// ContentViolations scans a materialized image's file data fragments; see
// ContentViolationsImage.
func ContentViolations(img []byte) []Finding { return ContentViolationsImage(Bytes(img)) }

// ContentViolationsImage scans every file's data fragments. A fragment must
// be all-zero (never written), or stamped with its owner. A fragment stamped
// with a DIFFERENT inode is the allocation-initialization failure: the file
// exposes another (deleted) file's contents — the paper's security hole.
func ContentViolationsImage(img Image) []Finding {
	var sb ffs.Superblock
	if err := decodeSB(img, &sb); err != nil {
		return []Finding{{Kind: BadSuperblock, Detail: err.Error()}}
	}
	var out []Finding
	c := &checker{img: img, sb: sb}
	for ino := ffs.Ino(2); uint32(ino) < sb.NInodes; ino++ {
		ip := c.readInode(ino)
		if ip.Mode != ffs.ModeFile {
			continue
		}
		nblocks := (int(ip.Size) + ffs.BlockSize - 1) / ffs.BlockSize
		for bi := 0; bi < nblocks && bi < ffs.NDirect; bi++ {
			ptr := ip.Direct[bi]
			if ptr < sb.DataStart || ptr >= sb.TotalFrags {
				continue
			}
			nf := ffs.BlockFrags
			if bi == nblocks-1 {
				if rem := int(ip.Size) % ffs.BlockSize; rem != 0 {
					nf = (rem + ffs.FragSize - 1) / ffs.FragSize
				}
			}
			for i := int32(0); i < int32(nf); i++ {
				fr := c.frag(ptr + i)
				magic := binary.LittleEndian.Uint32(fr[0:])
				owner := ffs.Ino(binary.LittleEndian.Uint32(fr[4:]))
				if magic == DataMarkerMagic && owner != ino {
					out = append(out, Finding{Kind: UninitializedData, Ino: ino,
						Detail: fmt.Sprintf("fragment %d contains inode %d's data", ptr+i, owner)})
				}
			}
		}
	}
	return out
}
