package fsck

import (
	"encoding/binary"
	"fmt"
	"sort"

	"metaupdate/internal/ffs"
)

// TreeEntry describes one reachable object in an image's logical namespace.
type TreeEntry struct {
	Ino   ffs.Ino
	Dir   bool
	Size  uint64
	Nlink int
}

// Tree walks the directory namespace of img from the root and returns the
// reachable entries keyed by slash-separated path; the root itself is "/".
// "." and ".." entries are skipped, and a directory is descended into at
// most once (cycles in a corrupted image terminate instead of looping).
//
// The walk is the logical-state oracle behind the differential tests: two
// images are "logically equal" iff their Trees are equal, and a recovered
// image is a consistent prefix of a run iff its Tree relates to the
// no-crash Tree per the paper's visibility rules. It deliberately reads
// only the namespace — allocation bitmaps, free counts, and physical
// placement are fsck's department, not the application's.
//
// A structurally broken image (bad superblock, pointers off the media)
// returns an error rather than panicking.
func Tree(img Image) (tree map[string]TreeEntry, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("tree walk failed: %v", p)
		}
	}()
	c := &checker{img: img, rep: &Report{Refs: make(map[ffs.Ino]int)}}
	if derr := decodeSB(img, &c.sb); derr != nil {
		return nil, derr
	}
	root := c.readInode(ffs.RootIno)
	if !root.IsDir() {
		return nil, fmt.Errorf("root inode is not a directory")
	}
	tree = make(map[string]TreeEntry)
	tree["/"] = TreeEntry{Ino: ffs.RootIno, Dir: true, Size: root.Size, Nlink: int(root.Nlink)}
	visited := map[ffs.Ino]bool{ffs.RootIno: true}

	type frame struct {
		ino  ffs.Ino
		ip   ffs.Inode
		path string
	}
	queue := []frame{{ino: ffs.RootIno, ip: root, path: ""}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		data := c.dirData(f.ino, f.ip)
		for chunk := 0; chunk+ffs.DirChunk <= len(data); chunk += ffs.DirChunk {
			off := chunk
			for off < chunk+ffs.DirChunk {
				le := binary.LittleEndian
				entIno := ffs.Ino(le.Uint32(data[off:]))
				reclen := int(le.Uint16(data[off+4:]))
				namelen := int(data[off+6])
				if reclen < 8 || off+reclen > chunk+ffs.DirChunk || off+8+namelen > chunk+ffs.DirChunk {
					break // malformed chunk; the fsck oracle reports it
				}
				if entIno != 0 {
					name := string(data[off+8 : off+8+namelen])
					if name != "." && name != ".." {
						ip := c.readInode(entIno)
						path := f.path + "/" + name
						tree[path] = TreeEntry{
							Ino:   entIno,
							Dir:   ip.IsDir(),
							Size:  ip.Size,
							Nlink: int(ip.Nlink),
						}
						if ip.IsDir() && !visited[entIno] {
							visited[entIno] = true
							queue = append(queue, frame{ino: entIno, ip: ip, path: path})
						}
					}
				}
				off += reclen
			}
		}
	}
	return tree, nil
}

// TreePaths returns tree's keys in sorted order (a stable shape for test
// diagnostics).
func TreePaths(tree map[string]TreeEntry) []string {
	paths := make([]string, 0, len(tree))
	for p := range tree {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}
