package fsck

// Incremental checking. A Baseline is a fully derived record set for one
// verified base image plus a reverse index from sectors to the records
// derived from them. A DeltaChecker replays a DeltaImage (base + dirty
// sectors) by re-deriving exactly the records whose recorded dependency
// sectors intersect the delta and splicing the baseline records for the
// rest, then running the same deterministic merge as CheckImage — so the
// report is identical, field for field, to a full check of the
// materialized delta.
//
// Soundness: a cached record is a pure function of the sectors in its
// recorded deps (deriveInode reads the inode slot and its indirect blocks;
// deriveDir reads the directory's direct data blocks — all recorded). If
// none of those sectors is dirty, the delta serves them byte-identical to
// the base, so re-derivation would reproduce the cached record. Everything
// the merge reads beyond records — the bitmaps, through img.Range — is
// read live from the delta each time. The superblock is the one input read
// outside a record (geometry for every derivation); a delta that dirties
// its sector falls back to a full check.

import (
	"bytes"

	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
)

// Baseline is the reusable derived state of one base image. It is
// immutable after construction and safe for concurrent use by multiple
// DeltaCheckers.
type Baseline struct {
	ok bool // superblock decoded; if false every Check falls back to full
	sb ffs.Superblock
	st *checkState
	// rev maps a sector to the records derived from it; values encode
	// ino<<1 | isDirParse. Indexed directly by sector number — Check runs
	// once per dirty sector, and a map lookup there is measurable.
	rev [][]uint32
	// base is the image the records were derived from; the incremental
	// merge diffs delta bitmap sectors against it.
	base Image
	// art is the baseline's own merge result, recorded for splicing.
	art mergeArtifacts
}

// NewBaseline derives every record of base. workers > 1 derives in
// parallel (pipeline.go); base must then support concurrent Range (Bytes
// does) or implement Forkable.
func NewBaseline(base Image, workers int) *Baseline {
	bl := &Baseline{}
	if err := decodeSB(base, &bl.sb); err != nil {
		return bl // ok == false: checks against this baseline run full
	}
	bl.ok = true
	bl.base = base
	bl.st = newCheckState(bl.sb)
	if workers > 1 {
		deriveAllParallel(base, bl.st, workers)
	} else {
		bl.st.deriveAll(base)
	}

	// Run the baseline's own merge once, recording the artifacts the
	// incremental merge splices against.
	bl.art.rep.Refs = make(map[ffs.Ino]int)
	bl.art.success = make([]int32, bl.sb.NInodes)
	bl.art.ownBase = make([]ffs.Ino, bl.sb.TotalFrags-bl.sb.DataStart)
	own := make([]uint64, bl.sb.TotalFrags-bl.sb.DataStart)
	mergeReport(&bl.sb, base, bl.st, &bl.art.rep, own, 1, &bl.art)
	bl.art.refDirs = make(map[ffs.Ino][]ffs.Ino)
	for ino := ffs.Ino(2); uint32(ino) < bl.sb.NInodes; ino++ {
		r := &bl.st.inodes[ino]
		if !(r.alloc && r.ok && r.ip.IsDir()) {
			continue
		}
		dr := &bl.st.dirs[ino]
		for i := range dr.steps {
			if st := &dr.steps[i]; !st.bad {
				bl.art.refDirs[st.ino] = append(bl.art.refDirs[st.ino], ino)
			}
		}
	}

	bl.rev = make([][]uint32, int64(bl.sb.TotalFrags)*ffs.FragSize/disk.SectorSize)
	add := func(s int64, v uint32) {
		if s >= 0 && s < int64(len(bl.rev)) {
			bl.rev[s] = append(bl.rev[s], v)
		}
	}
	for ino := ffs.Ino(2); uint32(ino) < bl.sb.NInodes; ino++ {
		r := &bl.st.inodes[ino]
		for _, sr := range r.deps {
			for s := sr.lo; s < sr.hi; s++ {
				add(s, uint32(ino)<<1)
			}
		}
		if r.alloc && r.ok && r.ip.IsDir() {
			for _, sr := range bl.st.dirs[ino].deps {
				for s := sr.lo; s < sr.hi; s++ {
					add(s, uint32(ino)<<1|1)
				}
			}
		}
	}
	return bl
}

// NInodes reports the baseline geometry (0 if the superblock was bad).
func (bl *Baseline) NInodes() int {
	if !bl.ok {
		return 0
	}
	return int(bl.sb.NInodes)
}

// DeltaCheckerStats counts the work a DeltaChecker has done; the gap
// between Checks×NInodes and InodesRederived is the incremental win.
type DeltaCheckerStats struct {
	Checks          int64
	FullFallbacks   int64
	InodesRederived int64
	DirsReparsed    int64
	// SplicedMerges counts checks served by the incremental merge
	// (incmerge.go) rather than the full epoch merge.
	SplicedMerges int64
}

// DeltaChecker checks DeltaImages against one Baseline, reusing all
// scratch state across calls (epoch-stamped, so nothing is cleared per
// check). Not safe for concurrent use; crashmc gives each pool worker its
// own.
type DeltaChecker struct {
	bl    *Baseline
	d     deriver
	epoch uint64

	inoStamp, dirStamp []uint64
	freshIno           []inodeRec
	freshDir           []dirRec
	own                []uint64
	rep                Report
	dirtyInos          []ffs.Ino
	dirtyDirs          []ffs.Ino
	inc                incScratch

	Stats DeltaCheckerStats
}

// NewDeltaChecker returns a checker bound to bl.
func NewDeltaChecker(bl *Baseline) *DeltaChecker {
	dc := &DeltaChecker{}
	dc.Rebind(bl)
	return dc
}

// Rebind points dc at a new baseline, keeping its scratch when the
// geometry matches (the common case: successive committed images of one
// exploration share a superblock).
func (dc *DeltaChecker) Rebind(bl *Baseline) {
	dc.bl = bl
	if !bl.ok {
		return
	}
	n := int(bl.sb.NInodes)
	if len(dc.inoStamp) != n {
		dc.inoStamp = make([]uint64, n)
		dc.dirStamp = make([]uint64, n)
		dc.freshIno = make([]inodeRec, n)
		dc.freshDir = make([]dirRec, n)
	}
	if nd := int(bl.sb.TotalFrags - bl.sb.DataStart); len(dc.own) != nd {
		dc.own = make([]uint64, nd)
	}
	dc.inc.sized(n, int(bl.sb.TotalFrags-bl.sb.DataStart))
	// rep.Refs (if any) holds the previous baseline's reference counts;
	// force a fresh sync on the next spliced merge.
	dc.inc.refsSynced = false
	if dc.epoch == 0 {
		dc.epoch = 1
	}
	dc.d.sb = &dc.bl.sb
}

// SkipDetails controls whether merge-time findings carry formatted Detail
// strings (the default). Callers that only triage reports by Kind — the
// crash explorer keeps a handful of thousands — can skip the formatting,
// which otherwise dominates the per-check cost, and re-check the keepers
// with a full checker.
func (dc *DeltaChecker) SkipDetails(skip bool) {
	dc.rep.noDetail = skip
}

// recProvider: splice fresh records over the baseline.

func (dc *DeltaChecker) inodeRec(ino ffs.Ino) *inodeRec {
	if dc.inoStamp[ino] == dc.epoch {
		return &dc.freshIno[ino]
	}
	return &dc.bl.st.inodes[ino]
}

func (dc *DeltaChecker) dirRec(ino ffs.Ino) *dirRec {
	if dc.dirStamp[ino] == dc.epoch {
		return &dc.freshDir[ino]
	}
	return &dc.bl.st.dirs[ino]
}

// Check verifies img incrementally. img.Base() must be byte-identical to
// the image the bound Baseline was built from. The returned Report aliases
// dc's reused scratch: it is valid until the next Check call.
func (dc *DeltaChecker) Check(img DeltaImage) *Report {
	dc.Stats.Checks++
	if !dc.bl.ok {
		dc.Stats.FullFallbacks++
		return CheckImage(img)
	}
	dirty := img.DirtySectors()
	for _, s := range dirty {
		if s == 0 {
			// The superblock feeds every derivation's geometry; a delta
			// touching it cannot splice cached records soundly.
			dc.Stats.FullFallbacks++
			return CheckImage(img)
		}
	}

	dc.epoch++
	if dc.epoch >= 1<<32 {
		// The ownership table packs the epoch into 32 bits; on wrap, clear
		// all stamped state and restart.
		dc.epoch = 1
		for i := range dc.own {
			dc.own[i] = 0
		}
		for i := range dc.inoStamp {
			dc.inoStamp[i] = 0
			dc.dirStamp[i] = 0
		}
	}

	// Invalidate records whose dependency sectors intersect the delta.
	// Inode-table sectors get a finer test: a 512-byte sector holds 4 inode
	// slabs, and DirtySectors over-approximates, so diffing each slab
	// against the base (128-byte compare) is far cheaper than re-deriving
	// an unchanged inode (decode + claim walk). An inode whose slab is
	// clean but whose indirect block changed is still caught — the
	// indirect sector is its own recorded dep and takes the rev path.
	dc.dirtyInos = dc.dirtyInos[:0]
	dc.dirtyDirs = dc.dirtyDirs[:0]
	itLo := int64(dc.bl.sb.InodeStart) * ffs.FragSize
	itHi := int64(dc.bl.sb.IBmapStart) * ffs.FragSize
	for _, s := range dirty {
		if b := s * disk.SectorSize; b >= itLo && b < itHi {
			cur := img.Range(b, disk.SectorSize)
			old := dc.bl.base.Range(b, disk.SectorSize)
			if bytes.Equal(cur, old) {
				continue
			}
			rel := b - itLo
			ino0 := ffs.Ino(rel/ffs.BlockSize*ffs.InodesPerBlock + rel%ffs.BlockSize/ffs.InodeSize)
			for k := 0; k < disk.SectorSize/ffs.InodeSize; k++ {
				ino := ino0 + ffs.Ino(k)
				if ino < 2 || uint32(ino) >= dc.bl.sb.NInodes {
					continue
				}
				if bytes.Equal(cur[k*ffs.InodeSize:(k+1)*ffs.InodeSize], old[k*ffs.InodeSize:(k+1)*ffs.InodeSize]) {
					continue
				}
				if dc.inoStamp[ino] != dc.epoch {
					dc.inoStamp[ino] = dc.epoch
					dc.dirtyInos = append(dc.dirtyInos, ino)
				}
			}
			continue
		}
		if s < 0 || s >= int64(len(dc.bl.rev)) {
			continue // past the filesystem: no record depends on it
		}
		for _, v := range dc.bl.rev[s] {
			ino := ffs.Ino(v >> 1)
			if v&1 == 0 {
				if dc.inoStamp[ino] != dc.epoch {
					dc.inoStamp[ino] = dc.epoch
					dc.dirtyInos = append(dc.dirtyInos, ino)
				}
			} else if dc.dirStamp[ino] != dc.epoch {
				dc.dirStamp[ino] = dc.epoch
				dc.dirtyDirs = append(dc.dirtyDirs, ino)
			}
		}
	}

	// Re-derive invalidated inodes against the delta; a re-derived inode
	// that is (still or newly) a valid directory needs its parse refreshed
	// too, since the parse starts from the inode's block pointers.
	dc.d.img = img
	for _, ino := range dc.dirtyInos {
		r := &dc.freshIno[ino]
		dc.d.deriveInode(ino, r)
		dc.Stats.InodesRederived++
		if r.alloc && r.ok && r.ip.IsDir() && dc.dirStamp[ino] != dc.epoch {
			dc.dirStamp[ino] = dc.epoch
			dc.dirtyDirs = append(dc.dirtyDirs, ino)
		}
	}
	for _, ino := range dc.dirtyDirs {
		r := dc.inodeRec(ino)
		if r.alloc && r.ok && r.ip.IsDir() {
			dc.d.deriveDir(ino, &r.ip, &dc.freshDir[ino])
			dc.Stats.DirsReparsed++
		}
		// Otherwise the slot is stamped but never consulted: the merge
		// only asks for directories the spliced inode view calls valid.
	}

	if dc.tryIncMerge(img, dirty) {
		dc.Stats.SplicedMerges++
		return &dc.rep
	}
	dc.inc.refsSynced = false // the full merge rebuilds rep.Refs from scratch
	dc.rep.reset()
	mergeReport(&dc.bl.sb, img, dc, &dc.rep, dc.own, dc.epoch, nil)
	return &dc.rep
}

func (r *Report) reset() {
	r.Findings = r.Findings[:0]
	if r.Refs == nil {
		r.Refs = make(map[ffs.Ino]int)
	} else {
		clear(r.Refs)
	}
	r.AllocatedInodes = 0
	r.ReferencedFrags = 0
}
