package fsck_test

import (
	"testing"

	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
)

// benchImg caches the mid-crash noorder image across benchmarks: the rig
// replay costs far more than any single check.
var benchImg []byte

func benchImage(b *testing.B) []byte {
	if benchImg == nil {
		total := totalRuntime(b, "noorder", false)
		benchImg = crashAt(b, "noorder", false, total/2)
	}
	return benchImg
}

func BenchmarkFsckFull(b *testing.B) {
	img := fsck.Bytes(benchImage(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fsck.CheckImage(img)
	}
}

func BenchmarkFsckPipelined(b *testing.B) {
	img := fsck.Bytes(benchImage(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fsck.CheckImagePipelined(img, 4)
	}
}

// BenchmarkFsckDelta is the crashmc steady state: one warm DeltaChecker
// re-verifying a one-sector delta against a cached baseline.
func BenchmarkFsckDelta(b *testing.B) {
	base := benchImage(b)
	sb := superblockOf(b, base)
	frag, off := sb.InodeFrag(5)
	d := newSliceDelta(base)
	d.dirty = append(d.dirty, (int64(frag)*ffs.FragSize+int64(off))/disk.SectorSize)
	dc := fsck.NewDeltaChecker(fsck.NewBaseline(fsck.Bytes(base), 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Check(d)
	}
}
