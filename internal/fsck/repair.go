package fsck

import (
	"encoding/binary"
	"fmt"

	"metaupdate/internal/ffs"
)

// Repair fixes an image in place the way the fsck utility the paper leans
// on would ("each requires assistance (provided by the fsck utility in
// UNIX systems) when recovering from system failure"):
//
//   - free maps are rebuilt from the reachable structures (reclaiming
//     leaked blocks and inodes, re-marking referenced ones);
//   - link counts are set to the observed reference counts;
//   - directory entries naming unallocated inodes are cleared;
//   - inodes whose size implies blocks that are missing or out of range
//     are truncated to the portion that verifies;
//   - allocated inodes with no remaining references are freed (a real
//     fsck moves them to lost+found; this substrate has none).
//
// It returns the actions taken. After Repair, Check reports no findings
// unless the damage was beyond this repertoire (cross-linked blocks are
// resolved by truncating the later claimant).
func Repair(img []byte) []string {
	var actions []string
	var sb ffs.Superblock
	if err := decodeSB(Bytes(img), &sb); err != nil {
		return []string{"unrepairable: " + err.Error()}
	}
	c := &checker{img: Bytes(img), raw: img, sb: sb, rep: &Report{Refs: make(map[ffs.Ino]int)}}
	c.fragOwner = make([]ffs.Ino, sb.TotalFrags-sb.DataStart)

	log := func(format string, args ...interface{}) {
		actions = append(actions, fmt.Sprintf(format, args...))
	}

	// Pass 1: validate block maps, truncating inodes whose maps do not
	// verify (bad range, holes, cross-links — first claimant wins).
	inodes := make(map[ffs.Ino]ffs.Inode)
	for ino := ffs.Ino(2); uint32(ino) < sb.NInodes; ino++ {
		ip := c.readInode(ino)
		if !ip.Allocated() {
			continue
		}
		if ip.Mode != ffs.ModeFile && ip.Mode != ffs.ModeDir {
			c.clearInode(ino)
			log("cleared inode %d with bad mode %#x", ino, ip.Mode)
			continue
		}
		if truncAt, bad := c.verifyMap(ino, &ip); bad {
			c.truncateInode(ino, &ip, truncAt)
			log("truncated inode %d to %d bytes (unverifiable block map)", ino, ip.Size)
		}
		inodes[ino] = ip
	}

	// Pass 2: directory structure — reformat garbage chunks, reseed missing
	// "."/".." — then count references and clear dangling entries.
	for ino, ip := range inodes {
		if !ip.IsDir() {
			continue
		}
		c.repairDirStructure(ino, ip, log)
		if ip.Size > 0 && !c.dirHasDots(ip) {
			ptr := ip.Direct[0]
			if ptr >= sb.DataStart && ptr < sb.TotalFrags {
				head := img[int64(ptr)*ffs.FragSize : int64(ptr)*ffs.FragSize+ffs.DirChunk]
				reformatChunk(head, ino, true)
				log("reseeded '.' and '..' in directory %d", ino)
			}
		}
	}
	refs := make(map[ffs.Ino]int)
	for ino, ip := range inodes {
		if ip.IsDir() {
			c.countDirRefs(ino, ip, inodes, refs, log)
		}
	}

	// Pass 3: link counts and orphan inodes.
	for ino, ip := range inodes {
		r := refs[ino]
		if r == 0 && ino != ffs.RootIno {
			c.clearInode(ino)
			delete(inodes, ino)
			log("freed orphan inode %d (no references)", ino)
			continue
		}
		if int(ip.Nlink) != r {
			frag, off := sb.InodeFrag(ino)
			raw := img[int64(frag)*ffs.FragSize+int64(off):]
			ip.Nlink = uint16(r)
			ffs.EncodeInode(&ip, raw)
			inodes[ino] = ip
			log("set inode %d link count to %d", ino, r)
		}
	}

	// Pass 4: rebuild both bitmaps from scratch. Re-walk the maps of the
	// surviving inodes to get ownership (pass 1 state may be stale after
	// pass 3 cleared orphans).
	c.fragOwner = make([]ffs.Ino, sb.TotalFrags-sb.DataStart)
	c.rep = &Report{Refs: make(map[ffs.Ino]int)}
	for ino := range inodes {
		ip := c.readInode(ino)
		c.claimFile(ino, &ip)
	}
	fbm := img[int64(sb.FBmapStart)*ffs.FragSize:]
	changedF := 0
	for f := int32(0); f < sb.TotalFrags; f++ {
		want := true
		if f >= sb.DataStart {
			want = c.fragOwner[f-sb.DataStart] != 0
		}
		have := fbm[f/8]&(1<<(uint(f)%8)) != 0
		if want != have {
			if want {
				fbm[f/8] |= 1 << (uint(f) % 8)
			} else {
				fbm[f/8] &^= 1 << (uint(f) % 8)
			}
			changedF++
		}
	}
	if changedF > 0 {
		log("rebuilt fragment bitmap (%d bits corrected)", changedF)
	}
	ibm := img[int64(sb.IBmapStart)*ffs.FragSize:]
	changedI := 0
	for ino := ffs.Ino(0); uint32(ino) < sb.NInodes; ino++ {
		_, used := inodes[ino]
		want := used || ino <= ffs.RootIno
		have := ibm[ino/8]&(1<<(uint(ino)%8)) != 0
		if want != have {
			if want {
				ibm[ino/8] |= 1 << (uint(ino) % 8)
			} else {
				ibm[ino/8] &^= 1 << (uint(ino) % 8)
			}
			changedI++
		}
	}
	if changedI > 0 {
		log("rebuilt inode bitmap (%d bits corrected)", changedI)
	}
	return actions
}

// verifyMap walks ip's block map, claiming fragments; it returns the first
// file block index at which verification failed (for truncation) and
// whether anything was bad.
func (c *checker) verifyMap(ino ffs.Ino, ip *ffs.Inode) (truncAtBlock int, bad bool) {
	nblocks := (int(ip.Size) + ffs.BlockSize - 1) / ffs.BlockSize
	runLen := func(bi int) int {
		if bi == nblocks-1 {
			rem := int(ip.Size) % ffs.BlockSize
			if rem == 0 {
				return ffs.BlockFrags
			}
			return (rem + ffs.FragSize - 1) / ffs.FragSize
		}
		return ffs.BlockFrags
	}
	claimOK := func(start int32, n int) bool {
		if start < c.sb.DataStart || start+int32(n) > c.sb.TotalFrags {
			return false
		}
		for i := int32(0); i < int32(n); i++ {
			idx := start + i - c.sb.DataStart
			if owner := c.fragOwner[idx]; owner != 0 && owner != ino {
				return false
			}
		}
		for i := int32(0); i < int32(n); i++ {
			c.fragOwner[start+i-c.sb.DataStart] = ino
		}
		return true
	}
	for bi := 0; bi < nblocks && bi < ffs.NDirect; bi++ {
		if ip.Direct[bi] == 0 || !claimOK(ip.Direct[bi], runLen(bi)) {
			return bi, true
		}
	}
	if nblocks <= ffs.NDirect {
		return 0, false
	}
	if ip.Indir == 0 || !claimOK(ip.Indir, ffs.BlockFrags) {
		return ffs.NDirect, true
	}
	data := c.raw[int64(ip.Indir)*ffs.FragSize : int64(ip.Indir+ffs.BlockFrags)*ffs.FragSize]
	for i := 0; i < ffs.PtrsPerBlock; i++ {
		bi := ffs.NDirect + i
		if bi >= nblocks {
			break
		}
		ptr := int32(binary.LittleEndian.Uint32(data[i*4:]))
		if ptr == 0 || !claimOK(ptr, runLen(bi)) {
			return bi, true
		}
	}
	if nblocks <= ffs.NDirect+ffs.PtrsPerBlock {
		return 0, false
	}
	if ip.Dindir == 0 || !claimOK(ip.Dindir, ffs.BlockFrags) {
		return ffs.NDirect + ffs.PtrsPerBlock, true
	}
	ddata := c.raw[int64(ip.Dindir)*ffs.FragSize : int64(ip.Dindir+ffs.BlockFrags)*ffs.FragSize]
	for l1 := 0; l1 < ffs.PtrsPerBlock; l1++ {
		base := ffs.NDirect + ffs.PtrsPerBlock + l1*ffs.PtrsPerBlock
		if base >= nblocks {
			break
		}
		l1ptr := int32(binary.LittleEndian.Uint32(ddata[l1*4:]))
		if l1ptr == 0 || !claimOK(l1ptr, ffs.BlockFrags) {
			return base, true
		}
		ldata := c.raw[int64(l1ptr)*ffs.FragSize : int64(l1ptr+ffs.BlockFrags)*ffs.FragSize]
		for l2 := 0; l2 < ffs.PtrsPerBlock; l2++ {
			bi := base + l2
			if bi >= nblocks {
				break
			}
			ptr := int32(binary.LittleEndian.Uint32(ldata[l2*4:]))
			if ptr == 0 || !claimOK(ptr, runLen(bi)) {
				return bi, true
			}
		}
	}
	return 0, false
}

// truncateInode shrinks ino to end before file block truncAt and rewrites
// it on the image.
func (c *checker) truncateInode(ino ffs.Ino, ip *ffs.Inode, truncAtBlock int) {
	newSize := uint64(truncAtBlock) * ffs.BlockSize
	if newSize > ip.Size {
		newSize = ip.Size
	}
	ip.Size = newSize
	for bi := truncAtBlock; bi < ffs.NDirect; bi++ {
		ip.Direct[bi] = 0
	}
	if truncAtBlock <= ffs.NDirect {
		ip.Indir = 0
		ip.Dindir = 0
	} else if truncAtBlock <= ffs.NDirect+ffs.PtrsPerBlock {
		ip.Dindir = 0
	}
	frag, off := c.sb.InodeFrag(ino)
	ffs.EncodeInode(ip, c.raw[int64(frag)*ffs.FragSize+int64(off):])
}

// dirHasDots reports whether the directory's data contains both "." and
// "..".
func (c *checker) dirHasDots(ip ffs.Inode) bool {
	ptr := ip.Direct[0]
	if ptr < c.sb.DataStart || ptr >= c.sb.TotalFrags {
		return false
	}
	head := c.raw[int64(ptr)*ffs.FragSize : int64(ptr)*ffs.FragSize+ffs.DirChunk]
	sawDot, sawDotdot := false, false
	for off := 0; off < ffs.DirChunk; {
		le := binary.LittleEndian
		entIno := ffs.Ino(le.Uint32(head[off:]))
		reclen := int(le.Uint16(head[off+4:]))
		namelen := int(head[off+6])
		if reclen < 8 || off+reclen > ffs.DirChunk {
			break
		}
		if entIno != 0 && off+8+namelen <= ffs.DirChunk {
			switch string(head[off+8 : off+8+namelen]) {
			case ".":
				sawDot = true
			case "..":
				sawDotdot = true
			}
		}
		off += reclen
	}
	return sawDot && sawDotdot
}

func (c *checker) clearInode(ino ffs.Ino) {
	frag, off := c.sb.InodeFrag(ino)
	cleared := ffs.Inode{}
	ffs.EncodeInode(&cleared, c.raw[int64(frag)*ffs.FragSize+int64(off):])
}

// putRawDirent writes a minimal directory entry header + name.
func putRawDirent(b []byte, ino ffs.Ino, reclen int, name string, ftype uint8) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(ino))
	le.PutUint16(b[4:], uint16(reclen))
	b[6] = uint8(len(name))
	b[7] = ftype
	copy(b[8:], name)
}

// reformatChunk turns a structurally invalid 512-byte directory chunk into
// a single empty entry; for a directory's first chunk, "." and ".." are
// re-seeded ("..", with the true parent unknowable, points at the root —
// a real fsck would reattach under lost+found).
func reformatChunk(chunk []byte, self ffs.Ino, first bool) {
	for i := range chunk {
		chunk[i] = 0
	}
	if !first {
		putRawDirent(chunk, 0, len(chunk), "", 0)
		return
	}
	putRawDirent(chunk[0:], self, 12, ".", ffs.FtypeDir)
	putRawDirent(chunk[12:], ffs.RootIno, len(chunk)-12, "..", ffs.FtypeDir)
}

// dirBlocks iterates the direct blocks of a directory, yielding the data
// slice and the size limit for each.
func (c *checker) dirBlocks(ip ffs.Inode, f func(bi int, data []byte, limit int)) {
	nblocks := (int(ip.Size) + ffs.BlockSize - 1) / ffs.BlockSize
	for bi := 0; bi < nblocks && bi < ffs.NDirect; bi++ {
		ptr := ip.Direct[bi]
		if ptr < c.sb.DataStart || ptr >= c.sb.TotalFrags {
			continue
		}
		nf := ffs.BlockFrags
		if bi == nblocks-1 {
			if rem := int(ip.Size) % ffs.BlockSize; rem != 0 {
				nf = (rem + ffs.FragSize - 1) / ffs.FragSize
			}
		}
		data := c.raw[int64(ptr)*ffs.FragSize : int64(ptr)*ffs.FragSize+int64(nf*ffs.FragSize)]
		limit := int(ip.Size) - bi*ffs.BlockSize
		if limit > len(data) {
			limit = len(data)
		}
		f(bi, data, limit)
	}
}

// repairDirStructure reformats structurally invalid chunks of one
// directory.
func (c *checker) repairDirStructure(ino ffs.Ino, ip ffs.Inode, log func(string, ...interface{})) {
	c.dirBlocks(ip, func(bi int, data []byte, limit int) {
		for chunk := 0; chunk+ffs.DirChunk <= limit; chunk += ffs.DirChunk {
			valid := true
			for off := chunk; off < chunk+ffs.DirChunk; {
				reclen := int(binary.LittleEndian.Uint16(data[off+4:]))
				if reclen < 8 || reclen%4 != 0 || off+reclen > chunk+ffs.DirChunk {
					valid = false
					break
				}
				off += reclen
			}
			if !valid {
				reformatChunk(data[chunk:chunk+ffs.DirChunk], ino, bi == 0 && chunk == 0)
				log("reformatted garbage chunk %d of directory %d", chunk, ino)
			}
		}
	})
}

// countDirRefs clears dangling entries and counts directory references.
func (c *checker) countDirRefs(ino ffs.Ino, ip ffs.Inode, inodes map[ffs.Ino]ffs.Inode,
	refs map[ffs.Ino]int, log func(string, ...interface{})) {
	c.dirBlocks(ip, func(bi int, data []byte, limit int) {
		for chunk := 0; chunk+ffs.DirChunk <= limit; chunk += ffs.DirChunk {
			for off := chunk; off < chunk+ffs.DirChunk; {
				le := binary.LittleEndian
				entIno := ffs.Ino(le.Uint32(data[off:]))
				reclen := int(le.Uint16(data[off+4:]))
				if reclen < 8 || off+reclen > chunk+ffs.DirChunk {
					break
				}
				if entIno != 0 {
					if _, ok := inodes[entIno]; !ok {
						le.PutUint32(data[off:], 0) // clear dangling entry
						log("cleared dangling entry in inode %d (named %d)", ino, entIno)
					} else {
						refs[entIno]++
					}
				}
				off += reclen
			}
		}
	})
}
