// Package fault models disk faults for deterministic injection: transient
// sector errors, permanent bad sectors, torn (partial) writes, and latency
// spikes. The paper assumes these away ("each disk sector is protected by
// error correcting codes, so ... the disk will report an error"); this
// package is how the repository stops hard-coding that assumption while
// keeping every run reproducible.
//
// A Spec is a pure value (it participates in harness cell fingerprints); a
// Plan is the per-disk compiled form the drive model consults on every
// media access. All randomness comes from one seeded splitmix64 stream
// advanced a fixed number of draws per access, so a given access sequence
// always sees the same faults — the property that makes fault scenarios
// memoizable and byte-identical across worker counts and repeated runs.
package fault

import (
	"fmt"

	"metaupdate/internal/sim"
)

// Kind classifies the outcome of one media access.
type Kind uint8

// Access outcomes.
const (
	// None: the access succeeds normally.
	None Kind = iota
	// Transient: the command fails before any sector reaches the media
	// (a checksum or servo error the drive reports); a retry re-rolls.
	Transient
	// BadSector: a permanently unreadable/unwritable sector inside the
	// access range. Deterministic per sector: every access touching it
	// fails until the sector is remapped to a spare.
	BadSector
	// Torn: a multi-sector write stops after TornSectors sectors — the
	// committed prefix is on the media, the rest is not. Each sector is
	// still atomic (the paper's ECC assumption holds per sector).
	Torn
	// Latency: the access succeeds but takes Extra longer (thermal
	// recalibration, internal retries the drive hides).
	Latency
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case BadSector:
		return "bad-sector"
	case Torn:
		return "torn"
	case Latency:
		return "latency"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Outcome is the fault decision for one access.
type Outcome struct {
	Kind Kind
	// Sector is the offending sector (BadSector).
	Sector int64
	// TornSectors is the committed prefix length in sectors (Torn), or the
	// sectors transferred before the bad one (BadSector on a write).
	TornSectors int
	// Extra is added service time (Latency).
	Extra sim.Duration
}

// Spec parameterizes a fault plan. All fields are plain integers so a Spec
// is comparable and fingerprint-friendly. Rates are per ten thousand
// accesses; zero everywhere (or a nil/absent plan) means a fault-free disk.
type Spec struct {
	// Seed selects the deterministic fault stream (and the bad-sector set).
	Seed int64
	// TransientPer10k is the per-access probability of a transient error,
	// in units of 1/10000.
	TransientPer10k int
	// TornPer10k is the per-write probability (multi-sector writes only)
	// of a torn write, in units of 1/10000.
	TornPer10k int
	// LatencyPer10k is the per-access probability of a latency spike, in
	// units of 1/10000.
	LatencyPer10k int
	// LatencySpikeMS is the spike length in milliseconds (default 40).
	LatencySpikeMS int
	// BadSectors is the number of permanently bad sectors sprinkled
	// uniformly over the media by Seed.
	BadSectors int
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.TransientPer10k > 0 || s.TornPer10k > 0 || s.LatencyPer10k > 0 || s.BadSectors > 0
}

// String renders the spec canonically (used in harness cell fingerprints).
func (s Spec) String() string {
	if !s.Enabled() {
		return "off"
	}
	return fmt.Sprintf("seed%d,tr%d,torn%d,lat%d/%dms,bad%d",
		s.Seed, s.TransientPer10k, s.TornPer10k, s.LatencyPer10k, s.spikeMS(), s.BadSectors)
}

func (s Spec) spikeMS() int {
	if s.LatencySpikeMS <= 0 {
		return 40
	}
	return s.LatencySpikeMS
}

// splitmix64 advances x and returns the next value of the stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Judge is what the drive model consults per media access. Implementations
// must be deterministic functions of the access sequence. remapped reports
// whether a sector has been remapped to a spare (remapped sectors cannot
// fault).
type Judge interface {
	Judge(write bool, lbn int64, count int, remapped func(int64) bool) Outcome
}

// Plan is a compiled Spec: the seeded stream plus the bad-sector set for
// one disk. It implements Judge. A nil *Plan judges every access fault-free.
type Plan struct {
	spec  Spec
	state uint64
	bad   map[int64]struct{}
}

// New compiles spec for a disk with the given sector count. The bad-sector
// set is drawn up front from the seed, so it is a pure function of
// (Spec, sectors) and independent of the access sequence.
func New(spec Spec, sectors int64) *Plan {
	p := &Plan{
		spec:  spec,
		state: uint64(spec.Seed)*0x9E3779B97F4A7C15 + 0x1234567,
		bad:   make(map[int64]struct{}, spec.BadSectors),
	}
	if sectors > 0 {
		for len(p.bad) < spec.BadSectors && len(p.bad) < int(sectors) {
			s := int64(splitmix64(&p.state) % uint64(sectors))
			p.bad[s] = struct{}{}
		}
	}
	return p
}

// Spec returns the plan's spec.
func (p *Plan) Spec() Spec { return p.spec }

// BadSectorList returns the permanent bad sectors in ascending order (for
// tests and reports).
func (p *Plan) BadSectorList() []int64 {
	out := make([]int64, 0, len(p.bad))
	for s := range p.bad {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Judge decides the outcome of one media access. Exactly three draws are
// taken from the stream per call regardless of outcome, so the stream
// position is a pure function of the access count.
func (p *Plan) Judge(write bool, lbn int64, count int, remapped func(int64) bool) Outcome {
	if p == nil || !p.spec.Enabled() {
		return Outcome{}
	}
	r1 := splitmix64(&p.state)
	r2 := splitmix64(&p.state)
	r3 := splitmix64(&p.state)

	// Permanent bad sectors dominate: they are a property of the media, not
	// of the command. The first (lowest) offending sector in the range is
	// reported, matching a transfer that proceeds in LBN order.
	if len(p.bad) > 0 {
		for s := lbn; s < lbn+int64(count); s++ {
			if _, ok := p.bad[s]; !ok {
				continue
			}
			if remapped != nil && remapped(s) {
				continue
			}
			return Outcome{Kind: BadSector, Sector: s, TornSectors: int(s - lbn)}
		}
	}
	if p.spec.TransientPer10k > 0 && r1%10000 < uint64(p.spec.TransientPer10k) {
		return Outcome{Kind: Transient}
	}
	if write && count > 1 && p.spec.TornPer10k > 0 && r2%10000 < uint64(p.spec.TornPer10k) {
		return Outcome{Kind: Torn, TornSectors: 1 + int(r2>>32)%(count-1)}
	}
	if p.spec.LatencyPer10k > 0 && r3%10000 < uint64(p.spec.LatencyPer10k) {
		return Outcome{Kind: Latency, Extra: sim.Duration(p.spec.spikeMS()) * sim.Millisecond}
	}
	return Outcome{}
}
