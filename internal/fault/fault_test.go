package fault

import (
	"reflect"
	"testing"

	"metaupdate/internal/sim"
)

// judgeSequence runs a fixed synthetic access pattern through p and returns
// the outcomes.
func judgeSequence(p *Plan, n int, remapped func(int64) bool) []Outcome {
	out := make([]Outcome, n)
	for i := 0; i < n; i++ {
		write := i%3 != 0
		lbn := int64((i * 37) % 4000)
		count := 1 + i%8
		out[i] = p.Judge(write, lbn, count, remapped)
	}
	return out
}

func TestDeterminism(t *testing.T) {
	spec := Spec{Seed: 99, TransientPer10k: 300, TornPer10k: 300, LatencyPer10k: 200, BadSectors: 5}
	a := judgeSequence(New(spec, 4096), 500, nil)
	b := judgeSequence(New(spec, 4096), 500, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec and access sequence produced different outcomes")
	}
	faults := 0
	for _, o := range a {
		if o.Kind != None {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("spec with ~8% combined rates injected nothing in 500 accesses")
	}
	c := judgeSequence(New(Spec{Seed: 100, TransientPer10k: 300, TornPer10k: 300,
		LatencyPer10k: 200, BadSectors: 5}, 4096), 500, nil)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical outcome sequences")
	}
}

// TestFixedDrawsPerJudge pins the three-draws invariant: the stream position
// is a function of the access count alone, so changing what one access
// *touches* (here: whether its bad sector is remapped) must not shift the
// outcomes of later accesses.
func TestFixedDrawsPerJudge(t *testing.T) {
	spec := Spec{Seed: 7, TransientPer10k: 500, TornPer10k: 500, BadSectors: 20}
	pa := New(spec, 2048)
	pb := New(spec, 2048)
	bad := pa.BadSectorList()
	if len(bad) != 20 {
		t.Fatalf("got %d bad sectors, want 20", len(bad))
	}
	// Plan a sees the raw media; plan b sees every bad sector remapped, so
	// its accesses take entirely different branches through Judge.
	a := judgeSequence(pa, 300, nil)
	b := judgeSequence(pb, 300, func(int64) bool { return true })
	for i := range a {
		if a[i].Kind == BadSector {
			continue // the divergent access itself may legitimately differ
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("access %d: outcome %+v with remapping vs %+v without — "+
				"draw count depends on the outcome", i, b[i], a[i])
		}
	}
}

func TestBadSectorSetIsPureFunctionOfSpec(t *testing.T) {
	spec := Spec{Seed: 3, BadSectors: 12}
	a := New(spec, 10000)
	listBefore := a.BadSectorList()
	judgeSequence(a, 200, nil) // advance the stream
	if !reflect.DeepEqual(a.BadSectorList(), listBefore) {
		t.Fatal("judging accesses changed the bad-sector set")
	}
	if !reflect.DeepEqual(New(spec, 10000).BadSectorList(), listBefore) {
		t.Fatal("same (spec, sectors) compiled to a different bad-sector set")
	}
	for i := 1; i < len(listBefore); i++ {
		if listBefore[i] <= listBefore[i-1] {
			t.Fatalf("bad-sector list not strictly ascending: %v", listBefore)
		}
	}
	for _, s := range listBefore {
		if s < 0 || s >= 10000 {
			t.Fatalf("bad sector %d outside the media", s)
		}
	}
}

func TestBadSectorCountClampedToMedia(t *testing.T) {
	p := New(Spec{Seed: 1, BadSectors: 100}, 16)
	if got := len(p.BadSectorList()); got != 16 {
		t.Fatalf("got %d bad sectors on a 16-sector disk, want 16", got)
	}
}

func TestJudgeInvariants(t *testing.T) {
	spec := Spec{Seed: 11, TransientPer10k: 400, TornPer10k: 2000,
		LatencyPer10k: 400, LatencySpikeMS: 25, BadSectors: 30}
	p := New(spec, 4096)
	for i := 0; i < 2000; i++ {
		write := i%2 == 0
		lbn := int64((i * 53) % 4000)
		count := 1 + i%8
		o := p.Judge(write, lbn, count, nil)
		switch o.Kind {
		case Torn:
			if !write || count < 2 {
				t.Fatalf("torn outcome for write=%v count=%d", write, count)
			}
			if o.TornSectors < 1 || o.TornSectors >= count {
				t.Fatalf("torn prefix %d of %d sectors — must be a proper non-empty prefix",
					o.TornSectors, count)
			}
		case BadSector:
			if o.Sector < lbn || o.Sector >= lbn+int64(count) {
				t.Fatalf("bad sector %d outside access [%d,%d)", o.Sector, lbn, lbn+int64(count))
			}
			if o.TornSectors != int(o.Sector-lbn) {
				t.Fatalf("BadSector TornSectors = %d, want sectors before %d (= %d)",
					o.TornSectors, o.Sector, o.Sector-lbn)
			}
		case Latency:
			if o.Extra != 25*sim.Millisecond {
				t.Fatalf("latency spike %v, want the configured 25ms", o.Extra)
			}
		}
	}
}

func TestNilAndDisabledPlansJudgeClean(t *testing.T) {
	var nilPlan *Plan
	if o := nilPlan.Judge(true, 0, 8, nil); o.Kind != None {
		t.Fatalf("nil plan judged %v", o.Kind)
	}
	off := New(Spec{Seed: 42}, 4096)
	for i := 0; i < 100; i++ {
		if o := off.Judge(true, int64(i), 4, nil); o.Kind != None {
			t.Fatalf("disabled spec judged %v", o.Kind)
		}
	}
	if Spec.Enabled(Spec{}) {
		t.Fatal("zero Spec reports Enabled")
	}
	if (Spec{}).String() != "off" {
		t.Fatalf("zero Spec renders %q", (Spec{}).String())
	}
}
