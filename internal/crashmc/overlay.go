package crashmc

import (
	"metaupdate/internal/disk"
	"metaupdate/internal/fsck"
)

// overlay is a copy-on-write crash image: the instant's shared committed
// snapshot plus a per-sector delta holding the contents the
// hypothesized-durable writes would have left on the media. It implements
// fsck.DeltaImage, so a checker worker pays per candidate for the
// candidate's delta — not for a media-sized copy, which dominated the
// pool's cost when images were materialized per job — and the incremental
// checker can re-verify only the state the delta's dirty sectors reach.
//
// The delta is sector-indexed dense state, not a map: Range tests every
// sector it crosses, and map hashing there dominated sweep profiles. mark
// is a generation stamp (== cur means view[s] holds this candidate's
// content), so load never clears the arrays.
//
// Delta entries alias the recorder's write-source snapshots; nothing here
// is ever written, satisfying fsck.Image's read-only contract.
type overlay struct {
	base  []byte
	mark  []uint64 // sector -> generation; == cur means dirty
	view  [][]byte // sector -> one-sector view of the newest writer
	cur   uint64
	dirty []int64 // dirty sectors of the current candidate

	// scratch rotates the buffers backing dirty Range results.
	// fsck.Image's contract promises the last four views stay valid.
	scratch [4][]byte
	next    int
}

// load points the overlay at a job's crash state. The delta is rebuilt in
// apply order — subset in submission order, then the partial's prefix — so
// overlapping writes resolve exactly as materializing them would.
func (o *overlay) load(j *job) {
	o.base = j.img
	if nsec := int(int64(len(j.img)) / disk.SectorSize); len(o.mark) != nsec {
		o.mark = make([]uint64, nsec)
		o.view = make([][]byte, nsec)
	}
	o.cur++
	o.dirty = o.dirty[:0]
	for _, n := range j.subset {
		for i := 0; i < n.count; i++ {
			o.set(n.lbn+int64(i), n.data[i*disk.SectorSize:(i+1)*disk.SectorSize])
		}
	}
	if p := j.partial; p != nil {
		for i := 0; i < j.psec; i++ {
			o.set(p.lbn+int64(i), p.data[i*disk.SectorSize:(i+1)*disk.SectorSize])
		}
	}
}

func (o *overlay) set(s int64, view []byte) {
	if o.mark[s] != o.cur {
		o.mark[s] = o.cur
		o.dirty = append(o.dirty, s)
	}
	o.view[s] = view
}

// materialize flattens the crash state into dst (grown as needed) — the
// recovery path (Config.Recover) needs a mutable image to replay into.
func (o *overlay) materialize(dst []byte) []byte {
	if cap(dst) < len(o.base) {
		dst = make([]byte, len(o.base))
	}
	dst = dst[:len(o.base)]
	copy(dst, o.base)
	for _, s := range o.dirty {
		copy(dst[s*disk.SectorSize:], o.view[s])
	}
	return dst
}

// Len implements fsck.Image.
func (o *overlay) Len() int64 { return int64(len(o.base)) }

// Base implements fsck.DeltaImage.
func (o *overlay) Base() fsck.Image { return fsck.Bytes(o.base) }

// DirtySectors implements fsck.DeltaImage. The slice is valid until the
// next load.
func (o *overlay) DirtySectors() []int64 { return o.dirty }

// Fork implements fsck.Forkable: the fork shares the base and the delta
// (both read-only for the duration of a check) with private scratch, so
// pipelined fsck passes can Range concurrently.
func (o *overlay) Fork() fsck.Image {
	return &overlay{base: o.base, mark: o.mark, view: o.view, cur: o.cur, dirty: o.dirty}
}

// Range implements fsck.Image. Ranges free of dirty sectors alias the base
// snapshot; ranges touching the delta are assembled in a rotating scratch
// buffer.
func (o *overlay) Range(off, n int64) []byte {
	if n <= 0 {
		return nil
	}
	lo := off / disk.SectorSize
	hi := (off + n - 1) / disk.SectorSize
	if lo == hi && o.mark[lo] == o.cur {
		// Entirely inside one dirty sector: alias the writer's view.
		rel := off - lo*disk.SectorSize
		return o.view[lo][rel : rel+n]
	}
	dirty := false
	for s := lo; s <= hi; s++ {
		if o.mark[s] == o.cur {
			dirty = true
			break
		}
	}
	if !dirty {
		return o.base[off : off+n]
	}
	buf := o.grab(int(n))
	copy(buf, o.base[off:off+n])
	for s := lo; s <= hi; s++ {
		if o.mark[s] != o.cur {
			continue
		}
		// Intersect the sector with [off, off+n); copy bounds the tail.
		src, dst := int64(0), s*disk.SectorSize-off
		if dst < 0 {
			src, dst = -dst, 0
		}
		copy(buf[dst:], o.view[s][src:])
	}
	return buf
}

func (o *overlay) grab(n int) []byte {
	i := o.next
	o.next = (o.next + 1) % len(o.scratch)
	if cap(o.scratch[i]) < n {
		o.scratch[i] = make([]byte, n)
	}
	o.scratch[i] = o.scratch[i][:n]
	return o.scratch[i]
}
