package crashmc

import (
	"metaupdate/internal/disk"
)

// overlay is a copy-on-write crash image: the instant's shared committed
// snapshot plus a per-sector delta map holding the contents the
// hypothesized-durable writes would have left on the media. It implements
// fsck.Image, so a checker worker pays per candidate for the candidate's
// delta — not for a media-sized copy, which dominated the pool's cost when
// images were materialized per job.
//
// Delta entries alias the recorder's write-source snapshots; nothing here
// is ever written, satisfying fsck.Image's read-only contract.
type overlay struct {
	base  []byte
	delta map[int64][]byte // sector -> one-sector view of the newest writer

	// scratch rotates the buffers backing dirty Range results.
	// fsck.Image's contract promises the last four views stay valid.
	scratch [4][]byte
	next    int
}

// load points the overlay at a job's crash state. The delta is rebuilt in
// apply order — subset in submission order, then the partial's prefix — so
// overlapping writes resolve exactly as materializing them would.
func (o *overlay) load(j *job) {
	o.base = j.img
	clear(o.delta)
	for _, n := range j.subset {
		for i := 0; i < n.count; i++ {
			o.delta[n.lbn+int64(i)] = n.data[i*disk.SectorSize : (i+1)*disk.SectorSize]
		}
	}
	if p := j.partial; p != nil {
		for i := 0; i < j.psec; i++ {
			o.delta[p.lbn+int64(i)] = p.data[i*disk.SectorSize : (i+1)*disk.SectorSize]
		}
	}
}

// Len implements fsck.Image.
func (o *overlay) Len() int64 { return int64(len(o.base)) }

// Range implements fsck.Image. Ranges free of dirty sectors alias the base
// snapshot; ranges touching the delta are assembled in a rotating scratch
// buffer.
func (o *overlay) Range(off, n int64) []byte {
	if n <= 0 {
		return nil
	}
	lo := off / disk.SectorSize
	hi := (off + n - 1) / disk.SectorSize
	dirty := false
	for s := lo; s <= hi; s++ {
		if _, ok := o.delta[s]; ok {
			dirty = true
			break
		}
	}
	if !dirty {
		return o.base[off : off+n]
	}
	buf := o.grab(int(n))
	copy(buf, o.base[off:off+n])
	for s := lo; s <= hi; s++ {
		d, ok := o.delta[s]
		if !ok {
			continue
		}
		// Intersect the sector with [off, off+n); copy bounds the tail.
		src, dst := int64(0), s*disk.SectorSize-off
		if dst < 0 {
			src, dst = -dst, 0
		}
		copy(buf[dst:], d[src:])
	}
	return buf
}

func (o *overlay) grab(n int) []byte {
	i := o.next
	o.next = (o.next + 1) % len(o.scratch)
	if cap(o.scratch[i]) < n {
		o.scratch[i] = make([]byte, n)
	}
	o.scratch[i] = o.scratch[i][:n]
	return o.scratch[i]
}
