package crashmc

import (
	"testing"

	"metaupdate/fsim"
)

// BenchmarkCrashmcSweep explores one recorded soft-updates timeline at the
// standard sweep budget, incrementally and with per-candidate full checks.
// The custom checked/s metric is the number the sweep matrix reports; the
// incremental/full ratio is what BENCH_3.json's CI guard watches.
func BenchmarkCrashmcSweep(b *testing.B) {
	rec := recordRun(b, fsim.SoftUpdates, 70)
	for _, mode := range []struct {
		name string
		full bool
	}{
		{"incremental", false},
		{"full", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{Workers: 2, Budget: 4000, PerInstant: 256, FullCheck: mode.full}
			b.ReportAllocs()
			var checked, elapsed float64
			for i := 0; i < b.N; i++ {
				res := rec.Explore(cfg)
				checked += float64(res.Stats.Checked)
				elapsed += res.Stats.ElapsedSec
			}
			if elapsed > 0 {
				b.ReportMetric(checked/elapsed, "checked/s")
			}
		})
	}
}
