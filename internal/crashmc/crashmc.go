// Package crashmc is a crash-consistency model checker: it turns the
// repository's one-shot crash injection (dev.Driver.Crash at a single
// instant) into bounded-exhaustive exploration of the crash-state space.
//
// A Recorder attaches to the device driver as a dev.Observer and records
// the write timeline of a workload run: every submitted request with its
// write source and the barrier set the driver will enforce, and every
// completion batch, in virtual-time order. After the run, Explore
// enumerates the crash images that timeline could have left on the media:
//
//   - every inter-event crash instant (the image after any prefix of the
//     completion sequence);
//   - at each instant, every completed-subset of the then-pending writes
//     that the scheme's ordering semantics permit — a subset is legal iff
//     it is closed under the driver's barrier relation (dev.Predecessors),
//     with chains of read requests collapsed to their write ancestors;
//   - for each write that could legally have been in flight, every
//     partial-sector prefix (writes are sector-atomic, the paper's stated
//     assumption).
//
// Crash states are deduplicated up front by an incrementally-maintained
// per-sector content signature, then handed to a worker pool as
// copy-on-write overlays (the instant's committed snapshot plus a
// per-sector delta map) and verified through fsck.CheckImage (plus,
// optionally, fsck.ContentViolationsImage) without ever materializing a
// full image per candidate.
// Real goroutine parallelism is safe here because image checking happens
// entirely outside the deterministic simulation. Any violating image can
// be shrunk to a minimal repro: the smallest dependency-closed write
// subset that still violates, naming the offending requests.
//
// The exploration is sound but bounded: it reorders only the writes the
// run actually issued (with their recorded contents), so schemes whose
// completion handlers would have issued different writes under a different
// completion order are checked against the recorded schedule's contents.
// This is the standard trace-based approach (compare SquirrelFS's
// model-checked crash states and pFSCK's parallel checking, PAPERS.md).
package crashmc

import (
	"fmt"
	"hash/maphash"
	"math"
	"sort"

	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
)

// node is one recorded request.
type node struct {
	id    uint64
	write bool
	lbn   int64
	count int    // sectors
	data  []byte // write source snapshot; nil for reads
	// sech[i] fingerprints the write's i-th sector. Successive writes to a
	// range often repeat bytes — per-sector content fingerprints let the
	// enumerator recognize the resulting duplicate images without
	// materializing them.
	sech []uint64
	// effPreds are the write IDs that must be durable before this request
	// may complete, with read-only dependency chains collapsed (a write
	// gated on a read inherits the read's write ancestors). Sorted.
	effPreds []uint64
	// completedAt is the event index of the completion, -1 if the run
	// ended with the request still pending.
	completedAt int
}

// apply copies the write's full content onto img.
func (n *node) apply(img []byte) {
	copy(img[n.lbn*disk.SectorSize:], n.data)
}

// applyPrefix commits only the first sectors sectors (the mid-write crash).
func (n *node) applyPrefix(img []byte, sectors int) {
	copy(img[n.lbn*disk.SectorSize:], n.data[:sectors*disk.SectorSize])
}

// event is one timeline step: a submission, a completion batch, a torn
// batch prefix landing on the media, or a batch failing with an error.
type event struct {
	submit   uint64 // non-zero: ID of the submitted request
	complete []uint64
	// torn, when non-nil, lists a faulted write batch in transfer (LBN)
	// order; tornSec sectors of the batch landed before the fault. The
	// requests stay pending — the driver will retry or fail them later.
	torn    []uint64
	tornSec int
	// failed, when non-nil, lists requests that completed with an error:
	// nothing (beyond earlier torn prefixes) reached the media, and their
	// successors are no longer constrained by them.
	failed []uint64
}

// Recorder captures a driver's write timeline for later exploration.
// Attach it before the workload runs; it is not safe to explore while the
// simulation is still moving.
type Recorder struct {
	base    []byte
	nodes   map[uint64]*node
	events  []event
	writes  int
	sectors int64
	torn    int          // BatchTorn events observed
	failed  int          // requests that completed with an error
	hseed   maphash.Seed // content-fingerprint seed, one per recording
}

// Attach snapshots the disk's current media as the pre-workload base image
// and installs a fresh Recorder as drv's observer.
func Attach(drv *dev.Driver, dsk *disk.Disk) *Recorder {
	r := &Recorder{
		base:  dsk.CloneImage(),
		nodes: make(map[uint64]*node),
		hseed: maphash.MakeSeed(),
	}
	drv.SetObserver(r)
	return r
}

// RequestSubmitted implements dev.Observer.
func (r *Recorder) RequestSubmitted(q *dev.Request, preds []uint64) {
	n := &node{
		id:          q.ID,
		write:       q.Op == disk.Write,
		lbn:         q.LBN,
		count:       q.Count,
		completedAt: -1,
	}
	if n.write {
		n.data = append([]byte(nil), q.Data...)
		n.sech = make([]uint64, n.count)
		for s := 0; s < n.count; s++ {
			n.sech[s] = maphash.Bytes(r.hseed, n.data[s*disk.SectorSize:(s+1)*disk.SectorSize])
		}
		r.writes++
		r.sectors += int64(q.Count)
	}
	// Collapse read chains: a predecessor that is itself a read
	// contributes its own write ancestors instead. Predecessors that
	// predate the recorder are already durable and drop out.
	seen := make(map[uint64]struct{})
	for _, p := range preds {
		pn := r.nodes[p]
		if pn == nil {
			continue
		}
		if pn.write {
			seen[p] = struct{}{}
			continue
		}
		for _, wp := range pn.effPreds {
			seen[wp] = struct{}{}
		}
	}
	n.effPreds = make([]uint64, 0, len(seen))
	for id := range seen {
		n.effPreds = append(n.effPreds, id)
	}
	sort.Slice(n.effPreds, func(i, j int) bool { return n.effPreds[i] < n.effPreds[j] })
	r.nodes[q.ID] = n
	r.events = append(r.events, event{submit: q.ID})
}

// RequestsCompleted implements dev.Observer.
func (r *Recorder) RequestsCompleted(ids []uint64, at sim.Time) {
	ev := event{complete: append([]uint64(nil), ids...)}
	r.events = append(r.events, ev)
	for _, id := range ids {
		if n := r.nodes[id]; n != nil {
			n.completedAt = len(r.events) - 1
		}
	}
}

// BatchTorn implements dev.FaultObserver: a faulted write batch committed
// its first sectors sectors (in transfer order) before stopping. The torn
// prefix is a new crash atom — the media changed while every request in
// the batch stays pending.
func (r *Recorder) BatchTorn(ids []uint64, sectors int, at sim.Time) {
	r.torn++
	r.events = append(r.events, event{torn: append([]uint64(nil), ids...), tornSec: sectors})
}

// RequestsFailed implements dev.FaultObserver: the requests gave up with an
// error. Their full contents never landed and they stop constraining their
// successors (the driver unblocks dependents of a failed request).
func (r *Recorder) RequestsFailed(ids []uint64, at sim.Time) {
	r.failed += len(ids)
	r.events = append(r.events, event{failed: append([]uint64(nil), ids...)})
}

// Writes reports the number of recorded write requests.
func (r *Recorder) Writes() int { return r.writes }

// Config bounds and parameterizes an exploration.
type Config struct {
	// Workers sets the image-checking goroutine count (default
	// runtime.GOMAXPROCS(0)).
	Workers int
	// Budget caps the total crash states generated (default 50000).
	Budget int
	// PerInstant caps the states generated at any single crash instant,
	// so one huge pending set cannot starve the rest of the timeline
	// (default 1024).
	PerInstant int
	// CheckContent additionally runs fsck.ContentViolations on each image
	// (for workloads that stamp file data with fsck.MakeStampedData).
	CheckContent bool
	// ExtraCheck, if set, runs an additional oracle over each image; any
	// strings it returns are recorded as findings alongside fsck's. It is
	// called concurrently from the checker pool and must be safe for
	// concurrent use with distinct images.
	ExtraCheck func(fsck.Image) []string
	// Recover, if set, runs crash-time recovery on each materialized crash
	// image before the fsck oracle (the Journaling scheme sets it to journal
	// replay). Setting it forces full checking — recovery rewrites arbitrary
	// home fragments, so delta replay against a committed baseline is
	// unsound. It is called concurrently on distinct images.
	Recover func([]byte)
	// FullCheck disables incremental checking: every candidate is verified
	// by a full fsck walk instead of replaying deltas against a cached
	// per-snapshot Baseline. Reports are identical either way — the
	// differential oracle (incremental_test.go) enforces it — so full mode
	// exists for benchmarking the speedup and as a belt-and-braces CI path.
	FullCheck bool
	// PassWorkers sets fsck's pass-level parallelism per image: baseline
	// builds (incremental mode) and full walks (FullCheck mode) derive
	// with that many cooperating goroutines, pFSCK-style. Useful when
	// instants are few but images are huge — trading image-level for
	// pass-level parallelism; total goroutines scale with
	// Workers×PassWorkers, so lower Workers when raising this. Default 1.
	PassWorkers int
	// Shrink reduces the lowest-sequence violating state to a minimal
	// repro after the sweep.
	Shrink bool
	// MaxViolations bounds the retained violating states; the lowest
	// sequence numbers are kept (default 64). The Violating counter is
	// exact regardless.
	MaxViolations int
	// ShrinkTrials caps the images materialized while shrinking
	// (default 800).
	ShrinkTrials int
}

func (c *Config) setDefaults(defaultWorkers int) {
	if c.Workers <= 0 {
		c.Workers = defaultWorkers
	}
	if c.Budget <= 0 {
		c.Budget = 50000
	}
	if c.PerInstant <= 0 {
		c.PerInstant = 1024
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 64
	}
	if c.ShrinkTrials <= 0 {
		c.ShrinkTrials = 800
	}
}

// Stats counts an exploration, pFSCK-style: how much state space was
// covered and how fast the parallel checkers got through it.
type Stats struct {
	Requests int `json:"requests"`         // recorded requests (reads + writes)
	Writes   int `json:"writes"`           // recorded writes
	Instants int `json:"instants"`         // crash instants enumerated
	Torn     int `json:"torn,omitempty"`   // torn-batch events in the timeline
	Failed   int `json:"failed,omitempty"` // requests that errored out

	Explored  int64 `json:"explored"`  // crash states generated
	Deduped   int64 `json:"deduped"`   // states skipped as duplicate images
	Checked   int64 `json:"checked"`   // distinct images run through fsck
	Violating int64 `json:"violating"` // distinct images with rule violations

	// Incremental reports the checking mode; BaselineBuilds counts the
	// committed-image baselines derived in incremental mode (one per
	// snapshot version, shared across workers).
	Incremental    bool  `json:"incremental"`
	BaselineBuilds int64 `json:"baseline_builds,omitempty"`

	ElapsedSec    float64 `json:"elapsed_sec"`     // wall-clock exploration time
	CheckedPerSec float64 `json:"checked_per_sec"` // fsck throughput
}

// FinalizeThroughput derives CheckedPerSec from Checked and ElapsedSec.
// Degenerate elapsed times (a tiny sweep whose wall clock rounds to zero)
// report 0 rather than +Inf or NaN — values encoding/json refuses to
// marshal, which used to turn `mdcheck -json` into an encode error.
func (s *Stats) FinalizeThroughput() {
	s.CheckedPerSec = 0
	if s.ElapsedSec > 0 {
		if r := float64(s.Checked) / s.ElapsedSec; !math.IsInf(r, 0) && !math.IsNaN(r) {
			s.CheckedPerSec = r
		}
	}
}

// WriteInfo describes one offending write in a violation or repro.
type WriteInfo struct {
	ID      uint64 `json:"id"`
	LBN     int64  `json:"lbn"`
	Sectors int    `json:"sectors"`
}

func (w WriteInfo) String() string {
	return fmt.Sprintf("write #%d [lbn %d, %d sectors]", w.ID, w.LBN, w.Sectors)
}

// Violation is one violating crash state.
type Violation struct {
	Seq int64 `json:"seq"` // generation sequence number (deterministic)
	// Instant is the crash instant's index into the event timeline.
	Instant int `json:"instant"`
	// Completed is the number of writes durably completed at the instant.
	Completed int `json:"completed"`
	// Applied lists the pending writes hypothesized complete.
	Applied []WriteInfo `json:"applied,omitempty"`
	// Partial, if non-nil, is the write caught mid-transfer with
	// PartialSectors sectors committed.
	Partial        *WriteInfo `json:"partial,omitempty"`
	PartialSectors int        `json:"partial_sectors,omitempty"`
	Findings       []string   `json:"findings"`
}

// Repro is a shrunk violation: the minimal dependency-closed write subset
// that still violates, named by request.
type Repro struct {
	Writes         []WriteInfo `json:"writes"`
	Partial        *WriteInfo  `json:"partial,omitempty"`
	PartialSectors int         `json:"partial_sectors,omitempty"`
	Findings       []string    `json:"findings"`
	Trials         int         `json:"trials"`
}

func (r *Repro) String() string {
	s := fmt.Sprintf("minimal repro: %d writes", len(r.Writes))
	for _, w := range r.Writes {
		s += "\n  " + w.String()
	}
	if r.Partial != nil {
		s += fmt.Sprintf("\n  %v cut at %d sectors", *r.Partial, r.PartialSectors)
	}
	for _, f := range r.Findings {
		s += "\n  => " + f
	}
	return s
}

// Result is the outcome of one exploration.
type Result struct {
	Stats      Stats       `json:"stats"`
	Violations []Violation `json:"violations,omitempty"`
	Repro      *Repro      `json:"repro,omitempty"`
}

// Clean reports whether no checked image violated an ordering rule.
func (r *Result) Clean() bool { return r.Stats.Violating == 0 }
