package crashmc

// The incremental checker's differential oracle: fsck reports for delta
// images replayed against a cached Baseline must equal, field for field,
// full checks of the materialized image — over randomized (seeded
// splitmix64) overlay deltas drawn from all five schemes' recorded write
// timelines, and end-to-end over whole explorations.

import (
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/fsck"
	"metaupdate/internal/workload"
)

// recordRun is the internal-package twin of the external tests' record
// helper: a small create/remove workload with a Recorder attached.
func recordRun(t testing.TB, scheme fsim.Scheme, files int) *Recorder {
	t.Helper()
	sys, err := fsim.New(fsim.Options{
		Scheme:     scheme,
		DiskBytes:  6 << 20,
		NInodes:    1024,
		CacheBytes: 2 << 20,
	})
	if err != nil {
		t.Fatalf("fsim.New(%v): %v", scheme, err)
	}
	rec := Attach(sys.Driver, sys.Disk)
	var werr error
	sys.Run(func(p *fsim.Proc) {
		dir, err := sys.FS.Mkdir(p, fsim.RootIno, "mc")
		if err != nil {
			werr = err
			return
		}
		if err := workload.CreateFiles(p, sys.FS, dir, files, 1024); err != nil {
			werr = err
			return
		}
		sys.FS.Sync(p)
		if err := workload.RemoveFiles(p, sys.FS, dir, files); err != nil {
			werr = err
			return
		}
		sys.FS.Sync(p)
	})
	sys.Shutdown()
	if werr != nil {
		t.Fatalf("workload: %v", werr)
	}
	return rec
}

func splitmix(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z ^= z >> 30
	z *= 0xBF58476D1CE4B9FD
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// compareReports asserts every exported Report field matches.
func compareReports(t *testing.T, trial int, inc, full *fsck.Report) {
	t.Helper()
	// The incremental report reuses its Findings backing array (len 0, not
	// nil), so compare by content rather than reflect.DeepEqual on slices.
	if len(inc.Findings) != len(full.Findings) {
		t.Fatalf("trial %d: findings differ\nincremental: %v\nfull:        %v", trial, inc.Findings, full.Findings)
	}
	for i := range inc.Findings {
		if inc.Findings[i] != full.Findings[i] {
			t.Fatalf("trial %d: finding %d differs\nincremental: %+v\nfull:        %+v", trial, i, inc.Findings[i], full.Findings[i])
		}
	}
	if !reflect.DeepEqual(inc.Refs, full.Refs) {
		t.Fatalf("trial %d: refs differ\nincremental: %v\nfull:        %v", trial, inc.Refs, full.Refs)
	}
	if inc.AllocatedInodes != full.AllocatedInodes || inc.ReferencedFrags != full.ReferencedFrags {
		t.Fatalf("trial %d: counters differ: alloc %d/%d, frags %d/%d", trial,
			inc.AllocatedInodes, full.AllocatedInodes, inc.ReferencedFrags, full.ReferencedFrags)
	}
}

// TestIncrementalEqualsFull replays randomized overlay deltas — random
// subsets of each recorded timeline's writes, with random torn-write
// prefixes, over both the pre-workload base and a mid-timeline committed
// image — and requires the DeltaChecker's spliced report to equal a full
// CheckImage of the materialized bytes, field for field. The subsets are
// not restricted to barrier-closed ones: incremental checking must agree
// on every delta, legal or not.
func TestIncrementalEqualsFull(t *testing.T) {
	schemes := []fsim.Scheme{fsim.Conventional, fsim.SchedulerFlag, fsim.SchedulerChains, fsim.SoftUpdates, fsim.NoOrder}
	for _, scheme := range schemes {
		t.Run(scheme.String(), func(t *testing.T) {
			rec := recordRun(t, scheme, 10)
			var writes []*node
			for _, n := range rec.nodes {
				if n.write {
					writes = append(writes, n)
				}
			}
			sort.Slice(writes, func(i, j int) bool { return writes[i].id < writes[j].id })
			if len(writes) == 0 {
				t.Fatal("no writes recorded")
			}

			// Two bases: the pre-workload image and a mid-timeline committed
			// image (first half of the writes applied in ID order).
			mid := append([]byte(nil), rec.base...)
			for _, w := range writes[:len(writes)/2] {
				w.apply(mid)
			}
			bases := [][]byte{rec.base, mid}

			rng := uint64(0x1994_1114) ^ uint64(scheme)<<8
			ov := &overlay{}
			for bi, base := range bases {
				bl := fsck.NewBaseline(fsck.Bytes(base), 1)
				dc := fsck.NewDeltaChecker(bl)
				for trial := 0; trial < 60; trial++ {
					j := job{img: base, imgVer: uint64(bi + 1)}
					for _, w := range writes {
						if splitmix(&rng)%4 == 0 {
							j.subset = append(j.subset, w)
						}
					}
					if splitmix(&rng)%2 == 0 {
						p := writes[splitmix(&rng)%uint64(len(writes))]
						if p.count > 1 {
							j.partial = p
							j.psec = 1 + int(splitmix(&rng)%uint64(p.count-1))
						}
					}
					ov.load(&j)
					inc := dc.Check(ov)
					full := fsck.CheckImage(fsck.Bytes(fsck.Materialize(ov)))
					compareReports(t, trial, inc, full)
				}
				if dc.Stats.Checks == 0 || dc.Stats.FullFallbacks != 0 {
					t.Fatalf("base %d: delta checks did not run incrementally: %+v", bi, dc.Stats)
				}
				// Committed bases are conflict-free, so the spliced merge must
				// carry the bulk of the checks, not just the re-derivation.
				if dc.Stats.SplicedMerges < dc.Stats.Checks/2 {
					t.Errorf("base %d: only %d of %d checks used the spliced merge",
						bi, dc.Stats.SplicedMerges, dc.Stats.Checks)
				}
				// The whole point: re-derivation must be a small fraction of
				// checks × inode count.
				if dc.Stats.InodesRederived >= dc.Stats.Checks*int64(bl.NInodes())/4 {
					t.Errorf("base %d: %d inodes re-derived over %d checks of %d inodes — not incremental",
						bi, dc.Stats.InodesRederived, dc.Stats.Checks, bl.NInodes())
				}
			}
		})
	}
}

// TestExploreFullCheckAgrees runs whole explorations in incremental
// (default), FullCheck, and pass-parallel modes and requires identical
// counters and identical retained violations.
func TestExploreFullCheckAgrees(t *testing.T) {
	rec := recordRun(t, fsim.NoOrder, 8)
	base := Config{Workers: 2, Budget: 1000, PerInstant: 256}
	inc := rec.Explore(base)

	full := base
	full.FullCheck = true
	fres := rec.Explore(full)

	pw := base
	pw.PassWorkers = 2
	pres := rec.Explore(pw)

	fpw := full
	fpw.PassWorkers = 2
	fpres := rec.Explore(fpw)

	for name, res := range map[string]*Result{"full": fres, "incremental+passworkers": pres, "full+passworkers": fpres} {
		if inc.Stats.Explored != res.Stats.Explored || inc.Stats.Checked != res.Stats.Checked ||
			inc.Stats.Deduped != res.Stats.Deduped || inc.Stats.Violating != res.Stats.Violating {
			t.Fatalf("%s: counters differ from incremental:\ninc:  %+v\n%s: %+v", name, inc.Stats, name, res.Stats)
		}
		if len(inc.Violations) != len(res.Violations) {
			t.Fatalf("%s: retained violations differ: %d vs %d", name, len(inc.Violations), len(res.Violations))
		}
		for i := range inc.Violations {
			if inc.Violations[i].Seq != res.Violations[i].Seq ||
				!reflect.DeepEqual(inc.Violations[i].Findings, res.Violations[i].Findings) {
				t.Fatalf("%s: violation %d differs:\ninc:  %+v\nother: %+v", name, i,
					inc.Violations[i], res.Violations[i])
			}
		}
	}
	if !inc.Stats.Incremental || fres.Stats.Incremental {
		t.Fatalf("Incremental flags wrong: inc=%v full=%v", inc.Stats.Incremental, fres.Stats.Incremental)
	}
	if inc.Stats.BaselineBuilds == 0 {
		t.Error("incremental exploration built no baselines")
	}
	if fres.Stats.BaselineBuilds != 0 {
		t.Errorf("full exploration built %d baselines; wanted none", fres.Stats.BaselineBuilds)
	}
}

// TestFinalizeThroughput pins the CheckedPerSec guard: degenerate elapsed
// times must produce 0, never +Inf/NaN — which encoding/json refuses to
// marshal, turning `mdcheck -json` into an encode error.
func TestFinalizeThroughput(t *testing.T) {
	cases := []struct {
		checked int64
		elapsed float64
		want    float64
	}{
		{100, 0, 0},  // tiny sweep, clock rounded to zero: the old +Inf
		{0, 0, 0},    // 0/0: the old NaN
		{100, -1, 0}, // clock went backwards
		{100, math.NaN(), 0},
		{50, 2, 25}, // the normal case still divides
	}
	for _, c := range cases {
		s := Stats{Checked: c.checked, ElapsedSec: c.elapsed}
		s.FinalizeThroughput()
		if s.CheckedPerSec != c.want {
			t.Errorf("FinalizeThroughput(checked=%d, elapsed=%v) = %v, want %v",
				c.checked, c.elapsed, s.CheckedPerSec, c.want)
		}
		if c.elapsed == c.elapsed { // skip NaN ElapsedSec for the marshal check
			if _, err := json.Marshal(&s); err != nil {
				t.Errorf("stats with elapsed=%v not marshalable: %v", c.elapsed, err)
			}
		}
	}
}
