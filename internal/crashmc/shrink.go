package crashmc

import "metaupdate/internal/fsck"

// shrink reduces a violating crash state to a minimal repro: first a binary
// search for the shortest completed-write prefix that still violates, then
// greedy delta-debugging over the surviving writes, always removing a write
// together with its transitive dependents so every trial stays closed under
// the recorded barrier relation.
//
// The result is a diagnostic, not a certificate of minimality: the recorded
// predecessor edges only cover requests pending at submission time (older
// ones were already durable), so an already-completed ordering dependency
// can be cut without being noticed. In practice the repro still names the
// handful of writes whose ordering the scheme got wrong.
func (r *Recorder) shrink(v Violation, cfg Config, doneOrder []*node) *Repro {
	trials := 0
	// One scratch image for every trial: the shrinker is single-threaded,
	// so reusing the buffer (like the checker pool's per-worker scratch)
	// avoids an image-sized allocation per candidate.
	img := make([]byte, len(r.base))
	materialize := func(writes []*node, partial *node, psec int) {
		copy(img, r.base)
		for _, n := range writes {
			n.apply(img)
		}
		if partial != nil {
			partial.applyPrefix(img, psec)
		}
		if cfg.Recover != nil {
			cfg.Recover(img)
		}
	}
	violates := func(writes []*node, partial *node, psec int) bool {
		if trials >= cfg.ShrinkTrials {
			return false // out of budget: refuse the reduction, keep going
		}
		trials++
		materialize(writes, partial, psec)
		return len(checkImage(fsck.Bytes(img), 1, cfg.CheckContent, cfg.ExtraCheck)) > 0
	}

	subset := make([]*node, 0, len(v.Applied))
	for _, w := range v.Applied {
		if n := r.nodes[w.ID]; n != nil {
			subset = append(subset, n)
		}
	}
	var partial *node
	psec := 0
	if v.Partial != nil {
		partial = r.nodes[v.Partial.ID]
		psec = v.PartialSectors
	}

	// Phase 1: smallest completed prefix. A prefix of the completion order
	// is trivially closed (every predecessor completed earlier).
	if v.Completed > len(doneOrder) {
		v.Completed = len(doneOrder)
	}
	lo, hi := 0, v.Completed
	for lo < hi {
		mid := (lo + hi) / 2
		if violates(append(append([]*node(nil), doneOrder[:mid]...), subset...), partial, psec) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	writes := append(append([]*node(nil), doneOrder[:lo]...), subset...)

	// Phase 2: greedy removal, newest first, each write taken out with its
	// transitive dependents; iterate to a fixpoint.
	dependents := func(list []*node, victim *node) map[uint64]struct{} {
		drop := map[uint64]struct{}{victim.id: {}}
		for changed := true; changed; {
			changed = false
			for _, n := range list {
				if _, gone := drop[n.id]; gone {
					continue
				}
				for _, p := range n.effPreds {
					if _, gone := drop[p]; gone {
						drop[n.id] = struct{}{}
						changed = true
						break
					}
				}
			}
		}
		return drop
	}
	without := func(list []*node, drop map[uint64]struct{}) []*node {
		out := make([]*node, 0, len(list))
		for _, n := range list {
			if _, gone := drop[n.id]; !gone {
				out = append(out, n)
			}
		}
		return out
	}
	partialDropped := func(drop map[uint64]struct{}) bool {
		if partial == nil {
			return false
		}
		for _, p := range partial.effPreds {
			if _, gone := drop[p]; gone {
				return true
			}
		}
		return false
	}
	for improved := true; improved && trials < cfg.ShrinkTrials; {
		improved = false
		if partial != nil && violates(writes, nil, 0) {
			partial, psec = nil, 0
			improved = true
		}
		for i := len(writes) - 1; i >= 0 && trials < cfg.ShrinkTrials; i-- {
			drop := dependents(writes, writes[i])
			cand := without(writes, drop)
			cp, cs := partial, psec
			if partialDropped(drop) {
				cp, cs = nil, 0
			}
			if violates(cand, cp, cs) {
				writes, partial, psec = cand, cp, cs
				improved = true
				break
			}
		}
	}
	// Shrink the partial's committed sector count too.
	if partial != nil {
		for s := 1; s < psec; s++ {
			if violates(writes, partial, s) {
				psec = s
				break
			}
		}
	}

	// Re-materialize the final state for its findings.
	materialize(writes, partial, psec)
	rep := &Repro{Findings: checkImage(fsck.Bytes(img), 1, cfg.CheckContent, cfg.ExtraCheck), Trials: trials}
	for _, n := range writes {
		rep.Writes = append(rep.Writes, WriteInfo{ID: n.id, LBN: n.lbn, Sectors: n.count})
	}
	if partial != nil {
		rep.Partial = &WriteInfo{ID: partial.id, LBN: partial.lbn, Sectors: partial.count}
		rep.PartialSectors = psec
	}
	return rep
}
