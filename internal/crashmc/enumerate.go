package crashmc

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metaupdate/internal/disk"
	"metaupdate/internal/fsck"
)

// job is one crash state handed to the checker pool: a shared committed
// snapshot plus the pending-write deltas hypothesized durable.
type job struct {
	seq int64
	img []byte // committed image for the instant; read-only
	// imgVer identifies img: it bumps whenever the explorer snapshots a new
	// committed image, so workers can key their cached fsck Baselines on it
	// (jobs sharing a version share the identical base bytes).
	imgVer    uint64
	subset    []*node
	partial   *node
	psec      int
	instant   int
	completed int // writes durably completed at the instant
}

// explorer walks the recorded timeline and generates crash states.
type explorer struct {
	rec *Recorder
	cfg Config

	jobs      chan job
	pool      *checkerPool
	committed []byte
	imgVer    uint64
	shared    bool // committed is referenced by emitted jobs
	doneSet   map[uint64]struct{}
	doneOrder []*node // completed writes, completion order
	pending   []*node // pending writes, submission (ID) order
	instant   int
	explored  int64
	stopped   bool // budget exhausted

	// Per-sector signature pre-filter. A crash image is exactly its
	// per-sector content, so its signature is the XOR over all written
	// sectors of mix(sector, content fingerprint) — XOR makes the
	// signature incrementally maintainable: doneXor tracks the committed
	// image, and a candidate adjusts it by the sectors its subset and
	// partial would overwrite (newest writer per sector wins, as the
	// driver's conflict rule guarantees overlapping writes land in ID
	// order). Candidates whose signature was already seen are duplicate
	// images — across subsets AND across crash instants — and are skipped
	// before paying for a full-image copy and hash; under the async
	// schemes most candidates collapse this way.
	// doneH/doneOK are sector-indexed (the image size is fixed): the
	// committed content fingerprint of every write-reachable sector.
	// seenSec is the per-candidate claimed-generation stamp. Dense slices,
	// not maps — signature runs once per emitted candidate and the map
	// hashing showed up hard in sweep profiles.
	doneH      []uint64
	doneOK     []bool
	doneXor    uint64
	seenSec    []int
	gen        int
	sigSeen    map[uint64]struct{}
	preDeduped int64
}

// mix spreads a (sector, content fingerprint) pair into the XOR signature
// (splitmix64-style finalizer).
func mix(s int64, h uint64) uint64 {
	x := uint64(s)*0x9E3779B97F4A7C15 ^ h
	x ^= x >> 32
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 32
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 32
	return x
}

// Explore enumerates the crash-state space of the recorded run and checks
// every distinct image. Call it only after the simulation has stopped.
func (r *Recorder) Explore(cfg Config) *Result {
	cfg.setDefaults(runtime.GOMAXPROCS(0))
	start := time.Now()

	x := &explorer{
		rec:       r,
		cfg:       cfg,
		jobs:      make(chan job, 4*cfg.Workers),
		committed: append([]byte(nil), r.base...),
		imgVer:    1,
		doneSet:   make(map[uint64]struct{}),
		sigSeen:   make(map[uint64]struct{}),
	}
	nsec := int64(len(r.base)) / disk.SectorSize
	x.doneH = make([]uint64, nsec)
	x.doneOK = make([]bool, nsec)
	x.seenSec = make([]int, nsec)
	// Seed the signature with the base image's fingerprint for every sector
	// a recorded write can touch. Without this, a write carrying bytes
	// identical to what the base already holds would change the signature
	// while leaving the image unchanged — two content-equal states with
	// different signatures, breaking the signature's defining property of
	// being a pure function of image content.
	for _, n := range r.nodes {
		if !n.write {
			continue
		}
		for i := 0; i < n.count; i++ {
			s := n.lbn + int64(i)
			if x.doneOK[s] {
				continue
			}
			h := maphash.Bytes(r.hseed, r.base[s*disk.SectorSize:(s+1)*disk.SectorSize])
			x.doneH[s] = h
			x.doneOK[s] = true
			x.doneXor ^= mix(s, h)
		}
	}
	pool := newCheckerPool(cfg)
	x.pool = pool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.run(x.jobs)
		}()
	}

	x.emitInstant() // the pre-workload image
	for _, ev := range r.events {
		if x.stopped {
			break
		}
		switch {
		case ev.submit != 0:
			n := r.nodes[ev.submit]
			if n == nil || !n.write {
				continue // reads change neither media nor legal subsets
			}
			x.pending = append(x.pending, n)
		case ev.torn != nil:
			// A faulted batch landed a sector prefix: the media changed but
			// every request stays pending (the driver retries or fails them
			// later). The committed image gains the prefix — a new crash
			// atom — while the legal-subset machinery is untouched.
			x.unshare()
			left := ev.tornSec
			for _, id := range ev.torn {
				if left <= 0 {
					break
				}
				n := r.nodes[id]
				if n == nil || !n.write {
					continue
				}
				cnt := n.count
				if cnt > left {
					cnt = left
				}
				n.applyPrefix(x.committed, cnt)
				for i := 0; i < cnt; i++ {
					x.swapSector(n.lbn+int64(i), n.sech[i])
				}
				// A synthetic done entry keeps shrink's base+doneOrder
				// replay byte-exact for faulted timelines.
				x.doneOrder = append(x.doneOrder, &node{
					id: n.id, write: true, lbn: n.lbn, count: cnt,
					data: n.data[:cnt*disk.SectorSize], sech: n.sech[:cnt],
				})
				left -= n.count
			}
		case ev.failed != nil:
			// Errored requests resolve without their data landing: they
			// leave the pending set and stop constraining successors (the
			// driver unblocks dependents of a failed request), so doneSet
			// here means "resolved", not "durable".
			for _, id := range ev.failed {
				x.removePending(id)
				x.doneSet[id] = struct{}{}
			}
		default:
			x.unshare()
			for _, id := range ev.complete {
				n := r.nodes[id]
				if n == nil || !n.write {
					continue
				}
				n.apply(x.committed)
				for i := 0; i < n.count; i++ {
					x.swapSector(n.lbn+int64(i), n.sech[i])
				}
				x.doneSet[id] = struct{}{}
				x.doneOrder = append(x.doneOrder, n)
				x.removePending(id)
			}
		}
		x.instant++
		x.emitInstant()
	}
	close(x.jobs)
	wg.Wait()

	res := &Result{
		Stats: Stats{
			Requests:       len(r.nodes),
			Writes:         r.writes,
			Instants:       x.instant + 1,
			Torn:           r.torn,
			Failed:         r.failed,
			Explored:       x.explored,
			Deduped:        x.preDeduped,
			Checked:        pool.checked.Load(),
			Violating:      pool.violating.Load(),
			BaselineBuilds: pool.builds.Load(),
			Incremental:    pool.incremental,
		},
		Violations: pool.takeViolations(),
	}
	res.Stats.ElapsedSec = time.Since(start).Seconds()
	res.Stats.FinalizeThroughput()
	if cfg.Shrink && len(res.Violations) > 0 {
		res.Repro = r.shrink(res.Violations[0], cfg, x.doneOrder)
	}
	return res
}

// signature computes the candidate's image signature without materializing
// it: start from the committed image's XOR and swap in the sectors the
// hypothesized writes would overwrite. The partial is always the newest
// writer over its range (the enumerator never pairs it with a dependent),
// then the subset newest-first; the first claimant of each sector wins,
// exactly matching what apply in ID order would leave on the media. Equal
// signatures mean equal images (modulo 64-bit collisions, the same bet the
// content dedup makes); distinct images always get distinct signatures.
func (x *explorer) signature(subset []*node, partial *node, psec int) uint64 {
	x.gen++
	sig := x.doneXor
	claim := func(n *node, count int) {
		for i := 0; i < count; i++ {
			s := n.lbn + int64(i)
			if x.seenSec[s] == x.gen {
				continue // a newer writer already claimed this sector
			}
			x.seenSec[s] = x.gen
			if x.doneOK[s] {
				sig ^= mix(s, x.doneH[s])
			}
			sig ^= mix(s, n.sech[i])
		}
	}
	if partial != nil {
		claim(partial, psec)
	}
	for i := len(subset) - 1; i >= 0; i-- {
		claim(subset[i], subset[i].count)
	}
	return sig
}

// unshare gives the explorer a private committed image before mutating it
// (emitted jobs hold references to the previous snapshot). The version
// bump invalidates workers' cached baselines; a buffer mutated while
// unshared keeps its version because no job (and so no baseline) has seen
// it yet.
func (x *explorer) unshare() {
	if x.shared {
		x.committed = append([]byte(nil), x.committed...)
		x.imgVer++
		x.shared = false
	}
}

// swapSector replaces sector s's contribution to the committed signature.
func (x *explorer) swapSector(s int64, h uint64) {
	if x.doneOK[s] {
		x.doneXor ^= mix(s, x.doneH[s])
	}
	x.doneXor ^= mix(s, h)
	x.doneH[s] = h
	x.doneOK[s] = true
}

func (x *explorer) removePending(id uint64) {
	for i, n := range x.pending {
		if n.id == id {
			x.pending = append(x.pending[:i], x.pending[i+1:]...)
			return
		}
	}
}

// emitInstant generates the crash states of the current instant, in a
// deterministic order designed to surface violations early under a budget:
// the as-executed image first, then the all-pending image, then every
// leave-one-out subset (drop one write plus its dependents — the shape of
// a missed-ordering bug), then a DFS over the remaining legal subsets.
func (x *explorer) emitInstant() {
	emitted, attempts := 0, 0
	attemptCap := 32 * x.cfg.PerInstant
	emit := func(subset []*node, partial *node, psec int) bool {
		if x.stopped || emitted >= x.cfg.PerInstant || attempts >= attemptCap {
			return false
		}
		if x.explored >= int64(x.cfg.Budget) {
			x.stopped = true
			return false
		}
		attempts++
		sig := x.signature(subset, partial, psec)
		if _, dup := x.sigSeen[sig]; dup {
			x.preDeduped++
			return true // duplicate image: skip cheaply, keep enumerating
		}
		x.sigSeen[sig] = struct{}{}
		x.explored++
		emitted++
		x.shared = true
		x.jobs <- job{
			seq:       x.explored,
			img:       x.committed,
			imgVer:    x.imgVer,
			subset:    x.pool.getSubset(subset),
			partial:   partial,
			psec:      psec,
			instant:   x.instant,
			completed: len(x.doneOrder),
		}
		return true
	}
	// eligible reports whether n's outstanding predecessors are all in
	// `in` (nil means: none may be outstanding).
	eligible := func(n *node, in map[uint64]struct{}) bool {
		for _, p := range n.effPreds {
			if _, done := x.doneSet[p]; done {
				continue
			}
			if in == nil {
				return false
			}
			if _, ok := in[p]; !ok {
				return false
			}
		}
		return true
	}
	emitPartials := func(subset []*node, in map[uint64]struct{}, w *node) bool {
		if !eligible(w, in) {
			return true
		}
		for s := 1; s < w.count; s++ {
			if !emit(subset, w, s) {
				return false
			}
		}
		return true
	}

	// 1. The as-executed crash image: completed writes only — plus the
	// sector prefixes of every write that could have been mid-transfer.
	emit(nil, nil, 0)
	for _, n := range x.pending {
		if !emitPartials(nil, nil, n) {
			return
		}
	}
	if len(x.pending) == 0 {
		return
	}

	// 2. Everything pending durable (always barrier-closed).
	emit(x.pending, nil, 0)

	// 3. Leave-one-out: drop each write plus its transitive dependents.
	idx := make(map[uint64]int, len(x.pending))
	for i, n := range x.pending {
		idx[n.id] = i
	}
	children := make([][]int, len(x.pending))
	for i, n := range x.pending {
		for _, p := range n.effPreds {
			if pi, ok := idx[p]; ok {
				children[pi] = append(children[pi], i)
			}
		}
	}
	closure := func(i int) map[int]struct{} {
		drop := map[int]struct{}{i: {}}
		queue := []int{i}
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			for _, c := range children[j] {
				if _, ok := drop[c]; !ok {
					drop[c] = struct{}{}
					queue = append(queue, c)
				}
			}
		}
		return drop
	}
	for i := range x.pending {
		drop := closure(i)
		if len(drop) == len(x.pending) {
			continue // equals the as-executed state
		}
		subset := make([]*node, 0, len(x.pending)-len(drop))
		in := make(map[uint64]struct{})
		for j, n := range x.pending {
			if _, gone := drop[j]; !gone {
				subset = append(subset, n)
				in[n.id] = struct{}{}
			}
		}
		if !emit(subset, nil, 0) {
			return
		}
		// The dropped write caught mid-transfer over this subset.
		if !emitPartials(subset, in, x.pending[i]) {
			return
		}
	}

	// 4. DFS over the remaining barrier-closed subsets, include-first.
	chosen := make(map[uint64]struct{})
	var cur []*node
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == len(x.pending) {
			return true
		}
		n := x.pending[i]
		if eligible(n, chosen) {
			chosen[n.id] = struct{}{}
			cur = append(cur, n)
			ok := emit(cur, nil, 0)
			if ok {
				for s := 1; s < n.count && ok; s++ {
					ok = emit(cur[:len(cur)-1], n, s)
				}
			}
			if ok {
				ok = dfs(i + 1)
			}
			delete(chosen, n.id)
			cur = cur[:len(cur)-1]
			if !ok {
				return false
			}
		}
		return dfs(i + 1)
	}
	dfs(0)
}

// checkerPool holds the state shared by the image-checking workers. The
// explorer's XOR signature already deduplicates by image content (every
// emitted job is a distinct image modulo 64-bit collisions — the same bet
// the old full-image hash made), so the pool just checks what it is
// handed: each worker assembles the job as a copy-on-write overlay and
// runs fsck through it, never materializing the image.
//
// By default checking is incremental: the first worker to see a committed-
// image version builds a shared fsck.Baseline for it (once per version),
// and every worker replays candidate overlays against it through a
// per-worker DeltaChecker — re-deriving only the state the delta's dirty
// sectors reach. The differential oracle (incremental_test.go) pins the
// reports bit-identical to full walks; cfg.FullCheck restores them.
type checkerPool struct {
	cfg         Config
	incremental bool
	passWorkers int

	checked   atomic.Int64
	violating atomic.Int64
	builds    atomic.Int64

	// Baselines shared across workers, keyed by committed-image version.
	// Entries far behind the newest version are pruned (a straggler worker
	// simply rebuilds); sync.Once makes each version's build happen once.
	blmu      sync.Mutex
	baselines map[uint64]*baselineEntry

	// subsets free-lists the job subset slices (dev's request-pool idiom):
	// the single-threaded explorer copies each emitted subset into a slice
	// drawn here, and workers return it after recording, so steady-state
	// emission stops allocating.
	subsets sync.Pool

	vmu        sync.Mutex
	violations []Violation
}

type baselineEntry struct {
	once sync.Once
	bl   *fsck.Baseline
}

func newCheckerPool(cfg Config) *checkerPool {
	pw := cfg.PassWorkers
	if pw < 1 {
		pw = 1
	}
	return &checkerPool{
		cfg: cfg,
		// Recovery (journal replay) rewrites arbitrary home fragments, so
		// candidates cannot be checked as deltas over a committed baseline.
		incremental: !cfg.FullCheck && cfg.Recover == nil,
		passWorkers: pw,
		baselines:   make(map[uint64]*baselineEntry),
	}
}

// getSubset copies subset into a pooled slice (nil for the empty subset,
// matching the historical job shape).
func (cp *checkerPool) getSubset(subset []*node) []*node {
	if len(subset) == 0 {
		return nil
	}
	var s []*node
	if v := cp.subsets.Get(); v != nil {
		s = (*v.(*[]*node))[:0]
	}
	return append(s, subset...)
}

func (cp *checkerPool) putSubset(s []*node) {
	if s == nil {
		return
	}
	for i := range s {
		s[i] = nil // drop node references while pooled
	}
	s = s[:0]
	cp.subsets.Put(&s)
}

// baseline returns the shared Baseline for one committed-image version,
// building it (possibly pass-parallel) exactly once.
func (cp *checkerPool) baseline(ver uint64, img []byte) *fsck.Baseline {
	cp.blmu.Lock()
	e := cp.baselines[ver]
	if e == nil {
		e = &baselineEntry{}
		cp.baselines[ver] = e
		// In-flight jobs trail the newest emitted version by at most the
		// channel depth, so anything 64 versions back is settled.
		for v := range cp.baselines {
			if v+64 < ver {
				delete(cp.baselines, v)
			}
		}
	}
	cp.blmu.Unlock()
	e.once.Do(func() {
		cp.builds.Add(1)
		e.bl = fsck.NewBaseline(fsck.Bytes(img), cp.passWorkers)
	})
	return e.bl
}

func (cp *checkerPool) run(jobs <-chan job) {
	ov := &overlay{}
	var dc *fsck.DeltaChecker
	var dcVer uint64
	var scratch []byte // per-worker materialized image for cfg.Recover
	for j := range jobs {
		ov.load(&j)
		if cp.incremental {
			if dc == nil || dcVer != j.imgVer {
				bl := cp.baseline(j.imgVer, j.img)
				if dc == nil {
					dc = fsck.NewDeltaChecker(bl)
					dc.SkipDetails(true)
				} else {
					dc.Rebind(bl)
				}
				dcVer = j.imgVer
			}
			// Triage without formatting finding details — almost every
			// candidate's report is discarded. Only candidates that would
			// enter the retained set get a full formatted check, so the
			// recorded strings are identical to FullCheck mode's.
			if deltaViolates(dc, ov, cp.cfg.CheckContent, cp.cfg.ExtraCheck) {
				cp.violating.Add(1)
				if cp.wouldRetain(j.seq) {
					cp.record(j, checkImage(ov, cp.passWorkers, cp.cfg.CheckContent, cp.cfg.ExtraCheck))
				}
			}
		} else {
			var img fsck.Image = ov
			if cp.cfg.Recover != nil {
				scratch = ov.materialize(scratch)
				cp.cfg.Recover(scratch)
				img = fsck.Bytes(scratch)
			}
			findings := checkImage(img, cp.passWorkers, cp.cfg.CheckContent, cp.cfg.ExtraCheck)
			if len(findings) != 0 {
				cp.violating.Add(1)
				cp.record(j, findings)
			}
		}
		cp.checked.Add(1)
		cp.putSubset(j.subset)
	}
}

// wouldRetain reports whether a violating candidate with this sequence
// number could enter the retained set. The retention bar (the highest seq
// currently kept, once the set is full) only ever tightens, so a false
// answer never becomes true later — skipping the formatted re-check on
// false is sound under any worker schedule.
func (cp *checkerPool) wouldRetain(seq int64) bool {
	cp.vmu.Lock()
	defer cp.vmu.Unlock()
	if len(cp.violations) < cp.cfg.MaxViolations {
		return true
	}
	for _, o := range cp.violations {
		if seq < o.Seq {
			return true
		}
	}
	return false
}

// record retains the violation, keeping the MaxViolations lowest sequence
// numbers so the retained set is deterministic under any worker schedule.
func (cp *checkerPool) record(j job, findings []string) {
	v := Violation{
		Seq:       j.seq,
		Instant:   j.instant,
		Completed: j.completed,
		Findings:  findings,
	}
	for _, n := range j.subset {
		v.Applied = append(v.Applied, WriteInfo{ID: n.id, LBN: n.lbn, Sectors: n.count})
	}
	if j.partial != nil {
		v.Partial = &WriteInfo{ID: j.partial.id, LBN: j.partial.lbn, Sectors: j.partial.count}
		v.PartialSectors = j.psec
	}
	cp.vmu.Lock()
	defer cp.vmu.Unlock()
	if len(cp.violations) < cp.cfg.MaxViolations {
		cp.violations = append(cp.violations, v)
		return
	}
	maxAt, maxSeq := -1, int64(-1)
	for i, o := range cp.violations {
		if o.Seq > maxSeq {
			maxAt, maxSeq = i, o.Seq
		}
	}
	if v.Seq < maxSeq {
		cp.violations[maxAt] = v
	}
}

func (cp *checkerPool) takeViolations() []Violation {
	cp.vmu.Lock()
	defer cp.vmu.Unlock()
	sort.Slice(cp.violations, func(i, j int) bool { return cp.violations[i].Seq < cp.violations[j].Seq })
	return cp.violations
}

// checkImage runs the fsck oracle over one image — materialized or
// overlay — and returns the rule violations as strings. passWorkers > 1
// checks the image with pass-level parallelism. A panic inside fsck (a
// corrupted superblock leading it somewhere unmapped) is itself reported
// as a violation rather than killing the sweep.
func checkImage(img fsck.Image, passWorkers int, content bool, extra func(fsck.Image) []string) (findings []string) {
	defer func() {
		if p := recover(); p != nil {
			findings = append(findings, fmt.Sprintf("fsck panicked on image: %v", p))
		}
	}()
	for _, f := range fsck.CheckImagePipelined(img, passWorkers).Violations() {
		findings = append(findings, f.String())
	}
	findings = auxFindings(findings, img, content, extra)
	return findings
}

// deltaViolates is checkImage's incremental counterpart: the structural
// check splices dc's cached baseline records, while the content scan and
// any extra oracle still walk the candidate in full. It only answers
// whether the candidate violates — dc runs with SkipDetails, and callers
// that keep the candidate re-check it with checkImage for the strings. A
// panic inside fsck counts as a violation; the re-check reproduces it.
func deltaViolates(dc *fsck.DeltaChecker, ov *overlay, content bool, extra func(fsck.Image) []string) (vio bool) {
	defer func() {
		if p := recover(); p != nil {
			vio = true
		}
	}()
	for _, f := range dc.Check(ov).Findings {
		if f.Kind.Violation() {
			return true
		}
	}
	if content && len(fsck.ContentViolationsImage(ov)) != 0 {
		return true
	}
	return extra != nil && len(extra(ov)) != 0
}

func auxFindings(findings []string, img fsck.Image, content bool, extra func(fsck.Image) []string) []string {
	if content {
		for _, f := range fsck.ContentViolationsImage(img) {
			findings = append(findings, f.String())
		}
	}
	if extra != nil {
		findings = append(findings, extra(img)...)
	}
	return findings
}
