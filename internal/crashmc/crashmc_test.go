package crashmc_test

import (
	"strings"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/crashmc"
	"metaupdate/internal/workload"
)

// record runs a small 1 KB create/remove workload under the given scheme on
// a compact file system with a Recorder attached, drains the simulation,
// and returns the recording ready to explore.
func record(t *testing.T, scheme fsim.Scheme, files int, seedBug bool) *crashmc.Recorder {
	t.Helper()
	sys, err := fsim.New(fsim.Options{
		Scheme:     scheme,
		DiskBytes:  6 << 20,
		NInodes:    1024,
		CacheBytes: 2 << 20,
	})
	if err != nil {
		t.Fatalf("fsim.New(%v): %v", scheme, err)
	}
	if seedBug {
		if sys.Soft == nil {
			t.Fatalf("seedBug needs soft updates, got %v", scheme)
		}
		sys.Soft.DropEntryDeps = true
	}
	rec := crashmc.Attach(sys.Driver, sys.Disk)
	var werr error
	sys.Run(func(p *fsim.Proc) {
		dir, err := sys.FS.Mkdir(p, fsim.RootIno, "mc")
		if err != nil {
			werr = err
			return
		}
		if err := workload.CreateFiles(p, sys.FS, dir, files, 1024); err != nil {
			werr = err
			return
		}
		sys.FS.Sync(p)
		if err := workload.RemoveFiles(p, sys.FS, dir, files); err != nil {
			werr = err
			return
		}
		sys.FS.Sync(p)
	})
	sys.Shutdown()
	if werr != nil {
		t.Fatalf("workload: %v", werr)
	}
	if rec.Writes() == 0 {
		t.Fatal("recorder saw no writes")
	}
	return rec
}

var quick = crashmc.Config{Workers: 2, Budget: 1500, PerInstant: 256}

func TestOrderedSchemesClean(t *testing.T) {
	// 70 files pushes the workload's directory through both in-place chunk
	// growth (>31 entries) and a fragment-extension move (>1 KB), the two
	// paths where this checker found (since-fixed) ordering holes that a
	// sampled crash sweep missed. The budget must be large enough for the
	// sweep to reach the instants where those writes are pending.
	cfg := quick
	cfg.Budget = 4000
	for _, scheme := range []fsim.Scheme{fsim.Conventional, fsim.SchedulerFlag, fsim.SchedulerChains, fsim.SoftUpdates} {
		t.Run(scheme.String(), func(t *testing.T) {
			res := record(t, scheme, 70, false).Explore(cfg)
			if !res.Clean() {
				t.Fatalf("%v: %d violating crash states, first: %+v",
					scheme, res.Stats.Violating, res.Violations[0])
			}
			if res.Stats.Checked < 100 {
				t.Errorf("only %d distinct crash images checked; want a real sweep", res.Stats.Checked)
			}
			if res.Stats.Explored > int64(cfg.Budget) {
				t.Errorf("explored %d states, budget %d", res.Stats.Explored, cfg.Budget)
			}
			if res.Stats.Instants < 2 {
				t.Errorf("explored %d crash instants; want the whole timeline prefix", res.Stats.Instants)
			}
		})
	}
}

func TestNoOrderViolates(t *testing.T) {
	res := record(t, fsim.NoOrder, 10, false).Explore(quick)
	if res.Clean() {
		t.Fatalf("noorder survived %d distinct crash images; the oracle should object", res.Stats.Checked)
	}
	if len(res.Violations) == 0 {
		t.Fatal("violating counter nonzero but no violations retained")
	}
	for i, v := range res.Violations {
		if len(v.Findings) == 0 {
			t.Errorf("violation %d has no findings", i)
		}
		if i > 0 && res.Violations[i-1].Seq >= v.Seq {
			t.Errorf("violations not sorted by seq: %d then %d", res.Violations[i-1].Seq, v.Seq)
		}
	}
}

// TestSeededViolationShrinks plants a real ordering bug — soft updates with
// the directory-entry→inode dependency dropped — and requires the checker
// to catch it and shrink it to a repro naming the offending writes.
func TestSeededViolationShrinks(t *testing.T) {
	cfg := quick
	cfg.Shrink = true
	res := record(t, fsim.SoftUpdates, 10, true).Explore(cfg)
	if res.Clean() {
		t.Fatal("dropped dependency not caught")
	}
	if res.Repro == nil {
		t.Fatal("no repro produced")
	}
	if len(res.Repro.Findings) == 0 {
		t.Fatal("repro has no findings")
	}
	named := len(res.Repro.Writes)
	if res.Repro.Partial != nil {
		named++
	}
	if named == 0 {
		t.Fatal("repro names no writes")
	}
	// The planted bug exposes directory entries naming uninitialized
	// inodes; the shrunk finding should say so.
	joined := strings.Join(res.Repro.Findings, "\n")
	if !strings.Contains(joined, "DanglingEntry") && !strings.Contains(joined, "LinkUndercount") {
		t.Errorf("repro findings don't mention the planted dependency bug:\n%s", joined)
	}
	// Minimality in practice: the planted bug needs only a handful of
	// writes, not the whole timeline.
	if named > 6 {
		t.Errorf("repro names %d writes; shrinking should do better", named)
	}
	if res.Repro.Trials > cfg.ShrinkTrials && cfg.ShrinkTrials > 0 {
		t.Errorf("shrink used %d trials, cap %d", res.Repro.Trials, cfg.ShrinkTrials)
	}
}

// TestWorkerCountInvariance pins the determinism contract: the exploration
// is enumerated single-threaded, so every counter and the retained
// violation set must be identical regardless of checker parallelism.
func TestWorkerCountInvariance(t *testing.T) {
	rec := record(t, fsim.NoOrder, 8, false)
	one := rec.Explore(crashmc.Config{Workers: 1, Budget: 1000, PerInstant: 256})
	four := rec.Explore(crashmc.Config{Workers: 4, Budget: 1000, PerInstant: 256})
	if one.Stats.Explored != four.Stats.Explored ||
		one.Stats.Checked != four.Stats.Checked ||
		one.Stats.Deduped != four.Stats.Deduped ||
		one.Stats.Violating != four.Stats.Violating {
		t.Fatalf("counters differ across worker counts:\n1: %+v\n4: %+v", one.Stats, four.Stats)
	}
	if len(one.Violations) != len(four.Violations) {
		t.Fatalf("retained violations differ: %d vs %d", len(one.Violations), len(four.Violations))
	}
	for i := range one.Violations {
		if one.Violations[i].Seq != four.Violations[i].Seq {
			t.Fatalf("violation %d seq differs: %d vs %d", i, one.Violations[i].Seq, four.Violations[i].Seq)
		}
	}
}
