// Package cache implements the buffer cache and syncer daemon of the
// paper's base operating system (UNIX SVR4 MP, section 2), plus the two
// mechanisms the paper adds to it:
//
//   - the block-copy enhancement of section 3.3 (-CB): write sources are
//     snapshotted so in-flight writes do not write-lock the live buffer;
//   - the hook surface soft updates needs (section 4.2): a scheme can roll
//     back updates in the write source just before a write is issued, be
//     told when writes are issued (scheduler chains records request IDs) and
//     when they complete (undo/redo, workitems), and re-establish undone
//     state when a block is next accessed.
//
// Buffers are addressed in 1 KB fragments, the file system's smallest
// allocation unit; a buffer covers 1..8 fragments.
//
// The syncer daemon follows the paper's description of SVR4 MP: it wakes
// once a second, sweeps one fraction of the buffer cache marking dirty
// blocks, and issues asynchronous writes for blocks marked on the previous
// visit of that fraction — and it services the soft-updates workitem queue
// before its normal activities.
package cache

import (
	"fmt"
	"sort"

	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// FragSize is the buffer addressing granularity in bytes (an FFS fragment).
const FragSize = 1024

// SectorsPerFrag converts fragment counts to sector counts.
const SectorsPerFrag = FragSize / disk.SectorSize

// Buf is a cached range of fragments.
type Buf struct {
	Frag   int64  // first fragment number
	Data   []byte // len = NFrags * FragSize
	Dirty  bool
	marked bool // syncer two-pass mark

	reading *sim.Completion // read in flight filling this buffer
	writing *sim.Completion // write in flight from this buffer (non-CB)
	// cbInflight counts -CB snapshot writes in flight; the buffer is not
	// write-locked by them but must not be evicted until they land (a
	// re-read could observe pre-snapshot media).
	cbInflight int
	inhibit    bool // rolled back in place: block all access until write done
	invalid    bool // dropped while I/O was in flight

	// Pinned buffers are never evicted (soft updates keeps indirect blocks
	// with pending dependencies "resident and dirty").
	Pinned bool

	// readErr records a failed fill: the buffer is removed from the cache
	// but waiters already holding the pointer must see the error, not
	// zeroed bytes.
	readErr error
	// writeFails counts consecutive failed writes of this buffer; bounded
	// retry via re-dirtying, after which the buffer is dropped (data loss,
	// counted in Cache.LostWrites) rather than wedging the syncer forever.
	writeFails int

	// hold is the reference count of operations currently using the
	// buffer (the classic B_BUSY/refcount role): held buffers are never
	// evicted, so a pointer obtained from Bread/Getblk stays valid across
	// the sleeps inside one file system operation.
	hold int

	// Dep anchors scheme-owned dependency state (pagedep / inodedep /
	// indirdep). The cache never interprets it.
	Dep interface{}

	// WriteFlag and WriteDeps are consumed (and cleared) when the next
	// write of this buffer is issued: the ordering-flag scheme sets
	// WriteFlag, scheduler chains accumulates request IDs in WriteDeps.
	WriteFlag bool
	WriteDeps []uint64

	lastUse sim.Time
}

// NFrags returns the buffer size in fragments.
func (b *Buf) NFrags() int { return len(b.Data) / FragSize }

// Hold takes a reference: the buffer will not be evicted until Unhold.
func (b *Buf) Hold() *Buf { b.hold++; return b }

// Unhold drops a Hold reference.
func (b *Buf) Unhold() {
	if b.hold == 0 {
		panic("cache: Unhold without Hold")
	}
	b.hold--
}

// InFlight reports whether a write from this buffer is in progress.
func (b *Buf) InFlight() bool { return b.writing != nil }

// Hooks is the scheme callback surface. All methods are called with the
// simulation single-threaded; implementations must not block.
type Hooks interface {
	// OnAccess runs whenever a buffer is returned from Bread/Getblk; soft
	// updates uses it to re-apply (redo) updates that were undone for a
	// completed write and left lazy.
	OnAccess(b *Buf)
	// BeforeWrite may substitute the write source: returning a non-nil
	// slice makes it the bytes that reach the platter (soft updates
	// returns a copy with unresolved updates rolled back — the
	// copy-on-write approach the paper recommends over in-place undo).
	// Returning nil keeps src.
	BeforeWrite(b *Buf, src []byte) []byte
	// WriteIssued reports the request created for a buffer write.
	WriteIssued(b *Buf, req *dev.Request)
	// WriteDone runs after the write's data is on the media.
	WriteDone(b *Buf, req *dev.Request)
}

// NopHooks is the no-op Hooks implementation.
type NopHooks struct{}

func (NopHooks) OnAccess(*Buf)                   {}
func (NopHooks) BeforeWrite(*Buf, []byte) []byte { return nil }
func (NopHooks) WriteIssued(*Buf, *dev.Request)  {}
func (NopHooks) WriteDone(*Buf, *dev.Request)    {}

// Config parameterizes the cache.
type Config struct {
	MaxBytes int  // cache capacity; <=0 means 16 MB
	CB       bool // block-copy enhancement: snapshot write sources
	// SyncerFraction is the number of sweeps needed to cover the whole
	// cache (the conventional value is 30, approximating the classic
	// 30-second sync). <=0 means 30.
	SyncerFraction int
	// CopyCPU is the CPU cost of snapshotting one 8 KB block for -CB
	// (and for soft-updates "safe copies"); 0 means DefaultCopyCPU.
	CopyCPU sim.Duration
	// MaxCopyBytes bounds the kernel memory holding -CB write snapshots;
	// issuers block when the pool is exhausted, which is the natural
	// backpressure that keeps asynchronous-write schemes disk-bound once
	// they outrun the drive (a real kernel's bounded buffer-header/copy
	// pool). <=0 means DefaultMaxCopyBytes.
	MaxCopyBytes int
}

// DefaultMaxCopyBytes sizes the -CB snapshot pool (4 MB of the paper's
// 48 MB machine).
const DefaultMaxCopyBytes = 16 << 20

// DefaultCopyCPU approximates an 8 KB memcpy on a 33 MHz i486 (~15 MB/s).
const DefaultCopyCPU = 530 * sim.Microsecond

// Cache is the buffer cache.
type Cache struct {
	eng   *sim.Engine
	drv   *dev.Driver
	cpu   *sim.CPU
	cfg   Config
	Hooks Hooks

	bufs  map[int64]*Buf
	bytes int // running sum of len(Data) over bufs

	// Workitem queue (section 4.2): tasks too heavy for completion
	// callbacks, serviced by the syncer before its normal activities.
	work []func(p *sim.Proc)

	// -CB snapshot pool accounting.
	copyOutstanding int
	copyWait        *sim.Completion
	// snapFree recycles -CB snapshot buffers by size class (fragments per
	// buffer); per-cache and LIFO, so reuse is deterministic. Snapshots are
	// fully overwritten on reuse, so no stale bytes can escape.
	snapFree [9][][]byte

	// Stats.
	Hits, Misses int64
	WritesIssued int64
	ReadsIssued  int64
	// SyncWrites counts Bwrite calls (the caller demanded durability
	// before proceeding) and DelayedWrites counts Bdwrite calls (buffer
	// marked for eventual write-behind) — the per-scheme write-discipline
	// counters of the paper's comparison. Always on.
	SyncWrites    int64
	DelayedWrites int64
	// Fault-path stats (all zero on a clean disk).
	ReadErrors  int64 // Bread fills that completed with an error
	WriteErrors int64 // buffer writes that completed with an error
	LostWrites  int64 // dirty buffers dropped after maxWriteFails failures
	syncerRound int
	syncerStop  bool
}

// New returns a cache over drv. cpu is charged for block copies.
func New(eng *sim.Engine, drv *dev.Driver, cpu *sim.CPU, cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 16 << 20
	}
	if cfg.SyncerFraction <= 0 {
		cfg.SyncerFraction = 30
	}
	if cfg.CopyCPU == 0 {
		cfg.CopyCPU = DefaultCopyCPU
	}
	if cfg.MaxCopyBytes <= 0 {
		cfg.MaxCopyBytes = DefaultMaxCopyBytes
	}
	return &Cache{
		eng:   eng,
		drv:   drv,
		cpu:   cpu,
		cfg:   cfg,
		Hooks: NopHooks{},
		bufs:  make(map[int64]*Buf),
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Engine returns the simulation engine (for scheme timer scheduling).
func (c *Cache) Engine() *sim.Engine { return c.eng }

// Driver returns the device driver.
func (c *Cache) Driver() *dev.Driver { return c.drv }

func lbnOf(frag int64) int64 { return frag * SectorsPerFrag }

// remove drops b from the cache, keeping the byte count in step. A buffer
// that was already replaced at its fragment (dropped and re-read) is left
// alone.
func (c *Cache) remove(b *Buf) {
	if cur, ok := c.bufs[b.Frag]; ok && cur == b {
		delete(c.bufs, b.Frag)
		c.bytes -= len(b.Data)
	}
}

// waitAccessible blocks p while b is being read in.
func (c *Cache) waitAccessible(p *sim.Proc, b *Buf) {
	for b.reading != nil {
		b.reading.Wait(p)
	}
}

// Bread returns the buffer for nfrags fragments starting at frag, reading
// from disk on a miss. The returned buffer's Data is valid and up to date
// with respect to scheme redo state. On a media error (faulted disk) it
// returns the driver's error and no buffer.
func (c *Cache) Bread(p *sim.Proc, frag int64, nfrags int) (*Buf, error) {
	b := c.bufs[frag]
	if b != nil && b.NFrags() != nfrags {
		panic(fmt.Sprintf("cache: Bread(%d,%d) conflicts with resident buffer of %d frags",
			frag, nfrags, b.NFrags()))
	}
	if b != nil {
		c.Hits++
		if b.reading != nil {
			// Piggyback on another process's in-flight fill.
			sp := obs.SpanOf(p)
			sp.Push(p, obs.StageCacheRead)
			c.waitAccessible(p, b)
			sp.Pop(p)
		}
		if b.readErr != nil {
			// The fill this waiter piggybacked on failed; the buffer is
			// already gone from the cache.
			return nil, b.readErr
		}
		b.lastUse = c.eng.Now()
		c.Hooks.OnAccess(b)
		return b, nil
	}
	c.Misses++
	b = &Buf{Frag: frag, Data: make([]byte, nfrags*FragSize), lastUse: c.eng.Now()}
	b.reading = sim.NewCompletion()
	c.bufs[frag] = b
	c.bytes += len(b.Data)
	c.makeRoom(p, b)
	// Read requests are owned by this function end to end (submitted,
	// waited on inline, no callbacks registered), so they cycle through
	// the driver's pool instead of allocating per miss.
	req := c.drv.AllocRequest()
	req.Op = disk.Read
	req.LBN = lbnOf(frag)
	req.Count = nfrags * SectorsPerFrag
	req.Buf = b.Data
	c.drv.Submit(req)
	c.ReadsIssued++
	sp := obs.SpanOf(p)
	sp.Push(p, obs.StageCacheRead)
	req.Done.Wait(p)
	sp.Pop(p)
	err := req.Err
	c.drv.Release(req)
	r := b.reading
	b.reading = nil
	if err != nil {
		c.ReadErrors++
		b.readErr = err
		c.remove(b)
		r.Fire(c.eng)
		return nil, err
	}
	r.Fire(c.eng)
	b.lastUse = c.eng.Now()
	c.Hooks.OnAccess(b)
	return b, nil
}

// Getblk returns a buffer for a range about to be fully overwritten (no
// disk read): freshly allocated blocks. Contents start zeroed.
func (c *Cache) Getblk(p *sim.Proc, frag int64, nfrags int) *Buf {
	b := c.bufs[frag]
	if b != nil {
		if b.NFrags() != nfrags {
			panic(fmt.Sprintf("cache: Getblk(%d,%d) conflicts with resident buffer of %d frags",
				frag, nfrags, b.NFrags()))
		}
		c.Hits++
		if b.reading != nil {
			sp := obs.SpanOf(p)
			sp.Push(p, obs.StageCacheRead)
			c.waitAccessible(p, b)
			sp.Pop(p)
		}
		b.lastUse = c.eng.Now()
		c.Hooks.OnAccess(b)
		return b
	}
	c.Misses++
	b = &Buf{Frag: frag, Data: make([]byte, nfrags*FragSize), lastUse: c.eng.Now()}
	c.bufs[frag] = b
	c.bytes += len(b.Data)
	c.makeRoom(p, b)
	c.Hooks.OnAccess(b)
	return b
}

// PrepareModify blocks p until b may be modified: while a write is in
// flight from the live buffer (no -CB), updates must wait — the write-lock
// effect of section 3.3.
func (c *Cache) PrepareModify(p *sim.Proc, b *Buf) {
	if b.writing != nil && !c.cfg.CB {
		// Write-behind backpressure: the in-flight write was issued by the
		// syncer daemon or another process's flush of this buffer.
		sp := obs.SpanOf(p)
		sp.Push(p, obs.StageSyncer)
		for b.writing != nil {
			b.writing.Wait(p)
		}
		sp.Pop(p)
	}
}

// Bdwrite marks b dirty for a delayed write (flushed by the syncer).
func (c *Cache) Bdwrite(b *Buf) {
	c.DelayedWrites++
	b.Dirty = true
}

// Bawrite issues an asynchronous write of b, returning the request (nil if
// a write was already in flight; the buffer stays dirty and will be written
// again).
func (c *Cache) Bawrite(p *sim.Proc, b *Buf) *dev.Request {
	return c.issueWrite(p, b)
}

// Bwrite guarantees b's current contents are on stable storage before
// returning: it issues a synchronous write, waiting out (and then
// superseding) any write already in flight. A non-nil error means the
// driver exhausted its recovery options and the contents are NOT durable
// (the buffer has been re-dirtied for a bounded number of later retries).
func (c *Cache) Bwrite(p *sim.Proc, b *Buf) error {
	c.SyncWrites++
	sp := obs.SpanOf(p)
	for {
		req := c.issueWrite(p, b)
		if req != nil {
			// The whole wait is pushed as queue time, then split
			// retroactively from the request's recorded timeline: time
			// before ReadyTime was the ordering barrier, time after
			// DispatchTime was media service.
			t0 := c.eng.Now()
			sp.Push(p, obs.StageQueue)
			req.Done.Wait(p)
			sp.PopWait(p, t0, req.ReadyTime(), req.DispatchTime())
			return req.Err
		}
		// A write was already in flight (issued before this call, possibly
		// without the caller's ordering state); wait it out and reissue.
		if b.writing != nil {
			sp.Push(p, obs.StageSyncer)
			b.writing.Wait(p)
			sp.Pop(p)
		}
		if !b.Dirty {
			return nil
		}
	}
}

// issueWrite builds and submits the write request for b. Without -CB a
// second write of the same buffer cannot be issued while one is in flight
// (the source is the live buffer); with -CB each write carries its own
// snapshot, so concurrent writes are allowed — the driver's conflict rule
// keeps them in submission order on the media.
func (c *Cache) issueWrite(p *sim.Proc, b *Buf) *dev.Request {
	if !c.cfg.CB && b.writing != nil {
		// Already in flight; the caller (syncer) will retry later.
		b.Dirty = true
		return nil
	}
	// Consume ordering state before anything can yield the virtual CPU, so
	// a concurrent issue (syncer vs. user process under -CB) cannot steal
	// the flag or dependency list from this write.
	flag := b.WriteFlag
	deps := b.WriteDeps
	b.WriteFlag = false
	b.WriteDeps = nil
	b.Dirty = false
	b.marked = false

	var src []byte
	var done *sim.Completion
	var copyCost sim.Duration
	var cbSnap []byte // pooled -CB snapshot to recycle at completion
	if c.cfg.CB {
		// Bounded snapshot pool: block until there is room (a process
		// context is required to block; engine-context issuers skip the
		// wait and overshoot slightly, which a real ISR path would too).
		if p != nil && c.copyOutstanding+len(b.Data) > c.cfg.MaxCopyBytes {
			sp := obs.SpanOf(p)
			sp.Push(p, obs.StageSyncer)
			for c.copyOutstanding+len(b.Data) > c.cfg.MaxCopyBytes {
				if c.copyWait == nil {
					c.copyWait = sim.NewCompletion()
				}
				c.copyWait.Wait(p)
			}
			sp.Pop(p)
		}
		// Block-copy enhancement: snapshot the source so the live buffer
		// stays unlocked. The snapshot and submission happen without
		// yielding the virtual CPU, so concurrent issuers cannot invert
		// snapshot order vs. submission order; the memcpy cost is charged
		// right after.
		src = c.getSnapshot(b.NFrags())
		copy(src, b.Data)
		cbSnap = src
		c.copyOutstanding += len(src)
		b.cbInflight++
		copyCost = c.cfg.CopyCPU * sim.Duration(b.NFrags()) / 8
	} else {
		src = b.Data
		done = sim.NewCompletion()
		b.writing = done
	}
	if repl := c.Hooks.BeforeWrite(b, src); repl != nil {
		// The hook substituted a (rolled back) copy; charge the memcpy.
		// The live buffer stays write-locked until completion so at most
		// one rollback snapshot per buffer is in flight — updates still
		// wait, as with in-place undo, but readers never see undone bytes.
		if cbSnap != nil {
			// The -CB snapshot never reaches the disk; recycle it now.
			// (copyOutstanding still accounts len(src) == len(repl) until
			// completion, matching the kernel-memory model.)
			c.putSnapshot(cbSnap)
			cbSnap = nil
		}
		src = repl
		copyCost += c.cfg.CopyCPU * sim.Duration(b.NFrags()) / 8
	}
	req := c.drv.Submit(&dev.Request{
		Op:        disk.Write,
		LBN:       lbnOf(b.Frag),
		Count:     b.NFrags() * SectorsPerFrag,
		Data:      src,
		Flag:      flag,
		DependsOn: deps,
	})
	c.WritesIssued++
	c.Hooks.WriteIssued(b, req)
	if copyCost > 0 && c.cpu != nil && p != nil {
		sp := obs.SpanOf(p)
		sp.Push(p, obs.StageCPU)
		c.cpu.Use(p, copyCost)
		sp.Pop(p)
	}
	snapshotLen := 0
	if c.cfg.CB {
		snapshotLen = len(src)
	}
	done2 := done
	req.Done.OnFire(func() {
		if snapshotLen > 0 {
			c.copyOutstanding -= snapshotLen
			b.cbInflight--
			if cbSnap != nil {
				// Data is on the media (and the crash recorder took its
				// own copy at submission), so the snapshot is dead.
				c.putSnapshot(cbSnap)
			}
			if c.copyWait != nil {
				w := c.copyWait
				c.copyWait = nil
				w.Fire(c.eng)
			}
		}
		if done2 != nil {
			b.writing = nil
		}
		if req.Err != nil {
			// The write never (fully) reached the media. Scheme completion
			// hooks are skipped — WriteDone means "the bytes are durable",
			// and they are not. The buffer is re-dirtied so the syncer
			// retries, a bounded number of times: a write that keeps
			// failing (exhausted spare pool) is eventually dropped and
			// counted rather than wedging SyncAll forever.
			c.WriteErrors++
			b.writeFails++
			if !b.invalid {
				if b.writeFails <= maxWriteFails {
					b.Dirty = true
				} else {
					c.LostWrites++
					b.Dirty = false
				}
			}
		} else {
			b.writeFails = 0
			c.Hooks.WriteDone(b, req)
		}
		if b.invalid && b.writing == nil && b.cbInflight == 0 {
			c.remove(b)
		}
		if done2 != nil {
			done2.Fire(c.eng)
		}
	})
	return req
}

// maxWriteFails bounds consecutive failed writes of one buffer before its
// contents are abandoned (graceful degradation: fsck's repair pass is the
// backstop for whatever inconsistency the loss introduces).
const maxWriteFails = 4

// getSnapshot returns a len == nfrags*FragSize buffer for a -CB write
// snapshot, reusing a retired one of the same size class when available.
// Callers overwrite the full buffer, so recycled contents never leak.
func (c *Cache) getSnapshot(nfrags int) []byte {
	if nfrags >= 1 && nfrags < len(c.snapFree) {
		if list := c.snapFree[nfrags]; len(list) > 0 {
			s := list[len(list)-1]
			list[len(list)-1] = nil
			c.snapFree[nfrags] = list[:len(list)-1]
			return s
		}
	}
	return make([]byte, nfrags*FragSize)
}

// putSnapshot retires a snapshot buffer to its size-class free list.
func (c *Cache) putSnapshot(s []byte) {
	nfrags := len(s) / FragSize
	if nfrags >= 1 && nfrags < len(c.snapFree) && len(s) == nfrags*FragSize {
		c.snapFree[nfrags] = append(c.snapFree[nfrags], s)
	}
}

// Resize grows or shrinks b to nfrags fragments in place (fragment
// extension). The caller must have called PrepareModify; resizing a buffer
// with I/O in flight panics.
func (c *Cache) Resize(b *Buf, nfrags int) {
	// With -CB an in-flight write holds its own snapshot, so resizing the
	// live buffer is safe; otherwise PrepareModify has already waited.
	if b.reading != nil || (b.writing != nil && !c.cfg.CB) {
		panic("cache: Resize with I/O in flight")
	}
	if nfrags == b.NFrags() {
		return
	}
	c.bytes += nfrags*FragSize - len(b.Data)
	data := make([]byte, nfrags*FragSize)
	copy(data, b.Data)
	b.Data = data
}

// Drop removes the buffer at frag from the cache (block freed). If a write
// is in flight the buffer is removed once it completes.
func (c *Cache) Drop(frag int64) {
	b := c.bufs[frag]
	if b == nil {
		return
	}
	b.Dirty = false
	b.Pinned = false
	b.invalid = true
	if b.reading != nil {
		// A read is still filling this buffer; it unmaps at completion.
		return
	}
	// Remove immediately so the fragments can be re-cached by a new owner;
	// any write still in flight from the old buffer holds its own source
	// and is ordered before the new owner's writes by the driver's
	// conflict rule.
	c.remove(b)
}

// Lookup returns the resident buffer at frag, or nil (no I/O, no waiting).
func (c *Cache) Lookup(frag int64) *Buf { return c.bufs[frag] }

// HeldCount reports buffers with outstanding Hold references (should be
// zero whenever no file system operation is mid-flight — tests assert it).
func (c *Cache) HeldCount() int {
	n := 0
	for _, b := range c.bufs {
		if b.hold > 0 {
			n++
		}
	}
	return n
}

// DirtyCount reports the number of dirty buffers.
func (c *Cache) DirtyCount() int {
	n := 0
	for _, b := range c.bufs {
		if b.Dirty {
			n++
		}
	}
	return n
}

// Bytes reports resident bytes.
func (c *Cache) Bytes() int { return c.bytes }

// makeRoom frees cache space like a real kernel: clean LRU buffers are
// reclaimed immediately; when none remain, a batch of dirty LRU buffers is
// written behind asynchronously and the caller waits for the first
// completion before retrying. Those write-behind requests flow through the
// ordering machinery like any others — which is exactly how ordering
// restrictiveness turns into elapsed time once a workload no longer fits
// in memory.
func (c *Cache) makeRoom(p *sim.Proc, keep *Buf) {
	for tries := 0; c.Bytes() > c.cfg.MaxBytes && tries < 64; tries++ {
		// Deterministic LRU order: by lastUse then frag.
		var victims []*Buf
		for _, b := range c.bufs {
			if b == keep || b.Pinned || b.reading != nil {
				continue
			}
			victims = append(victims, b)
		}
		sort.Slice(victims, func(i, j int) bool {
			if victims[i].lastUse != victims[j].lastUse {
				return victims[i].lastUse < victims[j].lastUse
			}
			return victims[i].Frag < victims[j].Frag
		})

		var dirty []*Buf
		for _, b := range victims {
			if c.Bytes() <= c.cfg.MaxBytes {
				return
			}
			if b.hold > 0 {
				continue
			}
			if !b.Dirty && b.writing == nil && b.cbInflight == 0 && b.Dep == nil {
				c.remove(b)
				continue
			}
			if b.Dirty && b.writing == nil {
				dirty = append(dirty, b)
			}
		}
		if c.Bytes() <= c.cfg.MaxBytes {
			return
		}
		if len(dirty) == 0 {
			// Everything is pinned, dependency-laden or already in
			// flight; wait for some write to finish if possible.
			waited := false
			for _, b := range victims {
				if b.writing != nil && p != nil {
					sp := obs.SpanOf(p)
					sp.Push(p, obs.StageSyncer)
					b.writing.Wait(p)
					sp.Pop(p)
					waited = true
					break
				}
			}
			if !waited {
				return // allow transient overshoot rather than deadlock
			}
			continue
		}
		// Write-behind a batch and wait for the first completion.
		batch := dirty
		if len(batch) > 16 {
			batch = batch[:16]
		}
		var first *dev.Request
		for _, b := range batch {
			if r := c.issueWrite(p, b); r != nil && first == nil {
				first = r
			}
		}
		if first != nil && p != nil {
			sp := obs.SpanOf(p)
			sp.Push(p, obs.StageSyncer)
			first.Done.Wait(p)
			sp.Pop(p)
		}
	}
}

// DropClean evicts every clean, idle, unpinned buffer — benchmarks use it
// (after a full sync) to cold-start a measurement the way a freshly booted
// machine would.
func (c *Cache) DropClean() {
	for _, b := range c.bufs {
		if !b.Dirty && !b.Pinned && b.hold == 0 && b.reading == nil && b.writing == nil && b.cbInflight == 0 && b.Dep == nil {
			c.remove(b)
		}
	}
}

// QueueWork appends fn to the workitem queue; the syncer daemon runs it in
// process context on its next wakeup ("within one second").
func (c *Cache) QueueWork(fn func(p *sim.Proc)) { c.work = append(c.work, fn) }

// WorkQueueLen reports queued workitems.
func (c *Cache) WorkQueueLen() int { return len(c.work) }

// StartSyncer spawns the syncer daemon process.
func (c *Cache) StartSyncer() {
	c.eng.Spawn("syncer", func(p *sim.Proc) {
		for !c.syncerStop {
			p.Sleep(sim.Second)
			c.SyncerPass(p)
		}
	})
}

// StopSyncer makes the syncer exit after its next pass.
func (c *Cache) StopSyncer() { c.syncerStop = true }

// SyncerPass performs one syncer wakeup: service the workitem queue, then
// sweep one fraction of the cache — write blocks marked on the previous
// visit, mark dirty blocks for the next one.
func (c *Cache) SyncerPass(p *sim.Proc) {
	c.RunWork(p)

	frags := c.sortedFrags()
	n := len(frags)
	if n == 0 {
		c.syncerRound++
		return
	}
	k := c.cfg.SyncerFraction
	seg := c.syncerRound % k
	lo, hi := n*seg/k, n*(seg+1)/k
	for _, frag := range frags[lo:hi] {
		b := c.bufs[frag]
		if b == nil {
			continue
		}
		if b.marked && b.Dirty && b.writing == nil {
			c.issueWrite(p, b)
		} else if b.Dirty {
			b.marked = true
		}
	}
	c.syncerRound++
}

// RunWork drains the workitem queue in process context.
func (c *Cache) RunWork(p *sim.Proc) {
	for len(c.work) > 0 {
		w := c.work
		c.work = nil
		for _, fn := range w {
			fn(p)
		}
	}
}

func (c *Cache) sortedFrags() []int64 {
	frags := make([]int64, 0, len(c.bufs))
	for f := range c.bufs {
		frags = append(frags, f)
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i] < frags[j] })
	return frags
}

// SyncAll flushes every dirty buffer and drains workitems until the system
// is quiescent or maxRounds passes elapse. It returns the number of rounds
// used. This is the unmount path benchmarks use to bound an experiment.
func (c *Cache) SyncAll(p *sim.Proc, maxRounds int) int {
	for round := 1; ; round++ {
		c.RunWork(p)
		wrote := false
		for _, frag := range c.sortedFrags() {
			b := c.bufs[frag]
			if b != nil && b.Dirty && b.writing == nil {
				c.issueWrite(p, b)
				wrote = true
			}
		}
		sp := obs.SpanOf(p)
		sp.Push(p, obs.StageQueue)
		c.drv.WaitIdle(p)
		sp.Pop(p)
		c.RunWork(p)
		if !wrote && c.DirtyCount() == 0 && len(c.work) == 0 {
			return round
		}
		if round >= maxRounds {
			return round
		}
	}
}
