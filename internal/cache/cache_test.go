package cache

import (
	"bytes"
	"testing"

	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/sim"
)

func newRig(cfg Config) (*sim.Engine, *disk.Disk, *dev.Driver, *Cache) {
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 64<<20)
	drv := dev.New(eng, dsk, dev.Config{Mode: dev.ModeIgnore})
	cpu := &sim.CPU{}
	return eng, dsk, drv, New(eng, drv, cpu, cfg)
}

// runIn executes fn as a simulated process and runs the engine to
// completion, panicking on deadlock.
func runIn(eng *sim.Engine, fn func(p *sim.Proc)) {
	done := false
	eng.Spawn("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	eng.Run()
	if !done {
		panic("simulated process deadlocked")
	}
}

func TestBreadMissAndHit(t *testing.T) {
	eng, dsk, _, c := newRig(Config{})
	want := bytes.Repeat([]byte{0x42}, 2*FragSize)
	dsk.Commit(lbnOf(100), want)
	runIn(eng, func(p *sim.Proc) {
		b, _ := c.Bread(p, 100, 2)
		if !bytes.Equal(b.Data, want) {
			t.Error("miss read wrong data")
		}
		b2, _ := c.Bread(p, 100, 2)
		if b2 != b {
			t.Error("hit returned a different buffer")
		}
	})
	if c.Misses != 1 || c.Hits != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestBreadSizeConflictPanics(t *testing.T) {
	eng, _, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		c.Bread(p, 100, 2)
		defer func() {
			if recover() == nil {
				t.Error("size-conflicting Bread did not panic")
			}
		}()
		c.Bread(p, 100, 4)
	})
}

func TestConcurrentBreadSingleIO(t *testing.T) {
	eng, dsk, _, c := newRig(Config{})
	dsk.Commit(lbnOf(50), bytes.Repeat([]byte{9}, FragSize))
	got := 0
	for i := 0; i < 3; i++ {
		eng.Spawn("reader", func(p *sim.Proc) {
			b, _ := c.Bread(p, 50, 1)
			if b.Data[0] == 9 {
				got++
			}
		})
	}
	eng.Run()
	if got != 3 {
		t.Fatalf("%d of 3 readers saw the data", got)
	}
	if c.ReadsIssued != 1 {
		t.Errorf("ReadsIssued = %d, want 1 (waiters share the read)", c.ReadsIssued)
	}
}

func TestGetblkZeroedNoIO(t *testing.T) {
	eng, _, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 200, 8)
		for _, x := range b.Data {
			if x != 0 {
				t.Fatal("Getblk returned non-zero data")
			}
		}
	})
	if c.ReadsIssued != 0 {
		t.Errorf("Getblk issued %d reads", c.ReadsIssued)
	}
}

func TestBwriteCommitsToMedia(t *testing.T) {
	eng, dsk, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 10, 1)
		copy(b.Data, bytes.Repeat([]byte{7}, FragSize))
		c.Bdwrite(b)
		c.Bwrite(p, b)
		if b.Dirty {
			t.Error("buffer still dirty after Bwrite")
		}
	})
	got := make([]byte, FragSize)
	dsk.ReadAt(lbnOf(10), got)
	if got[0] != 7 {
		t.Fatal("Bwrite did not reach media")
	}
}

func TestWriteLockBlocksModifier(t *testing.T) {
	// Without -CB, a process modifying a buffer with a write in flight must
	// wait for the write to complete (section 3.3).
	eng, _, _, c := newRig(Config{})
	var modAt, writeDone sim.Time
	eng.Spawn("writer", func(p *sim.Proc) {
		b := c.Getblk(p, 10, 1)
		b.Data[0] = 1
		req := c.Bawrite(p, b)
		req.Done.Wait(p)
		writeDone = p.Now()
	})
	eng.Spawn("modifier", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond) // let the write get issued
		b := c.Lookup(10)
		c.PrepareModify(p, b)
		modAt = p.Now()
		b.Data[0] = 2
	})
	eng.Run()
	if modAt < writeDone {
		t.Fatalf("modifier ran at %v before write completed at %v", modAt, writeDone)
	}
}

func TestCBAvoidsWriteLock(t *testing.T) {
	eng, dsk, _, c := newRig(Config{CB: true})
	var modAt, writeDone sim.Time
	var req *dev.Request
	eng.Spawn("writer", func(p *sim.Proc) {
		b := c.Getblk(p, 10, 1)
		b.Data[0] = 1
		req = c.Bawrite(p, b)
		req.Done.Wait(p)
		writeDone = p.Now()
	})
	eng.Spawn("modifier", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		b := c.Lookup(10)
		c.PrepareModify(p, b)
		modAt = p.Now()
		b.Data[0] = 2
	})
	eng.Run()
	if modAt >= writeDone {
		t.Fatalf("with -CB the modifier should not wait (mod %v, done %v)", modAt, writeDone)
	}
	// The snapshot, not the later modification, must be on the media.
	got := make([]byte, FragSize)
	dsk.ReadAt(lbnOf(10), got)
	if got[0] != 1 {
		t.Fatalf("media has %d, want snapshot value 1", got[0])
	}
}

func TestSyncerFlushesDirtyBlocks(t *testing.T) {
	eng, dsk, _, c := newRig(Config{SyncerFraction: 2})
	c.StartSyncer()
	eng.Spawn("user", func(p *sim.Proc) {
		b := c.Getblk(p, 30, 1)
		b.Data[0] = 0xAB
		c.Bdwrite(b)
	})
	// Two-pass marking with fraction 1/2: flushed within ~4 seconds.
	eng.RunUntil(5 * sim.Second)
	got := make([]byte, FragSize)
	dsk.ReadAt(lbnOf(30), got)
	if got[0] != 0xAB {
		t.Fatal("syncer did not flush dirty block")
	}
	if c.DirtyCount() != 0 {
		t.Errorf("DirtyCount = %d after syncer flush", c.DirtyCount())
	}
	c.StopSyncer()
}

func TestSyncerServicesWorkitemsFirst(t *testing.T) {
	eng, _, _, c := newRig(Config{})
	c.StartSyncer()
	var ranAt sim.Time
	c.QueueWork(func(p *sim.Proc) { ranAt = p.Now() })
	eng.RunUntil(1500 * sim.Millisecond)
	c.StopSyncer()
	if ranAt == 0 || ranAt > sim.Second {
		t.Fatalf("workitem ran at %v, want within one second", ranAt)
	}
}

func TestWorkitemsChainWithinOnePass(t *testing.T) {
	// A workitem queued by another workitem is drained in the same pass.
	eng, _, _, c := newRig(Config{})
	order := []int{}
	c.QueueWork(func(p *sim.Proc) {
		order = append(order, 1)
		c.QueueWork(func(p *sim.Proc) { order = append(order, 2) })
	})
	runIn(eng, func(p *sim.Proc) { c.RunWork(p) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("workitem chain ran %v", order)
	}
}

func TestSyncAllQuiesces(t *testing.T) {
	eng, dsk, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		for i := int64(0); i < 10; i++ {
			b := c.Getblk(p, 100+i*8, 8)
			b.Data[0] = byte(i + 1)
			c.Bdwrite(b)
		}
		c.SyncAll(p, 10)
	})
	if c.DirtyCount() != 0 {
		t.Fatalf("%d dirty buffers after SyncAll", c.DirtyCount())
	}
	got := make([]byte, FragSize)
	for i := int64(0); i < 10; i++ {
		dsk.ReadAt(lbnOf(100+i*8), got)
		if got[0] != byte(i+1) {
			t.Fatalf("block %d not flushed", i)
		}
	}
}

func TestEvictionLRUAndDirtyWriteback(t *testing.T) {
	// Cache of 4 blocks of 8 frags: inserting a 5th evicts the LRU clean
	// one; dirty buffers get written back rather than lost.
	eng, dsk, _, c := newRig(Config{MaxBytes: 4 * 8 * FragSize})
	runIn(eng, func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			b := c.Getblk(p, i*8, 8)
			b.Data[0] = byte(i + 1)
			c.Bdwrite(b)
			p.Sleep(sim.Millisecond)
		}
		c.Getblk(p, 100, 8) // forces eviction of frag 0 (LRU)
	})
	if c.Lookup(0) != nil {
		t.Fatal("LRU buffer not evicted")
	}
	got := make([]byte, FragSize)
	dsk.ReadAt(lbnOf(0), got)
	if got[0] != 1 {
		t.Fatal("evicted dirty buffer was not written back")
	}
}

func TestPinnedBufferNotEvicted(t *testing.T) {
	eng, _, _, c := newRig(Config{MaxBytes: 2 * 8 * FragSize})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 0, 8)
		b.Pinned = true
		p.Sleep(sim.Millisecond)
		c.Getblk(p, 8, 8)
		p.Sleep(sim.Millisecond)
		c.Getblk(p, 16, 8)
	})
	if c.Lookup(0) == nil {
		t.Fatal("pinned buffer was evicted")
	}
}

func TestDrop(t *testing.T) {
	eng, _, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 40, 2)
		b.Data[0] = 1
		c.Bdwrite(b)
		c.Drop(40)
		if c.Lookup(40) != nil {
			t.Error("Drop left buffer resident")
		}
		c.Drop(41) // absent: no-op
	})
}

func TestDropDuringWriteUnmapsImmediately(t *testing.T) {
	// A freed buffer leaves the cache at once so its fragments can be
	// re-cached by a new owner; the in-flight write keeps its own source
	// and is ordered ahead of the new owner's writes by the driver.
	eng, _, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 40, 2)
		b.Data[0] = 1
		req := c.Bawrite(p, b)
		c.Drop(40)
		if c.Lookup(40) != nil {
			t.Error("dropped buffer still mapped")
		}
		nb := c.Getblk(p, 40, 2) // new owner may appear immediately
		if nb == b {
			t.Error("new owner got the dropped buffer")
		}
		req.Done.Wait(p)
	})
}

// rollbackHooks substitutes a rolled-back copy of the write source,
// exercising the soft-updates hook surface.
type rollbackHooks struct {
	NopHooks
	rollbacks int
}

func (h *rollbackHooks) BeforeWrite(b *Buf, src []byte) []byte {
	h.rollbacks++
	cp := append([]byte(nil), src...)
	cp[0] = 0
	return cp
}

func (h *rollbackHooks) WriteDone(b *Buf, req *dev.Request) {}

func TestHooksRollbackSubstitutesSource(t *testing.T) {
	eng, dsk, _, c := newRig(Config{})
	h := &rollbackHooks{}
	c.Hooks = h
	var seen byte
	eng.Spawn("writer", func(p *sim.Proc) {
		b := c.Getblk(p, 10, 1)
		b.Data[0] = 0xEE
		req := c.Bawrite(p, b)
		req.Done.Wait(p)
	})
	eng.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond)
		b, _ := c.Bread(p, 10, 1)
		seen = b.Data[0]
	})
	eng.Run()
	if h.rollbacks == 0 {
		t.Fatal("hook never ran")
	}
	// The live buffer is never perturbed: readers always see 0xEE.
	if seen != 0xEE {
		t.Fatalf("reader saw %#x, want live value 0xEE", seen)
	}
	// Media must have the rolled-back (substituted) value.
	got := make([]byte, FragSize)
	dsk.ReadAt(lbnOf(10), got)
	if got[0] != 0 {
		t.Fatalf("media has %#x, want rolled-back 0", got[0])
	}
}

func TestWriteFlagAndDepsConsumed(t *testing.T) {
	eng, _, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 10, 1)
		b.WriteFlag = true
		b.WriteDeps = []uint64{99}
		req := c.Bawrite(p, b)
		if !req.Flag || len(req.DependsOn) != 1 || req.DependsOn[0] != 99 {
			t.Error("flag/deps not propagated to request")
		}
		if b.WriteFlag || b.WriteDeps != nil {
			t.Error("flag/deps not cleared after issue")
		}
		req.Done.Wait(p)
	})
}

func TestIssueWhileWritingKeepsDirty(t *testing.T) {
	eng, _, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 10, 1)
		c.Bdwrite(b)
		req1 := c.Bawrite(p, b)
		if req1 == nil {
			t.Fatal("first write not issued")
		}
		req2 := c.Bawrite(p, b)
		if req2 != nil {
			t.Fatal("second write issued while first in flight")
		}
		if !b.Dirty {
			t.Fatal("buffer lost dirty state")
		}
		req1.Done.Wait(p)
	})
}

func TestCopyPoolBackpressure(t *testing.T) {
	// With a tiny snapshot pool, a burst of CB writes must block the issuer
	// until completions release pool space — never exceeding the cap.
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 64<<20)
	drv := dev.New(eng, dsk, dev.Config{Mode: dev.ModeIgnore})
	cpu := &sim.CPU{}
	c := New(eng, drv, cpu, Config{CB: true, MaxCopyBytes: 4 * 8 * FragSize})
	var maxOutstanding int
	runIn(eng, func(p *sim.Proc) {
		for i := int64(0); i < 20; i++ {
			b := c.Getblk(p, i*8, 8)
			b.Data[0] = byte(i)
			c.Bdwrite(b)
			c.Bawrite(p, b)
			if c.copyOutstanding > maxOutstanding {
				maxOutstanding = c.copyOutstanding
			}
		}
		drv.WaitIdle(p)
	})
	if maxOutstanding > 4*8*FragSize {
		t.Fatalf("pool exceeded: %d outstanding", maxOutstanding)
	}
	if c.copyOutstanding != 0 {
		t.Fatalf("%d snapshot bytes leaked", c.copyOutstanding)
	}
}

func TestHoldPreventsEviction(t *testing.T) {
	eng, _, _, c := newRig(Config{MaxBytes: 2 * 8 * FragSize})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 0, 8)
		b.Hold()
		p.Sleep(sim.Millisecond)
		c.Getblk(p, 8, 8)
		p.Sleep(sim.Millisecond)
		c.Getblk(p, 16, 8) // would evict frag 0 without the hold
		if c.Lookup(0) == nil {
			t.Fatal("held buffer was evicted")
		}
		if c.HeldCount() != 1 {
			t.Fatalf("HeldCount = %d", c.HeldCount())
		}
		b.Unhold()
		if c.HeldCount() != 0 {
			t.Fatal("Unhold did not release")
		}
	})
}

func TestUnholdWithoutHoldPanics(t *testing.T) {
	eng, _, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 0, 1)
		defer func() {
			if recover() == nil {
				t.Error("Unhold without Hold did not panic")
			}
		}()
		b.Unhold()
	})
}

func TestResizeTracksBytes(t *testing.T) {
	eng, _, _, c := newRig(Config{})
	runIn(eng, func(p *sim.Proc) {
		b := c.Getblk(p, 0, 2)
		before := c.Bytes()
		c.Resize(b, 6)
		if c.Bytes() != before+4*FragSize {
			t.Fatalf("Bytes() = %d after grow, want %d", c.Bytes(), before+4*FragSize)
		}
		if b.NFrags() != 6 {
			t.Fatalf("NFrags = %d", b.NFrags())
		}
		c.Resize(b, 6) // no-op
		if c.Bytes() != before+4*FragSize {
			t.Fatal("no-op resize changed accounting")
		}
	})
}
