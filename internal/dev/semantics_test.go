package dev_test

import (
	"sort"
	"testing"

	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
)

// The ordering-flag semantics (section 3.1) distilled to their predicate:
// given a request and the set of prior pending requests, which of them must
// complete first? dev.Predecessors is the single implementation the driver
// enforces at dispatch time and the crashmc model checker replays when
// deciding which crash-state subsets are legal, so these tables pin the
// semantics both rely on.

func wr(id uint64, lbn int64, count int) *dev.Request {
	return &dev.Request{ID: id, Op: disk.Write, LBN: lbn, Count: count}
}

func flagged(r *dev.Request) *dev.Request { r.Flag = true; return r }

func rd(id uint64, lbn int64, count int) *dev.Request {
	return &dev.Request{ID: id, Op: disk.Read, LBN: lbn, Count: count}
}

func deps(r *dev.Request, ids ...uint64) *dev.Request { r.DependsOn = ids; return r }

func TestPredecessorsSemantics(t *testing.T) {
	ignore := dev.Config{Mode: dev.ModeIgnore}
	part := dev.Config{Mode: dev.ModeFlag, Sem: dev.SemPart}
	partNR := dev.Config{Mode: dev.ModeFlag, Sem: dev.SemPart, NR: true}
	back := dev.Config{Mode: dev.ModeFlag, Sem: dev.SemBack}
	full := dev.Config{Mode: dev.ModeFlag, Sem: dev.SemFull}
	chains := dev.Config{Mode: dev.ModeChains}

	cases := []struct {
		name     string
		cfg      dev.Config
		prior    []*dev.Request
		r        *dev.Request
		lastFlag uint64
		want     []uint64
	}{
		// Conflicts hold in every mode: overlapping ranges with a write on
		// either side never reorder. This is what makes same-block write
		// chains totally ordered even under ModeIgnore.
		{"ignore/write-after-write-overlap", ignore,
			[]*dev.Request{wr(1, 100, 8)}, wr(2, 104, 8), 0, []uint64{1}},
		{"ignore/read-after-write-overlap", ignore,
			[]*dev.Request{wr(1, 100, 8)}, rd(2, 100, 2), 0, []uint64{1}},
		{"ignore/write-after-read-overlap", ignore,
			[]*dev.Request{rd(1, 100, 8)}, wr(2, 100, 8), 0, []uint64{1}},
		{"ignore/read-after-read-free", ignore,
			[]*dev.Request{rd(1, 100, 8)}, rd(2, 100, 8), 0, nil},
		{"ignore/disjoint-writes-free", ignore,
			[]*dev.Request{wr(1, 100, 8)}, wr(2, 200, 8), 0, nil},

		// Part: everything waits for every pending flagged request;
		// unflagged traffic reorders freely.
		{"part/write-waits-pending-flagged", part,
			[]*dev.Request{flagged(wr(1, 100, 8)), wr(2, 200, 8)}, wr(3, 300, 8), 1, []uint64{1}},
		{"part/read-waits-pending-flagged", part,
			[]*dev.Request{flagged(wr(1, 100, 8))}, rd(2, 300, 8), 1, []uint64{1}},
		{"part/unflagged-prior-free", part,
			[]*dev.Request{wr(1, 100, 8)}, wr(2, 300, 8), 0, nil},

		// Part-NR: non-conflicting reads bypass the ordering restriction,
		// but conflicts still hold.
		{"part-nr/read-bypasses-flagged", partNR,
			[]*dev.Request{flagged(wr(1, 100, 8))}, rd(2, 300, 8), 1, nil},
		{"part-nr/conflicting-read-still-waits", partNR,
			[]*dev.Request{flagged(wr(1, 100, 8))}, rd(2, 100, 2), 1, []uint64{1}},
		{"part-nr/write-still-waits-flagged", partNR,
			[]*dev.Request{flagged(wr(1, 100, 8))}, wr(2, 300, 8), 1, []uint64{1}},

		// Back: wait for everything submitted at or before the most recent
		// flagged request — even when that flagged request itself already
		// completed (its barrier outlives it), and even for the unflagged
		// requests that preceded it.
		{"back/waits-through-last-flag", back,
			[]*dev.Request{wr(1, 100, 8), flagged(wr(2, 200, 8)), wr(3, 300, 8)},
			wr(4, 400, 8), 2, []uint64{1, 2}},
		{"back/barrier-outlives-flagged", back,
			[]*dev.Request{wr(1, 100, 8), wr(3, 300, 8)}, wr(4, 400, 8), 2, []uint64{1}},
		{"back/no-flag-yet-free", back,
			[]*dev.Request{wr(1, 100, 8)}, wr(2, 300, 8), 0, nil},

		// Full: like Back for ordinary requests, and a flagged request is
		// additionally a full barrier against everything pending.
		{"full/ordinary-waits-through-last-flag", full,
			[]*dev.Request{wr(1, 100, 8), flagged(wr(2, 200, 8)), wr(3, 300, 8)},
			wr(4, 400, 8), 2, []uint64{1, 2}},
		{"full/flagged-waits-all", full,
			[]*dev.Request{wr(1, 100, 8), flagged(wr(2, 200, 8)), wr(3, 300, 8)},
			flagged(wr(4, 400, 8)), 2, []uint64{1, 2, 3}},

		// Chains: exactly the listed dependencies, filtered to what is
		// still pending (a completed or unknown dependency is satisfied).
		{"chains/depends-on-pending", chains,
			[]*dev.Request{wr(1, 100, 8), wr(2, 200, 8)},
			deps(wr(3, 300, 8), 1), 0, []uint64{1}},
		{"chains/completed-dependency-satisfied", chains,
			[]*dev.Request{wr(2, 200, 8)}, deps(wr(3, 300, 8), 1, 99), 0, nil},
		{"chains/no-deps-free", chains,
			[]*dev.Request{wr(1, 100, 8)}, wr(2, 300, 8), 0, nil},

		// Chains barrier fallback (section 3.2's simpler de-allocation):
		// a flagged request barriers later writes, reads pass.
		{"chains/flagged-barriers-writes", chains,
			[]*dev.Request{flagged(wr(1, 100, 8))}, wr(2, 300, 8), 1, []uint64{1}},
		{"chains/flagged-lets-reads-pass", chains,
			[]*dev.Request{flagged(wr(1, 100, 8))}, rd(2, 300, 8), 1, nil},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := dev.Predecessors(tc.cfg, tc.r, tc.prior, tc.lastFlag)
			ids := make([]uint64, 0, len(got))
			for id := range got {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			if len(ids) != len(tc.want) {
				t.Fatalf("Predecessors = %v, want %v", ids, tc.want)
			}
			for i := range ids {
				if ids[i] != tc.want[i] {
					t.Fatalf("Predecessors = %v, want %v", ids, tc.want)
				}
			}
		})
	}
}

// TestPredecessorsMatchesDriver cross-checks the exported predicate against
// the live driver: a batch of requests submitted together must block and
// dispatch in an order consistent with Predecessors' answer. It guards the
// refactor that made the predicate shareable with the model checker.
func TestPredecessorsMatchesDriver(t *testing.T) {
	// A flagged write followed by an ordinary write under Part semantics:
	// the driver must hold the second write until the first completes.
	// (Covered behaviorally by the scheme tests; here we only assert the
	// predicate is what computeBarrier consults, via the observer.)
	cfg := dev.Config{Mode: dev.ModeFlag, Sem: dev.SemPart}
	prior := []*dev.Request{flagged(wr(1, 100, 8))}
	r := wr(2, 300, 8)
	got := dev.Predecessors(cfg, r, prior, 1)
	if _, ok := got[1]; !ok || len(got) != 1 {
		t.Fatalf("expected request 2 to wait on flagged request 1, got %v", got)
	}
}
