package dev

import (
	"bytes"
	"testing"

	"metaupdate/internal/disk"
	"metaupdate/internal/sim"
)

func newRig(cfg Config) (*sim.Engine, *disk.Disk, *Driver) {
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 64<<20)
	return eng, dsk, New(eng, dsk, cfg)
}

func wreq(lbn int64, count int, flag bool, deps ...uint64) *Request {
	return &Request{
		Op:        disk.Write,
		LBN:       lbn,
		Count:     count,
		Data:      bytes.Repeat([]byte{byte(lbn)}, count*disk.SectorSize),
		Flag:      flag,
		DependsOn: deps,
	}
}

func rreq(lbn int64, count int) *Request {
	return &Request{Op: disk.Read, LBN: lbn, Count: count, Buf: make([]byte, count*disk.SectorSize)}
}

// completionOrder submits all requests at t=0 and returns indices in
// completion order.
func completionOrder(t *testing.T, cfg Config, reqs []*Request) []int {
	t.Helper()
	eng, _, drv := newRig(cfg)
	var order []int
	for i, r := range reqs {
		i := i
		drv.Submit(r)
		eng.Spawn("w", func(p *sim.Proc) {
			r.Done.Wait(p)
			order = append(order, i)
		})
	}
	eng.Run()
	if len(order) != len(reqs) {
		t.Fatalf("only %d of %d requests completed", len(order), len(reqs))
	}
	return order
}

func indexOf(order []int, i int) int {
	for p, v := range order {
		if v == i {
			return p
		}
	}
	return -1
}

func TestFIFOWhenIdle(t *testing.T) {
	eng, dsk, drv := newRig(Config{Mode: ModeIgnore})
	r := wreq(100, 2, false)
	drv.Submit(r)
	eng.Run()
	if !r.Done.Fired() {
		t.Fatal("request never completed")
	}
	got := make([]byte, 2*disk.SectorSize)
	dsk.ReadAt(100, got)
	if !bytes.Equal(got, r.Data) {
		t.Fatal("write data not committed to media")
	}
}

func TestReadFillsBuffer(t *testing.T) {
	eng, dsk, drv := newRig(Config{Mode: ModeIgnore})
	want := bytes.Repeat([]byte{0x5A}, disk.SectorSize)
	dsk.Commit(7, want)
	r := rreq(7, 1)
	drv.Submit(r)
	eng.Run()
	if !bytes.Equal(r.Buf, want) {
		t.Fatal("read did not return media contents")
	}
}

func TestCLOOKOrdersBySector(t *testing.T) {
	// Submit far, near, middle while the disk is busy; with Ignore mode the
	// scheduler should sweep them in ascending LBN order.
	eng, _, drv := newRig(Config{Mode: ModeIgnore})
	blocker := wreq(10, 1, false)
	drv.Submit(blocker) // dispatches immediately, keeps disk busy
	far := wreq(50000, 1, false)
	near := wreq(1000, 1, false)
	mid := wreq(20000, 1, false)
	var order []int64
	for _, r := range []*Request{far, near, mid} {
		r := r
		drv.Submit(r)
		eng.Spawn("w", func(p *sim.Proc) {
			r.Done.Wait(p)
			order = append(order, r.LBN)
		})
	}
	eng.Run()
	want := []int64{1000, 20000, 50000}
	for i, lbn := range want {
		if order[i] != lbn {
			t.Fatalf("C-LOOK order %v, want %v", order, want)
		}
	}
}

func TestConcatenationOfSequentialRequests(t *testing.T) {
	eng, dsk, drv := newRig(Config{Mode: ModeIgnore})
	blocker := wreq(90000, 1, false)
	drv.Submit(blocker)
	// Three contiguous writes; they should dispatch as one disk command.
	for i := 0; i < 3; i++ {
		drv.Submit(wreq(int64(100+2*i), 2, false))
	}
	eng.Run()
	// blocker + 1 concatenated batch = 2 disk commands
	if dsk.Writes != 2 {
		t.Errorf("disk saw %d write commands, want 2 (concatenation)", dsk.Writes)
	}
	if got := drv.Trace.Requests(); got != 4 {
		t.Errorf("trace has %d requests, want 4", got)
	}
}

func TestConflictingWritesNeverReorder(t *testing.T) {
	// Two writes to the same sectors must complete in submission order even
	// though the second would be closer to the head.
	eng, dsk, drv := newRig(Config{Mode: ModeIgnore})
	drv.Submit(wreq(70000, 1, false)) // park head far away
	first := wreq(100, 2, false)
	second := &Request{Op: disk.Write, LBN: 100, Count: 2,
		Data: bytes.Repeat([]byte{0xEE}, 2*disk.SectorSize)}
	drv.Submit(first)
	drv.Submit(second)
	eng.Run()
	got := make([]byte, 2*disk.SectorSize)
	dsk.ReadAt(100, got)
	if !bytes.Equal(got, second.Data) {
		t.Fatal("conflicting writes reordered: media has first write's data")
	}
}

func TestFlagPartSemantics(t *testing.T) {
	// Part: requests submitted after a flagged request never precede it,
	// but a non-flagged earlier request may drift freely.
	reqs := []*Request{
		wreq(80000, 1, false), // 0: blocker to keep disk busy
		wreq(60000, 1, false), // 1: non-flagged, far
		wreq(50000, 1, true),  // 2: flagged
		wreq(10, 1, false),    // 3: after flag, near head -> must wait for 2
	}
	order := completionOrder(t, Config{Mode: ModeFlag, Sem: SemPart}, reqs)
	if indexOf(order, 3) < indexOf(order, 2) {
		t.Fatalf("Part violated: %v (3 before flagged 2)", order)
	}
	// 1 is free to complete after 3 or before 2 — no assertion.
}

func TestFlagBackSemantics(t *testing.T) {
	// Back: request 3 must wait for the flagged request 2 AND for request 1
	// submitted before the flag.
	reqs := []*Request{
		wreq(80000, 1, false), // 0: blocker
		wreq(60000, 1, false), // 1: before flag
		wreq(50000, 1, true),  // 2: flagged
		wreq(10, 1, false),    // 3: after flag
	}
	order := completionOrder(t, Config{Mode: ModeFlag, Sem: SemBack}, reqs)
	if indexOf(order, 3) < indexOf(order, 1) || indexOf(order, 3) < indexOf(order, 2) {
		t.Fatalf("Back violated: %v", order)
	}
}

func TestFlagBackAllowsFlaggedToPassPrevious(t *testing.T) {
	// Back: the flagged request itself reorders freely with previous
	// non-flagged requests. Flagged near-head request should beat a far
	// non-flagged one.
	reqs := []*Request{
		wreq(80000, 1, false), // 0: blocker
		wreq(60000, 1, false), // 1: far, non-flagged
		wreq(100, 1, true),    // 2: flagged, near... head after blocker is 80001 -> C-LOOK wraps to 100 first anyway
	}
	order := completionOrder(t, Config{Mode: ModeFlag, Sem: SemBack}, reqs)
	if indexOf(order, 2) > indexOf(order, 1) {
		t.Fatalf("Back: flagged request failed to pass previous non-flagged: %v", order)
	}
}

func TestFlagFullBarrier(t *testing.T) {
	// Full: the flagged request waits for ALL previous requests.
	reqs := []*Request{
		wreq(80000, 1, false), // 0: blocker
		wreq(60000, 1, false), // 1: far non-flagged
		wreq(100, 1, true),    // 2: flagged near -> must wait for 1 under Full
		wreq(200, 1, false),   // 3: after flag -> waits for 2
	}
	order := completionOrder(t, Config{Mode: ModeFlag, Sem: SemFull}, reqs)
	if indexOf(order, 2) < indexOf(order, 1) {
		t.Fatalf("Full violated: flagged passed previous request: %v", order)
	}
	if indexOf(order, 3) < indexOf(order, 2) {
		t.Fatalf("Full violated: later request passed barrier: %v", order)
	}
}

func TestNRLetsReadsBypass(t *testing.T) {
	// A read submitted after a flagged write should complete before queued
	// flag-blocked writes when NR is set, and after them when it is not.
	build := func() []*Request {
		return []*Request{
			wreq(80000, 4, false), // 0: blocker
			wreq(50000, 2, true),  // 1: flagged write
			wreq(40000, 2, false), // 2: blocked behind 1 (Part)
			rreq(100, 2),          // 3: read
		}
	}
	withNR := completionOrder(t, Config{Mode: ModeFlag, Sem: SemPart, NR: true}, build())
	if got := indexOf(withNR, 3); got > 1 {
		t.Fatalf("with NR, read finished at position %d of %v", got, withNR)
	}
	withoutNR := completionOrder(t, Config{Mode: ModeFlag, Sem: SemPart}, build())
	if indexOf(withoutNR, 3) < indexOf(withoutNR, 1) {
		t.Fatalf("without NR, read bypassed flagged write: %v", withoutNR)
	}
}

func TestNRConflictingReadStillWaits(t *testing.T) {
	// A read of sectors with a queued write must wait for that write even
	// under NR ("unless the read requests are for locations to be written").
	reqs := []*Request{
		wreq(80000, 4, false), // 0: blocker
		wreq(50000, 2, true),  // 1: flagged write
		wreq(40000, 2, false), // 2: write the read conflicts with
		rreq(40000, 2),        // 3: conflicting read
	}
	order := completionOrder(t, Config{Mode: ModeFlag, Sem: SemPart, NR: true}, reqs)
	if indexOf(order, 3) < indexOf(order, 2) {
		t.Fatalf("conflicting read bypassed pending write: %v", order)
	}
}

func TestChainsDependencies(t *testing.T) {
	eng, _, drv := newRig(Config{Mode: ModeChains})
	blocker := drv.Submit(wreq(80000, 1, false))
	a := drv.Submit(wreq(60000, 1, false))
	b := drv.Submit(wreq(10, 1, false, a.ID)) // near head but depends on a
	var order []uint64
	for _, r := range []*Request{blocker, a, b} {
		r := r
		eng.Spawn("w", func(p *sim.Proc) {
			r.Done.Wait(p)
			order = append(order, r.ID)
		})
	}
	eng.Run()
	ia, ib := -1, -1
	for i, id := range order {
		if id == a.ID {
			ia = i
		}
		if id == b.ID {
			ib = i
		}
	}
	if ib < ia {
		t.Fatalf("chains violated: dependent completed first: %v", order)
	}
}

func TestChainsCompletedDependencySatisfied(t *testing.T) {
	eng, _, drv := newRig(Config{Mode: ModeChains})
	a := drv.Submit(wreq(100, 1, false))
	eng.Run()
	if drv.IsPending(a.ID) {
		t.Fatal("request still pending after Run")
	}
	// Depending on an already-completed request must not block forever.
	b := drv.Submit(wreq(200, 1, false, a.ID))
	eng.Run()
	if !b.Done.Fired() {
		t.Fatal("request blocked on completed dependency")
	}
}

func TestChainsUnrelatedRequestsReorderFreely(t *testing.T) {
	// Unlike the flag schemes, chains lets an unrelated near request pass a
	// "flagged-equivalent" pair.
	eng, _, drv := newRig(Config{Mode: ModeChains})
	blocker := drv.Submit(wreq(80000, 1, false))
	a := drv.Submit(wreq(60000, 1, false))
	b := drv.Submit(wreq(61000, 1, false, a.ID))
	c := drv.Submit(wreq(10, 1, false)) // unrelated, near
	var order []uint64
	for _, r := range []*Request{blocker, a, b, c} {
		r := r
		eng.Spawn("w", func(p *sim.Proc) {
			r.Done.Wait(p)
			order = append(order, r.ID)
		})
	}
	eng.Run()
	if order[0] != blocker.ID || order[1] != c.ID {
		t.Fatalf("unrelated request failed to pass dependency chain: %v", order)
	}
}

func TestWaitIdle(t *testing.T) {
	eng, _, drv := newRig(Config{Mode: ModeIgnore})
	drv.Submit(wreq(100, 1, false))
	drv.Submit(wreq(5000, 1, false))
	var idleAt sim.Time
	eng.Spawn("sync", func(p *sim.Proc) {
		drv.WaitIdle(p)
		idleAt = p.Now()
	})
	eng.Run()
	if idleAt <= 0 {
		t.Fatal("WaitIdle returned immediately despite queued work")
	}
	if drv.Busy() {
		t.Fatal("driver still busy after Run")
	}
}

func TestWaitIdleWhenAlreadyIdle(t *testing.T) {
	eng, _, drv := newRig(Config{Mode: ModeIgnore})
	done := false
	eng.Spawn("sync", func(p *sim.Proc) {
		drv.WaitIdle(p)
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("WaitIdle blocked with empty queue")
	}
}

func TestTraceStats(t *testing.T) {
	eng, _, drv := newRig(Config{Mode: ModeIgnore})
	drv.Submit(wreq(100, 2, false))
	drv.Submit(wreq(50000, 2, false))
	eng.Run()
	tr := &drv.Trace
	if tr.Requests() != 2 {
		t.Fatalf("Requests() = %d", tr.Requests())
	}
	if tr.AvgServiceMS() <= 0 || tr.AvgResponseMS() < tr.AvgServiceMS() {
		t.Errorf("stats inconsistent: service %.2f response %.2f",
			tr.AvgServiceMS(), tr.AvgResponseMS())
	}
	tr.Reset()
	if tr.Requests() != 0 || tr.MaxQueueLen != 0 {
		t.Error("Reset did not clear trace")
	}
}

func TestCrashCommitsPrefixOnly(t *testing.T) {
	eng, dsk, drv := newRig(Config{Mode: ModeIgnore})
	r := wreq(100, 8, false)
	drv.Submit(r)
	// Freeze mid-transfer: after positioning plus ~2 sectors.
	acc := drv.batchAccess
	crashAt := drv.batchDispatch + acc.Positioning + 2*acc.PerSector + acc.PerSector/2
	eng.RunUntil(crashAt - 1)
	drv.Crash(crashAt)
	got := make([]byte, 8*disk.SectorSize)
	dsk.ReadAt(100, got)
	nonzero := 0
	for s := 0; s < 8; s++ {
		sector := got[s*disk.SectorSize : (s+1)*disk.SectorSize]
		if !bytes.Equal(sector, bytes.Repeat([]byte{0}, disk.SectorSize)) {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Fatalf("crash committed %d sectors, want exactly 2", nonzero)
	}
}

func TestCrashBeforePositioningCommitsNothing(t *testing.T) {
	eng, dsk, drv := newRig(Config{Mode: ModeIgnore})
	drv.Submit(wreq(100, 4, false))
	eng.RunUntil(0)
	drv.Crash(drv.batchDispatch + drv.batchAccess.Positioning/2)
	got := make([]byte, 4*disk.SectorSize)
	dsk.ReadAt(100, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("crash during positioning committed data")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, _, drv := newRig(Config{Mode: ModeIgnore})
	for _, r := range []*Request{
		{Op: disk.Write, LBN: 0, Count: 0},
		{Op: disk.Write, LBN: 0, Count: 2, Data: make([]byte, disk.SectorSize)},
		{Op: disk.Read, LBN: 0, Count: 1, Buf: make([]byte, 10)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Submit(%+v) did not panic", r)
				}
			}()
			drv.Submit(r)
		}()
	}
}

func TestSemanticsString(t *testing.T) {
	if SemFull.String() != "Full" || SemBack.String() != "Back" || SemPart.String() != "Part" {
		t.Error("FlagSemantics strings wrong")
	}
}

func TestPendingIDs(t *testing.T) {
	eng, _, drv := newRig(Config{Mode: ModeIgnore})
	drv.Submit(wreq(80000, 1, false))
	a := drv.Submit(wreq(100, 1, false))
	ids := drv.PendingIDs()
	if len(ids) != 2 || !drv.IsPending(a.ID) {
		t.Fatalf("PendingIDs = %v", ids)
	}
	eng.Run()
	if len(drv.PendingIDs()) != 0 {
		t.Fatal("requests still pending after Run")
	}
}
