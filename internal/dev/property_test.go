package dev

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metaupdate/internal/disk"
	"metaupdate/internal/sim"
)

// The driver's one job is to never violate the contract of its ordering
// mode, no matter what request stream arrives. These properties replay
// random streams and verify the completion order against an oracle.

type completionRecorder struct {
	order []uint64
	pos   map[uint64]int
}

// randomStream submits a random mix of reads and writes (some flagged, some
// with dependencies on earlier requests) from a simulated process with
// random think times, then runs to completion.
func randomStream(t *testing.T, cfg Config, seed int64, n int) ([]*Request, *completionRecorder) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 64<<20)
	drv := New(eng, dsk, cfg)

	var reqs []*Request
	done := false
	eng.Spawn("submitter", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			lbn := rng.Int63n(dsk.Sectors() - 16)
			count := 1 + rng.Intn(8)
			r := &Request{LBN: lbn, Count: count}
			if rng.Intn(4) == 0 {
				r.Op = disk.Read
				r.Buf = make([]byte, count*disk.SectorSize)
			} else {
				r.Op = disk.Write
				r.Data = make([]byte, count*disk.SectorSize)
				if cfg.Mode == ModeFlag && rng.Intn(3) == 0 {
					r.Flag = true
				}
				if cfg.Mode == ModeChains && len(reqs) > 0 && rng.Intn(3) == 0 {
					// Depend on up to two random earlier requests.
					for d := 0; d < 1+rng.Intn(2); d++ {
						r.DependsOn = append(r.DependsOn, reqs[rng.Intn(len(reqs))].ID)
					}
				}
			}
			drv.Submit(r)
			reqs = append(reqs, r)
			if rng.Intn(3) == 0 {
				p.Sleep(sim.Duration(rng.Int63n(int64(12 * sim.Millisecond))))
			}
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("submitter did not finish")
	}
	rec := &completionRecorder{pos: make(map[uint64]int)}
	// Reconstruct completion order from the trace: it appends at completion.
	// Simpler: verify every request completed and build order from Done
	// FiredAt plus submission order as a tie-break.
	type fin struct {
		id uint64
		at sim.Time
		ix int
	}
	var fins []fin
	for i, r := range reqs {
		if !r.Done.Fired() {
			t.Fatalf("request %d never completed", r.ID)
		}
		fins = append(fins, fin{r.ID, r.Done.FiredAt, i})
	}
	// Stable order: completion time, then submission index (batch members
	// complete at the same instant in submission order within the batch).
	for i := 1; i < len(fins); i++ {
		for j := i; j > 0 && (fins[j].at < fins[j-1].at ||
			(fins[j].at == fins[j-1].at && fins[j].ix < fins[j-1].ix)); j-- {
			fins[j], fins[j-1] = fins[j-1], fins[j]
		}
	}
	for _, f := range fins {
		rec.pos[f.id] = len(rec.order)
		rec.order = append(rec.order, f.id)
	}
	return reqs, rec
}

func TestPropertyChainsRespectDependencies(t *testing.T) {
	f := func(seed int64) bool {
		reqs, rec := randomStream(t, Config{Mode: ModeChains}, seed, 40)
		for _, r := range reqs {
			for _, dep := range r.DependsOn {
				if rec.pos[dep] > rec.pos[r.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPartSemantics(t *testing.T) {
	// Part: no write submitted after a flagged write may complete before
	// it.
	f := func(seed int64) bool {
		reqs, rec := randomStream(t, Config{Mode: ModeFlag, Sem: SemPart}, seed, 40)
		for i, r := range reqs {
			if !r.Flag {
				continue
			}
			for _, later := range reqs[i+1:] {
				if later.Op == disk.Write && rec.pos[later.ID] < rec.pos[r.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBackSemantics(t *testing.T) {
	// Back: a write submitted after a flagged write completes after the
	// flagged write AND after everything submitted before the flag.
	f := func(seed int64) bool {
		reqs, rec := randomStream(t, Config{Mode: ModeFlag, Sem: SemBack}, seed, 30)
		for i, rf := range reqs {
			if !rf.Flag {
				continue
			}
			for _, later := range reqs[i+1:] {
				if later.Op != disk.Write {
					continue
				}
				for _, earlier := range reqs[:i+1] {
					if rec.pos[later.ID] < rec.pos[earlier.ID] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFullSemantics(t *testing.T) {
	// Full: additionally, the flagged write itself completes after every
	// previously submitted request.
	f := func(seed int64) bool {
		reqs, rec := randomStream(t, Config{Mode: ModeFlag, Sem: SemFull}, seed, 30)
		for i, rf := range reqs {
			if !rf.Flag {
				continue
			}
			for _, earlier := range reqs[:i] {
				if rec.pos[rf.ID] < rec.pos[earlier.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyConflictingWritesOrdered(t *testing.T) {
	// In every mode, overlapping writes complete in submission order and
	// the media ends with the last writer's data.
	modes := []Config{
		{Mode: ModeIgnore},
		{Mode: ModeFlag, Sem: SemPart, NR: true},
		{Mode: ModeChains},
	}
	f := func(seed int64, modeIx uint8) bool {
		cfg := modes[int(modeIx)%len(modes)]
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		dsk := disk.New(disk.HPC2447(), 8<<20)
		drv := New(eng, dsk, cfg)
		// All writes to the same 4 sectors, distinct fill bytes.
		var reqs []*Request
		eng.Spawn("s", func(p *sim.Proc) {
			for i := 0; i < 12; i++ {
				data := make([]byte, 4*disk.SectorSize)
				for j := range data {
					data[j] = byte(i + 1)
				}
				r := &Request{Op: disk.Write, LBN: 100, Count: 4, Data: data,
					Flag: rng.Intn(2) == 0}
				drv.Submit(r)
				reqs = append(reqs, r)
				if rng.Intn(2) == 0 {
					p.Sleep(sim.Duration(rng.Int63n(int64(5 * sim.Millisecond))))
				}
			}
		})
		eng.Run()
		for i := 1; i < len(reqs); i++ {
			if reqs[i].Done.FiredAt < reqs[i-1].Done.FiredAt {
				return false
			}
		}
		got := make([]byte, 4*disk.SectorSize)
		dsk.ReadAt(100, got)
		return got[0] == 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
