package dev

import (
	"bytes"
	"testing"

	"metaupdate/internal/disk"
	"metaupdate/internal/fault"
	"metaupdate/internal/sim"
)

// scriptJudge plays back a fixed outcome per judged access, then judges
// everything after the script fault-free. It lets these tests hit exact
// driver states (one transient, one torn write at sector k, ...) without
// chasing a seeded stream.
type scriptJudge struct {
	script []fault.Outcome
	calls  int
}

func (j *scriptJudge) Judge(write bool, lbn int64, count int, remapped func(int64) bool) fault.Outcome {
	j.calls++
	if len(j.script) == 0 {
		return fault.Outcome{}
	}
	o := j.script[0]
	j.script = j.script[1:]
	return o
}

// always judges every access with the same outcome, forever.
type always struct{ o fault.Outcome }

func (j always) Judge(bool, int64, int, func(int64) bool) fault.Outcome { return j.o }

func newFaultRig(cfg Config, j fault.Judge, spares int) (*sim.Engine, *disk.Disk, *Driver) {
	eng, dsk, drv := newRig(cfg)
	dsk.SetFaults(j, spares)
	return eng, dsk, drv
}

func mediaSectors(dsk *disk.Disk, lbn int64, count int) int {
	buf := make([]byte, count*disk.SectorSize)
	dsk.ReadAt(lbn, buf)
	zero := make([]byte, disk.SectorSize)
	n := 0
	for s := 0; s < count; s++ {
		if !bytes.Equal(buf[s*disk.SectorSize:(s+1)*disk.SectorSize], zero) {
			n++
		}
	}
	return n
}

func TestTransientRetryRecovers(t *testing.T) {
	j := &scriptJudge{script: []fault.Outcome{{Kind: fault.Transient}}}
	eng, dsk, drv := newFaultRig(Config{Mode: ModeIgnore}, j, 0)
	r := wreq(100, 4, false)
	drv.Submit(r)
	eng.Run()
	if !r.Done.Fired() || r.Err != nil {
		t.Fatalf("request after one transient: fired=%v err=%v", r.Done.Fired(), r.Err)
	}
	got := make([]byte, 4*disk.SectorSize)
	dsk.ReadAt(100, got)
	if !bytes.Equal(got, r.Data) {
		t.Fatal("retried write did not reach the media")
	}
	if drv.Faults.Transient != 1 || drv.Faults.Retries != 1 || drv.Faults.Errors != 0 {
		t.Fatalf("stats = %+v, want 1 transient / 1 retry / 0 errors", drv.Faults)
	}
}

// TestExhaustedRetriesFailRequest pins the bug class where complete()
// assumed every batch succeeds: a request whose retries run out must still
// leave the pending set, fire Done, and carry ErrIO — not hang the driver
// or report success with data missing from the media.
func TestExhaustedRetriesFailRequest(t *testing.T) {
	eng, dsk, drv := newFaultRig(Config{Mode: ModeIgnore, MaxRetries: 2},
		always{fault.Outcome{Kind: fault.Transient}}, 0)
	r := wreq(100, 4, false)
	drv.Submit(r)
	eng.Run()
	if !r.Done.Fired() {
		t.Fatal("Done never fired for a failed request")
	}
	if r.Err != ErrIO {
		t.Fatalf("Err = %v, want ErrIO", r.Err)
	}
	if drv.IsPending(r.ID) || drv.Busy() {
		t.Fatal("driver still tracks the failed request")
	}
	if n := mediaSectors(dsk, 100, 4); n != 0 {
		t.Fatalf("transient failures committed %d sectors to the media", n)
	}
	// 1 initial attempt + MaxRetries redispatches, every one transient.
	if drv.Faults.Transient != 3 || drv.Faults.Retries != 2 || drv.Faults.Errors != 1 {
		t.Fatalf("stats = %+v, want 3 transient / 2 retries / 1 error", drv.Faults)
	}
}

func TestTornWriteCommitsPrefixThenRewrites(t *testing.T) {
	j := &scriptJudge{script: []fault.Outcome{{Kind: fault.Torn, TornSectors: 2}}}
	eng, dsk, drv := newFaultRig(Config{Mode: ModeIgnore}, j, 0)
	r := wreq(100, 6, false)
	drv.Submit(r)
	eng.Run()
	if r.Err != nil {
		t.Fatalf("Err = %v after a recovered torn write", r.Err)
	}
	got := make([]byte, 6*disk.SectorSize)
	dsk.ReadAt(100, got)
	if !bytes.Equal(got, r.Data) {
		t.Fatal("rewrite after torn write did not complete the data")
	}
	if drv.Faults.Torn != 1 || drv.Faults.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 torn / 1 retry", drv.Faults)
	}
}

// TestCrashDuringBackoffCommitsNothingFurther pins the crash/retry
// interaction: a crash that lands between a torn attempt and its scheduled
// redispatch must freeze the media at exactly the torn prefix — the
// elapsed-time prefix math only applies while a transfer is in progress.
func TestCrashDuringBackoffCommitsNothingFurther(t *testing.T) {
	j := &scriptJudge{script: []fault.Outcome{{Kind: fault.Torn, TornSectors: 2}}}
	eng, dsk, drv := newFaultRig(
		Config{Mode: ModeIgnore, RetryBackoff: 100 * sim.Millisecond}, j, 0)
	drv.Submit(wreq(100, 6, false))
	// Run exactly through the torn attempt's completion; the driver is now
	// waiting out the backoff with the redispatch scheduled.
	attemptEnd := drv.batchDispatch + drv.batchAccess.Service
	eng.RunUntil(attemptEnd)
	if drv.batchState != batchBackoff {
		t.Fatalf("batchState = %d after torn attempt, want backoff", drv.batchState)
	}
	drv.Crash(attemptEnd + 10*sim.Millisecond)
	if n := mediaSectors(dsk, 100, 6); n != 2 {
		t.Fatalf("media has %d sectors after crash in backoff, want exactly the torn prefix (2)", n)
	}
}

// TestFailedPredecessorUnblocksSuccessor: chains mode must not let a failed
// request strand its dependents — its data never reached the media, so it
// constrains nothing.
func TestFailedPredecessorUnblocksSuccessor(t *testing.T) {
	// 3 judged accesses for a (initial + 2 retries), all transient; then
	// clean for b.
	j := &scriptJudge{script: []fault.Outcome{
		{Kind: fault.Transient}, {Kind: fault.Transient}, {Kind: fault.Transient},
	}}
	eng, dsk, drv := newFaultRig(Config{Mode: ModeChains, MaxRetries: 2}, j, 0)
	a := drv.Submit(wreq(100, 2, false))
	b := drv.Submit(wreq(200, 2, false, a.ID))
	eng.Run()
	if a.Err != ErrIO {
		t.Fatalf("a.Err = %v, want ErrIO", a.Err)
	}
	if !b.Done.Fired() || b.Err != nil {
		t.Fatalf("successor of failed request: fired=%v err=%v", b.Done.Fired(), b.Err)
	}
	got := make([]byte, 2*disk.SectorSize)
	dsk.ReadAt(200, got)
	if !bytes.Equal(got, b.Data) {
		t.Fatal("successor's data not on media")
	}
}

// TestNoSuccessorUnblockDuringRetries: while a batch is being retried its
// requests are unresolved — dependents must stay blocked until the final
// outcome, not dispatch between attempts.
func TestNoSuccessorUnblockDuringRetries(t *testing.T) {
	j := &scriptJudge{script: []fault.Outcome{{Kind: fault.Transient}}}
	eng, _, drv := newFaultRig(
		Config{Mode: ModeChains, RetryBackoff: 50 * sim.Millisecond}, j, 0)
	a := drv.Submit(wreq(100, 2, false))
	b := drv.Submit(wreq(10, 1, false, a.ID)) // nearer the head than a
	var order []uint64
	for _, r := range []*Request{a, b} {
		r := r
		eng.Spawn("w", func(p *sim.Proc) {
			r.Done.Wait(p)
			order = append(order, r.ID)
		})
	}
	attemptEnd := drv.batchDispatch + drv.batchAccess.Service
	eng.RunUntil(attemptEnd)
	if drv.batchState != batchBackoff {
		t.Fatalf("batchState = %d, want backoff", drv.batchState)
	}
	if b.Done.Fired() || !drv.IsPending(a.ID) {
		t.Fatal("successor resolved while predecessor was mid-retry")
	}
	eng.Run()
	if len(order) != 2 || order[0] != a.ID {
		t.Fatalf("completion order %v, want predecessor %d first", order, a.ID)
	}
}

func TestBadSectorWriteRemapsAndSucceeds(t *testing.T) {
	j := &scriptJudge{script: []fault.Outcome{
		{Kind: fault.BadSector, Sector: 102, TornSectors: 2},
	}}
	eng, dsk, drv := newFaultRig(Config{Mode: ModeIgnore}, j, 4)
	r := wreq(100, 6, false)
	drv.Submit(r)
	eng.Run()
	if r.Err != nil {
		t.Fatalf("Err = %v after a remapped bad sector", r.Err)
	}
	if !dsk.IsRemapped(102) {
		t.Fatal("sector 102 not remapped")
	}
	got := make([]byte, 6*disk.SectorSize)
	dsk.ReadAt(100, got)
	if !bytes.Equal(got, r.Data) {
		t.Fatal("data incomplete after remap + rewrite")
	}
	if drv.Faults.BadSectors != 1 || drv.Faults.Remaps != 1 || drv.Faults.Errors != 0 {
		t.Fatalf("stats = %+v, want 1 bad sector / 1 remap / 0 errors", drv.Faults)
	}
}

func TestBadSectorWriteSparePoolExhaustedFails(t *testing.T) {
	// A one-sector spare pool: the first bad sector remaps and recovers,
	// the second finds the pool empty and the write must fail for real.
	j := &scriptJudge{script: []fault.Outcome{
		{Kind: fault.BadSector, Sector: 102, TornSectors: 2}, // r1, remapped
		{}, // r1 retry, clean
		{Kind: fault.BadSector, Sector: 301, TornSectors: 1}, // r2, pool empty
	}}
	eng, _, drv := newFaultRig(Config{Mode: ModeIgnore}, j, 1)
	r1 := wreq(100, 6, false)
	drv.Submit(r1)
	eng.Run()
	if r1.Err != nil {
		t.Fatalf("first bad sector should remap and recover, got Err = %v", r1.Err)
	}
	r2 := wreq(300, 4, false)
	drv.Submit(r2)
	eng.Run()
	if r2.Err != ErrBadSector {
		t.Fatalf("Err = %v, want ErrBadSector with the spare pool exhausted", r2.Err)
	}
	if !r2.Done.Fired() || drv.Busy() {
		t.Fatal("failed request left the driver busy")
	}
	if drv.Faults.Remaps != 1 || drv.Faults.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 remap / 1 error", drv.Faults)
	}
}

// TestBadSectorReadFailsOnlyCoveringRequests: a concatenated read batch that
// hits a permanently bad sector fails just the requests covering it; the
// rest of the batch goes back to the queue and completes normally.
func TestBadSectorReadFailsOnlyCoveringRequests(t *testing.T) {
	// Call 1: the blocker's write, clean. Call 2: the concatenated read
	// batch, bad sector at 101. Call 3+: the requeued survivor, clean.
	j := &scriptJudge{script: []fault.Outcome{
		{}, {Kind: fault.BadSector, Sector: 101},
	}}
	eng, _, drv := newFaultRig(Config{Mode: ModeIgnore}, j, 0)
	drv.Submit(wreq(80000, 1, false)) // keep the disk busy so the reads concat
	r1 := drv.Submit(rreq(100, 1))
	r2 := drv.Submit(rreq(101, 1))
	eng.Run()
	if r2.Err != ErrBadSector {
		t.Fatalf("covering read Err = %v, want ErrBadSector", r2.Err)
	}
	if r1.Err != nil || !r1.Done.Fired() {
		t.Fatalf("innocent read in the same batch: fired=%v err=%v", r1.Done.Fired(), r1.Err)
	}
	if drv.Busy() {
		t.Fatal("driver busy after split read batch drained")
	}
}

// TestPooledRequestCleanAfterFailedUse pins pool hygiene: a Request that
// completed with an error and was Released must come back from AllocRequest
// as a blank request (no stale Err, no stale barrier links) and be usable
// for a clean access.
func TestPooledRequestCleanAfterFailedUse(t *testing.T) {
	eng, dsk, drv := newFaultRig(Config{Mode: ModeIgnore, MaxRetries: 1},
		&scriptJudge{script: []fault.Outcome{
			{Kind: fault.Transient}, {Kind: fault.Transient},
		}}, 0)
	r := drv.AllocRequest()
	*r = Request{Op: disk.Write, LBN: 100, Count: 2, Done: r.Done,
		Data: bytes.Repeat([]byte{0xAB}, 2*disk.SectorSize)}
	drv.Submit(r)
	eng.Run()
	if r.Err != ErrIO {
		t.Fatalf("setup: Err = %v, want ErrIO", r.Err)
	}
	drv.Release(r)
	r2 := drv.AllocRequest()
	if r2 != r {
		t.Fatal("pool did not return the released request (LIFO)")
	}
	if r2.Err != nil || r2.Count != 0 || len(r2.blocks) != 0 {
		t.Fatalf("reused request not blank: err=%v count=%d blocks=%d",
			r2.Err, r2.Count, len(r2.blocks))
	}
	*r2 = Request{Op: disk.Write, LBN: 300, Count: 1, Done: r2.Done,
		Data: bytes.Repeat([]byte{0xCD}, disk.SectorSize)}
	drv.Submit(r2)
	eng.Run()
	if r2.Err != nil {
		t.Fatalf("clean reuse completed with Err = %v", r2.Err)
	}
	got := make([]byte, disk.SectorSize)
	dsk.ReadAt(300, got)
	if !bytes.Equal(got, r2.Data) {
		t.Fatal("reused request's data not on media")
	}
}
