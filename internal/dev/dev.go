// Package dev implements the instrumented device driver and disk scheduler
// from the paper's experimental apparatus (section 2) and the
// scheduler-enforced ordering machinery of section 3.
//
// The driver accepts asynchronous requests, keeps them in a queue, and
// dispatches them to the disk with C-LOOK scheduling, concatenating
// sequential requests the way the paper's SVR4 MP driver did. Ordering is
// expressed as a per-request *barrier set* computed at submission time:
//
//   - ModeIgnore: no ordering beyond conflicts (overlapping ranges never
//     reorder). Used by Conventional, Soft Updates and No Order, which
//     enforce ordering above the driver (or not at all).
//   - ModeFlag: the one-bit ordering flag of section 3.1 with the Full,
//     Back and Part semantics, optionally letting non-conflicting reads
//     bypass ordering (the -NR option).
//   - ModeChains: the explicit dependency lists of section 3.2 — each
//     request names previously issued request IDs that must complete first.
//
// Every request is traced with its queue and service delays, reproducing
// the paper's driver instrumentation ("per-request queue and service
// delays").
package dev

import (
	"errors"
	"fmt"
	"sort"

	"metaupdate/internal/disk"
	"metaupdate/internal/fault"
	"metaupdate/internal/sim"
)

// Errors a request can complete with (Request.Err). They surface only on a
// faulted disk: with no fault plan installed every request still succeeds.
var (
	// ErrIO: the command kept failing transiently (or tearing) until the
	// driver's retry budget ran out.
	ErrIO = errors.New("dev: unrecoverable i/o error")
	// ErrBadSector: the range covers a permanently bad sector that could
	// not be remapped — unreadable data (reads) or an exhausted spare pool
	// (writes).
	ErrBadSector = errors.New("dev: permanent bad sector")
)

// OrderMode selects how the scheduler interprets ordering information.
type OrderMode int

// Ordering modes.
const (
	ModeIgnore OrderMode = iota
	ModeFlag
	ModeChains
)

// FlagSemantics is the contract between file system and scheduler for
// ModeFlag (section 3.1).
type FlagSemantics int

// Flag semantics, from most to least restrictive.
const (
	// SemFull: a flagged request is a full barrier — it waits for all
	// previous requests, and nothing submitted later passes it.
	SemFull FlagSemantics = iota
	// SemBack: requests submitted after a flagged request cannot be
	// scheduled before it or anything submitted before it; the flagged
	// request itself reorders freely with previous non-flagged requests.
	SemBack
	// SemPart: requests submitted after a flagged request cannot be
	// scheduled before it; everything else reorders freely.
	SemPart
)

func (s FlagSemantics) String() string {
	switch s {
	case SemFull:
		return "Full"
	case SemBack:
		return "Back"
	case SemPart:
		return "Part"
	}
	return fmt.Sprintf("FlagSemantics(%d)", int(s))
}

// Config parameterizes the driver.
type Config struct {
	Mode OrderMode
	Sem  FlagSemantics // for ModeFlag
	// NR lets non-conflicting reads bypass writes that are waiting on
	// ordering restrictions (the -NR option; meaningless for ModeChains,
	// where reads simply carry no dependencies).
	NR bool
	// MaxConcat bounds the sectors dispatched as one concatenated disk
	// command. 0 means DefaultMaxConcat.
	MaxConcat int

	// MaxRetries bounds the redispatch attempts after a recoverable fault
	// (transient error, torn write). 0 means DefaultMaxRetries; negative
	// disables retries. Remap retries (a write healed a bad sector) do not
	// count: they always make progress.
	MaxRetries int
	// RetryBackoff is the virtual-time delay before the first redispatch,
	// doubling per attempt. 0 means DefaultRetryBackoff.
	RetryBackoff sim.Duration
	// SpareSectors sizes the disk's bad-sector remap pool when the driver
	// installs faults; 0 takes disk.DefaultSpareSectors.
	SpareSectors int
}

// DefaultMaxConcat is 128 KB of sectors, a typical mid-90s transfer cap.
const DefaultMaxConcat = 256

// DefaultMaxRetries is the default per-batch retry budget.
const DefaultMaxRetries = 4

// DefaultRetryBackoff is the default base delay before a redispatch.
const DefaultRetryBackoff = 2 * sim.Millisecond

// Request is one disk request. Submit assigns ID and Done. The Data slice of
// a write must not be modified until Done fires (the buffer cache enforces
// this with write locks or by snapshotting — the -CB scheme).
type Request struct {
	ID    uint64
	Op    disk.Op
	LBN   int64  // first sector
	Count int    // sectors
	Data  []byte // write source; nil for reads
	Buf   []byte // read destination; nil for writes

	Flag      bool     // ModeFlag: ordering flag
	DependsOn []uint64 // ModeChains: request IDs that must complete first

	Done *sim.Completion

	// Err is the request's final outcome, set before Done fires: nil on
	// success, ErrIO/ErrBadSector when the driver exhausted its recovery
	// options. A failed write left nothing (new) on the media; a failed
	// read filled nothing into Buf.
	Err error

	// Barrier bookkeeping. Instead of each request carrying the ID set it
	// waits on (a map per request, deleted from on every completion — the
	// old representation dominated whole-run profiles), each pending
	// request keeps the list of successors it blocks, and successors keep
	// only the count of outstanding predecessors. Exactly one edge exists
	// per (predecessor, successor) pair, so completion is a plain counter
	// decrement per edge.
	nwait  int        // outstanding predecessors; dispatchable at zero
	blocks []*Request // successors to unblock when this request completes

	enqueueAt  sim.Time
	dispatchAt sim.Time
	// readyAt is when the last barrier predecessor completed (== enqueueAt
	// for requests submitted with no predecessors). With dispatchAt it
	// splits a waiter's blocked interval into barrier / queue / media
	// portions for the operation-span recorder.
	readyAt sim.Time
}

func (r *Request) end() int64 { return r.LBN + int64(r.Count) }

func (r *Request) overlaps(q *Request) bool {
	return r.LBN < q.end() && q.LBN < r.end()
}

// conflicts reports the mode-independent ordering constraint: overlapping
// sector ranges where at least one side writes never reorder.
func conflicts(r, q *Request) bool {
	return r.overlaps(q) && (r.Op == disk.Write || q.Op == disk.Write)
}

// SubmitTime returns when the request entered the driver queue. A write's
// Data carries at least the source buffer's state as of this instant (a
// later modification either waits for completion or diverts into a -CB
// snapshot), which is what lets durability-notification schemes credit
// waiters registered at or before it.
func (r *Request) SubmitTime() sim.Time { return r.enqueueAt }

// ReadyTime returns when the request became dispatchable (its last
// ordering predecessor completed); before that instant the request was
// barrier-blocked. Valid once the request has been submitted and its
// barrier cleared; zero until then.
func (r *Request) ReadyTime() sim.Time { return r.readyAt }

// DispatchTime returns when the driver most recently handed the request
// to the media (re-set on retry dispatches, matching the trace's Queue
// accounting).
func (r *Request) DispatchTime() sim.Time { return r.dispatchAt }

// Stat is one traced request, in completion order.
type Stat struct {
	// ID is the request ID — the same identifier the crashmc model checker
	// uses to name offending writes, so violations can be correlated with
	// this trace's queue/service delays.
	ID       uint64
	Op       disk.Op
	Sectors  int
	Queue    sim.Duration // submission -> dispatch
	Service  sim.Duration // dispatch -> completion ("disk access time")
	Response sim.Duration // submission -> completion ("driver response time")
	CacheHit bool
	Failed   bool // request completed with an error
}

// Trace accumulates per-request statistics.
type Trace struct {
	Stats       []Stat
	MaxQueueLen int
}

// Reset clears the trace (used to scope measurement to a benchmark window).
func (t *Trace) Reset() { t.Stats = nil; t.MaxQueueLen = 0 }

// Requests returns the number of traced requests.
func (t *Trace) Requests() int { return len(t.Stats) }

// AvgServiceMS returns the mean disk access time in milliseconds.
func (t *Trace) AvgServiceMS() float64 { return t.avg(func(s Stat) sim.Duration { return s.Service }) }

// AvgResponseMS returns the mean driver response time in milliseconds.
func (t *Trace) AvgResponseMS() float64 {
	return t.avg(func(s Stat) sim.Duration { return s.Response })
}

// AvgQueueMS returns the mean queueing delay in milliseconds.
func (t *Trace) AvgQueueMS() float64 { return t.avg(func(s Stat) sim.Duration { return s.Queue }) }

func (t *Trace) avg(f func(Stat) sim.Duration) float64 {
	if len(t.Stats) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, s := range t.Stats {
		sum += f(s)
	}
	return (sum / sim.Duration(len(t.Stats))).Milliseconds()
}

// Driver is the device driver plus disk scheduler.
type Driver struct {
	eng *sim.Engine
	dsk *disk.Disk
	cfg Config

	nextID   uint64
	queue    []*Request // submitted, not dispatched, in submission order
	inflight []*Request // dispatched batch, in LBN order
	pending  map[uint64]*Request

	free        []*Request         // LIFO request pool (see AllocRequest/Release)
	concatIdx   map[int64]*Request // reusable LBN index for concat
	predScratch []uint64           // reusable observer pred-ID buffer

	lastFlagID uint64 // most recent flagged request ever submitted (ModeFlag)
	headLBN    int64  // C-LOOK position: sector after the last dispatch

	batchAccess   disk.Access
	batchDispatch sim.Time
	batchLBN      int64
	// batchState distinguishes an in-flight batch transferring on the media
	// from one parked in a retry backoff — Crash must know which: a batch in
	// backoff has already failed and commits nothing further, whereas a
	// transferring batch commits the elapsed-time sector prefix.
	batchState   int
	batchRetries int

	idleC   *sim.Completion
	crashed bool
	obs     Observer

	// Faults counts the driver's fault handling (all zero on a clean disk).
	Faults FaultStats

	// OrderingStalls counts requests submitted with at least one
	// mode-specific ordering predecessor (flag or chain sequencing) —
	// pure sector-conflict edges, which arise in every mode, are excluded.
	// ModeIgnore drivers (No Order, Conventional, Soft Updates) therefore
	// always report zero: the paper-shaped "requests blocked on ordering"
	// counter. Always on; one comparison per barrier edge.
	OrderingStalls int64

	// Debug counters (cheap; retained for tests).
	DbgFlaggedSubmitted int64
	DbgReadBarrierSum   int64
	DbgReadCount        int64

	Trace Trace
}

// FaultStats counts the driver's recovery activity.
type FaultStats struct {
	Transient  int64 `json:"transient"`   // transient command failures seen
	Torn       int64 `json:"torn"`        // torn writes seen (prefix committed)
	BadSectors int64 `json:"bad_sectors"` // permanent bad-sector hits
	Remaps     int64 `json:"remaps"`      // bad sectors healed by remapping
	Retries    int64 `json:"retries"`     // batch redispatches
	Errors     int64 `json:"errors"`      // requests failed to their issuers
}

// batchState values.
const (
	batchIdle = iota
	batchTransferring
	batchBackoff
)

// New returns a driver for dsk driven by eng.
func New(eng *sim.Engine, dsk *disk.Disk, cfg Config) *Driver {
	if cfg.MaxConcat <= 0 {
		cfg.MaxConcat = DefaultMaxConcat
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	return &Driver{
		eng:       eng,
		dsk:       dsk,
		cfg:       cfg,
		pending:   make(map[uint64]*Request),
		concatIdx: make(map[int64]*Request),
	}
}

// AllocRequest returns a blank Request, reusing one from the driver's pool
// when available. The pool is per-driver (so per-System) and LIFO, which
// keeps reuse deterministic. Callers fill in the request and Submit it as
// usual; pooling is optional — a plain &Request{} behaves identically.
func (d *Driver) AllocRequest() *Request {
	if n := len(d.free); n > 0 {
		r := d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		return r
	}
	return &Request{}
}

// Release returns a completed request to the pool for a later AllocRequest.
// The caller must be the request's sole owner: Done must have fired and
// nothing else may retain the pointer (the buffer cache uses this for read
// requests, which it owns from Submit through completion). The request's
// Done completion and successor list keep their storage across reuse.
func (d *Driver) Release(r *Request) {
	if r.Done == nil || !r.Done.Fired() {
		panic("dev: Release of incomplete request")
	}
	done := r.Done
	done.Reset()
	*r = Request{Done: done, blocks: r.blocks[:0]}
	d.free = append(d.free, r)
}

// Config returns the driver configuration.
func (d *Driver) Config() Config { return d.cfg }

// Observer receives the driver's request timeline: a submission event for
// every request (with the barrier set the driver will enforce) and a
// completion event for every serviced batch, in virtual-time order. The
// crash-state model checker records this timeline to enumerate the crash
// images a workload could leave behind. Callbacks run synchronously in
// engine context and must not block or re-enter the driver.
type Observer interface {
	// RequestSubmitted fires after r's barrier is computed. preds is the
	// sorted set of pending request IDs that must complete before r; the
	// slice is a scratch buffer valid only during the callback. For
	// writes, r.Data is the exact write source (stable until completion).
	RequestSubmitted(r *Request, preds []uint64)
	// RequestsCompleted fires when a batch's data has been moved — writes
	// are on the media — and before any completion callbacks run.
	RequestsCompleted(ids []uint64, at sim.Time)
}

// FaultObserver is the optional extension an Observer may implement to see
// fault events. The crash-state model checker needs both: a torn write
// changes the media without completing anything (a new kind of crash atom),
// and a failed request must leave the pending set without ever being a
// completion candidate.
type FaultObserver interface {
	// BatchTorn fires when a faulted write batch committed a sector prefix:
	// `sectors` sectors, spread across the batch's requests in LBN order
	// (ids are the write requests in that order). The requests remain
	// pending — the driver will retry or fail them.
	BatchTorn(ids []uint64, sectors int, at sim.Time)
	// RequestsFailed fires when requests complete with an error: nothing
	// (further) reached the media and they are no longer pending.
	RequestsFailed(ids []uint64, at sim.Time)
}

// SetObserver installs (or, with nil, removes) the timeline observer.
func (d *Driver) SetObserver(o Observer) { d.obs = o }

// QueueLen reports queued (not yet dispatched) requests.
func (d *Driver) QueueLen() int { return len(d.queue) }

// Busy reports whether any request is queued or in flight.
func (d *Driver) Busy() bool { return len(d.queue) > 0 || len(d.inflight) > 0 }

// Submit enqueues r, computes its ordering barrier, and starts the disk if
// idle. It returns r for convenience; r.Done fires at completion.
func (d *Driver) Submit(r *Request) *Request {
	if r.Count <= 0 {
		panic("dev: request with no sectors")
	}
	if r.Op == disk.Write && len(r.Data) != r.Count*disk.SectorSize {
		panic("dev: write data size mismatch")
	}
	if r.Op == disk.Read && len(r.Buf) != r.Count*disk.SectorSize {
		panic("dev: read buffer size mismatch")
	}
	d.nextID++
	r.ID = d.nextID
	r.Err = nil
	if r.Done == nil {
		r.Done = sim.NewCompletion()
	} else if r.Done.Fired() {
		r.Done.Reset()
	}
	r.enqueueAt = d.eng.Now()

	d.computeBarrier(r)
	if r.nwait == 0 {
		r.readyAt = r.enqueueAt
	}
	if d.obs != nil {
		sort.Slice(d.predScratch, func(i, j int) bool { return d.predScratch[i] < d.predScratch[j] })
		d.obs.RequestSubmitted(r, d.predScratch)
	}

	d.queue = append(d.queue, r)
	d.pending[r.ID] = r
	if r.Flag && d.cfg.Mode == ModeFlag {
		d.lastFlagID = r.ID
		d.DbgFlaggedSubmitted++
	}
	if r.Op == disk.Read {
		d.DbgReadCount++
		d.DbgReadBarrierSum += int64(r.nwait)
	}
	if len(d.queue) > d.Trace.MaxQueueLen {
		d.Trace.MaxQueueLen = len(d.queue)
	}
	d.kick()
	return r
}

// computeBarrier wires r into the barrier graph: for every pending request
// q (queue + inflight — exactly the requests submitted before r that have
// not completed) with predecessorOf(q, r), it appends r to q's successor
// list and bumps r's outstanding-predecessor count. predScratch collects
// the predecessor IDs for the observer (only when one is installed — the
// sort is pure overhead otherwise).
func (d *Driver) computeBarrier(r *Request) {
	collect := d.obs != nil
	d.predScratch = d.predScratch[:0]
	ordered := false
	add := func(q *Request) {
		if predecessorOf(d.cfg, r, q, d.lastFlagID) {
			q.blocks = append(q.blocks, r)
			r.nwait++
			if !conflicts(r, q) {
				ordered = true
			}
			if collect {
				d.predScratch = append(d.predScratch, q.ID)
			}
		}
	}
	for _, q := range d.inflight {
		add(q)
	}
	for _, q := range d.queue {
		add(q)
	}
	if ordered {
		d.OrderingStalls++
	}
}

// predecessorOf reports whether pending request q must complete before r
// may be dispatched under cfg. It is evaluated once per (q, r) pair, so
// the barrier graph has exactly one edge per ordered pair and completion
// bookkeeping can be a plain counter decrement.
func predecessorOf(cfg Config, r, q *Request, lastFlagID uint64) bool {
	// Conflicts: overlapping ranges where at least one side writes never
	// reorder, in every mode.
	if conflicts(r, q) {
		return true
	}
	switch cfg.Mode {
	case ModeIgnore:
		// Nothing further.
	case ModeFlag:
		if cfg.NR && r.Op == disk.Read {
			return false // reads bypass ordering, conflicts already handled
		}
		switch cfg.Sem {
		case SemPart:
			// Wait for every pending flagged request.
			return q.Flag
		case SemBack:
			// Wait for everything submitted at or before the most
			// recently submitted flagged request (whether or not that
			// flagged request itself is still pending).
			return q.ID <= lastFlagID
		case SemFull:
			// As SemBack, and a flagged request is additionally a full
			// barrier: it waits for all previous requests.
			return q.ID <= lastFlagID || r.Flag
		}
	case ModeChains:
		// Barrier fallback (section 3.2's simpler de-allocation approach):
		// a flagged request under chains acts as a Part-NR-style barrier —
		// later writes wait for it, reads pass.
		if r.Op == disk.Write && q.Flag {
			return true
		}
		// Explicit dependency lists; IDs no longer pending dropped out by
		// construction (q ranges over pending requests only).
		for _, id := range r.DependsOn {
			if id == q.ID {
				return true
			}
		}
	}
	return false
}

// Predecessors computes the ordering barrier of r: the IDs among `prior`
// — the pending (submitted, not completed) requests that precede r, in
// any order — that must complete before r may be dispatched under cfg.
// lastFlagID is the ID of the most recently submitted flagged request at
// r's submission time (zero if none; relevant to ModeFlag only).
//
// This is the exact predicate Submit enforces (predecessorOf, applied to
// each pending request); it is exported because the crash-state model
// checker (package crashmc) uses the same relation to decide which
// completed-subsets of pending writes a crash could legally expose, and
// because the flag-semantics tests pin its behavior directly.
func Predecessors(cfg Config, r *Request, prior []*Request, lastFlagID uint64) map[uint64]struct{} {
	waiting := make(map[uint64]struct{})
	for _, q := range prior {
		if predecessorOf(cfg, r, q, lastFlagID) {
			waiting[q.ID] = struct{}{}
		}
	}
	return waiting
}

func (r *Request) eligible() bool { return r.nwait == 0 }

// kick dispatches the next batch if the disk is idle and work is eligible.
func (d *Driver) kick() {
	if d.crashed || len(d.inflight) > 0 || len(d.queue) == 0 {
		return
	}
	pick := d.pickCLOOK()
	if pick == nil {
		return // everything is barrier-blocked; a completion will re-kick
	}
	batch := d.concat(pick)
	d.dispatch(batch)
}

// pickCLOOK selects the eligible request with the smallest LBN at or after
// the head position, wrapping to the smallest LBN when none is ahead.
func (d *Driver) pickCLOOK() *Request {
	var ahead, first *Request
	for _, r := range d.queue {
		if !r.eligible() {
			continue
		}
		if first == nil || r.LBN < first.LBN {
			first = r
		}
		if r.LBN >= d.headLBN && (ahead == nil || r.LBN < ahead.LBN) {
			ahead = r
		}
	}
	if ahead != nil {
		return ahead
	}
	return first
}

// concat gathers pick plus any eligible same-op requests exactly contiguous
// after it, up to the concatenation cap — the paper's "scheduling code in
// the device driver concatenates sequential requests". One LBN index per
// dispatch keeps this linear even with thousands of queued requests.
func (d *Driver) concat(pick *Request) []*Request {
	byLBN := d.concatIdx
	clear(byLBN)
	for _, r := range d.queue {
		if r != pick && r.eligible() && r.Op == pick.Op {
			if _, dup := byLBN[r.LBN]; !dup { // earliest submission wins
				byLBN[r.LBN] = r
			}
		}
	}
	batch := []*Request{pick}
	total := pick.Count
	end := pick.end()
	for total < d.cfg.MaxConcat {
		next := byLBN[end]
		if next == nil || total+next.Count > d.cfg.MaxConcat {
			break
		}
		delete(byLBN, end)
		batch = append(batch, next)
		total += next.Count
		end = next.end()
	}
	return batch
}

func inBatch(batch []*Request, r *Request) bool {
	for _, b := range batch {
		if b == r {
			return true
		}
	}
	return false
}

func (d *Driver) dispatch(batch []*Request) {
	now := d.eng.Now()
	total := 0
	for _, r := range batch {
		total += r.Count
		r.dispatchAt = now
	}
	// Remove batch members from the queue, preserving order.
	out := d.queue[:0]
	for _, r := range d.queue {
		if !inBatch(batch, r) {
			out = append(out, r)
		}
	}
	d.queue = out
	d.inflight = batch
	d.batchRetries = 0
	d.headLBN = batch[0].LBN + int64(total)
	d.startBatch(batch)
}

// startBatch plans the media access for an in-flight batch (first dispatch
// or a retry) and schedules its completion.
func (d *Driver) startBatch(batch []*Request) {
	now := d.eng.Now()
	total := 0
	for _, r := range batch {
		total += r.Count
	}
	acc := d.dsk.Plan(now, batch[0].Op, batch[0].LBN, total)
	d.batchAccess = acc
	d.batchDispatch = now
	d.batchLBN = batch[0].LBN
	d.batchState = batchTransferring
	d.eng.At(now+acc.Service, func() { d.complete(batch, acc) })
}

func batchIDs(batch []*Request) []uint64 {
	ids := make([]uint64, len(batch))
	for i, r := range batch {
		ids[i] = r.ID
	}
	return ids
}

func (d *Driver) complete(batch []*Request, acc disk.Access) {
	if d.crashed {
		return
	}
	now := d.eng.Now()
	switch f := acc.Fault; f.Kind {
	case fault.Torn:
		// The write stopped after f.TornSectors sectors: commit that prefix
		// (each sector is still atomic), tell the observer the media
		// changed, and recover by rewriting the whole batch.
		d.Faults.Torn++
		d.commitBatchPrefix(batch, f.TornSectors, now)
		d.retryOrFail(batch, ErrIO)
		return
	case fault.Transient:
		// Command aborted before the transfer: nothing reached the media.
		d.Faults.Transient++
		d.retryOrFail(batch, ErrIO)
		return
	case fault.BadSector:
		d.Faults.BadSectors++
		if batch[0].Op == disk.Write {
			// Sectors before the bad one are on the media (a tear at the
			// fault point); then try to heal the sector by remapping it to
			// a spare. A successful remap always earns a retry — it made
			// progress — while an exhausted spare pool is unrecoverable.
			d.commitBatchPrefix(batch, f.TornSectors, now)
			if d.dsk.Remap(f.Sector) {
				d.Faults.Remaps++
				d.scheduleRetry(batch)
				return
			}
			d.failBatch(batch, ErrBadSector, now)
			return
		}
		// A permanently unreadable sector: retrying cannot help. Fail the
		// requests covering it and send the rest of the batch back to the
		// queue for a normal redispatch.
		d.splitReadBatch(batch, f.Sector, now)
		return
	}

	// Success (fault.None, or fault.Latency already folded into Service).
	// Move data first: writes commit to media, reads fill buffers. Only
	// after the media reflects the batch do we fire completions, so that
	// completion callbacks (e.g. soft updates redo) observe committed state.
	for _, r := range batch {
		if r.Op == disk.Write {
			d.dsk.Commit(r.LBN, r.Data)
		} else {
			d.dsk.ReadAt(r.LBN, r.Buf)
		}
	}
	for _, r := range batch {
		delete(d.pending, r.ID)
	}
	if d.obs != nil {
		d.obs.RequestsCompleted(batchIDs(batch), now)
	}
	for _, r := range batch {
		for i, blocked := range r.blocks {
			blocked.nwait--
			if blocked.nwait == 0 {
				blocked.readyAt = now
			}
			r.blocks[i] = nil
		}
		r.blocks = r.blocks[:0]
		d.Trace.Stats = append(d.Trace.Stats, Stat{
			ID:       r.ID,
			Op:       r.Op,
			Sectors:  r.Count,
			Queue:    r.dispatchAt - r.enqueueAt,
			Service:  now - r.dispatchAt,
			Response: now - r.enqueueAt,
			CacheHit: acc.CacheHit,
		})
	}
	d.inflight = nil
	d.batchState = batchIdle
	for _, r := range batch {
		r.Done.Fire(d.eng)
	}
	d.kick()
	d.fireIdle()
}

func (d *Driver) fireIdle() {
	if !d.Busy() && d.idleC != nil {
		c := d.idleC
		d.idleC = nil
		c.Fire(d.eng)
	}
}

// commitBatchPrefix commits the first `sectors` sectors of a write batch in
// LBN order — the physical result of a torn or bad-sector-interrupted
// transfer — and notifies the fault observer that the media changed while
// the requests stay pending.
func (d *Driver) commitBatchPrefix(batch []*Request, sectors int, at sim.Time) {
	if sectors <= 0 {
		return
	}
	left := sectors
	lbn := d.batchLBN
	for _, r := range batch {
		if left <= 0 {
			break
		}
		n := r.Count
		if left < n {
			n = left
		}
		d.dsk.CommitPrefix(lbn, r.Data, n)
		left -= r.Count
		lbn += int64(r.Count)
	}
	if fo, ok := d.obs.(FaultObserver); ok {
		fo.BatchTorn(batchIDs(batch), sectors, at)
	}
}

// retryOrFail redispatches the batch after a backoff, or fails it once the
// retry budget is spent.
func (d *Driver) retryOrFail(batch []*Request, err error) {
	if d.batchRetries >= d.cfg.MaxRetries {
		d.failBatch(batch, err, d.eng.Now())
		return
	}
	d.batchRetries++
	d.scheduleRetry(batch)
}

// scheduleRetry parks the batch in a backoff and replans it afterwards. The
// batch stays in-flight the whole time: its requests remain pending, their
// barrier successors stay blocked, and Done does not fire — dependents can
// never observe a half-recovered write as durable.
func (d *Driver) scheduleRetry(batch []*Request) {
	d.Faults.Retries++
	backoff := d.cfg.RetryBackoff
	if d.batchRetries > 1 {
		backoff <<= d.batchRetries - 1
	}
	d.batchState = batchBackoff
	d.eng.At(d.eng.Now()+backoff, func() {
		if d.crashed {
			return
		}
		d.startBatch(batch)
	})
}

// failBatch completes every request in the batch with err: they leave the
// pending set, unblock their barrier successors (a failed predecessor
// constrains nothing — its data never reached the media), are traced as
// failed, and fire Done with Err set.
func (d *Driver) failBatch(batch []*Request, err error, now sim.Time) {
	for _, r := range batch {
		delete(d.pending, r.ID)
	}
	if fo, ok := d.obs.(FaultObserver); ok {
		fo.RequestsFailed(batchIDs(batch), now)
	}
	for _, r := range batch {
		r.Err = err
		d.Faults.Errors++
		for i, blocked := range r.blocks {
			blocked.nwait--
			if blocked.nwait == 0 {
				blocked.readyAt = now
			}
			r.blocks[i] = nil
		}
		r.blocks = r.blocks[:0]
		d.Trace.Stats = append(d.Trace.Stats, Stat{
			ID:       r.ID,
			Op:       r.Op,
			Sectors:  r.Count,
			Queue:    r.dispatchAt - r.enqueueAt,
			Service:  now - r.dispatchAt,
			Response: now - r.enqueueAt,
			Failed:   true,
		})
	}
	d.inflight = nil
	d.batchState = batchIdle
	d.batchRetries = 0
	for _, r := range batch {
		r.Done.Fire(d.eng)
	}
	d.kick()
	d.fireIdle()
}

// splitReadBatch handles a permanent bad sector under a read batch: the
// requests whose range covers the sector fail (their data is gone until
// some write remaps the sector), the others go back to the queue and are
// dispatched again — their barrier state is untouched, so ordering holds.
func (d *Driver) splitReadBatch(batch []*Request, bad int64, now sim.Time) {
	var failed, requeue []*Request
	for _, r := range batch {
		if r.LBN <= bad && bad < r.end() {
			failed = append(failed, r)
		} else {
			requeue = append(requeue, r)
		}
	}
	d.inflight = nil
	d.batchState = batchIdle
	d.batchRetries = 0
	d.queue = append(d.queue, requeue...)
	if len(failed) > 0 {
		for _, r := range failed {
			delete(d.pending, r.ID)
		}
		if fo, ok := d.obs.(FaultObserver); ok {
			fo.RequestsFailed(batchIDs(failed), now)
		}
		for _, r := range failed {
			r.Err = ErrBadSector
			d.Faults.Errors++
			for i, blocked := range r.blocks {
				blocked.nwait--
				if blocked.nwait == 0 {
					blocked.readyAt = now
				}
				r.blocks[i] = nil
			}
			r.blocks = r.blocks[:0]
			d.Trace.Stats = append(d.Trace.Stats, Stat{
				ID: r.ID, Op: r.Op, Sectors: r.Count,
				Queue:    r.dispatchAt - r.enqueueAt,
				Service:  now - r.dispatchAt,
				Response: now - r.enqueueAt,
				Failed:   true,
			})
		}
		for _, r := range failed {
			r.Done.Fire(d.eng)
		}
	}
	d.kick()
	d.fireIdle()
}

// WaitIdle blocks p until the driver has no queued or in-flight requests.
func (d *Driver) WaitIdle(p *sim.Proc) {
	for d.Busy() {
		if d.idleC == nil {
			d.idleC = sim.NewCompletion()
		}
		d.idleC.Wait(p)
	}
}

// Crash freezes the driver at the current (halted) virtual time: the
// in-flight batch commits the sector prefix the disk had physically written,
// queued requests are discarded, and no further completions fire. Call only
// after Engine.RunUntil has stopped delivering events.
func (d *Driver) Crash(at sim.Time) {
	d.crashed = true
	if len(d.inflight) == 0 {
		return
	}
	// A batch parked in a retry backoff is not touching the media: whatever
	// prefix its earlier attempt tore off was already committed at complete()
	// time, and nothing further lands between attempts.
	if d.batchState != batchTransferring {
		return
	}
	elapsed := at - d.batchDispatch
	transferred := elapsed - d.batchAccess.Positioning
	var sectorsDone int
	if transferred > 0 && d.batchAccess.PerSector > 0 {
		sectorsDone = int(transferred / d.batchAccess.PerSector)
	}
	// The current attempt's own fault bounds what this transfer can commit:
	// a transient failure aborts during positioning (nothing lands), a torn
	// or bad-sector write stops at the fault point even if the elapsed-time
	// estimate says more sectors would have fit.
	switch d.batchAccess.Fault.Kind {
	case fault.Transient:
		sectorsDone = 0
	case fault.Torn, fault.BadSector:
		if sectorsDone > d.batchAccess.Fault.TornSectors {
			sectorsDone = d.batchAccess.Fault.TornSectors
		}
	}
	// Sectors commit in LBN order across the batch.
	lbn := d.batchLBN
	for _, r := range d.inflight {
		if sectorsDone <= 0 {
			break
		}
		if r.Op == disk.Write {
			n := r.Count
			if sectorsDone < n {
				n = sectorsDone
			}
			d.dsk.CommitPrefix(lbn, r.Data, n)
		}
		sectorsDone -= r.Count
		lbn += int64(r.Count)
	}
}

// PendingIDs returns the IDs of all pending requests in submission order
// (exposed for the ordering layer and for tests).
func (d *Driver) PendingIDs() []uint64 {
	ids := make([]uint64, 0, len(d.pending))
	for id := range d.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IsPending reports whether request id has not yet completed.
func (d *Driver) IsPending(id uint64) bool {
	_, ok := d.pending[id]
	return ok
}
