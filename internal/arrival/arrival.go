// Package arrival generates deterministic open-loop arrival processes:
// virtual-time instants at which work is offered to a system regardless of
// whether earlier work has finished. The paper's motivating workloads
// (mail and Usenet servers) are exactly this shape — deliveries arrive on
// the network's schedule, not the disk's — while every benchmark in the
// repository's exhibits is closed-loop (N users with think time), which
// self-throttles in the saturation regime where synchronous metadata
// writes collapse. This package supplies the missing regime.
//
// Two processes are provided: Poisson (exponential inter-arrival gaps, the
// memoryless baseline) and a bursty b-model cascade (self-similar arrival
// clumps over many time scales, the shape measured on real servers). Both
// are pure functions of (Spec, index) in the internal/fault idiom: the gap
// preceding arrival i is computed from a splitmix64 state keyed by (seed,
// i), never from a running stream, so a generator can be replayed from any
// index, results are byte-identical at any harness worker count, and
// harness cells fingerprinted on the Spec stay memoizable.
package arrival

import (
	"fmt"
	"math"

	"metaupdate/internal/sim"
)

// Kind selects the arrival process.
type Kind uint8

// The two processes.
const (
	// Poisson draws i.i.d. exponential inter-arrival gaps with mean
	// 1/PerSec: the index of dispersion of the resulting counts is 1.
	Poisson Kind = iota
	// Bursty modulates the exponential gaps by a multiplicative b-model
	// cascade over the arrival index: runs of adjacent arrivals share
	// cascade prefixes, so density fluctuates on every dyadic scale and the
	// index of dispersion exceeds 1 (self-similar clumping). The cascade
	// factor averages exactly 1 over an aligned 2^Levels block, so the
	// long-run offered rate is still PerSec.
	Bursty
)

func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Default cascade parameters (Bursty). BPer1000 = 700 reproduces the
// "70/30" b-model commonly fit to file system traffic; 500 degenerates to
// plain Poisson.
const (
	DefaultBPer1000 = 700
	DefaultLevels   = 14
)

// Spec parameterizes an arrival process. All fields are plain integers so
// a Spec is comparable and fingerprint-friendly (the harness embeds its
// canonical String in cell fingerprints). The zero value is disabled —
// no arrivals, the closed-loop status quo.
type Spec struct {
	Kind Kind
	// Seed keys every draw; two seeds give independent processes.
	Seed int64
	// PerSec is the offered load in arrivals per virtual second. Zero
	// disables the process.
	PerSec int
	// BPer1000 is the b-model bias in thousandths (Bursty only): the
	// fraction of a cascade node's mass landing on its favored child.
	// 500 is uniform (no burstiness); values toward 1000 are burstier.
	// Zero takes DefaultBPer1000.
	BPer1000 int
	// Levels is the cascade depth (Bursty only): the process is
	// self-similar over 2^Levels consecutive arrivals. Zero takes
	// DefaultLevels.
	Levels int
}

// Enabled reports whether the spec generates any arrivals.
func (s Spec) Enabled() bool { return s.PerSec > 0 }

// String renders the spec canonically (used in harness cell fingerprints).
func (s Spec) String() string {
	if !s.Enabled() {
		return "off"
	}
	n := s.normalized()
	if n.Kind == Poisson {
		return fmt.Sprintf("poisson:seed%d,rate%d", n.Seed, n.PerSec)
	}
	return fmt.Sprintf("bursty:seed%d,rate%d,b%d,lv%d", n.Seed, n.PerSec, n.BPer1000, n.Levels)
}

// normalized fills the defaulted cascade parameters.
func (s Spec) normalized() Spec {
	if s.Kind == Bursty {
		if s.BPer1000 <= 0 {
			s.BPer1000 = DefaultBPer1000
		}
		if s.BPer1000 >= 1000 {
			s.BPer1000 = 999
		}
		if s.Levels <= 0 {
			s.Levels = DefaultLevels
		}
		if s.Levels > 30 {
			s.Levels = 30
		}
	}
	return s
}

// splitmix64 advances x and returns the next value of the stream (the
// same generator internal/fault and internal/dmeta use).
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// stateFor keys a fresh splitmix64 state off (seed, index, salt) — the
// draw for index i never depends on any other index's draws.
func stateFor(seed, index int64, salt uint64) uint64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(index)*0xD1B54A32D192ED03 ^ salt
	return splitmix64(&x) // one mixing round so nearby (seed, index) decorrelate
}

// unit maps a draw to the half-open interval (0, 1] — never zero, so
// -log(u) is always finite.
func unit(r uint64) float64 {
	return float64(r>>11+1) * (1.0 / (1 << 53))
}

// GapAt returns the inter-arrival gap preceding arrival i (i >= 0): the
// virtual time between arrival i-1 and arrival i, where arrival -1 is the
// stream origin. It is a pure function of (Spec, i), allocation-free, and
// the only randomness entry point of the package.
func (s Spec) GapAt(i int64) sim.Duration {
	n := s.normalized()
	if !n.Enabled() {
		return 0
	}
	st := stateFor(n.Seed, i, 0x9E6D)
	gap := -math.Log(unit(splitmix64(&st))) / float64(n.PerSec) // seconds
	if n.Kind == Bursty {
		gap *= n.cascadeAt(i)
	}
	d := sim.Duration(gap * float64(sim.Second))
	if d < sim.Duration(1) {
		d = 1 // arrivals are distinct instants; keeps prefix sums strictly increasing
	}
	return d
}

// cascadeAt computes the b-model factor for arrival i: the product over
// cascade levels of 2b or 2(1-b), where the branch taken follows i's bit
// path inside its aligned 2^Levels block and each internal node's
// orientation (which child is favored) is a pure function of (seed, node).
// Adjacent indices share all but the deepest branches, so the factor — and
// with it the local arrival density — is correlated over runs of every
// dyadic length: the classic multiplicative-cascade construction of
// self-similar traffic. Summing the factor over one aligned block gives
// exactly 2^Levels (each node splits its mass 2b + 2(1-b) = 2), so the
// mean factor is exactly 1 and the offered rate is preserved.
func (s Spec) cascadeAt(i int64) float64 {
	b := float64(s.BPer1000) / 1000
	hi, lo := 2*b, 2*(1-b)
	block := i >> uint(s.Levels) // distinct blocks use distinct node keys
	f := 1.0
	for d := 1; d <= s.Levels; d++ {
		prefix := i >> uint(s.Levels-d) // path from the block root to level d
		node := uint64(block)<<32 ^ uint64(d)<<24 ^ uint64(prefix>>1)
		orient := stateFor(s.Seed, int64(node), 0xB0DE)&1 == 0
		if (prefix&1 == 0) == orient {
			f *= hi
		} else {
			f *= lo
		}
	}
	return f
}

// Gen iterates a spec's arrival instants: Next returns the virtual time of
// the next arrival, as an offset from the stream origin (callers add their
// own base time). The cursor is the only state — every gap still comes
// from GapAt, so a Gen restarted at any index reproduces the tail of the
// sequence exactly. Next is allocation-free.
type Gen struct {
	spec Spec
	i    int64
	at   sim.Time
}

// NewGen returns a generator positioned before arrival 0.
func NewGen(spec Spec) *Gen {
	return &Gen{spec: spec.normalized()}
}

// Next advances to the next arrival and returns its instant (offset from
// the origin).
func (g *Gen) Next() sim.Time {
	g.at += sim.Time(g.spec.GapAt(g.i))
	g.i++
	return g.at
}

// Index reports how many arrivals have been generated.
func (g *Gen) Index() int64 { return g.i }
