package arrival

import (
	"math"
	"testing"

	"metaupdate/internal/sim"
)

// gapSample materializes n gaps in seconds.
func gapSample(s Spec, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(s.GapAt(int64(i))) / float64(sim.Second)
	}
	return out
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

// TestPoissonMoments pins the exponential inter-arrival moments at
// n = 100k: sample mean within 2% of 1/lambda and sample variance within
// 5% of 1/lambda^2. The seed is fixed, so these are exact reproducible
// checks, not flaky statistical tolerances.
func TestPoissonMoments(t *testing.T) {
	const rate = 200.0
	gaps := gapSample(Spec{Kind: Poisson, Seed: 7, PerSec: 200}, 100_000)
	mean, variance := meanVar(gaps)
	if got, want := mean, 1/rate; math.Abs(got-want)/want > 0.02 {
		t.Errorf("sample mean %.6f, want within 2%% of %.6f", got, want)
	}
	if got, want := variance, 1/(rate*rate); math.Abs(got-want)/want > 0.05 {
		t.Errorf("sample variance %.8f, want within 5%% of %.8f", got, want)
	}
}

// TestBurstyMeanPreserved: the cascade factor averages 1 over aligned
// blocks, so the bursty process still offers PerSec arrivals per second in
// the long run — the mean gap stays within 15% of 1/lambda at n = 100k
// (the factor's heavy variance makes the sample mean noisier than
// Poisson's; the fixed seed makes the bound exact).
func TestBurstyMeanPreserved(t *testing.T) {
	const rate = 200.0
	gaps := gapSample(Spec{Kind: Bursty, Seed: 7, PerSec: 200}, 100_000)
	mean, variance := meanVar(gaps)
	if got, want := mean, 1/rate; math.Abs(got-want)/want > 0.15 {
		t.Errorf("bursty sample mean %.6f, want within 15%% of %.6f", got, want)
	}
	// The whole point of the cascade: gap variance well above exponential.
	if expVar := 1 / (rate * rate); variance < 2*expVar {
		t.Errorf("bursty gap variance %.3e not heavier than exponential %.3e", variance, expVar)
	}
}

// dispersion bins the arrival count process into windows of `win` mean
// inter-arrival times and returns var(count)/mean(count).
func dispersion(s Spec, n, win int) float64 {
	g := NewGen(s)
	width := sim.Time(win) * sim.Time(float64(sim.Second)/float64(s.PerSec))
	var counts []float64
	bin, c := sim.Time(width), 0.0
	for i := 0; i < n; i++ {
		at := g.Next()
		for at > bin {
			counts = append(counts, c)
			c, bin = 0, bin+width
		}
		c++
	}
	m, v := meanVar(counts)
	return v / m
}

// TestIndexOfDispersion: Poisson counts have dispersion ~= 1; the bursty
// cascade must clump (dispersion well above 1). Fixed seeds make the
// thresholds exact.
func TestIndexOfDispersion(t *testing.T) {
	if d := dispersion(Spec{Kind: Poisson, Seed: 11, PerSec: 500}, 100_000, 20); d < 0.9 || d > 1.1 {
		t.Errorf("Poisson index of dispersion %.3f, want ~1 (0.9..1.1)", d)
	}
	if d := dispersion(Spec{Kind: Bursty, Seed: 11, PerSec: 500}, 100_000, 20); d < 1.5 {
		t.Errorf("bursty index of dispersion %.3f, want > 1.5", d)
	}
}

// TestPoissonChiSquared buckets 100k gaps into 20 equiprobable cells by
// the exponential quantile function and checks the chi-squared statistic
// against the df=19 distribution (99.9th percentile ~= 43.8). With the
// seed fixed the statistic is a constant, so a pass is exact, not
// probabilistic.
func TestPoissonChiSquared(t *testing.T) {
	const (
		rate = 200.0
		n    = 100_000
		k    = 20
	)
	spec := Spec{Kind: Poisson, Seed: 3, PerSec: 200}
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		gap := float64(spec.GapAt(int64(i))) / float64(sim.Second)
		// CDF of Exp(rate): bucket by floor(F(gap)*k).
		b := int(math.Floor((1 - math.Exp(-rate*gap)) * k))
		if b >= k {
			b = k - 1
		}
		counts[b]++
	}
	expect := float64(n) / k
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	if chi2 > 43.8 {
		t.Errorf("chi-squared %.1f exceeds the df=19 99.9th percentile 43.8 (buckets %v)", chi2, counts)
	}
}

// TestPureFunctionOfIndex pins the package's core contract: GapAt is a
// pure function of (Spec, index) — calling it out of order, repeatedly, or
// resuming a Gen from the middle reproduces the same sequence.
func TestPureFunctionOfIndex(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: Poisson, Seed: 42, PerSec: 300},
		{Kind: Bursty, Seed: 42, PerSec: 300},
	} {
		g := NewGen(spec)
		const n = 4096
		times := make([]sim.Time, n)
		for i := range times {
			times[i] = g.Next()
		}
		// Replay from the middle: prefix time + summed tail gaps must match.
		mid := n / 2
		at := times[mid-1]
		for i := mid; i < n; i++ {
			at += sim.Time(spec.GapAt(int64(i)))
			if at != times[i] {
				t.Fatalf("%v: replay from index %d diverges at %d: %v != %v", spec.Kind, mid, i, at, times[i])
			}
		}
		// Out-of-order and repeated calls.
		for _, i := range []int64{n - 1, 0, 17, 17, 3} {
			want := times[i] - func() sim.Time {
				if i == 0 {
					return 0
				}
				return times[i-1]
			}()
			if got := sim.Time(spec.GapAt(i)); got != want {
				t.Fatalf("%v: GapAt(%d) = %v out of order, want %v", spec.Kind, i, got, want)
			}
		}
		// Arrival instants are strictly increasing (gaps are clamped >= 1ns).
		for i := 1; i < n; i++ {
			if times[i] <= times[i-1] {
				t.Fatalf("%v: arrivals not strictly increasing at %d", spec.Kind, i)
			}
		}
	}
}

// TestSpecString pins the canonical fingerprint forms, including
// normalization of defaulted cascade parameters.
func TestSpecString(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{}, "off"},
		{Spec{Kind: Bursty}, "off"},
		{Spec{Kind: Poisson, Seed: 5, PerSec: 100}, "poisson:seed5,rate100"},
		{Spec{Kind: Bursty, Seed: 5, PerSec: 100}, "bursty:seed5,rate100,b700,lv14"},
		{Spec{Kind: Bursty, Seed: 5, PerSec: 100, BPer1000: 900, Levels: 8}, "bursty:seed5,rate100,b900,lv8"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.spec, got, c.want)
		}
	}
}

// TestAllocFreeDraws guards the generator hot path: next-arrival draws
// must not allocate, for either process kind (CI runs this normally and
// under -race).
func TestAllocFreeDraws(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: Poisson, Seed: 1, PerSec: 1000},
		{Kind: Bursty, Seed: 1, PerSec: 1000},
	} {
		spec := spec
		g := NewGen(spec)
		var i int64
		if n := testing.AllocsPerRun(200, func() {
			g.Next()
			spec.GapAt(i)
			i++
		}); n != 0 {
			t.Errorf("%v: next-arrival draw allocates %.1f/op, want 0", spec.Kind, n)
		}
	}
}
