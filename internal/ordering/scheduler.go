package ordering

import (
	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
)

// Flag is the scheduler-enforced ordering scheme of section 3.1: every
// write the conventional scheme made synchronous becomes an asynchronous
// write with the ordering flag set; the device driver (configured with
// dev.ModeFlag and one of the Full/Back/Part semantics, ± NR) keeps later
// requests from overtaking it. Because the dependent updates are delayed
// writes issued strictly later, the flag semantics guarantee the on-disk
// order.
//
// The write that carries ordering must be *issued* before the dependent
// block can be flushed, so it is sent to the driver immediately — this is
// precisely why these schemes cannot batch multiple updates to one block
// the way soft updates can.
type Flag struct {
	fs *ffs.FS
}

// NewFlag returns the ordering-flag scheme. The driver must be configured
// with dev.ModeFlag.
func NewFlag() *Flag { return &Flag{} }

// Name implements ffs.Ordering.
func (o *Flag) Name() string { return "Scheduler Flag" }

// Start implements ffs.Ordering.
func (o *Flag) Start(fs *ffs.FS) { o.fs = fs }

// Hooks implements ffs.Ordering.
func (o *Flag) Hooks() cache.Hooks { return cache.NopHooks{} }

// flagWrite issues an async write of b with the ordering flag set. If a
// write of b is already in flight (possible without -CB only after waiting,
// with -CB any time), the flag is left pending on the buffer; the re-issued
// write will carry it.
func (o *Flag) flagWrite(p *sim.Proc, b *cache.Buf) {
	c := o.fs.Cache()
	b.WriteFlag = true
	c.Bdwrite(b)
	c.Bawrite(p, b)
}

// AllocInit implements ffs.Ordering.
func (o *Flag) AllocInit(p *sim.Proc, rec *ffs.AllocRec) {
	if rec.IsDir || rec.IsIndir || rec.FS.Config().AllocInit {
		o.flagWrite(p, rec.NewBuf)
	} else {
		rec.FS.Cache().Bdwrite(rec.NewBuf)
	}
}

// AllocPtr implements ffs.Ordering: for a fragment move the retargeting
// owner write is issued flagged, so any later write to the vacated run is
// ordered behind it by the driver (rule 2).
func (o *Flag) AllocPtr(p *sim.Proc, rec *ffs.AllocRec) {
	if rec.MovedFrom != nil {
		o.flagWrite(p, rec.OwnerBuf)
		rec.FS.ApplyFree(p, &ffs.FreeRec{FS: rec.FS, Frags: []ffs.FragRun{*rec.MovedFrom}})
		return
	}
	rec.FS.Cache().Bdwrite(rec.OwnerBuf)
}

// AddInode implements ffs.Ordering.
func (o *Flag) AddInode(p *sim.Proc, rec *ffs.LinkRec) { o.flagWrite(p, rec.InoBuf) }

// AddEntry implements ffs.Ordering.
func (o *Flag) AddEntry(p *sim.Proc, rec *ffs.LinkRec) { rec.FS.Cache().Bdwrite(rec.DirBuf) }

// RemoveEntry implements ffs.Ordering: the directory write is flagged and
// asynchronous; the inode update that follows is a delayed write issued
// later, which the flag semantics order behind it.
func (o *Flag) RemoveEntry(p *sim.Proc, rec *ffs.RemRec) {
	o.flagWrite(p, rec.DirBuf)
	rec.FS.FinishRemove(p, rec)
}

// FreeBlocks implements ffs.Ordering: the cleared inode is written flagged;
// the freed fragments become re-usable immediately because any write to
// them will be issued after the flagged write and therefore scheduled after
// it.
func (o *Flag) FreeBlocks(p *sim.Proc, rec *ffs.FreeRec) {
	o.flagWrite(p, rec.OwnerBuf)
	rec.FS.ApplyFree(p, rec)
}

// MetaUpdate implements ffs.Ordering.
func (o *Flag) MetaUpdate(p *sim.Proc, b *cache.Buf) { o.fs.Cache().Bdwrite(b) }

// DataWrite implements ffs.Ordering.
func (o *Flag) DataWrite(p *sim.Proc, b *cache.Buf) { o.fs.Cache().Bdwrite(b) }

// Chains is the scheduler-chains scheme of section 3.2: each ordered write
// is asynchronous and tagged with the IDs of the specific requests that
// must complete first, so unrelated requests reorder freely. The file
// system tracks, per buffer, the outstanding request IDs that future
// dependents must name, and — using the paper's better-performing second
// approach to de-allocation — remembers recently freed fragments until the
// write that re-initialized their old owner completes.
type Chains struct {
	fs *ffs.FS

	// issued tracks the most recent outstanding write request per buffer;
	// entries are removed at completion (a completed request needs no
	// dependency edge).
	issued map[*cache.Buf]uint64

	// completions holds cleanup actions to run when a request finishes.
	completions map[uint64][]func()

	// freedPending maps a fragment to the request that clears its old
	// owner's pointer; re-use before that request completes must depend
	// on it (the paper's second, better-performing approach).
	freedPending map[int32]uint64

	// pendingRemove carries the directory-write request ID from
	// RemoveEntry into the FinishRemove updates it orders.
	pendingRemove uint64

	// BarrierFrees selects the paper's first, simpler de-allocation
	// approach for the section 3.2 ablation: the owner write becomes a
	// Part-NR-style barrier (flag set) instead of tracking freed blocks.
	BarrierFrees bool
}

// NewChains returns the scheduler-chains scheme. The driver must be
// configured with dev.ModeChains.
func NewChains() *Chains {
	return &Chains{
		issued:       make(map[*cache.Buf]uint64),
		completions:  make(map[uint64][]func()),
		freedPending: make(map[int32]uint64),
	}
}

// Name implements ffs.Ordering.
func (o *Chains) Name() string { return "Scheduler Chains" }

// Start implements ffs.Ordering.
func (o *Chains) Start(fs *ffs.FS) { o.fs = fs }

// Hooks implements ffs.Ordering.
func (o *Chains) Hooks() cache.Hooks { return chainsHooks{o} }

type chainsHooks struct{ o *Chains }

func (chainsHooks) OnAccess(*cache.Buf)                   {}
func (chainsHooks) BeforeWrite(*cache.Buf, []byte) []byte { return nil }
func (h chainsHooks) WriteIssued(b *cache.Buf, r *dev.Request) {
	h.o.issued[b] = r.ID
}
func (h chainsHooks) WriteDone(b *cache.Buf, r *dev.Request) {
	if h.o.issued[b] == r.ID {
		delete(h.o.issued, b)
	}
	for _, fn := range h.o.completions[r.ID] {
		fn()
	}
	delete(h.o.completions, r.ID)
}

// chainWrite issues an async write of b (dependencies accumulated on the
// buffer ride along) and returns the request ID dependents must name. If a
// write was already in flight (non-CB), its ID is returned: the live buffer
// is the write source and modifications waited for the lock, so that write
// carries the current state.
func (o *Chains) chainWrite(p *sim.Proc, b *cache.Buf) uint64 {
	c := o.fs.Cache()
	c.Bdwrite(b)
	c.Bawrite(p, b)
	return o.issued[b]
}

// addDep records that b's next write must wait for request id.
func addDep(b *cache.Buf, id uint64) {
	if id == 0 {
		return
	}
	for _, d := range b.WriteDeps {
		if d == id {
			return
		}
	}
	b.WriteDeps = append(b.WriteDeps, id)
}

// AllocInit implements ffs.Ordering.
func (o *Chains) AllocInit(p *sim.Proc, rec *ffs.AllocRec) {
	// The new block may live on recently freed fragments; its init write
	// (and its owner) must wait for the old owner's clearing write.
	for i := int32(0); i < int32(rec.NewNFr); i++ {
		if id, ok := o.freedPending[rec.NewFrag+i]; ok {
			addDep(rec.NewBuf, id)
			addDep(rec.OwnerBuf, id)
		}
	}
	if rec.OldBuf != nil {
		// Fragment move: the new location's contents were copied from the
		// old buffer, and its unmet ordering obligations come with them.
		// Deps still pending on the old buffer transfer directly; deps
		// already consumed by an in-flight write of the old buffer are
		// covered transitively by naming that write (the move's write no
		// longer overlaps it, so device conflict ordering cannot).
		for _, d := range rec.OldBuf.WriteDeps {
			addDep(rec.NewBuf, d)
		}
		addDep(rec.NewBuf, o.issued[rec.OldBuf])
	}
	if rec.IsDir || rec.IsIndir || rec.FS.Config().AllocInit {
		id := o.chainWrite(p, rec.NewBuf)
		// The owner's pointer write must follow the initialization.
		addDep(rec.OwnerBuf, id)
	} else {
		rec.FS.Cache().Bdwrite(rec.NewBuf)
	}
}

// AllocPtr implements ffs.Ordering: a fragment move issues the retargeting
// write and remembers the vacated run until it completes, so re-users
// chain behind it (rule 2, the section 3.2 tracking approach).
func (o *Chains) AllocPtr(p *sim.Proc, rec *ffs.AllocRec) {
	if rec.MovedFrom != nil {
		ownerReq := o.chainWrite(p, rec.OwnerBuf)
		if ownerReq != 0 {
			run := *rec.MovedFrom
			for i := int32(0); i < int32(run.N); i++ {
				o.freedPending[run.Start+i] = ownerReq
			}
			o.completions[ownerReq] = append(o.completions[ownerReq], func() {
				for i := int32(0); i < int32(run.N); i++ {
					if o.freedPending[run.Start+i] == ownerReq {
						delete(o.freedPending, run.Start+i)
					}
				}
			})
		}
		rec.FS.ApplyFree(p, &ffs.FreeRec{FS: rec.FS, Frags: []ffs.FragRun{*rec.MovedFrom}})
		return
	}
	rec.FS.Cache().Bdwrite(rec.OwnerBuf)
}

// AddInode implements ffs.Ordering.
func (o *Chains) AddInode(p *sim.Proc, rec *ffs.LinkRec) {
	o.chainWrite(p, rec.InoBuf)
}

// AddEntry implements ffs.Ordering.
func (o *Chains) AddEntry(p *sim.Proc, rec *ffs.LinkRec) {
	addDep(rec.DirBuf, o.issued[rec.InoBuf])
	rec.FS.Cache().Bdwrite(rec.DirBuf)
}

// RemoveEntry implements ffs.Ordering: the directory write goes out
// asynchronously; the inode updates FinishRemove performs are chained
// behind it through pendingRemove.
func (o *Chains) RemoveEntry(p *sim.Proc, rec *ffs.RemRec) {
	id := o.chainWrite(p, rec.DirBuf)
	saved := o.pendingRemove
	o.pendingRemove = id
	rec.FS.FinishRemove(p, rec)
	o.pendingRemove = saved
}

// FreeBlocks implements ffs.Ordering: the cleared owner (inode block) is
// written with a dependency on the directory write; freed fragments are
// remembered until that write completes so re-users can chain behind it.
func (o *Chains) FreeBlocks(p *sim.Proc, rec *ffs.FreeRec) {
	addDep(rec.OwnerBuf, o.pendingRemove)
	if o.BarrierFrees {
		rec.OwnerBuf.WriteFlag = true // barrier fallback (section 3.2 ablation)
	}
	ownerReq := o.chainWrite(p, rec.OwnerBuf)
	if !o.BarrierFrees && ownerReq != 0 {
		for _, run := range rec.Frags {
			for i := int32(0); i < int32(run.N); i++ {
				o.freedPending[run.Start+i] = ownerReq
			}
		}
		frags := rec.Frags
		o.completions[ownerReq] = append(o.completions[ownerReq], func() {
			for _, run := range frags {
				for i := int32(0); i < int32(run.N); i++ {
					if o.freedPending[run.Start+i] == ownerReq {
						delete(o.freedPending, run.Start+i)
					}
				}
			}
		})
	}
	rec.FS.ApplyFree(p, rec)
}

// MetaUpdate implements ffs.Ordering: link-count updates reached through
// FinishRemove inherit the pending directory-write dependency.
func (o *Chains) MetaUpdate(p *sim.Proc, b *cache.Buf) {
	addDep(b, o.pendingRemove)
	o.fs.Cache().Bdwrite(b)
}

// DataWrite implements ffs.Ordering.
func (o *Chains) DataWrite(p *sim.Proc, b *cache.Buf) { o.fs.Cache().Bdwrite(b) }
