// Package ordering implements four of the five metadata update schemes the
// paper compares: No Order (the unsafe delayed-write baseline), the
// Conventional synchronous-write approach, the scheduler-enforced ordering
// flag of section 3.1, and scheduler chains (section 3.2). Soft updates,
// the paper's contribution, lives in package core.
package ordering

import (
	"metaupdate/internal/cache"
	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
)

// NoOrder ignores every ordering constraint and uses delayed writes for
// all metadata updates — the paper's baseline and performance goal, with
// the same lack of reliability as the "delayed mount" option it cites.
type NoOrder struct {
	fs *ffs.FS
}

// NewNoOrder returns the No Order scheme.
func NewNoOrder() *NoOrder { return &NoOrder{} }

// Name implements ffs.Ordering.
func (o *NoOrder) Name() string { return "No Order" }

// Start implements ffs.Ordering.
func (o *NoOrder) Start(fs *ffs.FS) { o.fs = fs }

// Hooks implements ffs.Ordering.
func (o *NoOrder) Hooks() cache.Hooks { return cache.NopHooks{} }

func (o *NoOrder) delay(b *cache.Buf) { o.fs.Cache().Bdwrite(b) }

// AllocInit implements ffs.Ordering.
func (o *NoOrder) AllocInit(p *sim.Proc, rec *ffs.AllocRec) { o.delay(rec.NewBuf) }

// AllocPtr implements ffs.Ordering.
func (o *NoOrder) AllocPtr(p *sim.Proc, rec *ffs.AllocRec) {
	o.delay(rec.OwnerBuf)
	if rec.MovedFrom != nil {
		rec.FS.ApplyFree(p, &ffs.FreeRec{FS: rec.FS, Frags: []ffs.FragRun{*rec.MovedFrom}})
	}
}

// AddInode implements ffs.Ordering.
func (o *NoOrder) AddInode(p *sim.Proc, rec *ffs.LinkRec) { o.delay(rec.InoBuf) }

// AddEntry implements ffs.Ordering.
func (o *NoOrder) AddEntry(p *sim.Proc, rec *ffs.LinkRec) { o.delay(rec.DirBuf) }

// RemoveEntry implements ffs.Ordering.
func (o *NoOrder) RemoveEntry(p *sim.Proc, rec *ffs.RemRec) {
	o.delay(rec.DirBuf)
	rec.FS.FinishRemove(p, rec)
}

// FreeBlocks implements ffs.Ordering.
func (o *NoOrder) FreeBlocks(p *sim.Proc, rec *ffs.FreeRec) {
	o.delay(rec.OwnerBuf)
	rec.FS.ApplyFree(p, rec)
}

// MetaUpdate implements ffs.Ordering.
func (o *NoOrder) MetaUpdate(p *sim.Proc, b *cache.Buf) { o.delay(b) }

// DataWrite implements ffs.Ordering.
func (o *NoOrder) DataWrite(p *sim.Proc, b *cache.Buf) { o.delay(b) }

// Conventional sequences metadata updates with synchronous writes, the way
// the original UNIX file system and FFS do. The write that later updates
// depend on is synchronous; the last write of each sequence is delayed
// (section 6.1: "the last write in a series of metadata updates is
// asynchronous or delayed").
type Conventional struct {
	fs *ffs.FS
}

// NewConventional returns the Conventional scheme.
func NewConventional() *Conventional { return &Conventional{} }

// Name implements ffs.Ordering.
func (o *Conventional) Name() string { return "Conventional" }

// Start implements ffs.Ordering.
func (o *Conventional) Start(fs *ffs.FS) { o.fs = fs }

// Hooks implements ffs.Ordering.
func (o *Conventional) Hooks() cache.Hooks { return cache.NopHooks{} }

// AllocInit implements ffs.Ordering: directory and indirect blocks are
// always initialized on disk before being pointed to; regular file data
// only when allocation initialization is configured (most FFS derivatives
// skip it — the integrity/security hole the paper discusses).
func (o *Conventional) AllocInit(p *sim.Proc, rec *ffs.AllocRec) {
	if rec.IsDir || rec.IsIndir || rec.FS.Config().AllocInit {
		rec.FS.Cache().Bwrite(p, rec.NewBuf)
	} else {
		rec.FS.Cache().Bdwrite(rec.NewBuf)
	}
}

// AllocPtr implements ffs.Ordering: a fragment move must not re-use the
// vacated run before the retargeted pointer is on disk (rule 2), so the
// owner is written synchronously first.
func (o *Conventional) AllocPtr(p *sim.Proc, rec *ffs.AllocRec) {
	if rec.MovedFrom != nil {
		rec.FS.Cache().Bwrite(p, rec.OwnerBuf)
		rec.FS.ApplyFree(p, &ffs.FreeRec{FS: rec.FS, Frags: []ffs.FragRun{*rec.MovedFrom}})
		return
	}
	rec.FS.Cache().Bdwrite(rec.OwnerBuf)
}

// AddInode implements ffs.Ordering: the inode (with its new link count)
// reaches stable storage synchronously before the directory entry can be
// written.
func (o *Conventional) AddInode(p *sim.Proc, rec *ffs.LinkRec) {
	rec.FS.Cache().Bwrite(p, rec.InoBuf)
}

// AddEntry implements ffs.Ordering: the entry itself is a delayed write.
func (o *Conventional) AddEntry(p *sim.Proc, rec *ffs.LinkRec) {
	rec.FS.Cache().Bdwrite(rec.DirBuf)
}

// RemoveEntry implements ffs.Ordering: the directory block is written
// synchronously, after which the link count may be decremented (and the
// file freed) immediately.
func (o *Conventional) RemoveEntry(p *sim.Proc, rec *ffs.RemRec) {
	rec.FS.Cache().Bwrite(p, rec.DirBuf)
	rec.FS.FinishRemove(p, rec)
}

// FreeBlocks implements ffs.Ordering: the cleared inode is written
// synchronously before the free maps are updated (rule 2).
func (o *Conventional) FreeBlocks(p *sim.Proc, rec *ffs.FreeRec) {
	rec.FS.Cache().Bwrite(p, rec.OwnerBuf)
	rec.FS.ApplyFree(p, rec)
}

// MetaUpdate implements ffs.Ordering.
func (o *Conventional) MetaUpdate(p *sim.Proc, b *cache.Buf) { o.fs.Cache().Bdwrite(b) }

// DataWrite implements ffs.Ordering.
func (o *Conventional) DataWrite(p *sim.Proc, b *cache.Buf) { o.fs.Cache().Bdwrite(b) }
