package ordering_test

import (
	"fmt"
	"testing"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/jlog"
	"metaupdate/internal/ordering"
	"metaupdate/internal/sim"
)

// newJournaledRig mounts a file system formatted with a journal region of
// the given size, under the given scheme, with the chains-mode driver and
// -CB off (both new schemes' required configuration).
func newJournaledRig(t *testing.T, ord ffs.Ordering, journalFrags int32) *rig {
	t.Helper()
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 64<<20)
	if _, err := ffs.Format(dsk, ffs.FormatParams{
		TotalBytes: 64 << 20, NInodes: 2048, JournalFrags: journalFrags,
	}); err != nil {
		t.Fatal(err)
	}
	drv := dev.New(eng, dsk, dev.Config{Mode: dev.ModeChains})
	cpu := &sim.CPU{}
	c := cache.New(eng, drv, cpu, cache.Config{})
	r := &rig{eng: eng, dsk: dsk, drv: drv, c: c}
	var err error
	eng.Spawn("mount", func(p *sim.Proc) {
		r.fs, err = ffs.Mount(eng, cpu, c, ord, ffs.Config{}, p)
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestJournalWrapReclaimAndBackpressure churns a journal region sized for
// only a handful of transactions: the writer must wrap, the durable header
// must advance (synchronous rewrites), and — with no syncer retiring home
// buffers — the log must apply backpressure by forcing checkpoint flushes.
// Afterwards the on-disk header must decode and point at a live tail.
func TestJournalWrapReclaimAndBackpressure(t *testing.T) {
	j := ordering.NewJournal()
	if j.Name() != "Journaling" {
		t.Fatalf("scheme name %q", j.Name())
	}
	r := newJournaledRig(t, j, 24)
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			name := fmt.Sprintf("f%d", i)
			ino, err := r.fs.Create(p, ffs.RootIno, name)
			if err != nil {
				t.Fatal(err)
			}
			r.fs.WriteAt(p, ino, 0, make([]byte, 1024))
			if i%2 == 0 {
				if err := r.fs.Unlink(p, ffs.RootIno, name); err != nil {
					t.Fatal(err)
				}
			}
		}
		r.fs.Sync(p)
		r.drv.WaitIdle(p)
	})
	if j.Txns == 0 || j.Wraps == 0 {
		t.Fatalf("churn produced %d txns, %d wraps; the 24-frag region must wrap", j.Txns, j.Wraps)
	}
	if j.Flushes == 0 {
		t.Error("no checkpoint flushes: log backpressure never engaged with no syncer running")
	}
	if j.HeaderWrites == 0 {
		t.Error("durable header never rewritten despite reclaimed space being reused")
	}
	sb := r.fs.Superblock()
	hdr, ok := jlog.DecodeHeader(r.dsk.Image()[int64(sb.JournalStart)*ffs.FragSize:])
	if !ok {
		t.Fatal("on-disk journal header does not decode after churn")
	}
	// TailOff == JournalFrags is the legal empty-log state with the head
	// parked at the region end (replay's wrap fallback resumes at 1).
	if hdr.TailOff < 1 || hdr.TailOff > sb.JournalFrags {
		t.Fatalf("durable tail offset %d outside region (1..%d)", hdr.TailOff, sb.JournalFrags)
	}
}

// TestJournalStartRequiresRegion pins the configuration error: mounting the
// journaling scheme on a file system formatted without a journal region
// must panic with a message naming the fix, not corrupt data silently.
func TestJournalStartRequiresRegion(t *testing.T) {
	r := newRig(t, ordering.NewChains(), dev.Config{Mode: dev.ModeChains}, cache.Config{}, ffs.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Journal.Start accepted a file system with no journal region")
		}
	}()
	ordering.NewJournal().Start(r.fs)
}

// TestAsyncNotificationsDrain: every registered naming operation must
// eventually receive its durability notification once the media catches
// up, notices must carry the right kinds, and the in-flight window must
// be empty after a full drain.
func TestAsyncNotificationsDrain(t *testing.T) {
	a := ordering.NewAsync(8, 5*sim.Millisecond)
	r := newJournaledRig(t, a, 0)
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, err := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 5; i++ {
			if err := r.fs.Unlink(p, ffs.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		r.fs.Sync(p)
		r.drv.WaitIdle(p)
	})
	if a.Registered == 0 {
		t.Fatal("no operations registered")
	}
	if a.Notified != a.Registered {
		t.Fatalf("%d of %d registered ops notified after full drain", a.Notified, a.Registered)
	}
	if got := a.PendingOps(); got != 0 {
		t.Fatalf("%d ops still in the window after drain", got)
	}
	adds, removes := 0, 0
	for _, n := range a.Notices() {
		if n.NotifiedAt < n.RegisteredAt {
			t.Fatalf("notice %d delivered before registration (%v < %v)", n.ID, n.NotifiedAt, n.RegisteredAt)
		}
		switch n.Kind {
		case ordering.NoticeAdd:
			adds++
		case ordering.NoticeRemove:
			removes++
		}
	}
	if adds == 0 || removes == 0 {
		t.Fatalf("notice kinds missing: %d adds, %d removes", adds, removes)
	}
	if got := len(a.DrainNotices()); got != int(a.Notified) {
		t.Fatalf("DrainNotices returned %d of %d", got, a.Notified)
	}
	if len(a.Notices()) != 0 {
		t.Fatal("notices not cleared by DrainNotices")
	}
}

// TestAsyncThrottleEngages: a CPU-speed unlink burst against one directory
// block with a one-op window and a flusher interval too long to help —
// every second registration overflows the window, so the admission
// throttle must persist the oldest waiter synchronously, and the window
// must never exceed its cap after a registration returns.
func TestAsyncThrottleEngages(t *testing.T) {
	a := ordering.NewAsync(1, 500*sim.Millisecond)
	r := newJournaledRig(t, a, 0)
	if a.Name() != "Async Durability" {
		t.Fatalf("scheme name %q", a.Name())
	}
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if _, err := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("t%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		r.fs.Sync(p)
		base := r.c.SyncWrites
		for i := 0; i < 8; i++ {
			if err := r.fs.Unlink(p, ffs.RootIno, fmt.Sprintf("t%d", i)); err != nil {
				t.Fatal(err)
			}
			if got := a.PendingOps(); got > 1 {
				t.Fatalf("window holds %d ops after registration, cap is 1", got)
			}
		}
		if r.c.SyncWrites == base {
			t.Error("throttle never issued a synchronous write during the unlink burst")
		}
		r.fs.Sync(p)
		r.drv.WaitIdle(p)
	})
	if a.Notified != a.Registered {
		t.Fatalf("%d of %d ops notified after drain", a.Notified, a.Registered)
	}
	if ordering.NoticeAdd.String() != "add" || ordering.NoticeRemove.String() != "remove" {
		t.Fatal("notice kind strings wrong")
	}
}

// TestAsyncWindowBoundsInFlight: with a tiny window the admission throttle
// must keep the post-registration window at the cap, and the group-commit
// flusher must have swept at least once under sustained churn.
func TestAsyncWindowBoundsInFlight(t *testing.T) {
	const window = 2
	a := ordering.NewAsync(window, 5*sim.Millisecond)
	r := newJournaledRig(t, a, 0)
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			if _, err := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("w%d", i)); err != nil {
				t.Fatal(err)
			}
			if got := a.PendingOps(); got > window {
				t.Fatalf("window holds %d ops after registration, cap is %d", got, window)
			}
		}
		r.fs.Sync(p)
		r.drv.WaitIdle(p)
	})
	if a.PeakPending > window+1 {
		t.Fatalf("peak pending %d; the throttle admits at most one over the cap transiently", a.PeakPending)
	}
	if a.GroupFlushes == 0 {
		t.Error("group-commit flusher never swept during sustained churn")
	}
	if a.Notified != a.Registered {
		t.Fatalf("%d of %d ops notified", a.Notified, a.Registered)
	}
}
