package ordering_test

import (
	"fmt"
	"testing"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/ordering"
	"metaupdate/internal/sim"
)

type rig struct {
	eng *sim.Engine
	dsk *disk.Disk
	drv *dev.Driver
	c   *cache.Cache
	fs  *ffs.FS
}

func newRig(t *testing.T, ord ffs.Ordering, dcfg dev.Config, ccfg cache.Config, fscfg ffs.Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 64<<20)
	if _, err := ffs.Format(dsk, ffs.FormatParams{TotalBytes: 64 << 20, NInodes: 2048}); err != nil {
		t.Fatal(err)
	}
	drv := dev.New(eng, dsk, dcfg)
	cpu := &sim.CPU{}
	c := cache.New(eng, drv, cpu, ccfg)
	r := &rig{eng: eng, dsk: dsk, drv: drv, c: c}
	var err error
	eng.Spawn("mount", func(p *sim.Proc) {
		r.fs, err = ffs.Mount(eng, cpu, c, ord, fscfg, p)
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.eng.Spawn("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("simulated process deadlocked")
	}
}

func TestConventionalCreateIsSynchronous(t *testing.T) {
	// One synchronous write (the inode block) per create: the process
	// must block for a disk write inside the system call.
	r := newRig(t, ordering.NewConventional(), dev.Config{}, cache.Config{}, ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		r.c.Driver().Trace.Reset()
		start := p.Now()
		for i := 0; i < 10; i++ {
			if _, err := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := p.Now() - start
		n := r.drv.Trace.Requests()
		if n < 10 {
			t.Fatalf("10 conventional creates issued only %d writes", n)
		}
		// Ten sync writes at several ms each: elapsed must be disk-bound.
		if elapsed < 20*sim.Millisecond {
			t.Fatalf("creates took %v; synchronous writes should dominate", elapsed)
		}
	})
}

func TestConventionalRemoveIsTwoSyncWrites(t *testing.T) {
	r := newRig(t, ordering.NewConventional(), dev.Config{}, cache.Config{}, ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			ino, _ := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("f%d", i))
			r.fs.WriteAt(p, ino, 0, make([]byte, 1024))
		}
		r.fs.Sync(p)
		r.drv.Trace.Reset()
		for i := 0; i < 5; i++ {
			if err := r.fs.Unlink(p, ffs.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		// Directory block + cleared inode block per remove = 2 sync writes.
		if got := r.drv.Trace.Requests(); got < 10 {
			t.Fatalf("5 removes issued %d writes, want >= 10", got)
		}
	})
}

func TestFlagSchemeDoesNotBlockOnCreate(t *testing.T) {
	// Flagged writes are asynchronous: the create path must not wait for
	// the disk (with -CB there is not even a write lock).
	r := newRig(t, ordering.NewFlag(),
		dev.Config{Mode: dev.ModeFlag, Sem: dev.SemPart, NR: true},
		cache.Config{CB: true}, ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 10; i++ {
			if _, err := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := p.Now() - start
		// CPU-bound: an order of magnitude below the conventional case.
		if elapsed > 40*sim.Millisecond {
			t.Fatalf("flag creates took %v; async writes should not block", elapsed)
		}
		if r.drv.Trace.Requests()+r.drv.QueueLen() < 1 {
			t.Fatal("no async writes were issued")
		}
	})
}

func TestFlagWritesCarryTheFlag(t *testing.T) {
	r := newRig(t, ordering.NewFlag(),
		dev.Config{Mode: dev.ModeFlag, Sem: dev.SemPart, NR: true},
		cache.Config{CB: true}, ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Create(p, ffs.RootIno, "f"); err != nil {
			t.Fatal(err)
		}
		r.drv.WaitIdle(p)
	})
	flagged := 0
	for _, s := range r.drv.Trace.Stats {
		_ = s
	}
	// The trace does not retain flags; assert indirectly via the driver
	// config being exercised plus at least one write having been issued.
	if r.c.WritesIssued == 0 {
		t.Fatal("create issued no writes under the flag scheme")
	}
	_ = flagged
}

func TestChainsOrdersInodeBeforeDirEntryOnDisk(t *testing.T) {
	// Let the chains scheme run a create, then crash-stop before the
	// delayed directory write is flushed: the directory entry must never
	// be on disk before the inode.
	r := newRig(t, ordering.NewChains(), dev.Config{Mode: dev.ModeChains},
		cache.Config{CB: true}, ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, ffs.RootIno, "ordered")
		if err != nil {
			t.Fatal(err)
		}
		r.fs.Sync(p)
		// After sync both are durable; decode the on-disk inode.
		sb := r.fs.Superblock()
		frag, off := sb.InodeFrag(ino)
		ip := ffs.DecodeInode(r.dsk.Image()[int64(frag)*ffs.FragSize+int64(off):])
		if !ip.Allocated() {
			t.Fatal("inode not on disk after sync")
		}
	})
}

func TestChainsBarrierFreesVariant(t *testing.T) {
	ch := ordering.NewChains()
	ch.BarrierFrees = true
	r := newRig(t, ch, dev.Config{Mode: dev.ModeChains}, cache.Config{CB: true}, ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		r.fs.WriteAt(p, ino, 0, make([]byte, 4096))
		r.fs.Sync(p)
		if err := r.fs.Unlink(p, ffs.RootIno, "f"); err != nil {
			t.Fatal(err)
		}
		r.fs.Sync(p)
		if _, err := r.fs.Stat(p, ino); err != ffs.ErrNotExist {
			t.Fatalf("inode survives under barrier frees: %v", err)
		}
	})
}

func TestNoOrderNeverBlocksAndCoalesces(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), dev.Config{}, cache.Config{}, ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		base := r.c.WritesIssued
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("f%d", i)
			ino, _ := r.fs.Create(p, ffs.RootIno, name)
			r.fs.WriteAt(p, ino, 0, make([]byte, 1024))
			r.fs.Unlink(p, ffs.RootIno, name)
		}
		if got := r.c.WritesIssued - base; got != 0 {
			t.Fatalf("No Order issued %d writes during pure churn", got)
		}
		r.fs.Sync(p)
	})
	// After churn + sync, almost nothing to write (a handful of metadata
	// blocks).
	if got := r.c.WritesIssued; got > 12 {
		t.Fatalf("No Order wrote %d blocks after fully-cancelling churn", got)
	}
}

func TestSchemeNames(t *testing.T) {
	if ordering.NewNoOrder().Name() != "No Order" ||
		ordering.NewConventional().Name() != "Conventional" ||
		ordering.NewFlag().Name() != "Scheduler Flag" ||
		ordering.NewChains().Name() != "Scheduler Chains" {
		t.Fatal("scheme names wrong")
	}
}
