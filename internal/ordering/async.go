package ordering

import (
	"slices"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
)

// Async is the AsyncFS-inspired decoupled-durability scheme: operations
// become visible the moment they execute (delayed writes, exactly the
// scheduler-chains write pattern, so crash images stay rule-consistent),
// but durability is acknowledged asynchronously — each naming operation
// registers the buffers whose home writes constitute its persistence, and
// a notification is queued (with the virtual completion timestamp) once
// they are all on the media.
//
// Two mechanisms bound the visibility/durability gap:
//
//   - a bounded in-flight window: at most Window operations may await
//     notification; a registering operation past that blocks flushing the
//     oldest — the AsyncFS admission throttle;
//   - batched group commit: a flusher daemon sweeps every Interval and
//     issues one asynchronous write per distinct dirty buffer registered
//     by waiting operations, so many operations on the same directory
//     block are made durable by a single write.
//
// The crash contract (the fourth conformance predicate): an operation
// whose notification was delivered before the crash MUST survive crash
// recovery; an operation still inside the window MAY be lost even though
// the caller already saw it complete.
type Async struct {
	*Chains

	// Window caps operations awaiting notification; Interval is the group
	// commit sweep period. Both are fixed at construction.
	Window   int
	Interval sim.Duration

	eng *sim.Engine
	cb  bool // cache runs the block-copy enhancement (snapshot at submit)

	pending []*aop // ops awaiting notification, registration order
	nextOp  uint64
	// waitByFrag indexes pending ops by the home fragments they await.
	waitByFrag map[int64][]*aop

	flusherLive bool

	notices []Notice

	// Stats.
	Registered, Notified, Superseded int64
	PeakPending                      int
	GroupFlushes                     int64
}

// aop is one operation awaiting its durability notification.
type aop struct {
	id           uint64
	kind         NoticeKind
	ino          ffs.Ino
	registeredAt sim.Time
	waiting      int             // unsatisfied home fragments
	done         *sim.Completion // fired on notification (fsync waiters)
}

// NoticeKind tags what kind of naming operation a Notice acknowledges.
type NoticeKind uint8

// Notice kinds.
const (
	NoticeAdd    NoticeKind = iota + 1 // entry + inode durable (create/mkdir/link)
	NoticeRemove                       // entry removal durable (unlink/rmdir)
	NoticeFsync                        // a file's registered contents durable (fsync)
)

func (k NoticeKind) String() string {
	switch k {
	case NoticeAdd:
		return "add"
	case NoticeFsync:
		return "fsync"
	}
	return "remove"
}

// Notice is one delivered durability notification.
type Notice struct {
	ID           uint64
	Kind         NoticeKind
	Ino          ffs.Ino
	RegisteredAt sim.Time
	NotifiedAt   sim.Time
}

// DefaultAsyncWindow / DefaultAsyncInterval are the fsim defaults.
const (
	DefaultAsyncWindow   = 64
	DefaultAsyncInterval = 25 * sim.Millisecond
)

// NewAsync returns the decoupled-durability scheme. The driver must be
// configured with dev.ModeChains (the scheme's ordering is Chains').
func NewAsync(window int, interval sim.Duration) *Async {
	if window <= 0 {
		window = DefaultAsyncWindow
	}
	if interval <= 0 {
		interval = DefaultAsyncInterval
	}
	return &Async{
		Chains:     NewChains(),
		Window:     window,
		Interval:   interval,
		waitByFrag: make(map[int64][]*aop),
	}
}

// Name implements ffs.Ordering.
func (o *Async) Name() string { return "Async Durability" }

// Start implements ffs.Ordering.
func (o *Async) Start(fs *ffs.FS) {
	o.Chains.Start(fs)
	o.eng = fs.Engine()
	o.cb = fs.Cache().Config().CB
}

// Hooks implements ffs.Ordering.
func (o *Async) Hooks() cache.Hooks { return asyncHooks{chainsHooks{o.Chains}, o} }

type asyncHooks struct {
	chainsHooks
	a *Async
}

func (h asyncHooks) WriteDone(b *cache.Buf, r *dev.Request) {
	h.chainsHooks.WriteDone(b, r)
	// The written data reflects the buffer as of the write's submission
	// under -CB (snapshot) and as of its completion without it (the
	// buffer is write-locked while in flight, so any registration up to
	// completion had its modification applied before submission).
	asOf := h.a.eng.Now()
	if h.a.cb {
		asOf = r.SubmitTime()
	}
	h.a.fragDurableAsOf(b.Frag, asOf)
}

// fragDurable credits every waiting op: the caller has verified the
// fragment's current contents are on the media (or moot), so every
// registered state is covered.
func (o *Async) fragDurable(frag int64) { o.fragDurableAsOf(frag, o.eng.Now()) }

// fragDurableAsOf credits the ops whose registration predates asOf: the
// caller asserts the fragment's on-media contents include every
// modification made before that instant. Later registrants may have
// modified state the write missed (-CB snapshots at submit), so they
// stay waiting for a later write.
func (o *Async) fragDurableAsOf(frag int64, asOf sim.Time) {
	ops := o.waitByFrag[frag]
	if len(ops) == 0 {
		return
	}
	keep := ops[:0]
	for _, op := range ops {
		if op.registeredAt > asOf {
			keep = append(keep, op)
			continue
		}
		op.waiting--
		if op.waiting == 0 {
			o.notify(op)
		}
	}
	if len(keep) == 0 {
		delete(o.waitByFrag, frag)
	} else {
		o.waitByFrag[frag] = keep
	}
	o.compactPending()
}

// notify queues op's durability notification and wakes a blocked waiter.
func (o *Async) notify(op *aop) {
	o.notices = append(o.notices, Notice{
		ID: op.id, Kind: op.kind, Ino: op.ino,
		RegisteredAt: op.registeredAt, NotifiedAt: o.eng.Now(),
	})
	o.Notified++
	if op.done != nil {
		op.done.Fire(o.eng)
	}
}

// compactPending drops satisfied ops from the window (front-biased; order
// is preserved for the remaining ops).
func (o *Async) compactPending() {
	live := o.pending[:0]
	for _, op := range o.pending {
		if op.waiting > 0 {
			live = append(live, op)
		}
	}
	for i := len(live); i < len(o.pending); i++ {
		o.pending[i] = nil
	}
	o.pending = live
}

// register enters an operation into the in-flight window, waiting on the
// given home fragments. Full window: the oldest waiting op's buffers are
// flushed synchronously (admission throttle).
func (o *Async) register(p *sim.Proc, kind NoticeKind, ino ffs.Ino, bufs ...*cache.Buf) {
	var frags []int64
	for _, b := range bufs {
		if b != nil {
			frags = append(frags, b.Frag)
		}
	}
	o.admit(p, &aop{kind: kind, ino: ino}, frags)
}

// admit enters op into the in-flight window, waiting on frags.
func (o *Async) admit(p *sim.Proc, op *aop, frags []int64) {
	o.nextOp++
	op.id = o.nextOp
	op.registeredAt = o.eng.Now()
	for _, frag := range frags {
		op.waiting++
		o.waitByFrag[frag] = append(o.waitByFrag[frag], op)
	}
	o.Registered++
	if op.waiting == 0 {
		o.notify(op)
		return
	}
	o.pending = append(o.pending, op)
	if len(o.pending) > o.PeakPending {
		o.PeakPending = len(o.pending)
	}
	for len(o.pending) > o.Window {
		o.throttle(p)
	}
	if !o.flusherLive && len(o.pending) > 0 {
		o.flusherLive = true
		o.eng.Spawn("gcommit", o.flusher)
	}
}

// waitFrags snapshots waitByFrag's keys in ascending order. Sweeps must
// not range the map directly: map iteration order is randomized per
// process, and the order writes are issued in changes disk scheduling and
// therefore virtual time. The snapshot is local because a blocking write
// inside a sweep can let other processes register (and throttle) before
// the sweep finishes.
func (o *Async) waitFrags() []int64 {
	frags := make([]int64, 0, len(o.waitByFrag))
	for frag := range o.waitByFrag {
		frags = append(frags, frag)
	}
	slices.Sort(frags)
	return frags
}

// throttle synchronously persists the oldest pending op's buffers.
func (o *Async) throttle(p *sim.Proc) {
	op := o.pending[0]
	c := o.fs.Cache()
	for _, frag := range o.waitFrags() {
		if !containsOp(o.waitByFrag[frag], op) {
			continue
		}
		b := c.Lookup(frag)
		if b == nil || (!b.Dirty && !b.InFlight()) {
			// Buffer dropped (freed) or its post-registration write
			// already completed: the registered state is durable or moot.
			o.Superseded++
			o.fragDurable(frag)
			continue
		}
		c.Bdwrite(b)
		err := c.Bwrite(p, b) // WriteDone credits the waiters
		if err != nil {
			// Terminal write failure (faulted disk): deliver the
			// notification anyway — the data is lost either way and the
			// window must drain.
			o.Superseded++
			o.fragDurable(frag)
		}
	}
	if op.waiting > 0 {
		// Defensive: every fragment path above resolves, but never spin.
		op.waiting = 0
		o.notify(op)
		o.compactPending()
	}
}

func containsOp(ops []*aop, op *aop) bool {
	for _, x := range ops {
		if x == op {
			return true
		}
	}
	return false
}

// flusher is the group-commit daemon: while operations await
// notification, sweep every Interval and issue one asynchronous write per
// distinct registered-and-dirty buffer. It exits when the window drains
// (and is respawned on the next registration), so engine drains always
// terminate.
func (o *Async) flusher(p *sim.Proc) {
	c := o.fs.Cache()
	for len(o.pending) > 0 {
		p.Sleep(o.Interval)
		o.GroupFlushes++
		for _, frag := range o.waitFrags() {
			if len(o.waitByFrag[frag]) == 0 {
				continue // satisfied by a completion during this sweep
			}
			b := c.Lookup(frag)
			if b == nil || (!b.Dirty && !b.InFlight()) {
				o.Superseded++
				o.fragDurable(frag)
				continue
			}
			if b.Dirty && !b.InFlight() {
				c.Bawrite(p, b)
			}
		}
	}
	o.flusherLive = false
}

// Notices returns the delivered notifications (registration order of
// completion) without clearing them.
func (o *Async) Notices() []Notice { return o.notices }

// DrainNotices returns and clears the delivered notifications.
func (o *Async) DrainNotices() []Notice {
	n := o.notices
	o.notices = nil
	return n
}

// PendingOps reports operations still inside the in-flight window.
func (o *Async) PendingOps() int { return len(o.pending) }

// AddEntry implements ffs.Ordering: Chains' ordering, plus the op enters
// the durability window on the directory and inode buffers.
func (o *Async) AddEntry(p *sim.Proc, rec *ffs.LinkRec) {
	o.Chains.AddEntry(p, rec)
	o.register(p, NoticeAdd, rec.Ino, rec.DirBuf, rec.InoBuf)
}

// RemoveEntry implements ffs.Ordering: Chains' ordering, plus the op
// enters the durability window on the directory buffer.
func (o *Async) RemoveEntry(p *sim.Proc, rec *ffs.RemRec) {
	o.Chains.RemoveEntry(p, rec)
	o.register(p, NoticeRemove, rec.Ino, rec.DirBuf)
}

// WaitDurable implements ffs.DurabilityWaiter: fsync under decoupled
// durability. The file's registered fragments enter the window as one
// operation (counted against Window like any naming op) and the caller
// blocks until its notification — the group-commit flusher's next sweeps
// carry the writes, so concurrent fsyncs share batched I/O instead of
// each stalling the driver's dependency chains with synchronous writes.
func (o *Async) WaitDurable(p *sim.Proc, ino ffs.Ino, frags []int64) {
	c := o.fs.Cache()
	live := frags[:0]
	for _, frag := range frags {
		if b := c.Lookup(frag); b != nil && (b.Dirty || b.InFlight()) {
			live = append(live, frag)
		}
	}
	if len(live) == 0 {
		return
	}
	done := sim.NewCompletion()
	o.admit(p, &aop{kind: NoticeFsync, ino: ino, done: done}, live)
	done.Wait(p)
}

var _ ffs.DurabilityWaiter = (*Async)(nil)
