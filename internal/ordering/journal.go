package ordering

import (
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/jlog"
	"metaupdate/internal/sim"
)

// Journal is the write-ahead journaling scheme — the classic alternative
// the paper could not benchmark (section 6 discusses it as related work).
// All file system updates stay delayed writes, but at every point where
// the ordering rules would demand a sequenced disk write, the scheme
// instead writes the affected buffer's current image into a wrapping
// on-disk log region as one transaction:
//
//	[ begin | payload (buffer image) | commit ]
//
// The commit record carries a CRC32 over the begin sector and payload and
// depends (dev.ModeChains) on the begin write, the payload write, and the
// previous commit — so durable commits always form a contiguous sequence
// prefix, and a torn commit (sector 0 absent) discards the whole
// transaction on replay. Home-location writeback is ordered behind the
// transaction's commit: the journaled buffer's next write names the
// commit request, so a crash image can never hold a home update whose
// transaction is not replayable.
//
// Transactions are retired when their buffer's delayed write reaches the
// home location; the durable header (region fragment 0) is rewritten
// synchronously before retired space is reused, exactly like a wrapping
// jbd-style log. Crash recovery is fsck.ReplayJournal: scan the committed
// prefix from the durable tail, apply buffer images oldest-first.
type Journal struct {
	fs    *ffs.FS
	drv   *dev.Driver
	start int32 // journal region start fragment (absolute)
	frags int32 // journal region size in fragments

	head    int32  // region-relative offset of the next transaction
	nextSeq uint64 // sequence number of the next transaction

	// Durable header state as last written (Format wrote {1, 1}).
	durTailSeq uint64
	durTailOff int32

	// Live (unreclaimed) transactions in sequence order. The front is the
	// durable tail; entries leave only in reclaim, which rewrites the
	// header first.
	txns []*jtxn
	// recsByFrag indexes live transactions by journaled home fragment:
	// any completed write of that buffer retires them.
	recsByFrag map[int64][]*jtxn

	// lastCommit chains each commit behind its predecessor.
	lastCommit uint64

	// In-flight journal writes in submission order; completed ones are
	// swept back to the pools at the next transaction.
	out []outReq

	// Pools: data frames by fragment count, retired txn structs, and the
	// commit dependency scratch (valid only during Submit).
	frames   [ffs.BlockFrags + 1][][]byte
	txnFree  []*jtxn
	depsBuf  [3]uint64
	homesBuf [1]jlog.HomeRun

	// Stats.
	Txns, Wraps, HeaderWrites, Flushes, ForcedRetires int64
}

// jtxn is one live journal transaction (exactly one buffer image).
type jtxn struct {
	seq     uint64
	off     int32 // region-relative begin fragment
	size    int32 // begin + payload + commit, fragments
	frag    int64 // journaled buffer's home fragment
	retired bool
}

type outReq struct {
	req   *dev.Request
	frame []byte
}

// minJournalFrags is the smallest usable region: header plus one
// block-sized transaction plus headroom so placement can always succeed.
const minJournalFrags = 2*(ffs.BlockFrags+2) + 1

// NewJournal returns the journaling scheme. The file system must be
// formatted with a journal region (ffs.FormatParams.JournalFrags) and the
// driver configured with dev.ModeChains.
func NewJournal() *Journal {
	return &Journal{recsByFrag: make(map[int64]([]*jtxn))}
}

// Name implements ffs.Ordering.
func (o *Journal) Name() string { return "Journaling" }

// Start implements ffs.Ordering.
func (o *Journal) Start(fs *ffs.FS) {
	o.fs = fs
	o.drv = fs.Cache().Driver()
	sb := fs.Superblock()
	if sb.JournalFrags < minJournalFrags {
		panic(fmt.Sprintf("ordering: journaling needs a journal region of at least %d frags (have %d); format with FormatParams.JournalFrags",
			minJournalFrags, sb.JournalFrags))
	}
	o.start = sb.JournalStart
	o.frags = sb.JournalFrags
	o.head = 1
	o.nextSeq = 1
	o.durTailSeq, o.durTailOff = 1, 1
}

// Hooks implements ffs.Ordering.
func (o *Journal) Hooks() cache.Hooks { return journalHooks{o} }

type journalHooks struct{ o *Journal }

func (journalHooks) OnAccess(*cache.Buf)                   {}
func (journalHooks) BeforeWrite(*cache.Buf, []byte) []byte { return nil }
func (journalHooks) WriteIssued(*cache.Buf, *dev.Request)  {}
func (h journalHooks) WriteDone(b *cache.Buf, r *dev.Request) {
	// The buffer's (at least as new) state is at its home location; its
	// live transactions no longer need replay.
	h.o.retireFrag(b.Frag)
}

// retireFrag marks every live transaction journaling frag as retired.
func (o *Journal) retireFrag(frag int64) {
	ts := o.recsByFrag[frag]
	if len(ts) == 0 {
		return
	}
	for _, t := range ts {
		t.retired = true
	}
	delete(o.recsByFrag, frag)
}

// stable writes one transaction carrying b's current image and gates b's
// next home write behind the commit.
func (o *Journal) stable(p *sim.Proc, b *cache.Buf) {
	o.fs.Cache().Bdwrite(b)
	o.sweep()

	payload := int32(b.NFrags())
	size := jlog.TxnFrags(payload)
	off := o.ensureSpace(p, size)

	seq := o.nextSeq
	o.nextSeq++

	begin := o.getFrame(1)
	data := o.getFrame(int(payload))
	commit := o.getFrame(1)
	o.homesBuf[0] = jlog.HomeRun{Frag: b.Frag, NFrags: payload}
	jlog.EncodeBegin(begin, seq, o.homesBuf[:1])
	copy(data, b.Data)
	sum := jlog.Checksum(begin, data)
	jlog.EncodeCommit(commit, seq, payload, sum)

	beginReq := o.submit(off, begin, nil)
	dataReq := o.submit(off+1, data, nil)
	deps := o.depsBuf[:0]
	deps = append(deps, beginReq.ID, dataReq.ID)
	if o.lastCommit != 0 {
		deps = append(deps, o.lastCommit)
	}
	commitReq := o.submit(off+1+payload, commit, deps)
	o.lastCommit = commitReq.ID

	// Home writeback is ordered behind the commit (rule integrity: a home
	// update on the media implies its transaction replays).
	addDep(b, commitReq.ID)

	t := o.newTxn()
	*t = jtxn{seq: seq, off: off, size: size, frag: b.Frag}
	o.txns = append(o.txns, t)
	o.recsByFrag[b.Frag] = append(o.recsByFrag[b.Frag], t)
	o.head = off + size
	o.Txns++
}

// submit sends one raw journal write (frame length = whole fragments).
// deps is valid only during the call (the driver reads DependsOn inside
// Submit).
func (o *Journal) submit(regionOff int32, frame []byte, deps []uint64) *dev.Request {
	r := o.drv.AllocRequest()
	r.Op = disk.Write
	r.LBN = int64(o.start+regionOff) * cache.SectorsPerFrag
	r.Count = len(frame) / disk.SectorSize
	r.Data = frame
	r.DependsOn = deps
	o.drv.Submit(r)
	o.out = append(o.out, outReq{req: r, frame: frame})
	return r
}

// sweep recycles completed journal writes (requests and frames) from the
// submission-order front.
func (o *Journal) sweep() {
	for len(o.out) > 0 && o.out[0].req.Done != nil && o.out[0].req.Done.Fired() {
		or := o.out[0]
		o.out[0] = outReq{}
		o.out = o.out[1:]
		o.putFrame(or.frame)
		o.drv.Release(or.req)
	}
	if len(o.out) == 0 && cap(o.out) > 64 {
		o.out = nil
	}
}

// ensureSpace returns a region-relative offset where a transaction of
// `size` fragments fits, flushing the oldest journaled buffers and
// advancing the durable tail as needed.
func (o *Journal) ensureSpace(p *sim.Proc, size int32) int32 {
	if size > o.frags-1 {
		panic("ordering: journal transaction larger than the region")
	}
	for {
		if off, ok := o.place(size); ok {
			return off
		}
		if o.reclaim(p) {
			continue
		}
		o.flushOldest(p)
	}
}

// place finds a spot for `size` fragments between the durable tail and
// the head, honouring the no-straddle rule (wrap to offset 1).
func (o *Journal) place(size int32) (int32, bool) {
	if len(o.txns) == 0 {
		if o.head+size > o.frags {
			return 1, true
		}
		return o.head, true
	}
	tail := o.txns[0].off
	switch {
	case o.head == tail: // full
		return 0, false
	case o.head > tail:
		if o.head+size <= o.frags {
			return o.head, true
		}
		if 1+size <= tail {
			o.Wraps++
			return 1, true
		}
		return 0, false
	default: // head < tail
		if o.head+size <= tail {
			return o.head, true
		}
		return 0, false
	}
}

// reclaim pops retired transactions off the tail; when any space was
// freed it rewrites the durable header (synchronously) before returning,
// so replay never scans reclaimed-and-reused fragments.
func (o *Journal) reclaim(p *sim.Proc) bool {
	popped := false
	for len(o.txns) > 0 && o.txns[0].retired {
		t := o.txns[0]
		o.txns[0] = nil
		o.txns = o.txns[1:]
		o.txnFree = append(o.txnFree, t)
		popped = true
	}
	if !popped {
		return false
	}
	if len(o.txns) == 0 && cap(o.txns) > 64 {
		o.txns = nil
	}
	tailSeq, tailOff := o.nextSeq, o.head
	if len(o.txns) > 0 {
		tailSeq, tailOff = o.txns[0].seq, o.txns[0].off
	}
	o.writeHeader(p, tailSeq, tailOff)
	return true
}

// writeHeader rewrites the durable journal header and waits for it: space
// behind the new tail must not be reused before the tail is durable.
func (o *Journal) writeHeader(p *sim.Proc, tailSeq uint64, tailOff int32) {
	if tailSeq == o.durTailSeq && tailOff == o.durTailOff {
		return
	}
	frame := o.getFrame(1)
	jlog.EncodeHeader(frame, jlog.Header{TailSeq: tailSeq, TailOff: tailOff})
	clear(frame[jlog.SectorSize:])
	r := o.drv.AllocRequest()
	r.Op = disk.Write
	r.LBN = int64(o.start) * cache.SectorsPerFrag
	r.Count = len(frame) / disk.SectorSize
	r.Data = frame
	o.drv.Submit(r)
	r.Done.Wait(p)
	o.putFrame(frame)
	o.drv.Release(r)
	o.durTailSeq, o.durTailOff = tailSeq, tailOff
	o.HeaderWrites++
}

// flushOldest forces the oldest live transaction's buffer to its home
// location so the transaction retires (journal backpressure).
func (o *Journal) flushOldest(p *sim.Proc) {
	t := o.txns[0] // reclaim failed, so the front is live
	c := o.fs.Cache()
	b := c.Lookup(t.frag)
	if b == nil || (!b.Dirty && !b.InFlight()) {
		// Buffer gone (freed) or its state already durable: the records
		// are moot.
		o.retireFrag(t.frag)
		return
	}
	o.Flushes++
	c.Bdwrite(b)
	c.Bwrite(p, b) // WriteDone retires the records
	if !t.retired {
		// The write failed terminally (faulted disk): the home state is
		// lost either way, so retire rather than spin. Recovery degrades
		// to fsck repair, like any lost write.
		o.ForcedRetires++
		o.retireFrag(t.frag)
	}
}

func (o *Journal) newTxn() *jtxn {
	if n := len(o.txnFree); n > 0 {
		t := o.txnFree[n-1]
		o.txnFree[n-1] = nil
		o.txnFree = o.txnFree[:n-1]
		return t
	}
	return &jtxn{}
}

func (o *Journal) getFrame(nfrags int) []byte {
	if nfrags >= 1 && nfrags < len(o.frames) {
		if fl := o.frames[nfrags]; len(fl) > 0 {
			f := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			o.frames[nfrags] = fl[:len(fl)-1]
			return f
		}
	}
	return make([]byte, nfrags*ffs.FragSize)
}

func (o *Journal) putFrame(f []byte) {
	nfrags := len(f) / ffs.FragSize
	if nfrags >= 1 && nfrags < len(o.frames) && len(f) == nfrags*ffs.FragSize {
		o.frames[nfrags] = append(o.frames[nfrags], f)
	}
}

// AllocInit implements ffs.Ordering (journal the initialized block for
// directories, indirect blocks, and data under allocation-initialization).
func (o *Journal) AllocInit(p *sim.Proc, rec *ffs.AllocRec) {
	if rec.IsDir || rec.IsIndir || rec.FS.Config().AllocInit {
		o.stable(p, rec.NewBuf)
	} else {
		rec.FS.Cache().Bdwrite(rec.NewBuf)
	}
}

// AllocPtr implements ffs.Ordering: the retargeting owner write is
// journaled, so replay reinstates the pointer switch before any vacated
// fragment could be seen with two owners (rule 2).
func (o *Journal) AllocPtr(p *sim.Proc, rec *ffs.AllocRec) {
	o.stable(p, rec.OwnerBuf)
	if rec.MovedFrom != nil {
		rec.FS.ApplyFree(p, &ffs.FreeRec{FS: rec.FS, Frags: []ffs.FragRun{*rec.MovedFrom}})
	}
}

// AddInode implements ffs.Ordering.
func (o *Journal) AddInode(p *sim.Proc, rec *ffs.LinkRec) { o.stable(p, rec.InoBuf) }

// AddEntry implements ffs.Ordering.
func (o *Journal) AddEntry(p *sim.Proc, rec *ffs.LinkRec) { o.stable(p, rec.DirBuf) }

// RemoveEntry implements ffs.Ordering.
func (o *Journal) RemoveEntry(p *sim.Proc, rec *ffs.RemRec) {
	o.stable(p, rec.DirBuf)
	rec.FS.FinishRemove(p, rec)
}

// FreeBlocks implements ffs.Ordering: the cleared owner is journaled
// before the fragments become reusable (nullify-before-reuse on replay).
func (o *Journal) FreeBlocks(p *sim.Proc, rec *ffs.FreeRec) {
	o.stable(p, rec.OwnerBuf)
	rec.FS.ApplyFree(p, rec)
}

// MetaUpdate implements ffs.Ordering.
func (o *Journal) MetaUpdate(p *sim.Proc, b *cache.Buf) { o.fs.Cache().Bdwrite(b) }

// DataWrite implements ffs.Ordering.
func (o *Journal) DataWrite(p *sim.Proc, b *cache.Buf) { o.fs.Cache().Bdwrite(b) }
