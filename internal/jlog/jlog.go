// Package jlog defines the on-disk wrapping journal format used by the
// Journaling ordering scheme and replayed by fsck recovery.
//
// The journal occupies a reserved fragment region [JournalStart,
// JournalStart+JournalFrags) between the fragment bitmap and the data
// region (see ffs.Format). Region-relative fragment 0 holds the durable
// header; transactions are laid out at offsets >= 1 as
//
//	[ begin frag | payload frags ... | commit frag ]
//
// A transaction that does not fit before the region end wraps to offset 1
// (transactions never straddle the region boundary). All deciding fields
// of every record live in sector 0 of their fragment, so a torn write can
// never leave a half-valid record: the commit either landed (sector 0
// carries the magic, sequence number, and checksum) or it did not.
//
// Replay trusts only the chain: starting from the durable header's
// (tailSeq, tailOff), each transaction must carry the expected sequence
// number and a commit whose CRC32 matches the begin sector and payload
// bytes. The first failure stops the scan — later transactions cannot be
// durable because each commit write depends on its predecessor.
//
// Every encoder writes into a caller-provided buffer and allocates
// nothing; the commit hot path is covered by an AllocsPerRun == 0 guard.
package jlog

import (
	"encoding/binary"
	"hash/crc32"
)

// Geometry constants (mirroring cache/ffs; jlog stays dependency-free so
// both fsck and ordering can import it).
const (
	FragSize   = 1024
	SectorSize = 512
)

// Record magics ("MJ" = metaupdate journal).
const (
	HeaderMagic uint32 = 0x4d4a4801 // "MJH" 1
	BeginMagic  uint32 = 0x4d4a4201 // "MJB" 1
	CommitMagic uint32 = 0x4d4a4301 // "MJC" 1
)

// MaxHomes is the largest number of home runs one transaction can carry:
// the begin record's fixed header is 20 bytes and each home run costs 12,
// all confined to sector 0. The hooks journal at most three buffers per
// transaction, so the cap is generous.
const MaxHomes = (SectorSize - beginFixed) / homeSize

const (
	headerSize = 20 // magic | tailSeq | tailOff | crc
	beginFixed = 20 // magic | seq | nbufs | payloadFrags
	homeSize   = 12 // homeFrag int64 | nfrags uint32
	commitSize = 20 // magic | seq | payloadFrags | crc
)

// Header is the durable journal header in region fragment 0. It is
// rewritten synchronously whenever the tail advances past reclaimed space,
// never as part of normal transaction commit.
type Header struct {
	TailSeq uint64 // sequence number replay expects at TailOff
	TailOff int32  // region-relative fragment of the oldest live txn
}

// HomeRun names one journaled buffer image: the home fragment it belongs
// at and its length in fragments. Payload images are concatenated in home
// order.
type HomeRun struct {
	Frag   int64
	NFrags int32
}

// EncodeHeader writes h into dst (at least SectorSize bytes). Zero-alloc.
func EncodeHeader(dst []byte, h Header) {
	le := binary.LittleEndian
	le.PutUint32(dst[0:], HeaderMagic)
	le.PutUint64(dst[4:], h.TailSeq)
	le.PutUint32(dst[12:], uint32(h.TailOff))
	le.PutUint32(dst[16:], crc32.ChecksumIEEE(dst[0:16]))
	clearTail(dst[headerSize:SectorSize])
}

// DecodeHeader parses a header sector; ok is false when the magic or CRC
// does not match (unformatted or corrupted journal).
func DecodeHeader(src []byte) (Header, bool) {
	le := binary.LittleEndian
	if len(src) < headerSize || le.Uint32(src[0:]) != HeaderMagic {
		return Header{}, false
	}
	if crc32.ChecksumIEEE(src[0:16]) != le.Uint32(src[16:]) {
		return Header{}, false
	}
	return Header{TailSeq: le.Uint64(src[4:]), TailOff: int32(le.Uint32(src[12:]))}, true
}

// EncodeBegin writes the begin record for (seq, homes) into dst (at least
// SectorSize bytes) and returns the payload size in fragments. Zero-alloc.
func EncodeBegin(dst []byte, seq uint64, homes []HomeRun) int32 {
	if len(homes) > MaxHomes {
		panic("jlog: too many home runs for one transaction")
	}
	le := binary.LittleEndian
	le.PutUint32(dst[0:], BeginMagic)
	le.PutUint64(dst[4:], seq)
	le.PutUint32(dst[12:], uint32(len(homes)))
	var payload int32
	off := beginFixed
	for _, h := range homes {
		le.PutUint64(dst[off:], uint64(h.Frag))
		le.PutUint32(dst[off+8:], uint32(h.NFrags))
		off += homeSize
		payload += h.NFrags
	}
	le.PutUint32(dst[16:], uint32(payload))
	clearTail(dst[off:SectorSize])
	return payload
}

// DecodeBegin parses a begin sector, appending the home runs to homes (a
// reusable scratch slice). ok is false when the magic is absent or the
// record is malformed.
func DecodeBegin(src []byte, homes []HomeRun) (seq uint64, payloadFrags int32, out []HomeRun, ok bool) {
	le := binary.LittleEndian
	if len(src) < beginFixed || le.Uint32(src[0:]) != BeginMagic {
		return 0, 0, homes, false
	}
	seq = le.Uint64(src[4:])
	nbufs := int(le.Uint32(src[12:]))
	payloadFrags = int32(le.Uint32(src[16:]))
	if nbufs > MaxHomes || len(src) < beginFixed+nbufs*homeSize {
		return 0, 0, homes, false
	}
	var sum int32
	off := beginFixed
	for i := 0; i < nbufs; i++ {
		h := HomeRun{
			Frag:   int64(le.Uint64(src[off:])),
			NFrags: int32(le.Uint32(src[off+8:])),
		}
		if h.NFrags <= 0 || h.Frag < 0 {
			return 0, 0, homes, false
		}
		homes = append(homes, h)
		sum += h.NFrags
		off += homeSize
	}
	if sum != payloadFrags {
		return 0, 0, homes, false
	}
	return seq, payloadFrags, homes, true
}

// Checksum computes the commit checksum over the begin sector and the
// payload bytes. Zero-alloc.
func Checksum(beginSector, payload []byte) uint32 {
	sum := crc32.ChecksumIEEE(beginSector[:SectorSize])
	return crc32.Update(sum, crc32.IEEETable, payload)
}

// EncodeCommit writes the commit record into dst (at least SectorSize
// bytes). Zero-alloc.
func EncodeCommit(dst []byte, seq uint64, payloadFrags int32, sum uint32) {
	le := binary.LittleEndian
	le.PutUint32(dst[0:], CommitMagic)
	le.PutUint64(dst[4:], seq)
	le.PutUint32(dst[12:], uint32(payloadFrags))
	le.PutUint32(dst[16:], sum)
	clearTail(dst[commitSize:SectorSize])
}

// DecodeCommit parses a commit sector.
func DecodeCommit(src []byte) (seq uint64, payloadFrags int32, sum uint32, ok bool) {
	le := binary.LittleEndian
	if len(src) < commitSize || le.Uint32(src[0:]) != CommitMagic {
		return 0, 0, 0, false
	}
	return le.Uint64(src[4:]), int32(le.Uint32(src[12:])), le.Uint32(src[16:]), true
}

// TxnFrags returns the whole-region footprint of a transaction with the
// given payload size: begin + payload + commit.
func TxnFrags(payloadFrags int32) int32 { return payloadFrags + 2 }

func clearTail(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Replay scans the journal region of a crashed media image and applies
// every committed transaction's buffer images to their home fragments, in
// sequence order. It returns the number of transactions applied. The scan
// is read-only over the journal region (the header is not rewritten), so
// replaying an already-replayed image applies the same bytes again — a
// byte-level no-op.
//
// journalStart/journalFrags come from the superblock; a zero-sized region
// means no journal (old images), and Replay applies nothing.
func Replay(img []byte, journalStart, journalFrags int32) int {
	if journalFrags < 2 {
		return 0
	}
	region := img[int64(journalStart)*FragSize : int64(journalStart+journalFrags)*FragSize]
	hdr, ok := DecodeHeader(region[:SectorSize])
	if !ok {
		return 0
	}
	type txn struct {
		homes   []HomeRun
		payload []byte
	}
	var txns []txn
	var scratch []HomeRun
	seq, off := hdr.TailSeq, hdr.TailOff
	for {
		cand, ok := replayOne(region, journalFrags, off, seq, scratch[:0])
		if !ok && off != 1 {
			// The writer may have wrapped: the next transaction starts at
			// offset 1 when it did not fit before the region end.
			cand, ok = replayOne(region, journalFrags, 1, seq, scratch[:0])
		}
		if !ok {
			break
		}
		txns = append(txns, txn{homes: append([]HomeRun(nil), cand.homes...), payload: cand.payload})
		scratch = cand.homes[:0]
		off = cand.next
		seq++
	}
	for _, t := range txns {
		at := int64(0)
		for _, h := range t.homes {
			n := int64(h.NFrags) * FragSize
			copy(img[h.Frag*FragSize:], t.payload[at:at+n])
			at += n
		}
	}
	return len(txns)
}

// replayCand is one validated transaction during the scan.
type replayCand struct {
	homes   []HomeRun
	payload []byte
	next    int32 // region-relative offset just past the commit frag
}

// replayOne validates the transaction at region-relative offset off with
// the expected sequence number. The payload slice aliases the image.
func replayOne(region []byte, journalFrags, off int32, want uint64, scratch []HomeRun) (replayCand, bool) {
	if off < 1 || off+2 > journalFrags {
		return replayCand{}, false
	}
	beginSector := region[int64(off)*FragSize : int64(off)*FragSize+SectorSize]
	seq, payloadFrags, homes, ok := DecodeBegin(beginSector, scratch)
	if !ok || seq != want {
		return replayCand{}, false
	}
	end := off + 1 + payloadFrags // commit frag offset
	if payloadFrags < 0 || end+1 > journalFrags {
		return replayCand{}, false
	}
	payload := region[int64(off+1)*FragSize : int64(end)*FragSize]
	commitSector := region[int64(end)*FragSize : int64(end)*FragSize+SectorSize]
	cseq, cpf, sum, ok := DecodeCommit(commitSector)
	if !ok || cseq != want || cpf != payloadFrags {
		return replayCand{}, false
	}
	if Checksum(beginSector, payload) != sum {
		return replayCand{}, false
	}
	return replayCand{homes: homes, payload: payload, next: end + 1}, true
}
