package jlog

import (
	"bytes"
	"testing"
)

// putTxn lays out one committed transaction at region-relative offset off
// and returns the offset just past its commit fragment.
func putTxn(region []byte, off int32, seq uint64, homes []HomeRun, payload []byte) int32 {
	begin := region[int64(off)*FragSize:]
	pf := EncodeBegin(begin, seq, homes)
	copy(region[int64(off+1)*FragSize:], payload)
	sum := Checksum(begin[:SectorSize], payload)
	EncodeCommit(region[int64(off+1+pf)*FragSize:], seq, pf, sum)
	return off + 2 + pf
}

func TestHeaderRoundTrip(t *testing.T) {
	buf := make([]byte, FragSize)
	want := Header{TailSeq: 0xdeadbeefcafe, TailOff: 37}
	EncodeHeader(buf, want)
	got, ok := DecodeHeader(buf)
	if !ok || got != want {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, want)
	}
	buf[9] ^= 1 // flip one tailSeq bit: the CRC must catch it
	if _, ok := DecodeHeader(buf); ok {
		t.Fatal("corrupted header decoded as valid")
	}
}

func TestBeginRoundTrip(t *testing.T) {
	buf := make([]byte, FragSize)
	homes := []HomeRun{{Frag: 44, NFrags: 2}, {Frag: 1000, NFrags: 1}}
	pf := EncodeBegin(buf, 9, homes)
	if pf != 3 {
		t.Fatalf("payload frags = %d, want 3", pf)
	}
	seq, gotPF, out, ok := DecodeBegin(buf, nil)
	if !ok || seq != 9 || gotPF != 3 || len(out) != 2 || out[0] != homes[0] || out[1] != homes[1] {
		t.Fatalf("round trip: seq=%d pf=%d homes=%v ok=%v", seq, gotPF, out, ok)
	}
	if TxnFrags(pf) != 5 {
		t.Fatalf("TxnFrags(%d) = %d, want 5", pf, TxnFrags(pf))
	}
}

// TestTornCommitDiscarded is the torn-write pin for the commit record: a
// crash may leave any byte prefix of the commit fragment durable, with the
// remainder holding whatever was on the media before — here, adversarially,
// a stale but well-formed commit record from a previous journal lap whose
// checksum bytes all differ from the real one. For every prefix shorter
// than the full commit record the transaction must be discarded whole: zero
// transactions replayed and the image untouched. Once the record is
// complete the transaction applies in full. There is no prefix length that
// partially applies.
func TestTornCommitDiscarded(t *testing.T) {
	const jFrags = 8
	const homeFrag = 10
	pristine := make([]byte, 12*FragSize)
	old := bytes.Repeat([]byte{0xAA}, FragSize)
	copy(pristine[homeFrag*FragSize:], old)
	EncodeHeader(pristine, Header{TailSeq: 7, TailOff: 1})
	payload := make([]byte, FragSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	putTxn(pristine[:jFrags*FragSize], 1, 7, []HomeRun{{Frag: homeFrag, NFrags: 1}}, payload)
	const commitStart = 3 * FragSize // begin at frag 1, payload at 2, commit at 3
	goodCommit := append([]byte(nil), pristine[commitStart:commitStart+FragSize]...)
	realSum, _, _, _ := func() (uint32, uint64, int32, bool) {
		seq, pf, sum, ok := DecodeCommit(goodCommit)
		return sum, seq, pf, ok
	}()
	stale := make([]byte, FragSize)
	EncodeCommit(stale, 3, 1, ^realSum)

	for k := 0; k <= FragSize; k++ {
		img := append([]byte(nil), pristine...)
		copy(img[commitStart:], stale)
		copy(img[commitStart:], goodCommit[:k])
		before := append([]byte(nil), img...)
		n := Replay(img, 0, jFrags)
		if k >= commitSize {
			if n != 1 {
				t.Fatalf("prefix %d: replayed %d txns, want 1", k, n)
			}
			if !bytes.Equal(img[homeFrag*FragSize:(homeFrag+1)*FragSize], payload) {
				t.Fatalf("prefix %d: home fragment not the journaled image", k)
			}
		} else {
			if n != 0 {
				t.Fatalf("prefix %d: torn commit replayed %d txns, want 0", k, n)
			}
			if !bytes.Equal(img, before) {
				t.Fatalf("prefix %d: replay mutated the image with no committed txn", k)
			}
		}
	}
}

// TestTornBeginDiscarded: the begin sector is covered by the commit
// checksum, so a tear anywhere inside it — even past the record's own
// fields — must discard the transaction. Only the full first sector makes
// it valid (the fragment's second sector is never read).
func TestTornBeginDiscarded(t *testing.T) {
	const jFrags = 8
	const homeFrag = 10
	pristine := make([]byte, 12*FragSize)
	EncodeHeader(pristine, Header{TailSeq: 2, TailOff: 1})
	payload := bytes.Repeat([]byte{0x5C}, FragSize)
	putTxn(pristine[:jFrags*FragSize], 1, 2, []HomeRun{{Frag: homeFrag, NFrags: 1}}, payload)
	const beginStart = 1 * FragSize
	goodBegin := append([]byte(nil), pristine[beginStart:beginStart+FragSize]...)

	for k := 0; k <= SectorSize; k += 16 {
		img := append([]byte(nil), pristine...)
		// Pre-write media content: all ones, so every short prefix leaves a
		// suffix that breaks the commit's checksum over the begin sector.
		for i := beginStart; i < beginStart+SectorSize; i++ {
			img[i] = 0xFF
		}
		copy(img[beginStart:], goodBegin[:k])
		n := Replay(img, 0, jFrags)
		want := 0
		if k >= SectorSize {
			want = 1
		}
		if n != want {
			t.Fatalf("begin prefix %d: replayed %d txns, want %d", k, n, want)
		}
	}
}

// TestReplayWrapScan: a transaction that does not fit before the region end
// wraps to offset 1; the replay scan must follow it there and apply both in
// sequence order.
func TestReplayWrapScan(t *testing.T) {
	const jFrags = 8
	const homeFrag = 20
	img := make([]byte, 24*FragSize)
	region := img[:jFrags*FragSize]
	EncodeHeader(img, Header{TailSeq: 5, TailOff: 5})
	p1 := bytes.Repeat([]byte{0x11}, FragSize)
	p2 := bytes.Repeat([]byte{0x22}, FragSize)
	putTxn(region, 5, 5, []HomeRun{{Frag: homeFrag, NFrags: 1}}, p1) // frags 5..7
	putTxn(region, 1, 6, []HomeRun{{Frag: homeFrag, NFrags: 1}}, p2) // wrapped: frags 1..3
	if n := Replay(img, 0, jFrags); n != 2 {
		t.Fatalf("replayed %d txns, want 2 (wrap not followed)", n)
	}
	if !bytes.Equal(img[homeFrag*FragSize:(homeFrag+1)*FragSize], p2) {
		t.Fatal("home fragment does not hold the later transaction's image")
	}
}

// TestAllocFreeCommitPath pins the package's contract: every encoder on
// the transaction commit hot path writes into caller-provided buffers and
// allocates nothing.
func TestAllocFreeCommitPath(t *testing.T) {
	begin := make([]byte, FragSize)
	commit := make([]byte, FragSize)
	hdr := make([]byte, FragSize)
	payload := make([]byte, 2*FragSize)
	homes := []HomeRun{{Frag: 100, NFrags: 2}}
	allocs := testing.AllocsPerRun(200, func() {
		pf := EncodeBegin(begin, 42, homes)
		sum := Checksum(begin, payload[:int64(pf)*FragSize])
		EncodeCommit(commit, 42, pf, sum)
		EncodeHeader(hdr, Header{TailSeq: 42, TailOff: 9})
	})
	if allocs != 0 {
		t.Fatalf("commit encode path allocates %.1f per txn, want 0", allocs)
	}
}
