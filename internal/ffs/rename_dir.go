package ffs

import (
	"metaupdate/internal/sim"
)

// RenameDir moves directory sname from sdir into ddir as dname. The moved
// directory's ".." is retargeted; link counts move with it (the old parent
// loses a reference, the new parent gains one). All changes ride the same
// ordering machinery as file renames: the ".." slot is overwritten in
// place (sector-atomic, so rule 1 holds for the pair), the overwrite is an
// AddEntry for the new parent plus a RemoveEntry for the old one, and the
// old parent's link count falls only after the retargeted ".." could be
// durable.
//
// The destination must not exist, and ddir must not be inside the moved
// directory (the classic rename cycle check).
func (fs *FS) RenameDir(p *sim.Proc, sdir Ino, sname string, ddir Ino, dname string) error {
	fs.count("renamedir")
	fs.charge(p, fs.cfg.Costs.Syscall)
	if err := validName(dname); err != nil {
		return err
	}
	if sdir == ddir {
		// Pure rename within one directory: no ".." or link count changes.
		return fs.renameDirSameParent(p, sdir, sname, dname)
	}
	fs.lockPair(p, sdir, ddir)
	defer fs.unlockPair(sdir, ddir)

	child, sdb, soff, err := fs.lookupLocked(p, sdir, sname)
	if err != nil {
		return err
	}
	defer fs.rele(sdb)
	cip, cib, _, err := fs.getInode(p, child)
	if err != nil {
		return err
	}
	defer fs.rele(cib)
	if !cip.IsDir() {
		return ErrNotDir
	}
	// Cycle check: ddir must not be (inside) the moved directory.
	if child == ddir {
		return ErrExist
	}
	inside, err := fs.isAncestor(p, child, ddir)
	if err != nil {
		return err
	}
	if inside {
		return ErrNotEmpty // EINVAL in POSIX; reuse the closest error
	}
	if _, db, _, derr := fs.lookupLocked(p, ddir, dname); derr == nil {
		fs.rele(db)
		return ErrExist
	} else if derr != ErrNotExist {
		return derr
	}

	// 1. The child gains a transient extra reference so the normal
	// add-then-remove flow keeps its count safe throughout (exactly the
	// file-rename pattern).
	fs.cache.PrepareModify(p, cib)
	cip2, _, cioff2, err := fs.getInode(p, child)
	if err != nil {
		return err
	}
	fs.rele(cib) // getInode re-held it; drop the duplicate
	cip2.Nlink++
	fs.putInode(p, &cip2, cib, cioff2)
	addRec := &LinkRec{FS: fs, Ino: child, InoBuf: cib, DirIno: ddir}
	fs.ord.AddInode(p, addRec)
	_ = cip

	// 2. The new parent gains the ".." reference.
	dip, dib, dioff, err := fs.getInode(p, ddir)
	if err != nil {
		return err
	}
	defer fs.rele(dib)
	fs.cache.PrepareModify(p, dib)
	dip.Nlink++
	fs.putInode(p, &dip, dib, dioff)
	newParentRec := &LinkRec{FS: fs, Ino: ddir, InoBuf: dib, DirIno: child}
	fs.ord.AddInode(p, newParentRec)

	// 3. Entry in the new parent.
	db, off, err := fs.dirAddEntry(p, ddir, dname, child, FtypeDir)
	if err != nil {
		return err
	}
	defer fs.rele(db)
	addRec.DirBuf, addRec.EntryOff = db, off
	fs.ord.AddEntry(p, addRec)

	// 4. Retarget "..": an in-place, sector-atomic overwrite in the
	// child's first block — an add (new parent) plus a remove (old
	// parent) at the same offset.
	cip3, _, _, err := fs.getInode(p, child)
	if err != nil {
		return err
	}
	fs.rele(cib)
	cb, err := fs.readBlock(p, child, &cip3, cib, cioff2, 0)
	if err != nil {
		return err
	}
	cb.Hold()
	defer fs.rele(cb)
	d, found, _ := findEntry(cb.Data[:DirChunk], "..")
	if !found {
		return ErrNotDir
	}
	fs.charge(p, fs.cfg.Costs.DirModify)
	fs.cache.PrepareModify(p, cb)
	setPtr(cb.Data, d.Off, int32(ddir))
	newParentRec.DirBuf, newParentRec.EntryOff = cb, d.Off
	fs.ord.AddEntry(p, newParentRec)
	remDotdot := &RemRec{FS: fs, Ino: sdir, DirIno: child, DirBuf: cb, EntryOff: d.Off,
		InoLocked: true, LinkOnly: true}
	fs.ord.RemoveEntry(p, remDotdot)

	// 5. Remove the old entry; the deferred half drops the child's
	// transient extra reference.
	fs.charge(p, fs.cfg.Costs.DirModify)
	fs.cache.PrepareModify(p, sdb)
	removeEntryInData(sdb.Data, soff)
	remOld := &RemRec{FS: fs, Ino: child, DirIno: sdir, DirBuf: sdb, EntryOff: soff,
		DirLocked: true, LinkOnly: true}
	fs.ord.RemoveEntry(p, remOld)
	return nil
}

// renameDirSameParent renames a directory within one parent: only the
// entry changes, handled exactly like a file rename minus link counts.
func (fs *FS) renameDirSameParent(p *sim.Proc, dir Ino, sname, dname string) error {
	fs.lockInode(p, dir)
	defer fs.unlockInode(dir)
	child, sdb, soff, err := fs.lookupLocked(p, dir, sname)
	if err != nil {
		return err
	}
	defer fs.rele(sdb)
	cip, cib, cioff, err := fs.getInode(p, child)
	if err != nil {
		return err
	}
	defer fs.rele(cib)
	if !cip.IsDir() {
		return ErrNotDir
	}
	if _, db, _, derr := fs.lookupLocked(p, dir, dname); derr == nil {
		fs.rele(db)
		return ErrExist
	} else if derr != ErrNotExist {
		return derr
	}
	// Transient extra reference, then add new entry, then remove old.
	fs.cache.PrepareModify(p, cib)
	cip.Nlink++
	fs.putInode(p, &cip, cib, cioff)
	addRec := &LinkRec{FS: fs, Ino: child, InoBuf: cib, DirIno: dir}
	fs.ord.AddInode(p, addRec)
	db, off, err := fs.dirAddEntry(p, dir, dname, child, FtypeDir)
	if err != nil {
		return err
	}
	defer fs.rele(db)
	addRec.DirBuf, addRec.EntryOff = db, off
	fs.ord.AddEntry(p, addRec)
	fs.charge(p, fs.cfg.Costs.DirModify)
	fs.cache.PrepareModify(p, sdb)
	removeEntryInData(sdb.Data, soff)
	rem := &RemRec{FS: fs, Ino: child, DirIno: dir, DirBuf: sdb, EntryOff: soff,
		DirLocked: true, LinkOnly: true}
	fs.ord.RemoveEntry(p, rem)
	return nil
}

// isAncestor reports whether `anc` appears on the ".." chain from `node`
// to the root. The caller must not hold locks on the chain (directory
// tree shape is stable under the caller's sdir/ddir locks for the rename
// use case).
func (fs *FS) isAncestor(p *sim.Proc, anc, node Ino) (bool, error) {
	for node != RootIno {
		if node == anc {
			return true, nil
		}
		ip, ib, ioff, err := fs.getInode(p, node)
		if err != nil {
			return false, err
		}
		if !ip.IsDir() {
			fs.rele(ib)
			return false, ErrNotDir
		}
		b, err := fs.readBlock(p, node, &ip, ib, ioff, 0)
		if err != nil {
			fs.rele(ib)
			return false, err
		}
		d, found, _ := findEntry(b.Data[:DirChunk], "..")
		fs.rele(ib)
		if !found {
			return false, ErrNotDir
		}
		node = d.Ino
	}
	return anc == RootIno, nil
}
