package ffs_test

import (
	"bytes"
	"fmt"
	"testing"

	"metaupdate/internal/ffs"
	"metaupdate/internal/ordering"
	"metaupdate/internal/sim"
)

func TestTruncateToZero(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		r.fs.WriteAt(p, ino, 0, fileData(1, 150<<10)) // with indirect
		if err := r.fs.Truncate(p, ino, 0); err != nil {
			t.Fatal(err)
		}
		ip, _ := r.fs.Stat(p, ino)
		if ip.Size != 0 || ip.Direct[0] != 0 || ip.Indir != 0 {
			t.Fatalf("inode not cleared: %+v", ip)
		}
		// Entry still exists; file reusable.
		if err := r.fs.WriteAt(p, ino, 0, fileData(2, 5000)); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 5000)
		if n, _ := r.fs.ReadAt(p, ino, 0, got); n != 5000 || !bytes.Equal(got, fileData(2, 5000)) {
			t.Fatal("rewrite after truncate failed")
		}
		r.fs.Sync(p)
	})
}

func TestTruncatePartialWithinDirect(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		data := fileData(1, 40000) // ~5 blocks
		r.fs.WriteAt(p, ino, 0, data)
		if err := r.fs.Truncate(p, ino, 12500); err != nil {
			t.Fatal(err)
		}
		ip, _ := r.fs.Stat(p, ino)
		if ip.Size != 12500 {
			t.Fatalf("size = %d", ip.Size)
		}
		if ip.Direct[2] != 0 || ip.Direct[4] != 0 {
			t.Fatal("pointers beyond new end not cleared")
		}
		got := make([]byte, 20000)
		n, err := r.fs.ReadAt(p, ino, 0, got)
		if err != nil || n != 12500 || !bytes.Equal(got[:n], data[:12500]) {
			t.Fatalf("surviving data wrong: n=%d err=%v", n, err)
		}
		// Freed space reusable after the surviving prefix.
		r.fs.Sync(p)
		g, _ := r.fs.Create(p, ffs.RootIno, "g")
		if err := r.fs.WriteAt(p, g, 0, fileData(3, 30000)); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTruncateGrowIsNoop(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		r.fs.WriteAt(p, ino, 0, fileData(1, 1000))
		if err := r.fs.Truncate(p, ino, 5000); err != nil {
			t.Fatal(err)
		}
		ip, _ := r.fs.Stat(p, ino)
		if ip.Size != 1000 {
			t.Fatalf("grow-truncate changed size to %d", ip.Size)
		}
	})
}

func TestTruncateErrors(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		dir, _ := r.fs.Mkdir(p, ffs.RootIno, "d")
		if err := r.fs.Truncate(p, dir, 0); err != ffs.ErrIsDir {
			t.Errorf("truncate of dir: %v", err)
		}
		big, _ := r.fs.Create(p, ffs.RootIno, "big")
		r.fs.WriteAt(p, big, 0, fileData(1, 150<<10))
		if err := r.fs.Truncate(p, big, 50000); err == nil {
			t.Error("partial truncate across indirect should fail")
		}
	})
}

func TestRenameDirAcrossParents(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		a, _ := r.fs.Mkdir(p, ffs.RootIno, "a")
		b, _ := r.fs.Mkdir(p, ffs.RootIno, "b")
		sub, _ := r.fs.Mkdir(p, a, "sub")
		f, _ := r.fs.Create(p, sub, "payload")
		r.fs.WriteAt(p, f, 0, fileData(1, 2000))

		if err := r.fs.RenameDir(p, a, "sub", b, "moved"); err != nil {
			t.Fatal(err)
		}
		// Old name gone, new name resolves, ".." retargeted.
		if _, err := r.fs.Lookup(p, a, "sub"); err != ffs.ErrNotExist {
			t.Fatal("old name survives")
		}
		got, err := r.fs.Lookup(p, b, "moved")
		if err != nil || got != sub {
			t.Fatalf("new name: %d %v", got, err)
		}
		dotdot, err := r.fs.Lookup(p, sub, "..")
		if err != nil || dotdot != b {
			t.Fatalf("'..' = %d, want %d", dotdot, b)
		}
		// Link counts: a back to 2, b now 3, sub still 2.
		aip, _ := r.fs.Stat(p, a)
		bip, _ := r.fs.Stat(p, b)
		sip, _ := r.fs.Stat(p, sub)
		if aip.Nlink != 2 || bip.Nlink != 3 || sip.Nlink != 2 {
			t.Fatalf("nlinks a=%d b=%d sub=%d, want 2/3/2", aip.Nlink, bip.Nlink, sip.Nlink)
		}
		// Contents intact.
		got2 := make([]byte, 2000)
		n, _ := r.fs.ReadAt(p, f, 0, got2)
		if n != 2000 || !bytes.Equal(got2, fileData(1, 2000)) {
			t.Fatal("payload damaged by directory move")
		}
		r.fs.Sync(p)
	})
}

func TestRenameDirSameParent(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		d, _ := r.fs.Mkdir(p, ffs.RootIno, "old")
		if err := r.fs.RenameDir(p, ffs.RootIno, "old", ffs.RootIno, "new"); err != nil {
			t.Fatal(err)
		}
		got, err := r.fs.Lookup(p, ffs.RootIno, "new")
		if err != nil || got != d {
			t.Fatalf("new name: %d %v", got, err)
		}
		ip, _ := r.fs.Stat(p, d)
		rip, _ := r.fs.Stat(p, ffs.RootIno)
		if ip.Nlink != 2 || rip.Nlink != 3 {
			t.Fatalf("nlinks dir=%d root=%d", ip.Nlink, rip.Nlink)
		}
	})
}

func TestRenameDirCycleRejected(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		a, _ := r.fs.Mkdir(p, ffs.RootIno, "a")
		bIno, _ := r.fs.Mkdir(p, a, "b")
		c, _ := r.fs.Mkdir(p, bIno, "c")
		// Moving "a" under its own grandchild must fail.
		if err := r.fs.RenameDir(p, ffs.RootIno, "a", c, "boom"); err == nil {
			t.Fatal("cycle-creating rename accepted")
		}
		// Moving "a" onto itself must fail too.
		if err := r.fs.RenameDir(p, ffs.RootIno, "a", a, "boom"); err == nil {
			t.Fatal("rename into itself accepted")
		}
	})
}

func TestRenameDirUnderEveryScheme(t *testing.T) {
	schemes := []struct {
		name string
		ord  ffs.Ordering
	}{
		{"noorder", ordering.NewNoOrder()},
		{"conventional", ordering.NewConventional()},
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			r := newRig(t, sc.ord, ffs.Config{})
			r.run(t, func(p *sim.Proc) {
				a, _ := r.fs.Mkdir(p, ffs.RootIno, "a")
				b, _ := r.fs.Mkdir(p, ffs.RootIno, "b")
				for i := 0; i < 3; i++ {
					d, err := r.fs.Mkdir(p, a, fmt.Sprintf("d%d", i))
					if err != nil {
						t.Fatal(err)
					}
					_ = d
					if err := r.fs.RenameDir(p, a, fmt.Sprintf("d%d", i), b, fmt.Sprintf("m%d", i)); err != nil {
						t.Fatal(err)
					}
				}
				r.fs.Sync(p)
				aip, _ := r.fs.Stat(p, a)
				bip, _ := r.fs.Stat(p, b)
				if aip.Nlink != 2 || bip.Nlink != 5 {
					t.Fatalf("nlinks a=%d b=%d, want 2/5", aip.Nlink, bip.Nlink)
				}
			})
			if n := r.c.HeldCount(); n != 0 {
				t.Fatalf("%d buffers held", n)
			}
		})
	}
}
