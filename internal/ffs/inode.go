package ffs

import (
	"encoding/binary"
)

// Mode values (a tiny subset of UNIX modes — just what metadata integrity
// cares about).
const (
	ModeFree uint16 = 0
	ModeFile uint16 = 0x8000
	ModeDir  uint16 = 0x4000
)

// Inode field offsets within the 128-byte on-disk inode. The int32 block
// pointers hold fragment numbers (the address of the first fragment of the
// block or fragment run); 0 means unallocated.
const (
	inoOffMode   = 0
	inoOffNlink  = 2
	inoOffSize   = 4  // uint64
	inoOffDirect = 12 // 12 * int32
	inoOffIndir  = 60 // int32
	inoOffDindir = 64 // int32
	inoOffGen    = 68 // uint32 generation (debugging aid)
)

// InoSizeOff is the byte offset of the size field within an encoded inode
// (exported for the soft-updates rollback machinery).
const InoSizeOff = inoOffSize

// InoDirectOff returns the byte offset of direct pointer i within an
// encoded inode.
func InoDirectOff(i int) int { return inoOffDirect + 4*i }

// InoIndirOff is the byte offset of the single-indirect pointer.
const InoIndirOff = inoOffIndir

// InoDindirOff is the byte offset of the double-indirect pointer.
const InoDindirOff = inoOffDindir

// Inode is the in-core (decoded) form of an on-disk inode.
type Inode struct {
	Mode   uint16
	Nlink  uint16
	Size   uint64
	Direct [NDirect]int32
	Indir  int32
	Dindir int32
	Gen    uint32
}

// IsDir reports whether the inode is a directory.
func (ip *Inode) IsDir() bool { return ip.Mode == ModeDir }

// Allocated reports whether the inode is in use.
func (ip *Inode) Allocated() bool { return ip.Mode != ModeFree }

func (ip *Inode) encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint16(b[inoOffMode:], ip.Mode)
	le.PutUint16(b[inoOffNlink:], ip.Nlink)
	le.PutUint64(b[inoOffSize:], ip.Size)
	for i, d := range ip.Direct {
		le.PutUint32(b[inoOffDirect+4*i:], uint32(d))
	}
	le.PutUint32(b[inoOffIndir:], uint32(ip.Indir))
	le.PutUint32(b[inoOffDindir:], uint32(ip.Dindir))
	le.PutUint32(b[inoOffGen:], ip.Gen)
}

func (ip *Inode) decode(b []byte) {
	le := binary.LittleEndian
	ip.Mode = le.Uint16(b[inoOffMode:])
	ip.Nlink = le.Uint16(b[inoOffNlink:])
	ip.Size = le.Uint64(b[inoOffSize:])
	for i := range ip.Direct {
		ip.Direct[i] = int32(le.Uint32(b[inoOffDirect+4*i:]))
	}
	ip.Indir = int32(le.Uint32(b[inoOffIndir:]))
	ip.Dindir = int32(le.Uint32(b[inoOffDindir:]))
	ip.Gen = le.Uint32(b[inoOffGen:])
}

// DecodeInode decodes an inode from raw bytes (used by fsck).
func DecodeInode(b []byte) Inode {
	var ip Inode
	ip.decode(b)
	return ip
}

// DecodeInodeInto decodes an inode from raw bytes in place, sparing the
// return-value copy on decode-heavy paths (fsck's incremental checker
// re-decodes every inode a delta touches, per check).
func DecodeInodeInto(ip *Inode, b []byte) { ip.decode(b) }

// EncodeInode encodes ip into b (used by tests and fsck repair).
func EncodeInode(ip *Inode, b []byte) { ip.encode(b) }

// lastBlockFrags returns how many fragments the final block of a file of
// the given size occupies (0 for empty files; BlockFrags when the size is
// an exact multiple of the block size is NOT returned — the final block is
// then a full block and this returns BlockFrags).
func lastBlockFrags(size uint64) int {
	if size == 0 {
		return 0
	}
	rem := size % BlockSize
	if rem == 0 {
		return BlockFrags
	}
	return int((rem + FragSize - 1) / FragSize)
}

// blocksOf returns the number of file blocks (of any size) a file of the
// given size has.
func blocksOf(size uint64) int {
	return int((size + BlockSize - 1) / BlockSize)
}
