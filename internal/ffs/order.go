package ffs

import (
	"metaupdate/internal/cache"
	"metaupdate/internal/sim"
)

// Ordering is the strategy interface implemented by the five metadata
// update schemes the paper compares (Conventional, Scheduler Flag,
// Scheduler Chains, Soft Updates, No Order).
//
// The file system calls the hooks at precisely the points where the paper's
// three ordering rules create update dependencies:
//
//	(1) never reset the old pointer to a resource before the new pointer
//	    has been set,
//	(2) never re-use a resource before nullifying all previous pointers,
//	(3) never point to a structure before it has been initialized.
//
// Call order within one structural change matters and is guaranteed by the
// file system:
//
//	block allocation: AllocInit (new block initialized in memory, pointer
//	    NOT yet set) -> pointer and size stored in owner -> AllocPtr.
//	link addition:    AddInode (inode initialized / link count bumped) ->
//	    entry stored in directory block -> AddEntry.
//	link removal:     entry cleared in directory block -> RemoveEntry; the
//	    scheme must (eventually) call FS.FinishRemove exactly once.
//	block freeing:    pointers cleared in owner buffer -> FreeBlocks; the
//	    scheme must (eventually) call FS.ApplyFree exactly once.
type Ordering interface {
	Name() string
	// Start attaches the scheme to a mounted file system.
	Start(fs *FS)
	// Hooks returns the buffer-cache hook implementation (soft updates
	// does its undo/redo there; other schemes return cache.NopHooks).
	Hooks() cache.Hooks

	AllocInit(p *sim.Proc, rec *AllocRec)
	AllocPtr(p *sim.Proc, rec *AllocRec)
	AddInode(p *sim.Proc, rec *LinkRec)
	AddEntry(p *sim.Proc, rec *LinkRec)
	RemoveEntry(p *sim.Proc, rec *RemRec)
	FreeBlocks(p *sim.Proc, rec *FreeRec)

	// MetaUpdate covers metadata changes with no ordering requirement
	// (bitmaps, timestamps, sizes); DataWrite covers file data.
	MetaUpdate(p *sim.Proc, b *cache.Buf)
	DataWrite(p *sim.Proc, b *cache.Buf)
}

// FragRun is a contiguous run of fragments.
type FragRun struct {
	Start int32
	N     int
}

// AllocRec describes one block (or fragment-run) allocation.
type AllocRec struct {
	FS *FS

	NewBuf   *cache.Buf // the new block's buffer, initialized in memory
	NewFrag  int32      // first fragment of the new run
	NewNFr   int        // run length in fragments
	IsDir    bool       // new block holds directory entries
	IsIndir  bool       // new block is an indirect pointer block
	DataInit []byte     // contents at AllocInit time (== NewBuf.Data)

	// Owner: where the pointer to the new block lives.
	OwnerBuf     *cache.Buf // inode table block, or indirect block
	OwnerIno     Ino        // inode that owns the pointer
	OwnerIsIndir bool       // pointer lives in an indirect block
	PtrOff       int        // byte offset of the int32 pointer in OwnerBuf.Data
	OldPtr       int32      // prior pointer value (non-zero for fragment moves)
	OldSize      uint64     // inode size before the allocation
	NewSize      uint64     // inode size after (undo target for soft updates)

	// MovedFrom is the fragment run vacated by a fragment extension that
	// had to move the tail to a new location; it must not be re-used until
	// the new pointer is safely on disk (rule 2).
	MovedFrom *FragRun

	// OldBuf is the buffer the new block's contents were copied from on a
	// fragment move (nil otherwise). The copied bytes carry the old
	// buffer's unmet ordering obligations — a scheme tracking per-write
	// dependencies must transfer them, because the new location no longer
	// overlaps the old one and the device's conflict ordering cannot cover
	// it.
	OldBuf *cache.Buf
}

// LinkRec describes one link addition (create, mkdir, link, rename target).
type LinkRec struct {
	FS *FS

	Ino      Ino
	InoBuf   *cache.Buf // inode table block holding Ino, already updated
	NewInode bool       // inode freshly allocated (vs. existing, for link)

	DirIno   Ino
	DirBuf   *cache.Buf // directory block; entry already stored (AddEntry)
	EntryOff int        // byte offset of the entry in DirBuf.Data
}

// RemRec describes one link removal.
type RemRec struct {
	FS *FS

	Ino      Ino // inode the removed entry pointed to
	DirIno   Ino
	DirBuf   *cache.Buf
	EntryOff int // offset the entry occupied

	// DirLocked reports whether the process calling FS.FinishRemove still
	// holds DirIno's inode lock (true on the synchronous path out of
	// unlink/rmdir/rename; false when a scheme defers the removal to a
	// workitem). FinishRemove uses it to avoid self-deadlock when it must
	// update the parent. InoLocked is the analogous hint for Ino itself
	// (directory rename removes a ".." reference while holding the old
	// parent's lock).
	DirLocked bool
	InoLocked bool

	// LinkOnly restricts FinishRemove to a link-count decrement even when
	// Ino is a directory (directory rename: the old parent loses its ".."
	// reference but is not itself being removed).
	LinkOnly bool

	// PendingAdd is set by the file system when the removed entry still
	// has an unresolved link-addition dependency in this scheme (only soft
	// updates sets up such state); the scheme may then cancel both — the
	// add and remove are serviced with no disk writes at all.
	PendingAdd bool
}

// FreeRec describes freed resources: fragment runs and, optionally, the
// inode itself (when a file is removed, mode has been cleared in OwnerBuf).
type FreeRec struct {
	FS *FS

	OwnerIno Ino
	OwnerBuf *cache.Buf // buffer whose pointers were cleared (inode block)
	Frags    []FragRun
	FreeIno  Ino // 0 if only blocks are being freed
}
