package ffs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntrySpaceAlignment(t *testing.T) {
	for namelen := 1; namelen <= 60; namelen++ {
		s := entrySpace(namelen)
		if s%4 != 0 {
			t.Fatalf("entrySpace(%d) = %d not 4-aligned", namelen, s)
		}
		if s < direntHdr+namelen {
			t.Fatalf("entrySpace(%d) = %d too small", namelen, s)
		}
	}
}

func TestInitDirChunksProducesEmptyChunks(t *testing.T) {
	b := make([]byte, 2*DirChunk)
	initDirChunks(b)
	for chunk := 0; chunk < len(b); chunk += DirChunk {
		d := readDirent(b, chunk)
		if d.Ino != 0 || d.Reclen != DirChunk {
			t.Fatalf("chunk %d: %+v", chunk, d)
		}
	}
	if got := listEntries(b); len(got) != 0 {
		t.Fatalf("fresh chunks list %d entries", len(got))
	}
}

func TestAddFindRemoveEntry(t *testing.T) {
	b := make([]byte, DirChunk)
	initDirChunks(b)
	off1, ok := addEntryInData(b, "alpha", 10, FtypeFile)
	if !ok {
		t.Fatal("add alpha failed")
	}
	off2, ok := addEntryInData(b, "beta", 11, FtypeDir)
	if !ok {
		t.Fatal("add beta failed")
	}
	if off1 == off2 {
		t.Fatal("entries share an offset")
	}
	d, found, _ := findEntry(b, "alpha")
	if !found || d.Ino != 10 || d.Ftype != FtypeFile {
		t.Fatalf("findEntry alpha = %+v %v", d, found)
	}
	removeEntryInData(b, off1)
	if _, found, _ := findEntry(b, "alpha"); found {
		t.Fatal("alpha survived removal")
	}
	if d, found, _ := findEntry(b, "beta"); !found || d.Ino != 11 {
		t.Fatal("beta damaged by alpha's removal")
	}
}

func TestRemoveFirstEntryOfChunk(t *testing.T) {
	b := make([]byte, DirChunk)
	initDirChunks(b)
	off, _ := addEntryInData(b, "first", 5, FtypeFile)
	if off != 0 {
		t.Fatalf("first entry at %d", off)
	}
	removeEntryInData(b, off)
	// The chunk head becomes a free entry owning its space; adding reuses it.
	off2, ok := addEntryInData(b, "reuse", 6, FtypeFile)
	if !ok || off2 != 0 {
		t.Fatalf("free chunk head not reused: off=%d ok=%v", off2, ok)
	}
}

func TestCoalescingReclaimsSpace(t *testing.T) {
	b := make([]byte, DirChunk)
	initDirChunks(b)
	var offs []int
	names := []string{"a1", "b2", "c3", "d4"}
	for i, n := range names {
		off, ok := addEntryInData(b, n, Ino(20+i), FtypeFile)
		if !ok {
			t.Fatal("add failed")
		}
		offs = append(offs, off)
	}
	// Remove the middle two; their space coalesces into predecessors.
	removeEntryInData(b, offs[1])
	removeEntryInData(b, offs[2])
	live := listEntries(b)
	if len(live) != 2 {
		t.Fatalf("%d live entries, want 2", len(live))
	}
	// A long name should now fit in the coalesced space.
	if _, ok := addEntryInData(b, "a-much-longer-name-needing-room", 99, FtypeFile); !ok {
		t.Fatal("coalesced space not reusable")
	}
}

func TestEntriesNeverCrossChunkBoundary(t *testing.T) {
	// Fill two chunks with entries and verify every entry lies within one
	// 512-byte chunk (the sector-atomicity invariant).
	b := make([]byte, 2*DirChunk)
	initDirChunks(b)
	i := 0
	for {
		name := "entryname" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if _, ok := addEntryInData(b, name, Ino(100+i), FtypeFile); !ok {
			break
		}
		i++
	}
	if i < 20 {
		t.Fatalf("only %d entries fit in two chunks", i)
	}
	for _, d := range listEntries(b) {
		start := d.Off / DirChunk
		end := (d.Off + entrySpace(len(d.Name)) - 1) / DirChunk
		if start != end {
			t.Fatalf("entry %q spans chunks (off %d)", d.Name, d.Off)
		}
	}
}

// Property: any sequence of adds/removes keeps the chunk structurally
// valid: reclens positive, 4-aligned, chunk-tiling, and live entries
// consistent with a shadow map.
func TestDirOpsStructuralInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, DirChunk)
		initDirChunks(b)
		shadow := map[string]Ino{}
		for step := 0; step < 200; step++ {
			name := "n" + string(rune('a'+rng.Intn(8)))
			if _, exists := shadow[name]; !exists && rng.Intn(2) == 0 {
				if _, ok := addEntryInData(b, name, Ino(rng.Intn(1000)+2), FtypeFile); ok {
					d, found, _ := findEntry(b, name)
					if !found {
						return false
					}
					shadow[name] = d.Ino
				}
			} else if exists {
				d, found, _ := findEntry(b, name)
				if !found || d.Ino != shadow[name] {
					return false
				}
				removeEntryInData(b, d.Off)
				delete(shadow, name)
			}
			// Structural check: entries tile each chunk exactly.
			off, seen := 0, 0
			for off < DirChunk {
				d := readDirent(b, off)
				if d.Reclen <= 0 || d.Reclen%4 != 0 || off+d.Reclen > DirChunk {
					return false
				}
				if d.Ino != 0 {
					seen++
				}
				off += d.Reclen
			}
			if off != DirChunk || seen != len(shadow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInodeCodecRoundTrip(t *testing.T) {
	ip := Inode{
		Mode: ModeFile, Nlink: 3, Size: 1234567,
		Indir: 4242, Dindir: 777, Gen: 9,
	}
	for i := range ip.Direct {
		ip.Direct[i] = int32(1000 + i)
	}
	b := make([]byte, InodeSize)
	ip.encode(b)
	var got Inode
	got.decode(b)
	if got != ip {
		t.Fatalf("round trip: %+v != %+v", got, ip)
	}
}

func TestInodeCodecQuick(t *testing.T) {
	f := func(mode, nlink uint16, size uint64, indir, dindir int32, gen uint32) bool {
		ip := Inode{Mode: mode, Nlink: nlink, Size: size, Indir: indir, Dindir: dindir, Gen: gen}
		b := make([]byte, InodeSize)
		ip.encode(b)
		var got Inode
		got.decode(b)
		return got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLastBlockFrags(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{
		{0, 0}, {1, 1}, {1024, 1}, {1025, 2}, {8191, 8}, {8192, 8},
		{8193, 1}, {16384, 8}, {20000, 4},
	}
	for _, c := range cases {
		if got := lastBlockFrags(c.size); got != c.want {
			t.Errorf("lastBlockFrags(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestBlocksOf(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{{0, 0}, {1, 1}, {8192, 1}, {8193, 2}, {81920, 10}}
	for _, c := range cases {
		if got := blocksOf(c.size); got != c.want {
			t.Errorf("blocksOf(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSuperblockCodec(t *testing.T) {
	sb := Superblock{Magic: Magic, TotalFrags: 98304, NInodes: 16384,
		InodeStart: 8, IBmapStart: 2056, FBmapStart: 2058, DataStart: 2072}
	b := make([]byte, FragSize)
	sb.encode(b)
	var got Superblock
	if err := got.decode(b); err != nil {
		t.Fatal(err)
	}
	if got != sb {
		t.Fatalf("%+v != %+v", got, sb)
	}
	b[0] = 0xFF
	if err := got.decode(b); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestInodeFragMapping(t *testing.T) {
	sb := Superblock{InodeStart: 8, NInodes: 1024}
	frag, off := sb.InodeFrag(0)
	if frag != 8 || off != 0 {
		t.Fatalf("inode 0 at frag %d off %d", frag, off)
	}
	frag, off = sb.InodeFrag(63)
	if frag != 8 || off != 63*InodeSize {
		t.Fatalf("inode 63 at frag %d off %d", frag, off)
	}
	frag, off = sb.InodeFrag(64)
	if frag != 8+BlockFrags || off != 0 {
		t.Fatalf("inode 64 at frag %d off %d", frag, off)
	}
}
