package ffs

import (
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// Fsync makes ino's current contents and inode durable before returning —
// the paper's SYNCIO semantics ("a SYNCIO flag that tells the file system
// to guarantee that changes are permanent before returning", section 6.1).
// Like POSIX fsync, it covers the file, not the directory entry naming it.
//
// The implementation works for every ordering scheme: it repeatedly writes
// the file's dirty blocks (data first, so soft-updates allocation
// dependencies resolve), then the inode-table block, and drains the
// workitem queue, until a pass finds nothing left to do. Soft updates may
// roll updates back in intermediate writes; the rounds converge because
// every completed write resolves the dependencies the next rollback would
// need (the scheduler-enforced schemes can instead "encounter lengthy
// delays when a long list of dependent writes has formed" — visible here
// as rounds that wait out the driver queue).
func (fs *FS) Fsync(p *sim.Proc, ino Ino) error {
	sp := fs.begin(p, obs.OpFsync)
	defer fs.end(p, sp)
	fs.count("fsync")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, ino)
	defer fs.unlockInode(ino)

	const maxRounds = 24
	for round := 0; round < maxRounds; round++ {
		ip, ib, _, err := fs.getInode(p, ino)
		if err != nil {
			return err
		}
		if !ip.Allocated() {
			fs.rele(ib)
			return ErrNotExist
		}
		wrote := false
		// Flush the file's resident dirty blocks (data and indirect).
		runs, err := fs.collectRuns(p, &ip)
		if err != nil {
			fs.rele(ib)
			return err
		}
		for _, run := range runs {
			b := fs.cache.Lookup(int64(run.Start))
			if b != nil && b.Dirty {
				b.Hold()
				werr := fs.cache.Bwrite(p, b)
				b.Unhold()
				if werr != nil {
					fs.rele(ib)
					return werr
				}
				wrote = true
			}
		}
		// Then the inode itself.
		if ib.Dirty {
			if werr := fs.cache.Bwrite(p, ib); werr != nil {
				fs.rele(ib)
				return werr
			}
			wrote = true
		}
		fs.rele(ib)
		// Deferred completions (soft updates workitems) may re-dirty
		// something; drain them before deciding we are done.
		fs.cache.RunWork(p)
		if !wrote {
			// Re-access the inode block: a scheme's lazy redo would
			// re-dirty it here; if it stays clean, the on-disk state
			// carries everything.
			_, ib2, _, err := fs.getInode(p, ino)
			if err != nil {
				return err
			}
			clean := !ib2.Dirty
			fs.rele(ib2)
			if clean {
				return nil
			}
		}
	}
	return nil
}
