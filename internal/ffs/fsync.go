package ffs

import (
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// DurabilityWaiter is an optional Ordering capability: a scheme that
// acknowledges durability asynchronously (group commit with completion
// notifications) can make Fsync ride its own notification machinery
// instead of the generic synchronous write-until-clean loop. WaitDurable
// must return only once the current contents of every listed fragment are
// on stable media (or have become moot — the buffer was dropped or a
// later write already carried the state down).
//
// The distinction is the whole point of decoupled durability: the generic
// loop's synchronous writes stall behind whatever dependency chain the
// driver has accumulated, so one fsync can wait out every pending naming
// operation; a waiter instead joins the next group-commit sweep, and many
// concurrent fsyncs are satisfied by the same batched writes.
type DurabilityWaiter interface {
	WaitDurable(p *sim.Proc, ino Ino, frags []int64)
}

// Fsync makes ino's current contents and inode durable before returning —
// the paper's SYNCIO semantics ("a SYNCIO flag that tells the file system
// to guarantee that changes are permanent before returning", section 6.1).
// Like POSIX fsync, it covers the file, not the directory entry naming it.
//
// The implementation works for every ordering scheme: it repeatedly writes
// the file's dirty blocks (data first, so soft-updates allocation
// dependencies resolve), then the inode-table block, and drains the
// workitem queue, until a pass finds nothing left to do. Soft updates may
// roll updates back in intermediate writes; the rounds converge because
// every completed write resolves the dependencies the next rollback would
// need (the scheduler-enforced schemes can instead "encounter lengthy
// delays when a long list of dependent writes has formed" — visible here
// as rounds that wait out the driver queue).
func (fs *FS) Fsync(p *sim.Proc, ino Ino) error {
	sp := fs.begin(p, obs.OpFsync)
	defer fs.end(p, sp)
	fs.count("fsync")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, ino)
	defer fs.unlockInode(ino)

	if dw, ok := fs.ord.(DurabilityWaiter); ok {
		return fs.fsyncAwait(p, ino, dw)
	}

	const maxRounds = 24
	for round := 0; round < maxRounds; round++ {
		ip, ib, _, err := fs.getInode(p, ino)
		if err != nil {
			return err
		}
		if !ip.Allocated() {
			fs.rele(ib)
			return ErrNotExist
		}
		wrote := false
		// Flush the file's resident dirty blocks (data and indirect).
		runs, err := fs.collectRuns(p, &ip)
		if err != nil {
			fs.rele(ib)
			return err
		}
		for _, run := range runs {
			b := fs.cache.Lookup(int64(run.Start))
			if b != nil && b.Dirty {
				b.Hold()
				werr := fs.cache.Bwrite(p, b)
				b.Unhold()
				if werr != nil {
					fs.rele(ib)
					return werr
				}
				wrote = true
			}
		}
		// Then the inode itself.
		if ib.Dirty {
			if werr := fs.cache.Bwrite(p, ib); werr != nil {
				fs.rele(ib)
				return werr
			}
			wrote = true
		}
		fs.rele(ib)
		// Deferred completions (soft updates workitems) may re-dirty
		// something; drain them before deciding we are done.
		fs.cache.RunWork(p)
		if !wrote {
			// Re-access the inode block: a scheme's lazy redo would
			// re-dirty it here; if it stays clean, the on-disk state
			// carries everything.
			_, ib2, _, err := fs.getInode(p, ino)
			if err != nil {
				return err
			}
			clean := !ib2.Dirty
			fs.rele(ib2)
			if clean {
				return nil
			}
		}
	}
	return nil
}

// fsyncAwait is the DurabilityWaiter fsync path: collect the fragments
// whose current contents constitute the file's persistence (resident
// dirty data and indirect blocks, plus the inode-table block) and hand
// them to the scheme's wait. The inode lock is held by the caller for the
// duration, so the registered state is exactly the state fsync promises.
func (fs *FS) fsyncAwait(p *sim.Proc, ino Ino, dw DurabilityWaiter) error {
	ip, ib, _, err := fs.getInode(p, ino)
	if err != nil {
		return err
	}
	if !ip.Allocated() {
		fs.rele(ib)
		return ErrNotExist
	}
	runs, err := fs.collectRuns(p, &ip)
	if err != nil {
		fs.rele(ib)
		return err
	}
	var frags []int64
	for _, run := range runs {
		if b := fs.cache.Lookup(int64(run.Start)); b != nil && b.Dirty {
			frags = append(frags, int64(run.Start))
		}
	}
	if ib.Dirty || ib.InFlight() {
		frags = append(frags, ib.Frag)
	}
	fs.rele(ib)
	if len(frags) == 0 {
		return nil
	}
	dw.WaitDurable(p, ino, frags)
	return nil
}
