package ffs

import (
	"encoding/binary"
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/sim"
)

// Block map: translating file block indices to fragment addresses, growing
// files (including FFS fragment extension: a file's final partial block is
// a 1..8 fragment run that grows in place when the neighbouring fragments
// are free and must otherwise move to a new run — the "special case" the
// paper's soft-updates appendix discusses), and collecting every fragment
// run of a file for truncation.

func getPtr(b []byte, off int) int32 {
	return int32(binary.LittleEndian.Uint32(b[off:]))
}

func setPtr(b []byte, off int, v int32) {
	binary.LittleEndian.PutUint32(b[off:], uint32(v))
}

// ptrLoc describes where the pointer for a given file block lives, reading
// (and allocating, when alloc is true) indirect blocks along the way.
type ptrLoc struct {
	buf     *cache.Buf // inode table block or indirect block
	off     int        // byte offset of the int32 pointer within buf.Data
	isIndir bool       // pointer lives in an indirect block
}

// locatePtr finds the pointer slot for file block bi of inode ino. When
// alloc is true, missing indirect blocks are allocated (ordered as metadata
// allocations); when false, a zero pointer anywhere returns ok=false.
func (fs *FS) locatePtr(p *sim.Proc, ino Ino, ip *Inode, ib *cache.Buf, ioff int, bi int, alloc bool) (ptrLoc, bool, error) {
	switch {
	case bi < 0 || bi >= MaxBlocks:
		panic(fmt.Sprintf("ffs: block index %d out of range", bi))
	case bi < NDirect:
		return ptrLoc{buf: ib, off: ioff + InoDirectOff(bi)}, true, nil
	case bi < NDirect+PtrsPerBlock:
		indirFrag := ip.Indir
		if indirFrag == 0 {
			if !alloc {
				return ptrLoc{}, false, nil
			}
			var err error
			indirFrag, err = fs.allocIndirect(p, ino, ip, ib, ioff, ioff+InoIndirOff)
			if err != nil {
				return ptrLoc{}, false, err
			}
			ip.Indir = indirFrag
		}
		nb, err := fs.cache.Bread(p, int64(indirFrag), BlockFrags)
		if err != nil {
			return ptrLoc{}, false, err
		}
		return ptrLoc{buf: nb, off: (bi - NDirect) * 4, isIndir: true}, true, nil
	default:
		// Double indirect: first level selects an indirect block, second
		// level the data block.
		di := bi - NDirect - PtrsPerBlock
		l1, l2 := di/PtrsPerBlock, di%PtrsPerBlock
		dFrag := ip.Dindir
		if dFrag == 0 {
			if !alloc {
				return ptrLoc{}, false, nil
			}
			var err error
			dFrag, err = fs.allocIndirect(p, ino, ip, ib, ioff, ioff+InoDindirOff)
			if err != nil {
				return ptrLoc{}, false, err
			}
			ip.Dindir = dFrag
		}
		db, err := fs.cache.Bread(p, int64(dFrag), BlockFrags)
		if err != nil {
			return ptrLoc{}, false, err
		}
		l1frag := getPtr(db.Data, l1*4)
		if l1frag == 0 {
			if !alloc {
				return ptrLoc{}, false, nil
			}
			var err error
			l1frag, err = fs.allocIndirectAt(p, ino, db, l1*4)
			if err != nil {
				return ptrLoc{}, false, err
			}
		}
		nb, err := fs.cache.Bread(p, int64(l1frag), BlockFrags)
		if err != nil {
			return ptrLoc{}, false, err
		}
		return ptrLoc{buf: nb, off: l2 * 4, isIndir: true}, true, nil
	}
}

// allocIndirect allocates a zero-filled indirect block whose pointer lives
// in the inode at inoPtrOff (absolute offset within the inode-table block).
func (fs *FS) allocIndirect(p *sim.Proc, ino Ino, ip *Inode, ib *cache.Buf, ioff, inoPtrOff int) (int32, error) {
	defer ib.Hold().Unhold()
	frag, err := fs.allocFrags(p, BlockFrags, fs.preferredCG(ino, ip))
	if err != nil {
		return 0, err
	}
	nb := fs.cache.Getblk(p, int64(frag), BlockFrags)
	rec := &AllocRec{
		FS: fs, NewBuf: nb, NewFrag: frag, NewNFr: BlockFrags, IsIndir: true,
		OwnerBuf: ib, OwnerIno: ino, PtrOff: inoPtrOff,
		OldSize: ip.Size, NewSize: ip.Size,
	}
	rec.DataInit = nb.Data
	fs.ord.AllocInit(p, rec)
	fs.cache.PrepareModify(p, ib)
	setPtr(ib.Data, inoPtrOff, frag)
	fs.ord.AllocPtr(p, rec)
	return frag, nil
}

// allocIndirectAt allocates an indirect block pointed to from another
// indirect block (the double-indirect first level).
func (fs *FS) allocIndirectAt(p *sim.Proc, ino Ino, owner *cache.Buf, ptrOff int) (int32, error) {
	defer owner.Hold().Unhold()
	frag, err := fs.allocFrags(p, BlockFrags, fs.preferredCG(ino, nil))
	if err != nil {
		return 0, err
	}
	nb := fs.cache.Getblk(p, int64(frag), BlockFrags)
	rec := &AllocRec{
		FS: fs, NewBuf: nb, NewFrag: frag, NewNFr: BlockFrags, IsIndir: true,
		OwnerBuf: owner, OwnerIno: ino, OwnerIsIndir: true, PtrOff: ptrOff,
	}
	rec.DataInit = nb.Data
	fs.ord.AllocInit(p, rec)
	fs.cache.PrepareModify(p, owner)
	setPtr(owner.Data, ptrOff, frag)
	fs.ord.AllocPtr(p, rec)
	return frag, nil
}

// blockRun returns the fragment address and run length of file block bi for
// a file of the given size (bi must be < blocksOf(size)).
func blockRunLen(size uint64, bi int) int {
	if bi == blocksOf(size)-1 {
		return lastBlockFrags(size)
	}
	return BlockFrags
}

// readBlock returns the buffer for file block bi (read path).
func (fs *FS) readBlock(p *sim.Proc, ino Ino, ip *Inode, ib *cache.Buf, ioff, bi int) (*cache.Buf, error) {
	loc, ok, err := fs.locatePtr(p, ino, ip, ib, ioff, bi, false)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("ffs: hole at block %d of inode %d", bi, ino)
	}
	frag := getPtr(loc.buf.Data, loc.off)
	if frag == 0 {
		return nil, fmt.Errorf("ffs: hole at block %d of inode %d", bi, ino)
	}
	return fs.cache.Bread(p, int64(frag), blockRunLenForRead(ip.Size, bi))
}

func blockRunLenForRead(size uint64, bi int) int { return blockRunLen(size, bi) }

// growBlock makes file block bi exist with wantNF fragments, extending or
// moving the existing partial run if needed, and returns its buffer. fill
// is called to (re)initialize the buffer before ordering hooks fire when
// the block is new; for existing blocks the buffer contents are preserved.
//
// isDir marks directory blocks (always initialization-ordered). newSize is
// the inode size that will be in effect after the caller's write — it is
// stored into the inode here, together with the pointer, so that the
// pointer+size pair is covered by a single allocation dependency (exactly
// the allocdirect state of the paper's appendix).
func (fs *FS) growBlock(p *sim.Proc, ino Ino, ip *Inode, ib *cache.Buf, ioff, bi int, wantNF int, newSize uint64, isDir bool, fill func(data []byte)) (*cache.Buf, error) {
	// The inode-table block must survive the allocation sleeps below: a
	// concurrent (or our own) cache eviction replacing it would orphan the
	// pointer/size updates we are about to store.
	defer ib.Hold().Unhold()
	curBlocks := blocksOf(ip.Size)
	oldSize := ip.Size

	if bi < curBlocks {
		oldNF := blockRunLen(ip.Size, bi)
		loc, _, err := fs.locatePtr(p, ino, ip, ib, ioff, bi, false)
		if err != nil {
			return nil, err
		}
		frag := getPtr(loc.buf.Data, loc.off)
		if frag == 0 {
			return nil, fmt.Errorf("ffs: hole at block %d of inode %d", bi, ino)
		}
		if wantNF <= oldNF {
			// Existing block is already big enough.
			b, err := fs.cache.Bread(p, int64(frag), oldNF)
			if err != nil {
				return nil, err
			}
			b.Hold()
			if fill == nil {
				fs.updateSize(p, ip, ib, ioff, newSize)
				b.Unhold()
				return b, nil
			}
			// A fresh chunk inside already-allocated space (a directory
			// growing into the unused tail of its fragment): the size bump
			// points at bytes the old size never covered, so the chunk's
			// initialization must be ordered before the size can reach the
			// disk (rule 1), exactly as for a newly allocated block.
			fs.cache.PrepareModify(p, b)
			fill(b.Data)
			rec := &AllocRec{
				FS: fs, NewBuf: b, NewFrag: frag, NewNFr: oldNF, IsDir: isDir,
				OwnerBuf: ib, OwnerIno: ino, PtrOff: ioff + InoDirectOff(bi),
				OldPtr: frag, OldSize: oldSize, NewSize: newSize,
			}
			if bi >= NDirect {
				rec.OwnerIsIndir = true
				rec.OwnerBuf = loc.buf
				rec.PtrOff = loc.off
			}
			rec.DataInit = b.Data
			fs.ord.AllocInit(p, rec)
			fs.updateSizeRaw(p, ip, ib, ioff, newSize)
			fs.ord.AllocPtr(p, rec)
			if rec.OwnerIsIndir {
				// The size bytes live in the inode block, which must also
				// reach the disk eventually.
				fs.ord.MetaUpdate(p, ib)
			}
			b.Unhold()
			return b, nil
		}
		// Fragment extension.
		b, err := fs.cache.Bread(p, int64(frag), oldNF)
		if err != nil {
			return nil, err
		}
		defer b.Hold().Unhold()
		defer loc.buf.Hold().Unhold()
		if fs.tryExtendFrags(p, frag, oldNF, wantNF) {
			// In place: same address, more fragments. The added fragments
			// are an ordered allocation (they carry the new size).
			fs.cache.PrepareModify(p, b)
			fs.cache.Resize(b, wantNF)
			if fill != nil {
				fill(b.Data)
			}
			rec := &AllocRec{
				FS: fs, NewBuf: b, NewFrag: frag, NewNFr: wantNF, IsDir: isDir,
				OwnerBuf: ib, OwnerIno: ino, PtrOff: ioff + InoDirectOff(bi),
				OldPtr: frag, OldSize: oldSize, NewSize: newSize,
			}
			if bi >= NDirect {
				rec.OwnerIsIndir = true
				rec.OwnerBuf = loc.buf
				rec.PtrOff = loc.off
			}
			rec.DataInit = b.Data
			fs.ord.AllocInit(p, rec)
			fs.updateSizeRaw(p, ip, ib, ioff, newSize)
			fs.ord.AllocPtr(p, rec)
			if rec.OwnerIsIndir {
				// The pointer's ordering rode the indirect block; the size
				// bytes live in the inode block, which must also reach the
				// disk eventually.
				fs.ord.MetaUpdate(p, ib)
			}
			return b, nil
		}
		// Move: allocate a new run, copy, retarget pointer, free old run.
		newFrag, err := fs.allocFrags(p, wantNF, fs.cgOfFrag(frag))
		if err != nil {
			return nil, err
		}
		nb := fs.cache.Getblk(p, int64(newFrag), wantNF)
		defer nb.Hold().Unhold()
		fs.charge(p, fs.cfg.Costs.PerKBCopy*sim.Duration(oldNF))
		copy(nb.Data, b.Data)
		if fill != nil {
			fill(nb.Data)
		}
		rec := &AllocRec{
			FS: fs, NewBuf: nb, NewFrag: newFrag, NewNFr: wantNF, IsDir: isDir,
			OwnerBuf: loc.buf, OwnerIno: ino, OwnerIsIndir: loc.isIndir,
			PtrOff: loc.off, OldPtr: frag, OldSize: oldSize, NewSize: newSize,
			MovedFrom: &FragRun{Start: frag, N: oldNF},
			OldBuf:    b,
		}
		if !loc.isIndir {
			rec.OwnerBuf = ib
			rec.PtrOff = ioff + InoDirectOff(bi)
		}
		rec.DataInit = nb.Data
		fs.ord.AllocInit(p, rec)
		fs.cache.PrepareModify(p, loc.buf)
		setPtr(loc.buf.Data, rec.PtrOff, newFrag)
		fs.updateSizeRaw(p, ip, ib, ioff, newSize)
		fs.ord.AllocPtr(p, rec)
		if rec.OwnerIsIndir {
			fs.ord.MetaUpdate(p, ib)
		}
		return nb, nil
	}

	// Brand-new block. Files grow densely (no holes), so bi == curBlocks.
	if bi != curBlocks {
		return nil, fmt.Errorf("ffs: sparse write at block %d of inode %d", bi, ino)
	}
	frag, err := fs.allocFrags(p, wantNF, fs.preferredCG(ino, ip))
	if err != nil {
		return nil, err
	}
	loc, _, err := fs.locatePtr(p, ino, ip, ib, ioff, bi, true)
	if err != nil {
		fs.freeRun(p, FragRun{Start: frag, N: wantNF})
		return nil, err
	}
	defer loc.buf.Hold().Unhold()
	nb := fs.cache.Getblk(p, int64(frag), wantNF)
	defer nb.Hold().Unhold()
	if fill != nil {
		fill(nb.Data)
	}
	rec := &AllocRec{
		FS: fs, NewBuf: nb, NewFrag: frag, NewNFr: wantNF, IsDir: isDir,
		OwnerBuf: loc.buf, OwnerIno: ino, OwnerIsIndir: loc.isIndir,
		PtrOff: loc.off, OldSize: oldSize, NewSize: newSize,
	}
	rec.DataInit = nb.Data
	fs.ord.AllocInit(p, rec)
	fs.cache.PrepareModify(p, loc.buf)
	setPtr(loc.buf.Data, loc.off, frag)
	fs.updateSizeRaw(p, ip, ib, ioff, newSize)
	fs.ord.AllocPtr(p, rec)
	if rec.OwnerIsIndir {
		fs.ord.MetaUpdate(p, ib)
	}
	return nb, nil
}

// updateSize stores a new size via MetaUpdate (no allocation involved).
// Only the size field is touched: the decoded inode struct may be stale
// with respect to pointers stored directly into the buffer by growBlock,
// so a full re-encode would wipe them.
func (fs *FS) updateSize(p *sim.Proc, ip *Inode, ib *cache.Buf, ioff int, newSize uint64) {
	if ip.Size == newSize {
		return
	}
	fs.updateSizeRaw(p, ip, ib, ioff, newSize)
	fs.ord.MetaUpdate(p, ib)
}

// updateSizeRaw stores size as part of an allocation (the AllocPtr hook
// that follows owns the ordering; no MetaUpdate).
func (fs *FS) updateSizeRaw(p *sim.Proc, ip *Inode, ib *cache.Buf, ioff int, newSize uint64) {
	ip.Size = newSize
	fs.cache.PrepareModify(p, ib)
	binary.LittleEndian.PutUint64(ib.Data[ioff+InoSizeOff:], newSize)
}

// collectRuns gathers every fragment run of the file, including indirect
// blocks themselves, for truncation. On a read error (unreadable indirect
// block on a faulted disk) it returns the runs gathered so far together
// with the error: callers in hook context free the partial set and leak
// the rest — fsck's free-map reconciliation is the backstop.
func (fs *FS) collectRuns(p *sim.Proc, ip *Inode) ([]FragRun, error) {
	var runs []FragRun
	nblocks := blocksOf(ip.Size)
	add := func(frag int32, n int) {
		if frag != 0 {
			runs = append(runs, FragRun{Start: frag, N: n})
		}
	}
	for bi := 0; bi < nblocks && bi < NDirect; bi++ {
		add(ip.Direct[bi], blockRunLen(ip.Size, bi))
	}
	if ip.Indir != 0 {
		nb, err := fs.cache.Bread(p, int64(ip.Indir), BlockFrags)
		if err != nil {
			return runs, err
		}
		for i := 0; i < PtrsPerBlock; i++ {
			bi := NDirect + i
			if bi >= nblocks {
				break
			}
			add(getPtr(nb.Data, i*4), blockRunLen(ip.Size, bi))
		}
		add(ip.Indir, BlockFrags)
	}
	if ip.Dindir != 0 {
		db, err := fs.cache.Bread(p, int64(ip.Dindir), BlockFrags)
		if err != nil {
			return runs, err
		}
		for l1 := 0; l1 < PtrsPerBlock; l1++ {
			base := NDirect + PtrsPerBlock + l1*PtrsPerBlock
			if base >= nblocks {
				break
			}
			l1frag := getPtr(db.Data, l1*4)
			if l1frag == 0 {
				continue
			}
			nb, err := fs.cache.Bread(p, int64(l1frag), BlockFrags)
			if err != nil {
				return runs, err
			}
			for l2 := 0; l2 < PtrsPerBlock; l2++ {
				bi := base + l2
				if bi >= nblocks {
					break
				}
				add(getPtr(nb.Data, l2*4), blockRunLen(ip.Size, bi))
			}
			add(l1frag, BlockFrags)
		}
		add(ip.Dindir, BlockFrags)
	}
	return runs, nil
}
