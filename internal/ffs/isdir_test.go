package ffs_test

import (
	"testing"

	"metaupdate/internal/ffs"
	"metaupdate/internal/ordering"
	"metaupdate/internal/sim"
)

// TestWriteAtOnDirectoryReturnsErrIsDir pins a latent bug found by
// FuzzCrashConsistency: WriteAt accepted a directory inode, so a workload
// that created a file, removed it, made a directory under the same name,
// and wrote to the (stale-by-name) inode would overwrite the directory's
// entry format with file data — corruption through the legal API. write(2)
// on a directory is EISDIR; the simulator must agree.
func TestWriteAtOnDirectoryReturnsErrIsDir(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		dir, err := r.fs.Mkdir(p, ffs.RootIno, "sub")
		if err != nil {
			t.Fatal(err)
		}
		if err := r.fs.WriteAt(p, dir, 0, make([]byte, 512)); err != ffs.ErrIsDir {
			t.Fatalf("WriteAt on directory: %v, want ErrIsDir", err)
		}
		// The name-reuse shape the fuzzer actually hit.
		ino, err := r.fs.Create(p, dir, "x")
		if err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Unlink(p, dir, "x"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Mkdir(p, dir, "x"); err != nil {
			t.Fatal(err)
		}
		reused, err := r.fs.Lookup(p, dir, "x")
		if err != nil {
			t.Fatal(err)
		}
		if reused == ino {
			// Same inode reused for the directory — exactly the corruption
			// vector: the write must bounce.
			if err := r.fs.WriteAt(p, reused, 0, make([]byte, 512)); err != ffs.ErrIsDir {
				t.Fatalf("WriteAt on reused directory inode: %v, want ErrIsDir", err)
			}
		}
		// Directory still readable and well-formed either way.
		names, err := r.fs.ReadDir(p, dir)
		if err != nil || len(names) != 1 || names[0].Name != "x" {
			t.Fatalf("ReadDir after bounced write: %v err=%v", names, err)
		}
	})
}
