package ffs_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"metaupdate/internal/ffs"
	"metaupdate/internal/ordering"
	"metaupdate/internal/sim"
)

// Allocator invariants: no double allocation, runs stay inside blocks,
// directories spread across allocation groups, files follow their
// directory.

func TestAllocatorNeverDoubleAllocates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
		ok := true
		r.run(t, func(p *sim.Proc) {
			type owner struct {
				ino  ffs.Ino
				name string
			}
			files := map[string]ffs.Ino{}
			for step := 0; step < 80 && ok; step++ {
				name := fmt.Sprintf("f%d", rng.Intn(15))
				if _, exists := files[name]; !exists && rng.Intn(3) != 0 {
					ino, err := r.fs.Create(p, ffs.RootIno, name)
					if err != nil {
						continue
					}
					if err := r.fs.WriteAt(p, ino, 0, make([]byte, 200+rng.Intn(30000))); err != nil {
						ok = false
						break
					}
					files[name] = ino
				} else if exists {
					r.fs.Unlink(p, ffs.RootIno, name)
					delete(files, name)
				}
			}
			// Verify disjointness: walk every file's runs and demand no
			// fragment is claimed twice.
			seen := map[int32]owner{}
			for name, ino := range files {
				ip, err := r.fs.Stat(p, ino)
				if err != nil {
					ok = false
					return
				}
				blocks := int(ip.Size+ffs.BlockSize-1) / ffs.BlockSize
				for bi := 0; bi < blocks && bi < ffs.NDirect; bi++ {
					start := ip.Direct[bi]
					n := ffs.BlockFrags
					if bi == blocks-1 {
						if rem := int(ip.Size) % ffs.BlockSize; rem != 0 {
							n = (rem + ffs.FragSize - 1) / ffs.FragSize
						}
					}
					for i := int32(0); i < int32(n); i++ {
						if prev, dup := seen[start+i]; dup {
							t.Logf("fragment %d owned by %q and %q", start+i, prev.name, name)
							ok = false
							return
						}
						seen[start+i] = owner{ino, name}
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestDirectoriesSpreadAcrossGroups(t *testing.T) {
	// New directories rotate allocation groups, so their first blocks land
	// far apart — the FFS layout policy the multi-user benchmarks depend on.
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		var firstFrags []int32
		for i := 0; i < 4; i++ {
			d, err := r.fs.Mkdir(p, ffs.RootIno, fmt.Sprintf("d%d", i))
			if err != nil {
				t.Fatal(err)
			}
			ip, _ := r.fs.Stat(p, d)
			firstFrags = append(firstFrags, ip.Direct[0])
		}
		const cgFrags = 2048
		groups := map[int32]bool{}
		for _, f := range firstFrags {
			groups[f/cgFrags] = true
		}
		if len(groups) < 3 {
			t.Fatalf("4 directories landed in only %d group(s): %v", len(groups), firstFrags)
		}
	})
}

func TestFilesFollowTheirDirectory(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		d, _ := r.fs.Mkdir(p, ffs.RootIno, "d")
		dip, _ := r.fs.Stat(p, d)
		const cgFrags = 2048
		dirGroup := dip.Direct[0] / cgFrags
		for i := 0; i < 5; i++ {
			ino, _ := r.fs.Create(p, d, fmt.Sprintf("f%d", i))
			r.fs.WriteAt(p, ino, 0, make([]byte, 4096))
			ip, _ := r.fs.Stat(p, ino)
			if ip.Direct[0]/cgFrags != dirGroup {
				t.Fatalf("file %d allocated in group %d, directory in %d",
					i, ip.Direct[0]/cgFrags, dirGroup)
			}
		}
	})
}

func TestAllocatorSpillsWhenGroupFull(t *testing.T) {
	// Fill one group past its capacity; allocation must spill to the next
	// group rather than fail.
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		d, _ := r.fs.Mkdir(p, ffs.RootIno, "d")
		// 2 MB group; write 3 MB of files into it.
		for i := 0; i < 12; i++ {
			ino, err := r.fs.Create(p, d, fmt.Sprintf("f%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.fs.WriteAt(p, ino, 0, make([]byte, 256<<10)); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		// All data readable (allocation succeeded somewhere).
		for i := 0; i < 12; i++ {
			ino, _ := r.fs.Lookup(p, d, fmt.Sprintf("f%d", i))
			buf := make([]byte, 256<<10)
			if n, err := r.fs.ReadAt(p, ino, 0, buf); err != nil || n != 256<<10 {
				t.Fatalf("read %d: n=%d err=%v", i, n, err)
			}
		}
	})
}
