// Package ffs implements the substrate file system: a Berkeley FFS-like
// UNIX file system (the paper's ufs) with 8 KB blocks, 1 KB fragments,
// direct/single/double-indirect block maps, variable-length directory
// entries, and bitmap free maps — everything the five metadata ordering
// schemes operate on. Structural changes (block allocation, block freeing,
// link addition, link removal) are routed through the Ordering strategy
// (see order.go); package ordering and package core provide the five
// implementations the paper compares.
package ffs

import (
	"encoding/binary"
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/disk"
)

// Geometry constants (the paper's ufs used 8 KB blocks / 1 KB fragments).
const (
	FragSize       = cache.FragSize // 1 KB
	BlockFrags     = 8
	BlockSize      = BlockFrags * FragSize // 8 KB
	InodeSize      = 128
	InodesPerBlock = BlockSize / InodeSize // 64
	DirChunk       = 512                   // directory entries never cross a chunk (= sector) boundary
	NDirect        = 12
	PtrsPerBlock   = BlockSize / 4 // int32 pointers in an indirect block

	// Maximum file size covered by direct + single + double indirect.
	MaxBlocks = NDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock
)

// Ino is an inode number. 0 is invalid; RootIno is the root directory.
type Ino uint32

// RootIno is the root directory's inode number.
const RootIno Ino = 2

// Magic identifies a formatted file system.
const Magic uint32 = 0x19941114 // OSDI '94

// Superblock describes the on-disk layout. All region bounds are fragment
// numbers.
type Superblock struct {
	Magic      uint32
	TotalFrags int32
	NInodes    uint32
	InodeStart int32 // inode table
	IBmapStart int32 // inode allocation bitmap
	FBmapStart int32 // fragment allocation bitmap
	DataStart  int32 // first allocatable data fragment (block aligned)
}

// InodeFrag returns the fragment holding inode ino, and the byte offset of
// the inode within that fragment's block.
func (sb *Superblock) InodeFrag(ino Ino) (blockFrag int32, off int) {
	idx := int32(ino) / InodesPerBlock // inode-table block index
	return sb.InodeStart + idx*BlockFrags, int(ino) % InodesPerBlock * InodeSize
}

// IBmapFrags returns the size of the inode bitmap in fragments.
func (sb *Superblock) IBmapFrags() int32 {
	return int32((sb.NInodes + FragSize*8 - 1) / (FragSize * 8))
}

// FBmapFrags returns the size of the fragment bitmap in fragments.
func (sb *Superblock) FBmapFrags() int32 {
	return (sb.TotalFrags + FragSize*8 - 1) / (FragSize * 8)
}

func (sb *Superblock) encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.Magic)
	le.PutUint32(b[4:], uint32(sb.TotalFrags))
	le.PutUint32(b[8:], sb.NInodes)
	le.PutUint32(b[12:], uint32(sb.InodeStart))
	le.PutUint32(b[16:], uint32(sb.IBmapStart))
	le.PutUint32(b[20:], uint32(sb.FBmapStart))
	le.PutUint32(b[24:], uint32(sb.DataStart))
}

func (sb *Superblock) decode(b []byte) error {
	le := binary.LittleEndian
	sb.Magic = le.Uint32(b[0:])
	if sb.Magic != Magic {
		return fmt.Errorf("ffs: bad magic %#x", sb.Magic)
	}
	sb.TotalFrags = int32(le.Uint32(b[4:]))
	sb.NInodes = le.Uint32(b[8:])
	sb.InodeStart = int32(le.Uint32(b[12:]))
	sb.IBmapStart = int32(le.Uint32(b[16:]))
	sb.FBmapStart = int32(le.Uint32(b[20:]))
	sb.DataStart = int32(le.Uint32(b[24:]))
	return nil
}

// FormatParams sizes a new file system.
type FormatParams struct {
	TotalBytes int64 // file system size; rounded down to whole blocks
	NInodes    uint32
}

// Format writes a fresh, empty file system directly onto the disk image
// (the mkfs path: it runs outside simulated time). The root directory is
// created with "." and ".." entries.
func Format(d *disk.Disk, fp FormatParams) (*Superblock, error) {
	totalFrags := int32(fp.TotalBytes / FragSize / BlockFrags * BlockFrags)
	if int64(totalFrags)*FragSize > int64(d.Sectors())*disk.SectorSize {
		return nil, fmt.Errorf("ffs: format size %d exceeds disk", fp.TotalBytes)
	}
	if fp.NInodes == 0 {
		fp.NInodes = 16384
	}
	// Round the inode count to a whole number of inode-table blocks.
	fp.NInodes = (fp.NInodes + InodesPerBlock - 1) / InodesPerBlock * InodesPerBlock

	sb := &Superblock{
		Magic:      Magic,
		TotalFrags: totalFrags,
		NInodes:    fp.NInodes,
		InodeStart: BlockFrags, // block 0 is the superblock
	}
	inodeFrags := int32(fp.NInodes) * InodeSize / FragSize
	sb.IBmapStart = sb.InodeStart + inodeFrags
	sb.FBmapStart = sb.IBmapStart + sb.IBmapFrags()
	dataStart := sb.FBmapStart + sb.FBmapFrags()
	// Block-align the data region.
	sb.DataStart = (dataStart + BlockFrags - 1) / BlockFrags * BlockFrags
	if sb.DataStart >= totalFrags {
		return nil, fmt.Errorf("ffs: no room for data region")
	}

	img := d.Image()
	fragAt := func(f int32) []byte {
		return img[int64(f)*FragSize : int64(f+1)*FragSize]
	}

	// Superblock.
	sb.encode(fragAt(0))

	// Fragment bitmap: metadata region marked allocated.
	fsetBit := func(f int32) {
		byteIdx := int64(sb.FBmapStart)*FragSize + int64(f/8)
		img[byteIdx] |= 1 << (uint(f) % 8)
	}
	for f := int32(0); f < sb.DataStart; f++ {
		fsetBit(f)
	}

	// Inode bitmap: inodes 0, 1 (reserved) and the root.
	isetBit := func(ino Ino) {
		byteIdx := int64(sb.IBmapStart)*FragSize + int64(ino/8)
		img[byteIdx] |= 1 << (uint(ino) % 8)
	}
	isetBit(0)
	isetBit(1)
	isetBit(RootIno)

	// Root directory: one fragment of directory data.
	rootFrag := sb.DataStart
	for f := rootFrag; f < rootFrag+1; f++ {
		fsetBit(f)
	}
	dirData := fragAt(rootFrag)
	initDirChunks(dirData)
	mustAddEntryRaw(dirData, ".", RootIno, FtypeDir)
	mustAddEntryRaw(dirData, "..", RootIno, FtypeDir)

	root := Inode{Mode: ModeDir, Nlink: 2, Size: FragSize}
	root.Direct[0] = rootFrag
	blockFrag, off := sb.InodeFrag(RootIno)
	root.encode(img[int64(blockFrag)*FragSize+int64(off):])
	return sb, nil
}
