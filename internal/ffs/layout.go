// Package ffs implements the substrate file system: a Berkeley FFS-like
// UNIX file system (the paper's ufs) with 8 KB blocks, 1 KB fragments,
// direct/single/double-indirect block maps, variable-length directory
// entries, and bitmap free maps — everything the five metadata ordering
// schemes operate on. Structural changes (block allocation, block freeing,
// link addition, link removal) are routed through the Ordering strategy
// (see order.go); package ordering and package core provide the five
// implementations the paper compares.
package ffs

import (
	"encoding/binary"
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/disk"
	"metaupdate/internal/jlog"
)

// Geometry constants (the paper's ufs used 8 KB blocks / 1 KB fragments).
const (
	FragSize       = cache.FragSize // 1 KB
	BlockFrags     = 8
	BlockSize      = BlockFrags * FragSize // 8 KB
	InodeSize      = 128
	InodesPerBlock = BlockSize / InodeSize // 64
	DirChunk       = 512                   // directory entries never cross a chunk (= sector) boundary
	NDirect        = 12
	PtrsPerBlock   = BlockSize / 4 // int32 pointers in an indirect block

	// Maximum file size covered by direct + single + double indirect.
	MaxBlocks = NDirect + PtrsPerBlock + PtrsPerBlock*PtrsPerBlock
)

// Ino is an inode number. 0 is invalid; RootIno is the root directory.
type Ino uint32

// RootIno is the root directory's inode number.
const RootIno Ino = 2

// Magic identifies a formatted file system.
const Magic uint32 = 0x19941114 // OSDI '94

// Superblock describes the on-disk layout. All region bounds are fragment
// numbers.
type Superblock struct {
	Magic      uint32
	TotalFrags int32
	NInodes    uint32
	InodeStart int32 // inode table
	IBmapStart int32 // inode allocation bitmap
	FBmapStart int32 // fragment allocation bitmap
	DataStart  int32 // first allocatable data fragment (block aligned)

	// Journal region (Journaling scheme only; both zero otherwise). The
	// region sits between the fragment bitmap and the data region, inside
	// the fragment-bitmap run Format marks allocated, so it is invisible
	// to allocation and to fsck's bitmap reconciliation. Old images decode
	// zeros here: no journal.
	JournalStart int32
	JournalFrags int32
}

// InodeFrag returns the fragment holding inode ino, and the byte offset of
// the inode within that fragment's block.
func (sb *Superblock) InodeFrag(ino Ino) (blockFrag int32, off int) {
	idx := int32(ino) / InodesPerBlock // inode-table block index
	return sb.InodeStart + idx*BlockFrags, int(ino) % InodesPerBlock * InodeSize
}

// IBmapFrags returns the size of the inode bitmap in fragments.
func (sb *Superblock) IBmapFrags() int32 {
	return int32((sb.NInodes + FragSize*8 - 1) / (FragSize * 8))
}

// FBmapFrags returns the size of the fragment bitmap in fragments.
func (sb *Superblock) FBmapFrags() int32 {
	return (sb.TotalFrags + FragSize*8 - 1) / (FragSize * 8)
}

func (sb *Superblock) encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.Magic)
	le.PutUint32(b[4:], uint32(sb.TotalFrags))
	le.PutUint32(b[8:], sb.NInodes)
	le.PutUint32(b[12:], uint32(sb.InodeStart))
	le.PutUint32(b[16:], uint32(sb.IBmapStart))
	le.PutUint32(b[20:], uint32(sb.FBmapStart))
	le.PutUint32(b[24:], uint32(sb.DataStart))
	le.PutUint32(b[28:], uint32(sb.JournalStart))
	le.PutUint32(b[32:], uint32(sb.JournalFrags))
}

func (sb *Superblock) decode(b []byte) error {
	le := binary.LittleEndian
	sb.Magic = le.Uint32(b[0:])
	if sb.Magic != Magic {
		return fmt.Errorf("ffs: bad magic %#x", sb.Magic)
	}
	sb.TotalFrags = int32(le.Uint32(b[4:]))
	sb.NInodes = le.Uint32(b[8:])
	sb.InodeStart = int32(le.Uint32(b[12:]))
	sb.IBmapStart = int32(le.Uint32(b[16:]))
	sb.FBmapStart = int32(le.Uint32(b[20:]))
	sb.DataStart = int32(le.Uint32(b[24:]))
	sb.JournalStart = int32(le.Uint32(b[28:]))
	sb.JournalFrags = int32(le.Uint32(b[32:]))
	return nil
}

// FormatParams sizes a new file system.
type FormatParams struct {
	TotalBytes int64 // file system size; rounded down to whole blocks
	NInodes    uint32
	// JournalFrags reserves an on-disk journal region of that many
	// fragments between the fragment bitmap and the data region (the
	// Journaling scheme sets it; 0 = no journal, the layout of every
	// other scheme).
	JournalFrags int32
}

// Format writes a fresh, empty file system directly onto the disk image
// (the mkfs path: it runs outside simulated time). The root directory is
// created with "." and ".." entries.
func Format(d *disk.Disk, fp FormatParams) (*Superblock, error) {
	totalFrags := int32(fp.TotalBytes / FragSize / BlockFrags * BlockFrags)
	if int64(totalFrags)*FragSize > int64(d.Sectors())*disk.SectorSize {
		return nil, fmt.Errorf("ffs: format size %d exceeds disk", fp.TotalBytes)
	}
	if fp.NInodes == 0 {
		fp.NInodes = 16384
	}
	// Round the inode count to a whole number of inode-table blocks.
	fp.NInodes = (fp.NInodes + InodesPerBlock - 1) / InodesPerBlock * InodesPerBlock

	sb := &Superblock{
		Magic:      Magic,
		TotalFrags: totalFrags,
		NInodes:    fp.NInodes,
		InodeStart: BlockFrags, // block 0 is the superblock
	}
	inodeFrags := int32(fp.NInodes) * InodeSize / FragSize
	sb.IBmapStart = sb.InodeStart + inodeFrags
	sb.FBmapStart = sb.IBmapStart + sb.IBmapFrags()
	dataStart := sb.FBmapStart + sb.FBmapFrags()
	if fp.JournalFrags > 0 {
		if fp.JournalFrags < 4 {
			return nil, fmt.Errorf("ffs: journal of %d frags is too small", fp.JournalFrags)
		}
		sb.JournalStart = dataStart
		sb.JournalFrags = fp.JournalFrags
		dataStart += fp.JournalFrags
	}
	// Block-align the data region.
	sb.DataStart = (dataStart + BlockFrags - 1) / BlockFrags * BlockFrags
	if sb.DataStart >= totalFrags {
		return nil, fmt.Errorf("ffs: no room for data region")
	}

	// All writes go through disk.WriteAt against freshly-zeroed media, so
	// each region is built in a scratch buffer and stored once; pulling the
	// flat disk.Image here would defeat the media's lazy chunking by
	// materializing the full (mostly untouched) size limit per System.

	// Superblock.
	var frag [FragSize]byte
	sb.encode(frag[:])
	d.WriteAt(0, frag[:])

	// Fragment bitmap: metadata region plus the root directory fragment
	// (frags [0, DataStart]) marked allocated — a contiguous run of bits.
	rootFrag := sb.DataStart
	fbm := make([]byte, int(rootFrag)/8+1)
	for f := int32(0); f <= rootFrag; f++ {
		fbm[f/8] |= 1 << (uint(f) % 8)
	}
	d.WriteAt(int64(sb.FBmapStart)*FragSize, fbm)

	// Journal header: an empty log whose first transaction will carry
	// sequence 1 at region offset 1 (region frag 0 is the header itself).
	if sb.JournalFrags > 0 {
		var hdr [jlog.SectorSize]byte
		jlog.EncodeHeader(hdr[:], jlog.Header{TailSeq: 1, TailOff: 1})
		d.WriteAt(int64(sb.JournalStart)*FragSize, hdr[:])
	}

	// Inode bitmap: inodes 0, 1 (reserved) and the root.
	var ibm [1]byte
	for _, ino := range []Ino{0, 1, RootIno} {
		ibm[ino/8] |= 1 << (uint(ino) % 8)
	}
	d.WriteAt(int64(sb.IBmapStart)*FragSize, ibm[:])

	// Root directory: one fragment of directory data.
	dirData := frag[:]
	clear(dirData)
	initDirChunks(dirData)
	mustAddEntryRaw(dirData, ".", RootIno, FtypeDir)
	mustAddEntryRaw(dirData, "..", RootIno, FtypeDir)
	d.WriteAt(int64(rootFrag)*FragSize, dirData)

	root := Inode{Mode: ModeDir, Nlink: 2, Size: FragSize}
	root.Direct[0] = rootFrag
	var itab [InodeSize]byte
	root.encode(itab[:])
	blockFrag, off := sb.InodeFrag(RootIno)
	d.WriteAt(int64(blockFrag)*FragSize+int64(off), itab[:])
	return sb, nil
}
