package ffs_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/ordering"
	"metaupdate/internal/sim"
)

type rig struct {
	eng *sim.Engine
	dsk *disk.Disk
	drv *dev.Driver
	c   *cache.Cache
	fs  *ffs.FS
}

// newRig formats and mounts a small file system with the given scheme.
func newRig(t *testing.T, ord ffs.Ordering, fscfg ffs.Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 96<<20)
	if _, err := ffs.Format(dsk, ffs.FormatParams{TotalBytes: 96 << 20, NInodes: 4096}); err != nil {
		t.Fatal(err)
	}
	drv := dev.New(eng, dsk, dev.Config{Mode: dev.ModeIgnore})
	cpu := &sim.CPU{}
	c := cache.New(eng, drv, cpu, cache.Config{MaxBytes: 8 << 20})
	r := &rig{eng: eng, dsk: dsk, drv: drv, c: c}
	var err error
	eng.Spawn("mount", func(p *sim.Proc) {
		r.fs, err = ffs.Mount(eng, cpu, c, ord, fscfg, p)
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// run executes fn as a simulated process to completion, failing the test
// if the process deadlocks (the engine drains while it is still parked).
func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.eng.Spawn("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("simulated process deadlocked (engine drained before it finished)")
	}
}

func TestFormatAndMount(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	sb := r.fs.Superblock()
	if sb.Magic != ffs.Magic {
		t.Fatal("bad magic after mount")
	}
	if sb.DataStart%ffs.BlockFrags != 0 {
		t.Errorf("data region not block aligned: %d", sb.DataStart)
	}
	r.run(t, func(p *sim.Proc) {
		ip, err := r.fs.Stat(p, ffs.RootIno)
		if err != nil || !ip.IsDir() || ip.Nlink != 2 {
			t.Errorf("root inode wrong: %+v err=%v", ip, err)
		}
	})
}

func TestCreateLookupStat(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, ffs.RootIno, "hello.txt")
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.fs.Lookup(p, ffs.RootIno, "hello.txt")
		if err != nil || got != ino {
			t.Fatalf("Lookup = %d, %v; want %d", got, err, ino)
		}
		ip, err := r.fs.Stat(p, ino)
		if err != nil || ip.Mode != ffs.ModeFile || ip.Nlink != 1 || ip.Size != 0 {
			t.Fatalf("Stat = %+v, %v", ip, err)
		}
		if _, err := r.fs.Create(p, ffs.RootIno, "hello.txt"); err != ffs.ErrExist {
			t.Fatalf("duplicate create: %v", err)
		}
		if _, err := r.fs.Lookup(p, ffs.RootIno, "missing"); err != ffs.ErrNotExist {
			t.Fatalf("missing lookup: %v", err)
		}
	})
}

func TestInvalidNames(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Create(p, ffs.RootIno, ""); err != ffs.ErrNameLen {
			t.Errorf("empty name: %v", err)
		}
		long := make([]byte, 300)
		for i := range long {
			long[i] = 'x'
		}
		if _, err := r.fs.Create(p, ffs.RootIno, string(long)); err != ffs.ErrNameLen {
			t.Errorf("long name: %v", err)
		}
	})
}

func TestWriteReadSmall(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		msg := []byte("metadata update performance in file systems")
		if err := r.fs.WriteAt(p, ino, 0, msg); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 100)
		n, err := r.fs.ReadAt(p, ino, 0, buf)
		if err != nil || n != len(msg) || !bytes.Equal(buf[:n], msg) {
			t.Fatalf("read back %d bytes, err %v", n, err)
		}
		ip, _ := r.fs.Stat(p, ino)
		if ip.Size != uint64(len(msg)) {
			t.Fatalf("size = %d, want %d", ip.Size, len(msg))
		}
	})
}

// fileData generates a deterministic pattern for a file.
func fileData(seed, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(int64(seed))).Read(b)
	return b
}

func TestWriteReadLargeWithIndirect(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "big")
		// 200 KB: exceeds 12 direct blocks (96 KB), exercises the single
		// indirect block.
		data := fileData(1, 200<<10)
		if err := r.fs.WriteAt(p, ino, 0, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		n, err := r.fs.ReadAt(p, ino, 0, got)
		if err != nil || n != len(data) {
			t.Fatalf("read %d, %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("large file data mismatch")
		}
	})
}

func TestDoubleIndirect(t *testing.T) {
	if testing.Short() {
		t.Skip("large file")
	}
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "huge")
		// Just past 12 + 2048 blocks = 16.47 MB.
		size := (ffs.NDirect+ffs.PtrsPerBlock)*ffs.BlockSize + 3*ffs.BlockSize + 100
		data := fileData(2, size)
		if err := r.fs.WriteAt(p, ino, 0, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, size)
		if n, err := r.fs.ReadAt(p, ino, 0, got); err != nil || n != size {
			t.Fatalf("read %d, %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("double-indirect data mismatch")
		}
		// Remove it and make sure the space comes back.
		if err := r.fs.Unlink(p, ffs.RootIno, "huge"); err != nil {
			t.Fatal(err)
		}
		r.fs.Sync(p)
	})
}

func TestAppendGrowsFragments(t *testing.T) {
	// Appending in sub-block chunks exercises fragment extension: the
	// file's tail run grows from 1 to 8 fragments.
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "frags")
		var all []byte
		off := uint64(0)
		for i := 0; i < 20; i++ {
			chunk := fileData(i, 700)
			if err := r.fs.WriteAt(p, ino, off, chunk); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			all = append(all, chunk...)
			off += uint64(len(chunk))
		}
		got := make([]byte, len(all))
		n, err := r.fs.ReadAt(p, ino, 0, got)
		if err != nil || n != len(all) || !bytes.Equal(got, all) {
			t.Fatalf("append read-back mismatch: n=%d err=%v", n, err)
		}
	})
}

func TestFragmentMoveWhenNeighborTaken(t *testing.T) {
	// Create a 1-fragment file, then force its neighbours to be taken so
	// extension must move the fragment run.
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		a, _ := r.fs.Create(p, ffs.RootIno, "a")
		r.fs.WriteAt(p, a, 0, fileData(1, 1000))
		// Fill neighbouring fragments with other small files.
		for i := 0; i < 7; i++ {
			f, _ := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("fill%d", i))
			r.fs.WriteAt(p, f, 0, fileData(i+10, 1000))
		}
		// Extending "a" now requires a move.
		data2 := fileData(2, 3000)
		if err := r.fs.WriteAt(p, a, 0, data2); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 3000)
		n, err := r.fs.ReadAt(p, a, 0, got)
		if err != nil || n != 3000 || !bytes.Equal(got, data2) {
			t.Fatalf("moved fragment read-back failed: n=%d err=%v", n, err)
		}
	})
}

func TestUnlinkFreesSpace(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		r.fs.WriteAt(p, ino, 0, fileData(1, 50<<10))
		if err := r.fs.Unlink(p, ffs.RootIno, "f"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Lookup(p, ffs.RootIno, "f"); err != ffs.ErrNotExist {
			t.Fatalf("lookup after unlink: %v", err)
		}
		if _, err := r.fs.Stat(p, ino); err != ffs.ErrNotExist {
			t.Fatalf("stat after unlink: %v", err)
		}
		// The inode and space must be reusable.
		ino2, err := r.fs.Create(p, ffs.RootIno, "g")
		if err != nil {
			t.Fatal(err)
		}
		if err := r.fs.WriteAt(p, ino2, 0, fileData(2, 50<<10)); err != nil {
			t.Fatal(err)
		}
	})
}

func TestHardLinks(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "orig")
		r.fs.WriteAt(p, ino, 0, []byte("shared"))
		if err := r.fs.Link(p, ino, ffs.RootIno, "alias"); err != nil {
			t.Fatal(err)
		}
		ip, _ := r.fs.Stat(p, ino)
		if ip.Nlink != 2 {
			t.Fatalf("nlink = %d, want 2", ip.Nlink)
		}
		if err := r.fs.Unlink(p, ffs.RootIno, "orig"); err != nil {
			t.Fatal(err)
		}
		// Still readable through the alias.
		got, _ := r.fs.Lookup(p, ffs.RootIno, "alias")
		if got != ino {
			t.Fatal("alias lost")
		}
		ip, err := r.fs.Stat(p, ino)
		if err != nil || ip.Nlink != 1 {
			t.Fatalf("nlink after unlink = %d, %v", ip.Nlink, err)
		}
		r.fs.Unlink(p, ffs.RootIno, "alias")
		if _, err := r.fs.Stat(p, ino); err != ffs.ErrNotExist {
			t.Fatalf("inode survived final unlink: %v", err)
		}
	})
}

func TestMkdirRmdir(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		sub, err := r.fs.Mkdir(p, ffs.RootIno, "sub")
		if err != nil {
			t.Fatal(err)
		}
		ip, _ := r.fs.Stat(p, sub)
		if !ip.IsDir() || ip.Nlink != 2 {
			t.Fatalf("child dir: %+v", ip)
		}
		rip, _ := r.fs.Stat(p, ffs.RootIno)
		if rip.Nlink != 3 {
			t.Fatalf("parent nlink = %d, want 3", rip.Nlink)
		}
		// "." and ".." resolve.
		if got, _ := r.fs.Lookup(p, sub, "."); got != sub {
			t.Error("'.' wrong")
		}
		if got, _ := r.fs.Lookup(p, sub, ".."); got != ffs.RootIno {
			t.Error("'..' wrong")
		}
		// Non-empty rmdir fails.
		f, _ := r.fs.Create(p, sub, "f")
		_ = f
		if err := r.fs.Rmdir(p, ffs.RootIno, "sub"); err != ffs.ErrNotEmpty {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		r.fs.Unlink(p, sub, "f")
		if err := r.fs.Rmdir(p, ffs.RootIno, "sub"); err != nil {
			t.Fatal(err)
		}
		rip, _ = r.fs.Stat(p, ffs.RootIno)
		if rip.Nlink != 2 {
			t.Fatalf("parent nlink after rmdir = %d", rip.Nlink)
		}
		if _, err := r.fs.Stat(p, sub); err != ffs.ErrNotExist {
			t.Fatalf("dir inode survived rmdir: %v", err)
		}
	})
}

func TestDirectoryGrowth(t *testing.T) {
	// Enough entries to grow the directory past several chunks and
	// fragments.
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		inos := map[string]ffs.Ino{}
		for i := 0; i < 400; i++ {
			name := fmt.Sprintf("file-with-a-longish-name-%04d", i)
			ino, err := r.fs.Create(p, ffs.RootIno, name)
			if err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
			inos[name] = ino
		}
		for name, want := range inos {
			got, err := r.fs.Lookup(p, ffs.RootIno, name)
			if err != nil || got != want {
				t.Fatalf("lookup %q = %d, %v; want %d", name, got, err, want)
			}
		}
		ents, err := r.fs.ReadDir(p, ffs.RootIno)
		if err != nil || len(ents) != 400 {
			t.Fatalf("ReadDir: %d entries, %v", len(ents), err)
		}
	})
}

func TestDirEntrySpaceReuse(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			r.fs.Create(p, ffs.RootIno, fmt.Sprintf("f%02d", i))
		}
		ip, _ := r.fs.Stat(p, ffs.RootIno)
		sizeBefore := ip.Size
		for i := 0; i < 30; i++ {
			r.fs.Unlink(p, ffs.RootIno, fmt.Sprintf("f%02d", i))
		}
		for i := 0; i < 30; i++ {
			if _, err := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("g%02d", i)); err != nil {
				t.Fatal(err)
			}
		}
		ip, _ = r.fs.Stat(p, ffs.RootIno)
		if ip.Size != sizeBefore {
			t.Errorf("directory grew from %d to %d despite free space", sizeBefore, ip.Size)
		}
	})
}

func TestRename(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "old")
		r.fs.WriteAt(p, ino, 0, []byte("payload"))
		sub, _ := r.fs.Mkdir(p, ffs.RootIno, "d")
		if err := r.fs.Rename(p, ffs.RootIno, "old", sub, "new"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Lookup(p, ffs.RootIno, "old"); err != ffs.ErrNotExist {
			t.Fatal("old name survived rename")
		}
		got, err := r.fs.Lookup(p, sub, "new")
		if err != nil || got != ino {
			t.Fatalf("new name: %d, %v", got, err)
		}
		ip, _ := r.fs.Stat(p, ino)
		if ip.Nlink != 1 {
			t.Fatalf("nlink after rename = %d", ip.Nlink)
		}
	})
}

func TestRenameReplacesTarget(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		src, _ := r.fs.Create(p, ffs.RootIno, "src")
		dst, _ := r.fs.Create(p, ffs.RootIno, "dst")
		if err := r.fs.Rename(p, ffs.RootIno, "src", ffs.RootIno, "dst"); err != nil {
			t.Fatal(err)
		}
		got, err := r.fs.Lookup(p, ffs.RootIno, "dst")
		if err != nil || got != src {
			t.Fatalf("dst resolves to %d, %v; want %d", got, err, src)
		}
		if _, err := r.fs.Stat(p, dst); err != ffs.ErrNotExist {
			t.Fatalf("replaced target not freed: %v", err)
		}
	})
}

func TestConcurrentUsersSeparateDirs(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	var wg sim.WaitGroup
	for u := 0; u < 4; u++ {
		u := u
		wg.Add(1)
		r.eng.Spawn(fmt.Sprintf("user%d", u), func(p *sim.Proc) {
			defer wg.Done(r.eng)
			dir, err := r.fs.Mkdir(p, ffs.RootIno, fmt.Sprintf("u%d", u))
			if err != nil {
				t.Errorf("user %d mkdir: %v", u, err)
				return
			}
			for i := 0; i < 25; i++ {
				ino, err := r.fs.Create(p, dir, fmt.Sprintf("f%d", i))
				if err != nil {
					t.Errorf("user %d create %d: %v", u, i, err)
					return
				}
				if err := r.fs.WriteAt(p, ino, 0, fileData(u*100+i, 3000)); err != nil {
					t.Errorf("user %d write: %v", u, err)
					return
				}
			}
		})
	}
	done := false
	r.eng.Spawn("join", func(p *sim.Proc) { wg.Wait(p); done = true })
	r.eng.Run()
	if !done {
		t.Fatal("users did not finish")
	}
	// Verify all content.
	r.run(t, func(p *sim.Proc) {
		for u := 0; u < 4; u++ {
			dir, _ := r.fs.Lookup(p, ffs.RootIno, fmt.Sprintf("u%d", u))
			ents, _ := r.fs.ReadDir(p, dir)
			if len(ents) != 25 {
				t.Fatalf("user %d has %d files", u, len(ents))
			}
		}
	})
}

func TestOutOfInodes(t *testing.T) {
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 32<<20)
	if _, err := ffs.Format(dsk, ffs.FormatParams{TotalBytes: 32 << 20, NInodes: 64}); err != nil {
		t.Fatal(err)
	}
	drv := dev.New(eng, dsk, dev.Config{Mode: dev.ModeIgnore})
	cpu := &sim.CPU{}
	c := cache.New(eng, drv, cpu, cache.Config{})
	eng.Spawn("t", func(p *sim.Proc) {
		fs, err := ffs.Mount(eng, cpu, c, ordering.NewNoOrder(), ffs.Config{}, p)
		if err != nil {
			t.Error(err)
			return
		}
		var lastErr error
		for i := 0; i < 70; i++ {
			_, lastErr = fs.Create(p, ffs.RootIno, fmt.Sprintf("f%d", i))
			if lastErr != nil {
				break
			}
		}
		if lastErr != ffs.ErrNoInodes {
			t.Errorf("expected ErrNoInodes, got %v", lastErr)
		}
	})
	eng.Run()
}

func TestSyncMakesEverythingDurable(t *testing.T) {
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "durable")
		r.fs.WriteAt(p, ino, 0, fileData(7, 20<<10))
		r.fs.Sync(p)
	})
	if n := r.c.DirtyCount(); n != 0 {
		t.Fatalf("%d dirty buffers after Sync", n)
	}
	if r.drv.Busy() {
		t.Fatal("driver still busy after Sync")
	}
}

// Property: random sequences of create/write/unlink in one directory keep a
// shadow model consistent with the file system.
func TestRandomOpsMatchModelQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
		ok := true
		r.run(t, func(p *sim.Proc) {
			model := map[string][]byte{}
			for step := 0; step < 60 && ok; step++ {
				name := fmt.Sprintf("n%d", rng.Intn(12))
				switch rng.Intn(3) {
				case 0: // create+write
					if _, exists := model[name]; exists {
						break
					}
					ino, err := r.fs.Create(p, ffs.RootIno, name)
					if err != nil {
						ok = false
						break
					}
					data := fileData(int(rng.Int31()), rng.Intn(20000))
					if err := r.fs.WriteAt(p, ino, 0, data); err != nil {
						ok = false
						break
					}
					model[name] = data
				case 1: // unlink
					if _, exists := model[name]; !exists {
						break
					}
					if err := r.fs.Unlink(p, ffs.RootIno, name); err != nil {
						ok = false
						break
					}
					delete(model, name)
				case 2: // verify
					data, exists := model[name]
					ino, err := r.fs.Lookup(p, ffs.RootIno, name)
					if exists != (err == nil) {
						ok = false
						break
					}
					if !exists {
						break
					}
					got := make([]byte, len(data)+10)
					n, err := r.fs.ReadAt(p, ino, 0, got)
					if err != nil || n != len(data) || !bytes.Equal(got[:n], data) {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// All five scheme stand-ins must produce identical logical file system
// state; they differ only in write ordering and timing.
func TestSchemesAgreeOnLogicalState(t *testing.T) {
	schemes := []struct {
		name string
		ord  ffs.Ordering
		mode dev.Config
	}{
		{"noorder", ordering.NewNoOrder(), dev.Config{Mode: dev.ModeIgnore}},
		{"conventional", ordering.NewConventional(), dev.Config{Mode: dev.ModeIgnore}},
		{"flag", ordering.NewFlag(), dev.Config{Mode: dev.ModeFlag, Sem: dev.SemPart, NR: true}},
		{"chains", ordering.NewChains(), dev.Config{Mode: dev.ModeChains}},
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			dsk := disk.New(disk.HPC2447(), 96<<20)
			if _, err := ffs.Format(dsk, ffs.FormatParams{TotalBytes: 96 << 20, NInodes: 4096}); err != nil {
				t.Fatal(err)
			}
			drv := dev.New(eng, dsk, sc.mode)
			cpu := &sim.CPU{}
			c := cache.New(eng, drv, cpu, cache.Config{MaxBytes: 8 << 20, CB: true})
			eng.Spawn("t", func(p *sim.Proc) {
				fs, err := ffs.Mount(eng, cpu, c, sc.ord, ffs.Config{AllocInit: true}, p)
				if err != nil {
					t.Error(err)
					return
				}
				dir, _ := fs.Mkdir(p, ffs.RootIno, "work")
				var inos []ffs.Ino
				for i := 0; i < 20; i++ {
					ino, err := fs.Create(p, dir, fmt.Sprintf("f%d", i))
					if err != nil {
						t.Errorf("create: %v", err)
						return
					}
					fs.WriteAt(p, ino, 0, fileData(i, 5000+i*777))
					inos = append(inos, ino)
				}
				for i := 0; i < 10; i++ {
					if err := fs.Unlink(p, dir, fmt.Sprintf("f%d", i)); err != nil {
						t.Errorf("unlink: %v", err)
						return
					}
				}
				fs.Sync(p)
				ents, _ := fs.ReadDir(p, dir)
				if len(ents) != 10 {
					t.Errorf("%d entries left, want 10", len(ents))
				}
				for i := 10; i < 20; i++ {
					want := fileData(i, 5000+i*777)
					got := make([]byte, len(want))
					n, err := fs.ReadAt(p, inos[i], 0, got)
					if err != nil || n != len(want) || !bytes.Equal(got, want) {
						t.Errorf("file %d corrupt under %s", i, sc.name)
						return
					}
				}
			})
			eng.Run()
		})
	}
}

func TestNoHeldBuffersAfterOperations(t *testing.T) {
	// Every operation must release what it holds (the brelse discipline);
	// a leak would pin buffers against eviction forever.
	r := newRig(t, ordering.NewNoOrder(), ffs.Config{})
	r.run(t, func(p *sim.Proc) {
		dir, _ := r.fs.Mkdir(p, ffs.RootIno, "d")
		for i := 0; i < 30; i++ {
			name := fmt.Sprintf("f%d", i)
			ino, err := r.fs.Create(p, dir, name)
			if err != nil {
				t.Fatal(err)
			}
			r.fs.WriteAt(p, ino, 0, fileData(i, 9000))
			r.fs.ReadAt(p, ino, 0, make([]byte, 100))
			r.fs.Stat(p, ino)
			r.fs.Lookup(p, dir, name)
		}
		r.fs.ReadDir(p, dir)
		r.fs.Link(p, mustLookup(t, p, r.fs, dir, "f1"), dir, "l1")
		r.fs.Rename(p, dir, "f2", dir, "r2")
		r.fs.Rename(p, dir, "f3", dir, "f4") // replace
		for i := 5; i < 15; i++ {
			r.fs.Unlink(p, dir, fmt.Sprintf("f%d", i))
		}
		sub, _ := r.fs.Mkdir(p, dir, "sub")
		_ = sub
		r.fs.Rmdir(p, dir, "sub")
		r.fs.Sync(p)
	})
	if n := r.c.HeldCount(); n != 0 {
		t.Fatalf("%d buffers still held after operations", n)
	}
}

func mustLookup(t *testing.T, p *sim.Proc, fs *ffs.FS, dir ffs.Ino, name string) ffs.Ino {
	t.Helper()
	ino, err := fs.Lookup(p, dir, name)
	if err != nil {
		t.Fatal(err)
	}
	return ino
}
