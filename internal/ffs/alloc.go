package ffs

import (
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/sim"
)

// Free-map management. Both bitmaps are ordinary cached metadata: updates
// go through the ordering scheme's MetaUpdate hook (delayed writes; free
// maps need no ordering of their own because fsck reconstructs them — the
// paper's schemes all rely on fsck for free-map reconciliation after a
// crash).

// ibmapBuf returns the (whole) inode bitmap buffer.
func (fs *FS) ibmapBuf(p *sim.Proc) (*cache.Buf, error) {
	return fs.cache.Bread(p, int64(fs.sb.IBmapStart), int(fs.sb.IBmapFrags()))
}

// fbmapBuf returns the (whole) fragment bitmap buffer.
func (fs *FS) fbmapBuf(p *sim.Proc) (*cache.Buf, error) {
	return fs.cache.Bread(p, int64(fs.sb.FBmapStart), int(fs.sb.FBmapFrags()))
}

func bitGet(bm []byte, i int32) bool { return bm[i/8]&(1<<(uint(i)%8)) != 0 }
func bitSet(bm []byte, i int32)      { bm[i/8] |= 1 << (uint(i) % 8) }
func bitClr(bm []byte, i int32)      { bm[i/8] &^= 1 << (uint(i) % 8) }

// runFree reports whether frags [start, start+n) are all free.
func runFree(bm []byte, start int32, n int) bool {
	for i := int32(0); i < int32(n); i++ {
		if bitGet(bm, start+i) {
			return false
		}
	}
	return true
}

// Cylinder-group geometry: the data region is carved into allocation
// groups, as in FFS. New directories rotate across groups; files allocate
// in their directory's group and spill to the following ones when full.
// This is what gives multi-user workloads the scattered layout whose seek
// traffic the disk scheduler's (ordering-constrained) freedom matters for.
const cgFrags = 2048 // 2 MB groups

// nCG returns the number of allocation groups.
func (fs *FS) nCG() int32 {
	n := (fs.sb.TotalFrags - fs.sb.DataStart) / cgFrags
	if n < 1 {
		n = 1
	}
	return n
}

// cgStart returns the first fragment of group cg.
func (fs *FS) cgStart(cg int32) int32 {
	return fs.sb.DataStart + cg%fs.nCG()*cgFrags
}

// cgEnd returns the fragment just past group cg.
func (fs *FS) cgEnd(cg int32) int32 {
	end := fs.cgStart(cg) + cgFrags
	if end > fs.sb.TotalFrags {
		end = fs.sb.TotalFrags
	}
	return end
}

// cgOfFrag returns the group containing frag.
func (fs *FS) cgOfFrag(frag int32) int32 {
	if frag < fs.sb.DataStart {
		return 0
	}
	return (frag - fs.sb.DataStart) / cgFrags
}

// preferredCG returns the allocation group for ino: its recorded
// preference (directories get a fresh group, files inherit their
// directory's), or the group of its first data block.
func (fs *FS) preferredCG(ino Ino, ip *Inode) int32 {
	if cg, ok := fs.prefCG[ino]; ok {
		return cg
	}
	if ip != nil && ip.Direct[0] != 0 {
		return fs.cgOfFrag(ip.Direct[0])
	}
	return 0
}

// assignCG records ino's allocation group.
func (fs *FS) assignCG(ino Ino, cg int32) { fs.prefCG[ino] = cg % fs.nCG() }

// nextDirCG rotates new directories across groups (the FFS policy of
// spreading directories out).
func (fs *FS) nextDirCG() int32 {
	fs.dirCGRotor = (fs.dirCGRotor + 1) % fs.nCG()
	return fs.dirCGRotor
}

// allocFrags allocates a run of n (1..8) fragments that does not cross a
// block boundary, preferring allocation group cg and spilling forward.
func (fs *FS) allocFrags(p *sim.Proc, n int, cg int32) (int32, error) {
	if n < 1 || n > BlockFrags {
		panic(fmt.Sprintf("ffs: allocFrags(%d)", n))
	}
	fs.lockAlloc(p)
	defer fs.allocMu.Unlock(fs.eng)
	fs.charge(p, fs.cfg.Costs.AllocOp)

	fb, err := fs.fbmapBuf(p)
	if err != nil {
		return 0, err
	}
	defer fb.Hold().Unhold()
	bm := fb.Data
	try := func(from, to int32) (int32, bool) {
		// Scan block by block; within a block, try each aligned start that
		// keeps the run inside the block.
		blk := from / BlockFrags * BlockFrags
		if blk < from {
			blk += BlockFrags
		}
		for ; blk+BlockFrags <= to; blk += BlockFrags {
			for s := blk; s+int32(n) <= blk+BlockFrags; s++ {
				if runFree(bm, s, n) {
					return s, true
				}
				if n == BlockFrags {
					break // full blocks only at aligned starts
				}
			}
		}
		return 0, false
	}
	// Scan the preferred group, then the following groups, wrapping.
	ngroups := fs.nCG()
	var start int32
	ok := false
	for g := int32(0); g < ngroups && !ok; g++ {
		grp := (cg + g) % ngroups
		start, ok = try(fs.cgStart(grp), fs.cgEnd(grp))
	}
	if !ok {
		return 0, ErrNoSpace
	}
	fs.cache.PrepareModify(p, fb)
	for i := int32(0); i < int32(n); i++ {
		bitSet(bm, start+i)
	}
	fs.ord.MetaUpdate(p, fb)
	return start, nil
}

// tryExtendFrags grows the run [start, start+oldN) to newN fragments in
// place if the following fragments are free (and stay inside the block).
func (fs *FS) tryExtendFrags(p *sim.Proc, start int32, oldN, newN int) bool {
	if start%BlockFrags+int32(newN) > BlockFrags {
		return false
	}
	fs.lockAlloc(p)
	defer fs.allocMu.Unlock(fs.eng)
	fs.charge(p, fs.cfg.Costs.AllocOp)
	fb, err := fs.fbmapBuf(p)
	if err != nil {
		return false // cannot extend; the caller falls back to a move
	}
	defer fb.Hold().Unhold()
	if !runFree(fb.Data, start+int32(oldN), newN-oldN) {
		return false
	}
	fs.cache.PrepareModify(p, fb)
	for i := oldN; i < newN; i++ {
		bitSet(fb.Data, start+int32(i))
	}
	fs.ord.MetaUpdate(p, fb)
	return true
}

// allocInode allocates a free inode number.
func (fs *FS) allocInode(p *sim.Proc) (Ino, error) {
	fs.lockAlloc(p)
	defer fs.allocMu.Unlock(fs.eng)
	fs.charge(p, fs.cfg.Costs.AllocOp)
	ib, err := fs.ibmapBuf(p)
	if err != nil {
		return 0, err
	}
	defer ib.Hold().Unhold()
	bm := ib.Data
	n := Ino(fs.sb.NInodes)
	scan := func(from, to Ino) (Ino, bool) {
		for ino := from; ino < to; ino++ {
			if !bitGet(bm, int32(ino)) {
				return ino, true
			}
		}
		return 0, false
	}
	ino, ok := scan(fs.inoRotor, n)
	if !ok {
		ino, ok = scan(RootIno+1, fs.inoRotor)
	}
	if !ok {
		return 0, ErrNoInodes
	}
	fs.cache.PrepareModify(p, ib)
	bitSet(bm, int32(ino))
	fs.inoRotor = ino + 1
	if fs.inoRotor >= n {
		fs.inoRotor = RootIno + 1
	}
	fs.ord.MetaUpdate(p, ib)
	return ino, nil
}

// ApplyFree releases the resources named by rec: cached buffers are
// dropped, fragment bits cleared, and the inode bit cleared when rec frees
// an inode. Ordering schemes call this at the moment their discipline
// allows re-use (immediately for No Order; after the relevant disk write
// for Conventional, Flag and Chains; from a workitem for Soft Updates).
func (fs *FS) ApplyFree(p *sim.Proc, rec *FreeRec) {
	fs.lockAlloc(p)
	defer fs.allocMu.Unlock(fs.eng)
	fs.charge(p, fs.cfg.Costs.AllocOp)
	fb, err := fs.fbmapBuf(p)
	if err != nil {
		// Hook context: no caller to return the error to. Leaking the
		// resources (bits stay set) is the safe degradation — fsck's
		// free-map reconciliation reclaims them after the next crash.
		fs.count("leak_free")
		return
	}
	defer fb.Hold().Unhold()
	fs.cache.PrepareModify(p, fb)
	for _, run := range rec.Frags {
		fs.cache.Drop(int64(run.Start))
		for i := int32(0); i < int32(run.N); i++ {
			bitClr(fb.Data, run.Start+i)
		}
	}
	fs.ord.MetaUpdate(p, fb)
	if rec.FreeIno != 0 {
		ib, err := fs.ibmapBuf(p)
		if err != nil {
			fs.count("leak_free")
			return
		}
		defer ib.Hold().Unhold()
		fs.cache.PrepareModify(p, ib)
		bitClr(ib.Data, int32(rec.FreeIno))
		fs.ord.MetaUpdate(p, ib)
	}
}

// FreeFragsRaw clears fragment bits without dropping buffers (used by the
// fragment-move path where the buffer was already relocated).
func (fs *FS) freeRun(p *sim.Proc, run FragRun) {
	fs.ApplyFree(p, &FreeRec{FS: fs, Frags: []FragRun{run}})
}
