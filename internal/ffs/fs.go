package ffs

import (
	"errors"
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// Errors returned by file system operations.
var (
	ErrExist    = errors.New("ffs: file exists")
	ErrNotExist = errors.New("ffs: no such file or directory")
	ErrNotDir   = errors.New("ffs: not a directory")
	ErrIsDir    = errors.New("ffs: is a directory")
	ErrNotEmpty = errors.New("ffs: directory not empty")
	ErrNoSpace  = errors.New("ffs: no space left on device")
	ErrNoInodes = errors.New("ffs: out of inodes")
	ErrNameLen  = errors.New("ffs: name too long")
)

// Costs is the CPU cost model, calibrated to the paper's 33 MHz i486
// (NCR 3433). Every file system operation charges these against the shared
// simulated CPU, which is what makes the compute columns of the paper's
// tables come out.
type Costs struct {
	Syscall      sim.Duration // entry/exit, argument copying
	DirScanEntry sim.Duration // per directory entry examined
	DirModify    sim.Duration // entry add/remove bookkeeping
	InodeOp      sim.Duration // inode encode/decode/update
	AllocOp      sim.Duration // bitmap search + update
	PerKBCopy    sim.Duration // user<->cache memory copy per KB
}

// DefaultCosts approximates the paper's hardware.
func DefaultCosts() Costs {
	return Costs{
		Syscall:      250 * sim.Microsecond,
		DirScanEntry: 3 * sim.Microsecond,
		DirModify:    400 * sim.Microsecond,
		InodeOp:      150 * sim.Microsecond,
		AllocOp:      500 * sim.Microsecond,
		PerKBCopy:    70 * sim.Microsecond,
	}
}

// Config parameterizes a mount.
type Config struct {
	// AllocInit enforces the allocation-initialization dependency for
	// regular file data blocks (rule 3 for data). Directory and indirect
	// blocks are always initialized in order, as in real FFS derivatives.
	AllocInit bool
	Costs     Costs
	// Obs, when non-nil, records an operation span for every FS entry
	// point (internal/obs). Nil disables tracing at zero cost.
	Obs *obs.Recorder
}

// FS is a mounted file system.
type FS struct {
	eng   *sim.Engine
	cpu   *sim.CPU
	cache *cache.Cache
	ord   Ordering
	cfg   Config
	sb    Superblock

	allocMu    sim.Mutex
	inoRotor   Ino
	prefCG     map[Ino]int32
	dirCGRotor int32

	inoLocks map[Ino]*sim.Mutex

	// Stats.
	OpCount map[string]int64
}

// Mount reads the superblock through the cache and attaches the ordering
// scheme.
func Mount(eng *sim.Engine, cpu *sim.CPU, c *cache.Cache, ord Ordering, cfg Config, p *sim.Proc) (*FS, error) {
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	fs := &FS{
		eng:      eng,
		cpu:      cpu,
		cache:    c,
		ord:      ord,
		cfg:      cfg,
		inoLocks: make(map[Ino]*sim.Mutex),
		prefCG:   make(map[Ino]int32),
		OpCount:  make(map[string]int64),
	}
	sbuf, err := c.Bread(p, 0, BlockFrags)
	if err != nil {
		return nil, err
	}
	if err := fs.sb.decode(sbuf.Data); err != nil {
		return nil, err
	}
	fs.inoRotor = RootIno + 1
	c.Hooks = ord.Hooks()
	ord.Start(fs)
	return fs, nil
}

// Superblock returns the mounted superblock (read-only use).
func (fs *FS) Superblock() Superblock { return fs.sb }

// Cache returns the buffer cache.
func (fs *FS) Cache() *cache.Cache { return fs.cache }

// Engine returns the simulation engine.
func (fs *FS) Engine() *sim.Engine { return fs.eng }

// CPU returns the simulated processor.
func (fs *FS) CPU() *sim.CPU { return fs.cpu }

// Ordering returns the active scheme.
func (fs *FS) Ordering() Ordering { return fs.ord }

// Config returns the mount configuration.
func (fs *FS) Config() Config { return fs.cfg }

func (fs *FS) charge(p *sim.Proc, d sim.Duration) {
	if fs.cpu != nil {
		sp := obs.SpanOf(p)
		sp.Push(p, obs.StageCPU)
		fs.cpu.Use(p, d)
		sp.Pop(p)
	}
}

func (fs *FS) count(op string) { fs.OpCount[op]++ }

// begin opens the operation span for an FS entry point (nil when tracing
// is off or the entry is nested inside another traced operation).
func (fs *FS) begin(p *sim.Proc, op obs.Op) *obs.Span {
	return fs.cfg.Obs.Begin(p, op)
}

// end closes sp (no-op on nil).
func (fs *FS) end(p *sim.Proc, sp *obs.Span) {
	fs.cfg.Obs.End(p, sp)
}

// lockInode acquires the per-inode lock.
func (fs *FS) lockInode(p *sim.Proc, ino Ino) {
	mu := fs.inoLocks[ino]
	if mu == nil {
		mu = &sim.Mutex{}
		fs.inoLocks[ino] = mu
	}
	sp := obs.SpanOf(p)
	sp.Push(p, obs.StageLock)
	mu.Lock(p)
	sp.Pop(p)
}

// lockAlloc acquires the allocation lock (span-tagged like lockInode;
// unlock stays a plain fs.allocMu.Unlock since it never blocks).
func (fs *FS) lockAlloc(p *sim.Proc) {
	sp := obs.SpanOf(p)
	sp.Push(p, obs.StageLock)
	fs.allocMu.Lock(p)
	sp.Pop(p)
}

func (fs *FS) unlockInode(ino Ino) {
	fs.inoLocks[ino].Unlock(fs.eng)
}

// lockPair locks two inodes in canonical order (deadlock avoidance for
// rename).
func (fs *FS) lockPair(p *sim.Proc, a, b Ino) {
	if a == b {
		fs.lockInode(p, a)
		return
	}
	if a > b {
		a, b = b, a
	}
	fs.lockInode(p, a)
	fs.lockInode(p, b)
}

func (fs *FS) unlockPair(a, b Ino) {
	if a == b {
		fs.unlockInode(a)
		return
	}
	fs.unlockInode(a)
	fs.unlockInode(b)
}

// inodeBuf returns the (held) buffer holding ino's inode-table block and
// the byte offset of the inode within it. The caller must release it.
func (fs *FS) inodeBuf(p *sim.Proc, ino Ino) (*cache.Buf, int, error) {
	if ino == 0 || uint32(ino) >= fs.sb.NInodes {
		panic(fmt.Sprintf("ffs: inode %d out of range", ino))
	}
	frag, off := fs.sb.InodeFrag(ino)
	b, err := fs.cache.Bread(p, int64(frag), BlockFrags)
	if err != nil {
		return nil, 0, err
	}
	return b.Hold(), off, nil
}

// getInode decodes ino from its table block; the returned buffer is held
// and must be released by the caller.
func (fs *FS) getInode(p *sim.Proc, ino Ino) (Inode, *cache.Buf, int, error) {
	b, off, err := fs.inodeBuf(p, ino)
	if err != nil {
		return Inode{}, nil, 0, err
	}
	var ip Inode
	ip.decode(b.Data[off : off+InodeSize])
	return ip, b, off, nil
}

// putInode encodes ip back into its table block after waiting out any
// write lock. The caller routes the write through an ordering hook.
func (fs *FS) putInode(p *sim.Proc, ip *Inode, b *cache.Buf, off int) {
	fs.cache.PrepareModify(p, b)
	ip.encode(b.Data[off : off+InodeSize])
}

// Stat returns the inode's current state (a read-only operation).
func (fs *FS) Stat(p *sim.Proc, ino Ino) (Inode, error) {
	sp := fs.begin(p, obs.OpStat)
	defer fs.end(p, sp)
	fs.count("stat")
	fs.charge(p, fs.cfg.Costs.Syscall+fs.cfg.Costs.InodeOp)
	ip, b, _, err := fs.getInode(p, ino)
	if err != nil {
		return Inode{}, err
	}
	fs.rele(b)
	if !ip.Allocated() {
		return ip, ErrNotExist
	}
	return ip, nil
}

// Sync flushes all dirty state (delayed writes, workitems) and waits for
// the disk to go idle. Benchmarks use it to bound an experiment.
func (fs *FS) Sync(p *sim.Proc) {
	sp := fs.begin(p, obs.OpSync)
	defer fs.end(p, sp)
	fs.count("sync")
	fs.cache.SyncAll(p, 64)
}
