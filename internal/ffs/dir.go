package ffs

import (
	"encoding/binary"
	"fmt"
)

// Directory entry format (FFS-style, simplified):
//
//	ino     uint32  (0 = unused entry; its reclen is free space)
//	reclen  uint16  (total space this entry owns, 4-byte aligned)
//	namelen uint8
//	ftype   uint8
//	name    [namelen]byte, padded to 4-byte alignment
//
// Entries never cross a DirChunk (512-byte) boundary. Because disk sectors
// are 512 bytes and writes are sector-atomic, a crash can never tear an
// individual entry — the property all four ordering schemes rely on.
const (
	direntHdr  = 8
	maxNameLen = 255
)

// File types stored in directory entries (for fsck's benefit).
const (
	FtypeFile uint8 = 1
	FtypeDir  uint8 = 2
)

// entrySpace returns the aligned space a name needs.
func entrySpace(namelen int) int {
	return (direntHdr + namelen + 3) &^ 3
}

// Dirent is a decoded directory entry.
type Dirent struct {
	Ino    Ino
	Reclen int
	Name   string
	Ftype  uint8
	Off    int // byte offset within the directory block data
}

func putDirent(b []byte, ino Ino, reclen int, name string, ftype uint8) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(ino))
	le.PutUint16(b[4:], uint16(reclen))
	b[6] = uint8(len(name))
	b[7] = ftype
	copy(b[direntHdr:], name)
}

func readDirent(b []byte, off int) Dirent {
	le := binary.LittleEndian
	namelen := int(b[off+6])
	return Dirent{
		Ino:    Ino(le.Uint32(b[off:])),
		Reclen: int(le.Uint16(b[off+4:])),
		Name:   string(b[off+direntHdr : off+direntHdr+namelen]),
		Ftype:  b[off+7],
		Off:    off,
	}
}

// initDirChunks formats raw directory space: each 512-byte chunk becomes a
// single empty entry owning the whole chunk.
func initDirChunks(b []byte) {
	for off := 0; off < len(b); off += DirChunk {
		putDirent(b[off:], 0, DirChunk, "", 0)
	}
}

// scanChunk iterates the entries of one chunk, calling f with each; f
// returning false stops the scan. It returns the number of entries visited.
func scanChunk(b []byte, chunkOff int, f func(d Dirent) bool) int {
	n := 0
	off := chunkOff
	for off < chunkOff+DirChunk {
		d := readDirent(b, off)
		if d.Reclen <= 0 {
			break // corrupt; fsck's problem
		}
		n++
		if !f(d) {
			break
		}
		off += d.Reclen
	}
	return n
}

// findEntry scans directory data for name. It returns the entry and true if
// found, and always returns the total number of entries scanned (the CPU
// cost driver for the paper's "less CPU time spent checking the directory
// contents" effect).
//
// The scan reads raw dirent bytes in place: every create/lookup/remove
// walks directories, so materializing a Dirent (and its name string) per
// visited entry would put an allocation on the per-operation hot path. The
// string conversion in the name comparison is allocation-free (the
// compiler never heap-allocates a string used only as a comparison
// operand).
func findEntry(data []byte, name string) (Dirent, bool, int) {
	le := binary.LittleEndian
	scanned := 0
	for chunk := 0; chunk < len(data); chunk += DirChunk {
		for off := chunk; off < chunk+DirChunk; {
			reclen := int(le.Uint16(data[off+4:]))
			if reclen <= 0 {
				break // corrupt; fsck's problem
			}
			scanned++
			ino := Ino(le.Uint32(data[off:]))
			namelen := int(data[off+6])
			if ino != 0 && namelen == len(name) &&
				string(data[off+direntHdr:off+direntHdr+namelen]) == name {
				return readDirent(data, off), true, scanned
			}
			off += reclen
		}
	}
	return Dirent{}, false, scanned
}

// addEntryInData finds room for (name, ino) in existing directory data and
// stores the entry, returning its offset. ok is false when the block is
// full. Free space is either an unused entry (ino 0) or slack at the tail
// of a live entry's reclen.
func addEntryInData(data []byte, name string, ino Ino, ftype uint8) (off int, ok bool) {
	le := binary.LittleEndian
	need := entrySpace(len(name))
	for chunk := 0; chunk < len(data); chunk += DirChunk {
		for off := chunk; off < chunk+DirChunk; {
			reclen := int(le.Uint16(data[off+4:]))
			if reclen <= 0 {
				break // corrupt; fsck's problem
			}
			entIno := Ino(le.Uint32(data[off:]))
			if entIno == 0 && reclen >= need {
				// Claim the free entry's space.
				putDirent(data[off:], ino, reclen, name, ftype)
				return off, true
			}
			used := entrySpace(int(data[off+6]))
			if entIno != 0 && reclen-used >= need {
				// Split the slack off the live entry.
				le.PutUint16(data[off+4:], uint16(used))
				newOff := off + used
				putDirent(data[newOff:], ino, reclen-used, name, ftype)
				return newOff, true
			}
			off += reclen
		}
	}
	return 0, false
}

// removeEntryInData clears the entry at off, coalescing its space into the
// previous entry of the same chunk when one exists (the FFS compaction
// rule). It returns the offset that now owns the space.
func removeEntryInData(data []byte, off int) int {
	chunk := off / DirChunk * DirChunk
	le := binary.LittleEndian
	prev := -1
	for o := chunk; o < chunk+DirChunk && o != off; {
		reclen := int(le.Uint16(data[o+4:]))
		if reclen <= 0 {
			break // corrupt; fsck's problem
		}
		prev = o
		o += reclen
	}
	victimReclen := int(le.Uint16(data[off+4:]))
	if prev >= 0 {
		// Grow the previous entry over the victim's space.
		prevReclen := int(le.Uint16(data[prev+4:]))
		le.PutUint16(data[prev+4:], uint16(prevReclen+victimReclen))
		// Scrub the victim header so stale bytes can't masquerade as an
		// entry (the reclen walk no longer reaches it, but fsck reads raw
		// bytes).
		le.PutUint32(data[off:], 0)
		return prev
	}
	// First entry of the chunk: becomes an unused entry owning its space.
	putDirent(data[off:], 0, victimReclen, "", 0)
	return off
}

// countLive tallies directory data's live entries and reports whether any
// live entry other than "." and ".." exists. It is the allocation-free
// scan behind dirEmpty: rmdir checks every victim directory, and decoding
// a []Dirent per check would allocate on the remove hot path.
func countLive(data []byte) (live int, nonDot bool) {
	le := binary.LittleEndian
	for chunk := 0; chunk < len(data); chunk += DirChunk {
		for off := chunk; off < chunk+DirChunk; {
			reclen := int(le.Uint16(data[off+4:]))
			if reclen <= 0 {
				break // corrupt; fsck's problem
			}
			if Ino(le.Uint32(data[off:])) != 0 {
				live++
				namelen := int(data[off+6])
				name := data[off+direntHdr : off+direntHdr+namelen]
				if !(namelen == 1 && name[0] == '.') &&
					!(namelen == 2 && name[0] == '.' && name[1] == '.') {
					nonDot = true
				}
			}
			off += reclen
		}
	}
	return live, nonDot
}

// listEntries returns all live entries in directory data.
func listEntries(data []byte) []Dirent {
	var out []Dirent
	for chunk := 0; chunk < len(data); chunk += DirChunk {
		scanChunk(data, chunk, func(d Dirent) bool {
			if d.Ino != 0 {
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// mustAddEntryRaw is the mkfs helper for seeding "." and "..".
func mustAddEntryRaw(data []byte, name string, ino Ino, ftype uint8) {
	if _, ok := addEntryInData(data, name, ino, ftype); !ok {
		panic(fmt.Sprintf("ffs: mkfs could not add %q", name))
	}
}
