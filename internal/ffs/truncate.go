package ffs

import (
	"metaupdate/internal/sim"
)

// Truncate shrinks ino to newSize bytes. Freed fragments obey rule 2
// through the ordering scheme's FreeBlocks hook: they are not re-usable
// until the shrunken inode could be durable.
//
// Supported shapes (the substrate's files are dense):
//   - newSize == 0 for any file;
//   - any newSize <= current size while both old and new sizes stay within
//     the direct blocks (files up to 96 KB).
//
// Anything else returns ErrIsDir/ErrNotExist as appropriate or panics on
// misuse in tests; callers needing indirect-aware partial truncation should
// remove and rewrite (as every workload in the paper does).
func (fs *FS) Truncate(p *sim.Proc, ino Ino, newSize uint64) error {
	fs.count("truncate")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, ino)
	defer fs.unlockInode(ino)

	ip, ib, ioff, err := fs.getInode(p, ino)
	if err != nil {
		return err
	}
	defer fs.rele(ib)
	if !ip.Allocated() {
		return ErrNotExist
	}
	if ip.IsDir() {
		return ErrIsDir
	}
	if newSize >= ip.Size {
		return nil // grow-by-truncate (holes) unsupported; no-op like before
	}
	if newSize == 0 {
		// Full truncation reuses the freeFile machinery minus the inode
		// free: clear every pointer, keep the inode allocated.
		runs, err := fs.collectRuns(p, &ip)
		if err != nil {
			// Unreadable indirect block: free the collected prefix, leak
			// the rest for fsck's free-map reconciliation.
			fs.count("leak_free")
		}
		fs.charge(p, fs.cfg.Costs.InodeOp)
		fs.cache.PrepareModify(p, ib)
		ip.Size = 0
		for i := range ip.Direct {
			ip.Direct[i] = 0
		}
		ip.Indir, ip.Dindir = 0, 0
		fs.putInode(p, &ip, ib, ioff)
		rec := &FreeRec{FS: fs, OwnerIno: ino, OwnerBuf: ib, Frags: runs}
		fs.ord.FreeBlocks(p, rec)
		return nil
	}
	if blocksOf(ip.Size) > NDirect {
		return ErrNoSpace // partial truncation across indirects unsupported
	}

	oldBlocks := blocksOf(ip.Size)
	newBlocks := blocksOf(newSize)
	var runs []FragRun
	fs.charge(p, fs.cfg.Costs.InodeOp)
	fs.cache.PrepareModify(p, ib)
	// Whole blocks past the new end.
	for bi := newBlocks; bi < oldBlocks; bi++ {
		if ip.Direct[bi] != 0 {
			runs = append(runs, FragRun{Start: ip.Direct[bi], N: blockRunLen(ip.Size, bi)})
			ip.Direct[bi] = 0
		}
	}
	// The (new) final block may shed tail fragments.
	if newBlocks > 0 && ip.Direct[newBlocks-1] != 0 {
		oldNF := BlockFrags
		if newBlocks == oldBlocks {
			oldNF = lastBlockFrags(ip.Size)
		}
		newNF := lastBlockFrags(newSize)
		if newNF < oldNF {
			runs = append(runs, FragRun{
				Start: ip.Direct[newBlocks-1] + int32(newNF),
				N:     oldNF - newNF,
			})
			// Shrink the cached buffer to the surviving fragments so later
			// Breads agree on its size. The freed tail is re-cacheable by
			// its next owner.
			if b := fs.cache.Lookup(int64(ip.Direct[newBlocks-1])); b != nil {
				b.Hold()
				fs.cache.PrepareModify(p, b)
				fs.cache.Resize(b, newNF)
				b.Unhold()
			}
		}
	}
	ip.Size = newSize
	fs.putInode(p, &ip, ib, ioff)
	rec := &FreeRec{FS: fs, OwnerIno: ino, OwnerBuf: ib, Frags: runs}
	fs.ord.FreeBlocks(p, rec)
	return nil
}
