package ffs

import (
	"metaupdate/internal/cache"
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// User-visible file system operations. Each charges the CPU cost model and
// routes structural changes through the ordering scheme at the points
// described in order.go.
//
// Buffer discipline: getInode/inodeBuf, lookupLocked and dirAddEntry return
// *held* buffers (the classic brelse contract) — the cache will not evict
// them, so pointers stay valid across the virtual-time sleeps inside an
// operation. Every operation releases what it holds before returning.

func validName(name string) error {
	if len(name) == 0 || len(name) > maxNameLen || len(name) >= DirChunk-direntHdr {
		return ErrNameLen
	}
	return nil
}

// rele releases a held buffer (nil-safe).
func (fs *FS) rele(b *cache.Buf) {
	if b != nil {
		b.Unhold()
	}
}

// Lookup resolves name in directory dir.
func (fs *FS) Lookup(p *sim.Proc, dir Ino, name string) (Ino, error) {
	sp := fs.begin(p, obs.OpLookup)
	defer fs.end(p, sp)
	fs.count("lookup")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, dir)
	defer fs.unlockInode(dir)
	ino, db, _, err := fs.lookupLocked(p, dir, name)
	fs.rele(db)
	return ino, err
}

// lookupLocked scans dir for name; it returns the entry's inode, the held
// block buffer and entry offset. The caller holds dir's lock and must
// release the buffer.
func (fs *FS) lookupLocked(p *sim.Proc, dir Ino, name string) (Ino, *cache.Buf, int, error) {
	dip, dib, dioff, err := fs.getInode(p, dir)
	if err != nil {
		return 0, nil, 0, err
	}
	defer fs.rele(dib)
	if !dip.Allocated() {
		return 0, nil, 0, ErrNotExist
	}
	if !dip.IsDir() {
		return 0, nil, 0, ErrNotDir
	}
	nblocks := blocksOf(dip.Size)
	for bi := 0; bi < nblocks; bi++ {
		b, err := fs.readBlock(p, dir, &dip, dib, dioff, bi)
		if err != nil {
			return 0, nil, 0, err
		}
		limit := int(dip.Size) - bi*BlockSize
		if limit > len(b.Data) {
			limit = len(b.Data)
		}
		d, found, scanned := findEntry(b.Data[:limit], name)
		fs.charge(p, fs.cfg.Costs.DirScanEntry*sim.Duration(scanned))
		if found {
			return d.Ino, b.Hold(), d.Off, nil
		}
	}
	return 0, nil, 0, ErrNotExist
}

// dirAddEntry stores (name -> ino) in directory dir, growing it by one
// chunk when full. It returns the held directory block buffer and the
// entry offset. Caller holds dir's lock; the pointed-to inode must already
// be ordered (AddInode) by the caller.
func (fs *FS) dirAddEntry(p *sim.Proc, dir Ino, name string, ino Ino, ftype uint8) (*cache.Buf, int, error) {
	dip, dib, dioff, err := fs.getInode(p, dir)
	if err != nil {
		return nil, 0, err
	}
	defer fs.rele(dib)
	fs.charge(p, fs.cfg.Costs.DirModify)
	nblocks := blocksOf(dip.Size)
	for bi := 0; bi < nblocks; bi++ {
		b, err := fs.readBlock(p, dir, &dip, dib, dioff, bi)
		if err != nil {
			return nil, 0, err
		}
		limit := int(dip.Size) - bi*BlockSize
		if limit > len(b.Data) {
			limit = len(b.Data)
		}
		b.Hold()
		fs.cache.PrepareModify(p, b)
		if off, ok := addEntryInData(b.Data[:limit], name, ino, ftype); ok {
			return b, off, nil
		}
		b.Unhold()
	}
	// Grow the directory by one chunk.
	newSize := dip.Size + DirChunk
	bi := blocksOf(newSize) - 1
	wantNF := lastBlockFrags(newSize)
	chunkStart := (dip.Size % BlockSize)
	b, err := fs.growBlock(p, dir, &dip, dib, dioff, bi, wantNF, newSize, true,
		func(data []byte) {
			initDirChunks(data[chunkStart : chunkStart+DirChunk])
		})
	if err != nil {
		return nil, 0, err
	}
	off, ok := addEntryInData(b.Data[:chunkStart+DirChunk], name, ino, ftype)
	if !ok || off < int(chunkStart) {
		// The fresh chunk always fits a new entry at its start.
		panic("ffs: new directory chunk could not hold entry")
	}
	return b.Hold(), off, nil
}

// Create makes a new regular file in dir.
func (fs *FS) Create(p *sim.Proc, dir Ino, name string) (Ino, error) {
	sp := fs.begin(p, obs.OpCreate)
	defer fs.end(p, sp)
	fs.count("create")
	fs.charge(p, fs.cfg.Costs.Syscall)
	if err := validName(name); err != nil {
		return 0, err
	}
	fs.lockInode(p, dir)
	defer fs.unlockInode(dir)

	if _, db, _, err := fs.lookupLocked(p, dir, name); err == nil {
		fs.rele(db)
		return 0, ErrExist
	} else if err != ErrNotExist {
		return 0, err
	}

	ino, err := fs.allocInode(p)
	if err != nil {
		return 0, err
	}
	ib, ioff, err := fs.inodeBuf(p, ino)
	if err != nil {
		return 0, err
	}
	defer fs.rele(ib)
	fs.charge(p, fs.cfg.Costs.InodeOp)
	fs.cache.PrepareModify(p, ib)
	ip := Inode{Mode: ModeFile, Nlink: 1, Gen: DecodeInode(ib.Data[ioff:]).Gen + 1}
	ip.encode(ib.Data[ioff : ioff+InodeSize])

	fs.assignCG(ino, fs.preferredCG(dir, nil))
	rec := &LinkRec{FS: fs, Ino: ino, InoBuf: ib, NewInode: true, DirIno: dir}
	fs.ord.AddInode(p, rec)

	db, off, err := fs.dirAddEntry(p, dir, name, ino, FtypeFile)
	if err != nil {
		return 0, err
	}
	defer fs.rele(db)
	rec.DirBuf, rec.EntryOff = db, off
	fs.ord.AddEntry(p, rec)
	return ino, nil
}

// Mkdir makes a new directory in dir.
func (fs *FS) Mkdir(p *sim.Proc, dir Ino, name string) (Ino, error) {
	sp := fs.begin(p, obs.OpMkdir)
	defer fs.end(p, sp)
	fs.count("mkdir")
	fs.charge(p, fs.cfg.Costs.Syscall)
	if err := validName(name); err != nil {
		return 0, err
	}
	fs.lockInode(p, dir)
	defer fs.unlockInode(dir)

	if _, db, _, err := fs.lookupLocked(p, dir, name); err == nil {
		fs.rele(db)
		return 0, ErrExist
	} else if err != ErrNotExist {
		return 0, err
	}

	ino, err := fs.allocInode(p)
	if err != nil {
		return 0, err
	}
	// 1. Initialize the child inode (link count 2: "." and parent entry).
	cib, cioff, err := fs.inodeBuf(p, ino)
	if err != nil {
		return 0, err
	}
	defer fs.rele(cib)
	fs.charge(p, fs.cfg.Costs.InodeOp)
	fs.cache.PrepareModify(p, cib)
	cip := Inode{Mode: ModeDir, Nlink: 2, Gen: DecodeInode(cib.Data[cioff:]).Gen + 1}
	cip.encode(cib.Data[cioff : cioff+InodeSize])
	fs.assignCG(ino, fs.nextDirCG())
	childRec := &LinkRec{FS: fs, Ino: ino, InoBuf: cib, NewInode: true, DirIno: dir}
	fs.ord.AddInode(p, childRec)

	// 2. Bump the parent's link count ("..") before the ".." entry can hit
	// the disk.
	dip, dib, dioff, err := fs.getInode(p, dir)
	if err != nil {
		return 0, err
	}
	defer fs.rele(dib)
	fs.cache.PrepareModify(p, dib)
	dip.Nlink++
	fs.putInode(p, &dip, dib, dioff)
	parentRec := &LinkRec{FS: fs, Ino: dir, InoBuf: dib, DirIno: ino}
	fs.ord.AddInode(p, parentRec)

	// 3. The child's first directory block, with "." and ".." in place
	// before initialization is ordered.
	var dotOff, dotdotOff int
	cb, err := fs.growBlock(p, ino, &cip, cib, cioff, 0, 1, DirChunk, true,
		func(data []byte) {
			initDirChunks(data[:DirChunk])
			dotOff, _ = addEntryInData(data[:DirChunk], ".", ino, FtypeDir)
			dotdotOff, _ = addEntryInData(data[:DirChunk], "..", dir, FtypeDir)
		})
	if err != nil {
		return 0, err
	}
	defer fs.rele(cb.Hold())
	childRec2 := &LinkRec{FS: fs, Ino: ino, InoBuf: cib, NewInode: true,
		DirIno: ino, DirBuf: cb, EntryOff: dotOff}
	fs.ord.AddEntry(p, childRec2)
	parentRec.DirBuf, parentRec.EntryOff = cb, dotdotOff
	fs.ord.AddEntry(p, parentRec)

	// 4. The parent's entry for the child.
	db, off, err := fs.dirAddEntry(p, dir, name, ino, FtypeDir)
	if err != nil {
		return 0, err
	}
	defer fs.rele(db)
	childRec.DirBuf, childRec.EntryOff = db, off
	fs.ord.AddEntry(p, childRec)
	return ino, nil
}

// Link adds a new name for an existing file (classic hard link).
func (fs *FS) Link(p *sim.Proc, ino Ino, dir Ino, name string) error {
	sp := fs.begin(p, obs.OpLink)
	defer fs.end(p, sp)
	fs.count("link")
	fs.charge(p, fs.cfg.Costs.Syscall)
	if err := validName(name); err != nil {
		return err
	}
	fs.lockPair(p, ino, dir)
	defer fs.unlockPair(ino, dir)

	if _, db, _, err := fs.lookupLocked(p, dir, name); err == nil {
		fs.rele(db)
		return ErrExist
	} else if err != ErrNotExist {
		return err
	}
	ip, ib, ioff, err := fs.getInode(p, ino)
	if err != nil {
		return err
	}
	defer fs.rele(ib)
	if !ip.Allocated() {
		return ErrNotExist
	}
	if ip.IsDir() {
		return ErrIsDir
	}
	fs.cache.PrepareModify(p, ib)
	ip.Nlink++
	fs.putInode(p, &ip, ib, ioff)
	rec := &LinkRec{FS: fs, Ino: ino, InoBuf: ib, DirIno: dir}
	fs.ord.AddInode(p, rec)

	db, off, err := fs.dirAddEntry(p, dir, name, ino, FtypeFile)
	if err != nil {
		return err
	}
	defer fs.rele(db)
	rec.DirBuf, rec.EntryOff = db, off
	fs.ord.AddEntry(p, rec)
	return nil
}

// Unlink removes name (a regular file link) from dir.
func (fs *FS) Unlink(p *sim.Proc, dir Ino, name string) error {
	sp := fs.begin(p, obs.OpUnlink)
	defer fs.end(p, sp)
	fs.count("unlink")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, dir)
	defer fs.unlockInode(dir)

	ino, db, off, err := fs.lookupLocked(p, dir, name)
	if err != nil {
		return err
	}
	defer fs.rele(db)
	ip, ib, _, err := fs.getInode(p, ino)
	if err != nil {
		return err
	}
	fs.rele(ib)
	if ip.IsDir() {
		return ErrIsDir
	}
	fs.charge(p, fs.cfg.Costs.DirModify)
	fs.cache.PrepareModify(p, db)
	removeEntryInData(db.Data, off)
	rec := &RemRec{FS: fs, Ino: ino, DirIno: dir, DirBuf: db, EntryOff: off, DirLocked: true}
	fs.ord.RemoveEntry(p, rec)
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(p *sim.Proc, dir Ino, name string) error {
	sp := fs.begin(p, obs.OpRmdir)
	defer fs.end(p, sp)
	fs.count("rmdir")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, dir)
	defer fs.unlockInode(dir)

	ino, db, off, err := fs.lookupLocked(p, dir, name)
	if err != nil {
		return err
	}
	defer fs.rele(db)
	ip, cib, cioff, err := fs.getInode(p, ino)
	if err != nil {
		return err
	}
	defer fs.rele(cib)
	if !ip.IsDir() {
		return ErrNotDir
	}
	empty, err := fs.dirEmpty(p, ino, &ip, cib, cioff)
	if err != nil {
		return err
	}
	if !empty {
		return ErrNotEmpty
	}
	fs.charge(p, fs.cfg.Costs.DirModify)
	fs.cache.PrepareModify(p, db)
	removeEntryInData(db.Data, off)
	rec := &RemRec{FS: fs, Ino: ino, DirIno: dir, DirBuf: db, EntryOff: off, DirLocked: true}
	fs.ord.RemoveEntry(p, rec)
	return nil
}

func (fs *FS) dirEmpty(p *sim.Proc, ino Ino, ip *Inode, ib *cache.Buf, ioff int) (bool, error) {
	nblocks := blocksOf(ip.Size)
	for bi := 0; bi < nblocks; bi++ {
		b, err := fs.readBlock(p, ino, ip, ib, ioff, bi)
		if err != nil {
			return false, err
		}
		limit := int(ip.Size) - bi*BlockSize
		if limit > len(b.Data) {
			limit = len(b.Data)
		}
		live, nonDot := countLive(b.Data[:limit])
		fs.charge(p, fs.cfg.Costs.DirScanEntry*sim.Duration(live))
		if nonDot {
			return false, nil
		}
	}
	return true, nil
}

// Rename moves sname in sdir to dname in ddir. An existing destination
// entry is replaced in place (the sector-atomic overwrite satisfies rule 1
// for the pair); the classic add-then-remove ordering covers the rest.
func (fs *FS) Rename(p *sim.Proc, sdir Ino, sname string, ddir Ino, dname string) error {
	sp := fs.begin(p, obs.OpRename)
	defer fs.end(p, sp)
	fs.count("rename")
	fs.charge(p, fs.cfg.Costs.Syscall)
	if err := validName(dname); err != nil {
		return err
	}
	fs.lockPair(p, sdir, ddir)
	defer fs.unlockPair(sdir, ddir)

	ino, sdb, soff, err := fs.lookupLocked(p, sdir, sname)
	if err != nil {
		return err
	}
	defer fs.rele(sdb)
	ip, ib, ioff, err := fs.getInode(p, ino)
	if err != nil {
		return err
	}
	defer fs.rele(ib)
	if ip.IsDir() {
		return ErrIsDir // directory rename not supported by this substrate
	}

	// Add the new link first (rule 1): bump the link count, order the
	// inode write, then add/replace the destination entry.
	fs.cache.PrepareModify(p, ib)
	ip.Nlink++
	fs.putInode(p, &ip, ib, ioff)
	addRec := &LinkRec{FS: fs, Ino: ino, InoBuf: ib, DirIno: ddir}
	fs.ord.AddInode(p, addRec)

	oldIno, ddb, doff, derr := fs.lookupLocked(p, ddir, dname)
	switch derr {
	case nil:
		oldIp, oib, _, gerr := fs.getInode(p, oldIno)
		if gerr != nil {
			fs.rele(ddb)
			return gerr
		}
		fs.rele(oib)
		if oldIp.IsDir() {
			fs.rele(ddb)
			return ErrIsDir
		}
		// Atomic in-place replacement of the entry's inode number.
		fs.charge(p, fs.cfg.Costs.DirModify)
		fs.cache.PrepareModify(p, ddb)
		setPtr(ddb.Data, doff, int32(ino))
		addRec.DirBuf, addRec.EntryOff = ddb, doff
		fs.ord.AddEntry(p, addRec)
		remOld := &RemRec{FS: fs, Ino: oldIno, DirIno: ddir, DirBuf: ddb, EntryOff: doff, DirLocked: true}
		fs.ord.RemoveEntry(p, remOld)
		fs.rele(ddb)
	case ErrNotExist:
		db, off, aerr := fs.dirAddEntry(p, ddir, dname, ino, FtypeFile)
		if aerr != nil {
			return aerr
		}
		addRec.DirBuf, addRec.EntryOff = db, off
		fs.ord.AddEntry(p, addRec)
		fs.rele(db)
	default:
		return derr
	}

	// Remove the old name (its offset is still valid: removals only clear
	// or coalesce within the held buffer).
	fs.charge(p, fs.cfg.Costs.DirModify)
	fs.cache.PrepareModify(p, sdb)
	removeEntryInData(sdb.Data, soff)
	remRec := &RemRec{FS: fs, Ino: ino, DirIno: sdir, DirBuf: sdb, EntryOff: soff, DirLocked: true}
	fs.ord.RemoveEntry(p, remRec)
	return nil
}

// FinishRemove performs the deferred half of a link removal: decrement the
// link count and, at zero, free the file. Ordering schemes call it exactly
// once per RemoveEntry, at the moment their discipline allows.
func (fs *FS) FinishRemove(p *sim.Proc, rec *RemRec) {
	if !rec.InoLocked {
		fs.lockInode(p, rec.Ino)
	}
	unlockIno := func() {
		if !rec.InoLocked {
			fs.unlockInode(rec.Ino)
		}
	}
	ip, ib, ioff, err := fs.getInode(p, rec.Ino)
	if err != nil {
		// Hook context: nobody to return the error to. The inode stays
		// allocated with a stale link count — exactly the fsck-repairable
		// "link count too high" degradation, counted and left behind.
		fs.count("leak_remove")
		unlockIno()
		return
	}
	defer fs.rele(ib)
	fs.charge(p, fs.cfg.Costs.InodeOp)
	if ip.IsDir() && !rec.LinkOnly {
		// rmdir: the child loses "." and the parent entry; the parent
		// loses "..". The parent may already be locked by the caller.
		if !rec.DirLocked {
			fs.lockInode(p, rec.DirIno)
		}
		pip, pib, pioff, perr := fs.getInode(p, rec.DirIno)
		if perr != nil {
			fs.count("leak_remove")
		} else {
			fs.cache.PrepareModify(p, pib)
			pip.Nlink--
			fs.putInode(p, &pip, pib, pioff)
			fs.ord.MetaUpdate(p, pib)
			fs.rele(pib)
		}
		if !rec.DirLocked {
			fs.unlockInode(rec.DirIno)
		}
		ip.Nlink = 0
		fs.freeFile(p, rec.Ino, &ip, ib, ioff)
		unlockIno()
		return
	}
	ip.Nlink--
	if ip.Nlink > 0 {
		fs.cache.PrepareModify(p, ib)
		fs.putInode(p, &ip, ib, ioff)
		fs.ord.MetaUpdate(p, ib)
		unlockIno()
		return
	}
	fs.freeFile(p, rec.Ino, &ip, ib, ioff)
	unlockIno()
}

// freeFile clears the inode and hands its resources to the ordering scheme
// (rule 2: nothing is re-usable until the cleared inode is on disk). The
// caller holds the inode lock and the (held) inode-table buffer.
func (fs *FS) freeFile(p *sim.Proc, ino Ino, ip *Inode, ib *cache.Buf, ioff int) {
	runs, err := fs.collectRuns(p, ip)
	if err != nil {
		// An unreadable indirect block: free what was collected, leak the
		// rest (fsck's free-map reconciliation reclaims leaked fragments).
		fs.count("leak_free")
	}
	fs.charge(p, fs.cfg.Costs.InodeOp)
	fs.cache.PrepareModify(p, ib)
	cleared := Inode{Gen: ip.Gen}
	cleared.encode(ib.Data[ioff : ioff+InodeSize])
	delete(fs.prefCG, ino)
	rec := &FreeRec{FS: fs, OwnerIno: ino, OwnerBuf: ib, Frags: runs, FreeIno: ino}
	fs.ord.FreeBlocks(p, rec)
}

// WriteAt writes data at byte offset off (sequential appends and in-place
// overwrites; holes are not supported). It extends the file as needed.
func (fs *FS) WriteAt(p *sim.Proc, ino Ino, off uint64, data []byte) error {
	sp := fs.begin(p, obs.OpWrite)
	defer fs.end(p, sp)
	fs.count("write")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, ino)
	defer fs.unlockInode(ino)
	fs.charge(p, fs.cfg.Costs.PerKBCopy*sim.Duration((len(data)+FragSize-1)/FragSize))

	for len(data) > 0 {
		ip, ib, ioff, err := fs.getInode(p, ino)
		if err != nil {
			return err
		}
		if !ip.Allocated() {
			fs.rele(ib)
			return ErrNotExist
		}
		if ip.IsDir() {
			// write(2) on a directory is EISDIR; letting it through would
			// corrupt the directory's format through the legal API (found
			// by FuzzCrashConsistency: create/remove/mkdir reusing a name,
			// then writing to it).
			fs.rele(ib)
			return ErrIsDir
		}
		bi := int(off / BlockSize)
		boff := int(off % BlockSize)
		n := BlockSize - boff
		if n > len(data) {
			n = len(data)
		}
		end := off + uint64(n)
		newSize := ip.Size
		if end > newSize {
			newSize = end
		}
		// Fragments needed by this block after the write.
		var wantNF int
		if bi == blocksOf(newSize)-1 {
			wantNF = lastBlockFrags(newSize)
		} else {
			wantNF = BlockFrags
		}
		b, err := fs.growBlock(p, ino, &ip, ib, ioff, bi, wantNF, newSize, false, nil)
		if err != nil {
			fs.rele(ib)
			return err
		}
		b.Hold()
		fs.cache.PrepareModify(p, b)
		copy(b.Data[boff:], data[:n])
		fs.ord.DataWrite(p, b)
		b.Unhold()
		fs.rele(ib)
		off = end
		data = data[n:]
	}
	return nil
}

// ReadAt reads len(buf) bytes from offset off; short reads return the count.
func (fs *FS) ReadAt(p *sim.Proc, ino Ino, off uint64, buf []byte) (int, error) {
	sp := fs.begin(p, obs.OpRead)
	defer fs.end(p, sp)
	fs.count("read")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, ino)
	defer fs.unlockInode(ino)

	ip, ib, ioff, err := fs.getInode(p, ino)
	if err != nil {
		return 0, err
	}
	defer fs.rele(ib)
	if !ip.Allocated() {
		return 0, ErrNotExist
	}
	total := 0
	for total < len(buf) && off < ip.Size {
		bi := int(off / BlockSize)
		boff := int(off % BlockSize)
		b, err := fs.readBlock(p, ino, &ip, ib, ioff, bi)
		if err != nil {
			return total, err
		}
		n := len(b.Data) - boff
		if rem := int(ip.Size - off); n > rem {
			n = rem
		}
		if n > len(buf)-total {
			n = len(buf) - total
		}
		copy(buf[total:], b.Data[boff:boff+n])
		total += n
		off += uint64(n)
	}
	fs.charge(p, fs.cfg.Costs.PerKBCopy*sim.Duration((total+FragSize-1)/FragSize))
	return total, nil
}

// ReadDir lists the live entries of a directory (excluding "." and "..").
func (fs *FS) ReadDir(p *sim.Proc, dir Ino) ([]Dirent, error) {
	sp := fs.begin(p, obs.OpReadDir)
	defer fs.end(p, sp)
	fs.count("readdir")
	fs.charge(p, fs.cfg.Costs.Syscall)
	fs.lockInode(p, dir)
	defer fs.unlockInode(dir)

	dip, dib, dioff, err := fs.getInode(p, dir)
	if err != nil {
		return nil, err
	}
	defer fs.rele(dib)
	if !dip.Allocated() {
		return nil, ErrNotExist
	}
	if !dip.IsDir() {
		return nil, ErrNotDir
	}
	var out []Dirent
	nblocks := blocksOf(dip.Size)
	for bi := 0; bi < nblocks; bi++ {
		b, err := fs.readBlock(p, dir, &dip, dib, dioff, bi)
		if err != nil {
			return nil, err
		}
		limit := int(dip.Size) - bi*BlockSize
		if limit > len(b.Data) {
			limit = len(b.Data)
		}
		ents := listEntries(b.Data[:limit])
		fs.charge(p, fs.cfg.Costs.DirScanEntry*sim.Duration(len(ents)))
		for _, d := range ents {
			if d.Name == "." || d.Name == ".." {
				continue
			}
			out = append(out, d)
		}
	}
	return out, nil
}
