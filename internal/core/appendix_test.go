package core_test

import (
	"fmt"
	"testing"

	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
)

// Tests for the specific behaviors the paper's appendix describes.

// "Because indirect blocks generally represent a very small fraction of the
// cache contents, we force them to stay resident and dirty while they have
// pending dependencies."
func TestIndirectBlockPinnedWhileDependent(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "big")
		// Write past the direct blocks so an indirect block exists with
		// pending allocation dependencies.
		if err := r.fs.WriteAt(p, ino, 0, fileData(1, (ffs.NDirect+2)*ffs.BlockSize)); err != nil {
			t.Fatal(err)
		}
		ip, err := r.fs.Stat(p, ino)
		if err != nil || ip.Indir == 0 {
			t.Fatalf("no indirect block: %+v %v", ip, err)
		}
		b := r.c.Lookup(int64(ip.Indir))
		if b == nil {
			t.Fatal("indirect block not resident")
		}
		if !b.Pinned {
			t.Fatal("indirect block with pending dependencies not pinned")
		}
		r.fs.Sync(p)
		b = r.c.Lookup(int64(ip.Indir))
		if b != nil && b.Pinned {
			t.Fatal("indirect block still pinned after dependencies resolved")
		}
	})
}

// "If the directory entry has a pending link addition dependency, the add
// and addsafe structures are removed and the link removal proceeds
// unhindered (the add and remove have been serviced with no disk writes!)"
// — and the same annihilation must free the never-written inode with no
// clearing write.
func TestCancelFreesInodeWithNoWrites(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		base := r.c.WritesIssued
		ino, err := r.fs.Create(p, ffs.RootIno, "ephemeral")
		if err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Unlink(p, ffs.RootIno, "ephemeral"); err != nil {
			t.Fatal(err)
		}
		r.c.RunWork(p)
		if got := r.c.WritesIssued - base; got != 0 {
			t.Fatalf("cancelled pair issued %d writes", got)
		}
		_ = ino
		r.fs.Sync(p)
	})
	// Nothing of the pair survives on disk: only the root is allocated and
	// nothing leaked.
	rep := fsck.Check(r.dsk.Image())
	if len(rep.Findings) != 0 {
		t.Fatalf("cancelled pair left on-disk state: %v", rep.Findings)
	}
	if rep.AllocatedInodes != 1 {
		t.Fatalf("%d allocated inodes on disk, want 1 (root)", rep.AllocatedInodes)
	}
}

// "For the special case of extending a fragment by moving the data to a new
// block ... we do not consider the inode appropriately 'modified' until the
// allocdirect dependency clears" — the vacated fragments stay allocated
// until the retargeted pointer could be durable.
func TestMovedFragmentsNotReusedBeforeResolution(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		// A 1-fragment file whose neighbors get taken, forcing a move on
		// extension.
		a, _ := r.fs.Create(p, ffs.RootIno, "a")
		r.fs.WriteAt(p, a, 0, fileData(1, 1000))
		ipBefore, _ := r.fs.Stat(p, a)
		oldFrag := ipBefore.Direct[0]
		for i := 0; i < 7; i++ {
			f, _ := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("fill%d", i))
			r.fs.WriteAt(p, f, 0, fileData(i+10, 1000))
		}
		r.fs.WriteAt(p, a, 0, fileData(2, 3000)) // move
		ipAfter, _ := r.fs.Stat(p, a)
		if ipAfter.Direct[0] == oldFrag {
			t.Skip("extension happened in place; no move to test")
		}
		// Before any flushing, a new 1KB file must NOT land on the vacated
		// fragment (its free is deferred).
		nf, _ := r.fs.Create(p, ffs.RootIno, "newbie")
		r.fs.WriteAt(p, nf, 0, fileData(3, 1000))
		ipNew, _ := r.fs.Stat(p, nf)
		if ipNew.Direct[0] == oldFrag {
			t.Fatal("vacated fragment reused before the retargeted pointer resolved")
		}
		// After a full sync the fragment is free again.
		r.fs.Sync(p)
		nf2, _ := r.fs.Create(p, ffs.RootIno, "reuser")
		r.fs.WriteAt(p, nf2, 0, fileData(4, 1000))
		ip2, _ := r.fs.Stat(p, nf2)
		if ip2.Direct[0] != oldFrag {
			t.Logf("note: allocator picked %d, vacated was %d (policy-dependent)", ip2.Direct[0], oldFrag)
		}
	})
}

// The dependency structures must all drain: after a sync with no further
// activity, the scheme holds no per-buffer state at all.
func TestDependencyStructuresDrainCompletely(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		dir, _ := r.fs.Mkdir(p, ffs.RootIno, "d")
		for i := 0; i < 25; i++ {
			ino, _ := r.fs.Create(p, dir, fmt.Sprintf("f%d", i))
			r.fs.WriteAt(p, ino, 0, fileData(i, 5000))
		}
		for i := 0; i < 10; i++ {
			r.fs.Unlink(p, dir, fmt.Sprintf("f%d", i))
		}
		r.fs.Sync(p)
	})
	if n := r.su.DepCount(); n != 0 {
		t.Fatalf("%d buffers still carry dependency state after sync: %v", n, r.su.DebugDeps())
	}
}

// A directory block written before its new entries' inodes are durable must
// carry zeroed inode numbers on disk (rule 3 rollback), and the re-written
// block after resolution must carry them for real.
func TestDirectoryRollbackIsCopyBased(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "target")
		sb := r.fs.Superblock()
		rootFrag := int64(sb.DataStart)
		b := r.c.Lookup(rootFrag)
		if b == nil || !b.Dirty {
			t.Fatal("root block not dirty")
		}
		// Write the directory block now: the entry must be rolled back on
		// disk, while the LIVE buffer keeps the real inode number (the
		// copy-on-write property).
		r.c.Bwrite(p, b)
		got, err := r.fs.Lookup(p, ffs.RootIno, "target")
		if err != nil || got != ino {
			t.Fatalf("live lookup broken during rollback: %d %v", got, err)
		}
		if r.su.Stat.Rollbacks == 0 {
			t.Fatal("no rollback recorded")
		}
	})
}
