package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"metaupdate/internal/cache"
	"metaupdate/internal/core"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
)

type rig struct {
	eng *sim.Engine
	dsk *disk.Disk
	drv *dev.Driver
	c   *cache.Cache
	fs  *ffs.FS
	su  *core.SoftUpdates
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	dsk := disk.New(disk.HPC2447(), 96<<20)
	if _, err := ffs.Format(dsk, ffs.FormatParams{TotalBytes: 96 << 20, NInodes: 4096}); err != nil {
		t.Fatal(err)
	}
	drv := dev.New(eng, dsk, dev.Config{Mode: dev.ModeIgnore})
	cpu := &sim.CPU{}
	c := cache.New(eng, drv, cpu, cache.Config{MaxBytes: 8 << 20})
	r := &rig{eng: eng, dsk: dsk, drv: drv, c: c, su: core.New()}
	var err error
	eng.Spawn("mount", func(p *sim.Proc) {
		r.fs, err = ffs.Mount(eng, cpu, c, r.su, ffs.Config{AllocInit: true}, p)
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.eng.Spawn("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("simulated process deadlocked (engine drained before it finished)")
	}
}

func fileData(seed, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(seed + i*7)
	}
	return b
}

func TestBasicOperationsUnderSoftUpdates(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		dir, err := r.fs.Mkdir(p, ffs.RootIno, "d")
		if err != nil {
			t.Fatal(err)
		}
		ino, err := r.fs.Create(p, dir, "f")
		if err != nil {
			t.Fatal(err)
		}
		data := fileData(3, 20<<10)
		if err := r.fs.WriteAt(p, ino, 0, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if n, err := r.fs.ReadAt(p, ino, 0, got); err != nil || n != len(data) || !bytes.Equal(got, data) {
			t.Fatalf("read-back failed: %d %v", n, err)
		}
		r.fs.Sync(p)
		// After a full sync every dependency must have drained.
		if r.c.DirtyCount() != 0 {
			t.Errorf("%d dirty buffers after sync", r.c.DirtyCount())
		}
	})
}

func TestCreateUsesNoSynchronousWrites(t *testing.T) {
	// The defining property: metadata updates are delayed writes; a create
	// issues zero disk writes in the system call path.
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		r.c.Driver().Trace.Reset()
		before := r.c.WritesIssued
		for i := 0; i < 50; i++ {
			if _, err := r.fs.Create(p, ffs.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if got := r.c.WritesIssued - before; got != 0 {
			t.Fatalf("50 creates issued %d writes; soft updates should issue none", got)
		}
	})
}

func TestCreateRemoveCancelsWithNoWrites(t *testing.T) {
	// Create followed by immediate remove must be serviced with no disk
	// writes at all (the paper's figure 5c effect).
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		base := r.c.WritesIssued
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("tmp%d", i)
			ino, err := r.fs.Create(p, ffs.RootIno, name)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.fs.WriteAt(p, ino, 0, fileData(i, 1024)); err != nil {
				t.Fatal(err)
			}
			if err := r.fs.Unlink(p, ffs.RootIno, name); err != nil {
				t.Fatal(err)
			}
		}
		r.c.RunWork(p)
		if got := r.c.WritesIssued - base; got != 0 {
			t.Fatalf("create/remove churn issued %d writes", got)
		}
		if r.su.Stat.CancelledAdds < 100 {
			t.Errorf("only %d cancelled adds", r.su.Stat.CancelledAdds)
		}
	})
}

func TestRollbackKeepsDiskConsistent(t *testing.T) {
	// Force the directory block to be written while the new inode is not
	// yet on disk: the entry must be zeroed in the on-disk image (undone),
	// and re-established afterwards.
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, ffs.RootIno, "pending")
		if err != nil {
			t.Fatal(err)
		}
		_ = ino
		// Write ONLY the root directory block, not the inode table.
		rootIp, _ := r.fs.Stat(p, ffs.RootIno)
		_ = rootIp
		sb := r.fs.Superblock()
		rootFrag := int64(sb.DataStart) // root dir's first fragment
		b := r.c.Lookup(rootFrag)
		if b == nil || !b.Dirty {
			t.Fatal("root dir block not dirty after create")
		}
		r.c.Bwrite(p, b)

		if r.su.Stat.Rollbacks == 0 {
			t.Fatal("no rollback happened for premature directory write")
		}
		// On-disk entry must have a zero inode number: find "pending" raw.
		img := r.dsk.Image()
		raw := img[rootFrag*ffs.FragSize : (rootFrag+1)*ffs.FragSize]
		idx := bytes.Index(raw, []byte("pending"))
		if idx < 0 {
			t.Fatal("entry name not on disk at all") // name bytes should be there
		}
		inoField := raw[idx-8 : idx-4]
		if !bytes.Equal(inoField, []byte{0, 0, 0, 0}) {
			t.Fatalf("on-disk entry has non-zero ino %v with inode not yet written", inoField)
		}
		// In-memory the entry must be intact (redo).
		got, err := r.fs.Lookup(p, ffs.RootIno, "pending")
		if err != nil || got != ino {
			t.Fatalf("in-memory entry lost: %d %v", got, err)
		}
		// Full sync: everything resolves, entry becomes durable.
		r.fs.Sync(p)
		raw = img[rootFrag*ffs.FragSize : (rootFrag+1)*ffs.FragSize]
		idx = bytes.Index(raw, []byte("pending"))
		inoField = raw[idx-8 : idx-4]
		if bytes.Equal(inoField, []byte{0, 0, 0, 0}) {
			t.Fatal("entry still zero on disk after sync")
		}
	})
}

func TestDeferredRemoveFreesAfterDirWrite(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		r.fs.WriteAt(p, ino, 0, fileData(1, 30<<10))
		r.fs.Sync(p) // file fully durable; deps drained

		if err := r.fs.Unlink(p, ffs.RootIno, "f"); err != nil {
			t.Fatal(err)
		}
		// The inode must still be intact in memory (removal deferred).
		ip, err := r.fs.Stat(p, ino)
		if err != nil || ip.Nlink != 1 {
			t.Fatalf("inode modified before dir write: %+v, %v", ip, err)
		}
		// Sync: dir write completes -> workitem decrements -> free chain.
		r.fs.Sync(p)
		if _, err := r.fs.Stat(p, ino); err != ffs.ErrNotExist {
			t.Fatalf("inode not freed after sync: %v", err)
		}
		// Space must be reusable now.
		ino2, err := r.fs.Create(p, ffs.RootIno, "g")
		if err != nil {
			t.Fatal(err)
		}
		if err := r.fs.WriteAt(p, ino2, 0, fileData(2, 30<<10)); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSyncerDrivesRemovalWithoutExplicitSync(t *testing.T) {
	r := newRig(t)
	r.c.StartSyncer()
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		r.fs.WriteAt(p, ino, 0, fileData(1, 4096))
		r.fs.Unlink(p, ffs.RootIno, "f")
		// Give the syncer time to flush and run workitems (two-pass marking
		// with fraction 1/30 needs up to ~62s; removal chains need a few
		// more rounds).
		p.Sleep(200 * sim.Second)
		if _, err := r.fs.Stat(p, ino); err != ffs.ErrNotExist {
			t.Fatalf("background removal incomplete: %v", err)
		}
		r.c.StopSyncer() // let the engine drain
	})
}

func TestFragmentExtensionUndo(t *testing.T) {
	// Extend a file's tail fragment, then force the inode table block out
	// before the new data block: the write image must carry the old
	// size/pointer.
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "f")
		r.fs.WriteAt(p, ino, 0, fileData(1, 1000))
		r.fs.Sync(p)

		// Extend to 3 KB: fragment extension (in place or move).
		r.fs.WriteAt(p, ino, 1000, fileData(2, 2000))
		sb := r.fs.Superblock()
		frag, off := sb.InodeFrag(ino)
		ib := r.c.Lookup(int64(frag))
		if ib == nil {
			t.Fatal("inode block not resident")
		}
		rollbacks := r.su.Stat.Rollbacks
		r.c.Bwrite(p, ib)
		if r.su.Stat.Rollbacks == rollbacks {
			t.Fatal("extension write-out did not roll back")
		}
		// On-disk size must still be the old 1000.
		img := r.dsk.Image()
		raw := img[int64(frag)*ffs.FragSize+int64(off):]
		odIno := ffs.DecodeInode(raw)
		if odIno.Size != 1000 {
			t.Fatalf("on-disk size = %d during pending extension, want 1000", odIno.Size)
		}
		r.fs.Sync(p)
		odIno = ffs.DecodeInode(img[int64(frag)*ffs.FragSize+int64(off):])
		if odIno.Size != 3000 {
			t.Fatalf("on-disk size = %d after sync, want 3000", odIno.Size)
		}
		got := make([]byte, 3000)
		n, _ := r.fs.ReadAt(p, ino, 0, got)
		want := append(fileData(1, 1000), fileData(2, 2000)...)
		if n != 3000 || !bytes.Equal(got, want) {
			t.Fatal("data mismatch after extension")
		}
	})
}

func TestRemoveThrottlesNothing(t *testing.T) {
	// Removing a tree: the system call path issues no writes at all.
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		dir, _ := r.fs.Mkdir(p, ffs.RootIno, "d")
		for i := 0; i < 30; i++ {
			ino, _ := r.fs.Create(p, dir, fmt.Sprintf("f%d", i))
			r.fs.WriteAt(p, ino, 0, fileData(i, 2048))
		}
		r.fs.Sync(p)
		base := r.c.WritesIssued
		for i := 0; i < 30; i++ {
			if err := r.fs.Unlink(p, dir, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if got := r.c.WritesIssued - base; got != 0 {
			t.Fatalf("unlink path issued %d writes", got)
		}
		r.fs.Sync(p)
		ents, _ := r.fs.ReadDir(p, dir)
		if len(ents) != 0 {
			t.Fatalf("%d entries survive", len(ents))
		}
	})
}

func TestMassChurnConverges(t *testing.T) {
	// Heavy create/write/remove churn with the syncer running must leave a
	// consistent, fully-drained system.
	r := newRig(t)
	r.c.StartSyncer()
	r.run(t, func(p *sim.Proc) {
		dir, _ := r.fs.Mkdir(p, ffs.RootIno, "churn")
		for round := 0; round < 5; round++ {
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("f%d", i)
				ino, err := r.fs.Create(p, dir, name)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.fs.WriteAt(p, ino, 0, fileData(round*100+i, 3000+i*100)); err != nil {
					t.Fatal(err)
				}
			}
			p.Sleep(3 * sim.Second)
			for i := 0; i < 40; i++ {
				if err := r.fs.Unlink(p, dir, fmt.Sprintf("f%d", i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		r.fs.Sync(p)
		ents, _ := r.fs.ReadDir(p, dir)
		if len(ents) != 0 {
			t.Fatalf("%d entries survive churn", len(ents))
		}
		r.c.StopSyncer() // let the engine drain
		r.fs.Sync(p)
	})
	if r.c.DirtyCount() != 0 {
		t.Errorf("%d dirty buffers at end", r.c.DirtyCount())
	}
}

func TestHardLinkUnderSoftUpdates(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "a")
		r.fs.WriteAt(p, ino, 0, []byte("x"))
		if err := r.fs.Link(p, ino, ffs.RootIno, "b"); err != nil {
			t.Fatal(err)
		}
		r.fs.Sync(p)
		r.fs.Unlink(p, ffs.RootIno, "a")
		r.fs.Sync(p)
		ip, err := r.fs.Stat(p, ino)
		if err != nil || ip.Nlink != 1 {
			t.Fatalf("nlink = %d, %v", ip.Nlink, err)
		}
		r.fs.Unlink(p, ffs.RootIno, "b")
		r.fs.Sync(p)
		if _, err := r.fs.Stat(p, ino); err != ffs.ErrNotExist {
			t.Fatalf("inode survives: %v", err)
		}
	})
}

func TestRenameUnderSoftUpdates(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, _ := r.fs.Create(p, ffs.RootIno, "old")
		r.fs.WriteAt(p, ino, 0, fileData(1, 500))
		dst, _ := r.fs.Create(p, ffs.RootIno, "dst")
		r.fs.Sync(p)
		if err := r.fs.Rename(p, ffs.RootIno, "old", ffs.RootIno, "dst"); err != nil {
			t.Fatal(err)
		}
		r.fs.Sync(p)
		got, err := r.fs.Lookup(p, ffs.RootIno, "dst")
		if err != nil || got != ino {
			t.Fatalf("dst -> %d, %v", got, err)
		}
		if _, err := r.fs.Stat(p, dst); err != ffs.ErrNotExist {
			t.Fatalf("replaced target survives: %v", err)
		}
		if _, err := r.fs.Lookup(p, ffs.RootIno, "old"); err != ffs.ErrNotExist {
			t.Fatal("old name survives")
		}
	})
}

func TestMkdirRmdirUnderSoftUpdates(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			d, err := r.fs.Mkdir(p, ffs.RootIno, fmt.Sprintf("d%d", i))
			if err != nil {
				t.Fatal(err)
			}
			f, _ := r.fs.Create(p, d, "x")
			r.fs.WriteAt(p, f, 0, fileData(i, 100))
		}
		r.fs.Sync(p)
		for i := 0; i < 10; i++ {
			d, _ := r.fs.Lookup(p, ffs.RootIno, fmt.Sprintf("d%d", i))
			r.fs.Unlink(p, d, "x")
			if err := r.fs.Rmdir(p, ffs.RootIno, fmt.Sprintf("d%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		r.fs.Sync(p)
		rip, _ := r.fs.Stat(p, ffs.RootIno)
		if rip.Nlink != 2 {
			t.Fatalf("root nlink = %d after all rmdirs", rip.Nlink)
		}
		ents, _ := r.fs.ReadDir(p, ffs.RootIno)
		if len(ents) != 0 {
			t.Fatalf("%d entries survive", len(ents))
		}
	})
}

func TestNoCyclesNoAging(t *testing.T) {
	// The core claim of section 4.2: any dirty block can be written at any
	// time; repeated partial flushes always make progress and converge.
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		dir, _ := r.fs.Mkdir(p, ffs.RootIno, "d")
		for i := 0; i < 25; i++ {
			ino, _ := r.fs.Create(p, dir, fmt.Sprintf("f%d", i))
			r.fs.WriteAt(p, ino, 0, fileData(i, 6000))
		}
		rounds := r.c.SyncAll(p, 64)
		if rounds >= 64 {
			t.Fatalf("SyncAll did not converge (aging/cycle): %d rounds", rounds)
		}
	})
}
