// Package core implements soft updates, the paper's contribution
// (section 4.2 and the appendix): metadata updates use delayed writes, and
// fine-grained per-update dependency records make any dirty block writable
// at any time — updates with pending dependencies are rolled back in the
// write *source*, so the block as written is always consistent with the
// current on-disk state. Rollback operates on a copy of the buffer (the
// copy-on-write refinement the paper's own footnote recommends over
// in-place undo/redo), so the in-memory state is never perturbed and no
// access inhibition or redo pass is needed; the on-disk images are the
// same either way.
//
// The structure mirrors the appendix:
//
//   - inodeDep       — the "organizational" per-inode structure; its
//     written flag is the addsafe state: link additions wait for it.
//   - allocDirect    — one per pending block/fragment allocation (covering
//     allocdirect, allocindirect and the indirdep safe-copy rollback in a
//     single pointer-undo mechanism), including fragment extension's
//     old-size undo and the moved-fragment free (rule 2).
//   - dirAdd         — one per pending link addition; undone by writing a
//     zero inode number into the entry (the paper's exact technique).
//   - dirRem         — one per link removal; the link count decrement and
//     everything downstream is deferred until the directory block write
//     completes (serviced from the workitem queue).
//   - freeWait       — one per freeblocks/freefile; resources are freed by
//     a workitem after the cleared inode reaches stable storage.
//
// Block de-allocation and link removal follow the paper's deferred
// approach, which is why soft updates can beat even No Order on the remove
// benchmarks: the expensive freeing work leaves the system call path
// entirely.
package core

import (
	"encoding/binary"
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
)

// Stats counts soft-updates activity, for tests and the harness.
type Stats struct {
	Rollbacks     int64 // individual updates undone in a write image
	CancelledAdds int64 // add+remove pairs serviced with no disk writes
	Workitems     int64 // deferred tasks queued
	DepsCreated   int64
}

// SoftUpdates implements ffs.Ordering and cache.Hooks.
type SoftUpdates struct {
	fs   *ffs.FS
	deps map[*cache.Buf]*bufDep // parallel to Buf.Dep, for iteration
	Stat Stats

	// DropEntryDeps is a fault-injection hook for the crash-state model
	// checker: when set, AddEntry registers no dependency at all, so a new
	// directory entry can reach the disk before its target inode — the
	// classic rule-1 violation soft updates exists to prevent. It proves
	// the checker catches a real (seeded) ordering bug; never set it
	// outside tests and cmd/mdcheck's -seed-bug mode.
	DropEntryDeps bool
}

// New returns a soft updates instance.
func New() *SoftUpdates {
	return &SoftUpdates{deps: make(map[*cache.Buf]*bufDep)}
}

// Name implements ffs.Ordering.
func (s *SoftUpdates) Name() string { return "Soft Updates" }

// Start implements ffs.Ordering.
func (s *SoftUpdates) Start(fs *ffs.FS) { s.fs = fs }

// Hooks implements ffs.Ordering.
func (s *SoftUpdates) Hooks() cache.Hooks { return suHooks{s} }

// bufDep anchors all dependency state for one buffer (the cache never
// evicts a buffer whose Dep is non-nil, which subsumes the paper's pinning
// of indirect blocks with pending dependencies).
type bufDep struct {
	// Inode-table blocks: per-inode organizational structures.
	inodeDeps map[ffs.Ino]*inodeDep

	// Owner side of allocations: pending allocDirects whose pointer (and,
	// for inode owners, size) live in this buffer.
	allocs []*allocDirect

	// New-block side of allocations: allocDirects waiting for this
	// buffer's contents to reach the disk (the newblk/allocsafe role).
	initOf []*allocDirect

	// Directory blocks: pending link additions by entry offset, and link
	// removals waiting for the next write.
	adds         map[int]*dirAdd
	rems         []*dirRem
	remsInFlight []*dirRem

	// Freeblocks/freefile waiting for this (inode-table) buffer's write.
	frees         []*freeWait
	freesInFlight []*freeWait
}

func (d *bufDep) empty() bool {
	return len(d.inodeDeps) == 0 && len(d.allocs) == 0 && len(d.initOf) == 0 &&
		len(d.adds) == 0 && len(d.rems) == 0 && len(d.remsInFlight) == 0 &&
		len(d.frees) == 0 && len(d.freesInFlight) == 0
}

type inodeDep struct {
	ino ffs.Ino
	buf *cache.Buf
	// written: the inode's current state (initialization / link count) has
	// reached stable storage — the addsafe condition.
	written bool
	// everWritten: some state of this incarnation has ever reached the
	// disk; when false at free time, no clearing write is needed at all.
	everWritten bool
	inFlight    bool
	waitingAdds []*dirAdd
	// waitingAllocs: allocDirects whose pointer write is gated on this
	// inode reaching the disk (the mkdir-body case: "." and ".." entries
	// live inside a block that is itself a pending allocation, so the
	// block's pointer waits for the entries' target inodes instead of the
	// entries being rolled back).
	waitingAllocs []*allocDirect
}

type allocDirect struct {
	owner            *cache.Buf // where the pointer lives
	ptrOff           int
	oldPtr, newPtr   int32
	sizeOff          int // -1 when the owner is an indirect block
	oldSize, newSize uint64
	initDone         bool // new block contents have reached the disk
	// covered: the write currently in flight from the owner carries this
	// allocation's pointer (it was ready at issue time).
	covered bool
	newBuf  *cache.Buf
	// waitInodes: inode states that must reach the disk before the pointer
	// to this block may (see inodeDep.waitingAllocs).
	waitInodes []*inodeDep
	// movedFrom is freed (rule 2) once this allocation fully resolves.
	movedFrom *ffs.FragRun
	cancelled bool
}

// ready reports whether the allocation's pointer may appear on disk.
func (ad *allocDirect) ready() bool {
	if !ad.initDone {
		return false
	}
	for _, idep := range ad.waitInodes {
		if !idep.written {
			return false
		}
	}
	return true
}

type dirAdd struct {
	buf     *cache.Buf // directory block
	off     int
	ino     ffs.Ino
	idep    *inodeDep
	inoSafe bool
	covered bool // in the in-flight write's source
}

type dirRem struct {
	rec *ffs.RemRec
}

type freeWait struct {
	rec *ffs.FreeRec
	// rems are link removals whose directory block is being freed; the
	// appendix: "Any dependency structures 'owned' by the blocks are
	// considered complete at this point" — they fire when the free does.
	rems []*dirRem
}

func (s *SoftUpdates) dep(b *cache.Buf) *bufDep {
	if d, ok := b.Dep.(*bufDep); ok {
		return d
	}
	return nil
}

func (s *SoftUpdates) ensureDep(b *cache.Buf) *bufDep {
	if d := s.dep(b); d != nil {
		return d
	}
	d := &bufDep{}
	b.Dep = d
	s.deps[b] = d
	s.Stat.DepsCreated++
	return d
}

func (s *SoftUpdates) prune(b *cache.Buf) {
	if d := s.dep(b); d != nil && d.empty() {
		b.Dep = nil
		delete(s.deps, b)
	}
}

func (s *SoftUpdates) ensureInodeDep(b *cache.Buf, ino ffs.Ino) *inodeDep {
	d := s.ensureDep(b)
	if d.inodeDeps == nil {
		d.inodeDeps = make(map[ffs.Ino]*inodeDep)
	}
	idep := d.inodeDeps[ino]
	if idep == nil {
		idep = &inodeDep{ino: ino, buf: b}
		d.inodeDeps[ino] = idep
	}
	return idep
}

func (s *SoftUpdates) cache() *cache.Cache { return s.fs.Cache() }

// DepCount reports how many buffers currently carry dependency state
// (zero once every update has drained to the disk).
func (s *SoftUpdates) DepCount() int { return len(s.deps) }

// DebugDeps describes the remaining dependency state (test diagnostics).
func (s *SoftUpdates) DebugDeps() []string {
	var out []string
	for b, d := range s.deps {
		desc := fmt.Sprintf("frag %d:", b.Frag)
		for ino, idep := range d.inodeDeps {
			desc += fmt.Sprintf(" idep(%d w=%v adds=%d allocs=%d)", ino, idep.written, len(idep.waitingAdds), len(idep.waitingAllocs))
		}
		if len(d.allocs) > 0 {
			desc += fmt.Sprintf(" allocs=%d", len(d.allocs))
			for _, ad := range d.allocs {
				desc += fmt.Sprintf("[ptr@%d init=%v ready=%v waits=%d]", ad.ptrOff, ad.initDone, ad.ready(), len(ad.waitInodes))
			}
		}
		if len(d.initOf) > 0 {
			desc += fmt.Sprintf(" initOf=%d", len(d.initOf))
		}
		if len(d.adds) > 0 {
			desc += fmt.Sprintf(" adds=%d", len(d.adds))
		}
		if len(d.rems)+len(d.remsInFlight) > 0 {
			desc += " rems"
		}
		if len(d.frees)+len(d.freesInFlight) > 0 {
			desc += " frees"
		}
		out = append(out, desc)
	}
	return out
}

// ---------------------------------------------------------------------
// Ordering hooks
// ---------------------------------------------------------------------

// AllocInit implements ffs.Ordering: the new block is a delayed write; when
// ordering applies, an allocDirect records the pointer/size undo state.
func (s *SoftUpdates) AllocInit(p *sim.Proc, rec *ffs.AllocRec) {
	c := rec.FS.Cache()
	c.Bdwrite(rec.NewBuf)
	ordered := rec.IsDir || rec.IsIndir || rec.FS.Config().AllocInit
	if !ordered {
		if rec.MovedFrom != nil {
			// Even without allocation initialization, the vacated run must
			// not be re-used before the retargeted pointer is on disk
			// (rule 2): wait for the owner buffer's next write.
			d := s.ensureDep(rec.OwnerBuf)
			d.frees = append(d.frees, &freeWait{rec: &ffs.FreeRec{
				FS: rec.FS, Frags: []ffs.FragRun{*rec.MovedFrom}}})
		}
		return
	}
	ad := &allocDirect{
		owner:  rec.OwnerBuf,
		ptrOff: rec.PtrOff,
		oldPtr: rec.OldPtr, newPtr: rec.NewFrag,
		sizeOff: -1,
		oldSize: rec.OldSize, newSize: rec.NewSize,
		newBuf:    rec.NewBuf,
		movedFrom: rec.MovedFrom,
	}
	if !rec.OwnerIsIndir {
		// The size field rides along with direct (inode-owned) pointers.
		ad.sizeOff = rec.PtrOff/ffs.InodeSize*ffs.InodeSize + ffs.InoSizeOff
		// PtrOff is absolute within the inode table block; recover the
		// inode's base offset robustly from the record instead:
		base := inodeBaseOff(rec)
		ad.sizeOff = base + ffs.InoSizeOff
	}
	// Extension-in-place: the "new block" is the same buffer as before and
	// its earlier fragments are already on disk; the newly added fragments
	// still need initialization. Treat the whole run as needing a write
	// (conservative and simple).
	s.ensureDep(rec.NewBuf).initOf = append(s.ensureDep(rec.NewBuf).initOf, ad)
	s.ensureDep(rec.OwnerBuf).allocs = append(s.ensureDep(rec.OwnerBuf).allocs, ad)
	rec.NewBuf.Pinned = false
	if rec.IsIndir {
		// Keep indirect blocks with pending dependencies resident and
		// dirty, as the appendix does.
		rec.NewBuf.Pinned = true
	}
}

// inodeBaseOff recovers the byte offset of the owning inode within its
// table block from the allocation record.
func inodeBaseOff(rec *ffs.AllocRec) int {
	return int(rec.OwnerIno) % ffs.InodesPerBlock * ffs.InodeSize
}

// AllocPtr implements ffs.Ordering: the owner is a delayed write; all
// ordering is carried by the allocDirect created in AllocInit.
func (s *SoftUpdates) AllocPtr(p *sim.Proc, rec *ffs.AllocRec) {
	rec.FS.Cache().Bdwrite(rec.OwnerBuf)
}

// AddInode implements ffs.Ordering: delayed write; the inode's addsafe
// state resets so dependent directory entries wait for the next write.
func (s *SoftUpdates) AddInode(p *sim.Proc, rec *ffs.LinkRec) {
	rec.FS.Cache().Bdwrite(rec.InoBuf)
	idep := s.ensureInodeDep(rec.InoBuf, rec.Ino)
	idep.written = false
	if rec.NewInode {
		idep.everWritten = false
	}
}

// AddEntry implements ffs.Ordering.
func (s *SoftUpdates) AddEntry(p *sim.Proc, rec *ffs.LinkRec) {
	rec.FS.Cache().Bdwrite(rec.DirBuf)
	if s.DropEntryDeps {
		return // fault injection: entry may now hit disk before its inode
	}
	idep := s.ensureInodeDep(rec.InoBuf, rec.Ino)
	if idep.written {
		return // inode already safe; the entry carries no dependency
	}
	d := s.ensureDep(rec.DirBuf)
	if len(d.initOf) > 0 {
		// The entry lives inside a block that is itself a pending
		// allocation (a new directory's "." and "..", or an entry in a
		// freshly grown chunk). The block is unreferenced until its
		// pointer is written, so instead of rolling the entry back we
		// gate the pointer on the entry's inode — the paper/FreeBSD
		// mkdir dependency.
		for _, ad := range d.initOf {
			ad.waitInodes = append(ad.waitInodes, idep)
			idep.waitingAllocs = append(idep.waitingAllocs, ad)
		}
		return
	}
	if d.adds == nil {
		d.adds = make(map[int]*dirAdd)
	}
	add := &dirAdd{buf: rec.DirBuf, off: rec.EntryOff, ino: rec.Ino, idep: idep}
	d.adds[rec.EntryOff] = add
	idep.waitingAdds = append(idep.waitingAdds, add)
}

// RemoveEntry implements ffs.Ordering. If the entry still has a pending
// addition, both are cancelled and the removal completes with no disk
// writes at all; otherwise the removal is deferred until the directory
// block reaches the disk.
func (s *SoftUpdates) RemoveEntry(p *sim.Proc, rec *ffs.RemRec) {
	c := rec.FS.Cache()
	c.Bdwrite(rec.DirBuf)
	if d := s.dep(rec.DirBuf); d != nil {
		if add, ok := d.adds[rec.EntryOff]; ok {
			// The add and the remove annihilate.
			delete(d.adds, rec.EntryOff)
			s.dropAdd(add)
			s.Stat.CancelledAdds++
			s.prune(rec.DirBuf)
			rec.PendingAdd = true
			rec.FS.FinishRemove(p, rec)
			return
		}
	}
	d := s.ensureDep(rec.DirBuf)
	d.rems = append(d.rems, &dirRem{rec: rec})
}

func (s *SoftUpdates) dropAdd(add *dirAdd) {
	idep := add.idep
	for i, a := range idep.waitingAdds {
		if a == add {
			idep.waitingAdds = append(idep.waitingAdds[:i], idep.waitingAdds[i+1:]...)
			break
		}
	}
	// A fully-resolved organizational structure can go now; nothing will
	// revisit its buffer otherwise.
	if idep.written && !idep.inFlight && len(idep.waitingAdds) == 0 && len(idep.waitingAllocs) == 0 {
		if d := s.dep(idep.buf); d != nil {
			delete(d.inodeDeps, idep.ino)
			s.prune(idep.buf)
		}
	}
}

// FreeBlocks implements ffs.Ordering: pending allocations of the dead file
// are cancelled (they no longer serve any purpose, as the appendix says);
// the freed resources wait for the cleared inode to reach the disk — or
// are released immediately when this incarnation never reached it.
func (s *SoftUpdates) FreeBlocks(p *sim.Proc, rec *ffs.FreeRec) {
	c := rec.FS.Cache()
	c.Bdwrite(rec.OwnerBuf)

	// Cancel pending allocations whose pointers lived in the cleared
	// inode (and in the file's indirect blocks, which are being freed).
	extra := s.cancelAllocsFor(rec)
	rec.Frags = append(rec.Frags, extra...)

	// Directory blocks being freed carry their dependencies with them:
	// pending additions are cancelled; pending removals are "considered
	// complete at this point" and fire together with the free itself.
	var orphanRems []*dirRem
	for _, run := range rec.Frags {
		if b := c.Lookup(int64(run.Start)); b != nil {
			if d := s.dep(b); d != nil {
				for _, add := range d.adds {
					s.dropAdd(add)
					s.Stat.CancelledAdds++
				}
				d.adds = nil
				d.initOf = nil
				orphanRems = append(orphanRems, d.rems...)
				orphanRems = append(orphanRems, d.remsInFlight...)
				d.rems, d.remsInFlight = nil, nil
				s.prune(b)
			}
			b.Pinned = false
		}
	}

	idep := s.ensureInodeDep(rec.OwnerBuf, rec.OwnerIno)
	idep.written = false // the cleared state is now what must reach disk
	if !idep.everWritten && rec.FreeIno != 0 {
		// Nothing of this incarnation is on disk: free immediately.
		s.deleteInodeDep(rec.OwnerBuf, rec.OwnerIno)
		s.queueWait(&freeWait{rec: rec, rems: orphanRems})
		return
	}
	d := s.ensureDep(rec.OwnerBuf)
	d.frees = append(d.frees, &freeWait{rec: rec, rems: orphanRems})
}

// cancelAllocsFor removes pending allocDirects that no longer serve any
// purpose: those whose pointers lived in the freed inode (full free) or
// whose new blocks are among the freed fragment runs (partial truncation),
// plus anything owned by a freed indirect block. It returns any moved-from
// runs those allocations were still holding.
func (s *SoftUpdates) cancelAllocsFor(rec *ffs.FreeRec) []ffs.FragRun {
	fullFree := rec.FreeIno != 0 || allPointersCleared(rec)
	var extra []ffs.FragRun
	owned := map[int32]bool{}
	for _, run := range rec.Frags {
		owned[run.Start] = true
	}
	base := int(rec.OwnerIno) % ffs.InodesPerBlock * ffs.InodeSize
	for b, d := range s.deps {
		kept := d.allocs[:0]
		for _, ad := range d.allocs {
			mine := false
			if ad.owner == rec.OwnerBuf && ad.sizeOff == base+ffs.InoSizeOff {
				// Pointer in the truncated inode itself: cancelled on a
				// full free, or when its block is among the freed runs.
				if fullFree || owned[ad.newPtr] {
					mine = true
				}
			}
			if ad.owner != rec.OwnerBuf && owned[int32(ad.owner.Frag)] {
				mine = true // pointer in one of the freed indirect blocks
			}
			if mine {
				ad.cancelled = true
				if ad.movedFrom != nil {
					extra = append(extra, *ad.movedFrom)
				}
				if nd := s.dep(ad.newBuf); nd != nil {
					nd.initOf = removeAD(nd.initOf, ad)
					s.prune(ad.newBuf)
				}
				continue
			}
			kept = append(kept, ad)
		}
		d.allocs = kept
		s.prune(b)
	}
	return extra
}

func removeAD(list []*allocDirect, ad *allocDirect) []*allocDirect {
	out := list[:0]
	for _, a := range list {
		if a != ad {
			out = append(out, a)
		}
	}
	return out
}

// allPointersCleared reports whether rec describes a full truncation (the
// inode's size is zero in the owner buffer image).
func allPointersCleared(rec *ffs.FreeRec) bool {
	base := int(rec.OwnerIno) % ffs.InodesPerBlock * ffs.InodeSize
	ip := ffs.DecodeInode(rec.OwnerBuf.Data[base : base+ffs.InodeSize])
	return ip.Size == 0
}

func (s *SoftUpdates) deleteInodeDep(b *cache.Buf, ino ffs.Ino) {
	d := s.dep(b)
	if d == nil {
		return
	}
	if idep := d.inodeDeps[ino]; idep != nil {
		// Allocations gated on this (now vanished) inode must not wait
		// forever: drop the gate and let the pointer write proceed — the
		// entry that created the gate has already been removed.
		for _, ad := range idep.waitingAllocs {
			for i, w := range ad.waitInodes {
				if w == idep {
					ad.waitInodes = append(ad.waitInodes[:i], ad.waitInodes[i+1:]...)
					break
				}
			}
			if !ad.cancelled && ad.ready() {
				ad.owner.Dirty = true
			}
		}
		idep.waitingAllocs = nil
	}
	delete(d.inodeDeps, ino)
	s.prune(b)
}

func (s *SoftUpdates) queueFree(rec *ffs.FreeRec) {
	s.queueWait(&freeWait{rec: rec})
}

// queueWait runs a resolved freeWait from the workitem queue: orphaned
// removals first (their directory block is gone), then the free itself.
func (s *SoftUpdates) queueWait(fw *freeWait) {
	s.Stat.Workitems++
	s.cache().QueueWork(func(p *sim.Proc) {
		for _, rem := range fw.rems {
			rem.rec.DirLocked = false
			rem.rec.InoLocked = false
			rem.rec.FS.FinishRemove(p, rem.rec)
		}
		fw.rec.FS.ApplyFree(p, fw.rec)
	})
}

// MetaUpdate implements ffs.Ordering.
func (s *SoftUpdates) MetaUpdate(p *sim.Proc, b *cache.Buf) { s.cache().Bdwrite(b) }

// DataWrite implements ffs.Ordering.
func (s *SoftUpdates) DataWrite(p *sim.Proc, b *cache.Buf) { s.cache().Bdwrite(b) }

// ---------------------------------------------------------------------
// Cache hooks: undo/redo
// ---------------------------------------------------------------------

type suHooks struct{ s *SoftUpdates }

// OnAccess is a no-op: rollbacks happen in write-source copies, so the
// in-memory buffer is always current.
func (h suHooks) OnAccess(b *cache.Buf) {}

// BeforeWrite builds the write source: when some updates in the buffer
// still have unresolved dependencies, it returns a copy of src with those
// updates rolled back — the block as written is consistent with the
// current on-disk state, and the live buffer is never perturbed (the
// copy-on-write variant the paper recommends over in-place undo/redo).
func (h suHooks) BeforeWrite(b *cache.Buf, src []byte) []byte {
	s := h.s
	d := s.dep(b)
	if d == nil {
		return nil
	}
	var out []byte
	ensure := func() []byte {
		if out == nil {
			out = append([]byte(nil), src...)
		}
		return out
	}
	le := binary.LittleEndian

	// Allocation rollback, newest first so chained old values layer.
	for i := len(d.allocs) - 1; i >= 0; i-- {
		ad := d.allocs[i]
		if ad.ready() {
			ad.covered = true
			continue
		}
		ad.covered = false
		cp := ensure()
		le.PutUint32(cp[ad.ptrOff:], uint32(ad.oldPtr))
		if ad.sizeOff >= 0 {
			le.PutUint64(cp[ad.sizeOff:], ad.oldSize)
		}
		s.Stat.Rollbacks++
	}

	// Directory entry rollback: zero the inode number.
	for _, add := range d.adds {
		if add.inoSafe {
			add.covered = true
			continue
		}
		add.covered = false
		cp := ensure()
		le.PutUint32(cp[add.off:], 0)
		s.Stat.Rollbacks++
	}

	// Removals and frees whose state is in this image resolve when it
	// lands.
	d.remsInFlight = append(d.remsInFlight, d.rems...)
	d.rems = nil
	d.freesInFlight = append(d.freesInFlight, d.frees...)
	d.frees = nil

	for _, idep := range d.inodeDeps {
		idep.inFlight = true
	}
	return out
}

func (h suHooks) WriteIssued(b *cache.Buf, req *dev.Request) {}

// WriteDone resolves dependencies covered by the completed write, redoes
// rolled-back updates in memory, and queues deferred work.
func (h suHooks) WriteDone(b *cache.Buf, req *dev.Request) {
	s := h.s

	// New-block side: allocations whose data this write carried are now
	// initialized on disk.
	if d := s.dep(b); d != nil {
		for _, ad := range d.initOf {
			ad.initDone = true
			// The owner's pointer can now reach the disk (unless still
			// gated on inode writes); make sure the owner gets
			// (re)written so the dependency resolves.
			if ad.ready() {
				ad.owner.Dirty = true
			}
		}
		d.initOf = nil
	}

	d := s.dep(b)
	if d == nil {
		return
	}

	// Owner side: allocations whose pointer the completed write carried
	// are resolved; rolled-back ones stay pending (the buffer re-dirties
	// when their dependencies resolve, or below if they already have).
	kept := d.allocs[:0]
	var resolved []*allocDirect
	for _, ad := range d.allocs {
		if ad.covered && ad.ready() {
			resolved = append(resolved, ad)
			continue
		}
		if ad.ready() {
			// Became ready while the rolled-back write was in flight.
			b.Dirty = true
		}
		kept = append(kept, ad)
	}
	d.allocs = kept
	for _, ad := range resolved {
		if ad.movedFrom != nil {
			s.queueFree(&ffs.FreeRec{FS: s.fs, Frags: []ffs.FragRun{*ad.movedFrom}})
		}
	}

	// Directory entries: the ones the write carried resolve; rolled-back
	// ones whose inode became safe mid-flight re-dirty the block.
	for off, add := range d.adds {
		if add.covered && add.inoSafe {
			delete(d.adds, off)
			h.s.dropAdd(add)
			continue
		}
		if add.inoSafe {
			b.Dirty = true
		}
	}

	// Inode addsafe state: anything in flight is now on disk.
	for ino, idep := range d.inodeDeps {
		if !idep.inFlight {
			continue
		}
		idep.inFlight = false
		idep.written = true
		idep.everWritten = true
		for _, add := range idep.waitingAdds {
			add.inoSafe = true
			// The entry may now reach the disk; re-dirty its block so the
			// next flush carries it for real. (The paper leaves this to
			// the next access or a 15-second workitem; we do it eagerly —
			// the block must be rewritten either way, and eager re-dirty
			// keeps explicit sync convergent.)
			add.buf.Dirty = true
		}
		for _, ad := range idep.waitingAllocs {
			if !ad.cancelled && ad.ready() {
				ad.owner.Dirty = true
			}
		}
		idep.waitingAllocs = nil
		_ = ino
	}

	// Deferred link removals and frees covered by this write.
	for _, rem := range d.remsInFlight {
		rec := rem.rec
		rec.DirLocked = false // the workitem runs in syncer context, lock-free
		rec.InoLocked = false
		s.Stat.Workitems++
		s.cache().QueueWork(func(p *sim.Proc) {
			rec.FS.FinishRemove(p, rec)
		})
	}
	d.remsInFlight = nil
	for _, fw := range d.freesInFlight {
		s.queueWait(fw)
	}
	d.freesInFlight = nil

	// Sweep fully-resolved organizational structures.
	for ino, idep := range d.inodeDeps {
		if idep.written && !idep.inFlight && len(idep.waitingAdds) == 0 && len(idep.waitingAllocs) == 0 {
			delete(d.inodeDeps, ino)
		}
	}
	// An indirect block stays pinned only while it carries dependencies.
	if b.Pinned && len(d.initOf) == 0 && len(d.allocs) == 0 {
		b.Pinned = false
	}
	s.prune(b)
}
