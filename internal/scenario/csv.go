// Op CSV: the trace-replay interchange format. One operation per row, a
// fixed header, comma-separated plain fields (generated names never
// contain commas; ReadCSV rejects rows that would be ambiguous). The
// format is deliberately minimal — it exists so a recorded scenario run
// can be exported, diffed, edited, and replayed bit-exactly.

package scenario

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

const csvHeader = "kind,dir,name,dir2,name2,size"

// WriteCSV exports ops, one per row, under the canonical header.
func WriteCSV(w io.Writer, ops []Op) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for i, op := range ops {
		if strings.ContainsAny(op.Name, ",\n") || strings.ContainsAny(op.Name2, ",\n") {
			return fmt.Errorf("scenario: op %d: name contains a delimiter", i)
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%d,%s,%d\n",
			op.Kind, op.Dir, op.Name, op.Dir2, op.Name2, op.Size); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses an op CSV. Every malformed input names its line: a
// replayed trace is an executable artifact, so errors must be locatable.
func ReadCSV(r io.Reader) ([]Op, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("scenario: empty op CSV (missing header %q)", csvHeader)
	}
	if got := strings.TrimRight(sc.Text(), "\r"); got != csvHeader {
		return nil, fmt.Errorf("scenario: line 1: bad header %q, want %q", got, csvHeader)
	}
	var ops []Op
	line := 1
	for sc.Scan() {
		line++
		row := strings.TrimRight(sc.Text(), "\r")
		if row == "" {
			continue
		}
		f := strings.Split(row, ",")
		if len(f) != 6 {
			return nil, fmt.Errorf("scenario: line %d: %d fields, want 6", line, len(f))
		}
		kind, ok := parseKind(f[0])
		if !ok {
			return nil, fmt.Errorf("scenario: line %d: unknown op kind %q", line, f[0])
		}
		num := func(field, name string, min int) (int, error) {
			n, err := strconv.Atoi(field)
			if err != nil {
				return 0, fmt.Errorf("scenario: line %d: bad %s %q", line, name, field)
			}
			if n < min {
				return 0, fmt.Errorf("scenario: line %d: %s %d out of range", line, name, n)
			}
			return n, nil
		}
		dir, err := num(f[1], "dir", 0)
		if err != nil {
			return nil, err
		}
		dir2, err := num(f[3], "dir2", 0)
		if err != nil {
			return nil, err
		}
		size, err := num(f[5], "size", 0)
		if err != nil {
			return nil, err
		}
		if f[2] == "" {
			return nil, fmt.Errorf("scenario: line %d: empty name", line)
		}
		if kind == KRename && f[4] == "" {
			return nil, fmt.Errorf("scenario: line %d: rename without a destination name", line)
		}
		ops = append(ops, Op{Kind: kind, Dir: dir, Name: f[2], Dir2: dir2, Name2: f[4], Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
