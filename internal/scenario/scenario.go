// Package scenario is the open-loop workload library: deterministic
// operation streams shaped like the server workloads the paper names as
// its motivating cases (mail spools, software builds, caches), driven
// against a simulated file system or metadata cluster at the offered load
// an internal/arrival process dictates.
//
// A Stream is a pure function of the operation index — like the arrival
// processes, no running RNG stream, no hidden state — so a scenario can
// be replayed from any index, recorded to CSV and replayed bit-exactly,
// and embedded in memoized harness cells whose fingerprints cover the
// scenario name and seed. Each stream is self-consistent by construction:
// an operation only references files that earlier indices created
// (rounds reference their own round's file, removals trail a fixed
// retention window behind), so at modest overlap every op finds its
// target. Under deep open-loop overlap an op can overtake the create it
// depends on; the driver counts the resulting ErrNotExist as a soft
// error rather than failing the run — in virtual time the overtaking is
// itself deterministic, so soft-error counts are reproducible.
package scenario

import (
	"fmt"
	"strings"
)

// Kind classifies a scenario operation.
type Kind uint8

// The operation vocabulary — the paper's metadata hot path (create,
// rename, remove, lookup) plus the data touches (write-on-create, read,
// fsync) that make the mix realistic.
const (
	KLookup Kind = iota
	KCreate      // create, then write Size bytes
	KRename
	KUnlink
	KRead // lookup, then read up to Size bytes
	KFsync
	// NumKinds sizes per-kind arrays.
	NumKinds
)

var kindNames = [NumKinds]string{"lookup", "create", "rename", "unlink", "read", "fsync"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

func parseKind(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Op is one scenario operation. Dir/Dir2 index the stream's fixed
// directory set (0 .. NDirs-1); Dir2/Name2 are the rename destination.
// Size is the bytes written after a create or the read-buffer size.
type Op struct {
	Kind  Kind
	Dir   int
	Name  string
	Dir2  int
	Name2 string
	Size  int
}

// Stream is a deterministic operation sequence: At must be a pure
// function of i (any i >= 0), so streams replay from any index and
// memoize cleanly.
type Stream interface {
	Name() string
	NDirs() int
	At(i int64) Op
}

// Names lists the built-in scenarios.
func Names() []string { return []string{"mail", "build", "webcache"} }

// New returns a built-in stream by name. The seed perturbs file sizes
// only — the op structure is fixed, so two seeds offer the same mix.
func New(name string, seed int64) (Stream, error) {
	switch name {
	case "mail":
		return mailStream{seed}, nil
	case "build":
		return buildStream{seed}, nil
	case "webcache":
		return webStream{seed}, nil
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
}

// draw is the (seed, index, salt)-keyed splitmix64 draw shared with
// internal/arrival and internal/fault: no stream state, pure per index.
func draw(seed, i int64, salt uint64) uint64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(i)*0xD1B54A32D192ED03 ^ salt
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// sizeIn maps a draw to [lo, hi] bytes.
func sizeIn(seed, j int64, salt uint64, lo, hi int) int {
	return lo + int(draw(seed, j, salt)%uint64(hi-lo+1))
}

// mailStream models maildir-style spool churn — the paper's mail-server
// motivating case. Delivery round j (operations 5j .. 5j+4) writes a
// message to a tmp name, fsyncs it (the MTA's durability point), renames
// it into the mailbox, reads it back (the reader process), and expires
// the message delivered mailWindow rounds earlier. Eight mailbox
// directories are used round-robin, so ~mailWindow messages are live in
// steady state.
type mailStream struct{ seed int64 }

const (
	mailDirs   = 8
	mailWindow = 256
)

func (mailStream) Name() string { return "mail" }
func (mailStream) NDirs() int   { return mailDirs }

func (m mailStream) At(i int64) Op {
	j, phase := i/5, i%5
	d := int(j % mailDirs)
	tmp := fmt.Sprintf("tmp%d", j)
	msg := fmt.Sprintf("msg%d", j)
	switch phase {
	case 0:
		return Op{Kind: KCreate, Dir: d, Name: tmp, Size: sizeIn(m.seed, j, 0x3A11, 2048, 16384)}
	case 1:
		return Op{Kind: KFsync, Dir: d, Name: tmp}
	case 2:
		return Op{Kind: KRename, Dir: d, Name: tmp, Dir2: d, Name2: msg}
	case 3:
		return Op{Kind: KRead, Dir: d, Name: msg, Size: 16384}
	default:
		if j >= mailWindow {
			old := j - mailWindow
			return Op{Kind: KUnlink, Dir: int(old % mailDirs), Name: fmt.Sprintf("msg%d", old)}
		}
		return Op{Kind: KLookup, Dir: d, Name: msg}
	}
}

// buildStream models a build farm: round j writes a source file, the
// "compiler" reads it, emits an object file into a parallel obj
// directory, stats the source again (dependency check), and a trailing
// clean pass removes the object built buildWindow rounds earlier.
// Directories 0-3 hold sources, 4-7 objects.
type buildStream struct{ seed int64 }

const (
	buildFanout = 4
	buildWindow = 128
)

func (buildStream) Name() string { return "build" }
func (buildStream) NDirs() int   { return 2 * buildFanout }

func (b buildStream) At(i int64) Op {
	j, phase := i/5, i%5
	src, obj := int(j%buildFanout), buildFanout+int(j%buildFanout)
	s := fmt.Sprintf("s%d.c", j)
	o := fmt.Sprintf("o%d.o", j)
	switch phase {
	case 0:
		return Op{Kind: KCreate, Dir: src, Name: s, Size: sizeIn(b.seed, j, 0xB01D, 1024, 8192)}
	case 1:
		return Op{Kind: KRead, Dir: src, Name: s, Size: 8192}
	case 2:
		return Op{Kind: KCreate, Dir: obj, Name: o, Size: sizeIn(b.seed, j, 0xB02D, 2048, 24576)}
	case 3:
		return Op{Kind: KLookup, Dir: src, Name: s}
	default:
		if j >= buildWindow {
			old := j - buildWindow
			return Op{Kind: KUnlink, Dir: buildFanout + int(old%buildFanout), Name: fmt.Sprintf("o%d.o", old)}
		}
		return Op{Kind: KLookup, Dir: obj, Name: o}
	}
}

// webStream models a web-cache fill: round j admits an object into one
// of four shard directories, serves it once, and evicts the object
// admitted webWindow rounds earlier — a create/read/unlink mix dominated
// by data volume rather than metadata ordering.
type webStream struct{ seed int64 }

const (
	webDirs   = 4
	webWindow = 512
)

func (webStream) Name() string { return "webcache" }
func (webStream) NDirs() int   { return webDirs }

func (w webStream) At(i int64) Op {
	j, phase := i/3, i%3
	d := int(j % webDirs)
	name := fmt.Sprintf("c%d", j)
	switch phase {
	case 0:
		return Op{Kind: KCreate, Dir: d, Name: name, Size: sizeIn(w.seed, j, 0x3EB5, 4096, 65536)}
	case 1:
		return Op{Kind: KRead, Dir: d, Name: name, Size: 65536}
	default:
		if j >= webWindow {
			old := j - webWindow
			return Op{Kind: KUnlink, Dir: int(old % webDirs), Name: fmt.Sprintf("c%d", old)}
		}
		return Op{Kind: KRead, Dir: d, Name: name, Size: 65536}
	}
}

// Record materializes the first n operations of a stream (the export
// half of the CSV round trip).
func Record(s Stream, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = s.At(int64(i))
	}
	return ops
}

// replayStream plays back a recorded operation list; indices beyond the
// list wrap around, so a short trace can still sustain a long run.
type replayStream struct {
	name  string
	ndirs int
	ops   []Op
}

// NewReplay wraps a recorded operation list as a Stream. The directory
// count is recovered from the ops themselves (max index referenced).
func NewReplay(name string, ops []Op) (Stream, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("scenario: replay %q has no operations", name)
	}
	nd := 1
	for _, op := range ops {
		if op.Dir < 0 || op.Dir2 < 0 {
			return nil, fmt.Errorf("scenario: replay %q has a negative directory index", name)
		}
		if op.Dir >= nd {
			nd = op.Dir + 1
		}
		if op.Dir2 >= nd {
			nd = op.Dir2 + 1
		}
	}
	return replayStream{name: name, ndirs: nd, ops: ops}, nil
}

func (r replayStream) Name() string { return r.name }
func (r replayStream) NDirs() int   { return r.ndirs }
func (r replayStream) At(i int64) Op {
	return r.ops[int(i%int64(len(r.ops)))]
}
