package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestStreamsPure: At is a pure function of the index for every built-in
// stream — out-of-order and repeated calls reproduce the sequence.
func TestStreamsPure(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		const n = 4096
		ops := Record(s, n)
		for _, i := range []int64{n - 1, 0, 1234, 1234, 7} {
			if got := s.At(i); !reflect.DeepEqual(got, ops[i]) {
				t.Errorf("%s: At(%d) = %+v out of order, want %+v", name, i, got, ops[i])
			}
		}
	}
}

// applySequential interprets ops in order against a per-directory name
// set, returning the first inconsistency (reference to a missing file,
// create over an existing one, out-of-range directory).
func applySequential(s Stream, n int) error {
	dirs := make([]map[string]bool, s.NDirs())
	for d := range dirs {
		dirs[d] = make(map[string]bool)
	}
	check := func(i int, d int, name string) error {
		if d < 0 || d >= len(dirs) {
			return fmt.Errorf("op %d: dir %d out of range [0,%d)", i, d, len(dirs))
		}
		if !dirs[d][name] {
			return fmt.Errorf("op %d: %q missing from dir %d", i, name, d)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		op := s.At(int64(i))
		switch op.Kind {
		case KCreate:
			if op.Dir < 0 || op.Dir >= len(dirs) {
				return fmt.Errorf("op %d: dir %d out of range", i, op.Dir)
			}
			if dirs[op.Dir][op.Name] {
				return fmt.Errorf("op %d: create over existing %q in dir %d", i, op.Name, op.Dir)
			}
			dirs[op.Dir][op.Name] = true
		case KRename:
			if err := check(i, op.Dir, op.Name); err != nil {
				return err
			}
			delete(dirs[op.Dir], op.Name)
			dirs[op.Dir2][op.Name2] = true
		case KUnlink:
			if err := check(i, op.Dir, op.Name); err != nil {
				return err
			}
			delete(dirs[op.Dir], op.Name)
		case KLookup, KRead, KFsync:
			if err := check(i, op.Dir, op.Name); err != nil {
				return err
			}
		default:
			return fmt.Errorf("op %d: unknown kind %v", i, op.Kind)
		}
	}
	return nil
}

// TestStreamsSelfConsistent: executed sequentially, every built-in
// stream's operations only reference files that exist — including well
// past the retention-window wrap, so removals and reuse stay coherent.
func TestStreamsSelfConsistent(t *testing.T) {
	lens := map[string]int{
		"mail":     5 * (mailWindow + 200),
		"build":    5 * (buildWindow + 200),
		"webcache": 3 * (webWindow + 200),
	}
	for _, name := range Names() {
		s, err := New(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := applySequential(s, lens[name]); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestStreamBoundedLiveSet: the retention windows keep the live file
// count — and with it inode demand — bounded, so long runs fit small
// file systems.
func TestStreamBoundedLiveSet(t *testing.T) {
	s, _ := New("mail", 7)
	dirs := make([]map[string]bool, s.NDirs())
	for d := range dirs {
		dirs[d] = make(map[string]bool)
	}
	for i := 0; i < 5*(mailWindow*4); i++ {
		op := s.At(int64(i))
		switch op.Kind {
		case KCreate:
			dirs[op.Dir][op.Name] = true
		case KRename:
			delete(dirs[op.Dir], op.Name)
			dirs[op.Dir2][op.Name2] = true
		case KUnlink:
			delete(dirs[op.Dir], op.Name)
		}
	}
	live := 0
	for _, d := range dirs {
		live += len(d)
	}
	if live > mailWindow+mailDirs {
		t.Errorf("mail live set %d exceeds window bound %d", live, mailWindow+mailDirs)
	}
}

// TestCSVRoundTrip: Record → WriteCSV → ReadCSV → NewReplay reproduces
// the exact op sequence and directory count.
func TestCSVRoundTrip(t *testing.T) {
	s, err := New("mail", 11)
	if err != nil {
		t.Fatal(err)
	}
	ops := Record(s, 300)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("CSV round trip altered the op sequence (%d vs %d ops)", len(got), len(ops))
	}
	rs, err := NewReplay("mail", got)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NDirs() != s.NDirs() {
		t.Errorf("replay recovered %d dirs, want %d", rs.NDirs(), s.NDirs())
	}
	for i := 0; i < len(ops); i++ {
		if !reflect.DeepEqual(rs.At(int64(i)), ops[i]) {
			t.Fatalf("replay diverges at op %d", i)
		}
	}
	// Wrap-around.
	if !reflect.DeepEqual(rs.At(int64(len(ops))), ops[0]) {
		t.Errorf("replay does not wrap to op 0")
	}
}

// TestWriteCSVRejectsDelimiters: a name containing the field or record
// delimiter cannot be represented and must be refused, not corrupted.
func TestWriteCSVRejectsDelimiters(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []Op{{Kind: KCreate, Name: "a,b"}})
	if err == nil || !strings.Contains(err.Error(), "delimiter") {
		t.Errorf("WriteCSV(comma name) err = %v, want delimiter error", err)
	}
}

// TestReadCSVErrors: every malformed-input class is rejected with an
// error naming the offending line.
func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "empty op CSV"},
		{"bad header", "op,dir,name\n", "line 1: bad header"},
		{"few fields", csvHeader + "\ncreate,0,a,0\n", "line 2: 4 fields"},
		{"many fields", csvHeader + "\ncreate,0,a,0,,4096,extra\n", "line 2: 7 fields"},
		{"unknown kind", csvHeader + "\nmunge,0,a,0,,0\n", `line 2: unknown op kind "munge"`},
		{"bad dir", csvHeader + "\ncreate,x,a,0,,0\n", `line 2: bad dir "x"`},
		{"negative dir", csvHeader + "\ncreate,-1,a,0,,0\n", "line 2: dir -1 out of range"},
		{"bad dir2", csvHeader + "\nrename,0,a,y,b,0\n", `line 2: bad dir2 "y"`},
		{"bad size", csvHeader + "\ncreate,0,a,0,,big\n", `line 2: bad size "big"`},
		{"negative size", csvHeader + "\ncreate,0,a,0,,-5\n", "line 2: size -5 out of range"},
		{"empty name", csvHeader + "\ncreate,0,,0,,0\n", "line 2: empty name"},
		{"rename no dest", csvHeader + "\nrename,0,a,1,,0\n", "line 2: rename without a destination"},
		{"later line", csvHeader + "\ncreate,0,a,0,,0\nunlink,0,a,0,,0\nmunge,0,a,0,,0\n", "line 4: unknown op kind"},
	}
	for _, c := range cases {
		_, err := ReadCSV(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestNewReplayValidation: empty traces and negative directory indices
// are refused at construction.
func TestNewReplayValidation(t *testing.T) {
	if _, err := NewReplay("x", nil); err == nil {
		t.Error("NewReplay(empty) succeeded, want error")
	}
	if _, err := NewReplay("x", []Op{{Kind: KCreate, Dir: -1, Name: "a"}}); err == nil {
		t.Error("NewReplay(negative dir) succeeded, want error")
	}
}

// TestNewUnknownScenario: the factory names the valid choices.
func TestNewUnknownScenario(t *testing.T) {
	_, err := New("nfs", 1)
	if err == nil || !strings.Contains(err.Error(), "mail") {
		t.Errorf("New(nfs) err = %v, want unknown-scenario error listing choices", err)
	}
}

// TestKindStrings: names round-trip through the CSV parser's kind table.
func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		got, ok := parseKind(k.String())
		if !ok || got != k {
			t.Errorf("parseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := parseKind("Kind(17)"); ok {
		t.Error("parseKind accepted an out-of-range name")
	}
}
