package scenario_test

import (
	"bytes"
	"reflect"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/arrival"
	"metaupdate/internal/scenario"
)

// smallOpts is a compact machine for driver tests.
func smallOpts(scheme fsim.Scheme) fsim.Options {
	return fsim.Options{
		Scheme:     scheme,
		DiskBytes:  64 << 20,
		NInodes:    8192,
		CacheBytes: 8 << 20,
	}
}

// driveMail runs one open-loop mail run and returns the result.
func driveMail(t *testing.T, scheme fsim.Scheme, spec scenario.RunSpec) scenario.Result {
	t.Helper()
	sys, err := fsim.New(smallOpts(scheme))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	stream, err := scenario.New("mail", spec.Arrival.Seed)
	if err != nil {
		t.Fatal(err)
	}
	target, err := scenario.SetupFS(sys.Eng, sys.FS, stream)
	if err != nil {
		t.Fatal(err)
	}
	return scenario.Drive(sys.Eng, target, stream, spec)
}

// TestDriveAccounting pins the driver's counter invariants on a real
// system: every arrival is either admitted or dropped, every admitted
// operation completes, the measured window is framed correctly, and the
// in-flight high-water mark respects the admission bound.
func TestDriveAccounting(t *testing.T) {
	spec := scenario.RunSpec{
		Arrival: arrival.Spec{Kind: arrival.Poisson, Seed: 5, PerSec: 400},
		Ops:     600,
		Warmup:  100,
	}
	res := driveMail(t, fsim.SoftUpdates, spec)
	if res.Issued != spec.Ops {
		t.Errorf("issued %d, want %d", res.Issued, spec.Ops)
	}
	if res.Dropped != 0 {
		t.Errorf("unbounded run dropped %d arrivals", res.Dropped)
	}
	if res.Completed != res.Issued-res.Dropped {
		t.Errorf("completed %d, want issued-dropped %d", res.Completed, res.Issued-res.Dropped)
	}
	if res.MeasuredOps != spec.Ops-spec.Warmup {
		t.Errorf("measured %d, want %d", res.MeasuredOps, spec.Ops-spec.Warmup)
	}
	if res.LatCount != res.MeasuredOps {
		t.Errorf("latency samples %d, want one per measured op %d", res.LatCount, res.MeasuredOps)
	}
	if res.InFlightHWM < 1 {
		t.Errorf("in-flight high-water mark %d, want >= 1", res.InFlightHWM)
	}
	if res.WarmStart <= 0 || res.End <= res.WarmStart {
		t.Errorf("measured window [%v, %v] is degenerate", res.WarmStart, res.End)
	}
	if res.MeasuredPerSec <= 0 {
		t.Errorf("measured throughput %.1f/s, want > 0", res.MeasuredPerSec)
	}
	var issued int
	for _, ks := range res.PerKind {
		issued += ks.Issued
	}
	if issued != res.MeasuredOps+res.Dropped {
		t.Errorf("per-kind issued sum %d, want %d", issued, res.MeasuredOps)
	}
	// The mail stream is self-consistent and 400/s is modest load, so
	// overtaking should be rare-to-absent; a flood of soft errors means
	// the stream or driver is broken.
	if res.SoftErrs > res.Completed/10 {
		t.Errorf("soft errors %d out of %d completions — stream not self-consistent under load", res.SoftErrs, res.Completed)
	}
}

// TestDriveAdmissionBound: with MaxInFlight set, the bound is never
// exceeded and overload shows up as drops instead of unbounded queueing.
func TestDriveAdmissionBound(t *testing.T) {
	spec := scenario.RunSpec{
		// Far above capacity so the bound engages.
		Arrival:     arrival.Spec{Kind: arrival.Poisson, Seed: 5, PerSec: 20000},
		Ops:         800,
		Warmup:      100,
		MaxInFlight: 8,
	}
	res := driveMail(t, fsim.Conventional, spec)
	if res.InFlightHWM > spec.MaxInFlight {
		t.Errorf("in-flight high-water mark %d exceeds bound %d", res.InFlightHWM, spec.MaxInFlight)
	}
	if res.Dropped == 0 {
		t.Error("overloaded bounded run dropped nothing")
	}
	if res.Completed != res.Issued-res.Dropped {
		t.Errorf("completed %d, want issued-dropped %d", res.Completed, res.Issued-res.Dropped)
	}
}

// TestDriveDeterministic: the same spec on a fresh system reproduces the
// result exactly — the driver adds no hidden state on top of the
// simulation's virtual-time determinism.
func TestDriveDeterministic(t *testing.T) {
	spec := scenario.RunSpec{
		Arrival: arrival.Spec{Kind: arrival.Bursty, Seed: 9, PerSec: 300},
		Ops:     400,
		Warmup:  50,
	}
	a := driveMail(t, fsim.SchedulerChains, spec)
	b := driveMail(t, fsim.SchedulerChains, spec)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestReplayRoundTrip is the trace-replay satellite: export a recorded
// scenario run to op CSV, replay the CSV against an identical fresh
// system, and require the identical op sequence and virtual-time
// completion profile (the entire Result, completion times included).
func TestReplayRoundTrip(t *testing.T) {
	spec := scenario.RunSpec{
		Arrival: arrival.Spec{Kind: arrival.Poisson, Seed: 13, PerSec: 300},
		Ops:     500,
		Warmup:  100,
	}
	orig := driveMail(t, fsim.SoftUpdates, spec)

	// Export the op sequence the run executed.
	stream, err := scenario.New("mail", spec.Arrival.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ops := scenario.Record(stream, spec.Ops)
	var buf bytes.Buffer
	if err := scenario.WriteCSV(&buf, ops); err != nil {
		t.Fatal(err)
	}

	// Re-import and replay on a fresh, identically configured system.
	parsed, err := scenario.ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := scenario.NewReplay("mail", parsed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spec.Ops; i++ {
		if !reflect.DeepEqual(replay.At(int64(i)), stream.At(int64(i))) {
			t.Fatalf("replayed op %d differs from the recorded stream", i)
		}
	}
	sys, err := fsim.New(smallOpts(fsim.SoftUpdates))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	target, err := scenario.SetupFS(sys.Eng, sys.FS, replay)
	if err != nil {
		t.Fatal(err)
	}
	got := scenario.Drive(sys.Eng, target, replay, spec)
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("replayed run's completion profile diverges from the original:\noriginal %+v\nreplayed %+v", orig, got)
	}
}

// TestDriveCluster: the metadata-cluster target runs the same streams
// (metadata-only mapping) on the sharded service.
func TestDriveCluster(t *testing.T) {
	sys, err := fsim.NewDist(fsim.DistOptions{
		Base:  fsim.Options{Scheme: fsim.SoftUpdates},
		Nodes: 2,
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	res, err := sys.RunOpenLoop(fsim.OpenLoopSpec{
		Scenario: "mail",
		Arrival:  fsim.ArrivalSpec{Kind: fsim.Poisson, Seed: 3, PerSec: 100},
		Ops:      400,
		Warmup:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 400 || res.MeasuredOps != 350 {
		t.Errorf("cluster run completed %d measured %d, want 400/350", res.Completed, res.MeasuredOps)
	}
	// Cluster ops ride RPC round trips, so adjacent same-round ops
	// overtake more often than on the local FS; still, at 100/s the
	// stream should mostly find its files.
	if res.SoftErrs > res.Completed/5 {
		t.Errorf("cluster soft errors %d out of %d", res.SoftErrs, res.Completed)
	}
}
