// The open-loop driver: a dispatcher process sleeps to each arrival
// instant of an internal/arrival process and spawns one simulated process
// per admitted operation — work is offered on the arrival schedule
// whether or not earlier operations have finished, which is exactly the
// regime the repository's closed-loop benchmarks cannot reach. Everything
// runs in virtual time on the caller's executive, so results are
// byte-identical across harness worker counts and memo replay.

package scenario

import (
	"fmt"

	"metaupdate/internal/arrival"
	"metaupdate/internal/dmeta"
	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
	"metaupdate/internal/trace"
)

// Target executes one scenario operation against some system.
type Target interface {
	Do(p *sim.Proc, op Op) error
}

// payload is the shared write source (content is irrelevant to the
// simulation; only sizes matter). Read-only after init, so concurrent
// simulated processes may slice it freely.
var payload = make([]byte, 64<<10)

// FSTarget drives a single-machine file system: data ops carry their
// full byte counts, so cache pressure and write-behind behave as the
// scenario intends.
type FSTarget struct {
	FS   *ffs.FS
	Dirs []ffs.Ino
}

// SetupFS creates the stream's directory set under the root and returns
// the ready target. It runs its own process on exec.
func SetupFS(exec sim.Exec, fs *ffs.FS, s Stream) (*FSTarget, error) {
	t := &FSTarget{FS: fs}
	var err error
	done := false
	exec.Spawn("scenario-setup", func(p *sim.Proc) {
		defer func() { done = true }()
		for d := 0; d < s.NDirs(); d++ {
			var ino ffs.Ino
			if ino, err = fs.Mkdir(p, ffs.RootIno, fmt.Sprintf("d%d", d)); err != nil {
				return
			}
			t.Dirs = append(t.Dirs, ino)
		}
	})
	exec.RunWhile(func() bool { return !done })
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Do executes op. Operations that reference a file a concurrent op has
// not created yet (or already removed) return the file system's error;
// the driver counts those as soft errors.
func (t *FSTarget) Do(p *sim.Proc, op Op) error {
	switch op.Kind {
	case KLookup:
		_, err := t.FS.Lookup(p, t.Dirs[op.Dir], op.Name)
		return err
	case KCreate:
		ino, err := t.FS.Create(p, t.Dirs[op.Dir], op.Name)
		if err != nil {
			return err
		}
		if n := op.Size; n > 0 {
			if n > len(payload) {
				n = len(payload)
			}
			return t.FS.WriteAt(p, ino, 0, payload[:n])
		}
		return nil
	case KRename:
		return t.FS.Rename(p, t.Dirs[op.Dir], op.Name, t.Dirs[op.Dir2], op.Name2)
	case KUnlink:
		return t.FS.Unlink(p, t.Dirs[op.Dir], op.Name)
	case KRead:
		ino, err := t.FS.Lookup(p, t.Dirs[op.Dir], op.Name)
		if err != nil {
			return err
		}
		n := op.Size
		if n <= 0 || n > len(payload) {
			n = len(payload)
		}
		_, err = t.FS.ReadAt(p, ino, 0, make([]byte, n))
		return err
	case KFsync:
		ino, err := t.FS.Lookup(p, t.Dirs[op.Dir], op.Name)
		if err != nil {
			return err
		}
		return t.FS.Fsync(p, ino)
	}
	return fmt.Errorf("scenario: unknown op kind %d", op.Kind)
}

// ClusterTarget drives the sharded metadata service. The mapping is
// metadata-only — dmeta has no data plane, so reads, stats, and fsyncs
// become lookups; the ordering-relevant ops (create/rename/unlink) map
// directly.
type ClusterTarget struct {
	C    *dmeta.Cluster
	Dirs []uint64
}

// SetupCluster creates the stream's directory set under the cluster root
// and returns the ready target. It runs its own client process on the
// cluster's executive.
func SetupCluster(c *dmeta.Cluster, s Stream) (*ClusterTarget, error) {
	t := &ClusterTarget{C: c}
	var err error
	done := false
	c.Exec().Spawn("scenario-setup", func(p *sim.Proc) {
		defer func() { done = true }()
		for d := 0; d < s.NDirs(); d++ {
			var ino uint64
			if ino, err = c.Mkdir(p, dmeta.RootIno, fmt.Sprintf("d%d", d)); err != nil {
				return
			}
			t.Dirs = append(t.Dirs, ino)
		}
	})
	c.Exec().RunWhile(func() bool { return !done })
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Do executes op against the cluster.
func (t *ClusterTarget) Do(p *sim.Proc, op Op) error {
	switch op.Kind {
	case KCreate:
		_, err := t.C.Create(p, t.Dirs[op.Dir], op.Name)
		return err
	case KRename:
		return t.C.Rename(p, t.Dirs[op.Dir], op.Name, t.Dirs[op.Dir2], op.Name2)
	case KUnlink:
		return t.C.Unlink(p, t.Dirs[op.Dir], op.Name)
	case KLookup, KRead, KFsync:
		_, err := t.C.Lookup(p, t.Dirs[op.Dir], op.Name)
		return err
	}
	return fmt.Errorf("scenario: unknown op kind %d", op.Kind)
}

// RunSpec parameterizes one open-loop run.
type RunSpec struct {
	// Arrival is the offered-load process (must be enabled).
	Arrival arrival.Spec
	// Ops is the total number of arrivals to issue.
	Ops int
	// Warmup excludes the first Warmup arrivals from the measured window
	// (cold cache, empty directories).
	Warmup int
	// MaxInFlight bounds admission: an arrival finding this many
	// operations in flight is dropped (counted, not executed). Zero means
	// unbounded — true open loop.
	MaxInFlight int
	// LatCap bounds the latency digest's retained samples
	// (trace.Digest.SetCap); zero takes 1<<14.
	LatCap int
}

// KindStats counts one op kind over the measured window.
type KindStats struct {
	Issued int
	Errs   int
}

// Result is one open-loop run's outcome. All fields are plain values
// derived from virtual time, so results memoize and compare exactly.
type Result struct {
	Scenario string

	// Whole-run counters (warmup included).
	Issued      int // arrivals offered
	Dropped     int // arrivals refused by the MaxInFlight bound
	Completed   int // operations that ran to completion
	SoftErrs    int // completions that returned an error (e.g. overtaken deps)
	InFlightHWM int // peak concurrent operations — the queue-depth signal

	// Measured-window figures (arrival index >= Warmup).
	MeasuredOps    int      // measured completions
	WarmStart      sim.Time // arrival instant of the first measured index
	End            sim.Time // last measured completion
	MeasuredPerSec float64  // MeasuredOps over [WarmStart, End]
	Lat            trace.Dist
	LatCount       int // samples behind Lat (Digest.Count)
	PerKind        [NumKinds]KindStats
}

// Drive offers stream's operations to target on spec.Arrival's schedule
// and runs the executive until the last admitted operation completes.
// Operation latency is measured from the scheduled arrival instant —
// queueing delay a closed-loop harness would hide is included, which is
// the point of the open loop.
func Drive(exec sim.Exec, target Target, stream Stream, spec RunSpec) Result {
	res := Result{Scenario: stream.Name()}
	var lat trace.Digest
	if spec.LatCap > 0 {
		lat.SetCap(spec.LatCap)
	} else {
		lat.SetCap(1 << 14)
	}
	done := false
	exec.Spawn("openloop", func(p *sim.Proc) {
		eng := p.Engine()
		origin := p.Now()
		gen := arrival.NewGen(spec.Arrival)
		inflight := 0
		warmSet := false
		var wg sim.WaitGroup
		var lastDone sim.Time
		for i := 0; i < spec.Ops; i++ {
			at := origin + gen.Next()
			if at > p.Now() {
				p.Sleep(at - p.Now())
			}
			op := stream.At(int64(i))
			measured := i >= spec.Warmup
			if measured && !warmSet {
				res.WarmStart, warmSet = at, true
			}
			res.Issued++
			if measured {
				res.PerKind[op.Kind].Issued++
			}
			if spec.MaxInFlight > 0 && inflight >= spec.MaxInFlight {
				res.Dropped++
				continue
			}
			inflight++
			if inflight > res.InFlightHWM {
				res.InFlightHWM = inflight
			}
			wg.Add(1)
			sched := at
			eng.Spawn(fmt.Sprintf("op%d", i), func(q *sim.Proc) {
				err := target.Do(q, op)
				end := q.Now()
				res.Completed++
				if err != nil {
					res.SoftErrs++
				}
				if measured {
					res.MeasuredOps++
					if err != nil {
						res.PerKind[op.Kind].Errs++
					}
					lat.Add((end - sched).Milliseconds())
					if end > lastDone {
						lastDone = end
					}
				}
				inflight--
				wg.Done(eng)
			})
		}
		wg.Wait(p)
		res.End = lastDone
		done = true
	})
	exec.RunWhile(func() bool { return !done })
	res.Lat = lat.Dist()
	res.LatCount = lat.Count()
	if wall := res.End - res.WarmStart; wall > 0 && res.MeasuredOps > 0 {
		res.MeasuredPerSec = float64(res.MeasuredOps) / (float64(wall) / float64(sim.Second))
	}
	return res
}
