package harness_test

import (
	"strconv"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/harness"
)

// These tests pin the paper's headline *shapes* at reduced scale, so a
// regression that silently breaks the reproduction fails `go test` rather
// than only being visible in mdsim output.

func cell(t *testing.T, tb harness.Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func rowOf(t *testing.T, tb harness.Table, name string) int {
	t.Helper()
	for i, r := range tb.Rows {
		if r[0] == name {
			return i
		}
	}
	t.Fatalf("row %q not found", name)
	return -1
}

func TestShapeTable2Remove(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := harness.Table2.Tables(harness.Config{Scale: 0.15})[0]
	conv := cell(t, tb, rowOf(t, tb, "Conventional"), 1)
	su := cell(t, tb, rowOf(t, tb, "Soft Updates"), 1)
	no := cell(t, tb, rowOf(t, tb, "No Order"), 1)
	flag := cell(t, tb, rowOf(t, tb, "Scheduler Flag"), 1)

	// "Conventional ... performance improvement of more than a factor of 2"
	// (soft updates vs conventional is actually >10x on remove).
	if conv < 4*no {
		t.Errorf("Conventional remove (%v) not >> No Order (%v)", conv, no)
	}
	// "Note that Soft Updates elapsed times are lower than No Order for
	// this benchmark" (deferred removal).
	if su > no {
		t.Errorf("Soft Updates remove (%v) not faster than No Order (%v)", su, no)
	}
	// Scheduler-enforced ordering beats Conventional.
	if flag > conv {
		t.Errorf("Scheduler Flag remove (%v) slower than Conventional (%v)", flag, conv)
	}
	// Order-of-magnitude fewer disk requests for SU/No Order.
	convReq := cell(t, tb, rowOf(t, tb, "Conventional"), 4)
	suReq := cell(t, tb, rowOf(t, tb, "Soft Updates"), 4)
	if suReq*5 > convReq {
		t.Errorf("Soft Updates used %v requests vs Conventional %v; want ~10x fewer", suReq, convReq)
	}
}

func TestShapeTable1Copy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := harness.Table1.Tables(harness.Config{Scale: 0.15})[0]
	// Soft Updates within ~10% of No Order (paper: within 5%; allow slack
	// at reduced scale).
	suPct := cell(t, tb, rowOf2(t, tb, "Soft Updates", "N"), 3)
	if suPct > 112 {
		t.Errorf("Soft Updates at %.1f%% of No Order; want close to 100%%", suPct)
	}
	// Conventional pays for allocation initialization much more than Soft
	// Updates does.
	convN := cell(t, tb, rowOf2(t, tb, "Conventional", "N"), 2)
	convY := cell(t, tb, rowOf2(t, tb, "Conventional", "Y"), 2)
	suN := cell(t, tb, rowOf2(t, tb, "Soft Updates", "N"), 2)
	suY := cell(t, tb, rowOf2(t, tb, "Soft Updates", "Y"), 2)
	convCost := (convY - convN) / convN
	suCost := (suY - suN) / suN
	if convCost < suCost+0.10 {
		t.Errorf("alloc-init cost: conventional %.0f%% vs soft updates %.0f%%; want a wide gap",
			convCost*100, suCost*100)
	}
}

func rowOf2(t *testing.T, tb harness.Table, name, allocInit string) int {
	t.Helper()
	for i, r := range tb.Rows {
		if r[0] == name && r[1] == allocInit {
			return i
		}
	}
	t.Fatalf("row %q/%q not found", name, allocInit)
	return -1
}

func TestShapeFig5CreateRemoves(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// "No Order and Soft Updates proceed at memory speeds, achieving over
	// 5 times the throughput of the other three schemes" — allow 3x at
	// reduced scale.
	su := harness.Fig5Point(fsim.Options{Scheme: fsim.SoftUpdates}, harness.Fig5CreateRemoves, 4, 1500)
	no := harness.Fig5Point(fsim.Options{Scheme: fsim.NoOrder}, harness.Fig5CreateRemoves, 4, 1500)
	conv := harness.Fig5Point(fsim.Options{Scheme: fsim.Conventional}, harness.Fig5CreateRemoves, 4, 1500)
	flag := harness.Fig5Point(fsim.Options{Scheme: fsim.SchedulerFlag}, harness.Fig5CreateRemoves, 4, 1500)
	if su < 3*conv || su < 3*flag {
		t.Errorf("create/remove: SU %.0f vs conv %.0f, flag %.0f; want >3x", su, conv, flag)
	}
	diff := su - no
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.25*no {
		t.Errorf("SU (%.0f) not within 25%% of No Order (%.0f)", su, no)
	}
}

func TestShapeFig5CreatesRiseWithUsers(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// "create throughput improves with the number of users" (less CPU time
	// checking directory contents).
	one := harness.Fig5Point(fsim.Options{Scheme: fsim.NoOrder}, harness.Fig5Creates, 1, 2000)
	eight := harness.Fig5Point(fsim.Options{Scheme: fsim.NoOrder}, harness.Fig5Creates, 8, 2000)
	if eight <= one {
		t.Errorf("No Order creates: %f at 8 users <= %f at 1 user; want rising", eight, one)
	}
}
