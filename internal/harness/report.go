package harness

import (
	"encoding/json"
	"io"
)

// ExhibitReport is one exhibit's machine-readable result: the rendered
// tables plus the real time the exhibit took to resolve (which, with a
// shared warm runner, can be near zero).
type ExhibitReport struct {
	Name    string  `json:"name"`
	WallSec float64 `json:"wall_sec"`
	Tables  []Table `json:"tables"`
}

// Report is the mdsim -json payload: every exhibit's rows plus the
// runner's per-cell wall-clock and memoization counters. Table rows are a
// deterministic function of (scale, workload); the *_sec fields and
// counters describe the real execution and vary run to run.
type Report struct {
	Scale    float64         `json:"scale"`
	Jobs     int             `json:"jobs"`
	CPUs     int             `json:"cpus"`
	WallSec  float64         `json:"wall_sec"`
	Exhibits []ExhibitReport `json:"exhibits"`
	Runner   RunnerStats     `json:"runner"`
	Cells    []CellTiming    `json:"cells"`
}

// WriteJSON marshals the report with stable indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
