package harness_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"testing"

	"metaupdate/internal/harness"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden-0.05.txt from the current output")

// TestGoldenStdout locks down the exact bytes of every experiment table at
// scale 0.05 — the contract the hot-path work is held to: pooling, flat
// event queues, and overlay images may change how fast the answer arrives,
// never the answer. The runner is GOMAXPROCS-wide, so this also re-proves
// that output is identical under parallel cell execution.
//
// Regenerate with: go test ./internal/harness -run TestGoldenStdout -update-golden
func TestGoldenStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	var buf bytes.Buffer
	cfg := harness.DefaultConfig(&buf)
	cfg.Scale = 0.05
	cfg.Runner = harness.NewRunner(0)
	for _, name := range harness.ExperimentNames {
		for _, tb := range harness.ExhibitByName[name].Tables(cfg) {
			tb.Fprint(&buf)
		}
	}

	const path = "testdata/golden-0.05.txt"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Point at the first differing line rather than dumping both outputs.
	gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w []byte
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("output diverges from golden at line %d:\n got: %q\nwant: %q\n%s", i+1, g, w,
				fmt.Sprintf("(%d bytes got vs %d bytes want)", buf.Len(), len(want)))
		}
	}
	t.Fatalf("output differs from golden in trailing bytes (%d got vs %d want)", buf.Len(), len(want))
}
