package harness

import (
	"fmt"
	"io"

	"metaupdate/fsim"
	"metaupdate/internal/crashmc"
	"metaupdate/internal/fsck"
	"metaupdate/internal/workload"
)

// CrashCheckOptions parameterizes one model-checked workload run.
type CrashCheckOptions struct {
	// Files is the number of 1 KB files created and then removed (the
	// paper's figure 5 metadata workload). Default 150.
	Files int
	// SeedBug deliberately breaks soft updates by dropping the directory
	// entry -> inode initialization dependency (core.SoftUpdates
	// DropEntryDeps), to demonstrate that the checker catches real ordering
	// bugs. Only meaningful for fsim.SoftUpdates.
	SeedBug bool
	// MC bounds the exploration; zero values take crashmc defaults.
	MC crashmc.Config
}

func (o *CrashCheckOptions) setDefaults() {
	if o.Files <= 0 {
		o.Files = 150
	}
}

// CrashCheck records the 1 KB create/remove workload under the given scheme
// on a small (6 MB) file system and explores its crash-state space.
//
// The small media size is deliberate: every crash state is a full-image
// copy, so a compact file system is what makes bounded-exhaustive checking
// cheap enough to run in tests.
func CrashCheck(scheme fsim.Scheme, opt CrashCheckOptions) (*crashmc.Result, error) {
	opt.setDefaults()
	sys, err := fsim.New(fsim.Options{
		Scheme:     scheme,
		DiskBytes:  6 << 20,
		NInodes:    1024,
		CacheBytes: 2 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Shutdown()
	if opt.SeedBug {
		if sys.Soft == nil {
			return nil, fmt.Errorf("harness: SeedBug requires the soft updates scheme, got %v", scheme)
		}
		sys.Soft.DropEntryDeps = true
	}

	rec := crashmc.Attach(sys.Driver, sys.Disk)
	var werr error
	sys.Run(func(p *fsim.Proc) {
		dir, err := sys.FS.Mkdir(p, fsim.RootIno, "mc")
		if err != nil {
			werr = err
			return
		}
		if err := workload.CreateFiles(p, sys.FS, dir, opt.Files, 1024); err != nil {
			werr = err
			return
		}
		sys.FS.Sync(p)
		if err := workload.RemoveFiles(p, sys.FS, dir, opt.Files); err != nil {
			werr = err
			return
		}
		sys.FS.Sync(p)
	})
	if werr != nil {
		return nil, werr
	}
	cfg := opt.MC
	if scheme == fsim.Journaling {
		// Journaling's crash contract holds after recovery, not on the raw
		// image: replay committed journal transactions before the oracle.
		cfg.Recover = func(img []byte) { fsck.ReplayJournal(img) }
	}
	return rec.Explore(cfg), nil
}

// CrashCheckRow is one scheme's outcome in a matrix sweep.
type CrashCheckRow struct {
	Scheme fsim.Scheme
	Result *crashmc.Result
	Err    error
}

// ExpectClean reports whether the scheme guarantees every crash state passes
// fsck's ordering rules. No Order promises nothing; everything else does.
func (r CrashCheckRow) ExpectClean() bool { return r.Scheme != fsim.NoOrder }

// CrashCheckMatrix runs CrashCheck for each scheme and renders the results
// as a table on w (nil w: no output). It returns the rows for asserting.
func CrashCheckMatrix(schemes []fsim.Scheme, opt CrashCheckOptions, w io.Writer) []CrashCheckRow {
	rows := make([]CrashCheckRow, 0, len(schemes))
	for _, s := range schemes {
		res, err := CrashCheck(s, opt)
		rows = append(rows, CrashCheckRow{Scheme: s, Result: res, Err: err})
	}
	if w != nil {
		t := &Table{
			Title:   fmt.Sprintf("Crash-state model check: %d x 1 KB create/remove", opt.Files),
			Columns: []string{"scheme", "writes", "instants", "explored", "checked", "violating", "chk/s", "verdict"},
		}
		for _, r := range rows {
			if r.Err != nil {
				t.AddRow(r.Scheme.String(), "-", "-", "-", "-", "-", "-", "error: "+r.Err.Error())
				continue
			}
			st := r.Result.Stats
			verdict := "CLEAN"
			if st.Violating > 0 {
				verdict = fmt.Sprintf("%d VIOLATIONS", st.Violating)
			}
			if r.ExpectClean() == r.Result.Clean() {
				verdict += " (expected)"
			} else {
				verdict += " (UNEXPECTED)"
			}
			t.AddRow(r.Scheme.String(),
				fmt.Sprintf("%d", st.Writes),
				fmt.Sprintf("%d", st.Instants),
				fmt.Sprintf("%d", st.Explored),
				fmt.Sprintf("%d", st.Checked),
				fmt.Sprintf("%d", st.Violating),
				fmt.Sprintf("%.0f", st.CheckedPerSec),
				verdict)
		}
		t.Fprint(w)
	}
	return rows
}
