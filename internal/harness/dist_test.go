package harness

import (
	"io"
	"strings"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/dmeta"
	"metaupdate/internal/obs"
)

// distText renders the full mdsim -dist report through a runner with the
// given worker count, exactly as cmd/mdsim does.
func distText(workers int, scale Scale) (string, *Runner, Config) {
	r := NewRunner(workers)
	cfg := DefaultConfig(io.Discard)
	cfg.Scale = scale
	cfg.Runner = r
	var sb strings.Builder
	for _, tb := range DistExhibit.Tables(cfg) {
		tb.Fprint(&sb)
	}
	return sb.String(), r, cfg
}

// TestDistDeterministic asserts the -dist report is byte-identical for a
// serial and a parallel runner, and for a cold versus warm memo — the
// satellite determinism pin for the distributed service.
func TestDistDeterministic(t *testing.T) {
	serial, _, _ := distText(1, opTestScale)
	parallel, r4, cfg := distText(4, opTestScale)
	if serial == "" {
		t.Fatal("empty -dist report")
	}
	if !strings.Contains(serial, "Sharded metadata service") {
		t.Error("report is missing the cluster tables")
	}
	if serial != parallel {
		t.Errorf("-dist differs between -j1 and -j4:\n--- j1 ---\n%s\n--- j4 ---\n%s", serial, parallel)
	}

	hits0 := r4.Stats().Hits
	var warm strings.Builder
	for _, tb := range DistExhibit.Tables(cfg) {
		tb.Fprint(&warm)
	}
	if warm.String() != parallel {
		t.Error("-dist differs between cold and warm memo on the same runner")
	}
	if r4.Stats().Hits <= hits0 {
		t.Error("warm rerun did not hit the memo")
	}
}

// TestDistSpanPartition extends the span-partition property test to a
// 2-node cluster: with the recorder attached, every router-op span's
// stage segments (now including netqueue and wire) must still partition
// its latency exactly, and the network stages must actually appear.
func TestDistSpanPartition(t *testing.T) {
	for _, v := range []variant{
		{fsim.Conventional.String(), fsim.Options{Scheme: fsim.Conventional}},
		{fsim.SoftUpdates.String(), fsim.Options{Scheme: fsim.SoftUpdates}},
	} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			opt := v.opt
			opt.Observe = true
			s, err := fsim.NewDist(fsim.DistOptions{Base: opt, Nodes: 2, Seed: 17})
			if err != nil {
				t.Fatalf("NewDist: %v", err)
			}
			defer s.Shutdown()
			s.Obs.Reset() // profile the load only, not mount/init
			s.Cluster.Load(dmeta.LoadSpec{Clients: 3, Ops: 15, Seed: 17})
			spans := s.Obs.Spans()
			checkSpanPartition(t, "dist", spans)
			var net int
			for i := range spans {
				if spans[i].Seg[obs.StageNetQueue] > 0 || spans[i].Seg[obs.StageWire] > 0 {
					net++
				}
			}
			if net == 0 {
				t.Error("no span recorded netqueue/wire time on a 2-node cluster")
			}
		})
	}
}
