package harness

import (
	"io"
	"strings"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/dmeta"
	"metaupdate/internal/obs"
)

// distText renders the full mdsim -dist report through a runner with the
// given worker count, exactly as cmd/mdsim does. engineWorkers selects the
// per-cell event-engine parallelism (-engine-workers).
func distText(workers, engineWorkers int, scale Scale) (string, *Runner, Config) {
	r := NewRunner(workers)
	cfg := DefaultConfig(io.Discard)
	cfg.Scale = scale
	cfg.Runner = r
	cfg.EngineWorkers = engineWorkers
	var sb strings.Builder
	for _, tb := range DistExhibit.Tables(cfg) {
		tb.Fprint(&sb)
	}
	return sb.String(), r, cfg
}

// TestDistDeterministic asserts the -dist report is byte-identical for a
// serial and a parallel runner, and for a cold versus warm memo — the
// satellite determinism pin for the distributed service.
func TestDistDeterministic(t *testing.T) {
	serial, _, _ := distText(1, 0, opTestScale)
	parallel, r4, cfg := distText(4, 0, opTestScale)
	if serial == "" {
		t.Fatal("empty -dist report")
	}
	if !strings.Contains(serial, "Sharded metadata service") {
		t.Error("report is missing the cluster tables")
	}
	if serial != parallel {
		t.Errorf("-dist differs between -j1 and -j4:\n--- j1 ---\n%s\n--- j4 ---\n%s", serial, parallel)
	}

	hits0 := r4.Stats().Hits
	var warm strings.Builder
	for _, tb := range DistExhibit.Tables(cfg) {
		tb.Fprint(&warm)
	}
	if warm.String() != parallel {
		t.Error("-dist differs between cold and warm memo on the same runner")
	}
	if r4.Stats().Hits <= hits0 {
		t.Error("warm rerun did not hit the memo")
	}
}

// TestDistEngineWorkersDeterministic is the report-level byte-identity pin
// for the PDES engine: the full -dist report must match the serial render
// at every -engine-workers count, cold and warm (EngineWorkers is part of
// the cell fingerprint, so each count simulates its own cells — identical
// text proves identical simulations, not a shared memo entry).
func TestDistEngineWorkersDeterministic(t *testing.T) {
	serial, _, _ := distText(1, 0, opTestScale)
	if serial == "" {
		t.Fatal("empty -dist report")
	}
	for _, ew := range []int{2, 4, 8} {
		text, r, cfg := distText(2, ew, opTestScale)
		if text != serial {
			t.Errorf("-engine-workers %d report differs from serial:\n--- serial ---\n%s\n--- ew=%d ---\n%s",
				ew, serial, ew, text)
			continue
		}
		hits0 := r.Stats().Hits
		var warm strings.Builder
		for _, tb := range DistExhibit.Tables(cfg) {
			tb.Fprint(&warm)
		}
		if warm.String() != text {
			t.Errorf("-engine-workers %d differs between cold and warm memo", ew)
		}
		if r.Stats().Hits <= hits0 {
			t.Errorf("-engine-workers %d warm rerun did not hit the memo", ew)
		}
	}
}

// TestDistSpanPartition extends the span-partition property test to a
// 2-node cluster: with the recorder attached, every router-op span's
// stage segments (now including netqueue and wire) must still partition
// its latency exactly, and the network stages must actually appear.
func TestDistSpanPartition(t *testing.T) {
	for _, v := range []variant{
		{fsim.Conventional.String(), fsim.Options{Scheme: fsim.Conventional}},
		{fsim.SoftUpdates.String(), fsim.Options{Scheme: fsim.SoftUpdates}},
	} {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			opt := v.opt
			opt.Observe = true
			s, err := fsim.NewDist(fsim.DistOptions{Base: opt, Nodes: 2, Seed: 17})
			if err != nil {
				t.Fatalf("NewDist: %v", err)
			}
			defer s.Shutdown()
			s.Obs.Reset() // profile the load only, not mount/init
			s.Cluster.Load(dmeta.LoadSpec{Clients: 3, Ops: 15, Seed: 17})
			spans := s.Obs.Spans()
			checkSpanPartition(t, "dist", spans)
			var net int
			for i := range spans {
				if spans[i].Seg[obs.StageNetQueue] > 0 || spans[i].Seg[obs.StageWire] > 0 {
					net++
				}
			}
			if net == 0 {
				t.Error("no span recorded netqueue/wire time on a 2-node cluster")
			}
		})
	}
}
