package harness

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"metaupdate/fsim"
)

var updateLoadGolden = flag.Bool("update-load-golden", false, "rewrite testdata/load-0.05.txt from the current output")

// loadText renders the full mdsim -load report through a runner with the
// given worker count, exactly as cmd/mdsim does.
func loadText(workers, engineWorkers int, scale Scale) (string, *Runner, Config) {
	r := NewRunner(workers)
	cfg := DefaultConfig(io.Discard)
	cfg.Scale = scale
	cfg.Runner = r
	cfg.EngineWorkers = engineWorkers
	var sb strings.Builder
	for _, tb := range LoadCurveExhibit.Tables(cfg) {
		tb.Fprint(&sb)
	}
	return sb.String(), r, cfg
}

// TestLoadCurveDeterministic asserts the -load report is byte-identical
// for a serial and a parallel runner, and for a cold versus warm memo —
// the open-loop cells are pure functions of their fingerprints like every
// other cell kind, unbounded arrival processes included.
func TestLoadCurveDeterministic(t *testing.T) {
	serial, _, _ := loadText(1, 0, opTestScale)
	parallel, r4, cfg := loadText(4, 0, opTestScale)
	if serial == "" {
		t.Fatal("empty -load report")
	}
	if !strings.Contains(serial, "Open-loop saturation summary") {
		t.Error("report is missing the saturation summary")
	}
	if serial != parallel {
		t.Errorf("-load differs between -j1 and -j4:\n--- j1 ---\n%s\n--- j4 ---\n%s", serial, parallel)
	}

	hits0 := r4.Stats().Hits
	var warm strings.Builder
	for _, tb := range LoadCurveExhibit.Tables(cfg) {
		tb.Fprint(&warm)
	}
	if warm.String() != parallel {
		t.Error("-load differs between cold and warm memo on the same runner")
	}
	if r4.Stats().Hits <= hits0 {
		t.Error("warm rerun did not hit the memo")
	}

	// The report text is additionally pinned as a golden file: the tables
	// carry every measured throughput and latency percentile, so any
	// change to the arrival processes, the scenario streams, the driver,
	// or the schemes shows up as a byte diff here.
	const path = "testdata/load-0.05.txt"
	if *updateLoadGolden {
		if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(serial))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing load golden (regenerate with -update-load-golden): %v", err)
	}
	if serial != string(want) {
		gotLines := strings.Split(serial, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("-load report diverges from testdata/load-0.05.txt at line %d:\n got: %s\nwant: %s", i+1, g, w)
			}
		}
	}
}

// scenarioTables renders the mdsim -scenario report (2-node cluster
// variant included, so CellOpenLoopDist participates).
func scenarioTables(workers, engineWorkers int) (string, *Runner, Config) {
	r := NewRunner(workers)
	cfg := DefaultConfig(io.Discard)
	cfg.Scale = opTestScale
	cfg.Runner = r
	cfg.EngineWorkers = engineWorkers
	var sb strings.Builder
	for _, tb := range ScenarioExhibit("mail", 100, 2).Tables(cfg) {
		tb.Fprint(&sb)
	}
	return sb.String(), r, cfg
}

// TestScenarioEngineWorkersDeterministic is the PDES byte-identity pin
// for the open loop: the -scenario report (which runs the cluster cells
// through the parallel engine) must match the serial render at every
// -engine-workers count, cold and warm.
func TestScenarioEngineWorkersDeterministic(t *testing.T) {
	serial, _, _ := scenarioTables(1, 0)
	if serial == "" {
		t.Fatal("empty -scenario report")
	}
	if !strings.Contains(serial, "metadata cluster") {
		t.Error("report is missing the cluster table")
	}
	for _, ew := range []int{1, 8} {
		text, r, cfg := scenarioTables(2, ew)
		if text != serial {
			t.Errorf("-engine-workers %d report differs from serial:\n--- serial ---\n%s\n--- ew=%d ---\n%s",
				ew, serial, ew, text)
			continue
		}
		hits0 := r.Stats().Hits
		var warm strings.Builder
		for _, tb := range ScenarioExhibit("mail", 100, 2).Tables(cfg) {
			tb.Fprint(&warm)
		}
		if warm.String() != text {
			t.Errorf("-engine-workers %d differs between cold and warm memo", ew)
		}
		if r.Stats().Hits <= hits0 {
			t.Errorf("-engine-workers %d warm rerun did not hit the memo", ew)
		}
	}
}

// loadCurve runs one scheme's full offered-load sweep and returns the
// measured throughput and p99 latency at each rate.
func loadCurve(r *Runner, scheme fsim.Scheme) (measured, p99 []float64) {
	ops, warm := loadOps(opTestScale)
	for _, rate := range loadRates {
		res := r.Get(Cell{Kind: CellOpenLoop, Opt: openLoopOpt(scheme, "mail", rate, ops, warm)}).OpenLoop
		measured = append(measured, res.MeasuredPerSec)
		p99 = append(p99, res.Lat.P99MS)
	}
	return measured, p99
}

// TestLoadCurveSaturation pins the open-loop shape for every scheme:
// below saturation measured throughput tracks offered load (monotone
// non-decreasing), and past saturation it plateaus instead of collapsing.
func TestLoadCurveSaturation(t *testing.T) {
	r := NewRunner(0)
	for _, v := range fiveSchemes(nil) {
		m, _ := loadCurve(r, v.opt.Scheme)
		peak := 0.0
		for _, x := range m {
			if x > peak {
				peak = x
			}
		}
		if peak <= 0 {
			t.Errorf("%s: no throughput measured", v.name)
			continue
		}
		for i := 0; i+1 < len(m); i++ {
			// Monotone while clearly below saturation; a small tolerance
			// past it (seek patterns shift with queue depth).
			if m[i] < 0.75*peak && m[i+1] < m[i] {
				t.Errorf("%s: measured/s fell %.1f -> %.1f at offered %d -> %d while below saturation (peak %.1f)",
					v.name, m[i], m[i+1], loadRates[i], loadRates[i+1], peak)
			}
		}
		if last := m[len(m)-1]; last < 0.7*peak {
			t.Errorf("%s: throughput collapsed past saturation: peak %.1f/s, final %.1f/s", v.name, peak, last)
		}
	}
}

// divergeRate returns the first offered load whose p99 exceeds the
// threshold (the scheme is past saturation there), or a sentinel above
// every swept rate if the tail never diverges.
func divergeRate(p99 []float64, thresholdMS float64) int {
	for i, x := range p99 {
		if x > thresholdMS {
			return loadRates[i]
		}
	}
	return loadRates[len(loadRates)-1] * 2
}

// TestConventionalSaturatesFirst is the headline acceptance pin: under
// the open-loop mail scenario, Conventional's synchronous metadata writes
// run out of capacity — and its p99 diverges — at a strictly lower
// offered load than both Soft Updates' and Async Durability's.
func TestConventionalSaturatesFirst(t *testing.T) {
	r := NewRunner(0)
	mConv, pConv := loadCurve(r, fsim.Conventional)
	mSoft, pSoft := loadCurve(r, fsim.SoftUpdates)
	mAsync, pAsync := loadCurve(r, fsim.AsyncDurability)

	peak := func(m []float64) float64 {
		best := 0.0
		for _, x := range m {
			if x > best {
				best = x
			}
		}
		return best
	}
	capConv, capSoft, capAsync := peak(mConv), peak(mSoft), peak(mAsync)
	// Strict capacity ordering with real margin, not measurement noise.
	if capSoft < 1.3*capConv {
		t.Errorf("Soft Updates capacity %.1f/s is not well above Conventional's %.1f/s", capSoft, capConv)
	}
	if capAsync < 1.3*capConv {
		t.Errorf("Async Durability capacity %.1f/s is not well above Conventional's %.1f/s", capAsync, capConv)
	}

	const divergeMS = 500
	dConv := divergeRate(pConv, divergeMS)
	dSoft := divergeRate(pSoft, divergeMS)
	dAsync := divergeRate(pAsync, divergeMS)
	if dConv >= dSoft {
		t.Errorf("Conventional p99 diverged at %d/s, not before Soft Updates' %d/s\nconv %v\nsoft %v",
			dConv, dSoft, fmtCurve(pConv), fmtCurve(pSoft))
	}
	if dConv >= dAsync {
		t.Errorf("Conventional p99 diverged at %d/s, not before Async Durability's %d/s\nconv %v\nasync %v",
			dConv, dAsync, fmtCurve(pConv), fmtCurve(pAsync))
	}
}

func fmtCurve(p []float64) string {
	parts := make([]string, len(p))
	for i, x := range p {
		parts[i] = fmt.Sprintf("@%d:%.0fms", loadRates[i], x)
	}
	return strings.Join(parts, " ")
}
