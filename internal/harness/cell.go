package harness

import (
	"fmt"
	"time"

	"metaupdate/fsim"
	"metaupdate/internal/scenario"
	"metaupdate/internal/sim"
	"metaupdate/internal/workload"
)

// CellKind selects the workload a Cell simulates.
type CellKind int

// The four workload shapes the paper's exhibits are built from.
const (
	// CellCopy prepares per-user source trees and runs the N-user copy
	// benchmark; with Remove set, it then runs the N-user remove benchmark
	// on the fresh copies (the paper's paired copy/remove methodology).
	CellCopy CellKind = iota
	// CellFig5 runs one figure 5 throughput point (1 KB metadata
	// operations split across the users).
	CellFig5
	// CellSdet runs Users concurrent Sdet scripts against shared binaries.
	CellSdet
	// CellAndrew runs the five-phase Andrew benchmark (single user).
	CellAndrew
	// CellFaultRecovery runs the metadata churn under a fault plan, pulls
	// the plug at CrashAt, recovers the image, and reports what survived.
	CellFaultRecovery
	// CellOpProfile runs the paired copy/remove benchmark with the
	// operation-span recorder attached and reports per-op latency/stage
	// digests plus per-scheme write-discipline counters for both phases.
	CellOpProfile
	// CellDist runs the sharded metadata service: Dist.Nodes machines
	// (each a full stack built from Opt) behind the inode-range router,
	// under the deterministic client load, with dynamic splitting.
	CellDist
	// CellOpenLoop runs one open-loop scenario point (Opt.OpenLoop names
	// the stream and the offered-load arrival process) on a single machine
	// and reports the scenario driver's result.
	CellOpenLoop
	// CellOpenLoopDist runs the same open-loop point against the sharded
	// metadata service (Dist shapes the cluster; Opt.OpenLoop the load).
	CellOpenLoopDist
)

// Cell is one self-contained deterministic simulation: a complete system
// configuration plus a workload. Exhibits declare cells and assemble their
// tables from the resulting CellResults; the Runner decides execution
// order, parallelism, and reuse. Because every cell builds its own
// fsim.System (engine, disk, driver, cache, file system) and runs in
// virtual time, cells share no mutable state and may execute on any worker
// in any order without changing their results.
type Cell struct {
	Kind CellKind
	Opt  fsim.Options

	// Users is the concurrent-user count (CellCopy, CellFig5, CellSdet).
	Users int
	// Scale shrinks the CellCopy tree spec, as in Config.Scale.
	Scale Scale
	// Remove additionally runs the remove phase after the copy (CellCopy).
	Remove bool

	// Fig5 selects the sub-benchmark and TotalFiles the file budget
	// (CellFig5).
	Fig5       Fig5Kind
	TotalFiles int

	// Commands is the per-script command count (CellSdet).
	Commands int

	// CrashAt is the virtual instant the plug is pulled (CellFaultRecovery).
	CrashAt sim.Duration

	// Dist configures the cluster shape and client load (CellDist).
	Dist DistSpec
}

// CellResult carries every measurement a cell kind can produce; unused
// fields stay zero. Wall is the real (not virtual) execution time of the
// cell, recorded once by the worker that ran it — memoized reuses keep the
// original value.
type CellResult struct {
	Copy       copyStats            // CellCopy
	RemoveRes  copyStats            // CellCopy with Remove
	Throughput float64              // CellFig5: files per virtual second
	SdetWall   sim.Duration         // CellSdet: wall virtual time for all scripts
	Andrew     workload.AndrewTimes // CellAndrew
	FaultRec   FaultRecovery        // CellFaultRecovery
	OpProf     OpProfile            // CellOpProfile
	Dist       DistResult           // CellDist
	OpenLoop   scenario.Result      // CellOpenLoop / CellOpenLoopDist
	Wall       time.Duration        // real execution time of the simulation
}

// Fingerprint returns the cell's canonical identity: two cells with equal
// fingerprints run byte-identical simulations. Every Options field
// participates, so distinct configurations can never collide; the
// DiskParams pointer is dereferenced so equal parameter sets compare equal
// regardless of pointer identity.
func (c Cell) Fingerprint() string {
	o := c.Opt
	dp := "default"
	if o.DiskParams != nil {
		dp = fmt.Sprintf("%+v", *o.DiskParams)
	}
	return fmt.Sprintf(
		"k%d|sch%d|sem%d|nr%t|cb%t|exp%t|ai%t|bf%t|ign%t|db%d|fsb%d|ni%d|cby%d|nv%d|jf%d|aw%d|ag%d|sf%d|costs%+v|dp{%s}|flt{%s}|mr%d|rb%d|sp%d|ob%t|u%d|sc%g|rm%t|f5%d|tf%d|cmd%d|ca%d",
		c.Kind, o.Scheme, o.Sem, o.NR, o.CB, o.Explicit, o.AllocInit,
		o.BarrierFrees, o.IgnoreOrdering, o.DiskBytes, o.FSBytes, o.NInodes,
		o.CacheBytes, o.NVRAMBytes, o.JournalFrags, o.AsyncWindow, o.AsyncInterval,
		o.SyncerFraction, o.Costs, dp,
		o.Faults.String(), o.MaxRetries, o.RetryBackoff, o.SpareSectors,
		o.Observe, c.Users, float64(c.Scale), c.Remove, c.Fig5, c.TotalFiles,
		c.Commands, c.CrashAt) + fmt.Sprintf("|dist{%+v}|ol{%s}", c.Dist, o.OpenLoop)
}

// run executes the cell's simulation from scratch. It is a pure function
// of the cell value: all state lives inside the freshly built system.
func (c Cell) run() CellResult {
	switch c.Kind {
	case CellCopy:
		cp, rm := copyBench(c.Opt, c.Users, c.Scale, c.Remove)
		return CellResult{Copy: cp, RemoveRes: rm}
	case CellFig5:
		return CellResult{Throughput: Fig5Point(c.Opt, c.Fig5, c.Users, c.TotalFiles)}
	case CellSdet:
		return CellResult{SdetWall: sdetBench(c.Opt, c.Users, c.Commands)}
	case CellAndrew:
		return CellResult{Andrew: andrewBench(c.Opt)}
	case CellFaultRecovery:
		return CellResult{FaultRec: faultRecoveryRun(c.Opt, c.CrashAt)}
	case CellOpProfile:
		return CellResult{OpProf: opProfileRun(c.Opt, c.Users, c.Scale)}
	case CellDist:
		return CellResult{Dist: distRun(c.Opt, c.Dist)}
	case CellOpenLoop:
		return CellResult{OpenLoop: openLoopRun(c.Opt)}
	case CellOpenLoopDist:
		return CellResult{OpenLoop: openLoopDistRun(c.Opt, c.Dist)}
	}
	panic(fmt.Sprintf("harness: unknown cell kind %d", c.Kind))
}

// sdetBench runs Users concurrent Sdet scripts (figure 6's unit of work)
// and returns the virtual wall time.
func sdetBench(opt fsim.Options, users, commands int) sim.Duration {
	sdet := workload.DefaultSdet()
	sdet.CommandsPerScript = commands
	sys := mustSystem(opt)
	defer sys.Shutdown()
	var bin fsim.Ino
	sys.Run(func(p *fsim.Proc) {
		var err error
		bin, err = sdet.SetupBinaries(p, sys.FS, fsim.RootIno)
		if err != nil {
			panic(err)
		}
	})
	sys.Cache.DropClean() // scripts start against a cold cache
	_, wall := sys.RunUsers(users, func(p *fsim.Proc, u int) {
		if err := sdet.RunScript(p, sys.FS, fsim.RootIno, bin, u); err != nil {
			panic(err)
		}
	})
	return wall
}

// andrewBench runs the five-phase Andrew benchmark (table 3's unit of work).
func andrewBench(opt fsim.Options) workload.AndrewTimes {
	sys := mustSystem(opt)
	defer sys.Shutdown()
	var times workload.AndrewTimes
	sys.Run(func(p *fsim.Proc) {
		var err error
		times, err = workload.DefaultAndrew().Run(p, sys.FS, fsim.RootIno)
		if err != nil {
			panic(err)
		}
	})
	return times
}
