// Package harness reproduces every table and figure of the paper's
// evaluation (section 5 plus the section 3 comparisons): it builds the
// simulated systems, runs the workloads, and prints the same rows and
// series the paper reports. Absolute numbers come from a simulator, not
// the authors' NCR 3433 testbed — the reproduction targets the shape:
// which scheme wins, by roughly what factor, and where the crossovers are.
package harness

import (
	"fmt"
	"io"
	"strings"

	"metaupdate/internal/dev"

	"metaupdate/fsim"
	"metaupdate/internal/sim"
	"metaupdate/internal/workload"
)

// Table is a printable experiment result. Figures additionally carry an
// ASCII chart rendering of the same data. The data fields serialize for
// mdsim -json; the chart is a text-rendering concern and is omitted.
type Table struct {
	Title   string            `json:"title"`
	Note    string            `json:"note,omitempty"`
	Columns []string          `json:"columns"`
	Rows    [][]string        `json:"rows"`
	Chart   func(w io.Writer) `json:"-"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Chart != nil {
		t.Chart(w)
	}
}

// Scale shrinks the workloads for faster runs: 1.0 is the paper-sized
// experiment, 0.25 a quick check. It scales file counts, not file sizes.
type Scale float64

func (s Scale) files(n int) int {
	v := int(float64(n) * float64(s))
	if v < 1 {
		v = 1
	}
	return v
}

// Config carries harness-wide settings.
type Config struct {
	Scale Scale
	// Users overrides the default user counts where applicable (nil = paper).
	Verbose bool
	Out     io.Writer
	// Runner executes the experiment cells. Nil means each exhibit gets a
	// private GOMAXPROCS-wide runner; share one Runner across exhibits to
	// let common cells simulate once per process (mdsim does).
	Runner *Runner
	// EngineWorkers > 1 runs each distributed cell on that many parallel
	// event-engine workers (fsim.DistOptions.EngineWorkers); output is
	// byte-identical to the serial engine. It participates in the cell
	// fingerprint via DistSpec, so parallel and serial runs memoize
	// separately.
	EngineWorkers int
}

// DefaultConfig runs paper-sized experiments.
func DefaultConfig(w io.Writer) Config { return Config{Scale: 1.0, Out: w} }

// variant names one system configuration under test.
type variant struct {
	name string
	opt  fsim.Options
}

// fiveSchemes returns the paper's five comparison systems (section 5
// configuration: Part-NR/CB for the scheduler schemes; allocation
// initialization controlled per-variant).
func fiveSchemes(allocInit map[fsim.Scheme]bool) []variant {
	var out []variant
	for _, s := range fsim.Schemes {
		opt := fsim.Options{Scheme: s}
		if allocInit != nil {
			opt.Explicit = true
			switch s {
			case fsim.SchedulerFlag:
				opt.Sem, opt.NR, opt.CB = fsim.SemPart, true, true
			case fsim.SchedulerChains:
				opt.CB = true
			}
			opt.AllocInit = allocInit[s]
		}
		out = append(out, variant{s.String(), opt})
	}
	return out
}

func secs(d sim.Duration) string  { return fmt.Sprintf("%.1f", d.Seconds()) }
func secs2(d sim.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
func pct(d, base sim.Duration) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(d)/float64(base))
}

func mean(ds []sim.Duration) sim.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / sim.Duration(len(ds))
}

// mustSystem builds a system or panics (harness-internal).
func mustSystem(opt fsim.Options) *fsim.System {
	sys, err := fsim.New(opt)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return sys
}

// prepTrees builds one source tree per user, syncs, and empties the cache
// so the copy benchmark starts cold (the paper reboots between runs).
func prepTrees(sys *fsim.System, users int, scale Scale) workload.TreeSpec {
	ts := workload.PaperTree()
	ts.Files = scale.files(ts.Files)
	ts.TotalBytes = int64(float64(ts.TotalBytes) * float64(scale))
	if ts.TotalBytes < int64(ts.Files)*256 {
		ts.TotalBytes = int64(ts.Files) * 256
	}
	sys.Run(func(p *fsim.Proc) {
		for u := 0; u < users; u++ {
			spec := ts
			spec.Seed += int64(u) // distinct but deterministic trees
			if _, err := spec.Build(p, sys.FS, fsim.RootIno, fmt.Sprintf("src%d", u)); err != nil {
				panic(err)
			}
		}
		sys.FS.Sync(p)
	})
	sys.Cache.DropClean()
	return ts
}

// copyStats holds one copy/remove benchmark measurement.
type copyStats struct {
	elapsed sim.Duration // mean per-user elapsed
	stats   fsim.Stats
}

// runCopy executes the N-user copy benchmark on a prepared system. The
// elapsed time is the mean per-user time; the disk statistics are
// "system-wide" as in the paper, so the measurement window extends through
// the settle-flush of the delayed writes the benchmark left behind.
func runCopy(sys *fsim.System, users int) copyStats {
	sys.ResetStats()
	each, _ := sys.RunUsers(users, func(p *fsim.Proc, u int) {
		if err := workload.CopyTree(p, sys.FS, fsim.RootIno,
			fmt.Sprintf("src%d", u), fsim.RootIno, fmt.Sprintf("dst%d", u)); err != nil {
			panic(err)
		}
	})
	elapsed := mean(each)
	sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
	return copyStats{elapsed: elapsed, stats: sys.CollectStats()}
}

// runRemove executes the N-user remove benchmark: each user deletes one
// newly copied tree. Statistics include the settle-flush, like runCopy.
func runRemove(sys *fsim.System, users int) copyStats {
	sys.ResetStats()
	each, _ := sys.RunUsers(users, func(p *fsim.Proc, u int) {
		if err := workload.RemoveTree(p, sys.FS, fsim.RootIno, fmt.Sprintf("dst%d", u)); err != nil {
			panic(err)
		}
	})
	elapsed := mean(each)
	sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
	return copyStats{elapsed: elapsed, stats: sys.CollectStats()}
}

// copyBench prepares trees, runs the copy, and (optionally) the remove, on
// a fresh system per call.
func copyBench(opt fsim.Options, users int, scale Scale, alsoRemove bool) (cp, rm copyStats) {
	sys := mustSystem(opt)
	defer sys.Shutdown()
	prepTrees(sys, users, scale)
	cp = runCopy(sys, users)
	if alsoRemove {
		// Settle background work between phases, as consecutive benchmark
		// runs would.
		sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
		rm = runRemove(sys, users)
	}
	return cp, rm
}

// TraceCopy runs the N-user copy benchmark and returns the raw per-request
// trace plus the mean per-user elapsed time (the mdsim -trace mode).
func TraceCopy(opt fsim.Options, users int, scale Scale) ([]dev.Stat, sim.Duration) {
	sys := mustSystem(opt)
	defer sys.Shutdown()
	prepTrees(sys, users, scale)
	cp := runCopy(sys, users)
	return sys.Driver.Trace.Stats, cp.elapsed
}
