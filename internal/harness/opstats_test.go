package harness

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// opTestScale keeps the observability suite's simulations affordable under
// -race while leaving every scheme enough metadata churn to exercise
// rollbacks, ordering stalls, and the syncer.
const opTestScale Scale = 0.05

// checkSpanPartition asserts the obs.Span invariant on every recorded
// span: the stage segments are non-negative and sum to the end-to-end
// latency exactly — no gaps, no overlaps, in virtual nanoseconds.
func checkSpanPartition(t *testing.T, phase string, spans []obs.SpanRecord) {
	t.Helper()
	if len(spans) == 0 {
		t.Errorf("%s: no spans recorded", phase)
		return
	}
	bad := 0
	for i := range spans {
		s := &spans[i]
		if s.End < s.Start {
			t.Errorf("%s: span %d (%v) ends before it starts: [%d, %d)", phase, i, s.Op, s.Start, s.End)
			bad++
		}
		var sum sim.Duration
		for st, v := range s.Seg {
			if v < 0 {
				t.Errorf("%s: span %d (%v) has negative %v segment %d", phase, i, s.Op, obs.Stage(st), v)
				bad++
			}
			sum += v
		}
		if total := s.End - s.Start; sum != total {
			t.Errorf("%s: span %d (%v): sum(Seg) = %d, End-Start = %d (gap/overlap of %d ns)",
				phase, i, s.Op, sum, total, total-sum)
			bad++
		}
		if bad > 5 {
			t.Fatalf("%s: too many partition violations, stopping", phase)
		}
	}
}

// TestSpanPartitionProperty is the property test behind the stage
// taxonomy: for every scheme, on the 4-user copy and remove workloads,
// each operation span's stage segments partition its latency exactly.
func TestSpanPartitionProperty(t *testing.T) {
	const users = 4
	for _, v := range fiveSchemes(nil) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			opt := v.opt
			opt.Observe = true
			sys := mustSystem(opt)
			defer sys.Shutdown()
			prepTrees(sys, users, opTestScale)

			sys.Obs.Reset()
			runCopy(sys, users)
			checkSpanPartition(t, "copy", sys.Obs.Spans())

			sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
			sys.Obs.Reset()
			runRemove(sys, users)
			checkSpanPartition(t, "remove", sys.Obs.Spans())
		})
	}
}

// sharedOpProfiles runs the five CellOpProfile cells once per test binary
// (on a shared runner, like mdsim -opstats) and hands the results to every
// invariant test.
var (
	opProfOnce sync.Once
	opProfs    map[fsim.Scheme]OpProfile
)

func sharedOpProfiles() map[fsim.Scheme]OpProfile {
	opProfOnce.Do(func() {
		r := NewRunner(0)
		vs := fiveSchemes(nil)
		cells := make([]Cell, len(vs))
		for i, v := range vs {
			opt := v.opt
			opt.Observe = true
			cells[i] = Cell{Kind: CellOpProfile, Opt: opt, Users: 4, Scale: opTestScale}
		}
		res := r.All(cells)
		opProfs = make(map[fsim.Scheme]OpProfile, len(vs))
		for i, v := range vs {
			opProfs[v.opt.Scheme] = res[i].OpProf
		}
	})
	return opProfs
}

// TestCrossSchemeCounterInvariants pins the write-discipline relationships
// the paper's schemes are defined by.
func TestCrossSchemeCounterInvariants(t *testing.T) {
	profs := sharedOpProfiles()
	conv := profs[fsim.Conventional]

	// Conventional turns every ordered metadata update into a synchronous
	// write, so it must issue at least as many as any other scheme — in
	// both phases — and strictly more than zero.
	for ph, phase := range map[string]func(OpProfile) SchemeCounters{
		"copy":   func(p OpProfile) SchemeCounters { return p.Copy.Counters },
		"remove": func(p OpProfile) SchemeCounters { return p.Remove.Counters },
	} {
		if phase(conv).SyncWrites == 0 {
			t.Errorf("%s: Conventional issued no sync writes", ph)
		}
		for s, p := range profs {
			if s == fsim.Conventional {
				continue
			}
			// Journaling is exempt from the ceiling: when the wrapping log
			// fills faster than the syncer retires home buffers, reclaiming
			// space forces synchronous checkpoint writebacks (classic
			// journaling log-pressure), which are Bwrites on top of the
			// delayed-write pattern and can outnumber Conventional's.
			if got, conv := phase(p).SyncWrites, phase(conv).SyncWrites; got > conv && s != fsim.Journaling {
				t.Errorf("%s: %v issued %d sync writes > Conventional's %d", ph, s, got, conv)
			}
			// The delayed-write schemes must actually delay something.
			if phase(p).DelayedWrites == 0 {
				t.Errorf("%s: %v recorded no delayed writes", ph, s)
			}
		}
	}

	// Ordering stalls count requests blocked on flag/chain sequencing
	// edges; schemes running the driver in ignore mode (No Order,
	// Conventional, Soft Updates) must report exactly zero.
	for _, s := range []fsim.Scheme{fsim.NoOrder, fsim.Conventional, fsim.SoftUpdates} {
		p := profs[s]
		if p.Copy.Counters.OrderingStalls != 0 || p.Remove.Counters.OrderingStalls != 0 {
			t.Errorf("%v: ordering stalls = %d/%d (copy/remove), want 0/0",
				s, p.Copy.Counters.OrderingStalls, p.Remove.Counters.OrderingStalls)
		}
	}

	// Only Soft Updates has rollback machinery.
	for s, p := range profs {
		if s == fsim.SoftUpdates {
			continue
		}
		if p.Copy.Counters.Rollbacks != 0 || p.Remove.Counters.Workitems != 0 {
			t.Errorf("%v reports soft-updates counters: %+v / %+v", s, p.Copy.Counters, p.Remove.Counters)
		}
	}

	// Soft Updates under the paired copy/remove benchmark: the copy phase
	// must roll back unsafe dependencies when the syncer writes shared
	// metadata blocks, and the remove phase must run its deferred work
	// through workitems. (Rollbacks are add-side undos — an unsafe
	// directory add or allocation pointer reverted in the write image — so
	// a remove phase that starts from a settled image produces workitems
	// and cancelled adds, not rollbacks; see TestSoftUpdatesRollbackAccounting.)
	su := profs[fsim.SoftUpdates]
	if su.Copy.Counters.Rollbacks == 0 {
		t.Error("Soft Updates copy phase recorded no rollbacks")
	}
	if su.Copy.Counters.Rollbacks+su.Remove.Counters.Rollbacks == 0 {
		t.Error("Soft Updates paired copy/remove run recorded no rollbacks")
	}
	if su.Remove.Counters.Workitems == 0 {
		t.Error("Soft Updates remove phase recorded no workitems")
	}
}

// TestSoftUpdatesRollbackAccounting checks the profile's rollback counters
// against an independent snapshot diff of core.Stats taken around a
// replica of the same deterministic benchmark — the reported numbers must
// be exactly the scheme's own accounting, not a recomputation.
func TestSoftUpdatesRollbackAccounting(t *testing.T) {
	su := sharedOpProfiles()[fsim.SoftUpdates]

	sys := mustSystem(fsim.Options{Scheme: fsim.SoftUpdates, Observe: true})
	defer sys.Shutdown()
	prepTrees(sys, 4, opTestScale)

	before := sys.Soft.Stat
	runCopy(sys, 4)
	copyDiff := SchemeCounters{
		Rollbacks:     sys.Soft.Stat.Rollbacks - before.Rollbacks,
		CancelledAdds: sys.Soft.Stat.CancelledAdds - before.CancelledAdds,
		Workitems:     sys.Soft.Stat.Workitems - before.Workitems,
	}
	if copyDiff.Rollbacks == 0 {
		t.Error("independent copy run observed no rollbacks")
	}
	if got, want := su.Copy.Counters.Rollbacks, copyDiff.Rollbacks; got != want {
		t.Errorf("profile copy rollbacks = %d, core.Stats diff = %d", got, want)
	}
	if got, want := su.Copy.Counters.CancelledAdds, copyDiff.CancelledAdds; got != want {
		t.Errorf("profile copy cancelled adds = %d, core.Stats diff = %d", got, want)
	}
	if got, want := su.Copy.Counters.Workitems, copyDiff.Workitems; got != want {
		t.Errorf("profile copy workitems = %d, core.Stats diff = %d", got, want)
	}

	sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
	before = sys.Soft.Stat
	runRemove(sys, 4)
	remDiff := SchemeCounters{
		Rollbacks:     sys.Soft.Stat.Rollbacks - before.Rollbacks,
		CancelledAdds: sys.Soft.Stat.CancelledAdds - before.CancelledAdds,
		Workitems:     sys.Soft.Stat.Workitems - before.Workitems,
	}
	if got, want := su.Remove.Counters.Rollbacks, remDiff.Rollbacks; got != want {
		t.Errorf("profile remove rollbacks = %d, core.Stats diff = %d", got, want)
	}
	if got, want := su.Remove.Counters.Workitems, remDiff.Workitems; got != want {
		t.Errorf("profile remove workitems = %d, core.Stats diff = %d", got, want)
	}
	if remDiff.Workitems == 0 {
		t.Error("independent remove run observed no workitems")
	}
}

// opStatsText renders the full mdsim -opstats report through a runner with
// the given worker count, exactly as cmd/mdsim does.
func opStatsText(workers int, scale Scale) (string, *Runner, Config) {
	r := NewRunner(workers)
	cfg := DefaultConfig(io.Discard)
	cfg.Scale = scale
	cfg.Runner = r
	var sb strings.Builder
	for _, tb := range OpStatsExhibit.Tables(cfg) {
		tb.Fprint(&sb)
	}
	return sb.String(), r, cfg
}

// TestOpStatsDeterministic asserts the -opstats report is byte-identical
// for a serial and a parallel runner, and for a cold versus warm memo.
func TestOpStatsDeterministic(t *testing.T) {
	const scale = 0.02 // shapes don't matter here, only byte equality
	serial, _, _ := opStatsText(1, scale)
	parallel, r4, cfg := opStatsText(4, scale)
	if serial == "" {
		t.Fatal("empty -opstats report")
	}
	if !strings.Contains(serial, "Write-discipline counters") {
		t.Error("report is missing the counters table")
	}
	if serial != parallel {
		t.Errorf("-opstats differs between -j1 and -j4:\n--- j1 ---\n%s\n--- j4 ---\n%s", serial, parallel)
	}

	hits0 := r4.Stats().Hits
	var warm strings.Builder
	for _, tb := range OpStatsExhibit.Tables(cfg) {
		tb.Fprint(&warm)
	}
	if warm.String() != parallel {
		t.Error("-opstats differs between cold and warm memo on the same runner")
	}
	if r4.Stats().Hits <= hits0 {
		t.Error("warm rerun did not hit the memo")
	}
}

// TestOpTraceDeterministic asserts two fresh -optrace runs of the same
// configuration produce byte-identical Chrome traces.
func TestOpTraceDeterministic(t *testing.T) {
	run := func(buf *bytes.Buffer) int {
		n, elapsed, err := OpTraceCopy(fsim.Options{Scheme: fsim.SoftUpdates}, 4, 0.02, buf)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed <= 0 {
			t.Errorf("non-positive elapsed time %v", elapsed)
		}
		return n
	}
	var a, b bytes.Buffer
	na := run(&a)
	nb := run(&b)
	if na == 0 {
		t.Fatal("trace recorded no spans")
	}
	if na != nb {
		t.Errorf("span counts differ: %d vs %d", na, nb)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical runs produced different Chrome traces")
	}
}
