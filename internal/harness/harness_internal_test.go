package harness

import (
	"testing"

	"metaupdate/internal/sim"
)

// mean must tolerate an empty sample set: RunUsers with zero users (or a
// future workload that records no per-user times) hands it an empty slice,
// and a divide-by-zero panic here would take down a whole exhibit.
func TestMeanEmptySlice(t *testing.T) {
	if got := mean(nil); got != 0 {
		t.Fatalf("mean(nil) = %v, want 0", got)
	}
	if got := mean([]sim.Duration{}); got != 0 {
		t.Fatalf("mean(empty) = %v, want 0", got)
	}
	if got := mean([]sim.Duration{2 * sim.Second, 4 * sim.Second}); got != 3*sim.Second {
		t.Fatalf("mean(2s,4s) = %v, want 3s", got)
	}
}

// Fingerprints must separate every cell parameter that changes simulation
// results; a collision would silently serve one configuration's numbers as
// another's.
func TestFingerprintsDistinct(t *testing.T) {
	cells := []Cell{
		{Kind: CellCopy, Users: 4, Scale: 0.1},
		{Kind: CellCopy, Users: 4, Scale: 0.1, Remove: true},
		{Kind: CellCopy, Users: 1, Scale: 0.1},
		{Kind: CellCopy, Users: 4, Scale: 0.2},
		{Kind: CellFig5, Users: 4, TotalFiles: 100},
		{Kind: CellFig5, Users: 4, TotalFiles: 100, Fig5: Fig5Removes},
		{Kind: CellSdet, Users: 4, Commands: 10},
		{Kind: CellAndrew},
	}
	seen := make(map[string]int)
	for i, c := range cells {
		fp := c.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Fatalf("cells %d and %d share fingerprint %q", i, j, fp)
		}
		seen[fp] = i
	}
	a := Cell{Kind: CellCopy, Users: 4, Scale: 0.1}
	if a.Fingerprint() != (Cell{Kind: CellCopy, Users: 4, Scale: 0.1}).Fingerprint() {
		t.Fatal("equal cells produced different fingerprints")
	}
}
