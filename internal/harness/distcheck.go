package harness

import (
	"fmt"
	"io"
	"strings"

	"metaupdate/fsim"
	"metaupdate/internal/crashmc"
	"metaupdate/internal/dmeta"
	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
)

// DistCrashCheckOptions parameterizes one cluster-wide model-checked run.
type DistCrashCheckOptions struct {
	// Scheme is the per-node ordering scheme. The zero value is
	// fsim.NoOrder (it is the iota base), so no default is applied —
	// callers say what they mean.
	Scheme fsim.Scheme
	// Nodes is the shard count (default 4).
	Nodes int
	// Clients / Ops shape the dmeta load (defaults: Nodes clients, 40 ops
	// each) — the mix includes cross-partition renames and links, so the
	// two-phase prepare/commit path is always exercised.
	Clients, Ops int
	// Churn is the paper's create/remove workload at cluster level: after
	// the mixed load, Churn files are created under one directory, synced,
	// then removed — so the final flush carries remove-ordering traffic on
	// every shard (that is where unordered schemes violate). Default 24.
	Churn int
	// Seed keys the cluster's decision streams and the workload.
	Seed int64
	// MC bounds each node's exploration; zero values take crashmc
	// defaults. The per-node budget is MC.Budget (not divided), so a
	// 4-node run checks up to 4x MC.Budget states.
	MC crashmc.Config
	// EngineWorkers selects the parallel PDES engine (> 1) or the
	// serial one (0/1); the crash cut and every explored image are
	// byte-identical either way.
	EngineWorkers int
}

func (o *DistCrashCheckOptions) setDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Clients <= 0 {
		o.Clients = o.Nodes
	}
	if o.Ops <= 0 {
		o.Ops = 40
	}
	if o.Churn <= 0 {
		o.Churn = 24
	}
}

// DistNodeCheck is one node's exploration outcome.
type DistNodeCheck struct {
	Node   int
	Result *crashmc.Result
}

// DistCrashCheckResult is the union outcome of checking every node of a
// crashed cluster: the per-node crash-state explorations (each against
// fsck plus the naming-discipline oracle) and the cross-node reference
// scan over the actual crash-cut images.
type DistCrashCheckResult struct {
	Load  dmeta.LoadResult
	Nodes []DistNodeCheck

	// Union counters over all nodes' explorations.
	Checked, Violating int64
	CheckedPerSec      float64

	// Cross-node union scan of the crash-cut images. A dentry file on any
	// node names a logical inode; BackedInodes counts the logical inodes
	// with a backing file, DentryRefs the dentry references found.
	// CrossDangling (a reference whose target is backed nowhere) and
	// CrossDoubleOwned (an inode backed on two nodes — a migration caught
	// between copy and delete) are informational, not violations: they
	// describe one legal crash cut, and recovery reconciles them from the
	// surviving local images.
	BackedInodes, DentryRefs        int
	CrossDangling, CrossDoubleOwned int
}

// Clean reports whether no node's exploration found a violating image.
func (r *DistCrashCheckResult) Clean() bool { return r.Violating == 0 }

// DistCrashCheck builds a sharded metadata cluster, drives the mixed
// dmeta load against it, power-fails every node at once, and
// bounded-exhaustively explores each node's crash-state space — fsck's
// structural rules plus a naming-discipline oracle over dmeta's backing
// layout (/i/x<hex> inode files, /d/p<hex>/<name>=<hex> dentry files).
// The per-node explorations reuse the recorded write timelines, so the
// incremental checker's Baseline/delta machinery does the heavy lifting
// exactly as in the single-machine sweep.
func DistCrashCheck(opt DistCrashCheckOptions) (*DistCrashCheckResult, error) {
	opt.setDefaults()
	sys, err := fsim.NewDist(fsim.DistOptions{
		Base: fsim.Options{
			Scheme:     opt.Scheme,
			DiskBytes:  6 << 20,
			NInodes:    1024,
			CacheBytes: 2 << 20,
		},
		Nodes:         opt.Nodes,
		Seed:          opt.Seed,
		EngineWorkers: opt.EngineWorkers,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Shutdown()

	recs := make([]*crashmc.Recorder, opt.Nodes)
	for id := 1; id <= opt.Nodes; id++ {
		st := sys.Cluster.Node(id).St
		recs[id-1] = crashmc.Attach(st.Driver, st.Disk)
	}

	res := &DistCrashCheckResult{}
	res.Load = sys.Cluster.Load(dmeta.LoadSpec{Clients: opt.Clients, Ops: opt.Ops, Seed: opt.Seed})

	// The churn phase replays the paper's create/remove workload through
	// the router: a sync between the phases makes the creates durable, so
	// the removes' flush is pure remove-ordering traffic — dentry removal
	// vs. inode-free reorderings, spread over the shards by allocation.
	var werr error
	var churnDir uint64
	sys.Run(func(p *fsim.Proc) {
		if churnDir, werr = sys.Cluster.Mkdir(p, dmeta.RootIno, "mc"); werr != nil {
			return
		}
		for i := 0; i < opt.Churn; i++ {
			if _, err := sys.Cluster.Create(p, churnDir, fmt.Sprintf("m%d", i)); err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return nil, werr
	}
	sys.SyncAll()
	sys.Run(func(p *fsim.Proc) {
		for i := 0; i < opt.Churn; i++ {
			if err := sys.Cluster.Unlink(p, churnDir, fmt.Sprintf("m%d", i)); err != nil {
				werr = err
				return
			}
		}
	})
	if werr != nil {
		return nil, werr
	}
	// Flush the delayed writes into the recorded timelines (the sweep still
	// explores every pre-flush crash instant) and take the quiescent cut.
	// The cut lands one network delay after LP 0's clock: under the
	// parallel engine other LPs may sit up to one sync window (< one
	// network delay) ahead, so this is the earliest cut that is provably
	// identical at every worker count — and the cluster is quiescent, so
	// nothing moves in the gap.
	sys.SyncAll()
	imgs := sys.Crash(sys.Eng.Now() + sys.Net.MinDelay())

	var elapsed float64
	for i, rec := range recs {
		cfg := opt.MC
		cfg.ExtraCheck = chainChecks(distShapeCheck, cfg.ExtraCheck)
		if opt.Scheme == fsim.Journaling {
			cfg.Recover = func(img []byte) { fsck.ReplayJournal(img) }
		}
		nr := rec.Explore(cfg)
		res.Nodes = append(res.Nodes, DistNodeCheck{Node: i + 1, Result: nr})
		res.Checked += nr.Stats.Checked
		res.Violating += nr.Stats.Violating
		elapsed += nr.Stats.ElapsedSec
	}
	if elapsed > 0 {
		res.CheckedPerSec = float64(res.Checked) / elapsed
	}
	crossScan(imgs, res)
	return res, nil
}

// chainChecks composes two ExtraCheck oracles (b may be nil).
func chainChecks(a, b func(fsck.Image) []string) func(fsck.Image) []string {
	if b == nil {
		return a
	}
	return func(img fsck.Image) []string {
		return append(a(img), b(img)...)
	}
}

// distShapeCheck verifies a node image against dmeta's local naming
// discipline. Every local file is created by the node with a name drawn
// from a fixed grammar, names never cross sector boundaries, and writes
// are sector-atomic — so on ANY legal crash image every live entry still
// matches the grammar. Entries may be missing (not yet durable) or stale
// (durably removed later); the oracle never demands presence, only shape,
// which is what keeps it sound across all orderings a scheme permits.
func distShapeCheck(img fsck.Image) []string {
	var bad []string
	class := make(map[ffs.Ino]byte)
	fsck.WalkTree(img, func(e fsck.WalkEntry) bool {
		pc := byte('r')
		if e.Depth > 0 {
			pc = class[e.Parent]
		}
		switch pc {
		case 'r':
			switch {
			case e.Name == "i" && e.Ftype == ffs.FtypeDir:
				class[e.Ino] = 'i'
			case e.Name == "d" && e.Ftype == ffs.FtypeDir:
				class[e.Ino] = 'd'
			default:
				bad = append(bad, fmt.Sprintf("dist: unexpected root entry %q (ftype %d)", e.Name, e.Ftype))
			}
		case 'i':
			if e.Ftype != ffs.FtypeFile || !validInoFileName(e.Name) {
				bad = append(bad, fmt.Sprintf("dist: malformed inode-file entry %q (ftype %d)", e.Name, e.Ftype))
			}
		case 'd':
			if e.Ftype != ffs.FtypeDir || !validParentDirName(e.Name) {
				bad = append(bad, fmt.Sprintf("dist: malformed parent-dir entry %q (ftype %d)", e.Name, e.Ftype))
			} else {
				class[e.Ino] = 'p'
			}
		case 'p':
			if e.Ftype != ffs.FtypeFile || !parseDentName(e.Name) {
				bad = append(bad, fmt.Sprintf("dist: malformed dentry entry %q (ftype %d)", e.Name, e.Ftype))
			}
		default:
			bad = append(bad, fmt.Sprintf("dist: entry %q below an unclassified directory", e.Name))
		}
		return true
	})
	return bad
}

// isHex reports whether s is a nonempty lowercase base-16 number
// (strconv.FormatUint's output alphabet).
func isHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isDec(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// validInoFileName accepts x<hex> (an inode's backing file) and
// x<hex>.l<n> (an extra-link marker, n >= 2).
func validInoFileName(name string) bool {
	if !strings.HasPrefix(name, "x") {
		return false
	}
	rest := name[1:]
	if i := strings.Index(rest, ".l"); i >= 0 {
		n := rest[i+2:]
		return isHex(rest[:i]) && isDec(n) && n != "0" && n != "1"
	}
	return isHex(rest)
}

func validParentDirName(name string) bool {
	return strings.HasPrefix(name, "p") && isHex(name[1:])
}

// parseDentName accepts <name>=<hex>; the logical name part never
// contains '=' (dmeta's routers only pass workload names through).
func parseDentName(name string) bool {
	i := strings.LastIndexByte(name, '=')
	return i > 0 && isHex(name[i+1:]) && !strings.Contains(name[:i], "=")
}

// crossScan walks the actual crash-cut images as a union namespace:
// which logical inodes have backing files, and which dentries reference
// them. The counters feed the informational columns of the result — one
// crash cut of a cluster mid-two-phase-update legitimately shows
// cross-node imbalance, so these are observations, not verdicts.
func crossScan(imgs [][]byte, res *DistCrashCheckResult) {
	backed := make(map[uint64]int)
	var refs []uint64
	for _, img := range imgs {
		class := make(map[ffs.Ino]byte)
		fsck.WalkTree(fsck.Bytes(img), func(e fsck.WalkEntry) bool {
			pc := byte('r')
			if e.Depth > 0 {
				pc = class[e.Parent]
			}
			switch pc {
			case 'r':
				if e.Ftype == ffs.FtypeDir && (e.Name == "i" || e.Name == "d") {
					class[e.Ino] = e.Name[0]
				}
			case 'i':
				// Only the plain x<hex> file (not .l<n> links) backs the id.
				if rest, ok := strings.CutPrefix(e.Name, "x"); ok && isHex(rest) {
					if id, ok := parseHex(rest); ok {
						backed[id]++
					}
				}
			case 'd':
				if validParentDirName(e.Name) {
					class[e.Ino] = 'p'
				}
			case 'p':
				if i := strings.LastIndexByte(e.Name, '='); i > 0 {
					if id, ok := parseHex(e.Name[i+1:]); ok {
						refs = append(refs, id)
					}
				}
			}
			return true
		})
	}
	res.BackedInodes = len(backed)
	res.DentryRefs = len(refs)
	for _, id := range refs {
		if backed[id] == 0 {
			res.CrossDangling++
		}
	}
	for _, n := range backed {
		if n > 1 {
			res.CrossDoubleOwned++
		}
	}
}

func parseHex(s string) (uint64, bool) {
	if !isHex(s) || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' {
			v = v<<4 | uint64(c-'a'+10)
		} else {
			v = v<<4 | uint64(c-'0')
		}
	}
	return v, true
}

// Fprint renders the result as a table on w (nil w: no output).
func (r *DistCrashCheckResult) Fprint(w io.Writer) {
	if w == nil {
		return
	}
	t := &Table{
		Title:   "Cluster crash-state model check (per-node exploration + union scan)",
		Columns: []string{"node", "writes", "instants", "explored", "checked", "violating", "chk/s"},
	}
	for _, n := range r.Nodes {
		st := n.Result.Stats
		t.AddRow(fmt.Sprintf("%d", n.Node),
			fmt.Sprintf("%d", st.Writes),
			fmt.Sprintf("%d", st.Instants),
			fmt.Sprintf("%d", st.Explored),
			fmt.Sprintf("%d", st.Checked),
			fmt.Sprintf("%d", st.Violating),
			fmt.Sprintf("%.0f", st.CheckedPerSec))
	}
	t.AddRow("union", "-", "-", "-",
		fmt.Sprintf("%d", r.Checked),
		fmt.Sprintf("%d", r.Violating),
		fmt.Sprintf("%.0f", r.CheckedPerSec))
	t.Fprint(w)
	fmt.Fprintf(w, "union scan: %d backed inodes, %d dentry refs, %d dangling, %d double-owned\n",
		r.BackedInodes, r.DentryRefs, r.CrossDangling, r.CrossDoubleOwned)
}
