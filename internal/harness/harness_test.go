package harness_test

import (
	"strings"
	"testing"

	"metaupdate/internal/harness"
)

// Every experiment must run end to end at tiny scale and produce a table
// with the expected structure. This keeps the mdsim command paths covered
// by `go test` without paper-sized runtimes.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	cfg := harness.Config{Scale: 0.02}
	for _, name := range harness.ExperimentNames {
		name := name
		t.Run(name, func(t *testing.T) {
			tables := harness.Experiments[name](cfg)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Columns) < 2 || len(tb.Rows) == 0 {
					t.Fatalf("malformed table %+v", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("%s: row width %d != %d columns", tb.Title, len(row), len(tb.Columns))
					}
				}
				var sb strings.Builder
				tb.Fprint(&sb)
				if !strings.Contains(sb.String(), tb.Columns[0]) {
					t.Fatal("Fprint lost the header")
				}
			}
		})
	}
}

func TestExperimentNamesAllRegistered(t *testing.T) {
	for _, name := range harness.ExperimentNames {
		if harness.Experiments[name] == nil {
			t.Fatalf("experiment %q not registered", name)
		}
	}
	if len(harness.Experiments) != len(harness.ExperimentNames) {
		t.Fatalf("registry (%d) and name list (%d) out of sync",
			len(harness.Experiments), len(harness.ExperimentNames))
	}
}
