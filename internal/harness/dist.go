package harness

import (
	"fmt"

	"metaupdate/fsim"
	"metaupdate/internal/dmeta"
	"metaupdate/internal/sim"
	"metaupdate/internal/trace"
)

// DistSpec is the cluster shape and client load of one CellDist cell.
// Every field participates in the cell fingerprint, so distinct cluster
// configurations memoize separately.
type DistSpec struct {
	// Nodes is the initial shard count; growth by dynamic splitting is
	// capped at Nodes+2 when a split trigger is set (fsim default).
	Nodes int
	// Clients and Ops shape the deterministic metadata load.
	Clients, Ops int
	// SplitEntries / SplitQueue are the dynamic-split triggers (0 = off).
	SplitEntries, SplitQueue int
	// Seed keys every decision stream (routing, split points, workload).
	Seed int64
	// EngineWorkers selects the parallel PDES engine (> 1) or the serial
	// one (0/1). Results are byte-identical either way; the field is in
	// the fingerprint so benchmark sweeps memoize the modes separately.
	EngineWorkers int
}

// DistResult is what one CellDist run measures: cluster growth, load
// throughput, cross-partition two-phase traffic, and the operation
// latency distributions as seen by the clients (network time included).
type DistResult struct {
	FinalNodes int
	Wall       sim.Duration
	Ops, Errs  int64
	CrossOps   int64 // two-phase (cross-partition) rename/link/unlink ops
	Forwards   int64 // requests routed by a stale partition map
	Splits     int64
	Migrated   int64 // entries moved during splits
	Lat        trace.Dist
	CrossLat   trace.Dist
	NetMsgs    int64
	NetBytes   int64
}

// distRun executes one cluster simulation from scratch (pure function of
// the options + spec, like every cell kind).
func distRun(opt fsim.Options, spec DistSpec) DistResult {
	s, err := fsim.NewDist(fsim.DistOptions{
		Base:          opt,
		Nodes:         spec.Nodes,
		Seed:          spec.Seed,
		SplitEntries:  spec.SplitEntries,
		SplitQueue:    spec.SplitQueue,
		EngineWorkers: spec.EngineWorkers,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: dist: %v", err))
	}
	res := s.Cluster.Load(dmeta.LoadSpec{Clients: spec.Clients, Ops: spec.Ops, Seed: spec.Seed})
	s.SyncAll()
	// Shut down before reading the per-node/per-endpoint counters
	// (forwards, network traffic): they live on their host LPs and are
	// only coherent once the exec has drained.
	s.Shutdown()
	c := s.Cluster
	tot := s.Net.Totals()
	return DistResult{
		FinalNodes: c.ActiveNodes(),
		Wall:       res.Wall,
		Ops:        res.Ops,
		Errs:       res.Errs,
		CrossOps:   c.CrossOps,
		Forwards:   c.Forwards(),
		Splits:     c.Splits,
		Migrated:   c.Migrated,
		Lat:        c.OpLat.Dist(),
		CrossLat:   c.CrossLat.Dist(),
		NetMsgs:    tot.Sent,
		NetBytes:   tot.Bytes,
	}
}

// DistExhibit is the sharded-metadata-service report behind mdsim -dist:
// each ordering scheme runs the same deterministic client load against
// 1-, 4-, and 16-node clusters, with entry-count splitting armed. Like
// -faults and -opstats it is deliberately NOT part of Exhibits /
// ExperimentNames — the golden transcript pins `-exp all` output, and the
// distributed service is an extension beyond the paper's exhibits.
var DistExhibit = &Exhibit{Name: "dist", Build: buildDist}

// distNodeCounts is the cluster-size sweep of the -dist report.
var distNodeCounts = []int{1, 4, 16}

func buildDist(cfg Config, get func(Cell) CellResult) []Table {
	const clients = 8
	ops := cfg.Scale.files(120)
	// The split threshold scales with the load so the 1-node run outgrows
	// its single partition at any scale (the floor keeps tiny test scales
	// from splitting on the first handful of creates).
	splitEntries := cfg.Scale.files(400)
	if splitEntries < 32 {
		splitEntries = 32
	}
	var tables []Table
	for _, nodes := range distNodeCounts {
		t := Table{
			Title: fmt.Sprintf("Sharded metadata service — %d initial node(s), %d clients x %d ops",
				nodes, clients, ops),
			Note: fmt.Sprintf("dynamic split at %d entries/node; latencies are client-observed (network included)", splitEntries),
			Columns: []string{"scheme", "final nodes", "splits", "migrated", "wall s", "ops/s",
				"cross ops", "forwards", "p50 ms", "p99 ms", "cross p50 ms", "cross p99 ms",
				"net msgs", "net MB"},
		}
		for _, v := range fiveSchemes(nil) {
			d := get(Cell{Kind: CellDist, Opt: v.opt, Dist: DistSpec{
				Nodes:         nodes,
				Clients:       clients,
				Ops:           ops,
				SplitEntries:  splitEntries,
				Seed:          42,
				EngineWorkers: cfg.EngineWorkers,
			}}).Dist
			opsPerSec := "-"
			if d.Wall > 0 {
				opsPerSec = fmt.Sprintf("%.0f", float64(d.Ops)/d.Wall.Seconds())
			}
			t.AddRow(v.name,
				fmt.Sprintf("%d", d.FinalNodes),
				fmt.Sprintf("%d", d.Splits),
				fmt.Sprintf("%d", d.Migrated),
				secs2(d.Wall),
				opsPerSec,
				fmt.Sprintf("%d", d.CrossOps),
				fmt.Sprintf("%d", d.Forwards),
				fmt.Sprintf("%.2f", d.Lat.P50MS),
				fmt.Sprintf("%.2f", d.Lat.P99MS),
				fmt.Sprintf("%.2f", d.CrossLat.P50MS),
				fmt.Sprintf("%.2f", d.CrossLat.P99MS),
				fmt.Sprintf("%d", d.NetMsgs),
				fmt.Sprintf("%.2f", float64(d.NetBytes)/(1<<20)))
		}
		tables = append(tables, t)
	}
	return tables
}
