package harness

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Runner executes Cells on a bounded worker pool and memoizes their
// results by fingerprint, so a cell shared between exhibits (or requested
// twice by one exhibit) simulates exactly once per Runner.
//
// Determinism argument: a cell's result is a pure function of its value —
// each run builds a private fsim.System and executes entirely in virtual
// time, and the packages underneath keep no mutable package-level state
// (sim proc IDs are per-engine; workload randomness is seeded per spec).
// The runner therefore changes only *when* and *on which goroutine* a cell
// runs, never what it computes, and callers assemble tables from results
// in declaration order. Emitted tables are byte-identical at any worker
// count and whether the memo was cold or warm; only the real-time Wall
// fields and the runner's timing counters vary between runs.
type Runner struct {
	workers int
	sem     chan struct{}

	mu   sync.Mutex
	memo map[string]*cellEntry

	hits   int // Get calls served from the memo (including in-flight joins)
	misses int // Get calls that executed the simulation
}

type cellEntry struct {
	done chan struct{} // closed once res is final
	res  CellResult
}

// NewRunner returns a runner executing at most workers cells at once;
// workers <= 0 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		memo:    make(map[string]*cellEntry),
	}
}

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// Get returns the cell's result, running the simulation if this
// fingerprint has not been seen before and blocking until it is available.
// Concurrent Gets of the same cell coalesce onto one execution.
func (r *Runner) Get(c Cell) CellResult { return r.get(c, true) }

// lookup is Get without touching the hit counter: exhibits assembling
// tables from an already-warmed memo use it so Hits counts only genuine
// reuse (the same cell declared by several exhibits or rows), not the
// assembly pass re-reading its own prefetch.
func (r *Runner) lookup(c Cell) CellResult { return r.get(c, false) }

func (r *Runner) get(c Cell, countHit bool) CellResult {
	fp := c.Fingerprint()
	r.mu.Lock()
	if e, ok := r.memo[fp]; ok {
		if countHit {
			r.hits++
		}
		r.mu.Unlock()
		<-e.done
		return e.res
	}
	e := &cellEntry{done: make(chan struct{})}
	r.memo[fp] = e
	r.misses++
	r.mu.Unlock()

	r.sem <- struct{}{} // pool slot; waiters on e.done hold none
	start := time.Now()
	res := c.run()
	res.Wall = time.Since(start)
	<-r.sem

	e.res = res
	close(e.done)
	return res
}

// All resolves every cell concurrently (subject to the pool bound) and
// returns the results in input order.
func (r *Runner) All(cells []Cell) []CellResult {
	out := make([]CellResult, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c Cell) {
			defer wg.Done()
			out[i] = r.Get(c)
		}(i, c)
	}
	wg.Wait()
	return out
}

// RunnerStats is a snapshot of the runner's reuse and cost counters. Hits
// and Executed depend only on the multiset of cells requested (executed =
// distinct fingerprints), not on scheduling; CellWall is real time and
// does vary.
type RunnerStats struct {
	Workers  int     `json:"workers"`
	Executed int     `json:"executed"`  // distinct cells simulated
	Hits     int     `json:"memo_hits"` // requests served without simulating
	CellWall float64 `json:"cell_wall_sec"`
}

// Stats snapshots the counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RunnerStats{Workers: r.workers, Executed: r.misses, Hits: r.hits}
	for _, e := range r.memo {
		select {
		case <-e.done:
			s.CellWall += e.res.Wall.Seconds()
		default:
		}
	}
	return s
}

// CellTiming reports one executed cell's identity and cost.
type CellTiming struct {
	Fingerprint string  `json:"fingerprint"`
	WallSec     float64 `json:"wall_sec"`
}

// CellTimings lists every completed cell sorted by fingerprint, for the
// machine-readable report.
func (r *Runner) CellTimings() []CellTiming {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CellTiming, 0, len(r.memo))
	for fp, e := range r.memo {
		select {
		case <-e.done:
			out = append(out, CellTiming{Fingerprint: fp, WallSec: e.res.Wall.Seconds()})
		default:
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}
