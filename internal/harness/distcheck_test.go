package harness

import (
	"io"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/crashmc"
)

// TestDistCrashCheck is the cluster-wide acceptance run: a 4-node
// Conventional dmeta cluster under the mixed load (creates, lookups,
// cross-partition renames, links, unlinks), power-failed and explored
// node by node with the naming-discipline oracle stacked on fsck.
func TestDistCrashCheck(t *testing.T) {
	res, err := DistCrashCheck(DistCrashCheckOptions{
		Scheme:  fsim.Conventional,
		Nodes:   4,
		Clients: 3,
		Ops:     25,
		Seed:    11,
		MC:      crashmc.Config{Workers: 2, Budget: 1200, PerInstant: 96},
	})
	if err != nil {
		t.Fatalf("DistCrashCheck: %v", err)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("explored %d nodes, want 4", len(res.Nodes))
	}
	for _, n := range res.Nodes {
		if n.Result.Stats.Explored < 1 {
			t.Errorf("node %d explored no crash states", n.Node)
		}
	}
	if res.Checked < 100 {
		t.Errorf("union checked %d images, want a real sweep (>= 100)", res.Checked)
	}
	if !res.Clean() {
		for _, n := range res.Nodes {
			for _, v := range n.Result.Violations {
				t.Logf("node %d seq %d: %v", n.Node, v.Seq, v.Findings)
			}
		}
		t.Errorf("conventional cluster should be crash-clean, got %d violating images", res.Violating)
	}

	// The union scan sees the load's logical objects and, because every
	// dmeta operation orders inode-backing writes before the dentries
	// that reference them (and dentry removal before the backing free),
	// the crash cut of a Conventional cluster never shows a dangling
	// cross-node reference. No splits are configured, so no inode can be
	// caught mid-migration either.
	if res.BackedInodes == 0 || res.DentryRefs == 0 {
		t.Errorf("union scan found %d backed inodes / %d dentry refs, want both > 0",
			res.BackedInodes, res.DentryRefs)
	}
	if res.CrossDangling != 0 {
		t.Errorf("union scan found %d dangling cross-node references, want 0", res.CrossDangling)
	}
	if res.CrossDoubleOwned != 0 {
		t.Errorf("union scan found %d double-owned inodes without migrations, want 0", res.CrossDoubleOwned)
	}
	res.Fprint(io.Discard)
}

// TestDistCrashCheckNoOrderViolates plants no bug — NoOrder's delayed
// writes violate on their own, and the per-node exploration must see it.
func TestDistCrashCheckNoOrderViolates(t *testing.T) {
	res, err := DistCrashCheck(DistCrashCheckOptions{
		Scheme:  fsim.NoOrder,
		Nodes:   2,
		Clients: 2,
		Ops:     30,
		Seed:    7,
		MC:      crashmc.Config{Workers: 2, Budget: 2000, PerInstant: 128},
	})
	if err != nil {
		t.Fatalf("DistCrashCheck: %v", err)
	}
	if res.Clean() {
		t.Errorf("noorder cluster explored %d images without a violation", res.Checked)
	}
}
