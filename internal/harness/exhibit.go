package harness

// Exhibit is one paper exhibit expressed declaratively: Build names the
// cells the exhibit needs (through get) and assembles its tables from the
// CellResults, instead of imperatively running simulations mid-loop.
//
// Build's contract: it must be deterministic and must not let the
// *structure* of its output (which cells it asks for, in what order)
// depend on the results get returns. Tables runs Build twice — first with
// a recording get that returns zero CellResults, to discover the cell
// list, then against the runner's warmed memo to assemble the real rows.
// The double execution is cheap (formatting only) and guarantees the
// declared cell list and the assembly loop can never drift apart.
type Exhibit struct {
	Name  string
	Build func(cfg Config, get func(Cell) CellResult) []Table
}

// Cells returns the cells Build would request, in request order.
func (e *Exhibit) Cells(cfg Config) []Cell {
	var cells []Cell
	e.Build(cfg, func(c Cell) CellResult {
		cells = append(cells, c)
		return CellResult{}
	})
	return cells
}

// Tables resolves the exhibit's cells on cfg.Runner (a private
// GOMAXPROCS-wide runner if nil) and assembles the tables. Row content is
// a pure function of the cell results, so the output is byte-identical at
// any worker count and for cold or warm memos.
func (e *Exhibit) Tables(cfg Config) []Table {
	r := cfg.Runner
	if r == nil {
		r = NewRunner(0)
	}
	r.All(e.Cells(cfg))
	return e.Build(cfg, r.lookup)
}
