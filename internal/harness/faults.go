package harness

import (
	"fmt"

	"metaupdate/fsim"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
)

// FaultRecovery is what one CellFaultRecovery run measures: the driver's
// recovery activity up to the crash, and what a fsck-based recovery of the
// crashed media finds and salvages.
type FaultRecovery struct {
	Faults     fsim.FaultStats `json:"faults"`
	LostWrites int64           `json:"lost_writes"`
	// PreRepair counts fsck findings on the crashed media (after NVRAM
	// replay where applicable) before any repair.
	PreRepair int `json:"pre_repair"`
	// PostRepair counts findings left after repair; nonzero means the image
	// could not be brought back to a consistent state.
	PostRepair int `json:"post_repair"`
	// Files is the number of reachable regular files in the recovered
	// namespace (the salvage yield).
	Files int `json:"files"`
}

// DefaultFaultSpec is the exhibit's fault plan: a noticeably hostile disk —
// roughly 1 in 30 accesses misbehaves — that a bounded retry budget still
// beats almost always, so the interesting column is how the schemes differ,
// not whether the driver survives.
func DefaultFaultSpec() fsim.FaultSpec {
	return fsim.FaultSpec{
		Seed:            1,
		TransientPer10k: 150,
		TornPer10k:      150,
		LatencyPer10k:   50,
		BadSectors:      4,
	}
}

// faultChurn launches (without waiting for) an endless metadata loop —
// creates with stamped data, removes, renames — so any crash instant lands
// mid-update.
func faultChurn(sys *fsim.System) {
	sys.Eng.Spawn("churn", func(p *fsim.Proc) {
		fs := sys.FS
		dir, err := fs.Mkdir(p, fsim.RootIno, "work")
		if err != nil {
			return
		}
		for i := 0; ; i++ {
			name := fmt.Sprintf("f%d", i%40)
			if ino, err := fs.Create(p, dir, name); err == nil {
				fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 4096))
			}
			if i%3 == 2 {
				fs.Unlink(p, dir, fmt.Sprintf("f%d", (i-2)%40))
			}
			if i%7 == 6 {
				fs.Rename(p, dir, name, dir, fmt.Sprintf("r%d", i%40))
			}
		}
	})
}

// faultRecoveryRun is CellFaultRecovery's simulation: churn under opt's
// fault plan, crash at the given instant, recover the image the way the
// paper prescribes (NVRAM replays its surviving log; everything else leans
// on fsck), and report the salvage.
func faultRecoveryRun(opt fsim.Options, at sim.Duration) FaultRecovery {
	sys := mustSystem(opt)
	faultChurn(sys)
	img := sys.Crash(fsim.Time(at))
	st := sys.CollectStats()
	if sys.NV != nil {
		sys.NV.Log().Replay(img)
	}
	if sys.Jnl != nil {
		fsck.ReplayJournal(img)
	}
	rec := FaultRecovery{Faults: st.Faults, LostWrites: st.LostWrites}
	rec.PreRepair = len(fsck.Check(img).Findings)
	fsck.Repair(img)
	rec.PostRepair = len(fsck.Check(img).Findings)
	if tree, err := fsck.Tree(fsck.Bytes(img)); err == nil {
		for _, e := range tree {
			if !e.Dir {
				rec.Files++
			}
		}
	}
	return rec
}

// faultCrashPoints: one instant just past the syncer horizon (the first
// delayed writes are reaching the disk) and one deep into steady-state
// flushing.
var faultCrashPoints = []sim.Duration{40 * sim.Second, 75 * sim.Second}

// FaultRecoveryExhibit reports per-scheme recovery behavior on a faulty
// disk (mdsim -faults). It is deliberately NOT part of Exhibits /
// ExperimentNames: the golden transcript pins `-exp all` output, and fault
// injection is an opt-in diagnostic, not a paper exhibit.
var FaultRecoveryExhibit = &Exhibit{Name: "faults", Build: buildFaultRecovery}

func buildFaultRecovery(cfg Config, get func(Cell) CellResult) []Table {
	schemes := append(append([]fsim.Scheme{}, fsim.Schemes...), fsim.NVRAM)
	spec := DefaultFaultSpec()
	t := Table{
		Title: fmt.Sprintf("Crash recovery on a faulty disk (plan %s, retries 8)", spec),
		Note: "metadata churn; plug pulled at the crash instant; recovery = NVRAM replay where applicable + fsck repair\n" +
			"fsck columns count findings before/after repair; files = regular files salvaged",
		Columns: []string{"scheme", "crash", "transient", "torn", "bad", "remap", "retries", "errors", "lost", "fsck", "repaired", "files", "verdict"},
	}
	for _, scheme := range schemes {
		for _, at := range faultCrashPoints {
			r := get(Cell{
				Kind: CellFaultRecovery,
				Opt: fsim.Options{
					Scheme:     scheme,
					DiskBytes:  8 << 20,
					NInodes:    1024,
					CacheBytes: 2 << 20,
					Faults:     spec,
					MaxRetries: 8,
				},
				CrashAt: at,
			}).FaultRec
			verdict := "recovered"
			if r.PostRepair > 0 {
				verdict = fmt.Sprintf("%d UNREPAIRED", r.PostRepair)
			}
			f := r.Faults
			t.AddRow(scheme.String(), fmt.Sprintf("%ds", int64(at/sim.Second)),
				fmt.Sprintf("%d", f.Transient), fmt.Sprintf("%d", f.Torn),
				fmt.Sprintf("%d", f.BadSectors), fmt.Sprintf("%d", f.Remaps),
				fmt.Sprintf("%d", f.Retries), fmt.Sprintf("%d", f.Errors),
				fmt.Sprintf("%d", r.LostWrites), fmt.Sprintf("%d", r.PreRepair),
				fmt.Sprintf("%d", r.PreRepair-r.PostRepair), fmt.Sprintf("%d", r.Files),
				verdict)
		}
	}
	return []Table{t}
}
