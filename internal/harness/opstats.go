package harness

import (
	"fmt"
	"io"

	"metaupdate/fsim"
	"metaupdate/internal/core"
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
)

// SchemeCounters is the per-scheme write-discipline activity of one
// benchmark phase: how the scheme expressed its ordering needs (Bwrite vs
// Bdwrite), how often the driver actually stalled a request on flag/chain
// sequencing, and — for soft updates — the rollback/undo work surfaced
// from core.Stats.
type SchemeCounters struct {
	SyncWrites     int64 `json:"sync_writes"`
	DelayedWrites  int64 `json:"delayed_writes"`
	OrderingStalls int64 `json:"ordering_stalls"`
	Rollbacks      int64 `json:"rollbacks"`
	CancelledAdds  int64 `json:"cancelled_adds"`
	Workitems      int64 `json:"workitems"`
}

// OpPhaseProfile is one phase (copy or remove) of a CellOpProfile run:
// per-op-type latency/stage digests plus the phase's counters. The span
// window matches the phase's stats window — ResetStats through the
// settle-sync — so the sync that flushes the phase's delayed writes is
// profiled too (as the "sync" op row).
type OpPhaseProfile struct {
	Elapsed  sim.Duration
	Ops      []obs.OpDigest
	Counters SchemeCounters
}

// OpProfile is what one CellOpProfile run measures.
type OpProfile struct {
	Copy   OpPhaseProfile
	Remove OpPhaseProfile
}

// opProfileRun executes the paired copy/remove benchmark with the span
// recorder attached. Tracing is a pure observer, so the simulation is
// virtual-time-identical to the untraced CellCopy run of the same options.
func opProfileRun(opt fsim.Options, users int, scale Scale) OpProfile {
	opt.Observe = true
	sys := mustSystem(opt)
	defer sys.Shutdown()
	prepTrees(sys, users, scale)
	var out OpProfile
	out.Copy = opPhase(sys, func() copyStats { return runCopy(sys, users) })
	// Settle background work between phases, as copyBench does.
	sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
	out.Remove = opPhase(sys, func() copyStats { return runRemove(sys, users) })
	return out
}

// opPhase brackets one benchmark phase: reset the span window, run it, and
// collect the digests and counters. Soft-updates counters are cumulative
// on core.Stats, so the phase value is a snapshot difference.
func opPhase(sys *fsim.System, bench func() copyStats) OpPhaseProfile {
	var su0 core.Stats
	if sys.Soft != nil {
		su0 = sys.Soft.Stat
	}
	sys.Obs.Reset()
	cs := bench()
	c := SchemeCounters{
		SyncWrites:     cs.stats.SyncWrites,
		DelayedWrites:  cs.stats.DelayedWrites,
		OrderingStalls: cs.stats.OrderingStalls,
	}
	if sys.Soft != nil {
		c.Rollbacks = sys.Soft.Stat.Rollbacks - su0.Rollbacks
		c.CancelledAdds = sys.Soft.Stat.CancelledAdds - su0.CancelledAdds
		c.Workitems = sys.Soft.Stat.Workitems - su0.Workitems
	}
	return OpPhaseProfile{Elapsed: cs.elapsed, Ops: sys.Obs.Profile(), Counters: c}
}

// OpStatsExhibit is the operation-profile report behind mdsim -opstats:
// for each of the five schemes, the 4-user copy and remove phases broken
// down per operation type (latency distribution + stage percentages),
// plus one cross-scheme counter table. Like the fault sweep, it is
// deliberately NOT part of Exhibits / ExperimentNames: the golden
// transcript pins `-exp all` output, and observability is opt-in.
var OpStatsExhibit = &Exhibit{Name: "opstats", Build: buildOpStats}

func buildOpStats(cfg Config, get func(Cell) CellResult) []Table {
	const users = 4
	counters := Table{
		Title: fmt.Sprintf("Write-discipline counters — %d-user copy/remove, system-wide per phase", users),
		Note:  "ordering stalls count requests blocked on flag/chain sequencing (conflict-order edges excluded)",
		Columns: []string{"scheme", "phase", "sync writes", "delayed writes",
			"ordering stalls", "rollbacks", "cancelled adds", "workitems"},
	}
	var tables []Table
	for _, v := range fiveSchemes(nil) {
		opt := v.opt
		opt.Observe = true
		prof := get(Cell{Kind: CellOpProfile, Opt: opt, Users: users, Scale: cfg.Scale}).OpProf
		for _, ph := range []struct {
			name string
			p    OpPhaseProfile
		}{{"copy", prof.Copy}, {"remove", prof.Remove}} {
			tables = append(tables, opPhaseTable(v.name, ph.name, users, ph.p))
			c := ph.p.Counters
			counters.AddRow(v.name, ph.name,
				fmt.Sprintf("%d", c.SyncWrites), fmt.Sprintf("%d", c.DelayedWrites),
				fmt.Sprintf("%d", c.OrderingStalls), fmt.Sprintf("%d", c.Rollbacks),
				fmt.Sprintf("%d", c.CancelledAdds), fmt.Sprintf("%d", c.Workitems))
		}
	}
	tables = append(tables, counters)
	return tables
}

// opPhaseTable renders one phase's per-op digests: latency distribution in
// milliseconds, then the share of the op type's total virtual time spent
// in each stage. The stage percentages of any row sum to 100 (up to
// rounding) because the stage segments partition each span exactly.
func opPhaseTable(scheme, phase string, users int, p OpPhaseProfile) Table {
	t := Table{
		Title: fmt.Sprintf("Operation profile: %s — %d-user %s", scheme, users, phase),
		Note:  fmt.Sprintf("mean per-user elapsed %.2fs; stage columns are %% of the op type's total latency", p.Elapsed.Seconds()),
		Columns: []string{"op", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms", "max ms",
			"total s", "cpu", "cacheread", "lock", "barrier", "queue", "media", "syncer",
			"netqueue", "wire", "other"},
	}
	for _, d := range p.Ops {
		row := []string{
			d.Op.String(),
			fmt.Sprintf("%d", d.Count),
			fmt.Sprintf("%.3f", d.Lat.MeanMS),
			fmt.Sprintf("%.3f", d.Lat.P50MS),
			fmt.Sprintf("%.3f", d.Lat.P90MS),
			fmt.Sprintf("%.3f", d.Lat.P99MS),
			fmt.Sprintf("%.3f", d.Lat.MaxMS),
			fmt.Sprintf("%.2f", d.Total.Seconds()),
		}
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			row = append(row, stagePct(d.Seg[st], d.Total))
		}
		t.AddRow(row...)
	}
	return t
}

func stagePct(seg, total sim.Duration) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(seg)/float64(total))
}

// OpTraceCopy runs the N-user copy benchmark with the span recorder
// attached and writes the measured window (ResetStats through settle-sync)
// as Chrome trace-event JSON — the mdsim -optrace mode. It returns the
// span count and the mean per-user elapsed time.
func OpTraceCopy(opt fsim.Options, users int, scale Scale, w io.Writer) (int, sim.Duration, error) {
	opt.Observe = true
	sys := mustSystem(opt)
	defer sys.Shutdown()
	prepTrees(sys, users, scale)
	sys.Obs.Reset() // drop the mount/prep spans; trace the benchmark only
	cs := runCopy(sys, users)
	if err := sys.Obs.WriteChromeTrace(w); err != nil {
		return 0, 0, err
	}
	return len(sys.Obs.Spans()), cs.elapsed, nil
}
