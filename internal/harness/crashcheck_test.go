package harness

import (
	"bytes"
	"strings"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/crashmc"
)

// TestCrashCheckMatrix is the harness-level integrity assertion: across a
// bounded-exhaustive sweep of crash states, the four ordering schemes leave
// nothing for fsck to object to, and No Order — same write pattern, free
// reordering — demonstrably does.
func TestCrashCheckMatrix(t *testing.T) {
	var buf bytes.Buffer
	rows := CrashCheckMatrix(fsim.Schemes, CrashCheckOptions{
		Files: 8,
		MC:    crashmc.Config{Workers: 2, Budget: 1200, PerInstant: 256},
	}, &buf)
	if len(rows) != len(fsim.Schemes) {
		t.Fatalf("got %d rows for %d schemes", len(rows), len(fsim.Schemes))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%v: %v", r.Scheme, r.Err)
		}
		if r.ExpectClean() && !r.Result.Clean() {
			t.Errorf("%v: %d violating crash states out of %d checked, first: %+v",
				r.Scheme, r.Result.Stats.Violating, r.Result.Stats.Checked, r.Result.Violations[0])
		}
		if !r.ExpectClean() && r.Result.Clean() {
			t.Errorf("%v: clean across %d distinct crash images; the unordered scheme should violate",
				r.Scheme, r.Result.Stats.Checked)
		}
		if r.Result.Stats.Checked == 0 {
			t.Errorf("%v: no crash images checked", r.Scheme)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Crash-state model check") || !strings.Contains(out, "verdict") {
		t.Errorf("table output missing expected headers:\n%s", out)
	}
}
