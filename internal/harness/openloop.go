package harness

import (
	"fmt"

	"metaupdate/fsim"
	"metaupdate/internal/scenario"
)

// The open-loop exhibits (mdsim -load / -scenario) compare the schemes
// under offered load instead of closed-loop equilibrium: an arrival
// process (internal/arrival) dictates when operations are offered, a
// scenario stream (internal/scenario) dictates what they are, and the
// driver measures latency from the scheduled arrival instant — so
// queueing delay that N-users-with-think-time benchmarks self-throttle
// away is finally visible. Like -faults/-opstats/-dist these are
// deliberately NOT part of Exhibits / ExperimentNames: the golden
// transcript pins `-exp all`, and the open loop is a post-paper regime.

// loadRates is the offered-load sweep (arrivals per virtual second).
var loadRates = []int{25, 50, 100, 200, 400, 800, 1600}

// openLoopOpt is the small machine every load-curve cell runs on: a
// compact disk and cache so the sweep crosses each scheme's capacity
// within the cell's op budget.
func openLoopOpt(scheme fsim.Scheme, scen string, rate, ops, warm int) fsim.Options {
	opt := fsim.Options{
		Scheme:     scheme,
		DiskBytes:  64 << 20,
		NInodes:    8192,
		CacheBytes: 8 << 20,
		OpenLoop: fsim.OpenLoopSpec{
			Scenario: scen,
			Arrival:  fsim.ArrivalSpec{Kind: fsim.Poisson, Seed: 1, PerSec: rate},
			Ops:      ops,
			Warmup:   warm,
		},
	}
	if scheme == fsim.AsyncDurability {
		// Async runs the open loop with the block-copy enhancement: its
		// group-commit flusher keeps hot directory and inode-table
		// buffers in flight almost continuously, and without -CB every
		// naming operation would stall against those writes while holding
		// the inode lock — a convoy that measures the configuration, not
		// the scheme. Submit-time notification crediting keeps the crash
		// contract exact under -CB.
		opt.Explicit, opt.CB = true, true
	}
	return opt
}

// openLoopRun executes one single-machine open-loop cell (pure function
// of the options, like every cell kind).
func openLoopRun(opt fsim.Options) scenario.Result {
	sys := mustSystem(opt)
	defer sys.Shutdown()
	res, err := sys.RunOpenLoop()
	if err != nil {
		panic(fmt.Sprintf("harness: openloop: %v", err))
	}
	return res
}

// openLoopDistRun executes one open-loop cell against a sharded
// metadata cluster built from opt (per-node sizes take dist defaults).
func openLoopDistRun(opt fsim.Options, spec DistSpec) scenario.Result {
	s, err := fsim.NewDist(fsim.DistOptions{
		Base:          opt,
		Nodes:         spec.Nodes,
		Seed:          spec.Seed,
		SplitEntries:  spec.SplitEntries,
		SplitQueue:    spec.SplitQueue,
		EngineWorkers: spec.EngineWorkers,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: openloop dist: %v", err))
	}
	defer s.Shutdown()
	res, err := s.RunOpenLoop(opt.OpenLoop)
	if err != nil {
		panic(fmt.Sprintf("harness: openloop dist: %v", err))
	}
	return res
}

// loadOps sizes one load-curve cell: total arrivals and warmup prefix.
func loadOps(scale Scale) (ops, warm int) {
	ops = scale.files(8000)
	return ops, ops / 8
}

// LoadCurveExhibit is the saturation study behind mdsim -load: every
// scheme runs the mail scenario at each offered load of the sweep, and
// the tables report measured throughput and the latency tail — the
// paper's claim, pushed to the regime its closed-loop benchmarks cannot
// reach, is that Conventional's tail diverges at a lower offered load
// than the delayed-write schemes'.
var LoadCurveExhibit = &Exhibit{Name: "load", Build: buildLoadCurve}

func buildLoadCurve(cfg Config, get func(Cell) CellResult) []Table {
	ops, warm := loadOps(cfg.Scale)
	summary := Table{
		Title: "Open-loop saturation summary — mail scenario, p99 latency (ms) by offered load (ops/s)",
		Note:  "latency measured from the scheduled arrival instant; a diverging column is a scheme past saturation",
	}
	summary.Columns = []string{"scheme"}
	for _, rate := range loadRates {
		summary.Columns = append(summary.Columns, fmt.Sprintf("@%d", rate))
	}
	var tables []Table
	for _, v := range fiveSchemes(nil) {
		t := Table{
			Title: fmt.Sprintf("Open-loop load curve — %s, mail scenario, %d ops (%d warmup)", v.name, ops, warm),
			Note:  "open loop: arrivals keep coming whether or not earlier operations finished",
			Columns: []string{"offered/s", "measured/s", "p50 ms", "p99 ms", "p999 ms", "max ms",
				"inflight hwm", "soft errs"},
		}
		sumRow := []string{v.name}
		for _, rate := range loadRates {
			r := get(Cell{Kind: CellOpenLoop, Opt: openLoopOpt(v.opt.Scheme, "mail", rate, ops, warm)}).OpenLoop
			t.AddRow(
				fmt.Sprintf("%d", rate),
				fmt.Sprintf("%.0f", r.MeasuredPerSec),
				fmt.Sprintf("%.2f", r.Lat.P50MS),
				fmt.Sprintf("%.2f", r.Lat.P99MS),
				fmt.Sprintf("%.2f", r.Lat.P999MS),
				fmt.Sprintf("%.2f", r.Lat.MaxMS),
				fmt.Sprintf("%d", r.InFlightHWM),
				fmt.Sprintf("%d", r.SoftErrs))
			sumRow = append(sumRow, fmt.Sprintf("%.1f", r.Lat.P99MS))
		}
		tables = append(tables, t)
		summary.AddRow(sumRow...)
	}
	return append(tables, summary)
}

// ScenarioExhibit is the single-rate scenario report behind mdsim
// -scenario: every scheme runs the named stream at one offered load on
// the single machine, and — when nodes > 1 — against a sharded cluster
// (CellOpenLoopDist, the variant the -engine-workers determinism checks
// exercise).
func ScenarioExhibit(name string, rate, nodes int) *Exhibit {
	return &Exhibit{Name: "scenario-" + name, Build: func(cfg Config, get func(Cell) CellResult) []Table {
		ops, warm := loadOps(cfg.Scale)
		t := Table{
			Title: fmt.Sprintf("Open-loop scenario %q — %d ops/s offered, %d ops (%d warmup)", name, rate, ops, warm),
			Columns: []string{"scheme", "measured/s", "p50 ms", "p99 ms", "p999 ms",
				"inflight hwm", "soft errs"},
		}
		row := func(r scenario.Result, schemeName string) []string {
			return []string{
				schemeName,
				fmt.Sprintf("%.0f", r.MeasuredPerSec),
				fmt.Sprintf("%.2f", r.Lat.P50MS),
				fmt.Sprintf("%.2f", r.Lat.P99MS),
				fmt.Sprintf("%.2f", r.Lat.P999MS),
				fmt.Sprintf("%d", r.InFlightHWM),
				fmt.Sprintf("%d", r.SoftErrs),
			}
		}
		for _, v := range fiveSchemes(nil) {
			r := get(Cell{Kind: CellOpenLoop, Opt: openLoopOpt(v.opt.Scheme, name, rate, ops, warm)}).OpenLoop
			t.AddRow(row(r, v.name)...)
		}
		tables := []Table{t}
		if nodes > 1 {
			// The cluster runs a smaller budget: every op is an RPC round
			// trip, and the comparison point is the shape, not the volume.
			dops := ops / 4
			if dops < 1 {
				dops = 1
			}
			dt := Table{
				Title: fmt.Sprintf("Open-loop scenario %q — %d-node metadata cluster, %d ops/s offered, %d ops",
					name, nodes, rate, dops),
				Note:    "metadata-only op mapping (reads/stats/fsyncs become lookups); latencies include the network",
				Columns: t.Columns,
			}
			for _, v := range fiveSchemes(nil) {
				opt := fsim.Options{
					Scheme: v.opt.Scheme,
					OpenLoop: fsim.OpenLoopSpec{
						Scenario: name,
						Arrival:  fsim.ArrivalSpec{Kind: fsim.Poisson, Seed: 1, PerSec: rate},
						Ops:      dops,
						Warmup:   dops / 8,
					},
				}
				if v.opt.Scheme == fsim.AsyncDurability {
					// Same -CB configuration as openLoopOpt.
					opt.Explicit, opt.CB = true, true
				}
				r := get(Cell{Kind: CellOpenLoopDist, Opt: opt, Dist: DistSpec{
					Nodes:         nodes,
					Seed:          42,
					EngineWorkers: cfg.EngineWorkers,
				}}).OpenLoop
				dt.AddRow(row(r, v.name)...)
			}
			tables = append(tables, dt)
		}
		return tables
	}}
}
