package harness

import (
	"fmt"
	"io"
	"strconv"

	"metaupdate/fsim"
	"metaupdate/internal/plot"
	"metaupdate/internal/workload"
)

// barChartOf builds a bar chart from a table's label and numeric column.
func barChartOf(title, unit string, t *Table, col int) func(io.Writer) {
	var bars []plot.Bar
	for _, row := range t.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		bars = append(bars, plot.Bar{Label: row[0], Value: v})
	}
	c := &plot.BarChart{Title: title, Unit: unit, Bars: bars}
	return c.Fprint
}

// lineChartOf builds a line chart from a table whose columns 1..n are the
// series points.
func lineChartOf(title, unit string, t *Table, xlabels []string) func(io.Writer) {
	var series []plot.Series
	for _, row := range t.Rows {
		pts := make([]float64, 0, len(row)-1)
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				v = 0
			}
			pts = append(pts, v)
		}
		series = append(series, plot.Series{Name: row[0], Points: pts})
	}
	c := &plot.LineChart{Title: title, XLabels: xlabels, YUnit: unit, Series: series}
	return c.Fprint
}

// flagVariant builds a Scheduler Flag configuration.
func flagVariant(name string, sem fsim.FlagSemantics, nr, cb, ignore bool) variant {
	return variant{name, fsim.Options{
		Scheme: fsim.SchedulerFlag, Explicit: true,
		Sem: sem, NR: nr, CB: cb, IgnoreOrdering: ignore,
	}}
}

// copyCell declares the N-user copy benchmark cell for opt.
func copyCell(opt fsim.Options, users int, scale Scale) Cell {
	return Cell{Kind: CellCopy, Opt: opt, Users: users, Scale: scale}
}

// copyRemoveCell declares the paired copy+remove benchmark cell for opt.
func copyRemoveCell(opt fsim.Options, users int, scale Scale) Cell {
	return Cell{Kind: CellCopy, Opt: opt, Users: users, Scale: scale, Remove: true}
}

// Fig1 reproduces figure 1: the performance impact of ordering-flag
// semantics on the 4-user copy benchmark — elapsed time (a) and average
// disk access time (b). All variants use the block-copy enhancement, as in
// the paper's section 3 comparisons.
var Fig1 = &Exhibit{Name: "fig1", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	variants := []variant{
		flagVariant("Full", fsim.SemFull, false, true, false),
		flagVariant("Back", fsim.SemBack, false, true, false),
		flagVariant("Part", fsim.SemPart, false, true, false),
		flagVariant("Part-NR", fsim.SemPart, true, true, false),
		flagVariant("Ignore", fsim.SemPart, false, true, true),
	}
	t := Table{
		Title:   "Figure 1: ordering-flag semantics, 4-user copy",
		Note:    "paper: elapsed time falls monotonically Full -> Back -> Part -> Part-NR -> Ignore",
		Columns: []string{"Flag meaning", "Elapsed (s)", "Avg disk access (ms)", "Disk requests"},
	}
	for _, v := range variants {
		cp := get(copyCell(v.opt, 4, cfg.Scale)).Copy
		t.AddRow(v.name, secs(cp.elapsed), fmt.Sprintf("%.1f", cp.stats.AvgServiceMS),
			fmt.Sprintf("%d", cp.stats.DiskRequests))
	}
	t.Chart = barChartOf("figure 1a: elapsed time", "s", &t, 1)
	return []Table{t}
}}

// Fig2 reproduces figure 2: flag semantics under the 1-user remove
// benchmark — user-observed elapsed time (a) and average driver response
// time (b). With -NR, the *more* restrictive semantics win on response
// time, the paper's counter-intuitive result.
var Fig2 = &Exhibit{Name: "fig2", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	variants := []variant{
		flagVariant("Part", fsim.SemPart, false, true, false),
		flagVariant("Full-NR", fsim.SemFull, true, true, false),
		flagVariant("Back-NR", fsim.SemBack, true, true, false),
		flagVariant("Part-NR", fsim.SemPart, true, true, false),
		flagVariant("Ignore", fsim.SemPart, false, true, true),
	}
	t := Table{
		Title:   "Figure 2: ordering-flag semantics, 1-user remove",
		Note:    "paper: huge driver queues build up; -NR lets the user finish without draining them",
		Columns: []string{"Flag meaning", "Elapsed (s)", "Avg driver response (ms)", "Disk requests"},
	}
	for _, v := range variants {
		rm := get(copyRemoveCell(v.opt, 1, cfg.Scale)).RemoveRes
		t.AddRow(v.name, secs2(rm.elapsed), fmt.Sprintf("%.0f", rm.stats.AvgResponseMS),
			fmt.Sprintf("%d", rm.stats.DiskRequests))
	}
	t.Chart = barChartOf("figure 2a: user-observed elapsed time", "s", &t, 1)
	return []Table{t}
}}

// fig34Variants are the four Part implementations of figures 3 and 4.
func fig34Variants() []variant {
	return []variant{
		flagVariant("Part", fsim.SemPart, false, false, false),
		flagVariant("Part-NR", fsim.SemPart, true, false, false),
		flagVariant("Part-CB", fsim.SemPart, false, true, false),
		flagVariant("Part-NR/CB", fsim.SemPart, true, true, false),
	}
}

// Fig3 reproduces figure 3: implementation improvements (-NR read bypass,
// -CB block copying) for the ordering flag on the 4-user copy benchmark.
var Fig3 = &Exhibit{Name: "fig3", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title:   "Figure 3: flag implementation improvements, 4-user copy",
		Note:    "paper: Part-NR/CB is best; omitting either enhancement greatly reduces the benefit",
		Columns: []string{"Implementation", "Elapsed (s)", "CPU (s)", "Avg driver response (ms)"},
	}
	for _, v := range fig34Variants() {
		cp := get(copyCell(v.opt, 4, cfg.Scale)).Copy
		t.AddRow(v.name, secs(cp.elapsed), secs(cp.stats.CPUTime),
			fmt.Sprintf("%.0f", cp.stats.AvgResponseMS))
	}
	t.Chart = barChartOf("figure 3a: elapsed time", "s", &t, 1)
	return []Table{t}
}}

// Fig4 reproduces figure 4: the same four implementations under the 4-user
// remove benchmark, where the differences are more substantial.
var Fig4 = &Exhibit{Name: "fig4", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title:   "Figure 4: flag implementation improvements, 4-user remove",
		Note:    "paper: same trends as figure 3 but more substantial; very large driver queues",
		Columns: []string{"Implementation", "Elapsed (s)", "CPU (s)", "Avg driver response (ms)"},
	}
	for _, v := range fig34Variants() {
		rm := get(copyRemoveCell(v.opt, 4, cfg.Scale)).RemoveRes
		t.AddRow(v.name, secs2(rm.elapsed), secs2(rm.stats.CPUTime),
			fmt.Sprintf("%.0f", rm.stats.AvgResponseMS))
	}
	t.Chart = barChartOf("figure 4a: elapsed time", "s", &t, 1)
	return []Table{t}
}}

// Fig5Kind selects the figure 5 sub-benchmark.
type Fig5Kind int

// Figure 5 sub-benchmarks.
const (
	Fig5Creates Fig5Kind = iota
	Fig5Removes
	Fig5CreateRemoves
)

// Fig5 reproduces figure 5: metadata update throughput (files/second) as a
// function of concurrent users for all five schemes — (a) 1 KB creates,
// (b) removes, (c) create/removes. 10,000 files split among the users at
// full scale; allocation initialization only for Soft Updates.
var Fig5 = &Exhibit{Name: "fig5", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	userCounts := []int{1, 2, 4, 8}
	total := cfg.Scale.files(10000)
	kinds := []struct {
		kind  Fig5Kind
		title string
		note  string
	}{
		{Fig5Creates, "Figure 5a: 1KB file creates (files/second)",
			"paper: No Order and Soft Updates on top and rising with users; Conventional flat and lowest"},
		{Fig5Removes, "Figure 5b: 1KB file removes (files/second)",
			"paper: Soft Updates ~ No Order; Scheduler Chains more than doubles Conventional at 8 users"},
		{Fig5CreateRemoves, "Figure 5c: 1KB file create/removes (files/second)",
			"paper: No Order and Soft Updates proceed at memory speed, >5x the other three"},
	}
	var out []Table
	for _, k := range kinds {
		t := Table{Title: k.title, Note: k.note}
		t.Columns = []string{"Scheme"}
		for _, u := range userCounts {
			t.Columns = append(t.Columns, fmt.Sprintf("%d user(s)", u))
		}
		for _, v := range fiveSchemes(nil) {
			row := []string{v.name}
			for _, users := range userCounts {
				res := get(Cell{Kind: CellFig5, Opt: v.opt, Fig5: k.kind, Users: users, TotalFiles: total})
				row = append(row, fmt.Sprintf("%.1f", res.Throughput))
			}
			t.AddRow(row...)
		}
		xl := make([]string, len(userCounts))
		for i, u := range userCounts {
			xl[i] = fmt.Sprintf("%d", u)
		}
		t.Chart = lineChartOf(k.title+" — chart", "files/s vs users", &t, xl)
		out = append(out, t)
	}
	return out
}}

// Fig5Point runs one figure 5 data point and returns files per virtual
// second.
func Fig5Point(opt fsim.Options, kind Fig5Kind, users, totalFiles int) float64 {
	sys := mustSystem(opt)
	defer sys.Shutdown()
	per := totalFiles / users
	// Per-user working directories ("each user works in a separate
	// directory").
	sys.Run(func(p *fsim.Proc) {
		for u := 0; u < users; u++ {
			if _, err := sys.FS.Mkdir(p, fsim.RootIno, fmt.Sprintf("u%d", u)); err != nil {
				panic(err)
			}
		}
		sys.FS.Sync(p)
	})
	dirOf := func(p *fsim.Proc, u int) fsim.Ino {
		ino, err := sys.FS.Lookup(p, fsim.RootIno, fmt.Sprintf("u%d", u))
		if err != nil {
			panic(err)
		}
		return ino
	}

	if kind == Fig5Removes {
		// Populate outside the measurement window, then settle.
		sys.RunUsers(users, func(p *fsim.Proc, u int) {
			if err := workload.CreateFiles(p, sys.FS, dirOf(p, u), per, 1024); err != nil {
				panic(err)
			}
		})
		sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
	}

	sys.ResetStats()
	var wall fsim.Duration
	switch kind {
	case Fig5Creates:
		_, wall = sys.RunUsers(users, func(p *fsim.Proc, u int) {
			if err := workload.CreateFiles(p, sys.FS, dirOf(p, u), per, 1024); err != nil {
				panic(err)
			}
		})
	case Fig5Removes:
		_, wall = sys.RunUsers(users, func(p *fsim.Proc, u int) {
			if err := workload.RemoveFiles(p, sys.FS, dirOf(p, u), per); err != nil {
				panic(err)
			}
		})
	case Fig5CreateRemoves:
		_, wall = sys.RunUsers(users, func(p *fsim.Proc, u int) {
			if err := workload.CreateRemoveFiles(p, sys.FS, dirOf(p, u), per, 1024); err != nil {
				panic(err)
			}
		})
	}
	if wall <= 0 {
		return 0
	}
	return float64(per*users) / wall.Seconds()
}

// Fig6 reproduces figure 6: Sdet throughput (scripts/hour) as a function of
// script concurrency for the five schemes.
var Fig6 = &Exhibit{Name: "fig6", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	userCounts := []int{1, 2, 4, 6, 8}
	t := Table{
		Title: "Figure 6: Sdet throughput (scripts/hour)",
		Note:  "paper: No Order 50-70% over Conventional; Soft Updates within 2% of No Order; Flag +3-5%",
	}
	t.Columns = []string{"Scheme"}
	for _, u := range userCounts {
		t.Columns = append(t.Columns, fmt.Sprintf("%d script(s)", u))
	}
	commands := cfg.Scale.files(workload.DefaultSdet().CommandsPerScript)
	for _, v := range fiveSchemes(nil) {
		row := []string{v.name}
		for _, users := range userCounts {
			res := get(Cell{Kind: CellSdet, Opt: v.opt, Users: users, Commands: commands})
			row = append(row, fmt.Sprintf("%.1f", float64(users)*3600/res.SdetWall.Seconds()))
		}
		t.AddRow(row...)
	}
	xl := make([]string, len(userCounts))
	for i, u := range userCounts {
		xl[i] = fmt.Sprintf("%d", u)
	}
	t.Chart = lineChartOf("figure 6 — chart", "scripts/hour vs concurrency", &t, xl)
	return []Table{t}
}}
