package harness

import (
	"fmt"

	"metaupdate/fsim"
)

// Table1 reproduces the paper's table 1: scheme comparison under the
// 4-user copy benchmark, with and without allocation initialization
// (No Order only without, as in the paper).
var Table1 = &Exhibit{Name: "table1", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title: "Table 1: scheme comparison, 4-user copy",
		Note: "paper shape: NoOrder fastest; SoftUpdates within a few % of NoOrder; alloc-init cost\n" +
			"ranges from ~4% (Soft Updates) to ~87% (Conventional)",
		Columns: []string{"Scheme", "AllocInit", "Elapsed (s)", "% of NoOrder",
			"CPU (s)", "Disk requests", "Avg response (ms)"},
	}
	type rowSpec struct {
		v         variant
		allocInit bool
	}
	var specs []rowSpec
	for _, s := range []fsim.Scheme{fsim.Conventional, fsim.SchedulerFlag,
		fsim.SchedulerChains, fsim.SoftUpdates} {
		for _, ai := range []bool{false, true} {
			specs = append(specs, rowSpec{schemeVariant(s, ai), ai})
		}
	}
	specs = append(specs, rowSpec{schemeVariant(fsim.NoOrder, false), false})
	// The post-paper schemes ride along without the alloc-init variant,
	// like No Order (their write disciplines are alloc-init-agnostic).
	specs = append(specs, rowSpec{schemeVariant(fsim.Journaling, false), false})
	specs = append(specs, rowSpec{schemeVariant(fsim.AsyncDurability, false), false})

	results := make([]copyStats, len(specs))
	var baseline fsim.Duration
	for i, spec := range specs {
		results[i] = get(copyCell(spec.v.opt, 4, cfg.Scale)).Copy
		if spec.v.opt.Scheme == fsim.NoOrder {
			baseline = results[i].elapsed
		}
	}
	for i, spec := range specs {
		cp := results[i]
		ai := "N"
		if spec.allocInit {
			ai = "Y"
		}
		t.AddRow(spec.v.opt.Scheme.String(), ai, secs(cp.elapsed), pct(cp.elapsed, baseline),
			secs(cp.stats.CPUTime), fmt.Sprintf("%d", cp.stats.DiskRequests),
			fmt.Sprintf("%.1f", cp.stats.AvgResponseMS))
	}
	return []Table{t}
}}

// schemeVariant builds a section 5 configuration with explicit alloc-init.
func schemeVariant(s fsim.Scheme, allocInit bool) variant {
	opt := fsim.Options{Scheme: s, Explicit: true, AllocInit: allocInit}
	switch s {
	case fsim.SchedulerFlag:
		opt.Sem, opt.NR, opt.CB = fsim.SemPart, true, true
	case fsim.SchedulerChains:
		opt.CB = true
	}
	return variant{s.String(), opt}
}

// Table2 reproduces table 2: scheme comparison under the 4-user remove
// benchmark (allocation initialization per the section 5 defaults).
var Table2 = &Exhibit{Name: "table2", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title: "Table 2: scheme comparison, 4-user remove",
		Note: "paper shape: Conventional ~10x NoOrder; SoftUpdates *faster* than NoOrder (deferred\n" +
			"removal); order-of-magnitude fewer disk requests for SoftUpdates/NoOrder",
		Columns: []string{"Scheme", "Elapsed (s)", "% of NoOrder", "CPU (s)",
			"Disk requests", "Avg response (ms)"},
	}
	variants := fiveSchemes(nil)
	results := make([]copyStats, len(variants))
	var baseline fsim.Duration
	for i, v := range variants {
		results[i] = get(copyRemoveCell(v.opt, 4, cfg.Scale)).RemoveRes
		if v.opt.Scheme == fsim.NoOrder {
			baseline = results[i].elapsed
		}
	}
	for i, v := range variants {
		rm := results[i]
		t.AddRow(v.name, secs2(rm.elapsed), pct(rm.elapsed, baseline),
			secs2(rm.stats.CPUTime), fmt.Sprintf("%d", rm.stats.DiskRequests),
			fmt.Sprintf("%.1f", rm.stats.AvgResponseMS))
	}
	return []Table{t}
}}

// Table3 reproduces table 3: the Andrew benchmark's five phases under each
// scheme.
var Table3 = &Exhibit{Name: "table3", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title: "Table 3: Andrew benchmark (seconds per phase)",
		Note: "paper shape: phases 1-2 favor the non-conventional schemes; phases 3-4 are\n" +
			"practically indistinguishable; the compile phase dominates the total",
		Columns: []string{"Scheme", "(1) MakeDir", "(2) Copy", "(3) ScanDir",
			"(4) ReadAll", "(5) Compile", "Total"},
	}
	for _, v := range fiveSchemes(nil) {
		times := get(Cell{Kind: CellAndrew, Opt: v.opt}).Andrew
		t.AddRow(v.name, secs2(times.MakeDir), secs2(times.Copy), secs2(times.ScanDir),
			secs2(times.ReadAll), secs(times.Compile), secs(times.Total()))
	}
	return []Table{t}
}}

// ChainsAblation reproduces the section 3.2 comparison: the barrier
// fallback vs. tracked remove-dependencies for scheduler chains on the
// 4-user remove benchmark (the paper reports ~16% in favor of tracking).
var ChainsAblation = &Exhibit{Name: "chains-ablation", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title:   "Section 3.2 ablation: chains de-allocation handling, 4-user remove",
		Note:    "paper: the specific-dependency approach beats the barrier fallback by ~16%",
		Columns: []string{"Approach", "Elapsed (s)", "Avg response (ms)", "Disk requests"},
	}
	for _, v := range []variant{
		{"Barrier fallback", fsim.Options{Scheme: fsim.SchedulerChains, Explicit: true, CB: true, BarrierFrees: true}},
		{"Tracked dependencies", fsim.Options{Scheme: fsim.SchedulerChains, Explicit: true, CB: true}},
	} {
		rm := get(copyRemoveCell(v.opt, 4, cfg.Scale)).RemoveRes
		t.AddRow(v.name, secs2(rm.elapsed), fmt.Sprintf("%.0f", rm.stats.AvgResponseMS),
			fmt.Sprintf("%d", rm.stats.DiskRequests))
	}
	return []Table{t}
}}

// CBAblation reproduces the section 3.3 note that block copying helps
// scheduler chains as well (26% on 4-user copy, 57% on 4-user remove).
var CBAblation = &Exhibit{Name: "cb-ablation", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title:   "Section 3.3 ablation: scheduler chains with and without block copying",
		Note:    "paper: -CB reduces chains elapsed time by 26% (copy) and 57% (remove)",
		Columns: []string{"Configuration", "Copy elapsed (s)", "Remove elapsed (s)"},
	}
	for _, v := range []variant{
		{"Chains", fsim.Options{Scheme: fsim.SchedulerChains, Explicit: true}},
		{"Chains-CB", fsim.Options{Scheme: fsim.SchedulerChains, Explicit: true, CB: true}},
	} {
		res := get(copyRemoveCell(v.opt, 4, cfg.Scale))
		t.AddRow(v.name, secs(res.Copy.elapsed), secs2(res.RemoveRes.elapsed))
	}
	return []Table{t}
}}

// NVRAMComparison runs the section 7 forward-comparison the paper
// proposes: soft updates vs. NVRAM-protected metadata vs. the No Order
// bound, on the metadata-intensive copy+remove pair.
var NVRAMComparison = &Exhibit{Name: "nvram", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title: "Section 7 extension: soft updates vs NVRAM vs No Order",
		Note: "paper's prediction: NVRAM gives slight improvements over soft updates (less syncer\n" +
			"work) at much higher hardware cost; both track the No Order bound",
		Columns: []string{"Scheme", "Copy elapsed (s)", "Remove elapsed (s)",
			"Disk requests", "CPU (s)"},
	}
	for _, v := range []variant{
		{"Soft Updates", fsim.Options{Scheme: fsim.SoftUpdates}},
		{"NVRAM", fsim.Options{Scheme: fsim.NVRAM}},
		{"No Order", fsim.Options{Scheme: fsim.NoOrder}},
	} {
		res := get(copyRemoveCell(v.opt, 4, cfg.Scale))
		cp, rm := res.Copy, res.RemoveRes
		t.AddRow(v.name, secs(cp.elapsed), secs2(rm.elapsed),
			fmt.Sprintf("%d", cp.stats.DiskRequests+rm.stats.DiskRequests),
			secs2(cp.stats.CPUTime+rm.stats.CPUTime))
	}
	return []Table{t}
}}

// CacheSweep is the DESIGN.md D-decision sensitivity study: how the
// soft-updates-vs-conventional gap depends on buffer cache size (the
// paper's machine had 44 MB usable; the gap narrows as the cache shrinks
// and the workload becomes read-dominated for every scheme).
var CacheSweep = &Exhibit{Name: "cache-sweep", Build: func(cfg Config, get func(Cell) CellResult) []Table {
	t := Table{
		Title:   "Sensitivity: 4-user copy elapsed (s) vs buffer cache size",
		Note:    "ablation for DESIGN.md; not a paper exhibit",
		Columns: []string{"Scheme", "8 MB", "16 MB", "24 MB", "32 MB"},
	}
	sizes := []int{8 << 20, 16 << 20, 24 << 20, 32 << 20}
	for _, s := range []fsim.Scheme{fsim.Conventional, fsim.SoftUpdates, fsim.NoOrder} {
		row := []string{s.String()}
		for _, cb := range sizes {
			opt := fsim.Options{Scheme: s, CacheBytes: cb}
			cp := get(copyCell(opt, 4, cfg.Scale)).Copy
			row = append(row, secs(cp.elapsed))
		}
		t.AddRow(row...)
	}
	return []Table{t}
}}

// Exhibits lists every exhibit in presentation order. mdsim shares one
// Runner across all of them so cells common to several exhibits (e.g. the
// Part-NR/CB 4-user copy of figures 1 and 3 and table 1) simulate once.
var Exhibits = []*Exhibit{
	Fig1, Fig2, Fig3, Fig4, Fig5, Fig6,
	Table1, Table2, Table3, ChainsAblation, CBAblation, NVRAMComparison,
	CacheSweep,
}

// ExhibitByName indexes Exhibits.
var ExhibitByName = func() map[string]*Exhibit {
	m := make(map[string]*Exhibit, len(Exhibits))
	for _, e := range Exhibits {
		m[e.Name] = e
	}
	return m
}()

// Experiments maps experiment names to runners producing tables (the
// pre-cell interface, kept for tests and benchmarks; each call resolves
// through cfg.Runner or a private one).
var Experiments = func() map[string]func(cfg Config) []Table {
	m := make(map[string]func(cfg Config) []Table, len(Exhibits))
	for _, e := range Exhibits {
		e := e
		m[e.Name] = func(cfg Config) []Table { return e.Tables(cfg) }
	}
	return m
}()

// ExperimentNames lists the experiments in presentation order.
var ExperimentNames = func() []string {
	names := make([]string, len(Exhibits))
	for i, e := range Exhibits {
		names[i] = e.Name
	}
	return names
}()
